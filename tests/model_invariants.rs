//! Invariants of the performance model that the paper's conclusions
//! rest on: rooflines, scaling directions, and resource-safety checks.

use ascend_scan::dtypes::F16;
use ascend_scan::ops::baselines;
use ascend_scan::scan::mcscan::{mcscan, McScanConfig, ScanKind};
use ascend_scan::scan::scanu::scanu;
use ascend_scan::sim::mem::GlobalMemory;
use ascend_scan::{ChipSpec, Device, GlobalTensor};
use std::sync::Arc;

#[test]
fn copy_never_exceeds_memory_bandwidth() {
    let dev = Device::ascend_910b4();
    for n in [1 << 16, 1 << 20, 1 << 23] {
        let x = dev.tensor(&vec![F16::ONE; n]).unwrap();
        let (_, r) = baselines::clone(dev.spec(), dev.memory(), &x).unwrap();
        let limit = dev.spec().l2_bytes_per_sec / 1e9;
        assert!(
            r.traffic_gbps() <= limit * 1.01,
            "clone at N = {n}: {:.0} GB/s exceeds the L2 roofline {:.0}",
            r.traffic_gbps(),
            limit
        );
    }
}

#[test]
fn mcscan_is_slower_than_copy_but_same_order() {
    // MCScan moves ~5N element-bytes to copy's 2N: it must be slower
    // than clone, but by a bounded factor once bandwidth-bound.
    let dev = Device::ascend_910b4();
    let n = 8 << 20;
    let x = dev.tensor(&vec![F16::ONE; n]).unwrap();
    let scan = dev.cumsum(&x).unwrap().report;
    let x2 = dev.tensor(&vec![F16::ONE; n]).unwrap();
    let (_, copy) = baselines::clone(dev.spec(), dev.memory(), &x2).unwrap();
    let ratio = scan.time_s() / copy.time_s();
    assert!(
        (1.5..6.0).contains(&ratio),
        "scan/copy time ratio {ratio:.2} outside the 5N/2N neighborhood"
    );
}

#[test]
fn larger_s_is_faster_for_mcscan() {
    // Fig. 8's trend: the matmul tile dimension s = 128 maximizes L0
    // utilization and wins over s = 32.
    let dev = Device::ascend_910b4();
    let n = 4 << 20;
    let mut times = Vec::new();
    for s in [32usize, 64, 128] {
        let x = dev.tensor(&vec![F16::ONE; n]).unwrap();
        let r = mcscan::<F16, F16, F16>(
            dev.spec(),
            dev.memory(),
            &x,
            McScanConfig {
                s,
                blocks: 20,
                kind: ScanKind::Inclusive,
            },
        )
        .unwrap()
        .report;
        times.push(r.time_s());
    }
    assert!(
        times[0] > times[1] && times[1] > times[2],
        "times: {times:?}"
    );
}

#[test]
fn single_core_scan_is_compute_bound_not_bandwidth_bound() {
    // One AI core cannot saturate HBM: ScanU's achieved traffic must sit
    // well under the chip bandwidth.
    let dev = Device::ascend_910b4();
    let n = 2 << 20;
    let x = dev.tensor(&vec![F16::ONE; n]).unwrap();
    let r = scanu::<F16, F16>(dev.spec(), dev.memory(), &x, 128)
        .unwrap()
        .report;
    assert!(
        r.traffic_gbps() < 200.0,
        "one core at {:.0} GB/s?",
        r.traffic_gbps()
    );
}

#[test]
fn scratchpad_budgets_are_enforced_at_128() {
    // s = 128 exactly fills L0A/L0B with double buffering; s = 256 must
    // be rejected by capacity checking, not silently mis-simulated.
    let dev = Device::ascend_910b4();
    let x = dev.tensor(&vec![F16::ONE; 1 << 16]).unwrap();
    let err = mcscan::<F16, F16, F16>(
        dev.spec(),
        dev.memory(),
        &x,
        McScanConfig {
            s: 256,
            blocks: 4,
            kind: ScanKind::Inclusive,
        },
    )
    .err()
    .expect("s = 256 must overflow L0");
    assert!(matches!(
        err,
        ascend_scan::SimError::ScratchpadOverflow { .. }
    ));
}

#[test]
fn global_memory_capacity_is_enforced() {
    let mut spec = ChipSpec::ascend_910b4();
    spec.hbm_capacity = 1 << 20; // 1 MiB device
    let gm = Arc::new(GlobalMemory::new(spec.hbm_capacity));
    let big = GlobalTensor::<F16>::new(&gm, 1 << 21);
    let err = big.err().expect("allocation beyond HBM capacity must fail");
    assert!(matches!(
        err,
        ascend_scan::SimError::GlobalMemoryExhausted { .. }
    ));
}

// ---------------------------------------------------------------------
// Simcheck failure injection: every sanitizer class must surface at
// `launch()` level with its dedicated `SimError` variant, without any
// per-kernel opt-in (the chip presets default to `ValidationMode::Full`).
// ---------------------------------------------------------------------

use ascend_scan::ascendc::{launch, BlockCtx, ScratchpadKind, TQue};
use ascend_scan::sim::simcheck;
use ascend_scan::sim::EngineKind;
use ascend_scan::{SimError, SimResult};

fn inject(kernel: impl Fn(&mut BlockCtx<'_>) -> SimResult<()> + Sync) -> SimError {
    let spec = ChipSpec::tiny();
    let gm = Arc::new(GlobalMemory::new(spec.hbm_capacity));
    launch(&spec, &gm, 1, "inject", kernel).expect_err("injected misuse must be detected")
}

#[test]
fn simcheck_detects_use_after_free() {
    let err = inject(|ctx| {
        let v = &mut ctx.vecs[0];
        let t = v.alloc_local::<f32>(ScratchpadKind::Ub, 64)?;
        let mut stale = t.clone();
        v.free_local(t)?;
        v.fill_local(&mut stale, 0, 64, 1.0).map(|_| ())
    });
    assert!(
        matches!(err, SimError::ScratchpadUseAfterFree { .. }),
        "{err}"
    );
}

#[test]
fn simcheck_detects_double_free() {
    let err = inject(|ctx| {
        let v = &mut ctx.vecs[0];
        let t = v.alloc_local::<f32>(ScratchpadKind::Ub, 64)?;
        let dup = t.clone();
        v.free_local(t)?;
        v.free_local(dup)
    });
    assert!(
        matches!(err, SimError::ScratchpadUseAfterFree { .. }),
        "{err}"
    );
}

#[test]
fn simcheck_detects_stale_handle_over_recycled_range() {
    let err = inject(|ctx| {
        let v = &mut ctx.vecs[0];
        let t = v.alloc_local::<f32>(ScratchpadKind::Ub, 64)?;
        let mut stale = t.clone();
        v.free_local(t)?;
        // First-fit recycles the freed range, so the stale handle now
        // aliases a live allocation.
        let _fresh = v.alloc_local::<f32>(ScratchpadKind::Ub, 64)?;
        v.fill_local(&mut stale, 0, 64, 1.0).map(|_| ())
    });
    assert!(matches!(err, SimError::ScratchpadOverlap { .. }), "{err}");
}

#[test]
fn simcheck_detects_queue_underflow() {
    let err = inject(|ctx| {
        let v = &mut ctx.vecs[0];
        let mut q = TQue::<f32>::new(v, ScratchpadKind::Ub, 2, 16)?;
        let _ = q.deque()?;
        Ok(())
    });
    assert!(
        matches!(err, SimError::QueueUnderflow { op: "deque" }),
        "{err}"
    );
}

#[test]
fn simcheck_detects_queue_overflow() {
    let err = inject(|ctx| {
        let v = &mut ctx.vecs[0];
        let mut q = TQue::<f32>::new(v, ScratchpadKind::Ub, 1, 16)?;
        let t = q.alloc_tensor()?;
        q.enque(t)?;
        // A buffer from outside the pool pushes past the configured depth.
        let extra = v.alloc_local::<f32>(ScratchpadKind::Ub, 16)?;
        q.enque(extra)?;
        Ok(())
    });
    assert!(matches!(err, SimError::QueueOverflow { depth: 1 }), "{err}");
}

#[test]
fn simcheck_detects_destroy_with_live_entries() {
    let err = inject(|ctx| {
        let v = &mut ctx.vecs[0];
        let mut q = TQue::<f32>::new(v, ScratchpadKind::Ub, 2, 16)?;
        let t = q.alloc_tensor()?;
        q.enque(t)?;
        q.destroy(v)
    });
    assert!(
        matches!(err, SimError::QueueDestroyLive { in_flight: 1 }),
        "{err}"
    );
}

#[test]
fn simcheck_detects_gm_view_overrun_on_datacopy() {
    let spec = ChipSpec::tiny();
    let gm = Arc::new(GlobalMemory::new(spec.hbm_capacity));
    let x = GlobalTensor::<f32>::from_slice(&gm, &[1.0f32; 32]).unwrap();
    let err = launch(&spec, &gm, 1, "oob", |ctx| {
        let v = &mut ctx.vecs[0];
        let mut t = v.alloc_local::<f32>(ScratchpadKind::Ub, 64)?;
        // Reads 64 elements through a 32-element GM view.
        v.copy_in(&mut t, 0, &x, 0, 64, &[])?;
        Ok(())
    })
    .expect_err("GM view overrun must be detected");
    assert!(matches!(err, SimError::OutOfBounds { .. }), "{err}");
}

#[test]
fn simcheck_audits_reject_tampered_reports() {
    let spec = ChipSpec::tiny();
    let gm = Arc::new(GlobalMemory::new(spec.hbm_capacity));
    let x = GlobalTensor::<f32>::from_slice(&gm, &[1.0f32; 64]).unwrap();
    let report = launch(&spec, &gm, 1, "audit", |ctx| {
        let v = &mut ctx.vecs[0];
        let mut t = v.alloc_local::<f32>(ScratchpadKind::Ub, 64)?;
        v.copy_in(&mut t, 0, &x, 0, 64, &[])?;
        v.free_local(t)
    })
    .unwrap();

    // The genuine report reconciles.
    simcheck::audit_report(&report, &spec, report.bytes_read, report.bytes_written).unwrap();

    // An engine busier than `cores x cycles` is impossible.
    let mut busy = report.clone();
    busy.engine_busy[EngineKind::Vec.index()] = u64::MAX / 2;
    let err = simcheck::audit_report(&busy, &spec, report.bytes_read, report.bytes_written)
        .expect_err("impossible busy cycles must be rejected");
    assert!(matches!(err, SimError::AccountingViolation { .. }), "{err}");

    // Claimed traffic must match the global-memory counters.
    let mut traffic = report.clone();
    traffic.bytes_read += 1;
    let err = simcheck::audit_report(&traffic, &spec, report.bytes_read, report.bytes_written)
        .expect_err("unreconciled traffic must be rejected");
    assert!(matches!(err, SimError::AccountingViolation { .. }), "{err}");
}

#[test]
fn l2_boost_appears_below_the_cache_capacity() {
    // The same copy kernel achieves higher bandwidth when the working
    // set fits L2 (Fig. 8's "almost approach the theoretical limit for
    // sizes smaller than the L2 cache").
    let spec = ChipSpec::ascend_910b4();
    let small_n = 4 << 20; // 16 MB working set (2 tensors x 8 MB) << 192 MB L2
    let large_n = 96 << 20; // 384 MB working set >> L2

    let dev = Device::with_spec(spec);
    let x = dev.tensor(&vec![F16::ONE; small_n]).unwrap();
    let (_, small) = baselines::clone(dev.spec(), dev.memory(), &x).unwrap();

    let dev = Device::ascend_910b4();
    let x = dev.tensor(&vec![F16::ONE; large_n]).unwrap();
    let (_, large) = baselines::clone(dev.spec(), dev.memory(), &x).unwrap();

    assert!(
        small.gbps() > large.gbps(),
        "L2-resident copy ({:.0} GB/s) should beat DRAM-bound copy ({:.0} GB/s)",
        small.gbps(),
        large.gbps()
    );
}

#[test]
fn l2_resident_batched_shapes_never_report_over_peak_dram_traffic() {
    // Fig. 12's batched shapes fit comfortably inside the 910B4's
    // 192 MiB L2, so their raw streamed bytes can exceed what the HBM
    // bus could deliver in the same time. The DRAM-attributed figure
    // must stay at or below the HBM peak, with the excess credited to
    // L2 — not reported as impossible over-peak DRAM bandwidth.
    use ascend_scan::scan::batched_scanu;
    let dev = Device::ascend_910b4();
    let hbm_peak = dev.spec().hbm_bytes_per_sec / 1e9;
    let mut saw_l2_excess = false;
    for (batch, len) in [(64usize, 32_768usize), (128, 16_384)] {
        let x = dev.tensor(&vec![F16::ONE; batch * len]).unwrap();
        let r = batched_scanu::<F16, F16>(dev.spec(), dev.memory(), &x, batch, len, 128)
            .unwrap()
            .report;
        assert!(
            r.working_set <= dev.spec().l2_capacity as u64,
            "{batch}x{len}: working set {} spills the {} B L2",
            r.working_set,
            dev.spec().l2_capacity
        );
        let dram = r.dram_traffic_gbps(dev.spec());
        assert!(
            dram <= hbm_peak * 1.0001,
            "{batch}x{len}: DRAM-attributed {dram:.0} GB/s exceeds the {hbm_peak:.0} GB/s peak"
        );
        if r.traffic_gbps() > dram {
            saw_l2_excess = true;
            assert!(
                (r.l2_traffic_gbps(dev.spec()) - (r.traffic_gbps() - dram)).abs() < 1e-6,
                "L2 figure must be exactly the raw-minus-DRAM excess"
            );
        }
    }
    assert!(
        saw_l2_excess,
        "at least one Fig. 12 shape should be served partly from L2"
    );
}

#[test]
fn launch_overhead_dominates_tiny_inputs() {
    // The flat region of Fig. 3's log-log plot: below a few K elements,
    // time is launch-bound and roughly constant.
    let dev = Device::ascend_910b4();
    let t = |n: usize| {
        let x = dev.tensor(&vec![F16::ONE; n]).unwrap();
        dev.cumsum(&x).unwrap().report.time_us()
    };
    let t256 = t(256);
    let t4k = t(4096);
    assert!(
        t4k / t256 < 2.0,
        "sub-launch-size inputs should cost nearly the same ({t256:.1} vs {t4k:.1} us)"
    );
}
