//! The simulator must be bit- and cycle-deterministic: kernel results
//! and simulated timings cannot depend on host thread scheduling, even
//! though blocks execute on real OS threads.

use ascend_scan::dtypes::F16;
use ascend_scan::ops::SortOrder;
use ascend_scan::{Device, KernelReport};

fn report_fingerprint(r: &KernelReport) -> (u64, u64, u64, [u64; 7]) {
    (r.cycles, r.bytes_read, r.bytes_written, r.engine_busy)
}

#[test]
fn mcscan_timing_is_reproducible() {
    let run = || {
        let dev = Device::ascend_910b4();
        let xs: Vec<F16> = (0..300_000)
            .map(|i| F16::from_f32((i % 2) as f32))
            .collect();
        let x = dev.tensor(&xs).unwrap();
        let r = dev.cumsum(&x).unwrap();
        (report_fingerprint(&r.report), r.y.to_vec())
    };
    let (fp1, y1) = run();
    let (fp2, y2) = run();
    assert_eq!(
        fp1, fp2,
        "simulated cycles/traffic must not vary across runs"
    );
    assert_eq!(y1, y2, "functional output must be deterministic");
}

#[test]
fn multi_kernel_operator_is_reproducible() {
    let run = || {
        let dev = Device::ascend_910b4();
        let vals: Vec<F16> = (0..80_000)
            .map(|i| F16::from_f32((((i as u64).wrapping_mul(2654435761) as usize) % 1000) as f32))
            .collect();
        let x = dev.tensor(&vals).unwrap();
        let r = dev.sort(&x, SortOrder::Ascending).unwrap();
        (
            report_fingerprint(&r.report),
            r.values.to_vec(),
            r.indices.to_vec(),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
}

#[test]
fn timing_is_independent_of_memory_history() {
    // The same kernel on a device that previously ran other work must
    // report the same simulated time (per-launch segment accounting).
    let xs: Vec<F16> = (0..200_000)
        .map(|i| F16::from_f32((i % 3) as f32))
        .collect();

    let dev_fresh = Device::ascend_910b4();
    let x = dev_fresh.tensor(&xs).unwrap();
    let fresh = dev_fresh.cumsum(&x).unwrap().report;

    let dev_used = Device::ascend_910b4();
    // Warm the device with unrelated launches first.
    for _ in 0..3 {
        let w = dev_used.tensor(&xs).unwrap();
        dev_used.cumsum(&w).unwrap();
    }
    let x2 = dev_used.tensor(&xs).unwrap();
    let used = dev_used.cumsum(&x2).unwrap().report;

    assert_eq!(
        fresh.cycles, used.cycles,
        "prior launches must not leak into timing"
    );
    assert_eq!(fresh.bytes_read, used.bytes_read);
}

#[test]
fn oversubscribed_scanc_is_reproducible_byte_for_byte() {
    // ScanC with tiles_per_lane = 1 launches far more blocks than the
    // chip has AI cores, so the cooperative scheduler wave-multiplexes
    // slots and the grid-flag look-back chain spans waves. The full
    // JSON report (cycles, stalls, per-engine counters) and the output
    // must still be identical across runs despite real OS threads.
    use ascend_scan::ScanCConfig;
    let run = || {
        let dev = Device::ascend_910b4();
        // 92 tiles of 128² elements → 92 lanes → 46 blocks on 20 cores.
        let mask: Vec<u8> = (0..1_500_000).map(|i| (i % 3 == 0) as u8).collect();
        let m = dev.tensor(&mask).unwrap();
        let r = ascend_scan::scan::scanc::scanc::<u8, i16, i32>(
            dev.spec(),
            dev.memory(),
            &m,
            ScanCConfig {
                s: 128,
                tiles_per_lane: 1,
            },
        )
        .unwrap();
        assert!(
            r.report.blocks > dev.spec().ai_cores,
            "config must oversubscribe ({} blocks on {} cores)",
            r.report.blocks,
            dev.spec().ai_cores
        );
        (r.report.to_json(dev.spec()), r.y.to_vec())
    };
    let (json1, y1) = run();
    let (json2, y2) = run();
    assert_eq!(json1, json2, "oversubscribed report must be byte-identical");
    assert_eq!(y1, y2);
}

#[test]
fn block_count_changes_timing_but_not_results() {
    use ascend_scan::{McScanConfig, ScanKind};
    let dev = Device::ascend_910b4();
    let mask: Vec<u8> = (0..150_000).map(|i| (i % 2) as u8).collect();
    let m = dev.tensor(&mask).unwrap();
    let mut outs = Vec::new();
    let mut cycles = Vec::new();
    for blocks in [1u32, 4, 20] {
        let r = ascend_scan::scan::mcscan::mcscan::<u8, i16, i32>(
            dev.spec(),
            dev.memory(),
            &m,
            McScanConfig {
                s: 128,
                blocks,
                kind: ScanKind::Inclusive,
            },
        )
        .unwrap();
        outs.push(r.y.to_vec());
        cycles.push(r.report.cycles);
    }
    assert_eq!(outs[0], outs[1]);
    assert_eq!(outs[1], outs[2]);
    assert!(
        cycles[0] > cycles[2],
        "20 blocks should beat 1 block at this size ({} vs {})",
        cycles[0],
        cycles[2]
    );
}
