//! Cross-crate integration tests: operator pipelines composed end to
//! end on the simulated 910B4, validated against host references.

use ascend_scan::dtypes::{RadixKey, F16};
use ascend_scan::ops::SortOrder;
use ascend_scan::{Device, ScanKind};

fn device() -> Device {
    Device::ascend_910b4()
}

fn synth_f16(n: usize, seed: u64) -> Vec<F16> {
    let mut state = seed.wrapping_mul(0xD134_2543_DE82_EF95) | 1;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            F16::from_f32(((state >> 40) as f32 / (1u64 << 23) as f32 - 1.0) * 100.0)
        })
        .collect()
}

#[test]
fn sort_then_scan_pipeline() {
    // Sorting probabilities descending then scanning them yields a
    // monotone CDF whose last entry is the total mass.
    let dev = device();
    let n = 50_000;
    let probs: Vec<F16> = (0..n)
        .map(|i| F16::from_f32(((i * 31 + 7) % 100) as f32 / 100.0))
        .collect();
    let x = dev.tensor(&probs).unwrap();
    let sorted = dev.sort(&x, SortOrder::Descending).unwrap();
    let vals = sorted.values.to_vec();
    assert!(vals.windows(2).all(|w| w[0].to_f32() >= w[1].to_f32()));

    let cdf = dev.cumsum(&sorted.values).unwrap();
    let c = cdf.y.to_vec();
    // fp16 rounding at the block boundaries can nick monotonicity by a
    // few ULPs at the running sum's magnitude (hardware does the same);
    // compare against the exact reference within that slack instead.
    let mut exact = 0.0f64;
    let total: f64 = vals.iter().map(|v| v.to_f64()).sum();
    for (i, v) in c.iter().enumerate() {
        exact += vals[i].to_f64();
        assert!(
            (v.to_f64() - exact).abs() <= total * 0.01 + 8.0,
            "cdf[{i}] = {} vs exact {exact}",
            v.to_f64()
        );
    }
}

#[test]
fn split_and_compress_agree() {
    let dev = device();
    let n = 120_000;
    let vals: Vec<u16> = (0..n).map(|i| (i * 7919 % 65536) as u16).collect();
    let mask: Vec<u8> = (0..n)
        .map(|i| (((i as u64 * 2654435761) >> 16) & 1) as u8)
        .collect();
    let x = dev.tensor(&vals).unwrap();
    let m = dev.tensor(&mask).unwrap();

    let split = dev.split(&x, &m).unwrap();
    let comp = dev.compress(&x, &m).unwrap();

    assert_eq!(split.n_true, comp.n_true);
    assert_eq!(
        split.values.read_range(0, split.n_true).unwrap(),
        comp.values.to_vec(),
        "compress equals the true side of split"
    );
    // Split's index output inverts back to the input.
    let sv = split.values.to_vec();
    let si = split.indices.to_vec();
    for (out_pos, &orig) in si.iter().enumerate().step_by(997) {
        assert_eq!(sv[out_pos], vals[orig as usize]);
    }
}

#[test]
fn top_p_token_comes_from_the_nucleus() {
    let dev = device();
    let n = 40_000;
    let mut probs = vec![F16::from_f32(1e-6); n];
    // Hot tokens: 70% + 20% of the mass on two ids.
    probs[123] = F16::from_f32(0.7);
    probs[9876] = F16::from_f32(0.2);
    let x = dev.tensor(&probs).unwrap();
    for theta in [0.1, 0.4, 0.7, 0.9] {
        let run = dev.top_p(&x, 0.8, theta).unwrap();
        assert!(
            run.token == 123 || run.token == 9876,
            "p = 0.8 nucleus holds only the two hot tokens; got {} at theta {theta}",
            run.token
        );
    }
}

#[test]
fn weighted_sampling_matches_cdf_quantiles() {
    let dev = device();
    // Geometric-ish weights; verify draws land at the analytic quantile.
    let w: Vec<f32> = (0..10_000)
        .map(|i| if i < 100 { 50.0 } else { 1.0 })
        .collect();
    let total: f32 = w.iter().sum(); // 5000 + 9900 = 14900
    let x = dev.tensor(&w).unwrap();
    // theta deep inside the heavy head.
    let run = dev.weighted_sample(&x, 0.2).unwrap();
    assert!(
        run.index < 100,
        "theta 0.2*{total} < 5000 lands in the head"
    );
    // theta in the uniform tail.
    let run = dev.weighted_sample(&x, 0.9).unwrap();
    assert!(run.index >= 100);
}

#[test]
fn radix_sort_argsort_is_a_permutation() {
    let dev = device();
    let n = 30_000;
    let vals = synth_f16(n, 11);
    let x = dev.tensor(&vals).unwrap();
    let run = dev.sort(&x, SortOrder::Ascending).unwrap();
    let idx = run.indices.to_vec();
    let mut seen = vec![false; n];
    for &i in &idx {
        assert!(!seen[i as usize], "duplicate index {i}");
        seen[i as usize] = true;
    }
    assert!(seen.iter().all(|&b| b));
    // And the permutation reproduces the sorted output bit-exactly.
    let sorted = run.values.to_vec();
    for r in (0..n).step_by(613) {
        assert_eq!(vals[idx[r] as usize].to_bits(), sorted[r].to_bits());
    }
}

#[test]
fn topk_agrees_with_full_sort() {
    let dev = device();
    let n = 60_000;
    let vals = synth_f16(n, 13);
    let x = dev.tensor(&vals).unwrap();
    let k = 500;
    let run = dev.topk(&x, k).unwrap();
    let mut got: Vec<u16> = run.values.to_vec().iter().map(|v| v.encode()).collect();
    got.sort_unstable_by(|a, b| b.cmp(a));
    let mut expect: Vec<u16> = vals.iter().map(|v| v.encode()).collect();
    expect.sort_unstable_by(|a, b| b.cmp(a));
    expect.truncate(k);
    assert_eq!(got, expect);
}

#[test]
fn exclusive_scan_is_shifted_inclusive_on_device() {
    let dev = device();
    let mask: Vec<u8> = (0..77_777u64)
        .map(|i| ((i * 40503) >> 13 & 1) as u8)
        .collect();
    let m = dev.tensor(&mask).unwrap();
    let inc = ascend_scan::scan::mcscan::mcscan::<u8, i16, i32>(
        dev.spec(),
        dev.memory(),
        &m,
        ascend_scan::McScanConfig {
            s: 128,
            blocks: 20,
            kind: ScanKind::Inclusive,
        },
    )
    .unwrap();
    let exc = dev.mask_exclusive_scan(&m).unwrap();
    let inc = inc.y.to_vec();
    let exc = exc.y.to_vec();
    assert_eq!(exc[0], 0);
    assert_eq!(&exc[1..], &inc[..inc.len() - 1]);
}
