//! Critical-path (makespan-identity) integration tests: for every
//! shipped scan kernel, the weighted longest path recovered from the
//! recorded timeline must tile `[0, cycles]` exactly — the backward
//! causal walk finds a justification for every cycle of the makespan,
//! and the class attribution sums back to the reported cycle count.

use ascend_scan::dtypes::F16;
use ascend_scan::sim::critpath::CritSummary;
use ascend_scan::sim::prof;
use ascend_scan::sim::ChipSpec;
use ascend_scan::{Device, KernelReport, McScanConfig, ScanCConfig, ScanKind};
use proptest::prelude::*;

/// Asserts the serialized invariants on one kernel's critical path:
/// identity with the reported cycles, exact attribution, share bounds,
/// and the presence of the what-if table.
fn assert_identity(report: &KernelReport) -> CritSummary {
    let cp = report
        .critical_path
        .clone()
        .unwrap_or_else(|| panic!("{}: audited launch has no critical path", report.name));
    assert_eq!(
        cp.makespan, report.cycles,
        "{}: critical-path length != reported cycles",
        report.name
    );
    let sum = cp.launch + cp.busy + cp.flag_wire + cp.chain_wire + cp.barrier_release + cp.hbm;
    assert_eq!(
        sum, cp.makespan,
        "{}: attribution does not sum to the makespan",
        report.name
    );
    assert!(cp.lookback_chain <= cp.makespan);
    assert!(cp.flag_instr + cp.chain_wire >= cp.lookback_chain);
    assert!(
        cp.what_ifs.len() >= 2,
        "{}: need at least two what-if predictions",
        report.name
    );
    for w in &cp.what_ifs {
        assert!(
            w.predicted <= cp.makespan && w.saved + w.predicted == cp.makespan,
            "{}: what-if {} is inconsistent",
            report.name,
            w.name
        );
    }
    cp
}

/// Runs all six shipped scan kernels at one mid-size input and checks
/// the identity on each, plus segment tiling via the profiled path.
#[test]
fn critical_path_length_equals_cycles_for_every_shipped_kernel() {
    let n = 65_536usize;
    let dev = Device::ascend_910b4();
    let spec = dev.spec();
    let data = vec![F16::ONE; n];

    let reports: Vec<KernelReport> = {
        let x = dev.tensor(&data).unwrap();
        let scanc_cfg = ScanCConfig::for_chip::<F16, F16>(spec);
        vec![
            ascend_scan::scan::scanu::<F16, F16>(spec, dev.memory(), &x, 128)
                .unwrap()
                .report,
            ascend_scan::scan::scanul1::<F16, F16>(spec, dev.memory(), &x, 128)
                .unwrap()
                .report,
            ascend_scan::scan::mcscan::mcscan::<F16, F16, F16>(
                spec,
                dev.memory(),
                &x,
                McScanConfig::for_chip(spec),
            )
            .unwrap()
            .report,
            ascend_scan::scan::scanc::scanc::<F16, F16, F16>(spec, dev.memory(), &x, scanc_cfg)
                .unwrap()
                .report,
            ascend_scan::scan::cumsum_vec_only::<F16>(spec, dev.memory(), &x, 128, 1)
                .unwrap()
                .report,
            ascend_scan::scan::batched_scanu::<F16, F16>(spec, dev.memory(), &x, 8, n / 8, 128)
                .unwrap()
                .report,
        ]
    };
    assert_eq!(reports.len(), 6);
    for r in &reports {
        assert_identity(r);
    }
}

/// The profiled path exposes the full segment list: it must tile
/// `[0, cycles]` contiguously with no gaps or overlaps.
#[test]
fn critical_path_segments_tile_the_makespan() {
    let dev = Device::ascend_910b4();
    let data = vec![F16::ONE; 65_536];
    let (report, profile) = prof::with_profiling(dev.memory(), || {
        let x = dev.tensor(&data).unwrap();
        ascend_scan::scan::mcscan::mcscan::<F16, F16, F16>(
            dev.spec(),
            dev.memory(),
            &x,
            McScanConfig::for_chip(dev.spec()),
        )
        .unwrap()
        .report
    });
    let crit = profile.kernels[0]
        .critical_path
        .as_ref()
        .expect("profiled launch records the critical path");
    assert_eq!(crit.summary.makespan, report.cycles);
    let segs = &crit.segments;
    assert!(!segs.is_empty());
    assert_eq!(segs[0].start, 0, "path must start at cycle 0");
    assert_eq!(
        segs.last().unwrap().end,
        report.cycles,
        "path must end at the reported cycle count"
    );
    for w in segs.windows(2) {
        assert_eq!(
            w[0].end, w[1].start,
            "segments must be contiguous: {:?} then {:?}",
            w[0], w[1]
        );
    }
    let total: u64 = segs.iter().map(|s| s.end - s.start).sum();
    assert_eq!(total, report.cycles, "segment lengths must sum to cycles");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Randomized small schedules on the tiny chip: the identity must
    // hold for any block count, tile width, and input length, on both
    // the barrier-based and chained multi-core scans.
    #[test]
    fn makespan_identity_holds_on_random_small_schedules(
        n in 1usize..4096,
        s_idx in 0usize..2,
        blocks in 1u32..=8,
        chained in 0u8..=1,
    ) {
        // The tiny chip's L0C fits at most a 32x32 i32 accumulator tile.
        let s = [16, 32][s_idx];
        let dev = Device::with_spec(ChipSpec::tiny());
        let mask: Vec<u8> = (0..n).map(|i| (i % 3 == 0) as u8).collect();
        let x = dev.tensor(&mask).unwrap();
        let report = if chained == 1 {
            ascend_scan::scan::scanc::scanc::<u8, i16, i32>(
                dev.spec(),
                dev.memory(),
                &x,
                ScanCConfig { s, tiles_per_lane: 1 + (blocks as usize % 4) },
            ).unwrap().report
        } else {
            ascend_scan::scan::mcscan::mcscan::<u8, i16, i32>(
                dev.spec(),
                dev.memory(),
                &x,
                McScanConfig { s, blocks, kind: ScanKind::Inclusive },
            ).unwrap().report
        };
        let cp = assert_identity(&report);
        prop_assert_eq!(cp.makespan, report.cycles);
    }
}
