//! Property-based integration tests: random inputs through the full
//! device path, checked against host references. Sizes stay moderate so
//! the functional simulation remains fast in debug builds.

use ascend_scan::dtypes::{RadixKey, F16};
use ascend_scan::ops::SortOrder;
use ascend_scan::{Device, McScanConfig, ScanKind};
use proptest::prelude::*;

fn scan_reference(mask: &[u8]) -> Vec<i32> {
    let mut acc = 0;
    mask.iter()
        .map(|&m| {
            acc += i32::from(m);
            acc
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn mcscan_mask_matches_reference(
        mask in proptest::collection::vec(0u8..=1, 1..20_000),
        s_idx in 0usize..3,
        blocks in 1u32..=20,
    ) {
        let s = [32, 64, 128][s_idx];
        let dev = Device::ascend_910b4();
        let m = dev.tensor(&mask).unwrap();
        let r = ascend_scan::scan::mcscan::mcscan::<u8, i16, i32>(
            dev.spec(),
            dev.memory(),
            &m,
            McScanConfig { s, blocks, kind: ScanKind::Inclusive },
        ).unwrap();
        prop_assert_eq!(r.y.to_vec(), scan_reference(&mask));
    }

    #[test]
    fn scanc_matches_reference_and_mcscan(
        mask in proptest::collection::vec(0u8..=1, 1..20_000),
        s_idx in 0usize..3,
        tiles_per_lane in 1usize..=4,
    ) {
        let s = [32, 64, 128][s_idx];
        let dev = Device::ascend_910b4();
        let m = dev.tensor(&mask).unwrap();
        let sc = ascend_scan::scan::scanc::scanc::<u8, i16, i32>(
            dev.spec(),
            dev.memory(),
            &m,
            ascend_scan::ScanCConfig { s, tiles_per_lane },
        ).unwrap();
        prop_assert_eq!(sc.y.to_vec(), scan_reference(&mask));
        let mc = ascend_scan::scan::mcscan::mcscan::<u8, i16, i32>(
            dev.spec(),
            dev.memory(),
            &m,
            McScanConfig { s, blocks: dev.spec().ai_cores, kind: ScanKind::Inclusive },
        ).unwrap();
        prop_assert_eq!(sc.y.to_vec(), mc.y.to_vec());
        // The chained look-back never takes a barrier.
        prop_assert_eq!(sc.report.sync_rounds, 0);
    }

    #[test]
    fn scanc_f16_is_exact_across_the_subnormal_boundary(
        steps in proptest::collection::vec(0u32..=6, 1..300),
        tiles_per_lane in 1usize..=3,
    ) {
        // Inputs are multiples of the smallest f16 subnormal (2^-24).
        // The running sum stays below 2048·2^-24 = 2^-13, where every
        // multiple of 2^-24 is exactly representable, so the sequential
        // reference and ScanC's lane-local-scan-plus-offset association
        // must agree bit for bit even as partials cross the
        // subnormal/normal boundary at 2^-14.
        let quantum = f32::powi(2.0, -24);
        let data: Vec<F16> = steps
            .iter()
            .map(|&k| F16::from_f32(k as f32 * quantum))
            .collect();
        let dev = Device::ascend_910b4();
        let x = dev.tensor(&data).unwrap();
        let sc = ascend_scan::scan::scanc::scanc::<F16, F16, F16>(
            dev.spec(),
            dev.memory(),
            &x,
            ascend_scan::ScanCConfig { s: 16, tiles_per_lane },
        ).unwrap();
        let expect = ascend_scan::scan::reference::inclusive(&data);
        let got: Vec<u16> = sc.y.to_vec().iter().map(|v| v.encode()).collect();
        let want: Vec<u16> = expect.iter().map(|v| v.encode()).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn split_is_a_stable_partition(
        data in proptest::collection::vec(any::<u16>(), 1..8_000),
        seed in any::<u64>(),
    ) {
        let mask: Vec<u8> = data
            .iter()
            .enumerate()
            .map(|(i, _)| ((seed >> (i % 64)) & 1) as u8)
            .collect();
        let dev = Device::ascend_910b4();
        let x = dev.tensor(&data).unwrap();
        let m = dev.tensor(&mask).unwrap();
        let run = dev.split(&x, &m).unwrap();

        let mut expect_vals = Vec::new();
        let mut expect_idx = Vec::new();
        for pass in [1u8, 0u8] {
            for (i, (&v, &mk)) in data.iter().zip(&mask).enumerate() {
                if mk == pass {
                    expect_vals.push(v);
                    expect_idx.push(i as u32);
                }
            }
        }
        prop_assert_eq!(run.values.to_vec(), expect_vals);
        prop_assert_eq!(run.indices.to_vec(), expect_idx);
    }

    #[test]
    fn radix_sort_sorts_any_f16_bits(
        bits in proptest::collection::vec(any::<u16>(), 1..4_000),
    ) {
        let data: Vec<F16> = bits.iter().map(|&b| F16::from_bits(b)).collect();
        let dev = Device::ascend_910b4();
        let x = dev.tensor(&data).unwrap();
        let run = dev.sort(&x, SortOrder::Ascending).unwrap();
        let mut expect = data.clone();
        expect.sort_by(F16::total_cmp);
        let got: Vec<u16> = run.values.to_vec().iter().map(|v| v.encode()).collect();
        let want: Vec<u16> = expect.iter().map(|v| v.encode()).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn compress_equals_host_filter(
        data in proptest::collection::vec(any::<u16>(), 1..10_000),
        flip in any::<u64>(),
    ) {
        let mask: Vec<u8> = data
            .iter()
            .enumerate()
            .map(|(i, &v)| u8::from((v as u64 ^ flip ^ i as u64) & 1 == 1))
            .collect();
        let dev = Device::ascend_910b4();
        let x = dev.tensor(&data).unwrap();
        let m = dev.tensor(&mask).unwrap();
        let run = dev.compress(&x, &m).unwrap();
        let expect: Vec<u16> = data
            .iter()
            .zip(&mask)
            .filter(|&(_, &mk)| mk != 0)
            .map(|(&v, _)| v)
            .collect();
        prop_assert_eq!(run.values.to_vec(), expect);
    }

    #[test]
    fn weighted_sample_respects_the_cdf(
        head in 1u32..100,
        theta in 0.0f64..0.99,
    ) {
        // A distribution with all mass uniformly on the first `head`
        // entries: any draw must land inside the head.
        let n = 5_000usize;
        let mut w = vec![0.0f32; n];
        for slot in w.iter_mut().take(head as usize) {
            *slot = 1.0;
        }
        let dev = Device::ascend_910b4();
        let x = dev.tensor(&w).unwrap();
        let run = dev.weighted_sample(&x, theta).unwrap();
        prop_assert!(run.index < head as usize,
            "sample {} escaped the support of size {head}", run.index);
    }

    #[test]
    fn timing_reports_are_internally_consistent(
        n in 1_000usize..50_000,
    ) {
        let dev = Device::ascend_910b4();
        let mask = vec![1u8; n];
        let m = dev.tensor(&mask).unwrap();
        let r = dev.mask_exclusive_scan(&m).unwrap().report;
        // Time covers at least the launch overhead.
        prop_assert!(r.cycles >= dev.spec().launch_cycles);
        // Traffic is at least the paper's 3N + small change for phase 1
        // plus phase 2's read+write.
        prop_assert!(r.bytes_read >= (2 * n) as u64);
        prop_assert!(r.bytes_written >= n as u64);
        // Utilizations are fractions.
        for e in ascend_scan::sim::EngineKind::ALL {
            let u = r.utilization(e, dev.spec().ai_cores * 3);
            prop_assert!((0.0..=1.0).contains(&u), "{e}: {u}");
        }
        // The operator can never beat the chip's peak bandwidth.
        prop_assert!(r.traffic_gbps() <= dev.spec().l2_bytes_per_sec / 1e9 * 1.01);
    }
}
