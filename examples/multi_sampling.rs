//! Multi-sample weighted sampling: repeated inverse-transform draws vs
//! an alias table — the paper's §5 future-work direction, implemented.
//!
//! Drawing one sample costs a full scan of the weights (inverse
//! transform); drawing thousands amortizes an alias-table construction
//! (one scan + one split + pairing) into O(1) per draw.
//!
//! ```text
//! cargo run --release --example multi_sampling
//! ```

use ascend_scan::{Device, KernelReport};

fn main() {
    let dev = Device::ascend_910b4();

    // A skewed 1M-entry distribution (three heavy items over a long tail).
    let n = 1 << 20;
    let mut w: Vec<f32> = (0..n).map(|i| 1.0 / (1.0 + (i % 1000) as f32)).collect();
    w[100] = 50_000.0;
    w[7777] = 25_000.0;
    w[999_999] = 12_500.0;
    let x = dev.tensor(&w).expect("upload weights");

    let k = 256; // samples to draw
    let thetas: Vec<f64> = (0..k).map(|i| (i as f64 + 0.5) / k as f64).collect();

    // --- Strategy 1: inverse transform per draw (scan each time). -----
    let mut it_reports: Vec<KernelReport> = Vec::new();
    let mut it_tokens = Vec::new();
    for &t in thetas.iter().take(8) {
        // 8 draws are enough to see the per-draw cost; extrapolate below.
        let run = dev.weighted_sample(&x, t).expect("inverse transform");
        it_tokens.push(run.index);
        it_reports.push(run.report);
    }
    let per_draw_us = it_reports.iter().map(|r| r.time_us()).sum::<f64>() / it_reports.len() as f64;
    println!("inverse transform: {per_draw_us:.1} us per draw (scan of 1M weights each time)");
    println!(
        "  -> {k} draws would cost ~{:.2} ms",
        per_draw_us * k as f64 / 1e3
    );
    println!("  first draws: {:?}", &it_tokens[..4]);

    // --- Strategy 2: alias table (the future-work route). -------------
    let table = dev.alias_table(&x).expect("build alias table");
    println!(
        "\nalias table built in {:.1} us (scan + split on device, Vose pairing on the scalar unit)",
        table.report.time_us()
    );
    let pairs: Vec<(f64, f64)> = thetas.iter().map(|&t| (t, (t * 7.0) % 1.0)).collect();
    let (tokens, sample_report) = dev.alias_sample(&table, &pairs).expect("alias draws");
    println!(
        "{k} draws in {:.1} us total ({:.2} us per draw)",
        sample_report.time_us(),
        sample_report.time_us() / k as f64
    );
    let amortized = table.report.time_us() + sample_report.time_us();
    println!(
        "build + {k} draws = {:.1} us vs ~{:.0} us by repeated inverse transform ({:.0}x)",
        amortized,
        per_draw_us * k as f64,
        per_draw_us * k as f64 / amortized
    );

    // Heavy items should dominate the draws.
    let heavy_hits = tokens
        .iter()
        .filter(|&&t| t == 100 || t == 7777 || t == 999_999)
        .count();
    println!("\n{heavy_hits}/{k} draws hit the three heavy items (they hold ~86% of the mass)");
    assert!(heavy_hits > k / 2, "heavy items must dominate");
}
