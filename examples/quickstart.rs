//! Quickstart: scan a large array on a simulated Ascend 910B4 and look
//! at the execution profile.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ascend_scan::dtypes::F16;
use ascend_scan::sim::EngineKind;
use ascend_scan::{Device, McScanConfig, ScanKind};

fn main() {
    // A simulated Ascend 910B4: 20 AI cores (1 cube + 2 vector each),
    // 800 GB/s of HBM.
    let dev = Device::ascend_910b4();
    println!("device: {}", dev.spec().name);

    // --- 1. Inclusive scan of 4 Mi fp16 elements on all cores. -------
    let n = 4 << 20;
    let xs: Vec<F16> = (0..n).map(|i| F16::from_f32((i % 2) as f32)).collect();
    let x = dev.tensor(&xs).expect("upload");

    let run = dev.cumsum(&x).expect("mcscan");
    let y = run.y.to_vec();
    println!(
        "\nMCScan over {n} elements: y[0] = {}, y[5] = {} (exact while sums are small)",
        y[0], y[5]
    );
    println!(
        "simulated time {:.1} us  |  operator bandwidth {:.0} GB/s  ({:.1}% of peak)",
        run.report.time_us(),
        run.report.gbps(),
        run.report.fraction_of_peak(dev.spec()) * 100.0
    );
    println!(
        "traffic: {} MB read, {} MB written over {} blocks, {} barrier(s)",
        run.report.bytes_read >> 20,
        run.report.bytes_written >> 20,
        run.report.blocks,
        run.report.sync_rounds
    );
    for e in [
        EngineKind::Cube,
        EngineKind::Vec,
        EngineKind::Mte2,
        EngineKind::Mte3,
    ] {
        println!(
            "  {:<5} utilization {:>5.1}%",
            e.name(),
            run.report.utilization(e, dev.spec().ai_cores * 3) * 100.0
        );
    }

    // --- 2. Exclusive mask scan: the split/compress building block. --
    let mask: Vec<u8> = (0..100_000).map(|i| u8::from(i % 3 == 0)).collect();
    let m = dev.tensor(&mask).expect("upload mask");
    let offs = dev.mask_exclusive_scan(&m).expect("exclusive scan");
    let off_host = offs.y.to_vec();
    println!(
        "\nexclusive mask scan: offsets start {:?}..., total selected = {}",
        &off_host[..6],
        off_host.last().unwrap() + i32::from(*mask.last().unwrap())
    );

    // --- 3. The same scan, tuned by hand. -----------------------------
    let custom = ascend_scan::scan::mcscan::mcscan::<u8, i16, i32>(
        dev.spec(),
        dev.memory(),
        &m,
        McScanConfig {
            s: 64,
            blocks: 8,
            kind: ScanKind::Exclusive,
        },
    )
    .expect("custom mcscan");
    println!(
        "custom config (s = 64, 8 blocks): {:.1} us vs {:.1} us with the default",
        custom.report.time_us(),
        offs.report.time_us()
    );
}
