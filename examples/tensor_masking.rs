//! Tensor masking: `masked_select`-style compaction of attention
//! scores, the paper's Compress operator (Fig. 10) against the scalar
//! `torch.masked_select` baseline.
//!
//! A synthetic attention-pruning workload: keep only the entries of a
//! score tensor above a threshold, producing the compacted survivors and
//! measuring both operators' simulated bandwidth.
//!
//! ```text
//! cargo run --release --example tensor_masking
//! ```

use ascend_scan::dtypes::F16;
use ascend_scan::{Device, GlobalTensor};

fn main() {
    let dev = Device::ascend_910b4();

    // Synthetic attention scores for a (batch=8, heads=16, 256x256)
    // block-sparse pattern flattened to one tensor.
    let n = 8 * 16 * 256 * 256; // 8 Mi scores
    let mut state = 0x243F_6A88_85A3_08D3u64;
    let scores: Vec<F16> = (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            F16::from_f32((state >> 40) as f32 / (1u64 << 24) as f32)
        })
        .collect();
    let threshold = 0.75f32;
    let mask: Vec<u8> = scores
        .iter()
        .map(|s| u8::from(s.to_f32() > threshold))
        .collect();
    let kept_expect = mask.iter().map(|&m| m as usize).sum::<usize>();

    let x = dev.tensor(&scores).expect("upload scores");
    let m = dev.tensor(&mask).expect("upload mask");

    println!(
        "pruning {} attention scores at threshold {threshold}: {} survivors ({:.1}%)\n",
        n,
        kept_expect,
        100.0 * kept_expect as f64 / n as f64
    );

    // --- Compress (exclusive int8 MCScan + GatherMask scatter). -------
    let run = dev.compress(&x, &m).expect("compress");
    assert_eq!(run.n_true, kept_expect);
    let sample: Vec<f32> = run
        .values
        .read_range(0, 4)
        .unwrap()
        .iter()
        .map(|v| v.to_f32())
        .collect();
    println!(
        "compress:           {:>8.2} ms  {:>6.0} GB/s   first survivors: {sample:.3?}",
        run.report.time_ms(),
        run.report.gbps()
    );

    // --- The scalar torch.masked_select baseline. ---------------------
    let (out, base) = ascend_scan::ops::baselines::masked_select(dev.spec(), dev.memory(), &x, &m)
        .expect("baseline");
    assert_eq!(out.len(), kept_expect);
    println!(
        "torch.masked_select {:>8.2} ms  {:>6.1} GB/s",
        base.time_ms(),
        base.gbps()
    );
    println!(
        "\nspeedup: {:.0}x (the stock operator uses neither vector nor cube units)",
        base.time_s() / run.report.time_s()
    );

    // --- SplitInd keeps both partitions + original indices. -----------
    let split = dev.split(&x, &m).expect("split");
    let idx: GlobalTensor<u32> = split.indices;
    let first_kept = idx.read_range(0, 3).unwrap();
    println!(
        "\nSplitInd additionally returns original positions, e.g. first kept indices {first_kept:?}"
    );
}
