//! LLM token sampling: the Llama3-style top-p (nucleus) sampler built
//! from the paper's operators — descending radix sort, MCScan cumulative
//! sum, threshold, inverse-transform draw. Compares against the modeled
//! PyTorch baseline pipeline on a synthetic logit distribution.
//!
//! ```text
//! cargo run --release --example llm_sampling
//! ```

use ascend_scan::dtypes::F16;
use ascend_scan::Device;

/// Synthetic next-token distribution: a softmax-ish Zipf tail with a few
/// dominant tokens, like a confident LLM step.
fn synthetic_token_probs(vocab: usize) -> Vec<F16> {
    let mut probs: Vec<f32> = (0..vocab)
        .map(|i| 1.0 / ((i + 2) as f32).powf(1.3))
        .collect();
    // Three "hot" tokens carry most of the mass.
    probs[42] = 0.30;
    probs[1000 % vocab] = 0.20;
    probs[77] = 0.10;
    let total: f32 = probs.iter().sum();
    probs.iter().map(|&p| F16::from_f32(p / total)).collect()
}

fn main() {
    let dev = Device::ascend_910b4();
    let vocab = 128_000; // Llama3's vocabulary size
    let probs = synthetic_token_probs(vocab);
    let x = dev.tensor(&probs).expect("upload probabilities");

    println!("nucleus sampling over a {vocab}-token vocabulary (p = 0.9)\n");

    // Draw a few tokens at different uniform variates. The kernel is
    // deterministic given theta, so the draws are reproducible.
    println!("  theta   token   nucleus size   simulated time");
    for theta in [0.05, 0.25, 0.45, 0.65, 0.85] {
        let run = dev.top_p(&x, 0.9, theta).expect("top-p sample");
        println!(
            "  {theta:>5.2}  {:>6}  {:>13}  {:>10.2} ms",
            run.token,
            run.n_kept,
            run.report.time_ms()
        );
    }

    // The paper's accounting: one fp16 top-p = 16 radix-sort scans plus
    // one cumulative-sum scan.
    let run = dev.top_p(&x, 0.9, 0.5).expect("top-p sample");
    println!(
        "\nscan invocations per sample (SyncAll rounds): {} — the paper's '17 scans per batch'",
        run.report.sync_rounds
    );

    // Compare with the modeled PyTorch pipeline (torch.sort +
    // torch.cumsum + torch.multinomial).
    let (token, base) = bench_baseline(&dev, &probs);
    println!(
        "\nbaseline PyTorch pipeline: token {token}, {:.2} ms -> ours is {:.2}x faster at this vocab",
        base.time_ms(),
        base.time_s() / run.report.time_s()
    );
}

fn bench_baseline(dev: &Device, probs: &[F16]) -> (u32, ascend_scan::KernelReport) {
    let gm = dev.memory();
    let x = ascend_scan::GlobalTensor::from_slice(gm, probs).expect("upload");
    let spec = dev.spec();
    // torch.sort + torch.cumsum + torch.multinomial, as Fig. 13 measures.
    let (vals, idx, r_sort) = ascend_scan::ops::baselines::sort::<F16>(spec, gm, &x, true).unwrap();
    let (cdf, r_cumsum) = ascend_scan::ops::baselines::cumsum::<F16>(spec, gm, &vals).unwrap();
    let _ = cdf;
    let (pos, r_mult) = ascend_scan::ops::baselines::multinomial(spec, gm, &vals, 0.5).unwrap();
    let token = idx.read_range(pos, 1).unwrap()[0];
    let report = ascend_scan::KernelReport::sequential("torch top-p", &[r_sort, r_cumsum, r_mult]);
    (token, report)
}
