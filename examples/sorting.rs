//! Sorting with matrix multiplications: the paper's fp16 radix sort
//! whose parallel splits run as cube-unit scans, compared against the
//! modeled `torch.sort` baseline (Fig. 11), including `argsort` output.
//!
//! ```text
//! cargo run --release --example sorting
//! ```

use ascend_scan::dtypes::{RadixKey, F16};
use ascend_scan::ops::SortOrder;
use ascend_scan::Device;

fn main() {
    let dev = Device::ascend_910b4();

    // A 2 Mi-element half-precision tensor with the full value range,
    // including negatives and signed zeros.
    let n = 2 << 20;
    let mut state = 0x9E37_79B9u64;
    let values: Vec<F16> = (0..n)
        .map(|i| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = ((state >> 33) as f32 / (1u64 << 31) as f32 - 0.5) * 2000.0;
            if i == 0 {
                F16::NEG_ZERO
            } else {
                F16::from_f32(v)
            }
        })
        .collect();
    let x = dev.tensor(&values).expect("upload");

    println!("sorting {n} fp16 values (16 split passes, one per bit)\n");

    let run = dev.sort(&x, SortOrder::Ascending).expect("radix sort");
    let sorted = run.values.read_range(0, 5).unwrap();
    let top = run.values.read_range(n - 3, 3).unwrap();
    println!(
        "radix sort:  {:>8.2} ms   head {:?}  tail {:?}",
        run.report.time_ms(),
        sorted.iter().map(|v| v.to_f32()).collect::<Vec<_>>(),
        top.iter().map(|v| v.to_f32()).collect::<Vec<_>>()
    );

    // argsort round trip: indices permute the input into sorted order.
    let idx = run.indices.read_range(0, 3).unwrap();
    for (rank, &i) in idx.iter().enumerate() {
        let v = values[i as usize];
        let s = run.values.read_range(rank, 1).unwrap()[0];
        assert_eq!(v.to_bits(), s.to_bits(), "argsort consistency");
    }
    println!("argsort verified: values[indices[r]] == sorted[r]");

    // Verify the IEEE total order against a host sort.
    let mut expect = values.clone();
    expect.sort_by(F16::total_cmp);
    let got = run.values.to_vec();
    assert_eq!(
        got.iter().map(|v| v.encode()).collect::<Vec<_>>(),
        expect.iter().map(|v| v.encode()).collect::<Vec<_>>()
    );
    println!("bit-exact against the host reference (IEEE total order, -0.0 < +0.0)\n");

    // The torch.sort baseline.
    let (bv, _, base) =
        ascend_scan::ops::baselines::sort::<F16>(dev.spec(), dev.memory(), &x, false)
            .expect("baseline sort");
    assert_eq!(bv.to_vec().len(), n);
    println!(
        "torch.sort:  {:>8.2} ms   -> radix sort is {:.2}x faster at N = {n}",
        base.time_ms(),
        base.time_s() / run.report.time_s()
    );
    println!("(the paper reports 1.3x-3.3x for N > 525K; the baseline wins below that)");
}
