//! Root package of the `ascend-scan` workspace: hosts the runnable
//! examples (`examples/`) and the cross-crate integration tests
//! (`tests/`). The library itself lives in the [`ascend_scan`] facade
//! crate and the crates it re-exports.

pub use ascend_scan as lib;
