//! The PyTorch-Ascend baseline operators the paper measures against.
//!
//! Two kinds of baseline live here:
//!
//! * **Real kernels** — [`clone`] (the `torch.clone` copy used as the
//!   roofline reference in Fig. 8) is an ordinary simulator kernel.
//! * **Modeled operators** — `torch.masked_select`, `torch.sort`,
//!   `torch.multinomial` and the baseline top-k are *opaque* library
//!   operators on the real system (the paper treats them as black
//!   boxes). They are reproduced as documented cost models: the
//!   functional result is computed exactly (host-side), and the
//!   simulated time is an explicit formula calibrated to the paper's
//!   observed behaviour — e.g. `masked_select` "does not use the vector
//!   or cube units" (paper footnote), so it is charged scalar-unit
//!   cycles per element on a single core.
//!
//! Every model's constants are `pub` so the benchmark harness can show
//! and vary them.

use ascend_sim::mem::GlobalMemory;
use ascend_sim::KernelReport;
use ascendc::{launch, ChipSpec, GlobalTensor, ScratchpadKind, SimError, SimResult};
use dtypes::{Element, Numeric, RadixKey, F16};
use std::sync::Arc;

/// Scalar-unit cycles `torch.masked_select` spends per input element
/// (single scalar pipeline, no vector/cube engines — paper's footnote 4).
pub const MASKED_SELECT_CYCLES_PER_ELEM: f64 = 9.0;

/// Vector cycles per element per merge level for the `torch.sort`
/// baseline model (multi-core merge sort with vectorized local phases).
pub const SORT_CYCLES_PER_ELEM_LEVEL: f64 = 0.12;

/// Fixed host+device dispatch overhead of one opaque torch operator, in
/// cycles (~11 µs at 1.8 GHz — profiler-visible op latency).
pub const TORCH_OP_OVERHEAD_CYCLES: u64 = 20_000;

/// Vector cycles per element for the baseline `torch.topk` (single
/// filtering pass + per-core heaps; efficient for small k).
pub const TOPK_BASE_CYCLES_PER_ELEM: f64 = 0.08;

/// Vector cycles per element for `torch.multinomial`'s CDF build +
/// binary search.
pub const MULTINOMIAL_CYCLES_PER_ELEM: f64 = 0.55;

/// Support-size cap of the Ascend `torch.multinomial` baseline (2²⁴).
pub const MULTINOMIAL_MAX_SUPPORT: usize = 1 << 24;

fn modeled_report(
    spec: &ChipSpec,
    name: &str,
    compute_cycles: f64,
    bytes_read: u64,
    bytes_written: u64,
) -> KernelReport {
    // An opaque operator is still subject to the memory roofline.
    let bw_cycles = spec.gm_bound_cycles(bytes_read + bytes_written, usize::MAX);
    let cycles = TORCH_OP_OVERHEAD_CYCLES + (compute_cycles.ceil() as u64).max(bw_cycles);
    KernelReport {
        name: name.to_string(),
        blocks: spec.ai_cores,
        cycles,
        clock_ghz: spec.clock_ghz,
        bytes_read,
        bytes_written,
        useful_bytes: 0,
        elements: 0,
        // An opaque op streams its I/O once: footprint == traffic.
        working_set: bytes_read + bytes_written,
        engine_busy: [0; 7],
        engine_instructions: [0; 7],
        sync_rounds: 0,
        stalls: Default::default(),
        barrier_waits: Vec::new(),
        flag_waits: Vec::new(),
        critical_path: None,
    }
}

/// `torch.clone`: a pure device copy, implemented as a real multi-core
/// MTE kernel (the Fig. 8 roofline reference).
pub fn clone<E: Element>(
    spec: &ChipSpec,
    gm: &Arc<GlobalMemory>,
    x: &GlobalTensor<E>,
) -> SimResult<(GlobalTensor<E>, KernelReport)> {
    let n = x.len();
    let y = GlobalTensor::<E>::new(gm, n)?;
    let piece = 8192usize.min(spec.ub_capacity / (2 * E::SIZE).max(1));
    let spans: Vec<(usize, usize)> = {
        let mut v = Vec::new();
        let mut off = 0;
        while off < n {
            let valid = piece.min(n - off);
            v.push((off, valid));
            off += valid;
        }
        v
    };
    let mut report = launch(spec, gm, spec.ai_cores, "torch.clone", |ctx| {
        let lane0 = ctx.block_idx as usize * ctx.vecs.len();
        let stride = ctx.block_dim as usize * ctx.vecs.len();
        for v in 0..ctx.vecs.len() {
            let vc = &mut ctx.vecs[v];
            let mut q = ascendc::TQue::<E>::new(vc, ScratchpadKind::Ub, 2, piece)?;
            for &(off, valid) in spans.iter().skip(lane0 + v).step_by(stride) {
                let mut buf = q.alloc_tensor()?;
                vc.copy_in(&mut buf, 0, x, off, valid, &[])?;
                let ev = vc.copy_out(&y, off, &buf, 0, valid, &[])?;
                q.free_tensor(buf, ev);
            }
            q.destroy(vc)?;
        }
        Ok(())
    })?;
    report.elements = n as u64;
    report.useful_bytes = (2 * n * E::SIZE) as u64;
    Ok((y, report))
}

/// `torch.masked_select` (Ascend): scalar-unit-only selection — the
/// paper's footnote documents that the stock operator uses neither the
/// vector nor the cube units, which is why Compress dominates it.
pub fn masked_select<E: Element>(
    spec: &ChipSpec,
    gm: &Arc<GlobalMemory>,
    x: &GlobalTensor<E>,
    mask: &GlobalTensor<u8>,
) -> SimResult<(GlobalTensor<E>, KernelReport)> {
    if x.len() != mask.len() {
        return Err(SimError::InvalidArgument(
            "masked_select: length mismatch".into(),
        ));
    }
    let n = x.len();
    let selected: Vec<E> = x
        .to_vec()
        .into_iter()
        .zip(mask.to_vec())
        .filter(|&(_, m)| m != 0)
        .map(|(v, _)| v)
        .collect();
    let out = GlobalTensor::from_slice(gm, &selected)?;
    let mut report = modeled_report(
        spec,
        "torch.masked_select",
        n as f64 * MASKED_SELECT_CYCLES_PER_ELEM,
        (n * (E::SIZE + 1)) as u64,
        (selected.len() * E::SIZE) as u64,
    );
    report.elements = n as u64;
    report.useful_bytes = (n * (E::SIZE + 1) + selected.len() * E::SIZE) as u64;
    Ok((out, report))
}

/// `torch.sort` (Ascend): modeled multi-core merge sort. Returns sorted
/// values and the argsort indices, like the PyTorch API.
pub fn sort<K>(
    spec: &ChipSpec,
    gm: &Arc<GlobalMemory>,
    x: &GlobalTensor<K>,
    descending: bool,
) -> SimResult<(GlobalTensor<K>, GlobalTensor<u32>, KernelReport)>
where
    K: RadixKey + Element,
{
    let n = x.len();
    let data = x.to_vec();
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by_key(|&i| {
        let e = data[i as usize].encode().into();
        if descending {
            u64::MAX - e
        } else {
            e
        }
    });
    let values: Vec<K> = order.iter().map(|&i| data[i as usize]).collect();
    let vt = GlobalTensor::from_slice(gm, &values)?;
    let it = GlobalTensor::from_slice(gm, &order)?;

    let levels = (n.max(2) as f64).log2();
    let mut report = modeled_report(
        spec,
        "torch.sort",
        n as f64 * levels * SORT_CYCLES_PER_ELEM_LEVEL,
        // Merge passes stream values+indices once per level pair.
        (n as f64 * (K::SIZE + 4) as f64 * (levels / 2.0)) as u64,
        (n as f64 * (K::SIZE + 4) as f64 * (levels / 2.0)) as u64,
    );
    report.elements = n as u64;
    report.useful_bytes = (n * K::SIZE + n * (K::SIZE + 4)) as u64;
    Ok((vt, it, report))
}

/// Baseline `torch.topk` (Ascend): modeled single-sweep selection with
/// per-core heaps — fast for small `k`, which is exactly the regime
/// where the paper's SplitInd-based top-k fails to beat it.
pub fn topk_baseline<K>(
    spec: &ChipSpec,
    gm: &Arc<GlobalMemory>,
    x: &GlobalTensor<K>,
    k: usize,
) -> SimResult<(GlobalTensor<K>, GlobalTensor<u32>, KernelReport)>
where
    K: RadixKey + Element,
{
    let n = x.len();
    if k == 0 || k > n {
        return Err(SimError::InvalidArgument(format!(
            "topk_baseline: k {k} out of range 1..={n}"
        )));
    }
    let data = x.to_vec();
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by_key(|&i| u64::MAX - data[i as usize].encode().into());
    order.truncate(k);
    let values: Vec<K> = order.iter().map(|&i| data[i as usize]).collect();
    let vt = GlobalTensor::from_slice(gm, &values)?;
    let it = GlobalTensor::from_slice(gm, &order)?;

    // One streaming pass over the input plus a k·log k merge of the
    // per-core candidate heaps.
    let merge = (k as f64) * (k.max(2) as f64).log2() * 0.5;
    let mut report = modeled_report(
        spec,
        "torch.topk",
        n as f64 * TOPK_BASE_CYCLES_PER_ELEM + merge,
        (n * K::SIZE) as u64,
        (k * (K::SIZE + 4)) as u64,
    );
    report.elements = n as u64;
    report.useful_bytes = (n * K::SIZE + k * (K::SIZE + 4)) as u64;
    Ok((vt, it, report))
}

/// `torch.multinomial` (Ascend): modeled CDF build + search. Faithfully
/// reproduces the baseline's 2²⁴ support-size cap (the functional
/// limitation the paper's weighted sampling removes).
pub fn multinomial(
    spec: &ChipSpec,
    gm: &Arc<GlobalMemory>,
    w: &GlobalTensor<F16>,
    theta: f64,
) -> SimResult<(usize, KernelReport)> {
    let n = w.len();
    if n == 0 {
        return Err(SimError::InvalidArgument(
            "multinomial: empty weights".into(),
        ));
    }
    if n > MULTINOMIAL_MAX_SUPPORT {
        return Err(SimError::InvalidArgument(format!(
            "multinomial: support size {n} exceeds the baseline's 2^24 cap"
        )));
    }
    let _ = gm;
    let weights = w.to_vec();
    let total: f64 = weights.iter().map(|v| v.to_f64()).sum();
    if total <= 0.0 {
        return Err(SimError::InvalidArgument(
            "multinomial: weights sum to zero".into(),
        ));
    }
    let target = theta * total;
    let mut acc = 0.0;
    let mut index = n - 1;
    for (i, v) in weights.iter().enumerate() {
        acc += v.to_f64();
        if acc > target {
            index = i;
            break;
        }
    }
    let mut report = modeled_report(
        spec,
        "torch.multinomial",
        n as f64 * MULTINOMIAL_CYCLES_PER_ELEM,
        (n * F16::SIZE) as u64,
        (n * 4) as u64, // f32 CDF materialization
    );
    report.elements = n as u64;
    report.useful_bytes = (n * F16::SIZE) as u64;
    Ok((index, report))
}

/// `torch.cumsum` (Ascend): the unoptimized vector-only scan — simply
/// the CumSum baseline kernel from the `scan` crate.
pub fn cumsum<T: Numeric>(
    spec: &ChipSpec,
    gm: &Arc<GlobalMemory>,
    x: &GlobalTensor<T>,
) -> SimResult<(GlobalTensor<T>, KernelReport)> {
    // Pick the largest power-of-two row length whose double-buffered
    // s*s tile fits UB (128 on the 910B4, smaller on the test chip).
    let mut s = 8;
    while s <= 64 && 2 * (2 * s) * (2 * s) * T::SIZE + 2 * s * T::SIZE <= spec.ub_capacity {
        s *= 2;
    }
    let run = scan::baseline::cumsum_vec_only(spec, gm, x, s, 1)?;
    Ok((run.y, run.report))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (ChipSpec, Arc<GlobalMemory>) {
        let spec = ChipSpec::tiny();
        let gm = Arc::new(GlobalMemory::new(spec.hbm_capacity));
        (spec, gm)
    }

    #[test]
    fn clone_copies_and_reports_bandwidth() {
        let (spec, gm) = setup();
        let data: Vec<u16> = (0..5000).collect();
        let x = GlobalTensor::from_slice(&gm, &data).unwrap();
        let (y, report) = clone(&spec, &gm, &x).unwrap();
        assert_eq!(y.to_vec(), data);
        assert_eq!(report.bytes_read, 10_000);
        assert_eq!(report.bytes_written, 10_000);
        assert!(report.gbps() > 0.0);
    }

    #[test]
    fn masked_select_filters() {
        let (spec, gm) = setup();
        let data: Vec<u16> = (0..100).collect();
        let mask: Vec<u8> = (0..100).map(|i| (i % 4 == 0) as u8).collect();
        let x = GlobalTensor::from_slice(&gm, &data).unwrap();
        let m = GlobalTensor::from_slice(&gm, &mask).unwrap();
        let (out, _) = masked_select(&spec, &gm, &x, &m).unwrap();
        assert_eq!(out.to_vec(), (0..100).step_by(4).collect::<Vec<u16>>());
    }

    #[test]
    fn sort_orders_both_ways() {
        let (spec, gm) = setup();
        let data: Vec<u16> = vec![5, 1, 9, 3, 3, 7];
        let x = GlobalTensor::from_slice(&gm, &data).unwrap();
        let (v, i, _) = sort(&spec, &gm, &x, false).unwrap();
        assert_eq!(v.to_vec(), vec![1, 3, 3, 5, 7, 9]);
        assert_eq!(i.to_vec()[0], 1);
        let (v, _, _) = sort(&spec, &gm, &x, true).unwrap();
        assert_eq!(v.to_vec(), vec![9, 7, 5, 3, 3, 1]);
    }

    #[test]
    fn topk_baseline_selects() {
        let (spec, gm) = setup();
        let data: Vec<u16> = (0..1000).map(|i| (i * 37 % 997) as u16).collect();
        let x = GlobalTensor::from_slice(&gm, &data).unwrap();
        let (v, idx, _) = topk_baseline(&spec, &gm, &x, 5).unwrap();
        let mut expect = data.clone();
        expect.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(v.to_vec(), &expect[..5]);
        for (val, &i) in v.to_vec().iter().zip(&idx.to_vec()) {
            assert_eq!(data[i as usize], *val);
        }
        assert!(topk_baseline(&spec, &gm, &x, 0).is_err());
    }

    #[test]
    fn multinomial_caps_support_size() {
        let (spec, gm) = setup();
        let w = GlobalTensor::from_slice(&gm, &[F16::ONE; 100]).unwrap();
        let (idx, _) = multinomial(&spec, &gm, &w, 0.5).unwrap();
        assert!(
            (45..55).contains(&idx),
            "uniform draw near the middle, got {idx}"
        );
        // The cap itself (2^24) is too large to allocate in a unit test;
        // the guard is a plain length check, so exercise the error path
        // by temporarily lowering... the constant is pub but const. We
        // instead assert the constant's documented value.
        assert_eq!(MULTINOMIAL_MAX_SUPPORT, 1 << 24);
    }

    #[test]
    fn cumsum_baseline_works() {
        let (spec, gm) = setup();
        let data: Vec<i32> = (0..500).collect();
        let x = GlobalTensor::from_slice(&gm, &data).unwrap();
        let (y, _) = cumsum(&spec, &gm, &x).unwrap();
        assert_eq!(y.to_vec(), scan::reference::inclusive(&data));
    }

    #[test]
    fn modeled_reports_respect_bandwidth_floor() {
        let spec = ChipSpec::tiny();
        // 100 MB at 100 GB/s on 1 GHz = 1e6 cycles minimum.
        let r = modeled_report(&spec, "m", 10.0, 50_000_000, 50_000_000);
        assert!(r.cycles >= 1_000_000);
    }
}
