//! **Weighted sampling** by inverse transform — §5 "Weighted Sampling".
//!
//! Given non-negative weights `w`, draw index `i` with probability
//! `w[i] / Σw`: scan the weights (MCScan), then invoke SplitInd with the
//! element-wise predicate `scan(w)[i] > θ·Σw` for a uniform `θ` — the
//! cumulative sums exceeding the threshold form the true partition, and
//! the last entry of SplitInd's index output identifies the boundary,
//! i.e. the sample.
//!
//! Unlike the Ascend `torch.multinomial` baseline (capped at 2²⁴
//! support), this works for arbitrary support sizes — the functional
//! improvement the paper claims.

use ascend_sim::mem::GlobalMemory;
use ascend_sim::KernelReport;
use ascendc::{launch, ChipSpec, CmpMode, GlobalTensor, ScratchpadKind, SimError, SimResult};
use dtypes::Numeric;
use scan::mcscan::{mcscan, McScanConfig, ScanKind};
use std::sync::Arc;

/// Result of [`weighted_sample`].
pub struct WeightedRun {
    /// The sampled index.
    pub index: usize,
    /// Combined execution report (scan + threshold + split).
    pub report: KernelReport,
}

/// Draws one index from the distribution proportional to `w`, using the
/// uniform variate `theta ∈ [0, 1)` supplied by the caller (callers
/// bring their own RNG — the kernel itself is deterministic).
///
/// `W` is the weight element type (`F16` in the paper's LLM setting;
/// `f32` works too). Weights must be non-negative.
pub fn weighted_sample<W>(
    spec: &ChipSpec,
    gm: &Arc<GlobalMemory>,
    w: &GlobalTensor<W>,
    theta: f64,
    s: usize,
    blocks: u32,
) -> SimResult<WeightedRun>
where
    W: dtypes::CubeInput,
{
    let n = w.len();
    if n == 0 {
        return Err(SimError::InvalidArgument(
            "weighted_sample: empty weight vector".into(),
        ));
    }
    if !(0.0..1.0).contains(&theta) {
        return Err(SimError::InvalidArgument(format!(
            "weighted_sample: theta {theta} outside [0, 1)"
        )));
    }

    // 1. Inclusive scan of the weights.
    let scan_run = mcscan::<W, W, W>(
        spec,
        gm,
        w,
        McScanConfig {
            s,
            blocks,
            kind: ScanKind::Inclusive,
        },
    )?;
    let cdf = scan_run.y;
    let total = cdf.read_range(n - 1, 1)?[0].to_f64();
    if total <= 0.0 {
        return Err(SimError::InvalidArgument(
            "weighted_sample: weights sum to zero".into(),
        ));
    }
    let threshold = W::from_f64(theta * total);

    // 2. Predicate kernel + boundary search. The paper routes this
    // through SplitInd; the sample is the first index whose cumulative
    // sum exceeds θ·Σw, which SplitInd exposes as the entry before the
    // partition boundary. We fuse the predicate and the boundary scan
    // into one vector kernel (same traffic as the mask of SplitInd, no
    // value movement) — each vector core finds the first exceeding
    // index in its chunk and the host takes the minimum.
    let (index, search_report) = cdf_search(spec, gm, &cdf, n, threshold, blocks)?;

    let mut report = KernelReport::sequential("WeightedSample", &[scan_run.report, search_report]);
    report.elements = n as u64;
    report.useful_bytes = (n * W::SIZE) as u64;
    Ok(WeightedRun { index, report })
}

/// Finds the first index `i < n` with `cdf[i] > threshold` (the inverse-
/// transform boundary search), clamped to `n - 1` if none exceeds.
///
/// Each vector core counts the exceeding elements of its pieces with
/// `Compare` + `ReduceSum`; because the CDF is monotone, the first hit of
/// a piece is `off + valid - count`. Shared with top-p sampling, which
/// reuses the sort's cumulative sums instead of rescanning — that is why
/// top-p costs 17 scans, not 18.
pub(crate) fn cdf_search<W: Numeric>(
    spec: &ChipSpec,
    gm: &Arc<GlobalMemory>,
    cdf: &GlobalTensor<W>,
    n: usize,
    threshold: W,
    blocks: u32,
) -> SimResult<(usize, KernelReport)> {
    let first_hits = GlobalTensor::<u32>::new(gm, (blocks as usize) * spec.vec_per_core as usize)?;
    let piece = crate::ub_piece(spec, W::SIZE + 1 + 4, 4096);
    let spans: Vec<(usize, usize)> = {
        let mut v = Vec::new();
        let mut off = 0;
        while off < n {
            let valid = piece.min(n - off);
            v.push((off, valid));
            off += valid;
        }
        v
    };
    let report = launch(spec, gm, blocks, "CdfSearch", |ctx| {
        let lane0 = ctx.block_idx as usize * ctx.vecs.len();
        let stride = ctx.block_dim as usize * ctx.vecs.len();
        for v in 0..ctx.vecs.len() {
            let lane = lane0 + v;
            let vc = &mut ctx.vecs[v];
            let mut buf = vc.alloc_local::<W>(ScratchpadKind::Ub, piece)?;
            let mut mk = vc.alloc_local::<u8>(ScratchpadKind::Ub, piece)?;
            let mut wide = vc.alloc_local::<i32>(ScratchpadKind::Ub, piece)?;
            let mut best = u32::MAX;
            let mut best_ready = 0;
            for &(off, valid) in spans.iter().skip(lane).step_by(stride) {
                vc.copy_in(&mut buf, 0, cdf, off, valid, &[])?;
                vc.vcompare_scalar(&mut mk, &buf, 0, valid, CmpMode::Gt, threshold, 0)?;
                // Widen the mask before reducing (a u8 sum wraps at 255)
                // and count the exceeding elements; the first hit in this
                // piece is `off + valid - count` because the CDF is
                // monotone.
                vc.vcast::<u8, i32>(&mut wide, &mk, 0, valid)?;
                let (count, ready) = vc.reduce_sum(&wide, 0, valid)?;
                if count > 0 && best == u32::MAX {
                    best = (off + valid - count as usize) as u32;
                }
                best_ready = vc.scalar_ops(2, &[ready, best_ready])?;
            }
            let mut one = vc.alloc_local::<u32>(ScratchpadKind::Ub, 1)?;
            vc.insert(&mut one, 0, best, best_ready)?;
            vc.copy_out(&first_hits, lane, &one, 0, 1, &[])?;
            vc.free_local(one)?;
            vc.free_local(buf)?;
            vc.free_local(mk)?;
            vc.free_local(wide)?;
        }
        Ok(())
    })?;

    let index = first_hits
        .to_vec()
        .into_iter()
        .min()
        .unwrap_or(u32::MAX)
        .min((n - 1) as u32) as usize;
    Ok((index, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtypes::F16;

    fn setup() -> (ChipSpec, Arc<GlobalMemory>) {
        let spec = ChipSpec::tiny();
        let gm = Arc::new(GlobalMemory::new(spec.hbm_capacity));
        (spec, gm)
    }

    #[test]
    fn deterministic_inverse_transform() {
        let (spec, gm) = setup();
        // Weights 1,2,3,4 -> CDF 1,3,6,10; thresholds pick predictably.
        let w: Vec<f32> = vec![1.0, 2.0, 3.0, 4.0];
        let t = GlobalTensor::from_slice(&gm, &w).unwrap();
        for (theta, expect) in [
            (0.05, 0usize), // 0.5 < 1
            (0.15, 1),      // 1.5 in (1, 3]
            (0.45, 2),      // 4.5 in (3, 6]
            (0.95, 3),      // 9.5 in (6, 10]
        ] {
            let run = weighted_sample::<f32>(&spec, &gm, &t, theta, 16, 1).unwrap();
            assert_eq!(run.index, expect, "theta = {theta}");
        }
    }

    #[test]
    fn mass_on_single_element() {
        let (spec, gm) = setup();
        let mut w = vec![0.0f32; 1000];
        w[777] = 5.0;
        let t = GlobalTensor::from_slice(&gm, &w).unwrap();
        for theta in [0.0, 0.3, 0.9] {
            let run = weighted_sample::<f32>(&spec, &gm, &t, theta, 16, 2).unwrap();
            assert_eq!(run.index, 777);
        }
    }

    #[test]
    fn f16_weights() {
        let (spec, gm) = setup();
        let w: Vec<F16> = (0..512)
            .map(|i| {
                if i == 100 {
                    F16::from_f32(8.0)
                } else {
                    F16::ZERO
                }
            })
            .collect();
        let t = GlobalTensor::from_slice(&gm, &w).unwrap();
        let run = weighted_sample::<F16>(&spec, &gm, &t, 0.5, 16, 2).unwrap();
        assert_eq!(run.index, 100);
    }

    #[test]
    fn supports_large_support_sizes() {
        // The baseline multinomial caps at 2^24; this one should accept
        // any length (we use a modest one to keep the test fast, and
        // check no artificial cap is applied).
        let (spec, gm) = setup();
        let w = vec![1.0f32; 70000];
        let t = GlobalTensor::from_slice(&gm, &w).unwrap();
        let run = weighted_sample::<f32>(&spec, &gm, &t, 0.5, 16, 2).unwrap();
        // Uniform weights: theta = 0.5 lands near the middle.
        assert!(
            (run.index as i64 - 35000).abs() < 100,
            "index {}",
            run.index
        );
    }

    #[test]
    fn rejects_bad_input() {
        let (spec, gm) = setup();
        let t = GlobalTensor::<f32>::new(&gm, 0).unwrap();
        assert!(weighted_sample::<f32>(&spec, &gm, &t, 0.5, 16, 1).is_err());
        let t = GlobalTensor::from_slice(&gm, &[1.0f32]).unwrap();
        assert!(weighted_sample::<f32>(&spec, &gm, &t, 1.5, 16, 1).is_err());
        let zeros = GlobalTensor::from_slice(&gm, &[0.0f32; 10]).unwrap();
        assert!(weighted_sample::<f32>(&spec, &gm, &zeros, 0.5, 16, 1).is_err());
    }
}
