//! LSB **radix sort** on top of SplitInd — the paper's §5 "Radix sort".
//!
//! The sort loops over the bits of the (order-preserving encoded) keys,
//! least significant first, and performs one stable [`split`] per bit
//! with the mask "bit is 0" (ascending). Each split is an exclusive
//! int8 MCScan — running on the cube units — plus a vector scatter; the
//! **RadixSingle** vector kernel extracts each pass's radix with
//! `ShiftRight`/`And`/`Compare`.
//!
//! Floats are supported through the pre-/post-processing encode passes
//! (invert the MSB of non-negatives, all bits of negatives — Knuth
//! §5.2.5 ex. 8–9 / the CM-2 paper the authors cite): an unsigned radix
//! sort of the encoded keys orders the originals correctly, including
//! -0.0 < +0.0 and NaNs above +∞.
//!
//! Output indices are permuted alongside the keys on every pass, so the
//! result matches the PyTorch `sort()` API (values and `argsort`).
//!
//! [`split`]: crate::split::split_ind

use crate::split::scatter_by_mask;
use ascend_sim::mem::GlobalMemory;
use ascend_sim::KernelReport;
use ascendc::vecops::Bits;
use ascendc::{launch, ChipSpec, CmpMode, GlobalTensor, ScratchpadKind, SimResult};
use dtypes::{Element, Numeric, RadixKey};
use scan::mcscan::{mcscan, McScanConfig, ScanKind};
use std::sync::Arc;

/// Sort direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SortOrder {
    /// Smallest first.
    Ascending,
    /// Largest first (what top-p sampling needs).
    Descending,
}

/// Result of [`radix_sort`].
pub struct SortRun<K: Element> {
    /// The sorted values.
    pub values: GlobalTensor<K>,
    /// `argsort`: original index of each output element.
    pub indices: GlobalTensor<u32>,
    /// Combined execution report over all passes.
    pub report: KernelReport,
}

/// Elements per piece in the radix-extraction and codec kernels.
const PIECE_CAP: usize = 2048;

/// Stable radix sort of `x` (values + original indices), using the
/// MCScan-based split for every bit plane.
///
/// `s`/`blocks` configure the underlying MCScan launches.
pub fn radix_sort<K>(
    spec: &ChipSpec,
    gm: &Arc<GlobalMemory>,
    x: &GlobalTensor<K>,
    s: usize,
    blocks: u32,
    order: SortOrder,
) -> SimResult<SortRun<K>>
where
    K: RadixKey + Element,
    K::Encoded: Element + Bits + Numeric,
{
    let n = x.len();
    let values = GlobalTensor::<K>::new(gm, n)?;
    let indices = GlobalTensor::<u32>::new(gm, n)?;
    if n == 0 {
        return Ok(SortRun {
            values,
            indices,
            report: KernelReport::sequential(
                "RadixSort",
                &[launch(spec, gm, 1, "noop", |_| Ok(()))?],
            ),
        });
    }

    let mut keys_a = GlobalTensor::<K::Encoded>::new(gm, n)?;
    let mut keys_b = GlobalTensor::<K::Encoded>::new(gm, n)?;
    let mut idx_a = GlobalTensor::<u32>::new(gm, n)?;
    let mut idx_b = GlobalTensor::<u32>::new(gm, n)?;
    let mask = GlobalTensor::<u8>::new(gm, n)?;
    let mut reports = Vec::with_capacity(2 + 3 * K::BITS as usize);

    // --- Pre-processing: encode keys, materialize indices. ---
    reports.push(encode_kernel::<K>(spec, gm, blocks, x, &keys_a, &idx_a)?);

    // --- One split per bit plane. ---
    for bit in 0..K::BITS {
        reports.push(radix_single::<K>(
            spec, gm, blocks, &keys_a, &mask, bit, order,
        )?);

        let scan_run = mcscan::<u8, i16, i32>(
            spec,
            gm,
            &mask,
            McScanConfig {
                s,
                blocks,
                kind: ScanKind::Exclusive,
            },
        )?;
        let offs = scan_run.y;
        reports.push(scan_run.report);
        let n_true =
            (offs.read_range(n - 1, 1)?[0] + i32::from(mask.read_range(n - 1, 1)?[0])) as usize;

        reports.push(scatter_by_mask::<K::Encoded>(
            spec,
            gm,
            blocks,
            &keys_a,
            Some(&idx_a),
            &mask,
            &offs,
            n_true,
            &keys_b,
            Some(&idx_b),
            true,
        )?);
        std::mem::swap(&mut keys_a, &mut keys_b);
        std::mem::swap(&mut idx_a, &mut idx_b);
    }

    // --- Post-processing: decode keys back to values. ---
    reports.push(decode_kernel::<K>(spec, gm, blocks, &keys_a, &values)?);
    // The index array ends up in idx_a after an even number of swaps.
    copy_indices(spec, gm, blocks, &idx_a, &indices, &mut reports)?;

    let mut report = KernelReport::sequential("RadixSort", &reports);
    report.elements = n as u64;
    report.useful_bytes = (n * K::SIZE + n * (K::SIZE + 4)) as u64;
    Ok(SortRun {
        values,
        indices,
        report,
    })
}

fn pieces(piece: usize, n: usize) -> Vec<(usize, usize)> {
    let mut v = Vec::new();
    let mut off = 0;
    while off < n {
        let valid = piece.min(n - off);
        v.push((off, valid));
        off += valid;
    }
    v
}

/// Pre-processing kernel: order-preserving encode + index ramp.
fn encode_kernel<K>(
    spec: &ChipSpec,
    gm: &Arc<GlobalMemory>,
    blocks: u32,
    x: &GlobalTensor<K>,
    keys: &GlobalTensor<K::Encoded>,
    idx: &GlobalTensor<u32>,
) -> SimResult<KernelReport>
where
    K: RadixKey + Element,
    K::Encoded: Element + Bits + Numeric,
{
    let piece = crate::ub_piece(
        spec,
        K::SIZE + std::mem::size_of::<K::Encoded>() + 4,
        PIECE_CAP,
    );
    let spans = pieces(piece, x.len());
    launch(spec, gm, blocks, "RadixEncode", |ctx| {
        let lane0 = ctx.block_idx as usize * ctx.vecs.len();
        let stride = ctx.block_dim as usize * ctx.vecs.len();
        for v in 0..ctx.vecs.len() {
            let vc = &mut ctx.vecs[v];
            let mut raw = vc.alloc_local::<K>(ScratchpadKind::Ub, piece)?;
            let mut enc = vc.alloc_local::<K::Encoded>(ScratchpadKind::Ub, piece)?;
            let mut ramp = vc.alloc_local::<u32>(ScratchpadKind::Ub, piece)?;
            for &(off, valid) in spans.iter().skip(lane0 + v).step_by(stride) {
                vc.copy_in(&mut raw, 0, x, off, valid, &[])?;
                vc.vradix_encode::<K>(&mut enc, &raw, 0, valid)?;
                vc.copy_out(keys, off, &enc, 0, valid, &[])?;
                vc.viota(&mut ramp, 0, valid, off as u32)?;
                vc.copy_out(idx, off, &ramp, 0, valid, &[])?;
            }
            vc.free_local(raw)?;
            vc.free_local(enc)?;
            vc.free_local(ramp)?;
        }
        Ok(())
    })
}

/// The RadixSingle kernel: extracts bit `bit` of every key into the
/// split mask (`ShiftRight` + `And` + `Compare`).
fn radix_single<K>(
    spec: &ChipSpec,
    gm: &Arc<GlobalMemory>,
    blocks: u32,
    keys: &GlobalTensor<K::Encoded>,
    mask: &GlobalTensor<u8>,
    bit: u32,
    order: SortOrder,
) -> SimResult<KernelReport>
where
    K: RadixKey + Element,
    K::Encoded: Element + Bits + Numeric,
{
    let piece = crate::ub_piece(spec, std::mem::size_of::<K::Encoded>() + 1, PIECE_CAP);
    let spans = pieces(piece, keys.len());
    launch(spec, gm, blocks, "RadixSingle", |ctx| {
        let lane0 = ctx.block_idx as usize * ctx.vecs.len();
        let stride = ctx.block_dim as usize * ctx.vecs.len();
        for v in 0..ctx.vecs.len() {
            let vc = &mut ctx.vecs[v];
            let mut buf = vc.alloc_local::<K::Encoded>(ScratchpadKind::Ub, piece)?;
            let mut mk = vc.alloc_local::<u8>(ScratchpadKind::Ub, piece)?;
            for &(off, valid) in spans.iter().skip(lane0 + v).step_by(stride) {
                vc.copy_in(&mut buf, 0, keys, off, valid, &[])?;
                vc.vshr(&mut buf, 0, valid, bit)?;
                vc.vand_scalar(&mut buf, 0, valid, K::Encoded::one())?;
                // Ascending: zero bits go first; descending: one bits.
                let mode = match order {
                    SortOrder::Ascending => CmpMode::Eq,
                    SortOrder::Descending => CmpMode::Ne,
                };
                vc.vcompare_scalar(&mut mk, &buf, 0, valid, mode, K::Encoded::zero(), 0)?;
                vc.copy_out(mask, off, &mk, 0, valid, &[])?;
            }
            vc.free_local(buf)?;
            vc.free_local(mk)?;
        }
        Ok(())
    })
}

/// Post-processing kernel: decode keys back into the value domain.
fn decode_kernel<K>(
    spec: &ChipSpec,
    gm: &Arc<GlobalMemory>,
    blocks: u32,
    keys: &GlobalTensor<K::Encoded>,
    values: &GlobalTensor<K>,
) -> SimResult<KernelReport>
where
    K: RadixKey + Element,
    K::Encoded: Element + Bits + Numeric,
{
    let piece = crate::ub_piece(spec, K::SIZE + std::mem::size_of::<K::Encoded>(), PIECE_CAP);
    let spans = pieces(piece, keys.len());
    launch(spec, gm, blocks, "RadixDecode", |ctx| {
        let lane0 = ctx.block_idx as usize * ctx.vecs.len();
        let stride = ctx.block_dim as usize * ctx.vecs.len();
        for v in 0..ctx.vecs.len() {
            let vc = &mut ctx.vecs[v];
            let mut enc = vc.alloc_local::<K::Encoded>(ScratchpadKind::Ub, piece)?;
            let mut out = vc.alloc_local::<K>(ScratchpadKind::Ub, piece)?;
            for &(off, valid) in spans.iter().skip(lane0 + v).step_by(stride) {
                vc.copy_in(&mut enc, 0, keys, off, valid, &[])?;
                vc.vradix_decode::<K>(&mut out, &enc, 0, valid)?;
                vc.copy_out(values, off, &out, 0, valid, &[])?;
            }
            vc.free_local(enc)?;
            vc.free_local(out)?;
        }
        Ok(())
    })
}

/// Copies the final index permutation into the caller-visible tensor.
fn copy_indices(
    spec: &ChipSpec,
    gm: &Arc<GlobalMemory>,
    blocks: u32,
    src: &GlobalTensor<u32>,
    dst: &GlobalTensor<u32>,
    reports: &mut Vec<KernelReport>,
) -> SimResult<()> {
    let piece = crate::ub_piece(spec, 4, PIECE_CAP);
    let spans = pieces(piece, src.len());
    let r = launch(spec, gm, blocks, "IndexCopy", |ctx| {
        let lane0 = ctx.block_idx as usize * ctx.vecs.len();
        let stride = ctx.block_dim as usize * ctx.vecs.len();
        for v in 0..ctx.vecs.len() {
            let vc = &mut ctx.vecs[v];
            let mut buf = vc.alloc_local::<u32>(ScratchpadKind::Ub, piece)?;
            for &(off, valid) in spans.iter().skip(lane0 + v).step_by(stride) {
                vc.copy_in(&mut buf, 0, src, off, valid, &[])?;
                vc.copy_out(dst, off, &buf, 0, valid, &[])?;
            }
            vc.free_local(buf)?;
        }
        Ok(())
    })?;
    reports.push(r);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtypes::F16;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn setup() -> (ChipSpec, Arc<GlobalMemory>) {
        let spec = ChipSpec::tiny();
        let gm = Arc::new(GlobalMemory::new(spec.hbm_capacity));
        (spec, gm)
    }

    #[test]
    fn sorts_random_u16() {
        let (spec, gm) = setup();
        let mut rng = StdRng::seed_from_u64(1);
        let data: Vec<u16> = (0..3000).map(|_| rng.gen()).collect();
        let x = GlobalTensor::from_slice(&gm, &data).unwrap();
        let run = radix_sort(&spec, &gm, &x, 16, 2, SortOrder::Ascending).unwrap();
        let mut expect = data.clone();
        expect.sort_unstable();
        assert_eq!(run.values.to_vec(), expect);
        // Indices are a valid argsort.
        let idx = run.indices.to_vec();
        let by_idx: Vec<u16> = idx.iter().map(|&i| data[i as usize]).collect();
        assert_eq!(by_idx, expect);
    }

    #[test]
    fn sorts_random_i16_with_negatives() {
        let (spec, gm) = setup();
        let mut rng = StdRng::seed_from_u64(2);
        let data: Vec<i16> = (0..2000).map(|_| rng.gen()).collect();
        let x = GlobalTensor::from_slice(&gm, &data).unwrap();
        let run = radix_sort(&spec, &gm, &x, 16, 2, SortOrder::Ascending).unwrap();
        let mut expect = data.clone();
        expect.sort_unstable();
        assert_eq!(run.values.to_vec(), expect);
    }

    #[test]
    fn sorts_f16_including_specials() {
        let (spec, gm) = setup();
        let mut rng = StdRng::seed_from_u64(3);
        let mut data: Vec<F16> = (0..1500)
            .map(|_| F16::from_f32(rng.gen_range(-100.0f32..100.0)))
            .collect();
        data.push(F16::NEG_INFINITY);
        data.push(F16::INFINITY);
        data.push(F16::NEG_ZERO);
        data.push(F16::ZERO);
        let x = GlobalTensor::from_slice(&gm, &data).unwrap();
        let run = radix_sort(&spec, &gm, &x, 16, 2, SortOrder::Ascending).unwrap();
        let mut expect = data.clone();
        expect.sort_by(F16::total_cmp);
        let got = run.values.to_vec();
        assert_eq!(
            got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            expect.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "f16 sort must follow the IEEE total order bit-exactly"
        );
    }

    #[test]
    fn descending_order() {
        let (spec, gm) = setup();
        let mut rng = StdRng::seed_from_u64(4);
        let data: Vec<u16> = (0..1000).map(|_| rng.gen_range(0..500)).collect();
        let x = GlobalTensor::from_slice(&gm, &data).unwrap();
        let run = radix_sort(&spec, &gm, &x, 16, 2, SortOrder::Descending).unwrap();
        let mut expect = data.clone();
        expect.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(run.values.to_vec(), expect);
    }

    #[test]
    fn sort_is_stable_in_indices() {
        let (spec, gm) = setup();
        // All-equal keys: a stable sort keeps indices in order.
        let data = vec![42u16; 600];
        let x = GlobalTensor::from_slice(&gm, &data).unwrap();
        let run = radix_sort(&spec, &gm, &x, 16, 2, SortOrder::Ascending).unwrap();
        assert_eq!(run.indices.to_vec(), (0..600u32).collect::<Vec<_>>());
    }

    #[test]
    fn tiny_inputs() {
        let (spec, gm) = setup();
        for n in [0usize, 1, 2, 3] {
            let data: Vec<u16> = (0..n as u16).rev().collect();
            let x = GlobalTensor::from_slice(&gm, &data).unwrap();
            let run = radix_sort(&spec, &gm, &x, 16, 1, SortOrder::Ascending).unwrap();
            let mut expect = data.clone();
            expect.sort_unstable();
            assert_eq!(run.values.to_vec(), expect, "n = {n}");
        }
    }

    #[test]
    fn int8_sort_uses_half_the_passes() {
        // The paper's future-work claim: 8-bit keys need 8 splits, so
        // low-precision sorting is ~2x cheaper.
        let (spec, gm) = setup();
        let mut rng = StdRng::seed_from_u64(6);
        let data: Vec<i8> = (0..1500).map(|_| rng.gen()).collect();
        let x = GlobalTensor::from_slice(&gm, &data).unwrap();
        let run = radix_sort(&spec, &gm, &x, 16, 2, SortOrder::Ascending).unwrap();
        let mut expect = data.clone();
        expect.sort_unstable();
        assert_eq!(run.values.to_vec(), expect);
        assert_eq!(run.report.sync_rounds, 8, "one MCScan barrier per bit");
    }

    #[test]
    fn u8_mask_like_values_sort() {
        let (spec, gm) = setup();
        let data: Vec<u8> = (0..900).map(|i| ((i * 31) % 251) as u8).collect();
        let x = GlobalTensor::from_slice(&gm, &data).unwrap();
        let run = radix_sort(&spec, &gm, &x, 16, 2, SortOrder::Descending).unwrap();
        let mut expect = data.clone();
        expect.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(run.values.to_vec(), expect);
    }

    #[test]
    fn pass_count_matches_paper() {
        // fp16 sort = 16 split passes = 16 scans (plus encode/decode).
        let (spec, gm) = setup();
        let data: Vec<F16> = (0..100).map(|i| F16::from_f32(i as f32)).collect();
        let x = GlobalTensor::from_slice(&gm, &data).unwrap();
        let run = radix_sort(&spec, &gm, &x, 16, 1, SortOrder::Ascending).unwrap();
        // Each of the 16 MCScans contributes exactly one SyncAll.
        assert_eq!(run.report.sync_rounds, 16);
    }
}
