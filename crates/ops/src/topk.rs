//! **Top-k selection** via bitwise partial quickselect on SplitInd.
//!
//! Starting from the most significant bit of the (order-preserving
//! encoded) keys, each pass splits the current candidate range with the
//! mask "bit is 1" — the true partition holds the larger elements. If it
//! contains at least `k` elements the search recurses into it; otherwise
//! all of it is confirmed top-k and the search continues in the false
//! partition for the remaining `k - |true|` elements. After at most
//! `BITS` passes the first `k` elements of the working buffer are the
//! top-k (in selection order, not sorted — the PyTorch-compatible
//! wrapper can radix-sort the k survivors if sorted output is needed).
//!
//! **Expectation management**: the paper reports a *negative* result —
//! this construction does not beat the baseline `top-k` operator for
//! small `k` (≤ 4096), because every pass re-reads the candidate range
//! and the first passes touch the whole input. The benchmark harness
//! reproduces that finding.

use crate::split::scatter_by_mask;
use ascend_sim::mem::GlobalMemory;
use ascend_sim::KernelReport;
use ascendc::vecops::Bits;
use ascendc::{launch, ChipSpec, CmpMode, GlobalTensor, ScratchpadKind, SimError, SimResult};
use dtypes::{Element, Numeric, RadixKey};
use scan::mcscan::{mcscan, McScanConfig, ScanKind};
use std::sync::Arc;

/// Result of [`topk`].
pub struct TopKRun<K: Element> {
    /// The k largest values (selection order, unsorted).
    pub values: GlobalTensor<K>,
    /// Original indices of the k values.
    pub indices: GlobalTensor<u32>,
    /// Combined execution report over all passes.
    pub report: KernelReport,
}

const PIECE_CAP: usize = 2048;

/// Selects the `k` largest elements of `x` (with original indices).
pub fn topk<K>(
    spec: &ChipSpec,
    gm: &Arc<GlobalMemory>,
    x: &GlobalTensor<K>,
    k: usize,
    s: usize,
    blocks: u32,
) -> SimResult<TopKRun<K>>
where
    K: RadixKey + Element,
    K::Encoded: Element + Bits + Numeric,
{
    let n = x.len();
    if k == 0 || k > n {
        return Err(SimError::InvalidArgument(format!(
            "topk: k {k} out of range 1..={n}"
        )));
    }

    let mut keys_a = GlobalTensor::<K::Encoded>::new(gm, n)?;
    let keys_b = GlobalTensor::<K::Encoded>::new(gm, n)?;
    let mut idx_a = GlobalTensor::<u32>::new(gm, n)?;
    let idx_b = GlobalTensor::<u32>::new(gm, n)?;
    let mut reports = Vec::new();

    // Encode + index ramp (reuses the radix-sort pre-processing).
    reports.push(encode_kernel::<K>(spec, gm, blocks, x, &keys_a, &idx_a)?);

    // Bitwise quickselect over a shrinking candidate window.
    let mut start = 0usize; // confirmed top elements live in [0, start)
    let mut len = n; // candidates live in [start, start + len)
    let mut need = k; // top elements still to confirm inside the window
    let mut bit = K::BITS;
    while bit > 0 && len > need {
        bit -= 1;
        let keys_view = keys_a.slice(start, len)?;
        let idx_view = idx_a.slice(start, len)?;
        let keys_out = keys_b.slice(start, len)?;
        let idx_out = idx_b.slice(start, len)?;

        // Mask: "bit is 1" first (the larger half).
        let mask = GlobalTensor::<u8>::new(gm, len)?;
        reports.push(bit_mask_kernel::<K>(
            spec, gm, blocks, &keys_view, &mask, bit,
        )?);

        let scan_run = mcscan::<u8, i16, i32>(
            spec,
            gm,
            &mask,
            McScanConfig {
                s,
                blocks,
                kind: ScanKind::Exclusive,
            },
        )?;
        let offs = scan_run.y;
        reports.push(scan_run.report);
        let n_ones =
            (offs.read_range(len - 1, 1)?[0] + i32::from(mask.read_range(len - 1, 1)?[0])) as usize;

        reports.push(scatter_by_mask::<K::Encoded>(
            spec,
            gm,
            blocks,
            &keys_view,
            Some(&idx_view),
            &mask,
            &offs,
            n_ones,
            &keys_out,
            Some(&idx_out),
            true,
        )?);
        // Copy the rearranged window back into the primary buffers (the
        // confirmed prefix outside the window must stay intact, so the
        // buffers cannot simply be swapped).
        reports.push(copy_window(spec, gm, blocks, &keys_out, &keys_view)?);
        reports.push(copy_window_u32(spec, gm, blocks, &idx_out, &idx_view)?);

        if n_ones >= need {
            // All winners are inside the ones partition.
            len = n_ones;
        } else {
            // The whole ones partition is confirmed; keep selecting in
            // the zeros partition.
            start += n_ones;
            need -= n_ones;
            len -= n_ones;
        }
        if len == need {
            break;
        }
    }

    // The top-k now occupy [0, k) of the working buffers.
    let values = GlobalTensor::<K>::new(gm, k)?;
    let indices = GlobalTensor::<u32>::new(gm, k)?;
    reports.push(decode_prefix::<K>(spec, gm, blocks, &keys_a, &values, k)?);
    reports.push(copy_window_u32(
        spec,
        gm,
        blocks,
        &idx_a.slice(0, k)?,
        &indices,
    )?);

    let mut report = KernelReport::sequential("TopK", &reports);
    report.elements = n as u64;
    report.useful_bytes = (n * K::SIZE + k * (K::SIZE + 4)) as u64;
    let _ = (&mut keys_a, &mut idx_a);
    Ok(TopKRun {
        values,
        indices,
        report,
    })
}

fn pieces(piece: usize, n: usize) -> Vec<(usize, usize)> {
    let mut v = Vec::new();
    let mut off = 0;
    while off < n {
        let valid = piece.min(n - off);
        v.push((off, valid));
        off += valid;
    }
    v
}

fn encode_kernel<K>(
    spec: &ChipSpec,
    gm: &Arc<GlobalMemory>,
    blocks: u32,
    x: &GlobalTensor<K>,
    keys: &GlobalTensor<K::Encoded>,
    idx: &GlobalTensor<u32>,
) -> SimResult<KernelReport>
where
    K: RadixKey + Element,
    K::Encoded: Element + Bits + Numeric,
{
    let piece = crate::ub_piece(
        spec,
        K::SIZE + std::mem::size_of::<K::Encoded>() + 4,
        PIECE_CAP,
    );
    let spans = pieces(piece, x.len());
    launch(spec, gm, blocks, "TopKEncode", |ctx| {
        let lane0 = ctx.block_idx as usize * ctx.vecs.len();
        let stride = ctx.block_dim as usize * ctx.vecs.len();
        for v in 0..ctx.vecs.len() {
            let vc = &mut ctx.vecs[v];
            let mut raw = vc.alloc_local::<K>(ScratchpadKind::Ub, piece)?;
            let mut enc = vc.alloc_local::<K::Encoded>(ScratchpadKind::Ub, piece)?;
            let mut ramp = vc.alloc_local::<u32>(ScratchpadKind::Ub, piece)?;
            for &(off, valid) in spans.iter().skip(lane0 + v).step_by(stride) {
                vc.copy_in(&mut raw, 0, x, off, valid, &[])?;
                vc.vradix_encode::<K>(&mut enc, &raw, 0, valid)?;
                vc.copy_out(keys, off, &enc, 0, valid, &[])?;
                vc.viota(&mut ramp, 0, valid, off as u32)?;
                vc.copy_out(idx, off, &ramp, 0, valid, &[])?;
            }
            vc.free_local(raw)?;
            vc.free_local(enc)?;
            vc.free_local(ramp)?;
        }
        Ok(())
    })
}

fn bit_mask_kernel<K>(
    spec: &ChipSpec,
    gm: &Arc<GlobalMemory>,
    blocks: u32,
    keys: &GlobalTensor<K::Encoded>,
    mask: &GlobalTensor<u8>,
    bit: u32,
) -> SimResult<KernelReport>
where
    K: RadixKey + Element,
    K::Encoded: Element + Bits + Numeric,
{
    let piece = crate::ub_piece(spec, std::mem::size_of::<K::Encoded>() + 1, PIECE_CAP);
    let spans = pieces(piece, keys.len());
    launch(spec, gm, blocks, "TopKBitMask", |ctx| {
        let lane0 = ctx.block_idx as usize * ctx.vecs.len();
        let stride = ctx.block_dim as usize * ctx.vecs.len();
        for v in 0..ctx.vecs.len() {
            let vc = &mut ctx.vecs[v];
            let mut buf = vc.alloc_local::<K::Encoded>(ScratchpadKind::Ub, piece)?;
            let mut mk = vc.alloc_local::<u8>(ScratchpadKind::Ub, piece)?;
            for &(off, valid) in spans.iter().skip(lane0 + v).step_by(stride) {
                vc.copy_in(&mut buf, 0, keys, off, valid, &[])?;
                vc.vshr(&mut buf, 0, valid, bit)?;
                vc.vand_scalar(&mut buf, 0, valid, K::Encoded::one())?;
                vc.vcompare_scalar(&mut mk, &buf, 0, valid, CmpMode::Ne, K::Encoded::zero(), 0)?;
                vc.copy_out(mask, off, &mk, 0, valid, &[])?;
            }
            vc.free_local(buf)?;
            vc.free_local(mk)?;
        }
        Ok(())
    })
}

fn copy_window<E: Element>(
    spec: &ChipSpec,
    gm: &Arc<GlobalMemory>,
    blocks: u32,
    src: &GlobalTensor<E>,
    dst: &GlobalTensor<E>,
) -> SimResult<KernelReport> {
    let piece = crate::ub_piece(spec, E::SIZE, PIECE_CAP);
    let spans = pieces(piece, src.len().min(dst.len()));
    launch(spec, gm, blocks, "WindowCopy", |ctx| {
        let lane0 = ctx.block_idx as usize * ctx.vecs.len();
        let stride = ctx.block_dim as usize * ctx.vecs.len();
        for v in 0..ctx.vecs.len() {
            let vc = &mut ctx.vecs[v];
            let mut buf = vc.alloc_local::<E>(ScratchpadKind::Ub, piece)?;
            for &(off, valid) in spans.iter().skip(lane0 + v).step_by(stride) {
                vc.copy_in(&mut buf, 0, src, off, valid, &[])?;
                vc.copy_out(dst, off, &buf, 0, valid, &[])?;
            }
            vc.free_local(buf)?;
        }
        Ok(())
    })
}

fn copy_window_u32(
    spec: &ChipSpec,
    gm: &Arc<GlobalMemory>,
    blocks: u32,
    src: &GlobalTensor<u32>,
    dst: &GlobalTensor<u32>,
) -> SimResult<KernelReport> {
    copy_window::<u32>(spec, gm, blocks, src, dst)
}

fn decode_prefix<K>(
    spec: &ChipSpec,
    gm: &Arc<GlobalMemory>,
    blocks: u32,
    keys: &GlobalTensor<K::Encoded>,
    values: &GlobalTensor<K>,
    k: usize,
) -> SimResult<KernelReport>
where
    K: RadixKey + Element,
    K::Encoded: Element + Bits + Numeric,
{
    let piece = crate::ub_piece(spec, K::SIZE + std::mem::size_of::<K::Encoded>(), PIECE_CAP);
    let spans = pieces(piece, k);
    launch(spec, gm, blocks, "TopKDecode", |ctx| {
        let lane0 = ctx.block_idx as usize * ctx.vecs.len();
        let stride = ctx.block_dim as usize * ctx.vecs.len();
        for v in 0..ctx.vecs.len() {
            let vc = &mut ctx.vecs[v];
            let mut enc = vc.alloc_local::<K::Encoded>(ScratchpadKind::Ub, piece)?;
            let mut out = vc.alloc_local::<K>(ScratchpadKind::Ub, piece)?;
            for &(off, valid) in spans.iter().skip(lane0 + v).step_by(stride) {
                vc.copy_in(&mut enc, 0, keys, off, valid, &[])?;
                vc.vradix_decode::<K>(&mut out, &enc, 0, valid)?;
                vc.copy_out(values, off, &out, 0, valid, &[])?;
            }
            vc.free_local(enc)?;
            vc.free_local(out)?;
        }
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtypes::F16;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn setup() -> (ChipSpec, Arc<GlobalMemory>) {
        let spec = ChipSpec::tiny();
        let gm = Arc::new(GlobalMemory::new(spec.hbm_capacity));
        (spec, gm)
    }

    fn check_topk_u16(data: &[u16], k: usize) {
        let (spec, gm) = setup();
        let x = GlobalTensor::from_slice(&gm, data).unwrap();
        let run = topk(&spec, &gm, &x, k, 16, 2).unwrap();
        let mut got = run.values.to_vec();
        got.sort_unstable_by(|a, b| b.cmp(a));
        let mut expect = data.to_vec();
        expect.sort_unstable_by(|a, b| b.cmp(a));
        expect.truncate(k);
        assert_eq!(got, expect, "k = {k}, n = {}", data.len());
        // Indices point back at the selected values.
        let idx = run.indices.to_vec();
        let vals = run.values.to_vec();
        for (v, &i) in vals.iter().zip(&idx) {
            assert_eq!(data[i as usize], *v);
        }
    }

    #[test]
    fn selects_correct_set_random() {
        let mut rng = StdRng::seed_from_u64(11);
        let data: Vec<u16> = (0..3000).map(|_| rng.gen()).collect();
        for k in [1usize, 5, 64, 1000, 2999] {
            check_topk_u16(&data, k);
        }
    }

    #[test]
    fn handles_duplicates() {
        let data: Vec<u16> = (0..1000).map(|i| (i % 10) as u16).collect();
        check_topk_u16(&data, 150);
    }

    #[test]
    fn k_equals_n() {
        let data: Vec<u16> = (0..100).collect();
        check_topk_u16(&data, 100);
    }

    #[test]
    fn f16_topk_with_negatives() {
        let (spec, gm) = setup();
        let mut rng = StdRng::seed_from_u64(12);
        let data: Vec<F16> = (0..800)
            .map(|_| F16::from_f32(rng.gen_range(-50.0f32..50.0)))
            .collect();
        let x = GlobalTensor::from_slice(&gm, &data).unwrap();
        let run = topk(&spec, &gm, &x, 10, 16, 2).unwrap();
        let mut got: Vec<u16> = run.values.to_vec().iter().map(|v| v.encode()).collect();
        got.sort_unstable_by(|a, b| b.cmp(a));
        let mut expect: Vec<u16> = data.iter().map(|v| v.encode()).collect();
        expect.sort_unstable_by(|a, b| b.cmp(a));
        expect.truncate(10);
        assert_eq!(got, expect);
    }

    #[test]
    fn rejects_bad_k() {
        let (spec, gm) = setup();
        let x = GlobalTensor::from_slice(&gm, &[1u16, 2, 3]).unwrap();
        assert!(topk(&spec, &gm, &x, 0, 16, 1).is_err());
        assert!(topk(&spec, &gm, &x, 4, 16, 1).is_err());
    }
}
