//! **Alias tables** for multi-sample weighted sampling — the direction
//! the paper's §5 names as future work ("for the multiple sample
//! generation scenario, the parallel alias table construction of
//! [Hübschle-Schneider & Sanders] seems to be a promising direction").
//!
//! An alias table answers weighted draws in O(1) per sample: pick a
//! uniform slot `i`, accept `i` with probability `prob[i]`, otherwise
//! emit `alias[i]`. Construction here runs the scan-heavy parts on the
//! device — normalization and classification of items into *light*
//! (scaled weight < 1) and *heavy* via a [`split_ind`] on the
//! comparison mask, exactly the paper's operator — while the residual
//! light/heavy pairing is a single sequential Vose sweep charged to the
//! scalar unit (the part whose parallelization is the cited paper's
//! whole contribution, and which we deliberately do not claim to solve).
//!
//! Sampling `k` draws is a device kernel: each draw costs two
//! line-granularity gathers (`prob[slot]`, `alias[slot]`), spread over
//! all vector cores.
//!
//! [`split_ind`]: crate::split::split_ind

use crate::split::split_ind;
use ascend_sim::mem::GlobalMemory;
use ascend_sim::{EngineKind, KernelReport};
use ascendc::{launch, ChipSpec, CmpMode, GlobalTensor, ScratchpadKind, SimError, SimResult};
use scan::mcscan::{mcscan, McScanConfig, ScanKind};
use std::sync::Arc;

/// A built alias table in device memory.
pub struct AliasTable {
    /// Acceptance probability per slot (f32).
    pub prob: GlobalTensor<f32>,
    /// Alias target per slot (u32 index).
    pub alias: GlobalTensor<u32>,
    /// Support size.
    pub n: usize,
    /// Construction report.
    pub report: KernelReport,
}

/// Builds an alias table from non-negative `f32` weights.
///
/// Device work: inclusive MCScan of the weights (for the total), a
/// vector kernel computing the scaled weights and the light/heavy mask,
/// and a SplitInd partition of the indices. The final Vose pairing over
/// the partitioned indices is a sequential scalar sweep (charged at
/// `pairing_scalar_ops_per_item` scalar-unit operations per item on one
/// core — parallelizing it is the cited future work).
pub fn build_alias_table(
    spec: &ChipSpec,
    gm: &Arc<GlobalMemory>,
    w: &GlobalTensor<f32>,
    s: usize,
    blocks: u32,
) -> SimResult<AliasTable> {
    let n = w.len();
    if n == 0 {
        return Err(SimError::InvalidArgument(
            "alias table: empty weights".into(),
        ));
    }

    // 1. Total mass via inclusive scan (device).
    let scan_run = mcscan::<f32, f32, f32>(
        spec,
        gm,
        w,
        McScanConfig {
            s,
            blocks,
            kind: ScanKind::Inclusive,
        },
    )?;
    let total = scan_run.y.read_range(n - 1, 1)?[0] as f64;
    if total <= 0.0 {
        return Err(SimError::InvalidArgument(
            "alias table: weights sum to zero".into(),
        ));
    }

    // 2. Scaled weights + light mask (device vector kernel).
    let scaled = GlobalTensor::<f32>::new(gm, n)?;
    let mask = GlobalTensor::<u8>::new(gm, n)?;
    let scale = (n as f64 / total) as f32;
    let piece = crate::ub_piece(spec, 4 + 1, 4096);
    let spans: Vec<(usize, usize)> = {
        let mut v = Vec::new();
        let mut off = 0;
        while off < n {
            let valid = piece.min(n - off);
            v.push((off, valid));
            off += valid;
        }
        v
    };
    let scale_report = launch(spec, gm, blocks, "AliasScale", |ctx| {
        let lane0 = ctx.block_idx as usize * ctx.vecs.len();
        let stride = ctx.block_dim as usize * ctx.vecs.len();
        for v in 0..ctx.vecs.len() {
            let vc = &mut ctx.vecs[v];
            let mut buf = vc.alloc_local::<f32>(ScratchpadKind::Ub, piece)?;
            let mut mk = vc.alloc_local::<u8>(ScratchpadKind::Ub, piece)?;
            for &(off, valid) in spans.iter().skip(lane0 + v).step_by(stride) {
                vc.copy_in(&mut buf, 0, w, off, valid, &[])?;
                vc.vmuls(&mut buf, 0, valid, scale, 0)?;
                vc.copy_out(&scaled, off, &buf, 0, valid, &[])?;
                vc.vcompare_scalar(&mut mk, &buf, 0, valid, CmpMode::Lt, 1.0f32, 0)?;
                vc.copy_out(&mask, off, &mk, 0, valid, &[])?;
            }
            vc.free_local(buf)?;
            vc.free_local(mk)?;
        }
        Ok(())
    })?;

    // 3. Partition item indices into lights-first order (device split —
    // the values being split are the scaled weights; the index output is
    // what the pairing consumes).
    let split = split_ind::<f32>(spec, gm, &scaled, &mask, s, blocks)?;
    let n_light = split.n_true;

    // 4. Sequential Vose pairing over the partitioned order (host-side
    // arithmetic, charged to one scalar unit). Lights are resolved one
    // bucket at a time; a heavy whose residual drops below 1 joins the
    // light queue (the classic worklist algorithm — this dynamic
    // conversion is exactly what makes the construction sequential and
    // why its parallelization is the cited paper's contribution).
    let order = split.indices.to_vec();
    let scaled_host = scaled.to_vec();
    let mut residual: Vec<f64> = scaled_host.iter().map(|&v| v as f64).collect();
    let mut prob = vec![1.0f32; n];
    let mut alias: Vec<u32> = (0..n as u32).collect();
    {
        use std::collections::VecDeque;
        let mut small: VecDeque<u32> = order[..n_light].iter().copied().collect();
        let mut large: VecDeque<u32> = order[n_light..].iter().copied().collect();
        while let (Some(&s_idx), Some(&l_idx)) = (small.front(), large.front()) {
            small.pop_front();
            let si = s_idx as usize;
            let li = l_idx as usize;
            prob[si] = residual[si] as f32;
            alias[si] = l_idx;
            residual[li] -= 1.0 - residual[si];
            if residual[li] < 1.0 {
                large.pop_front();
                small.push_back(l_idx);
            }
        }
        // Leftovers on either queue are numerically full buckets.
        for s_idx in small {
            prob[s_idx as usize] = 1.0;
        }
    }
    let prob_t = GlobalTensor::from_slice(gm, &prob)?;
    let alias_t = GlobalTensor::from_slice(gm, &alias)?;

    // Charge the sequential pairing to the scalar unit of one core.
    let pairing_cycles = (n as u64) * 4 * u64::from(spec.scalar_op_cycles);
    let mut pairing = KernelReport {
        name: "AliasPairing(scalar)".into(),
        blocks: 1,
        cycles: spec.launch_cycles + pairing_cycles,
        clock_ghz: spec.clock_ghz,
        bytes_read: (n * 8) as u64,
        bytes_written: (n * 8) as u64,
        useful_bytes: 0,
        elements: 0,
        working_set: (n * 16) as u64,
        engine_busy: [0; 7],
        engine_instructions: [0; 7],
        sync_rounds: 0,
        stalls: Default::default(),
        barrier_waits: Vec::new(),
        flag_waits: Vec::new(),
        critical_path: None,
    };
    pairing.engine_busy[EngineKind::Scalar.index()] = pairing_cycles;

    let mut report = KernelReport::sequential(
        "BuildAliasTable",
        &[scan_run.report, scale_report, split.report, pairing],
    );
    report.elements = n as u64;
    report.useful_bytes = (n * 4 + n * 8) as u64;
    Ok(AliasTable {
        prob: prob_t,
        alias: alias_t,
        n,
        report,
    })
}

/// Draws one sample per `(theta_slot, theta_accept)` pair of uniform
/// variates: O(1) work and two line-granularity gathers per draw,
/// distributed over all vector cores.
pub fn alias_sample_many(
    spec: &ChipSpec,
    gm: &Arc<GlobalMemory>,
    table: &AliasTable,
    thetas: &[(f64, f64)],
) -> SimResult<(Vec<u32>, KernelReport)> {
    if thetas.is_empty() {
        return Err(SimError::InvalidArgument(
            "alias sample: no draws requested".into(),
        ));
    }
    for &(a, b) in thetas {
        if !(0.0..1.0).contains(&a) || !(0.0..1.0).contains(&b) {
            return Err(SimError::InvalidArgument(format!(
                "alias sample: variates ({a}, {b}) outside [0, 1)"
            )));
        }
    }
    let n = table.n;
    let k = thetas.len();
    let out = GlobalTensor::<u32>::new(gm, k)?;
    let blocks = spec.ai_cores.min(k.div_ceil(2).max(1) as u32);

    let mut report = launch(spec, gm, blocks, "AliasSample", |ctx| {
        let lane0 = ctx.block_idx as usize * ctx.vecs.len();
        let stride = ctx.block_dim as usize * ctx.vecs.len();
        for v in 0..ctx.vecs.len() {
            let vc = &mut ctx.vecs[v];
            let mut pbuf = vc.alloc_local::<f32>(ScratchpadKind::Ub, 1)?;
            let mut abuf = vc.alloc_local::<u32>(ScratchpadKind::Ub, 1)?;
            let mut obuf = vc.alloc_local::<u32>(ScratchpadKind::Ub, 1)?;
            for di in (lane0 + v..k).step_by(stride) {
                let (ts, ta) = thetas[di];
                let slot = ((ts * n as f64) as usize).min(n - 1);
                // Two random-position gathers: each drags a GM line.
                vc.copy_in_2d(&mut pbuf, &table.prob, slot, 1, 1, n.max(2), &[])?;
                vc.copy_in_2d(&mut abuf, &table.alias, slot, 1, 1, n.max(2), &[])?;
                let (p, pr) = vc.extract(&pbuf, 0)?;
                let (al, ar) = vc.extract(&abuf, 0)?;
                let token = if ta < f64::from(p) { slot as u32 } else { al };
                let ready = vc.scalar_ops(2, &[pr, ar])?;
                vc.insert(&mut obuf, 0, token, ready)?;
                vc.copy_out(&out, di, &obuf, 0, 1, &[])?;
            }
            vc.free_local(pbuf)?;
            vc.free_local(abuf)?;
            vc.free_local(obuf)?;
        }
        Ok(())
    })?;
    let tokens = out.to_vec();
    report.elements = k as u64;
    report.useful_bytes = (k * 4) as u64;
    Ok((tokens, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (ChipSpec, Arc<GlobalMemory>) {
        let spec = ChipSpec::tiny();
        let gm = Arc::new(GlobalMemory::new(spec.hbm_capacity));
        (spec, gm)
    }

    /// The alias-table invariant: the mass attributed to item `i` —
    /// `prob[i]` from its own slot plus `(1 - prob[j])` from every slot
    /// aliased to it — equals its scaled weight.
    fn check_table(table_prob: &[f32], table_alias: &[u32], w: &[f32]) {
        let n = w.len() as f64;
        let total: f64 = w.iter().map(|&x| x as f64).sum();
        let mut mass = vec![0.0f64; w.len()];
        for i in 0..w.len() {
            mass[i] += table_prob[i] as f64;
            let a = table_alias[i] as usize;
            mass[a] += 1.0 - table_prob[i] as f64;
        }
        for i in 0..w.len() {
            let expect = w[i] as f64 * n / total;
            assert!(
                (mass[i] - expect).abs() < 1e-3 * n,
                "item {i}: mass {} vs scaled weight {expect}",
                mass[i]
            );
        }
    }

    #[test]
    fn table_mass_matches_weights() {
        let (spec, gm) = setup();
        let w: Vec<f32> = (0..500).map(|i| 1.0 + (i % 7) as f32).collect();
        let x = GlobalTensor::from_slice(&gm, &w).unwrap();
        let t = build_alias_table(&spec, &gm, &x, 16, 2).unwrap();
        check_table(&t.prob.to_vec(), &t.alias.to_vec(), &w);
    }

    #[test]
    fn uniform_weights_need_no_aliases() {
        let (spec, gm) = setup();
        let w = vec![3.0f32; 128];
        let x = GlobalTensor::from_slice(&gm, &w).unwrap();
        let t = build_alias_table(&spec, &gm, &x, 16, 1).unwrap();
        assert!(t.prob.to_vec().iter().all(|&p| (p - 1.0).abs() < 1e-6));
    }

    #[test]
    fn skewed_weights_build_a_valid_table() {
        let (spec, gm) = setup();
        let mut w = vec![0.01f32; 300];
        w[42] = 100.0;
        w[17] = 50.0;
        let x = GlobalTensor::from_slice(&gm, &w).unwrap();
        let t = build_alias_table(&spec, &gm, &x, 16, 2).unwrap();
        check_table(&t.prob.to_vec(), &t.alias.to_vec(), &w);
    }

    #[test]
    fn sampling_respects_the_distribution() {
        let (spec, gm) = setup();
        // 90% of mass on item 5 in a 10-item support.
        let mut w = vec![1.0f32; 10];
        w[5] = 81.0;
        let x = GlobalTensor::from_slice(&gm, &w).unwrap();
        let t = build_alias_table(&spec, &gm, &x, 16, 1).unwrap();
        // A deterministic grid of variates approximates expectation.
        let thetas: Vec<(f64, f64)> = (0..400)
            .map(|i| {
                (
                    ((i % 20) as f64 + 0.5) / 20.0,
                    ((i / 20) as f64 + 0.5) / 20.0,
                )
            })
            .collect();
        let (tokens, report) = alias_sample_many(&spec, &gm, &t, &thetas).unwrap();
        let hits5 = tokens.iter().filter(|&&t| t == 5).count() as f64 / 400.0;
        assert!(
            (hits5 - 0.9).abs() < 0.05,
            "item 5 should receive ~90% of draws, got {hits5:.2}"
        );
        assert!(tokens.iter().all(|&t| (t as usize) < 10));
        assert!(report.time_us() > 0.0);
    }

    #[test]
    fn rejects_bad_inputs() {
        let (spec, gm) = setup();
        let empty = GlobalTensor::<f32>::new(&gm, 0).unwrap();
        assert!(build_alias_table(&spec, &gm, &empty, 16, 1).is_err());
        let zeros = GlobalTensor::from_slice(&gm, &[0.0f32; 8]).unwrap();
        assert!(build_alias_table(&spec, &gm, &zeros, 16, 1).is_err());
        let w = GlobalTensor::from_slice(&gm, &[1.0f32; 8]).unwrap();
        let t = build_alias_table(&spec, &gm, &w, 16, 1).unwrap();
        assert!(alias_sample_many(&spec, &gm, &t, &[]).is_err());
        assert!(alias_sample_many(&spec, &gm, &t, &[(1.2, 0.5)]).is_err());
    }
}
