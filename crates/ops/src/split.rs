//! **SplitInd**: stable split by a boolean mask, with original indices.
//!
//! Split reorganizes `x` so that all elements whose mask flag is true
//! come first (in order), followed by all elements whose flag is false
//! (in order). The implementation follows the paper exactly:
//!
//! 1. an **exclusive MCScan** over the int8 mask computes, for every
//!    position, how many true elements precede it — i.e. the output
//!    offset of each true element (and, by arithmetic, of each false
//!    element);
//! 2. a vector **scatter kernel** gathers the true elements of each tile
//!    with `GatherMask` and stores the compacted run at the offset the
//!    scan produced; the false side is handled symmetrically with the
//!    negated mask. Original indices are materialized with
//!    `CreateVecIndex` and gathered alongside the values.
//!
//! Both phases use all cube and vector cores.

use ascend_sim::mem::GlobalMemory;
use ascend_sim::KernelReport;
use ascendc::{launch, ChipSpec, CmpMode, GlobalTensor, ScratchpadKind, SimError, SimResult};
use dtypes::Element;
use scan::mcscan::{mcscan, McScanConfig, ScanKind};
use std::sync::Arc;

/// Result of [`split_ind`].
pub struct SplitRun<E: Element> {
    /// The partitioned values: all true-flagged elements, then all
    /// false-flagged ones, both in stable order.
    pub values: GlobalTensor<E>,
    /// The original index of every output element (`u32`).
    pub indices: GlobalTensor<u32>,
    /// Number of true-flagged elements.
    pub n_true: usize,
    /// Combined execution report (scan + scatter kernels).
    pub report: KernelReport,
}

/// Upper bound on elements-per-piece in the scatter kernel (the actual
/// size adapts to the chip's UB capacity).
const SCATTER_PIECE_CAP: usize = 2048;

/// Stable split of `x` by `mask` (`1` = first partition). Returns the
/// partitioned values, their original indices, and the true count.
///
/// `s` and `blocks` configure the underlying MCScan (the scatter kernel
/// uses the same block count).
pub fn split_ind<E: Element>(
    spec: &ChipSpec,
    gm: &Arc<GlobalMemory>,
    x: &GlobalTensor<E>,
    mask: &GlobalTensor<u8>,
    s: usize,
    blocks: u32,
) -> SimResult<SplitRun<E>> {
    if x.len() != mask.len() {
        return Err(SimError::InvalidArgument(format!(
            "split_ind: values ({}) and mask ({}) lengths differ",
            x.len(),
            mask.len()
        )));
    }
    let n = x.len();
    let values = GlobalTensor::<E>::new(gm, n)?;
    let indices = GlobalTensor::<u32>::new(gm, n)?;
    if n == 0 {
        let report = KernelReport::sequential("SplitInd", &[empty_report(spec)]);
        return Ok(SplitRun {
            values,
            indices,
            n_true: 0,
            report,
        });
    }

    // 1. Exclusive scan of the mask on the int8 MCScan path.
    let scan_run = mcscan::<u8, i16, i32>(
        spec,
        gm,
        mask,
        McScanConfig {
            s,
            blocks,
            kind: ScanKind::Exclusive,
        },
    )?;
    let offs = scan_run.y;
    let n_true =
        (offs.read_range(n - 1, 1)?[0] + i32::from(mask.read_range(n - 1, 1)?[0])) as usize;

    // 2. Scatter kernel.
    let scatter_report = scatter_by_mask(
        spec,
        gm,
        blocks,
        x,
        None,
        mask,
        &offs,
        n_true,
        &values,
        Some(&indices),
        true,
    )?;

    let mut report = KernelReport::sequential("SplitInd", &[scan_run.report, scatter_report]);
    report.elements = n as u64;
    report.useful_bytes = (n * (E::SIZE + 1) + n * (E::SIZE + 4)) as u64;
    Ok(SplitRun {
        values,
        indices,
        n_true,
        report,
    })
}

fn empty_report(spec: &ChipSpec) -> KernelReport {
    KernelReport {
        name: "empty".into(),
        blocks: 0,
        cycles: spec.launch_cycles,
        clock_ghz: spec.clock_ghz,
        bytes_read: 0,
        bytes_written: 0,
        useful_bytes: 0,
        elements: 0,
        working_set: 0,
        engine_busy: [0; 7],
        engine_instructions: [0; 7],
        sync_rounds: 0,
        stalls: Default::default(),
        barrier_waits: Vec::new(),
        flag_waits: Vec::new(),
        critical_path: None,
    }
}

/// The scatter phase shared by SplitInd, Compress and the radix-sort
/// passes: distributes elements (and optionally their indices) into the
/// true partition at the offsets given by the exclusive mask scan, and —
/// when `false_side` is set — into the false partition after it.
///
/// `idx_in`: `None` materializes fresh indices (`CreateVecIndex`);
/// `Some(t)` gathers from an existing index array (radix-sort passes
/// permute previously-permuted indices).
#[allow(clippy::too_many_arguments)]
pub(crate) fn scatter_by_mask<E: Element>(
    spec: &ChipSpec,
    gm: &Arc<GlobalMemory>,
    blocks: u32,
    vals: &GlobalTensor<E>,
    idx_in: Option<&GlobalTensor<u32>>,
    mask: &GlobalTensor<u8>,
    offs: &GlobalTensor<i32>,
    n_true: usize,
    vals_out: &GlobalTensor<E>,
    idx_out: Option<&GlobalTensor<u32>>,
    false_side: bool,
) -> SimResult<KernelReport> {
    let n = vals.len();
    // Per element the scatter stages: value in + gathered (2E), mask +
    // negated mask (2 B), index in + gathered (8 B), plus slack.
    let p = crate::ub_piece(spec, 2 * E::SIZE + 12, SCATTER_PIECE_CAP);
    let pieces: Vec<(usize, usize)> = {
        let mut v = Vec::new();
        let mut off = 0;
        while off < n {
            let valid = p.min(n - off);
            v.push((off, valid));
            off += valid;
        }
        v
    };

    launch(spec, gm, blocks, "MaskScatter", |ctx| {
        let block = ctx.block_idx as usize;
        let nblocks = ctx.block_dim as usize;
        let vec_per_core = ctx.vecs.len();
        for v in 0..vec_per_core {
            let lane = block * vec_per_core + v;
            let stride = nblocks * vec_per_core;
            let vc = &mut ctx.vecs[v];

            let mut val_in = vc.alloc_local::<E>(ScratchpadKind::Ub, p)?;
            let mut val_gath = vc.alloc_local::<E>(ScratchpadKind::Ub, p)?;
            let mut mk = vc.alloc_local::<u8>(ScratchpadKind::Ub, p)?;
            let mut mk_neg = vc.alloc_local::<u8>(ScratchpadKind::Ub, p)?;
            let mut idx_buf = vc.alloc_local::<u32>(ScratchpadKind::Ub, p)?;
            let mut idx_gath = vc.alloc_local::<u32>(ScratchpadKind::Ub, p)?;
            let mut base_buf = vc.alloc_local::<i32>(ScratchpadKind::Ub, 1)?;

            for &(off, valid) in pieces.iter().skip(lane).step_by(stride) {
                vc.copy_in(&mut val_in, 0, vals, off, valid, &[])?;
                vc.copy_in(&mut mk, 0, mask, off, valid, &[])?;
                vc.copy_in(&mut base_buf, 0, offs, off, 1, &[])?;
                let (base_true_i32, _) = vc.extract(&base_buf, 0)?;
                let base_true = base_true_i32 as usize;

                match idx_in {
                    Some(src) => {
                        vc.copy_in(&mut idx_buf, 0, src, off, valid, &[])?;
                    }
                    None => {
                        vc.viota(&mut idx_buf, 0, valid, off as u32)?;
                    }
                }

                // True side.
                let (c, _) = vc.gather_mask(&mut val_gath, &val_in, &mk, 0, valid)?;
                debug_assert!(base_true + c <= n_true);
                if c > 0 {
                    vc.copy_out(vals_out, base_true, &val_gath, 0, c, &[])?;
                }
                if let Some(outi) = idx_out {
                    let (ci, _) = vc.gather_mask(&mut idx_gath, &idx_buf, &mk, 0, valid)?;
                    debug_assert_eq!(ci, c);
                    if c > 0 {
                        vc.copy_out(outi, base_true, &idx_gath, 0, c, &[])?;
                    }
                }

                // False side.
                if false_side {
                    let base_false = n_true + (off - base_true);
                    vc.vcompare_scalar(&mut mk_neg, &mk, 0, valid, CmpMode::Eq, 0u8, 0)?;
                    let (cf, _) = vc.gather_mask(&mut val_gath, &val_in, &mk_neg, 0, valid)?;
                    debug_assert_eq!(cf, valid - c);
                    if cf > 0 {
                        vc.copy_out(vals_out, base_false, &val_gath, 0, cf, &[])?;
                    }
                    if let Some(outi) = idx_out {
                        let (cfi, _) =
                            vc.gather_mask(&mut idx_gath, &idx_buf, &mk_neg, 0, valid)?;
                        debug_assert_eq!(cfi, cf);
                        if cf > 0 {
                            vc.copy_out(outi, base_false, &idx_gath, 0, cf, &[])?;
                        }
                    }
                }
            }
            vc.free_local(val_in)?;
            vc.free_local(val_gath)?;
            vc.free_local(mk)?;
            vc.free_local(mk_neg)?;
            vc.free_local(idx_buf)?;
            vc.free_local(idx_gath)?;
            vc.free_local(base_buf)?;
        }
        Ok(())
    })
}

/// Reference split used in tests: stable partition with indices.
pub fn reference_split<E: Element>(x: &[E], mask: &[u8]) -> (Vec<E>, Vec<u32>, usize) {
    let mut vals = Vec::with_capacity(x.len());
    let mut idx = Vec::with_capacity(x.len());
    for (i, (&v, &m)) in x.iter().zip(mask).enumerate() {
        if m != 0 {
            vals.push(v);
            idx.push(i as u32);
        }
    }
    let n_true = vals.len();
    for (i, (&v, &m)) in x.iter().zip(mask).enumerate() {
        if m == 0 {
            vals.push(v);
            idx.push(i as u32);
        }
    }
    (vals, idx, n_true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn setup() -> (ChipSpec, Arc<GlobalMemory>) {
        let spec = ChipSpec::tiny();
        let gm = Arc::new(GlobalMemory::new(spec.hbm_capacity));
        (spec, gm)
    }

    fn run_case(n: usize, seed: u64) {
        let (spec, gm) = setup();
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<u16> = (0..n).map(|_| rng.gen_range(0..1000)).collect();
        let mask: Vec<u8> = (0..n).map(|_| u8::from(rng.gen_bool(0.5))).collect();
        let x = GlobalTensor::from_slice(&gm, &data).unwrap();
        let m = GlobalTensor::from_slice(&gm, &mask).unwrap();
        let run = split_ind(&spec, &gm, &x, &m, 16, 2).unwrap();
        let (ev, ei, ent) = reference_split(&data, &mask);
        assert_eq!(run.n_true, ent, "n = {n}");
        assert_eq!(run.values.to_vec(), ev, "n = {n}");
        assert_eq!(run.indices.to_vec(), ei, "n = {n}");
    }

    #[test]
    fn random_masks_various_sizes() {
        for (i, n) in [1usize, 7, 256, 1000, 3000, 5000].into_iter().enumerate() {
            run_case(n, 42 + i as u64);
        }
    }

    #[test]
    fn all_true_and_all_false() {
        let (spec, gm) = setup();
        let data: Vec<u16> = (0..500).collect();
        for flag in [0u8, 1u8] {
            let mask = vec![flag; 500];
            let x = GlobalTensor::from_slice(&gm, &data).unwrap();
            let m = GlobalTensor::from_slice(&gm, &mask).unwrap();
            let run = split_ind(&spec, &gm, &x, &m, 16, 2).unwrap();
            assert_eq!(run.n_true, if flag == 1 { 500 } else { 0 });
            assert_eq!(run.values.to_vec(), data);
            assert_eq!(run.indices.to_vec(), (0..500u32).collect::<Vec<_>>());
        }
    }

    #[test]
    fn stability_with_duplicates() {
        let (spec, gm) = setup();
        // Value 7 appears at indices 0, 2, 4; value 3 at 1, 3.
        let data: Vec<u16> = vec![7, 3, 7, 3, 7];
        let mask = vec![1u8, 0, 1, 0, 0];
        let x = GlobalTensor::from_slice(&gm, &data).unwrap();
        let m = GlobalTensor::from_slice(&gm, &mask).unwrap();
        let run = split_ind(&spec, &gm, &x, &m, 16, 1).unwrap();
        assert_eq!(run.values.to_vec(), vec![7, 7, 3, 3, 7]);
        assert_eq!(run.indices.to_vec(), vec![0, 2, 1, 3, 4]);
    }

    #[test]
    fn length_mismatch_rejected() {
        let (spec, gm) = setup();
        let x = GlobalTensor::from_slice(&gm, &[1u16, 2]).unwrap();
        let m = GlobalTensor::from_slice(&gm, &[1u8, 0, 1]).unwrap();
        assert!(split_ind(&spec, &gm, &x, &m, 16, 1).is_err());
    }

    #[test]
    fn empty_input() {
        let (spec, gm) = setup();
        let x = GlobalTensor::<u16>::new(&gm, 0).unwrap();
        let m = GlobalTensor::<u8>::new(&gm, 0).unwrap();
        let run = split_ind(&spec, &gm, &x, &m, 16, 1).unwrap();
        assert_eq!(run.n_true, 0);
        assert!(run.values.to_vec().is_empty());
    }

    #[test]
    fn report_combines_scan_and_scatter() {
        let (spec, gm) = setup();
        let n = 2000;
        let data: Vec<u16> = (0..n as u16).collect();
        let mask: Vec<u8> = (0..n).map(|i| (i % 2) as u8).collect();
        let x = GlobalTensor::from_slice(&gm, &data).unwrap();
        let m = GlobalTensor::from_slice(&gm, &mask).unwrap();
        let run = split_ind(&spec, &gm, &x, &m, 16, 2).unwrap();
        assert!(run.report.sync_rounds >= 1, "MCScan's barrier is counted");
        assert!(
            run.report.cycles > 2 * spec.launch_cycles,
            "two kernels launched"
        );
        assert_eq!(run.report.elements, n as u64);
    }
}
