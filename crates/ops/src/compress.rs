//! **Compress** (compact): keep only the mask-selected elements —
//! the equivalent of PyTorch's `torch.masked_select`.
//!
//! Compress is the true-side half of [`crate::split::split_ind`]: an
//! exclusive int8 MCScan over the mask yields each selected element's
//! output offset, and a vector scatter kernel gathers and stores the
//! selected elements. The paper's Fig. 10 benchmarks this against the
//! (scalar-bound) `torch.masked_select` baseline.

use crate::split::scatter_by_mask;
use ascend_sim::mem::GlobalMemory;
use ascend_sim::KernelReport;
use ascendc::{ChipSpec, GlobalTensor, SimError, SimResult};
use dtypes::Element;
use scan::mcscan::{mcscan, McScanConfig, ScanKind};
use std::sync::Arc;

/// Result of [`compress`].
pub struct CompressRun<E: Element> {
    /// The selected elements, in order.
    pub values: GlobalTensor<E>,
    /// Number of selected elements (`values.len()`).
    pub n_true: usize,
    /// Combined execution report.
    pub report: KernelReport,
}

/// Compacts the mask-selected elements of `x` into a dense output.
pub fn compress<E: Element>(
    spec: &ChipSpec,
    gm: &Arc<GlobalMemory>,
    x: &GlobalTensor<E>,
    mask: &GlobalTensor<u8>,
    s: usize,
    blocks: u32,
) -> SimResult<CompressRun<E>> {
    if x.len() != mask.len() {
        return Err(SimError::InvalidArgument(format!(
            "compress: values ({}) and mask ({}) lengths differ",
            x.len(),
            mask.len()
        )));
    }
    let n = x.len();
    if n == 0 {
        return Ok(CompressRun {
            values: GlobalTensor::<E>::new(gm, 0)?,
            n_true: 0,
            report: KernelReport {
                name: "Compress".into(),
                blocks: 0,
                cycles: spec.launch_cycles,
                clock_ghz: spec.clock_ghz,
                bytes_read: 0,
                bytes_written: 0,
                useful_bytes: 0,
                elements: 0,
                working_set: 0,
                engine_busy: [0; 7],
                engine_instructions: [0; 7],
                sync_rounds: 0,
                stalls: Default::default(),
                barrier_waits: Vec::new(),
                flag_waits: Vec::new(),
                critical_path: None,
            },
        });
    }

    let scan_run = mcscan::<u8, i16, i32>(
        spec,
        gm,
        mask,
        McScanConfig {
            s,
            blocks,
            kind: ScanKind::Exclusive,
        },
    )?;
    let offs = scan_run.y;
    let n_true =
        (offs.read_range(n - 1, 1)?[0] + i32::from(mask.read_range(n - 1, 1)?[0])) as usize;

    let values = GlobalTensor::<E>::new(gm, n_true)?;
    let scatter_report = scatter_by_mask(
        spec, gm, blocks, x, None, mask, &offs, n_true, &values, None, false,
    )?;

    let mut report = KernelReport::sequential("Compress", &[scan_run.report, scatter_report]);
    report.elements = n as u64;
    report.useful_bytes = (n * (E::SIZE + 1) + n_true * E::SIZE) as u64;
    Ok(CompressRun {
        values,
        n_true,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtypes::F16;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn setup() -> (ChipSpec, Arc<GlobalMemory>) {
        let spec = ChipSpec::tiny();
        let gm = Arc::new(GlobalMemory::new(spec.hbm_capacity));
        (spec, gm)
    }

    #[test]
    fn matches_filter_reference() {
        let (spec, gm) = setup();
        let mut rng = StdRng::seed_from_u64(7);
        for n in [1usize, 100, 2048, 4100] {
            let data: Vec<u16> = (0..n).map(|_| rng.gen()).collect();
            let mask: Vec<u8> = (0..n).map(|_| u8::from(rng.gen_bool(0.5))).collect();
            let x = GlobalTensor::from_slice(&gm, &data).unwrap();
            let m = GlobalTensor::from_slice(&gm, &mask).unwrap();
            let run = compress(&spec, &gm, &x, &m, 16, 2).unwrap();
            let expect: Vec<u16> = data
                .iter()
                .zip(&mask)
                .filter(|&(_, &m)| m != 0)
                .map(|(&v, _)| v)
                .collect();
            assert_eq!(run.n_true, expect.len());
            assert_eq!(run.values.to_vec(), expect, "n = {n}");
        }
    }

    #[test]
    fn f16_values() {
        let (spec, gm) = setup();
        let data: Vec<F16> = (0..300).map(|i| F16::from_f32(i as f32)).collect();
        let mask: Vec<u8> = (0..300).map(|i| u8::from(i % 3 == 0)).collect();
        let x = GlobalTensor::from_slice(&gm, &data).unwrap();
        let m = GlobalTensor::from_slice(&gm, &mask).unwrap();
        let run = compress(&spec, &gm, &x, &m, 16, 2).unwrap();
        let expect: Vec<F16> = data
            .iter()
            .zip(&mask)
            .filter(|&(_, &m)| m != 0)
            .map(|(&v, _)| v)
            .collect();
        assert_eq!(run.values.to_vec(), expect);
    }

    #[test]
    fn nothing_selected() {
        let (spec, gm) = setup();
        let x = GlobalTensor::from_slice(&gm, &[5u16; 100]).unwrap();
        let m = GlobalTensor::from_slice(&gm, &[0u8; 100]).unwrap();
        let run = compress(&spec, &gm, &x, &m, 16, 1).unwrap();
        assert_eq!(run.n_true, 0);
        assert!(run.values.to_vec().is_empty());
    }

    #[test]
    fn empty_and_mismatch() {
        let (spec, gm) = setup();
        let x = GlobalTensor::<u16>::new(&gm, 0).unwrap();
        let m = GlobalTensor::<u8>::new(&gm, 0).unwrap();
        assert_eq!(compress(&spec, &gm, &x, &m, 16, 1).unwrap().n_true, 0);
        let x = GlobalTensor::from_slice(&gm, &[1u16]).unwrap();
        let m2 = GlobalTensor::from_slice(&gm, &[1u8, 1]).unwrap();
        assert!(compress(&spec, &gm, &x, &m2, 16, 1).is_err());
    }
}
