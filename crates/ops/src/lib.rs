//! Scan-based computational operators (the paper's Section 5), built on
//! the MCScan algorithm from the [`scan`] crate:
//!
//! * [`split::split_ind`] — **SplitInd**: stable partition of an array by
//!   a boolean mask, also returning the original indices (the PyTorch
//!   `sort()`-compatible building block).
//! * [`compress::compress`] — **Compress/compact**: `masked_select`.
//! * [`radix_sort::radix_sort`] — LSB radix sort (stable, values +
//!   indices) whose parallel splits run on the cube units; supports
//!   unsigned/signed integers and `f16` via the order-preserving
//!   encode/decode pre/post-passes.
//! * [`topk::topk`] — top-k selection via bitwise partial quickselect on
//!   SplitInd (reproducing the paper's *negative* result for small k).
//! * [`topp::top_p_sample`] — Llama3-style top-p (nucleus) sampling:
//!   descending radix sort + scan + threshold + weighted draw.
//! * [`weighted::weighted_sample`] — inverse-transform weighted sampling
//!   with unbounded support size.
//! * [`baselines`] — the PyTorch-Ascend operators the paper measures
//!   against (`torch.clone`, `torch.masked_select`, `torch.sort`,
//!   `torch.multinomial`, baseline top-k), implemented either as real
//!   simulator kernels or as documented cost models.

#![forbid(unsafe_code)]

pub mod alias;
pub mod baselines;
pub mod compress;
pub mod radix_sort;
pub mod split;
pub mod topk;
pub mod topp;
pub mod weighted;

pub use alias::{alias_sample_many, build_alias_table, AliasTable};
pub use compress::compress;
pub use radix_sort::{radix_sort, SortOrder, SortRun};
pub use split::{split_ind, SplitRun};
pub use topk::topk;
pub use topp::{top_p_sample, top_p_sample_batch};
pub use weighted::weighted_sample;

/// Largest power-of-two piece length (in elements) such that a kernel
/// needing `bytes_per_elem` UB bytes per element stays within the
/// Unified Buffer, capped at `cap` elements. Lets the same kernels run
/// on the tiny test chip and the 910B4 preset.
pub(crate) fn ub_piece(spec: &ascendc::ChipSpec, bytes_per_elem: usize, cap: usize) -> usize {
    let max_elems = spec.ub_capacity / bytes_per_elem.max(1);
    let mut p = 64;
    while p * 2 <= max_elems && p * 2 <= cap {
        p *= 2;
    }
    p
}
