//! **Top-p (nucleus) sampling** — the Llama3 `sample_top_p` operator.
//!
//! Given a token probability vector, nucleus sampling draws from the
//! smallest set of highest-probability tokens whose cumulative mass
//! exceeds `p`. The Llama3 reference implementation sorts the
//! probabilities descending, takes their cumulative sum, masks out
//! tokens once the *exclusive* cumulative mass passes `p`, renormalizes
//! and draws — exactly the pipeline built here from the paper's
//! operators:
//!
//! 1. descending [`radix_sort`] of the probabilities (16 scans for fp16);
//! 2. inclusive [`mcscan`] of the sorted probabilities (1 scan —
//!    17 scans per batch total, the paper's count);
//! 3. a vector kernel that counts the kept prefix (`cumsum − prob ≤ p`);
//! 4. the inverse-transform boundary search over the *existing*
//!    cumulative sums restricted to the kept prefix (no extra scan).
//!
//! [`radix_sort`]: crate::radix_sort::radix_sort
//! [`mcscan`]: scan::mcscan::mcscan

use crate::radix_sort::{radix_sort, SortOrder};
use crate::weighted::cdf_search;
use ascend_sim::mem::GlobalMemory;
use ascend_sim::KernelReport;
use ascendc::{launch, ChipSpec, CmpMode, GlobalTensor, ScratchpadKind, SimError, SimResult};
use dtypes::{Element, F16};
use scan::mcscan::{mcscan, McScanConfig, ScanKind};
use std::sync::Arc;

/// Result of [`top_p_sample`].
pub struct TopPRun {
    /// The sampled token id (index into the original probability vector).
    pub token: u32,
    /// How many tokens the nucleus kept.
    pub n_kept: usize,
    /// Combined execution report (sort + scan + threshold + search).
    pub report: KernelReport,
}

/// Draws one token by nucleus sampling from `probs` with threshold `p`,
/// using the uniform variate `theta ∈ [0, 1)`.
///
/// `probs` need not be normalized (the draw is proportional). `s` and
/// `blocks` configure the underlying MCScan launches.
pub fn top_p_sample(
    spec: &ChipSpec,
    gm: &Arc<GlobalMemory>,
    probs: &GlobalTensor<F16>,
    p: f64,
    theta: f64,
    s: usize,
    blocks: u32,
) -> SimResult<TopPRun> {
    let n = probs.len();
    if n == 0 {
        return Err(SimError::InvalidArgument(
            "top_p: empty probabilities".into(),
        ));
    }
    if !(0.0..=1.0).contains(&p) {
        return Err(SimError::InvalidArgument(format!(
            "top_p: p {p} outside [0, 1]"
        )));
    }
    if !(0.0..1.0).contains(&theta) {
        return Err(SimError::InvalidArgument(format!(
            "top_p: theta {theta} outside [0, 1)"
        )));
    }

    // 1. Sort descending (values + original token ids).
    let sorted = radix_sort::<F16>(spec, gm, probs, s, blocks, SortOrder::Descending)?;

    // 2. Cumulative sum of the sorted probabilities.
    let scan_run = mcscan::<F16, F16, F16>(
        spec,
        gm,
        &sorted.values,
        McScanConfig {
            s,
            blocks,
            kind: ScanKind::Inclusive,
        },
    )?;
    let cdf = scan_run.y;

    // 3. Count the kept prefix: token i stays while its *exclusive*
    // cumulative mass (cumsum[i] - prob[i]) does not exceed p·total.
    // (Llama3 normalizes first; proportional weights fold the total in.)
    let total = cdf.read_range(n - 1, 1)?[0].to_f32() as f64;
    if total <= 0.0 {
        return Err(SimError::InvalidArgument(
            "top_p: probabilities sum to zero".into(),
        ));
    }
    let p_abs = F16::from_f64(p * total);
    let (n_kept, count_report) = kept_prefix_count(spec, gm, &cdf, &sorted.values, p_abs, blocks)?;
    let n_kept = n_kept.max(1);

    // 4. Inverse-transform draw over the kept prefix, reusing the CDF.
    let kept_mass = cdf.read_range(n_kept - 1, 1)?[0];
    let threshold = F16::from_f64(theta * kept_mass.to_f64());
    let (pos, search_report) =
        cdf_search(spec, gm, &cdf.slice(0, n_kept)?, n_kept, threshold, blocks)?;
    let token = sorted.indices.read_range(pos, 1)?[0];

    let mut report = KernelReport::sequential(
        "TopP",
        &[sorted.report, scan_run.report, count_report, search_report],
    );
    report.elements = n as u64;
    report.useful_bytes = (n * F16::SIZE) as u64;
    Ok(TopPRun {
        token,
        n_kept,
        report,
    })
}

/// Batched nucleus sampling: draws one token per row of a
/// `batch x vocab` probability tensor (the paper notes these operations
/// "are usually batched with a constant batch size"). Rows execute as
/// back-to-back device pipelines; the combined report reflects the whole
/// batch.
#[allow(clippy::too_many_arguments)]
pub fn top_p_sample_batch(
    spec: &ChipSpec,
    gm: &Arc<GlobalMemory>,
    probs: &GlobalTensor<F16>,
    batch: usize,
    vocab: usize,
    p: f64,
    thetas: &[f64],
    s: usize,
    blocks: u32,
) -> SimResult<(Vec<u32>, KernelReport)> {
    if batch == 0 || vocab == 0 || batch * vocab != probs.len() {
        return Err(SimError::InvalidArgument(format!(
            "top_p batch: {batch} x {vocab} does not match tensor of {}",
            probs.len()
        )));
    }
    if thetas.len() != batch {
        return Err(SimError::InvalidArgument(format!(
            "top_p batch: {} thetas for batch {batch}",
            thetas.len()
        )));
    }
    let mut tokens = Vec::with_capacity(batch);
    let mut reports = Vec::with_capacity(batch);
    for (b, &theta) in thetas.iter().enumerate() {
        let row = probs.slice(b * vocab, vocab)?;
        let run = top_p_sample(spec, gm, &row, p, theta, s, blocks)?;
        tokens.push(run.token);
        reports.push(run.report);
    }
    let mut report = KernelReport::sequential("TopP(batch)", &reports);
    report.elements = (batch * vocab) as u64;
    report.useful_bytes = (batch * vocab * F16::SIZE) as u64;
    Ok((tokens, report))
}

/// Counts how many leading tokens of the sorted distribution survive the
/// nucleus threshold: `#{i : cumsum[i] − prob[i] ≤ p}` (the CDF is
/// descending-sorted, so survivors form a prefix).
fn kept_prefix_count(
    spec: &ChipSpec,
    gm: &Arc<GlobalMemory>,
    cdf: &GlobalTensor<F16>,
    probs_sorted: &GlobalTensor<F16>,
    p_abs: F16,
    blocks: u32,
) -> SimResult<(usize, KernelReport)> {
    let n = cdf.len();
    let piece = crate::ub_piece(spec, 2 * F16::SIZE + 1 + 4, 4096);
    let lanes = (blocks as usize) * spec.vec_per_core as usize;
    let counts = GlobalTensor::<u32>::new(gm, lanes)?;
    let spans: Vec<(usize, usize)> = {
        let mut v = Vec::new();
        let mut off = 0;
        while off < n {
            let valid = piece.min(n - off);
            v.push((off, valid));
            off += valid;
        }
        v
    };
    let report = launch(spec, gm, blocks, "TopPThreshold", |ctx| {
        let lane0 = ctx.block_idx as usize * ctx.vecs.len();
        let stride = ctx.block_dim as usize * ctx.vecs.len();
        for v in 0..ctx.vecs.len() {
            let lane = lane0 + v;
            let vc = &mut ctx.vecs[v];
            let mut cbuf = vc.alloc_local::<F16>(ScratchpadKind::Ub, piece)?;
            let mut pbuf = vc.alloc_local::<F16>(ScratchpadKind::Ub, piece)?;
            let mut mk = vc.alloc_local::<u8>(ScratchpadKind::Ub, piece)?;
            let mut wide = vc.alloc_local::<i32>(ScratchpadKind::Ub, piece)?;
            let mut kept = 0u32;
            let mut kept_ready = 0;
            for &(off, valid) in spans.iter().skip(lane).step_by(stride) {
                vc.copy_in(&mut cbuf, 0, cdf, off, valid, &[])?;
                vc.copy_in(&mut pbuf, 0, probs_sorted, off, valid, &[])?;
                // exclusive mass = cumsum - prob
                vc.vsub_inplace(&mut cbuf, 0, &pbuf, 0, valid)?;
                vc.vcompare_scalar(&mut mk, &cbuf, 0, valid, CmpMode::Le, p_abs, 0)?;
                // Widen before reducing: a u8 mask sum wraps at 255.
                vc.vcast::<u8, i32>(&mut wide, &mk, 0, valid)?;
                let (count, ready) = vc.reduce_sum(&wide, 0, valid)?;
                kept += count as u32;
                kept_ready = vc.scalar_ops(1, &[ready, kept_ready])?;
            }
            let mut one = vc.alloc_local::<u32>(ScratchpadKind::Ub, 1)?;
            vc.insert(&mut one, 0, kept, kept_ready)?;
            vc.copy_out(&counts, lane, &one, 0, 1, &[])?;
            vc.free_local(one)?;
            vc.free_local(cbuf)?;
            vc.free_local(pbuf)?;
            vc.free_local(mk)?;
            vc.free_local(wide)?;
        }
        Ok(())
    })?;
    let n_kept: u32 = counts.to_vec().into_iter().sum();
    Ok((n_kept as usize, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (ChipSpec, Arc<GlobalMemory>) {
        let spec = ChipSpec::tiny();
        let gm = Arc::new(GlobalMemory::new(spec.hbm_capacity));
        (spec, gm)
    }

    #[test]
    fn keeps_only_the_nucleus() {
        let (spec, gm) = setup();
        // Token 3 holds 60% of the mass, token 7 holds 30%, the rest 10%.
        let mut probs = vec![F16::from_f32(0.000_5); 200];
        probs[3] = F16::from_f32(0.6);
        probs[7] = F16::from_f32(0.3);
        let t = GlobalTensor::from_slice(&gm, &probs).unwrap();
        // p = 0.5: nucleus is {token 3} alone.
        for theta in [0.0, 0.5, 0.99] {
            let run = top_p_sample(&spec, &gm, &t, 0.5, theta, 16, 2).unwrap();
            assert_eq!(run.n_kept, 1);
            assert_eq!(run.token, 3, "theta = {theta}");
        }
        // p = 0.85: nucleus is {3, 7}.
        let run = top_p_sample(&spec, &gm, &t, 0.85, 0.9, 16, 2).unwrap();
        assert_eq!(run.n_kept, 2);
        assert_eq!(
            run.token, 7,
            "theta 0.9 of mass 0.9 falls in token 7's slice"
        );
        let run = top_p_sample(&spec, &gm, &t, 0.85, 0.1, 16, 2).unwrap();
        assert_eq!(run.token, 3);
    }

    #[test]
    fn p_one_keeps_everything() {
        let (spec, gm) = setup();
        let probs: Vec<F16> = (1..=64).map(|i| F16::from_f32(i as f32)).collect();
        let t = GlobalTensor::from_slice(&gm, &probs).unwrap();
        let run = top_p_sample(&spec, &gm, &t, 1.0, 0.999, 16, 1).unwrap();
        assert_eq!(run.n_kept, 64);
        // theta ~ 1 lands in the tail of the descending-sorted CDF: the
        // smallest kept probability.
        assert!(run.token < 64);
    }

    #[test]
    fn always_keeps_at_least_one_token() {
        let (spec, gm) = setup();
        let mut probs = vec![F16::ZERO; 50];
        probs[20] = F16::ONE;
        let t = GlobalTensor::from_slice(&gm, &probs).unwrap();
        let run = top_p_sample(&spec, &gm, &t, 0.0, 0.7, 16, 1).unwrap();
        assert_eq!(run.n_kept, 1);
        assert_eq!(run.token, 20);
    }

    #[test]
    fn scan_count_matches_paper() {
        // 16 radix-sort scans + 1 cumsum scan = 17 SyncAll rounds from
        // MCScan launches.
        let (spec, gm) = setup();
        let probs: Vec<F16> = (0..128)
            .map(|i| F16::from_f32((i % 7) as f32 + 1.0))
            .collect();
        let t = GlobalTensor::from_slice(&gm, &probs).unwrap();
        let run = top_p_sample(&spec, &gm, &t, 0.9, 0.5, 16, 1).unwrap();
        assert_eq!(
            run.report.sync_rounds, 17,
            "the paper's 17-scans-per-batch count"
        );
    }

    #[test]
    fn batched_sampling_draws_per_row() {
        let (spec, gm) = setup();
        let (batch, vocab) = (3usize, 100usize);
        let mut probs = vec![F16::from_f32(1e-4); batch * vocab];
        // One dominant token per row at a different position.
        probs[7] = F16::ONE;
        probs[vocab + 31] = F16::ONE;
        probs[2 * vocab + 99] = F16::ONE;
        let t = GlobalTensor::from_slice(&gm, &probs).unwrap();
        let (tokens, report) =
            top_p_sample_batch(&spec, &gm, &t, batch, vocab, 0.5, &[0.3, 0.6, 0.9], 16, 2).unwrap();
        assert_eq!(tokens, vec![7, 31, 99]);
        // 17 scans per batch element (the paper's accounting).
        assert_eq!(report.sync_rounds, 17 * batch as u64);
        // Shape errors are rejected.
        assert!(top_p_sample_batch(&spec, &gm, &t, 2, vocab, 0.5, &[0.1, 0.2], 16, 2).is_err());
        assert!(top_p_sample_batch(&spec, &gm, &t, batch, vocab, 0.5, &[0.1], 16, 2).is_err());
    }

    #[test]
    fn rejects_bad_args() {
        let (spec, gm) = setup();
        let t = GlobalTensor::from_slice(&gm, &[F16::ONE; 8]).unwrap();
        assert!(top_p_sample(&spec, &gm, &t, 1.5, 0.5, 16, 1).is_err());
        assert!(top_p_sample(&spec, &gm, &t, 0.9, 1.0, 16, 1).is_err());
        let empty = GlobalTensor::<F16>::new(&gm, 0).unwrap();
        assert!(top_p_sample(&spec, &gm, &empty, 0.9, 0.5, 16, 1).is_err());
    }
}
