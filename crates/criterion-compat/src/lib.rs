//! Offline drop-in subset of the
//! [`criterion`](https://crates.io/crates/criterion) benchmarking API.
//!
//! The build environment for this repository has no network access to
//! crates.io, so the workspace vendors the slice of criterion its
//! benches use: `criterion_group!` / `criterion_main!`,
//! `Criterion::benchmark_group`, `throughput`, `sample_size`,
//! `bench_function`, `bench_with_input` and `Bencher::iter`.
//!
//! Measurement is deliberately simple: a short warm-up, then
//! `sample_size` timed samples of one iteration each; the median,
//! minimum and derived throughput are printed per benchmark. There are
//! no HTML reports, no statistical regression analysis and no saved
//! baselines — enough to compare kernels locally and to keep
//! `cargo bench` compiling and running.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Measurement driver handed to each benchmark function.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        println!("\ngroup: {name}");
        BenchmarkGroup {
            sample_size: self.default_sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark (no group).
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), self.default_sample_size, None, f);
        self
    }
}

/// Units for throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier combining a function name and a parameter value.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// A group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), self.sample_size, self.throughput, f);
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&id.to_string(), self.sample_size, self.throughput, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (printing is incremental, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// Times the body passed to [`Bencher::iter`].
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Measures one sample: runs `body` once and records its wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        let start = Instant::now();
        let out = body();
        self.elapsed += start.elapsed();
        self.iters += 1;
        drop(std::hint::black_box(out));
    }
}

fn run_one<F>(id: &str, samples: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Warm-up sample (not recorded).
    let mut warm = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
    };
    f(&mut warm);

    let mut times: Vec<Duration> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        if b.iters > 0 {
            times.push(b.elapsed / b.iters as u32);
        }
    }
    times.sort();
    if times.is_empty() {
        println!("  {id}: no samples (Bencher::iter never called)");
        return;
    }
    let median = times[times.len() / 2];
    let best = times[0];
    let rate = throughput
        .map(|t| {
            let per_s = |n: u64| n as f64 / median.as_secs_f64();
            match t {
                Throughput::Elements(n) => format!(", {:.3} Melem/s", per_s(n) / 1e6),
                Throughput::Bytes(n) => format!(", {:.3} MiB/s", per_s(n) / (1024.0 * 1024.0)),
            }
        })
        .unwrap_or_default();
    println!("  {id}: median {median:?}, best {best:?}{rate}");
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Re-export so `criterion::black_box` keeps working.
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.throughput(Throughput::Elements(10));
        g.sample_size(3);
        let mut runs = 0;
        g.bench_function("noop", |b| {
            b.iter(|| 1 + 1);
            runs += 1;
        });
        g.finish();
        assert_eq!(runs, 4, "1 warm-up + 3 samples");
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(2);
        g.bench_with_input(BenchmarkId::new("sq", 7), &7u64, |b, &x| {
            b.iter(|| x * x);
        });
    }
}
