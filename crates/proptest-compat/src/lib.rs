//! Offline drop-in subset of the
//! [`proptest`](https://crates.io/crates/proptest) API.
//!
//! The build environment for this repository has no network access to
//! crates.io, so the workspace vendors the slice of `proptest` its test
//! suites use:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(...)]` header,
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`] and
//!   [`prop_assume!`],
//! * `any::<T>()` for the primitive integer/float/bool types,
//! * numeric `Range` / `RangeInclusive` strategies, and
//! * `proptest::collection::vec(strategy, size_range)`.
//!
//! Differences from upstream: generation is deterministic per test
//! (seeded from the test's module path and name, so failures reproduce
//! on every run), edge values (min/max/zero) are injected into the
//! first cases of every integer strategy, and there is **no shrinking**
//! — a failing case reports the values that failed instead. Regression
//! seed files (`proptest-regressions/`) are not consumed; known
//! regressions should be promoted to explicit unit tests.

pub mod strategy {
    //! The [`Strategy`] trait and primitive strategy types.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A source of random values of one type.
    ///
    /// Upstream proptest's `Strategy` produces value *trees* to support
    /// shrinking; this subset just samples concrete values.
    pub trait Strategy {
        /// The type of generated values.
        type Value;
        /// Generates the value for case number `case` (0-based).
        fn generate(&self, rng: &mut TestRng, case: u32) -> Self::Value;
    }

    /// Strategy returned by [`crate::prelude::any`].
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T> Any<T> {
        pub(crate) fn new() -> Self {
            Any {
                _marker: std::marker::PhantomData,
            }
        }
    }

    /// Types with a canonical "whole domain" strategy.
    pub trait Arbitrary: Sized {
        /// Generates an arbitrary value of the type.
        fn arbitrary(rng: &mut TestRng, case: u32) -> Self;
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng, case: u32) -> T {
            T::arbitrary(rng, case)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng, case: u32) -> Self {
                    // Deterministically exercise the edge values first;
                    // they are where integer strategies earn their keep.
                    match case {
                        0 => 0 as $t,
                        1 => <$t>::MAX,
                        2 => <$t>::MIN,
                        3 => 1 as $t,
                        _ => rng.next_u64() as $t,
                    }
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng, _case: u32) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f32 {
        /// Arbitrary bit patterns: includes NaNs, infinities and
        /// subnormals, like upstream's full `any::<f32>()` domain.
        fn arbitrary(rng: &mut TestRng, case: u32) -> Self {
            match case {
                0 => 0.0,
                1 => f32::INFINITY,
                2 => f32::NEG_INFINITY,
                3 => f32::NAN,
                _ => f32::from_bits(rng.next_u64() as u32),
            }
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng, case: u32) -> Self {
            match case {
                0 => 0.0,
                1 => f64::INFINITY,
                2 => f64::NEG_INFINITY,
                3 => f64::NAN,
                _ => f64::from_bits(rng.next_u64()),
            }
        }
    }

    macro_rules! impl_range_strategy_int {
        ($($t:ty => $wide:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng, case: u32) -> $t {
                    assert!(self.start < self.end, "strategy range is empty");
                    let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                    // Hit both endpoints of the range early.
                    let draw = match case {
                        0 => 0,
                        1 => span - 1,
                        _ => rng.next_u64() % span,
                    };
                    (self.start as $wide).wrapping_add(draw as $wide) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng, case: u32) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "strategy range is empty");
                    let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                    let draw = match case {
                        0 => 0,
                        1 => span,
                        _ if span == u64::MAX => rng.next_u64(),
                        _ => rng.next_u64() % (span + 1),
                    };
                    (lo as $wide).wrapping_add(draw as $wide) as $t
                }
            }
        )*};
    }

    impl_range_strategy_int!(
        u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
        i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
    );

    macro_rules! impl_range_strategy_float {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng, case: u32) -> $t {
                    assert!(self.start < self.end, "strategy range is empty");
                    let unit = match case {
                        0 => 0.0,
                        1 => 0.5,
                        _ => rng.unit_f64(),
                    } as $t;
                    let v = self.start + unit * (self.end - self.start);
                    // Guard against rounding onto the exclusive endpoint.
                    if v >= self.end { self.start } else { v }
                }
            }
        )*};
    }

    impl_range_strategy_float!(f32, f64);

    /// Strategy that always yields a clone of one value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng, _case: u32) -> T {
            self.0.clone()
        }
    }
}

pub mod collection {
    //! Collection strategies (subset: [`vec`]).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A range of collection sizes.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        /// Smallest size, inclusive.
        pub min: usize,
        /// Largest size, inclusive.
        pub max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    /// Strategy for `Vec<S::Value>` with lengths drawn from a size range.
    pub struct VecStrategy<S: Strategy> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// lengths are drawn uniformly from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng, case: u32) -> Vec<S::Value> {
            // Exercise the smallest and largest sizes in the first cases.
            let len = match case {
                0 => self.size.min,
                1 => self.size.max,
                _ => {
                    let span = (self.size.max - self.size.min) as u64 + 1;
                    self.size.min + (rng.next_u64() % span) as usize
                }
            };
            // Element generation always uses the "interior" case number so
            // a vec of 20k elements isn't 20k copies of an edge value.
            (0..len)
                .map(|i| {
                    let elem_case = if case <= 1 { 4 + i as u32 % 4 } else { 4 };
                    self.element.generate(rng, elem_case.max(4))
                })
                .collect()
        }
    }
}

pub mod test_runner {
    //! Configuration and the deterministic test RNG.

    /// Per-test configuration (subset: `cases`).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
        /// Maximum rejected cases (via `prop_assume!`) before giving up.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..Default::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 64,
                max_global_rejects: 4096,
            }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!` — try another input.
        Reject(String),
        /// The case failed an assertion.
        Fail(String),
    }

    /// Deterministic RNG for test-case generation (xoshiro256**).
    ///
    /// Seeded from the test's full path so every run of a given test
    /// sees the same sequence — failures always reproduce.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Creates the RNG for the named test.
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the name, then SplitMix64 expansion.
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut sm = h;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// Next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod prelude {
    //! Everything a `proptest!` test file needs in scope.

    pub use crate::strategy::{Any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// The canonical whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any::new()
    }
}

/// Defines property tests.
///
/// ```text
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(12))]
///     #[test]
///     fn my_prop(x in 0u32..100, v in proptest::collection::vec(any::<u16>(), 1..50)) {
///         prop_assert!(v.len() >= 1);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr); $(
        #[test]
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            let mut __passed: u32 = 0;
            let mut __rejected: u32 = 0;
            let mut __case: u32 = 0;
            while __passed < __config.cases {
                if __rejected > __config.max_global_rejects {
                    panic!(
                        "proptest '{}': too many prop_assume! rejections ({})",
                        stringify!($name),
                        __rejected
                    );
                }
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng, __case);)+
                __case = __case.wrapping_add(1);
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        { $body }
                        Ok(())
                    })();
                match __outcome {
                    Ok(()) => __passed += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => __rejected += 1,
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest '{}' failed at case {}: {}",
                            stringify!($name),
                            __case,
                            msg
                        );
                    }
                }
            }
        }
    )*};
}

/// Fails the current test case if the condition does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*))
            );
        }
    };
}

/// Fails the current test case if the two expressions are not equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            *l,
            *r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Fails the current test case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            *l
        );
    }};
}

/// Rejects the current test case (it is re-drawn, not failed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_rng_per_name() {
        let mut a = TestRng::for_test("a::b");
        let mut b = TestRng::for_test("a::b");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_test("a::c");
        let _ = c.next_u64();
    }

    #[test]
    fn range_strategies_respect_bounds() {
        let mut rng = TestRng::for_test("bounds");
        for case in 0..1000 {
            let v = Strategy::generate(&(10u32..20), &mut rng, case);
            assert!((10..20).contains(&v));
            let w = Strategy::generate(&(5i8..=7), &mut rng, case);
            assert!((5..=7).contains(&w));
            let f = Strategy::generate(&(-1.0f32..1.0), &mut rng, case);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_hits_min_and_max_sizes() {
        let mut rng = TestRng::for_test("sizes");
        let strat = crate::collection::vec(0u8..=1, 3..10);
        let first = Strategy::generate(&strat, &mut rng, 0);
        assert_eq!(first.len(), 3);
        let second = Strategy::generate(&strat, &mut rng, 1);
        assert_eq!(second.len(), 9);
        for case in 2..200 {
            let v = Strategy::generate(&strat, &mut rng, case);
            assert!((3..10).contains(&v.len()));
            assert!(v.iter().all(|&b| b <= 1));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_end_to_end(x in 0u32..50, v in crate::collection::vec(any::<u16>(), 1..9)) {
            prop_assert!(x < 50);
            prop_assert!(!v.is_empty() && v.len() < 9);
            prop_assert_eq!(v.len(), v.len());
            prop_assert_ne!(v.len(), 0);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }
}
