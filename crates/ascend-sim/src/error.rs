//! Error types for the simulator.

use std::fmt;

/// Result alias used throughout the simulator and kernel layers.
pub type SimResult<T> = Result<T, SimError>;

/// Errors raised by the simulator.
///
/// These correspond to conditions that on real hardware would be compile
/// errors, runtime aborts, or silent corruption; the simulator turns all
/// of them into explicit errors so kernels can be tested for resource
/// safety (scratchpad budgets, queue protocol, bounds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A local-buffer allocation exceeded the scratchpad capacity.
    ScratchpadOverflow {
        /// Which scratchpad (e.g. "UB", "L0A").
        buffer: &'static str,
        /// Bytes requested by the failing allocation.
        requested: usize,
        /// Bytes already in use.
        in_use: usize,
        /// Scratchpad capacity in bytes.
        capacity: usize,
    },
    /// A global-memory access fell outside its tensor region.
    OutOfBounds {
        /// Description of the access.
        what: &'static str,
        /// First byte offset of the access.
        offset: usize,
        /// Length of the access in bytes.
        len: usize,
        /// Size of the containing region in bytes.
        region: usize,
    },
    /// Global-memory allocation exceeded the configured HBM capacity.
    GlobalMemoryExhausted {
        /// Bytes requested.
        requested: usize,
        /// Bytes available.
        available: usize,
    },
    /// A freed local buffer was used or freed again (simcheck).
    ScratchpadUseAfterFree {
        /// Which scratchpad (e.g. "UB", "L0A").
        buffer: &'static str,
        /// The instruction or operation that touched the stale buffer.
        what: &'static str,
    },
    /// A stale local buffer's address range is now owned by a live
    /// allocation: two tiles overlap in the same scratchpad (simcheck).
    ScratchpadOverlap {
        /// Which scratchpad (e.g. "UB", "L0A").
        buffer: &'static str,
        /// The instruction or operation that touched the stale buffer.
        what: &'static str,
    },
    /// A local buffer owned by one core's scratchpad was used or freed
    /// by a different core without going through a queue handoff
    /// (simcheck). Scratchpads are private per core on real hardware;
    /// such an access reads unrelated memory silently.
    CrossCoreScratchpad {
        /// The instruction or operation that performed the foreign use.
        what: &'static str,
        /// Unique id of the core that owns the buffer.
        owner: u64,
        /// Unique id of the core that used it.
        user: u64,
    },
    /// A queue was drained past its contents: `deque` before any
    /// `enque`, a double-`deque`, or `alloc_tensor` on an empty pool.
    QueueUnderflow {
        /// The operation that underflowed ("deque" or "alloc_tensor").
        op: &'static str,
    },
    /// More tensors were enqueued than the queue's depth allows.
    QueueOverflow {
        /// The queue's configured depth.
        depth: usize,
    },
    /// A queue was destroyed while buffers were still checked out or
    /// enqueued.
    QueueDestroyLive {
        /// Number of buffers not returned to the pool.
        in_flight: usize,
    },
    /// Queue protocol violation not covered by a dedicated variant
    /// (e.g. enqueuing a tensor from a different scratchpad).
    QueueProtocol(&'static str),
    /// A post-launch audit found inconsistent timing or traffic
    /// accounting (simcheck).
    AccountingViolation {
        /// Which invariant failed.
        what: &'static str,
        /// Human-readable details of the mismatch.
        detail: String,
    },
    /// A `CrossCoreSetFlag`/`CrossCoreWaitFlag` used a flag id beyond the
    /// chip's flag register file (`ChipSpec::flag_id_limit`). Real
    /// silicon has a small fixed id space; an out-of-range id silently
    /// aliases another flag.
    FlagIdOutOfRange {
        /// The offending flag id.
        id: u32,
        /// The chip's flag-id limit (valid ids are `0..limit`).
        limit: u32,
    },
    /// The post-launch schedule analyzer (`simlint`, see the `hb`
    /// module) found an error-severity hazard: a cross-block GM data
    /// race, an unmatched flag wait, a flag id reused across barrier
    /// rounds, or a happens-before cycle.
    ScheduleHazard {
        /// The diagnostic code (e.g. "gm-race", "flag-reuse").
        what: &'static str,
        /// Human-readable details of the hazard.
        detail: String,
    },
    /// An instruction was given invalid arguments (shape mismatch etc.).
    InvalidArgument(String),
    /// An instruction was issued on a core that lacks the engine
    /// (e.g. `Mmad` on a vector core).
    WrongCore {
        /// The instruction name.
        instr: &'static str,
        /// The core kind the instruction ran on.
        core: &'static str,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::ScratchpadOverflow {
                buffer,
                requested,
                in_use,
                capacity,
            } => write!(
                f,
                "scratchpad {buffer} overflow: requested {requested} B with {in_use}/{capacity} B in use"
            ),
            SimError::OutOfBounds {
                what,
                offset,
                len,
                region,
            } => write!(
                f,
                "{what}: access [{offset}, {}) outside region of {region} B",
                offset + len
            ),
            SimError::GlobalMemoryExhausted {
                requested,
                available,
            } => write!(
                f,
                "global memory exhausted: requested {requested} B, {available} B available"
            ),
            SimError::ScratchpadUseAfterFree { buffer, what } => {
                write!(f, "{what}: use of freed buffer in scratchpad {buffer}")
            }
            SimError::ScratchpadOverlap { buffer, what } => write!(
                f,
                "{what}: stale buffer overlaps a live allocation in scratchpad {buffer}"
            ),
            SimError::CrossCoreScratchpad { what, owner, user } => write!(
                f,
                "{what}: core {user} touched a local buffer owned by core {owner}'s scratchpad \
                 (cross-core scratchpads are not addressable; hand buffers over via a queue)"
            ),
            SimError::QueueUnderflow { op } => {
                write!(f, "queue underflow: {op} with no entries available")
            }
            SimError::QueueOverflow { depth } => {
                write!(f, "queue overflow: enque beyond depth {depth}")
            }
            SimError::QueueDestroyLive { in_flight } => {
                write!(f, "queue destroyed with {in_flight} buffer(s) still in flight")
            }
            SimError::QueueProtocol(msg) => write!(f, "queue protocol violation: {msg}"),
            SimError::AccountingViolation { what, detail } => {
                write!(f, "accounting violation ({what}): {detail}")
            }
            SimError::FlagIdOutOfRange { id, limit } => write!(
                f,
                "flag id {id} out of range: the chip has {limit} cross-core flag registers \
                 (valid ids are 0..{limit})"
            ),
            SimError::ScheduleHazard { what, detail } => {
                write!(f, "schedule hazard ({what}): {detail}")
            }
            SimError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            SimError::WrongCore { instr, core } => {
                write!(f, "instruction {instr} not available on a {core} core")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = SimError::ScratchpadOverflow {
            buffer: "UB",
            requested: 1024,
            in_use: 190_000,
            capacity: 196_608,
        };
        assert!(e.to_string().contains("UB"));
        assert!(e.to_string().contains("1024"));

        let e = SimError::OutOfBounds {
            what: "DataCopy",
            offset: 100,
            len: 28,
            region: 64,
        };
        assert!(e.to_string().contains("[100, 128)"));

        let e = SimError::WrongCore {
            instr: "Mmad",
            core: "vector",
        };
        assert!(e.to_string().contains("Mmad"));
    }

    #[test]
    fn simcheck_display_messages() {
        let e = SimError::ScratchpadUseAfterFree {
            buffer: "UB",
            what: "Adds",
        };
        assert!(e.to_string().contains("freed buffer"));
        assert!(e.to_string().contains("UB"));

        let e = SimError::ScratchpadOverlap {
            buffer: "L0A",
            what: "Mmad",
        };
        assert!(e.to_string().contains("overlaps"));

        let e = SimError::CrossCoreScratchpad {
            what: "Adds",
            owner: 3,
            user: 7,
        };
        assert!(e.to_string().contains("core 7"));
        assert!(e.to_string().contains("owned by core 3"));

        assert!(SimError::QueueUnderflow { op: "deque" }
            .to_string()
            .contains("underflow"));
        assert!(SimError::QueueOverflow { depth: 2 }
            .to_string()
            .contains("depth 2"));
        assert!(SimError::QueueDestroyLive { in_flight: 1 }
            .to_string()
            .contains("in flight"));
        let e = SimError::AccountingViolation {
            what: "bytes_read reconciliation",
            detail: "off by 4".into(),
        };
        assert!(e.to_string().contains("bytes_read"));

        let e = SimError::FlagIdOutOfRange { id: 17, limit: 16 };
        assert!(e.to_string().contains("flag id 17"));
        assert!(e.to_string().contains("0..16"));

        let e = SimError::ScheduleHazard {
            what: "gm-race",
            detail: "blocks 0 and 1 both write [0, 64)".into(),
        };
        assert!(e.to_string().contains("gm-race"));
        assert!(e.to_string().contains("blocks 0 and 1"));
    }
}
