//! Error types for the simulator.

use std::fmt;

/// Result alias used throughout the simulator and kernel layers.
pub type SimResult<T> = Result<T, SimError>;

/// Errors raised by the simulator.
///
/// These correspond to conditions that on real hardware would be compile
/// errors, runtime aborts, or silent corruption; the simulator turns all
/// of them into explicit errors so kernels can be tested for resource
/// safety (scratchpad budgets, queue protocol, bounds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A local-buffer allocation exceeded the scratchpad capacity.
    ScratchpadOverflow {
        /// Which scratchpad (e.g. "UB", "L0A").
        buffer: &'static str,
        /// Bytes requested by the failing allocation.
        requested: usize,
        /// Bytes already in use.
        in_use: usize,
        /// Scratchpad capacity in bytes.
        capacity: usize,
    },
    /// A global-memory access fell outside its tensor region.
    OutOfBounds {
        /// Description of the access.
        what: &'static str,
        /// First byte offset of the access.
        offset: usize,
        /// Length of the access in bytes.
        len: usize,
        /// Size of the containing region in bytes.
        region: usize,
    },
    /// Global-memory allocation exceeded the configured HBM capacity.
    GlobalMemoryExhausted {
        /// Bytes requested.
        requested: usize,
        /// Bytes available.
        available: usize,
    },
    /// Queue protocol violation (e.g. `deque` on an empty queue).
    QueueProtocol(&'static str),
    /// An instruction was given invalid arguments (shape mismatch etc.).
    InvalidArgument(String),
    /// An instruction was issued on a core that lacks the engine
    /// (e.g. `Mmad` on a vector core).
    WrongCore {
        /// The instruction name.
        instr: &'static str,
        /// The core kind the instruction ran on.
        core: &'static str,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::ScratchpadOverflow {
                buffer,
                requested,
                in_use,
                capacity,
            } => write!(
                f,
                "scratchpad {buffer} overflow: requested {requested} B with {in_use}/{capacity} B in use"
            ),
            SimError::OutOfBounds {
                what,
                offset,
                len,
                region,
            } => write!(
                f,
                "{what}: access [{offset}, {}) outside region of {region} B",
                offset + len
            ),
            SimError::GlobalMemoryExhausted {
                requested,
                available,
            } => write!(
                f,
                "global memory exhausted: requested {requested} B, {available} B available"
            ),
            SimError::QueueProtocol(msg) => write!(f, "queue protocol violation: {msg}"),
            SimError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            SimError::WrongCore { instr, core } => {
                write!(f, "instruction {instr} not available on a {core} core")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = SimError::ScratchpadOverflow {
            buffer: "UB",
            requested: 1024,
            in_use: 190_000,
            capacity: 196_608,
        };
        assert!(e.to_string().contains("UB"));
        assert!(e.to_string().contains("1024"));

        let e = SimError::OutOfBounds {
            what: "DataCopy",
            offset: 100,
            len: 28,
            region: 64,
        };
        assert!(e.to_string().contains("[100, 128)"));

        let e = SimError::WrongCore {
            instr: "Mmad",
            core: "vector",
        };
        assert!(e.to_string().contains("Mmad"));
    }
}
