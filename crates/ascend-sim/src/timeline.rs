//! Per-core dataflow timing.
//!
//! A [`CoreTimeline`] models one AIC or AIV core: a set of engines, each
//! with its own in-order instruction queue. Executing an instruction on an
//! engine starts at `max(engine free, all dependencies ready)` and
//! occupies the engine for the instruction's cost. The returned
//! [`EventTime`] is the completion time; threading these completion times
//! through the AscendC queue layer yields exactly the pipelined schedules
//! the paper describes (MTE/cube/vector overlap, double buffering).

use crate::chip::ChipSpec;
use crate::engine::EngineKind;
use crate::error::{SimError, SimResult};
use crate::prof::{StallCause, StallTally};

/// Completion time of an instruction, in core cycles since kernel start.
pub type EventTime = u64;

/// Whether a core is a cube (AIC) or vector (AIV) core.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoreKind {
    /// AI Cube core: matmul engine + MTE1/MTE2/MTE3/FIXP + scalar.
    Cube,
    /// AI Vector core: SIMD engine + MTE2/MTE3 + scalar.
    Vector,
}

impl CoreKind {
    /// The core kind's name.
    pub const fn name(self) -> &'static str {
        match self {
            CoreKind::Cube => "cube",
            CoreKind::Vector => "vector",
        }
    }

    /// True if the engine exists on this core kind.
    pub fn has_engine(self, engine: EngineKind) -> bool {
        match self {
            CoreKind::Cube => ChipSpec::cube_core_engines().contains(&engine),
            CoreKind::Vector => ChipSpec::vec_core_engines().contains(&engine),
        }
    }
}

/// The timing state of one core.
#[derive(Clone, Debug)]
pub struct CoreTimeline {
    kind: CoreKind,
    /// The cycle the core was created at (launch overhead boundary);
    /// idle time before it is charged to nobody.
    origin: EventTime,
    /// Cycle at which each engine becomes free.
    free_at: [EventTime; EngineKind::ALL.len()],
    /// Accumulated busy cycles per engine (for utilization reports).
    busy: [u64; EngineKind::ALL.len()],
    /// Number of instructions issued per engine.
    issued: [u64; EngineKind::ALL.len()],
    /// Attributed idle/queueing cycles per engine (always counted).
    stalls: StallTally,
    /// High-water mark of contention already charged per engine: queueing
    /// intervals are merged against it so overlapping backlogs are never
    /// double-counted and contention stays ≤ `now() − origin`.
    contention_mark: [EventTime; EngineKind::ALL.len()],
    /// Recorded (engine, start, end) intervals, when tracing is on.
    recorded: Option<Vec<(EngineKind, EventTime, EventTime)>>,
    /// Recorded idle intervals with causes, when tracing is on.
    recorded_stalls: Option<Vec<(EngineKind, StallCause, EventTime, EventTime)>>,
}

impl CoreTimeline {
    /// A fresh core timeline at cycle `start` (engines all idle).
    pub fn new(kind: CoreKind, start: EventTime) -> Self {
        CoreTimeline {
            kind,
            origin: start,
            free_at: [start; EngineKind::ALL.len()],
            busy: [0; EngineKind::ALL.len()],
            issued: [0; EngineKind::ALL.len()],
            stalls: StallTally::default(),
            contention_mark: [start; EngineKind::ALL.len()],
            recorded: None,
            recorded_stalls: None,
        }
    }

    /// Turns on per-instruction interval recording (for trace export),
    /// including idle-interval (stall) recording.
    pub fn enable_recording(&mut self) {
        if self.recorded.is_none() {
            self.recorded = Some(Vec::new());
        }
        if self.recorded_stalls.is_none() {
            self.recorded_stalls = Some(Vec::new());
        }
    }

    /// The recorded (engine, start, end) intervals, if tracing was on.
    pub fn recorded(&self) -> &[(EngineKind, EventTime, EventTime)] {
        self.recorded.as_deref().unwrap_or(&[])
    }

    /// The recorded idle intervals with their causes, if tracing was on.
    pub fn recorded_stalls(&self) -> &[(EngineKind, StallCause, EventTime, EventTime)] {
        self.recorded_stalls.as_deref().unwrap_or(&[])
    }

    /// The attributed stall cycles accumulated so far.
    pub fn stalls(&self) -> &StallTally {
        &self.stalls
    }

    /// The core kind.
    pub fn kind(&self) -> CoreKind {
        self.kind
    }

    /// Executes an instruction of the given cost on an engine, after all
    /// of `deps` have completed. Returns the completion time.
    pub fn exec(
        &mut self,
        engine: EngineKind,
        cycles: u64,
        deps: &[EventTime],
    ) -> SimResult<EventTime> {
        if !self.kind.has_engine(engine) {
            return Err(SimError::WrongCore {
                instr: engine.name(),
                core: self.kind.name(),
            });
        }
        let idx = engine.index();
        let ready = deps.iter().copied().max().unwrap_or(0);
        let prev_free = self.free_at[idx];
        let start = prev_free.max(ready);
        let end = start + cycles;
        // Stall attribution (observational — `start`/`end` are already
        // decided above): the engine idled from `prev_free` to `start`
        // waiting for inputs; conversely, if the inputs were ready while
        // the engine was still busy, the instruction queued from
        // `max(ready, origin)` to `prev_free` (engine contention; overlaps
        // the engine's own busy time, see `prof::StallTally`). Queued
        // intervals of back-to-back instructions overlap the same backlog,
        // so only the part past the already-charged high-water mark is
        // counted — keeping contention per engine ≤ `now() − origin`.
        if start > prev_free {
            self.stalls.dependency[idx] += start - prev_free;
            if let Some(rec) = &mut self.recorded_stalls {
                rec.push((engine, StallCause::Dependency, prev_free, start));
            }
        }
        let queued_from = ready.max(self.origin).max(self.contention_mark[idx]);
        if prev_free > queued_from {
            self.stalls.contention[idx] += prev_free - queued_from;
            self.contention_mark[idx] = prev_free;
        }
        self.free_at[idx] = end;
        self.busy[idx] += cycles;
        self.issued[idx] += 1;
        if let Some(rec) = &mut self.recorded {
            rec.push((engine, start, end));
        }
        Ok(end)
    }

    /// The core's current completion horizon: when its last-finishing
    /// engine becomes free.
    pub fn now(&self) -> EventTime {
        *self.free_at.iter().max().expect("non-empty engine set")
    }

    /// Advances every engine's free time to at least `t`, attributing the
    /// skipped-over idle cycles to `cause` on the engines this core
    /// actually has. Used at global barriers ([`StallCause::Barrier`])
    /// and when blocked on a cross-core flag ([`StallCause::Flag`]).
    pub fn align_to_cause(&mut self, t: EventTime, cause: StallCause) {
        for (i, e) in EngineKind::ALL.iter().enumerate() {
            let f = self.free_at[i];
            if t > f {
                if self.kind.has_engine(*e) {
                    match cause {
                        StallCause::Barrier => self.stalls.barrier[i] += t - f,
                        StallCause::Flag => self.stalls.flag[i] += t - f,
                        StallCause::Dependency => self.stalls.dependency[i] += t - f,
                    }
                    if let Some(rec) = &mut self.recorded_stalls {
                        rec.push((*e, cause, f, t));
                    }
                }
                self.free_at[i] = t;
            }
        }
    }

    /// [`Self::align_to_cause`] with the barrier cause (global barriers
    /// and kernel-end alignment).
    pub fn align_to(&mut self, t: EventTime) {
        self.align_to_cause(t, StallCause::Barrier);
    }

    /// Busy cycles accumulated on an engine.
    pub fn busy_cycles(&self, engine: EngineKind) -> u64 {
        self.busy[engine.index()]
    }

    /// Instructions issued on an engine.
    pub fn instructions(&self, engine: EngineKind) -> u64 {
        self.issued[engine.index()]
    }

    /// Merges another core's counters into this one (used when collapsing
    /// per-block statistics into a kernel report).
    pub fn absorb_counters(&mut self, other: &CoreTimeline) {
        for i in 0..EngineKind::ALL.len() {
            self.busy[i] += other.busy[i];
            self.issued[i] += other.issued[i];
        }
        self.stalls.absorb(&other.stalls);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_engine_serializes() {
        let mut core = CoreTimeline::new(CoreKind::Vector, 0);
        let a = core.exec(EngineKind::Vec, 10, &[]).unwrap();
        let b = core.exec(EngineKind::Vec, 5, &[]).unwrap();
        assert_eq!(a, 10);
        assert_eq!(b, 15, "second op waits for the engine");
    }

    #[test]
    fn different_engines_overlap() {
        let mut core = CoreTimeline::new(CoreKind::Vector, 0);
        let a = core.exec(EngineKind::Mte2, 100, &[]).unwrap();
        let b = core.exec(EngineKind::Vec, 10, &[]).unwrap();
        assert_eq!(a, 100);
        assert_eq!(b, 10, "independent engines run concurrently");
        // But a dependent op waits for its producer.
        let c = core.exec(EngineKind::Vec, 10, &[a]).unwrap();
        assert_eq!(c, 110);
    }

    #[test]
    fn dependencies_pick_latest() {
        let mut core = CoreTimeline::new(CoreKind::Cube, 0);
        let a = core.exec(EngineKind::Mte2, 50, &[]).unwrap();
        let b = core.exec(EngineKind::Mte1, 20, &[a]).unwrap();
        let c = core.exec(EngineKind::Cube, 30, &[a, b]).unwrap();
        assert_eq!(b, 70);
        assert_eq!(c, 100);
        assert_eq!(core.now(), 100);
    }

    #[test]
    fn wrong_core_is_rejected() {
        let mut vec_core = CoreTimeline::new(CoreKind::Vector, 0);
        let err = vec_core.exec(EngineKind::Cube, 1, &[]).unwrap_err();
        assert!(matches!(err, SimError::WrongCore { .. }));
        let mut cube_core = CoreTimeline::new(CoreKind::Cube, 0);
        assert!(cube_core.exec(EngineKind::Vec, 1, &[]).is_err());
        assert!(cube_core.exec(EngineKind::Mte1, 1, &[]).is_ok());
    }

    #[test]
    fn align_to_advances_all_engines() {
        let mut core = CoreTimeline::new(CoreKind::Vector, 0);
        core.exec(EngineKind::Vec, 10, &[]).unwrap();
        core.align_to(1000);
        let a = core.exec(EngineKind::Vec, 1, &[]).unwrap();
        assert_eq!(a, 1001);
        // align_to never moves time backwards.
        core.align_to(50);
        let b = core.exec(EngineKind::Mte2, 1, &[]).unwrap();
        assert_eq!(b, 1001);
    }

    #[test]
    fn counters_accumulate() {
        let mut core = CoreTimeline::new(CoreKind::Vector, 0);
        core.exec(EngineKind::Vec, 10, &[]).unwrap();
        core.exec(EngineKind::Vec, 15, &[]).unwrap();
        core.exec(EngineKind::Mte2, 5, &[]).unwrap();
        assert_eq!(core.busy_cycles(EngineKind::Vec), 25);
        assert_eq!(core.instructions(EngineKind::Vec), 2);
        assert_eq!(core.busy_cycles(EngineKind::Mte2), 5);

        let mut total = CoreTimeline::new(CoreKind::Vector, 0);
        total.absorb_counters(&core);
        total.absorb_counters(&core);
        assert_eq!(total.busy_cycles(EngineKind::Vec), 50);
    }

    #[test]
    fn stall_attribution_partitions_idle_time() {
        let mut core = CoreTimeline::new(CoreKind::Vector, 100);
        core.enable_recording();
        // Engine free at 100 but inputs ready at 150: dependency-wait.
        let a = core.exec(EngineKind::Vec, 10, &[150]).unwrap();
        assert_eq!(a, 160);
        assert_eq!(core.stalls().dependency[EngineKind::Vec.index()], 50);
        // Inputs ready at 120 while the engine is busy until 160: the
        // instruction queues for 40 cycles (contention, overlaps busy).
        let b = core.exec(EngineKind::Vec, 5, &[120]).unwrap();
        assert_eq!(b, 165);
        assert_eq!(core.stalls().contention[EngineKind::Vec.index()], 40);
        // Flag alignment: idle 165 -> 180 waiting on a cross-core flag.
        core.align_to_cause(180, StallCause::Flag);
        assert_eq!(core.stalls().flag[EngineKind::Vec.index()], 15);
        // Barrier alignment: idle 180 -> 200 is a barrier wait.
        core.align_to(200);
        assert_eq!(core.stalls().barrier[EngineKind::Vec.index()], 20);
        // The idle partition closes:
        // busy + dep + barrier + flag == now - origin.
        let busy = core.busy_cycles(EngineKind::Vec);
        assert_eq!(busy + 50 + 20 + 15, 200 - 100);
        // Recorded intervals carry their causes.
        let stalls = core.recorded_stalls();
        assert!(stalls.contains(&(EngineKind::Vec, StallCause::Dependency, 100, 150)));
        assert!(stalls.contains(&(EngineKind::Vec, StallCause::Flag, 165, 180)));
        assert!(stalls.contains(&(EngineKind::Vec, StallCause::Barrier, 180, 200)));
    }

    #[test]
    fn contention_is_bounded_by_wall_clock() {
        // Regression: a long stream of cheap scalar ops whose inputs are
        // all ready up front used to charge each instruction the *whole*
        // backlog ahead of it (`prev_free - ready`), summing to a
        // quadratic total four orders of magnitude above wall-clock
        // (136.9 G contention cycles in an 8.3 M-cycle kernel). Queued
        // intervals overlap, so merged they can never exceed the engine's
        // elapsed time since launch.
        let origin = 100u64;
        let mut core = CoreTimeline::new(CoreKind::Vector, origin);
        let n = 10_000u64;
        for _ in 0..n {
            // Inputs ready at the origin; every op queues behind the
            // engine's growing backlog.
            core.exec(EngineKind::Vec, 2, &[origin]).unwrap();
        }
        let contention = core.stalls().contention[EngineKind::Vec.index()];
        let elapsed = core.now() - origin;
        assert!(
            contention <= elapsed,
            "contention {contention} exceeds wall-clock {elapsed}"
        );
        // The backlog is real: all but the first op queued, so the merged
        // total is the elapsed time minus the last op's own execution.
        assert_eq!(contention, elapsed - 2);
    }

    #[test]
    fn contention_intervals_merge_across_engines_independently() {
        let mut core = CoreTimeline::new(CoreKind::Vector, 0);
        // Two engines each build a backlog; the marks are per-engine.
        for _ in 0..10 {
            core.exec(EngineKind::Vec, 5, &[0]).unwrap();
            core.exec(EngineKind::Mte2, 3, &[0]).unwrap();
        }
        let vec_c = core.stalls().contention[EngineKind::Vec.index()];
        let mte_c = core.stalls().contention[EngineKind::Mte2.index()];
        assert_eq!(vec_c, 45, "vec backlog: 9 queued ops over 45 cycles");
        assert_eq!(mte_c, 27, "mte backlog: 9 queued ops over 27 cycles");
    }

    #[test]
    fn stall_attribution_ignores_pre_origin_idle() {
        let mut core = CoreTimeline::new(CoreKind::Vector, 500);
        // A dependency earlier than the origin causes no dependency wait
        // and no contention: the core simply did not exist yet.
        core.exec(EngineKind::Vec, 10, &[100]).unwrap();
        assert_eq!(core.stalls().dependency[EngineKind::Vec.index()], 0);
        assert_eq!(core.stalls().contention[EngineKind::Vec.index()], 0);
    }

    #[test]
    fn barrier_waits_only_charged_to_present_engines() {
        let mut core = CoreTimeline::new(CoreKind::Vector, 0);
        core.align_to(100);
        // Vector cores have no CUBE engine: nothing charged there.
        assert_eq!(core.stalls().barrier[EngineKind::Cube.index()], 0);
        assert_eq!(core.stalls().barrier[EngineKind::Vec.index()], 100);
        assert_eq!(core.stalls().barrier[EngineKind::Mte2.index()], 100);
    }

    #[test]
    fn absorb_counters_merges_stalls() {
        let mut a = CoreTimeline::new(CoreKind::Vector, 0);
        a.exec(EngineKind::Vec, 10, &[25]).unwrap();
        let mut total = CoreTimeline::new(CoreKind::Vector, 0);
        total.absorb_counters(&a);
        total.absorb_counters(&a);
        assert_eq!(total.stalls().dependency[EngineKind::Vec.index()], 50);
    }

    #[test]
    fn starts_at_nonzero_origin() {
        let mut core = CoreTimeline::new(CoreKind::Vector, 500);
        let a = core.exec(EngineKind::Vec, 10, &[]).unwrap();
        assert_eq!(a, 510);
        // A dependency earlier than the origin has no effect.
        let b = core.exec(EngineKind::Mte2, 10, &[100]).unwrap();
        assert_eq!(b, 510);
    }
}
