//! Per-core dataflow timing.
//!
//! A [`CoreTimeline`] models one AIC or AIV core: a set of engines, each
//! with its own in-order instruction queue. Executing an instruction on an
//! engine starts at `max(engine free, all dependencies ready)` and
//! occupies the engine for the instruction's cost. The returned
//! [`EventTime`] is the completion time; threading these completion times
//! through the AscendC queue layer yields exactly the pipelined schedules
//! the paper describes (MTE/cube/vector overlap, double buffering).

use crate::chip::ChipSpec;
use crate::engine::EngineKind;
use crate::error::{SimError, SimResult};

/// Completion time of an instruction, in core cycles since kernel start.
pub type EventTime = u64;

/// Whether a core is a cube (AIC) or vector (AIV) core.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoreKind {
    /// AI Cube core: matmul engine + MTE1/MTE2/MTE3/FIXP + scalar.
    Cube,
    /// AI Vector core: SIMD engine + MTE2/MTE3 + scalar.
    Vector,
}

impl CoreKind {
    /// The core kind's name.
    pub const fn name(self) -> &'static str {
        match self {
            CoreKind::Cube => "cube",
            CoreKind::Vector => "vector",
        }
    }

    /// True if the engine exists on this core kind.
    pub fn has_engine(self, engine: EngineKind) -> bool {
        match self {
            CoreKind::Cube => ChipSpec::cube_core_engines().contains(&engine),
            CoreKind::Vector => ChipSpec::vec_core_engines().contains(&engine),
        }
    }
}

/// The timing state of one core.
#[derive(Clone, Debug)]
pub struct CoreTimeline {
    kind: CoreKind,
    /// Cycle at which each engine becomes free.
    free_at: [EventTime; EngineKind::ALL.len()],
    /// Accumulated busy cycles per engine (for utilization reports).
    busy: [u64; EngineKind::ALL.len()],
    /// Number of instructions issued per engine.
    issued: [u64; EngineKind::ALL.len()],
    /// Recorded (engine, start, end) intervals, when tracing is on.
    recorded: Option<Vec<(EngineKind, EventTime, EventTime)>>,
}

impl CoreTimeline {
    /// A fresh core timeline at cycle `start` (engines all idle).
    pub fn new(kind: CoreKind, start: EventTime) -> Self {
        CoreTimeline {
            kind,
            free_at: [start; EngineKind::ALL.len()],
            busy: [0; EngineKind::ALL.len()],
            issued: [0; EngineKind::ALL.len()],
            recorded: None,
        }
    }

    /// Turns on per-instruction interval recording (for trace export).
    pub fn enable_recording(&mut self) {
        if self.recorded.is_none() {
            self.recorded = Some(Vec::new());
        }
    }

    /// The recorded (engine, start, end) intervals, if tracing was on.
    pub fn recorded(&self) -> &[(EngineKind, EventTime, EventTime)] {
        self.recorded.as_deref().unwrap_or(&[])
    }

    /// The core kind.
    pub fn kind(&self) -> CoreKind {
        self.kind
    }

    /// Executes an instruction of the given cost on an engine, after all
    /// of `deps` have completed. Returns the completion time.
    pub fn exec(
        &mut self,
        engine: EngineKind,
        cycles: u64,
        deps: &[EventTime],
    ) -> SimResult<EventTime> {
        if !self.kind.has_engine(engine) {
            return Err(SimError::WrongCore {
                instr: engine.name(),
                core: self.kind.name(),
            });
        }
        let idx = engine.index();
        let ready = deps.iter().copied().max().unwrap_or(0);
        let start = self.free_at[idx].max(ready);
        let end = start + cycles;
        self.free_at[idx] = end;
        self.busy[idx] += cycles;
        self.issued[idx] += 1;
        if let Some(rec) = &mut self.recorded {
            rec.push((engine, start, end));
        }
        Ok(end)
    }

    /// The core's current completion horizon: when its last-finishing
    /// engine becomes free.
    pub fn now(&self) -> EventTime {
        *self.free_at.iter().max().expect("non-empty engine set")
    }

    /// Advances every engine's free time to at least `t` (used at global
    /// barriers and when waiting on a cross-core event).
    pub fn align_to(&mut self, t: EventTime) {
        for f in &mut self.free_at {
            *f = (*f).max(t);
        }
    }

    /// Busy cycles accumulated on an engine.
    pub fn busy_cycles(&self, engine: EngineKind) -> u64 {
        self.busy[engine.index()]
    }

    /// Instructions issued on an engine.
    pub fn instructions(&self, engine: EngineKind) -> u64 {
        self.issued[engine.index()]
    }

    /// Merges another core's counters into this one (used when collapsing
    /// per-block statistics into a kernel report).
    pub fn absorb_counters(&mut self, other: &CoreTimeline) {
        for i in 0..EngineKind::ALL.len() {
            self.busy[i] += other.busy[i];
            self.issued[i] += other.issued[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_engine_serializes() {
        let mut core = CoreTimeline::new(CoreKind::Vector, 0);
        let a = core.exec(EngineKind::Vec, 10, &[]).unwrap();
        let b = core.exec(EngineKind::Vec, 5, &[]).unwrap();
        assert_eq!(a, 10);
        assert_eq!(b, 15, "second op waits for the engine");
    }

    #[test]
    fn different_engines_overlap() {
        let mut core = CoreTimeline::new(CoreKind::Vector, 0);
        let a = core.exec(EngineKind::Mte2, 100, &[]).unwrap();
        let b = core.exec(EngineKind::Vec, 10, &[]).unwrap();
        assert_eq!(a, 100);
        assert_eq!(b, 10, "independent engines run concurrently");
        // But a dependent op waits for its producer.
        let c = core.exec(EngineKind::Vec, 10, &[a]).unwrap();
        assert_eq!(c, 110);
    }

    #[test]
    fn dependencies_pick_latest() {
        let mut core = CoreTimeline::new(CoreKind::Cube, 0);
        let a = core.exec(EngineKind::Mte2, 50, &[]).unwrap();
        let b = core.exec(EngineKind::Mte1, 20, &[a]).unwrap();
        let c = core.exec(EngineKind::Cube, 30, &[a, b]).unwrap();
        assert_eq!(b, 70);
        assert_eq!(c, 100);
        assert_eq!(core.now(), 100);
    }

    #[test]
    fn wrong_core_is_rejected() {
        let mut vec_core = CoreTimeline::new(CoreKind::Vector, 0);
        let err = vec_core.exec(EngineKind::Cube, 1, &[]).unwrap_err();
        assert!(matches!(err, SimError::WrongCore { .. }));
        let mut cube_core = CoreTimeline::new(CoreKind::Cube, 0);
        assert!(cube_core.exec(EngineKind::Vec, 1, &[]).is_err());
        assert!(cube_core.exec(EngineKind::Mte1, 1, &[]).is_ok());
    }

    #[test]
    fn align_to_advances_all_engines() {
        let mut core = CoreTimeline::new(CoreKind::Vector, 0);
        core.exec(EngineKind::Vec, 10, &[]).unwrap();
        core.align_to(1000);
        let a = core.exec(EngineKind::Vec, 1, &[]).unwrap();
        assert_eq!(a, 1001);
        // align_to never moves time backwards.
        core.align_to(50);
        let b = core.exec(EngineKind::Mte2, 1, &[]).unwrap();
        assert_eq!(b, 1001);
    }

    #[test]
    fn counters_accumulate() {
        let mut core = CoreTimeline::new(CoreKind::Vector, 0);
        core.exec(EngineKind::Vec, 10, &[]).unwrap();
        core.exec(EngineKind::Vec, 15, &[]).unwrap();
        core.exec(EngineKind::Mte2, 5, &[]).unwrap();
        assert_eq!(core.busy_cycles(EngineKind::Vec), 25);
        assert_eq!(core.instructions(EngineKind::Vec), 2);
        assert_eq!(core.busy_cycles(EngineKind::Mte2), 5);

        let mut total = CoreTimeline::new(CoreKind::Vector, 0);
        total.absorb_counters(&core);
        total.absorb_counters(&core);
        assert_eq!(total.busy_cycles(EngineKind::Vec), 50);
    }

    #[test]
    fn starts_at_nonzero_origin() {
        let mut core = CoreTimeline::new(CoreKind::Vector, 500);
        let a = core.exec(EngineKind::Vec, 10, &[]).unwrap();
        assert_eq!(a, 510);
        // A dependency earlier than the origin has no effect.
        let b = core.exec(EngineKind::Mte2, 10, &[100]).unwrap();
        assert_eq!(b, 510);
    }
}
