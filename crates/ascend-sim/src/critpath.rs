//! Critical-path extraction over a recorded kernel launch.
//!
//! The simulator already records everything needed to explain *why* the
//! makespan is what it is: per-engine busy intervals ([`TraceEvent`]),
//! attributed idle intervals ([`StallEvent`]), happens-before edges with
//! their prices ([`HbEvent`]: flag set→wait arrivals, grid-flag chains,
//! queue hand-offs, `SyncAll` rounds), and — new in this module's PR —
//! the scheduler's per-round release decisions ([`RoundRecord`],
//! [`FinalRecord`]). This module stitches those into the **critical
//! path**: a contiguous chain of causal segments covering `[0, cycles]`
//! whose total length *must* equal the reported makespan.
//!
//! The analyzer walks **backward** from the kernel end. At every cycle
//! boundary it finds the recorded cause that justifies the time — the
//! busy instruction that finished there, the flag wire that delivered
//! there, the barrier round that released there, the bandwidth bound
//! that stretched there — and follows it. Each hop either emits a
//! segment (consuming cycles) or jumps lanes (free). If a boundary has
//! no recorded cause, the timing model and its own accounting disagree,
//! and the walk fails with [`SimError::AccountingViolation`] — this is
//! the **makespan identity** audit run on every Full-validation launch.
//!
//! On top of the path the module computes:
//! * **attribution** — path cycles by segment class, engine, and the
//!   enclosing phase span (the breakdown sums to the makespan exactly,
//!   because the segments tile `[0, cycles]`);
//! * **what-if analysis** — COZ-style optimistic speedup bounds from
//!   deleting a cost class off the path (free cross-core flags,
//!   infinite HBM bandwidth, zero look-back chain). These are upper
//!   bounds: removing a cost can surface a second-longest path that the
//!   subtraction does not see.

use std::collections::{HashMap, HashSet};

use crate::engine::EngineKind;
use crate::error::{SimError, SimResult};
use crate::prof::{StallCause, StallEvent, TraceSpan, BLOCK_SCOPE};
use crate::sync::{FinalRecord, RoundRecord};
use crate::timeline::EventTime;
use crate::trace::{HbAction, HbEvent, TraceEvent};

/// What a critical-path segment spends its cycles on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SegClass {
    /// Kernel launch latency (`[0, launch_cycles]`).
    Launch,
    /// An engine executing an instruction.
    Busy,
    /// A cross-core flag propagating from set to wait
    /// (`flag_wait_cycles` of wire latency).
    FlagWire,
    /// A launch-wide grid flag propagating — one link of the chained
    /// look-back protocol.
    ChainWire,
    /// `SyncAll` barrier release latency on top of the last arrival.
    BarrierRelease,
    /// A segment stretched to the global-memory bandwidth bound.
    Hbm,
}

impl SegClass {
    /// Stable lower-case label used in JSON output.
    pub fn label(&self) -> &'static str {
        match self {
            SegClass::Launch => "launch",
            SegClass::Busy => "busy",
            SegClass::FlagWire => "flag_wire",
            SegClass::ChainWire => "chain_wire",
            SegClass::BarrierRelease => "barrier_release",
            SegClass::Hbm => "hbm",
        }
    }
}

/// One segment of the critical path. Segments tile `[0, cycles]`:
/// consecutive segments share a boundary and the lengths sum to the
/// makespan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PathSeg {
    /// What the cycles were spent on.
    pub class: SegClass,
    /// Start cycle.
    pub start: EventTime,
    /// End cycle.
    pub end: EventTime,
    /// Block that owns the segment (producer block for wires); `None`
    /// for launch-wide segments (launch, HBM stretch, barrier release).
    pub block: Option<u32>,
    /// Core within the block, parallel to `block`.
    pub core: Option<u32>,
    /// Executing engine (busy segments only).
    pub engine: Option<EngineKind>,
    /// Busy segment is flag bookkeeping (a set/wait/arrival/poll
    /// instruction on the scalar pipe) rather than useful work.
    pub flag_instr: bool,
    /// Busy segment is a grid-flag publish — a link of the look-back
    /// chain's instruction cost.
    pub chain_instr: bool,
    /// Innermost phase span enclosing the segment, `"(launch)"`,
    /// `"(bandwidth)"`, `"(barrier)"`, or `"(unattributed)"`.
    pub phase: &'static str,
}

impl PathSeg {
    /// Segment length in cycles.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// Whether the segment is zero-length (can happen for zero-cost
    /// barrier releases; never for wires).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// One what-if experiment: delete a cost class from the critical path
/// and report the optimistic predicted makespan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WhatIf {
    /// Experiment name (`free_flags`, `infinite_hbm`, `zero_lookback`).
    pub name: &'static str,
    /// Critical-path cycles the deleted class contributed.
    pub saved: u64,
    /// Predicted makespan with the class deleted (`makespan - saved`);
    /// an optimistic lower bound on the achievable cycles.
    pub predicted: u64,
}

/// Critical-path attribution. Every cycle of the makespan lands in
/// exactly one of the class buckets, so
/// `launch + busy + flag_wire + chain_wire + barrier_release + hbm`
/// equals `makespan` exactly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CritSummary {
    /// The reported kernel cycles the path must (and does) add up to.
    pub makespan: u64,
    /// Cycles in launch latency.
    pub launch: u64,
    /// Cycles executing instructions.
    pub busy: u64,
    /// Cycles in per-block flag wires (including `SyncAll` arrival
    /// skew edges).
    pub flag_wire: u64,
    /// Cycles in grid-flag (look-back chain) wires.
    pub chain_wire: u64,
    /// Cycles in barrier release latency.
    pub barrier_release: u64,
    /// Cycles stretched to the HBM bandwidth bound.
    pub hbm: u64,
    /// Busy cycles per engine, indexed like [`EngineKind::ALL`].
    pub busy_by_engine: [u64; EngineKind::ALL.len()],
    /// Busy cycles that are flag bookkeeping instructions.
    pub flag_instr: u64,
    /// Busy cycles that are grid-flag publish instructions.
    pub chain_instr: u64,
    /// The look-back chain's total footprint on the path:
    /// `chain_wire + chain_instr`.
    pub lookback_chain: u64,
    /// Path cycles per enclosing phase span, sorted by cycles
    /// descending (ties by name).
    pub phases: Vec<(&'static str, u64)>,
    /// Number of path segments (zero-length ones included).
    pub segments: usize,
    /// What-if experiments (always `free_flags`, `infinite_hbm`,
    /// `zero_lookback`, in that order).
    pub what_ifs: Vec<WhatIf>,
}

impl CritSummary {
    /// Share of the makespan spent on the look-back chain, in `[0, 1]`.
    pub fn lookback_share(&self) -> f64 {
        if self.makespan == 0 {
            0.0
        } else {
            self.lookback_chain as f64 / self.makespan as f64
        }
    }
}

/// The extracted critical path: the segment chain plus its summary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CritReport {
    /// Path segments in ascending time order, tiling `[0, makespan]`.
    pub segments: Vec<PathSeg>,
    /// Attribution and what-ifs.
    pub summary: CritSummary,
}

/// Everything the analyzer needs from a recorded launch.
pub struct CritInput<'a> {
    /// The reported makespan ([`crate::report::KernelReport::cycles`]).
    pub cycles: u64,
    /// Launch latency — the origin every wave-0 block starts from.
    pub origin: EventTime,
    /// Flag wire latency (`ChipSpec::flag_wait_cycles`).
    pub flag_wait_cycles: u64,
    /// Flag set/poll instruction cost (`ChipSpec::flag_set_cycles`).
    pub flag_set_cycles: u64,
    /// Recorded per-engine busy intervals.
    pub events: &'a [TraceEvent],
    /// Recorded idle intervals with causes.
    pub stalls: &'a [StallEvent],
    /// Recorded happens-before events.
    pub hb: &'a [HbEvent],
    /// Recorded spans (phase attribution; may be empty).
    pub spans: &'a [TraceSpan],
    /// Scheduler barrier-round decisions, in round order.
    pub rounds: &'a [RoundRecord],
    /// The kernel-end alignment decision.
    pub finale: FinalRecord,
}

// ---------------------------------------------------------------------
// Internal walk machinery
// ---------------------------------------------------------------------

#[derive(Clone, Copy, Debug)]
enum IvKind {
    Busy {
        engine: EngineKind,
        flag: bool,
        chain: bool,
    },
    Stall(StallCause),
}

#[derive(Clone, Copy, Debug)]
struct Iv {
    start: EventTime,
    end: EventTime,
    kind: IvKind,
}

struct Lane {
    block: u32,
    core: u32,
    ivs: Vec<Iv>,
}

/// Where the backward walk currently stands. `t` (held outside) is the
/// boundary being justified.
#[derive(Clone, Copy, Debug)]
enum Cursor {
    /// Justify the kernel end via the final alignment record.
    Final,
    /// Consume lane interval `(lane, idx)`, which ends at `t`.
    Lane(usize, usize),
    /// Justify `t` as barrier round `r`'s release.
    Round(usize),
    /// Find any recorded cause ending at `t`, optionally preferring a
    /// `(block, core)` (the stalled consumer).
    Seek(Option<(u32, u32)>),
    /// Like `Seek`, but flag-first: `t` ended a flag stall on the
    /// given core, so try its wait edges before generic causes.
    SeekFlag(u32, u32),
    /// Justify `t` as the launch origin and finish.
    Launch,
    /// Walk complete.
    Done,
}

/// A flag identity: `(grid-scoped?, id, namespaced token)`.
type FlagKey = (bool, u32, u64);
/// A wait site: `(block, core)` plus its flag identity.
type WaitSite = (u32, u32, bool, u32, u64);

struct Analyzer<'a> {
    input: &'a CritInput<'a>,
    lanes: Vec<Lane>,
    /// Busy intervals by end cycle, in deterministic lane order.
    busy_end: HashMap<EventTime, Vec<(usize, usize)>>,
    /// Stall intervals by end cycle, in deterministic lane order.
    stall_end: HashMap<EventTime, Vec<(usize, usize)>>,
    /// Flag/grid-flag waits by `(block, core, time)`.
    waits: HashMap<(u32, u32, EventTime), Vec<FlagKey>>,
    /// Flag/grid-flag waits by time alone (cross-lane fallback).
    waits_by_time: HashMap<EventTime, Vec<WaitSite>>,
    /// Flag/grid-flag sets by `(grid, id, token)`.
    sets: HashMap<FlagKey, (u32, u32, EventTime)>,
    /// Depth-1 block-scope spans per block, sorted by start.
    phase_spans: HashMap<u32, Vec<(EventTime, EventTime, &'static str)>>,
}

fn viol(what: &'static str, detail: String) -> SimError {
    SimError::AccountingViolation { what, detail }
}

impl<'a> Analyzer<'a> {
    fn new(input: &'a CritInput<'a>) -> Self {
        // Index the hb flag traffic first; busy tagging needs it.
        let mut waits: HashMap<(u32, u32, EventTime), Vec<FlagKey>> = HashMap::new();
        let mut waits_by_time: HashMap<EventTime, Vec<WaitSite>> = HashMap::new();
        let mut sets: HashMap<FlagKey, (u32, u32, EventTime)> = HashMap::new();
        let mut flag_times: HashSet<(u32, u32, EventTime)> = HashSet::new();
        let mut chain_times: HashSet<(u32, u32, EventTime)> = HashSet::new();
        for e in input.hb {
            match e.action {
                HbAction::FlagSet { id, token } => {
                    // Flag files are per block: namespace the token by
                    // block so (id, token) pairs cannot collide.
                    sets.insert(
                        (false, id, (e.block as u64) << 40 | token),
                        (e.block, e.core, e.time),
                    );
                    flag_times.insert((e.block, e.core, e.time));
                }
                HbAction::FlagWait { id, token } => {
                    let tok = (e.block as u64) << 40 | token;
                    waits
                        .entry((e.block, e.core, e.time))
                        .or_default()
                        .push((false, id, tok));
                    waits_by_time
                        .entry(e.time)
                        .or_default()
                        .push((e.block, e.core, false, id, tok));
                    flag_times.insert((e.block, e.core, e.time));
                }
                HbAction::GridFlagSet { id, token } => {
                    sets.insert((true, id, token), (e.block, e.core, e.time));
                    flag_times.insert((e.block, e.core, e.time));
                    chain_times.insert((e.block, e.core, e.time));
                }
                HbAction::GridFlagWait { id, token } => {
                    waits
                        .entry((e.block, e.core, e.time))
                        .or_default()
                        .push((true, id, token));
                    waits_by_time
                        .entry(e.time)
                        .or_default()
                        .push((e.block, e.core, true, id, token));
                    flag_times.insert((e.block, e.core, e.time));
                    chain_times.insert((e.block, e.core, e.time));
                }
                _ => {}
            }
        }

        // Build per-(block, core, engine) lanes of busy + stall
        // intervals. Busy and idle intervals tile each lane (that is
        // audited elsewhere); the walk re-checks the property locally.
        let mut by_key: HashMap<(u32, u32, usize), Vec<Iv>> = HashMap::new();
        for ev in input.events {
            let dur = ev.end - ev.start;
            let is_flag_instr = ev.engine == EngineKind::FLAG_ENGINE
                && (flag_times.contains(&(ev.block, ev.core, ev.end))
                    || dur == input.flag_set_cycles
                    || dur == input.flag_wait_cycles);
            let is_chain_instr = ev.engine == EngineKind::FLAG_ENGINE
                && chain_times.contains(&(ev.block, ev.core, ev.end));
            by_key
                .entry((ev.block, ev.core, ev.engine.index()))
                .or_default()
                .push(Iv {
                    start: ev.start,
                    end: ev.end,
                    kind: IvKind::Busy {
                        engine: ev.engine,
                        flag: is_flag_instr || is_chain_instr,
                        chain: is_chain_instr,
                    },
                });
        }
        for st in input.stalls {
            by_key
                .entry((st.block, st.core, st.engine.index()))
                .or_default()
                .push(Iv {
                    start: st.start,
                    end: st.end,
                    kind: IvKind::Stall(st.cause),
                });
        }
        let mut keys: Vec<(u32, u32, usize)> = by_key.keys().copied().collect();
        keys.sort_unstable();
        let mut lanes = Vec::with_capacity(keys.len());
        let mut busy_end: HashMap<EventTime, Vec<(usize, usize)>> = HashMap::new();
        let mut stall_end: HashMap<EventTime, Vec<(usize, usize)>> = HashMap::new();
        for key in keys {
            let mut ivs = by_key.remove(&key).expect("keyed lane");
            ivs.sort_unstable_by_key(|iv| (iv.start, iv.end));
            let li = lanes.len();
            for (i, iv) in ivs.iter().enumerate() {
                match iv.kind {
                    IvKind::Busy { .. } => busy_end.entry(iv.end).or_default().push((li, i)),
                    IvKind::Stall(_) => stall_end.entry(iv.end).or_default().push((li, i)),
                }
            }
            lanes.push(Lane {
                block: key.0,
                core: key.1,
                ivs,
            });
        }

        let mut phase_spans: HashMap<u32, Vec<(EventTime, EventTime, &'static str)>> =
            HashMap::new();
        for s in input.spans {
            if s.depth == 1 && s.core == BLOCK_SCOPE {
                phase_spans
                    .entry(s.block)
                    .or_default()
                    .push((s.start, s.end, s.name));
            }
        }
        for spans in phase_spans.values_mut() {
            spans.sort_unstable();
        }

        Analyzer {
            input,
            lanes,
            busy_end,
            stall_end,
            waits,
            waits_by_time,
            sets,
            phase_spans,
        }
    }

    /// First busy interval ending at `t` whose lane satisfies `pred`,
    /// in deterministic lane order. Zero-length intervals are skipped:
    /// they cannot justify the passage of time and would loop the walk.
    fn busy_at<F: Fn(&Lane) -> bool>(&self, t: EventTime, pred: F) -> Option<(usize, usize)> {
        let cands = self.busy_end.get(&t)?;
        cands
            .iter()
            .find(|(l, i)| {
                let iv = &self.lanes[*l].ivs[*i];
                iv.start < iv.end && pred(&self.lanes[*l])
            })
            .copied()
    }

    /// First unvisited stall interval ending at `t`.
    fn stall_at(&self, t: EventTime, visited: &HashSet<(usize, usize)>) -> Option<(usize, usize)> {
        let cands = self.stall_end.get(&t)?;
        cands.iter().find(|c| !visited.contains(c)).copied()
    }

    /// Resolves the wait edges arriving on `(block, core)` at `t` to a
    /// wire segment ending at `t`: returns the producer and the wire
    /// class. The wire spans `[set_time, t]` with `t = set_time +
    /// flag_wait_cycles` (a wait that arrives after the edge does not
    /// stall and never reaches this lookup).
    fn wire_at(&self, block: u32, core: u32, t: EventTime) -> Option<(u32, u32, EventTime, bool)> {
        let w = self.input.flag_wait_cycles;
        for &(grid, id, token) in self.waits.get(&(block, core, t))? {
            if let Some(&(pb, pc, ts)) = self.sets.get(&(grid, id, token)) {
                if ts + w == t {
                    return Some((pb, pc, ts, grid));
                }
            }
        }
        None
    }

    /// Cross-lane wire fallback: any wait edge arriving at `t`.
    fn wire_any(&self, t: EventTime) -> Option<(u32, u32, EventTime, bool)> {
        let w = self.input.flag_wait_cycles;
        for &(_, _, grid, id, token) in self.waits_by_time.get(&t)? {
            if let Some(&(pb, pc, ts)) = self.sets.get(&(grid, id, token)) {
                if ts + w == t {
                    return Some((pb, pc, ts, grid));
                }
            }
        }
        None
    }

    /// Innermost phase span of `block` containing cycle `at`.
    fn phase_of(&self, block: u32, at: EventTime) -> &'static str {
        if let Some(spans) = self.phase_spans.get(&block) {
            let mut best: Option<&'static str> = None;
            for &(s, e, name) in spans {
                if s <= at && at < e.max(s + 1) {
                    best = Some(name);
                }
                if s > at {
                    break;
                }
            }
            if let Some(name) = best {
                return name;
            }
        }
        "(unattributed)"
    }

    /// Runs the backward walk; returns segments in ascending order.
    fn walk(&self) -> SimResult<Vec<PathSeg>> {
        let input = self.input;
        let fw = input.flag_wait_cycles;
        let total_ivs: usize = self.lanes.iter().map(|l| l.ivs.len()).sum();
        let limit = 2 * total_ivs + 8 * input.rounds.len() + 64;

        let mut segs: Vec<PathSeg> = Vec::new();
        let mut t = input.cycles;
        let mut cur = Cursor::Final;
        let mut visited: HashSet<(usize, usize)> = HashSet::new();
        let mut last_t = EventTime::MAX;
        let mut steps = 0usize;

        let push = |segs: &mut Vec<PathSeg>,
                    class: SegClass,
                    start: EventTime,
                    end: EventTime,
                    lane: Option<(u32, u32)>,
                    engine: Option<EngineKind>,
                    flag: bool,
                    chain: bool|
         -> SimResult<()> {
            if start > end {
                return Err(viol(
                    "critical-path segment",
                    format!(
                        "{} segment would run backward: [{start}, {end}]",
                        class.label()
                    ),
                ));
            }
            let mid = start + (end - start) / 2;
            let phase = match class {
                SegClass::Launch => "(launch)",
                SegClass::Hbm => "(bandwidth)",
                SegClass::BarrierRelease => "(barrier)",
                _ => match lane {
                    Some((b, _)) => self.phase_of(b, mid),
                    None => "(barrier)",
                },
            };
            segs.push(PathSeg {
                class,
                start,
                end,
                block: lane.map(|(b, _)| b),
                core: lane.map(|(_, c)| c),
                engine,
                flag_instr: flag,
                chain_instr: chain,
                phase,
            });
            Ok(())
        };

        loop {
            steps += 1;
            if steps > limit {
                return Err(viol(
                    "critical-path walk",
                    format!("no progress after {steps} steps at cycle {t}"),
                ));
            }
            if t < last_t {
                visited.clear();
                last_t = t;
            }
            match cur {
                Cursor::Done => break,
                Cursor::Final => {
                    let f = &input.finale;
                    if f.end != t {
                        return Err(viol(
                            "makespan identity",
                            format!(
                                "kernel-end alignment resolved at {} but the report says {}",
                                f.end, t
                            ),
                        ));
                    }
                    if f.max_local >= f.bw_bound {
                        cur = Cursor::Seek(None);
                    } else {
                        push(
                            &mut segs,
                            SegClass::Hbm,
                            f.seg_start,
                            t,
                            None,
                            None,
                            false,
                            false,
                        )?;
                        t = f.seg_start;
                        cur = self.seg_start_cursor(input.rounds.len());
                    }
                }
                Cursor::Round(r) => {
                    let rr = &input.rounds[r];
                    if rr.resolved != t {
                        return Err(viol(
                            "critical-path walk",
                            format!(
                                "round {r} resolved at {} but the path reaches it at {t}",
                                rr.resolved
                            ),
                        ));
                    }
                    let base = rr.ready_max.max(rr.bw_bound);
                    push(
                        &mut segs,
                        SegClass::BarrierRelease,
                        base,
                        t,
                        None,
                        None,
                        false,
                        false,
                    )?;
                    t = base;
                    if rr.bw_bound >= rr.ready_max {
                        push(
                            &mut segs,
                            SegClass::Hbm,
                            rr.seg_start,
                            t,
                            None,
                            None,
                            false,
                            false,
                        )?;
                        t = rr.seg_start;
                        cur = self.seg_start_cursor(r);
                    } else {
                        // The release base is the slowest block's poll
                        // completion — a recorded busy end.
                        cur = Cursor::Seek(None);
                    }
                }
                Cursor::Lane(l, i) => {
                    let lane = &self.lanes[l];
                    let iv = lane.ivs[i];
                    if iv.end != t {
                        return Err(viol(
                            "critical-path walk",
                            format!(
                                "lane (block {}, core {}) interval ends at {} but the \
                                 path reaches it at {t}",
                                lane.block, lane.core, iv.end
                            ),
                        ));
                    }
                    match iv.kind {
                        IvKind::Busy {
                            engine,
                            flag,
                            chain,
                        } => {
                            push(
                                &mut segs,
                                SegClass::Busy,
                                iv.start,
                                t,
                                Some((lane.block, lane.core)),
                                Some(engine),
                                flag,
                                chain,
                            )?;
                            t = iv.start;
                            if i > 0 {
                                let prev = lane.ivs[i - 1];
                                if prev.end != t {
                                    return Err(viol(
                                        "critical-path walk",
                                        format!(
                                            "lane (block {}, core {}) has a gap: interval \
                                             ends at {} but the next starts at {t}",
                                            lane.block, lane.core, prev.end
                                        ),
                                    ));
                                }
                                cur = Cursor::Lane(l, i - 1);
                            } else {
                                // Lane origin: a wave-0 block starts at
                                // the launch origin; a requeued block
                                // starts where the previous slot tenant
                                // yielded (a recorded busy/stall end).
                                cur = Cursor::Seek(Some((lane.block, lane.core)));
                            }
                        }
                        IvKind::Stall(cause) => {
                            cur = match cause {
                                StallCause::Flag => Cursor::SeekFlag(lane.block, lane.core),
                                _ => Cursor::Seek(Some((lane.block, lane.core))),
                            };
                        }
                    }
                }
                Cursor::SeekFlag(b, c) => {
                    if let Some((pb, pc, ts, grid)) = self.wire_at(b, c, t) {
                        let class = if grid {
                            SegClass::ChainWire
                        } else {
                            SegClass::FlagWire
                        };
                        push(&mut segs, class, ts, t, Some((pb, pc)), None, false, false)?;
                        t = ts;
                        cur = Cursor::Seek(Some((pb, pc)));
                    } else if let Some(r) = input
                        .rounds
                        .iter()
                        .rposition(|rr| rr.all_set + fw == t && rr.all_set < t)
                    {
                        // SyncAll arrival-skew edge: the last peer's
                        // arrival flag reaching this core.
                        push(
                            &mut segs,
                            SegClass::FlagWire,
                            input.rounds[r].all_set,
                            t,
                            None,
                            None,
                            false,
                            false,
                        )?;
                        t = input.rounds[r].all_set;
                        cur = Cursor::Seek(None);
                    } else if let Some(r) = input.rounds.iter().rposition(|rr| rr.resolved == t) {
                        // Flag edge truncated by the resume alignment.
                        cur = Cursor::Round(r);
                    } else {
                        cur = Cursor::Seek(Some((b, c)));
                    }
                }
                Cursor::Seek(near) => {
                    if let Some((b, c)) = near {
                        if let Some((l, i)) = self.busy_at(t, |l| l.block == b && l.core == c) {
                            cur = Cursor::Lane(l, i);
                            continue;
                        }
                        if self.waits.contains_key(&(b, c, t)) {
                            cur = Cursor::SeekFlag(b, c);
                            continue;
                        }
                        if let Some((l, i)) = self.busy_at(t, |l| l.block == b) {
                            cur = Cursor::Lane(l, i);
                            continue;
                        }
                    }
                    if let Some(r) = input.rounds.iter().rposition(|rr| rr.resolved == t) {
                        cur = Cursor::Round(r);
                        continue;
                    }
                    if let Some((l, i)) = self.busy_at(t, |_| true) {
                        cur = Cursor::Lane(l, i);
                        continue;
                    }
                    if let Some((pb, pc, ts, grid)) = self.wire_any(t) {
                        let class = if grid {
                            SegClass::ChainWire
                        } else {
                            SegClass::FlagWire
                        };
                        push(&mut segs, class, ts, t, Some((pb, pc)), None, false, false)?;
                        t = ts;
                        cur = Cursor::Seek(Some((pb, pc)));
                        continue;
                    }
                    if let Some(r) = input
                        .rounds
                        .iter()
                        .rposition(|rr| rr.all_set + fw == t && rr.all_set < t)
                    {
                        push(
                            &mut segs,
                            SegClass::FlagWire,
                            input.rounds[r].all_set,
                            t,
                            None,
                            None,
                            false,
                            false,
                        )?;
                        t = input.rounds[r].all_set;
                        cur = Cursor::Seek(None);
                        continue;
                    }
                    if t == input.origin {
                        cur = Cursor::Launch;
                        continue;
                    }
                    if let Some((l, i)) = self.stall_at(t, &visited) {
                        visited.insert((l, i));
                        cur = Cursor::Lane(l, i);
                        continue;
                    }
                    return Err(viol(
                        "makespan identity",
                        format!(
                            "unexplained boundary: no recorded instruction, stall, flag \
                             edge, barrier round, or launch origin ends at cycle {t}"
                        ),
                    ));
                }
                Cursor::Launch => {
                    if t != input.origin {
                        return Err(viol(
                            "critical-path walk",
                            format!(
                                "launch segment reached at cycle {t}, origin is {}",
                                input.origin
                            ),
                        ));
                    }
                    push(&mut segs, SegClass::Launch, 0, t, None, None, false, false)?;
                    t = 0;
                    cur = Cursor::Done;
                }
            }
        }

        segs.reverse();
        Ok(segs)
    }

    /// Cursor for the start of segment `i`'s round (the previous
    /// round's release, or the launch origin for the first segment).
    fn seg_start_cursor(&self, i: usize) -> Cursor {
        if i == 0 {
            Cursor::Launch
        } else {
            Cursor::Round(i - 1)
        }
    }
}

/// Extracts the critical path of a recorded launch and asserts the
/// makespan identity: the path must tile `[0, cycles]` exactly, with
/// every boundary justified by a recorded cause. Fails with
/// [`SimError::AccountingViolation`] when the timing model and its own
/// records disagree.
pub fn analyze(input: &CritInput<'_>) -> SimResult<CritReport> {
    let analyzer = Analyzer::new(input);
    let segments = analyzer.walk()?;

    // The walk builds the chain backward from `cycles`, emitting
    // contiguous segments; re-verify the tiling to make the identity
    // audit independent of the walk's bookkeeping.
    let mut at = 0u64;
    for s in &segments {
        if s.start != at {
            return Err(viol(
                "makespan identity",
                format!(
                    "critical path is not contiguous: segment starts at {} after {}",
                    s.start, at
                ),
            ));
        }
        at = s.end;
    }
    if at != input.cycles {
        return Err(viol(
            "makespan identity",
            format!(
                "critical path covers [0, {at}] but the report says {} cycles",
                input.cycles
            ),
        ));
    }

    let mut summary = CritSummary {
        makespan: input.cycles,
        launch: 0,
        busy: 0,
        flag_wire: 0,
        chain_wire: 0,
        barrier_release: 0,
        hbm: 0,
        busy_by_engine: [0; EngineKind::ALL.len()],
        flag_instr: 0,
        chain_instr: 0,
        lookback_chain: 0,
        phases: Vec::new(),
        segments: segments.len(),
        what_ifs: Vec::new(),
    };
    let mut phases: HashMap<&'static str, u64> = HashMap::new();
    for s in &segments {
        let len = s.len();
        match s.class {
            SegClass::Launch => summary.launch += len,
            SegClass::Busy => {
                summary.busy += len;
                if let Some(e) = s.engine {
                    summary.busy_by_engine[e.index()] += len;
                }
                if s.flag_instr {
                    summary.flag_instr += len;
                }
                if s.chain_instr {
                    summary.chain_instr += len;
                }
            }
            SegClass::FlagWire => summary.flag_wire += len,
            SegClass::ChainWire => summary.chain_wire += len,
            SegClass::BarrierRelease => summary.barrier_release += len,
            SegClass::Hbm => summary.hbm += len,
        }
        *phases.entry(s.phase).or_default() += len;
    }
    summary.lookback_chain = summary.chain_wire + summary.chain_instr;
    let mut phases: Vec<(&'static str, u64)> = phases.into_iter().collect();
    phases.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    summary.phases = phases;

    let mk = summary.makespan;
    let free_flags = summary.flag_wire + summary.chain_wire + summary.flag_instr;
    let zero_lookback = summary.lookback_chain;
    summary.what_ifs = vec![
        WhatIf {
            name: "free_flags",
            saved: free_flags,
            predicted: mk - free_flags,
        },
        WhatIf {
            name: "infinite_hbm",
            saved: summary.hbm,
            predicted: mk - summary.hbm,
        },
        WhatIf {
            name: "zero_lookback",
            saved: zero_lookback,
            predicted: mk - zero_lookback,
        },
    ];

    Ok(CritReport { segments, summary })
}

// ---------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------

fn jf(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "0.0".to_string()
    }
}

impl CritSummary {
    /// The `critical_path` JSON object (no surrounding key), stable
    /// schema: integer cycle buckets that sum to `makespan`, share
    /// fractions in `[0, 1]`, per-engine busy cycles, phase breakdown,
    /// and the what-if table.
    pub fn to_json(&self) -> String {
        let mk = self.makespan;
        let share = |c: u64| {
            if mk == 0 {
                "0.0".to_string()
            } else {
                jf(c as f64 / mk as f64)
            }
        };
        let mut out = String::with_capacity(1024);
        out.push_str(&format!(
            "{{\"makespan\":{mk},\"launch\":{},\"busy\":{},\"flag_wire\":{},\
             \"chain_wire\":{},\"barrier_release\":{},\"hbm\":{}",
            self.launch, self.busy, self.flag_wire, self.chain_wire, self.barrier_release, self.hbm
        ));
        out.push_str(&format!(
            ",\"launch_share\":{},\"busy_share\":{},\"flag_wire_share\":{},\
             \"chain_wire_share\":{},\"barrier_release_share\":{},\"hbm_share\":{}",
            share(self.launch),
            share(self.busy),
            share(self.flag_wire),
            share(self.chain_wire),
            share(self.barrier_release),
            share(self.hbm)
        ));
        out.push_str(&format!(
            ",\"flag_instr\":{},\"chain_instr\":{},\"lookback_chain\":{},\
             \"lookback_chain_share\":{}",
            self.flag_instr,
            self.chain_instr,
            self.lookback_chain,
            share(self.lookback_chain)
        ));
        out.push_str(",\"busy_by_engine\":{");
        let mut first = true;
        for (i, e) in EngineKind::ALL.iter().enumerate() {
            if self.busy_by_engine[i] > 0 {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&format!("\"{}\":{}", e.name(), self.busy_by_engine[i]));
            }
        }
        out.push_str("},\"phases\":[");
        for (i, (name, cycles)) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{name}\",\"cycles\":{cycles},\"share\":{}}}",
                share(*cycles)
            ));
        }
        out.push_str(&format!("],\"segments\":{},\"what_ifs\":[", self.segments));
        for (i, w) in self.what_ifs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let speedup = if w.predicted == 0 {
                "0.0".to_string()
            } else {
                jf(mk as f64 / w.predicted as f64)
            };
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"saved_cycles\":{},\"predicted_cycles\":{},\
                 \"speedup\":{speedup}}}",
                w.name, w.saved, w.predicted
            ));
        }
        out.push_str("]}");
        out
    }
}

impl CritReport {
    /// JSON for the trace export: the summary plus the `top` longest
    /// segments (ties broken by start cycle).
    pub fn to_json(&self, top: usize) -> String {
        let mut order: Vec<usize> = (0..self.segments.len()).collect();
        order.sort_by_key(|&i| {
            (
                std::cmp::Reverse(self.segments[i].len()),
                self.segments[i].start,
            )
        });
        order.truncate(top);
        order.sort_by_key(|&i| self.segments[i].start);
        let mut out = String::with_capacity(2048);
        out.push_str("{\"summary\":");
        out.push_str(&self.summary.to_json());
        out.push_str(",\"top_segments\":[");
        for (n, &i) in order.iter().enumerate() {
            if n > 0 {
                out.push(',');
            }
            let s = &self.segments[i];
            out.push_str(&format!(
                "{{\"class\":\"{}\",\"start\":{},\"end\":{},\"cycles\":{}",
                s.class.label(),
                s.start,
                s.end,
                s.len()
            ));
            if let Some(b) = s.block {
                out.push_str(&format!(",\"block\":{b}"));
            }
            if let Some(c) = s.core {
                out.push_str(&format!(",\"core\":{c}"));
            }
            if let Some(e) = s.engine {
                out.push_str(&format!(",\"engine\":\"{}\"", e.name()));
            }
            out.push_str(&format!(",\"phase\":\"{}\"}}", s.phase));
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn busy(block: u32, core: u32, engine: EngineKind, start: u64, end: u64) -> TraceEvent {
        TraceEvent {
            block,
            core,
            engine,
            start,
            end,
        }
    }

    fn stall(
        block: u32,
        core: u32,
        engine: EngineKind,
        cause: StallCause,
        start: u64,
        end: u64,
    ) -> StallEvent {
        StallEvent {
            block,
            core,
            engine,
            cause,
            start,
            end,
        }
    }

    fn finale(max_local: u64, seg_start: u64) -> FinalRecord {
        FinalRecord {
            max_local,
            seg_start,
            seg_bytes: 0,
            bw_bound: seg_start,
            end: max_local,
        }
    }

    #[test]
    fn single_lane_tiling_is_the_whole_path() {
        // launch [0,100], vec busy [100,400], end at 400.
        let events = [busy(0, 1, EngineKind::Vec, 100, 400)];
        let input = CritInput {
            cycles: 400,
            origin: 100,
            flag_wait_cycles: 540,
            flag_set_cycles: 180,
            events: &events,
            stalls: &[],
            hb: &[],
            spans: &[],
            rounds: &[],
            finale: finale(400, 100),
        };
        let r = analyze(&input).unwrap();
        assert_eq!(r.summary.makespan, 400);
        assert_eq!(r.summary.launch, 100);
        assert_eq!(r.summary.busy, 300);
        assert_eq!(r.segments.len(), 2);
        let wi = &r.summary.what_ifs;
        assert_eq!(wi.len(), 3);
        assert!(wi.iter().all(|w| w.predicted == 400 - w.saved));
    }

    #[test]
    fn flag_wire_crosses_cores() {
        // Producer (core 0 scalar) sets at 280; wire lands on core 1 at
        // 820; consumer vec runs [820, 900]. Consumer polled [100, 280]
        // then stalled on the flag.
        let events = [
            busy(0, 0, EngineKind::Scalar, 100, 280),
            busy(0, 1, EngineKind::Scalar, 100, 280),
            busy(0, 1, EngineKind::Vec, 820, 900),
        ];
        let stalls = [
            stall(0, 1, EngineKind::Scalar, StallCause::Flag, 280, 820),
            stall(0, 1, EngineKind::Vec, StallCause::Dependency, 100, 820),
        ];
        let hb = [
            HbEvent {
                block: 0,
                core: 0,
                time: 280,
                what: "CrossCoreSetFlag",
                action: HbAction::FlagSet { id: 3, token: 0 },
            },
            HbEvent {
                block: 0,
                core: 1,
                time: 820,
                what: "CrossCoreWaitFlag",
                action: HbAction::FlagWait { id: 3, token: 0 },
            },
        ];
        let input = CritInput {
            cycles: 900,
            origin: 100,
            flag_wait_cycles: 540,
            flag_set_cycles: 180,
            events: &events,
            stalls: &stalls,
            hb: &hb,
            spans: &[],
            rounds: &[],
            finale: finale(900, 100),
        };
        let r = analyze(&input).unwrap();
        assert_eq!(r.summary.flag_wire, 540);
        // The producer's 180-cycle set instruction is flag overhead.
        assert_eq!(r.summary.flag_instr, 180);
        assert_eq!(
            r.summary.launch + r.summary.busy + r.summary.flag_wire,
            r.summary.makespan
        );
        let free = &r.summary.what_ifs[0];
        assert_eq!(free.name, "free_flags");
        assert_eq!(free.saved, 540 + 180);
    }

    #[test]
    fn barrier_round_contributes_release_and_hbm() {
        // One block: busy [100, 300] (poll), round resolves at
        // max(300, bw 500) + 50 = 550; post-barrier busy [550, 600].
        let events = [
            busy(0, 0, EngineKind::Scalar, 100, 300),
            busy(0, 0, EngineKind::Vec, 550, 600),
        ];
        let stalls = [stall(0, 0, EngineKind::Vec, StallCause::Barrier, 300, 550)];
        let rounds = [RoundRecord {
            all_set: 250,
            ready_max: 300,
            seg_start: 100,
            seg_bytes: 4096,
            bw_bound: 500,
            release_cost: 50,
            resolved: 550,
        }];
        let input = CritInput {
            cycles: 600,
            origin: 100,
            flag_wait_cycles: 540,
            flag_set_cycles: 180,
            events: &events,
            stalls: &stalls,
            hb: &[],
            spans: &[],
            rounds: &rounds,
            finale: FinalRecord {
                max_local: 600,
                seg_start: 550,
                seg_bytes: 0,
                bw_bound: 550,
                end: 600,
            },
        };
        let r = analyze(&input).unwrap();
        assert_eq!(r.summary.barrier_release, 50);
        assert_eq!(r.summary.hbm, 400); // [100, 500] stretched segment
        assert_eq!(r.summary.launch, 100);
        assert_eq!(r.summary.busy, 50); // only the post-barrier work
        assert_eq!(
            r.summary.launch + r.summary.busy + r.summary.barrier_release + r.summary.hbm,
            600
        );
        assert_eq!(r.summary.what_ifs[1].name, "infinite_hbm");
        assert_eq!(r.summary.what_ifs[1].saved, 400);
    }

    #[test]
    fn unexplained_boundary_is_a_violation() {
        // The lane ends at 350 but the report claims 400, and nothing
        // justifies cycle 400.
        let events = [busy(0, 1, EngineKind::Vec, 100, 350)];
        let input = CritInput {
            cycles: 400,
            origin: 100,
            flag_wait_cycles: 540,
            flag_set_cycles: 180,
            events: &events,
            stalls: &[],
            hb: &[],
            spans: &[],
            rounds: &[],
            finale: finale(400, 100),
        };
        let err = analyze(&input).unwrap_err();
        assert!(matches!(err, SimError::AccountingViolation { .. }));
    }

    #[test]
    fn summary_json_is_well_formed() {
        let events = [busy(0, 1, EngineKind::Vec, 100, 400)];
        let input = CritInput {
            cycles: 400,
            origin: 100,
            flag_wait_cycles: 540,
            flag_set_cycles: 180,
            events: &events,
            stalls: &[],
            hb: &[],
            spans: &[],
            rounds: &[],
            finale: finale(400, 100),
        };
        let r = analyze(&input).unwrap();
        let js = r.summary.to_json();
        assert!(js.starts_with('{') && js.ends_with('}'));
        assert!(js.contains("\"makespan\":400"));
        assert!(js.contains("\"what_ifs\":["));
        assert!(js.contains("\"lookback_chain_share\":"));
        let full = r.to_json(8);
        assert!(full.contains("\"top_segments\":["));
        assert!(full.contains("\"class\":\"busy\""));
    }
}
