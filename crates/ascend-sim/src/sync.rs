//! The deterministic block scheduler, cross-block barriers, cross-core
//! flags, and the global bandwidth bound.
//!
//! # Execution model
//!
//! Blocks are tasks driven by a single [`Scheduler`], each running until
//! it either *yields* at a `SyncAll` barrier ([`Scheduler::sync`]) or
//! *completes* ([`Scheduler::finish`]). The scheduler supports two
//! gating disciplines ([`SchedMode`]) that produce **byte-identical
//! reports** (test- and CI-gated):
//!
//! * [`SchedMode::Serial`] — the cooperative baton: exactly one block
//!   makes progress at any instant, in a total, seed-independent event
//!   order (within each barrier round, blocks run and resume in
//!   ascending block index).
//! * [`SchedMode::Parallel`] — deterministic parallel rounds: all
//!   runnable blocks step to their next sync edge concurrently on their
//!   own host threads, and the last block to park resolves the round.
//!   Everything a block can *observe* is forced to the value the baton
//!   order would have produced: round resolution is a full rendezvous
//!   (so the commutative GM byte counters and max-reductions are
//!   order-independent), a block reads its slot clock only after every
//!   lower-index slot-mate has advanced to its next yield point, and
//!   grid-flag operations commit in block-index order (see below).
//!
//! Host thread scheduling therefore cannot influence anything in either
//! mode: every run of the same kernel replays byte-for-byte, and
//! `launch()` can multiplex grids far larger than the chip (or the
//! host) onto the physical cores. The process-wide default comes from
//! the `ASCEND_SCHED` environment variable ([`SchedMode::from_env`]);
//! `ChipSpec::scheduler` can force a mode per launch.
//!
//! # Slot time-sharing (oversubscription)
//!
//! The scheduler models `phys` physical core slots ([`Scheduler::
//! with_slots`]); block `b` runs on slot `b % phys`. A block *yields* its
//! slot whenever it parks — at a barrier arrival or at its finish — and
//! the slot's next tenant is *re-queued* from the time the slot frees:
//! its start origin ([`Scheduler::begin`]) and its post-barrier resume
//! time ([`Scheduler::sync`]'s third return value) are both lower-bounded
//! by the slot's free time. The slot clock is only ever written by the
//! slot's tenants, and a tenant reads it only once every lower-index
//! slot-mate has advanced to its next yield point (the baton guarantees
//! this by its total order; parallel mode gates on the slot-mates' yield
//! counts), so oversubscribed grids (`blocks > phys`) wave-multiplex
//! deterministically — and they can still rendezvous at `SyncAll`
//! barriers.
//!
//! # Grid flags (launch-wide mailboxes)
//!
//! [`Scheduler::grid_set`]/[`Scheduler::grid_consume`] expose a
//! launch-wide analogue of the per-block [`FlagFile`]: counting
//! semaphores keyed by a flag id, stamped with launch-unique tokens for
//! the happens-before analyzer. They back the decoupled look-back
//! protocol of single-pass chained scans (`ScanC`), where block `b`
//! publishes its partial aggregate to a GM mailbox and block `b + 1`
//! waits on `b`'s flag instead of a global barrier. Waiting on a flag
//! nobody has published is rejected — under block-index-ordered commit a
//! *backward* look-back always finds its predecessor's flag already set,
//! while a forward wait would deadlock real silicon. In parallel mode a
//! grid operation by block `b` waits until every block below `b` has
//! parked past `b`'s current segment, which reproduces the baton's
//! `(segment, block index, program order)` commit order exactly — same
//! FIFO contents, same tokens, same "unset grid flag" rejections.
//!
//! # Barrier pricing
//!
//! `SyncAll` is built from priced cross-core flag instructions rather
//! than a free host barrier. Each participating core executes a
//! `CrossCoreSetFlag` (arrival) and a `CrossCoreWaitFlag` (release poll)
//! on its scalar pipe; the scheduler resolves the barrier once every
//! live block has arrived:
//!
//! * the cycles until the **last arrival flag** lands are attributed as
//!   `wait:flag` stall time on the early cores (the AIC↔AIV skew);
//! * the remaining alignment — the segment's **bandwidth bound** plus the
//!   chip's barrier release latency (`sync_all_cycles`) — is attributed
//!   as `wait:barrier` stall time.
//!
//! The bandwidth bound is unchanged from the original model: between two
//! barriers the global clock cannot advance faster than the bytes moved
//! to/from global memory divided by the effective memory bandwidth, which
//! is what makes memory-bound kernels saturate at the modelled roofline.

use crate::chip::ChipSpec;
use crate::error::{SimError, SimResult};
use crate::mem::GlobalMemory;
use crate::timeline::EventTime;
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};

/// Per-block registry of cross-core flag events.
///
/// Flags are modelled as *counting semaphores*, matching the FFTS-style
/// hardware counters behind `CrossCoreSetFlag`/`CrossCoreWaitFlag`: each
/// set on an id enqueues one pending event (FIFO per id) and each wait
/// consumes the earliest pending event. A producer may therefore run
/// several sets ahead of its consumer on the same id without losing
/// hand-offs. The flag-id space is the chip's small physical register
/// file: ids `>= limit` are rejected with [`SimError::FlagIdOutOfRange`].
///
/// Every set is stamped with a file-wide monotonic *token* so that the
/// schedule analyzer (`hb` module) can pair each wait with the exact set
/// it consumed.
#[derive(Debug)]
pub struct FlagFile {
    slots: RefCell<HashMap<u32, VecDeque<(EventTime, u64)>>>,
    next_token: RefCell<u64>,
    limit: u32,
}

impl FlagFile {
    /// An empty flag file with `limit` usable ids (all flags unset).
    pub fn new(limit: u32) -> Self {
        FlagFile {
            slots: RefCell::new(HashMap::new()),
            next_token: RefCell::new(0),
            limit,
        }
    }

    /// The number of usable flag ids (`0..limit`).
    pub fn limit(&self) -> u32 {
        self.limit
    }

    fn check_id(&self, id: u32) -> SimResult<()> {
        if id >= self.limit {
            return Err(SimError::FlagIdOutOfRange {
                id,
                limit: self.limit,
            });
        }
        Ok(())
    }

    /// Publishes one set event on flag `id` completing at cycle `at`;
    /// returns the set's unique token.
    pub fn set(&self, id: u32, at: EventTime) -> SimResult<u64> {
        self.check_id(id)?;
        let token = {
            let mut t = self.next_token.borrow_mut();
            let token = *t;
            *t += 1;
            token
        };
        self.slots
            .borrow_mut()
            .entry(id)
            .or_default()
            .push_back((at, token));
        Ok(token)
    }

    /// Consumes the earliest pending set on flag `id`, returning its
    /// completion time and token — `None` when no set is pending (a wait
    /// now would deadlock real silicon).
    pub fn consume(&self, id: u32) -> SimResult<Option<(EventTime, u64)>> {
        self.check_id(id)?;
        Ok(self
            .slots
            .borrow_mut()
            .get_mut(&id)
            .and_then(VecDeque::pop_front))
    }
}

/// The gating discipline a [`Scheduler`] uses to order block progress.
///
/// Both modes produce byte-identical reports; `Parallel` lets
/// independent block segments run concurrently on host threads and is
/// the default. See the module docs for the equivalence argument.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SchedMode {
    /// Cooperative baton passing: one block runs at a time, in a total
    /// ascending-index order per round.
    Serial,
    /// Deterministic parallel rounds: all runnable blocks step to their
    /// next sync edge concurrently; side effects commit in block-index
    /// order.
    #[default]
    Parallel,
}

impl SchedMode {
    /// The process-wide default, from the `ASCEND_SCHED` environment
    /// variable: `serial` (or `baton`) forces the baton scheduler,
    /// anything else — including unset — selects parallel rounds.
    pub fn from_env() -> SchedMode {
        match std::env::var("ASCEND_SCHED").as_deref() {
            Ok("serial") | Ok("baton") => SchedMode::Serial,
            _ => SchedMode::Parallel,
        }
    }
}

/// What one block is doing, from the scheduler's point of view.
#[derive(Clone, Copy, Debug)]
enum BlockState {
    /// Not started yet (will be handed the baton in index order).
    Pending,
    /// Running the segment that ends at barrier round `.0`.
    Released(u64),
    /// Arrived at barrier round `.0`; `set_done` is when its last arrival
    /// flag landed, `ready` is when its slowest core finished the wait
    /// instruction that follows.
    AtBarrier {
        round: u64,
        set_done: EventTime,
        ready: EventTime,
    },
    /// Kernel body complete at local cycle `.0`; waiting for the final
    /// kernel-end alignment.
    Finishing(EventTime),
}

/// Everything the scheduler decided when resolving one barrier round,
/// recorded so the critical-path analyzer (`critpath`) can re-derive —
/// and justify — the resolved release time from its inputs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RoundRecord {
    /// Cycle the last arrival (`CrossCoreSetFlag`) landed grid-wide.
    pub all_set: EventTime,
    /// Slowest block's release-poll completion (max `ready`).
    pub ready_max: EventTime,
    /// Segment start (the previous round's `resolved`, or the launch
    /// origin for round 0).
    pub seg_start: EventTime,
    /// GM bytes moved during the segment ending at this barrier.
    pub seg_bytes: u64,
    /// Bandwidth bound for the segment: `seg_start + gm_bound_cycles`.
    pub bw_bound: EventTime,
    /// Barrier release latency added on top of `max(ready_max, bw_bound)`.
    pub release_cost: u64,
    /// The barrier release time: `max(ready_max, bw_bound) + release_cost`.
    pub resolved: EventTime,
}

/// The kernel-end alignment decision, mirror of [`RoundRecord`] for the
/// final (flag-less) round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FinalRecord {
    /// Slowest block's local completion time.
    pub max_local: EventTime,
    /// Start of the final segment (last barrier's `resolved`, or the
    /// launch origin when the kernel has no barriers).
    pub seg_start: EventTime,
    /// GM bytes moved during the final segment.
    pub seg_bytes: u64,
    /// Bandwidth bound for the final segment.
    pub bw_bound: EventTime,
    /// The kernel-end time: `max(max_local, bw_bound)`.
    pub end: EventTime,
}

struct SchedState {
    /// Gating discipline (see [`SchedMode`]).
    mode: SchedMode,
    /// Corrected global clock at the end of the last resolved round.
    seg_start: EventTime,
    /// GM traffic counters (read+written) at the end of the last round.
    bytes_mark: u64,
    /// Barrier round currently being gathered.
    round: u64,
    /// Per-block execution state.
    status: Vec<BlockState>,
    /// Block currently holding the baton (`None` once all are parked at
    /// the final alignment or the launch is done).
    turn: Option<usize>,
    /// `(all_set, resolved)` per resolved barrier round.
    round_result: Vec<(EventTime, EventTime)>,
    /// Full decision record per resolved barrier round (critpath input).
    round_records: Vec<RoundRecord>,
    /// Full decision record of the kernel-end alignment.
    final_record: Option<FinalRecord>,
    /// Barrier release latency for the round being gathered.
    pending_cost: u64,
    /// Completed rounds (barriers + the final kernel-end alignment).
    rounds: u64,
    /// Barrier-wait cycles per round, summed over blocks.
    round_waits: Vec<u64>,
    /// Flag-wait (arrival skew) cycles per round, summed over blocks.
    flag_waits: Vec<u64>,
    /// Kernel-end alignment time, once every block has finished.
    final_end: Option<EventTime>,
    /// Cycle at which each physical core slot frees; block `b` occupies
    /// slot `b % slot_free.len()` and updates it at every yield point.
    slot_free: Vec<EventTime>,
    /// Times each block has parked (barrier arrivals; the commit-order
    /// clock the parallel mode's gates compare against).
    yields: Vec<u64>,
    /// Whether each block has called [`Scheduler::finish`] (a finished
    /// block satisfies every gate forever).
    finished: Vec<bool>,
    /// Launch-wide mailbox flag registry (FIFO counting semaphores per
    /// id), with a monotonic token stamping every set for the analyzer.
    grid_slots: HashMap<u32, VecDeque<(EventTime, u64)>>,
    grid_next_token: u64,
    grid_limit: u32,
}

impl SchedState {
    /// True when every lower-index tenant of `block`'s slot has parked at
    /// least `count` times or finished. Slot clocks are written only by
    /// slot tenants, so once this holds the slot clock carries exactly
    /// the value the baton order would have produced (later tenants
    /// cannot write before `block` does, and the parked predecessors
    /// cannot park again until a round `block` participates in resolves).
    fn slot_mates_yielded(&self, block: usize, count: u64) -> bool {
        let phys = self.slot_free.len();
        ((block % phys)..block)
            .step_by(phys.max(1))
            .all(|j| self.finished[j] || self.yields[j] >= count)
    }

    /// True when every block below `block` has parked past the segment
    /// `block` is currently running — the commit gate for grid-flag
    /// operations in parallel mode. Each gate only waits on strictly
    /// lower indices, so the gates cannot form a cycle.
    fn frontier_passed(&self, block: usize) -> bool {
        let goal = self.yields[block] + 1;
        (0..block).all(|j| self.finished[j] || self.yields[j] >= goal)
    }
}

/// Deterministic cooperative scheduler for one kernel launch.
///
/// Protocol, per block thread: [`Scheduler::begin`] once, then any
/// number of [`Scheduler::sync`] calls (one per `SyncAll`), then exactly
/// one [`Scheduler::finish`]. A block that errors out early may skip
/// straight to `finish`; barriers resolve over the blocks still live, so
/// mismatched sync counts cannot deadlock the launch.
pub struct Scheduler {
    state: Mutex<SchedState>,
    cv: Condvar,
}

impl Scheduler {
    /// Creates a scheduler for `blocks` blocks, with segment accounting
    /// starting at cycle 0 and zero bytes moved.
    pub fn new(blocks: usize) -> Self {
        Self::with_origin(blocks, 0, 0)
    }

    /// Creates a scheduler whose first segment starts at `seg_start`
    /// cycles with `bytes_mark` bytes of GM traffic already on the
    /// counters (needed when one [`GlobalMemory`] is reused across
    /// kernel launches). Every block gets its own slot (no
    /// oversubscription) and the grid-flag id space is unbounded.
    pub fn with_origin(blocks: usize, seg_start: EventTime, bytes_mark: u64) -> Self {
        Self::with_slots(blocks, blocks, seg_start, bytes_mark, u32::MAX)
    }

    /// Creates a scheduler multiplexing `blocks` blocks onto `phys`
    /// physical core slots (block `b` on slot `b % phys`), with
    /// `grid_flag_limit` usable launch-wide mailbox flag ids. The gating
    /// discipline comes from [`SchedMode::from_env`].
    pub fn with_slots(
        blocks: usize,
        phys: usize,
        seg_start: EventTime,
        bytes_mark: u64,
        grid_flag_limit: u32,
    ) -> Self {
        Self::with_slots_mode(
            blocks,
            phys,
            seg_start,
            bytes_mark,
            grid_flag_limit,
            SchedMode::from_env(),
        )
    }

    /// [`Scheduler::with_slots`] with an explicit gating discipline —
    /// the non-racy way to pin a mode in tests and equivalence gates
    /// (environment variables are process-global).
    pub fn with_slots_mode(
        blocks: usize,
        phys: usize,
        seg_start: EventTime,
        bytes_mark: u64,
        grid_flag_limit: u32,
        mode: SchedMode,
    ) -> Self {
        assert!(phys >= 1, "a launch needs at least one physical slot");
        Scheduler {
            state: Mutex::new(SchedState {
                mode,
                seg_start,
                bytes_mark,
                round: 0,
                status: vec![BlockState::Pending; blocks],
                turn: Some(0),
                round_result: Vec::new(),
                round_records: Vec::new(),
                final_record: None,
                pending_cost: 0,
                rounds: 0,
                round_waits: Vec::new(),
                flag_waits: Vec::new(),
                final_end: None,
                slot_free: vec![seg_start; phys],
                yields: vec![0; blocks],
                finished: vec![false; blocks],
                grid_slots: HashMap::new(),
                grid_next_token: 0,
                grid_limit: grid_flag_limit,
            }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SchedState> {
        self.state.lock().expect("Scheduler lock poisoned")
    }

    /// Blocks until this block may start executing — its baton turn in
    /// serial mode; in parallel mode, until every earlier tenant of its
    /// physical slot has yielded at least once (wave-0 blocks start
    /// immediately and concurrently). Must be the first scheduler call a
    /// block thread makes. Returns the cycle the block's physical core
    /// slot frees — the block's start origin (the first segment's start
    /// for wave-0 blocks, the previous tenant's yield point for later
    /// waves).
    pub fn begin(&self, block: usize) -> EventTime {
        let mut st = self.lock();
        match st.mode {
            SchedMode::Serial => {
                while st.turn != Some(block) {
                    st = self.cv.wait(st).expect("Scheduler lock poisoned");
                }
            }
            SchedMode::Parallel => {
                while !st.slot_mates_yielded(block, 1) {
                    st = self.cv.wait(st).expect("Scheduler lock poisoned");
                }
            }
        }
        // No round can resolve while this block is Pending, so st.round
        // is still the round this block's first segment belongs to.
        let round = st.round;
        st.status[block] = BlockState::Released(round);
        st.slot_free[block % st.slot_free.len()]
    }

    /// Yields at a `SyncAll` barrier. `set_done` is the completion time
    /// of the block's last arrival (`CrossCoreSetFlag`) instruction;
    /// `ready` is when its slowest core finished the release-poll
    /// (`CrossCoreWaitFlag`) instruction that follows. Parks the calling
    /// block — vacating its physical core slot at `ready` — and hands
    /// the baton on; returns `(all_set, resolved, resume)` once the
    /// round resolves: the cycle the last arrival flag landed grid-wide,
    /// the cycle the barrier releases, and the cycle *this block*
    /// actually resumes — `resolved` when the block has its own slot,
    /// later when an oversubscribed slot-mate runs its post-barrier
    /// segment first (read at baton-regain time, after every lower-index
    /// slot tenant has advanced to its next yield point).
    pub fn sync(
        &self,
        block: usize,
        set_done: EventTime,
        ready: EventTime,
        gm: &GlobalMemory,
        spec: &ChipSpec,
        release_cost: u64,
    ) -> (EventTime, EventTime, EventTime) {
        let mut st = self.lock();
        // Rendezvous invariant: round r cannot resolve until this block
        // parks at it, and this block cannot reach barrier r before round
        // r-1 resolved — so the gathering round IS this block's round.
        let my_round = st.round;
        debug_assert_eq!(st.yields[block], my_round, "a block skipped a round");
        st.status[block] = BlockState::AtBarrier {
            round: my_round,
            set_done,
            ready,
        };
        st.yields[block] += 1;
        let slot = block % st.slot_free.len();
        st.slot_free[slot] = st.slot_free[slot].max(ready);
        st.pending_cost = st.pending_cost.max(release_cost);
        match st.mode {
            SchedMode::Serial => self.advance(&mut st, gm, spec),
            SchedMode::Parallel => self.try_resolve(&mut st, gm, spec),
        }
        self.cv.notify_all();
        loop {
            let resolved = st.round_result.get(my_round as usize).copied();
            if let Some((all_set, resolved)) = resolved {
                // Read the slot clock only once every lower-index slot
                // tenant has advanced to its next yield point: the baton
                // guarantees that by turn order; parallel mode gates on
                // the slot-mates having parked past the released segment.
                let may_resume = match st.mode {
                    SchedMode::Serial => st.turn == Some(block),
                    SchedMode::Parallel => st.slot_mates_yielded(block, my_round + 2),
                };
                if may_resume {
                    let resume = resolved.max(st.slot_free[slot]);
                    return (all_set, resolved, resume);
                }
            }
            st = self.cv.wait(st).expect("Scheduler lock poisoned");
        }
    }

    /// Marks the block's kernel body complete at local cycle `local` and
    /// parks until every block has finished; returns the kernel-end
    /// alignment time (slowest block, stretched to the final segment's
    /// bandwidth bound).
    pub fn finish(
        &self,
        block: usize,
        local: EventTime,
        gm: &GlobalMemory,
        spec: &ChipSpec,
    ) -> EventTime {
        let mut st = self.lock();
        st.status[block] = BlockState::Finishing(local);
        st.yields[block] += 1;
        st.finished[block] = true;
        let slot = block % st.slot_free.len();
        st.slot_free[slot] = st.slot_free[slot].max(local);
        match st.mode {
            SchedMode::Serial => self.advance(&mut st, gm, spec),
            SchedMode::Parallel => self.try_resolve(&mut st, gm, spec),
        }
        self.cv.notify_all();
        loop {
            if let Some(end) = st.final_end {
                return end;
            }
            st = self.cv.wait(st).expect("Scheduler lock poisoned");
        }
    }

    /// Picks the next baton holder; resolves the current barrier round or
    /// the final alignment when no block can run.
    fn advance(&self, st: &mut SchedState, gm: &GlobalMemory, spec: &ChipSpec) {
        loop {
            let round = st.round;
            let runnable = (0..st.status.len()).find(|&i| {
                matches!(st.status[i], BlockState::Pending)
                    || matches!(st.status[i], BlockState::Released(r) if r == round)
            });
            if let Some(next) = runnable {
                st.turn = Some(next);
                return;
            }
            let any_at_barrier = st
                .status
                .iter()
                .any(|s| matches!(s, BlockState::AtBarrier { round: r, .. } if *r == round));
            if any_at_barrier {
                self.resolve_round(st, gm, spec);
                // Loop: the released blocks are now runnable.
            } else {
                self.resolve_final(st, gm, spec);
                st.turn = None;
                return;
            }
        }
    }

    /// Parallel-mode resolution: the last block to park resolves the
    /// round. Fires only at a full rendezvous — every block parked at
    /// the gathering round or finishing — so the GM byte counters, the
    /// arrival/ready maxima, and the pending release cost carry exactly
    /// the values the baton order would have accumulated, regardless of
    /// which host thread got here last.
    fn try_resolve(&self, st: &mut SchedState, gm: &GlobalMemory, spec: &ChipSpec) {
        let round = st.round;
        let mut any_at_barrier = false;
        for s in &st.status {
            match *s {
                BlockState::AtBarrier { round: r, .. } if r == round => any_at_barrier = true,
                BlockState::Finishing(_) => {}
                // Someone is still running (or not begun): no resolution.
                _ => return,
            }
        }
        if any_at_barrier {
            self.resolve_round(st, gm, spec);
        } else {
            self.resolve_final(st, gm, spec);
            st.turn = None;
        }
    }

    /// Resolves one barrier round over the blocks that arrived at it.
    fn resolve_round(&self, st: &mut SchedState, gm: &GlobalMemory, spec: &ChipSpec) {
        let round = st.round;
        let mut all_set: EventTime = 0;
        let mut ready_max: EventTime = 0;
        for s in &st.status {
            if let BlockState::AtBarrier {
                round: r,
                set_done,
                ready,
            } = *s
            {
                if r == round {
                    all_set = all_set.max(set_done);
                    ready_max = ready_max.max(ready);
                }
            }
        }
        let seg_bytes = (gm.bytes_read() + gm.bytes_written()).saturating_sub(st.bytes_mark);
        let bw_bound = st.seg_start + spec.gm_bound_cycles(seg_bytes, gm.high_water());
        let resolved = ready_max.max(bw_bound) + st.pending_cost;
        // Split each block's idle time at the barrier: waiting for the
        // last peer's arrival flag to land (and for its own release poll
        // of that flag) is flag time; the rest — bandwidth stretch plus
        // release latency — is barrier time.
        let flag_cut = (all_set + spec.flag_wait_cycles).min(resolved);
        let mut flag_wait = 0u64;
        let mut barrier_wait = 0u64;
        for s in &mut st.status {
            if let BlockState::AtBarrier {
                round: r, ready, ..
            } = *s
            {
                if r == round {
                    flag_wait += flag_cut.saturating_sub(ready);
                    barrier_wait += resolved - ready.max(flag_cut);
                    *s = BlockState::Released(round + 1);
                }
            }
        }
        st.round_result.push((all_set, resolved));
        st.round_records.push(RoundRecord {
            all_set,
            ready_max,
            seg_start: st.seg_start,
            seg_bytes,
            bw_bound,
            release_cost: st.pending_cost,
            resolved,
        });
        st.seg_start = resolved;
        st.bytes_mark = gm.bytes_read() + gm.bytes_written();
        st.pending_cost = 0;
        st.round += 1;
        st.rounds += 1;
        st.flag_waits.push(flag_wait);
        st.round_waits.push(barrier_wait);
    }

    /// Resolves the kernel-end alignment once every block has finished.
    fn resolve_final(&self, st: &mut SchedState, gm: &GlobalMemory, spec: &ChipSpec) {
        let mut max_local: EventTime = 0;
        for s in &st.status {
            match *s {
                BlockState::Finishing(local) => max_local = max_local.max(local),
                _ => unreachable!("final alignment with unfinished blocks"),
            }
        }
        let seg_bytes = (gm.bytes_read() + gm.bytes_written()).saturating_sub(st.bytes_mark);
        let bw_bound = st.seg_start + spec.gm_bound_cycles(seg_bytes, gm.high_water());
        let end = max_local.max(bw_bound);
        let wait: u64 = st
            .status
            .iter()
            .map(|s| match *s {
                BlockState::Finishing(local) => end - local,
                _ => 0,
            })
            .sum();
        st.final_record = Some(FinalRecord {
            max_local,
            seg_start: st.seg_start,
            seg_bytes,
            bw_bound,
            end,
        });
        st.seg_start = end;
        st.bytes_mark = gm.bytes_read() + gm.bytes_written();
        st.rounds += 1;
        st.round_waits.push(wait);
        st.flag_waits.push(0);
        st.final_end = Some(end);
    }

    /// Number of completed rounds (barriers plus the final alignment).
    pub fn rounds(&self) -> u64 {
        self.lock().rounds
    }

    /// Total cycles blocks spent idle at barriers and on arrival flags.
    pub fn total_wait_cycles(&self) -> u64 {
        let st = self.lock();
        st.round_waits.iter().sum::<u64>() + st.flag_waits.iter().sum::<u64>()
    }

    /// Barrier-wait cycles per round, summed over blocks. The last entry
    /// is the kernel-end alignment round.
    pub fn round_waits(&self) -> Vec<u64> {
        self.lock().round_waits.clone()
    }

    /// Flag-wait (arrival skew) cycles per round, summed over blocks,
    /// parallel to [`Scheduler::round_waits`]. The kernel-end entry is
    /// always zero: the runtime aligns finished blocks without flags.
    pub fn flag_waits(&self) -> Vec<u64> {
        self.lock().flag_waits.clone()
    }

    /// The full decision record of every resolved barrier round, in
    /// round order (critical-path analyzer input).
    pub fn round_records(&self) -> Vec<RoundRecord> {
        self.lock().round_records.clone()
    }

    /// The kernel-end alignment record, once the launch has resolved.
    pub fn final_record(&self) -> Option<FinalRecord> {
        self.lock().final_record
    }

    // ---------------------------------------------------------------
    // Grid flags (launch-wide mailbox flags)
    // ---------------------------------------------------------------

    /// In parallel mode, holds the caller until every block below
    /// `block` has parked past `block`'s current segment, so grid-flag
    /// operations commit in the baton's `(segment, block index, program
    /// order)` total order. Serial mode needs no gate: the baton already
    /// serializes the callers in exactly that order.
    fn gate_grid_op<'a>(
        &'a self,
        mut st: std::sync::MutexGuard<'a, SchedState>,
        block: usize,
    ) -> std::sync::MutexGuard<'a, SchedState> {
        if st.mode == SchedMode::Parallel {
            while !st.frontier_passed(block) {
                st = self.cv.wait(st).expect("Scheduler lock poisoned");
            }
        }
        st
    }

    /// Publishes one launch-wide set event on grid flag `id` completing
    /// at cycle `at`, on behalf of `block`; returns the set's
    /// launch-unique token. Like the per-block [`FlagFile`], grid flags
    /// are FIFO counting semaphores per id, and ids `>= grid_flag_limit`
    /// are rejected.
    pub fn grid_set(&self, block: usize, id: u32, at: EventTime) -> SimResult<u64> {
        let mut st = self.gate_grid_op(self.lock(), block);
        if id >= st.grid_limit {
            return Err(SimError::FlagIdOutOfRange {
                id,
                limit: st.grid_limit,
            });
        }
        let token = st.grid_next_token;
        st.grid_next_token += 1;
        st.grid_slots.entry(id).or_default().push_back((at, token));
        Ok(token)
    }

    /// Consumes the earliest pending set on grid flag `id` on behalf of
    /// `block`, returning its completion time and token — `None` when no
    /// set is pending. Calls commit in the blocks' serialized segment
    /// order (the baton's turn, or the parallel commit gate), so the
    /// consumption order — and the token pairing the analyzer sees — is
    /// deterministic.
    pub fn grid_consume(&self, block: usize, id: u32) -> SimResult<Option<(EventTime, u64)>> {
        let mut st = self.gate_grid_op(self.lock(), block);
        if id >= st.grid_limit {
            return Err(SimError::FlagIdOutOfRange {
                id,
                limit: st.grid_limit,
            });
        }
        Ok(st.grid_slots.get_mut(&id).and_then(VecDeque::pop_front))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn spec_no_bw() -> ChipSpec {
        // A spec with effectively infinite bandwidth so only the
        // max-clock logic is visible.
        let mut s = ChipSpec::tiny();
        s.hbm_bytes_per_sec = 1e18;
        s.l2_bytes_per_sec = 1e18;
        s
    }

    /// Runs the full protocol for `set_done` arrival clocks (one barrier
    /// round, then finish at the barrier's resolution time); returns each
    /// block's `(all_set, resolved)`.
    fn one_round(
        spec: &ChipSpec,
        gm: &Arc<GlobalMemory>,
        set_clocks: &[EventTime],
        cost: u64,
    ) -> (Arc<Scheduler>, Vec<(EventTime, EventTime)>) {
        let sched = Arc::new(Scheduler::new(set_clocks.len()));
        let w = spec.flag_wait_cycles;
        let results: Vec<(EventTime, EventTime)> = std::thread::scope(|s| {
            let handles: Vec<_> = set_clocks
                .iter()
                .enumerate()
                .map(|(i, &c)| {
                    let sched = Arc::clone(&sched);
                    let gm = Arc::clone(gm);
                    let spec = spec.clone();
                    s.spawn(move || {
                        sched.begin(i);
                        let (all_set, resolved, _) = sched.sync(i, c, c + w, &gm, &spec, cost);
                        sched.finish(i, resolved, &gm, &spec);
                        (all_set, resolved)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        (sched, results)
    }

    #[test]
    fn barrier_aligns_to_slowest_block() {
        let spec = spec_no_bw();
        let gm = Arc::new(GlobalMemory::new(1 << 20));
        // Arrival flags land at 100, 5000, 250; every core's release poll
        // takes flag_wait_cycles (18 on tiny) after its own arrival.
        let (sched, results) = one_round(&spec, &gm, &[100, 5000, 250], 7);
        let all_set = 5000;
        let resolved = all_set + spec.flag_wait_cycles + 7;
        assert!(results.iter().all(|&r| r == (all_set, resolved)));
        // One barrier + the final alignment.
        assert_eq!(sched.rounds(), 2);
    }

    #[test]
    fn barrier_idle_splits_into_flag_skew_and_release() {
        let spec = spec_no_bw();
        let gm = Arc::new(GlobalMemory::new(1 << 20));
        let (sched, _) = one_round(&spec, &gm, &[100, 5000, 250], 7);
        // Flag skew: each early block waits (5000 - its arrival) for the
        // laggard's set flag (the laggard itself waits 0); barrier:
        // everyone pays the release cost.
        assert_eq!(sched.flag_waits(), vec![4900 + 4750, 0]);
        assert_eq!(sched.round_waits(), vec![7 * 3, 0]);
        assert_eq!(sched.total_wait_cycles(), 4900 + 4750 + 21);
    }

    #[test]
    fn bandwidth_bound_stretches_fast_segments() {
        // 4 MiB moved at 100 GB/s on a 1 GHz chip; blocks claim to finish
        // almost immediately, so the bound dominates.
        let spec = ChipSpec::tiny(); // 100 GB/s HBM, L2 1 MiB @ 200 GB/s
        let gm = Arc::new(GlobalMemory::new(8 << 20));
        let region = gm.alloc(4 << 20).unwrap(); // working set 4 MiB > L2
        let buf = vec![0u8; 1 << 20];
        for i in 0..4 {
            gm.device_write(region, i * (1 << 20), &buf).unwrap();
        }
        assert_eq!(gm.bytes_written(), 4 << 20);

        let sched = Scheduler::new(1);
        sched.begin(0);
        let (_, t, _) = sched.sync(0, 100, 100 + spec.flag_wait_cycles, &gm, &spec, 0);
        let expect = spec.gm_bound_cycles(4 << 20, gm.high_water());
        assert_eq!(t, expect);
        assert!(t > 100);
    }

    #[test]
    fn segments_account_bytes_incrementally() {
        let spec = ChipSpec::tiny();
        let gm = GlobalMemory::new(8 << 20);
        let region = gm.alloc(4 << 20).unwrap();
        let buf = vec![0u8; 2 << 20];
        let sched = Scheduler::new(1);
        sched.begin(0);

        gm.device_write(region, 0, &buf).unwrap();
        let (_, t1, _) = sched.sync(0, 0, 0, &gm, &spec, 0);
        // Second segment moves the same amount; the bound should advance
        // by the same delta, not double-count the first segment.
        gm.device_write(region, 2 << 20, &buf).unwrap();
        let (_, t2, _) = sched.sync(0, t1, t1, &gm, &spec, 0);
        assert_eq!(t2 - t1, t1, "equal segments take equal time");
    }

    #[test]
    fn small_working_set_uses_l2_bandwidth() {
        let spec = ChipSpec::tiny(); // L2: 1 MiB at 200 GB/s vs HBM 100 GB/s
        let gm = GlobalMemory::new(8 << 20);
        let region = gm.alloc(512 << 10).unwrap(); // fits in L2
        let buf = vec![0u8; 512 << 10];
        gm.device_write(region, 0, &buf).unwrap();
        let sched = Scheduler::new(1);
        sched.begin(0);
        let (_, t, _) = sched.sync(0, 0, 0, &gm, &spec, 0);
        // 512 KiB at 200 GB/s (L2) on 1 GHz.
        assert_eq!(t, ((512u64 << 10) as f64 / 200e9 * 1e9).ceil() as u64);
    }

    #[test]
    fn wait_cycles_accumulate_across_rounds() {
        let spec = spec_no_bw();
        let gm = GlobalMemory::new(1 << 20);
        let sched = Scheduler::new(1);
        sched.begin(0);
        // ready = set + flag_wait_cycles: the release poll is busy time
        // on the core, so a lone block stalls on neither flags nor the
        // barrier when the release is free.
        let (_, t1, _) = sched.sync(0, 100, 118, &gm, &spec, 0);
        assert_eq!(t1, 118, "single block still pays its own release poll");
        // Next round: the block pays 25 cycles of release cost.
        let (_, t2, _) = sched.sync(0, t1, t1 + 18, &gm, &spec, 25);
        assert_eq!(t2, t1 + 18 + 25);
        sched.finish(0, t2, &gm, &spec);
        assert_eq!(sched.flag_waits(), vec![0, 0, 0]);
        assert_eq!(sched.round_waits(), vec![0, 25, 0]);
    }

    #[test]
    fn kernel_end_alignment_charges_the_final_round() {
        let spec = spec_no_bw();
        let gm = Arc::new(GlobalMemory::new(1 << 20));
        let sched = Arc::new(Scheduler::new(2));
        let ends = [400u64, 1000];
        std::thread::scope(|s| {
            for (i, &e) in ends.iter().enumerate() {
                let sched = Arc::clone(&sched);
                let gm = Arc::clone(&gm);
                let spec = spec.clone();
                s.spawn(move || {
                    sched.begin(i);
                    assert_eq!(sched.finish(i, e, &gm, &spec), 1000);
                });
            }
        });
        assert_eq!(sched.rounds(), 1);
        assert_eq!(sched.round_waits(), vec![600]);
        assert_eq!(sched.flag_waits(), vec![0]);
    }

    #[test]
    fn early_finisher_does_not_deadlock_a_barrier() {
        // Block 0 errors out before the SyncAll that block 1 reaches: the
        // barrier must resolve over the still-live blocks only.
        let spec = spec_no_bw();
        let gm = Arc::new(GlobalMemory::new(1 << 20));
        let sched = Arc::new(Scheduler::new(2));
        let (e0, e1) = std::thread::scope(|s| {
            let a = {
                let sched = Arc::clone(&sched);
                let gm = Arc::clone(&gm);
                let spec = spec.clone();
                s.spawn(move || {
                    sched.begin(0);
                    sched.finish(0, 50, &gm, &spec)
                })
            };
            let b = {
                let sched = Arc::clone(&sched);
                let gm = Arc::clone(&gm);
                let spec = spec.clone();
                s.spawn(move || {
                    sched.begin(1);
                    let (_, r, _) = sched.sync(1, 200, 218, &gm, &spec, 10);
                    assert_eq!(r, 228, "resolved over block 1 alone");
                    sched.finish(1, r, &gm, &spec)
                })
            };
            (a.join().unwrap(), b.join().unwrap())
        });
        assert_eq!(e0, 228);
        assert_eq!(e1, 228);
        assert_eq!(sched.rounds(), 2);
    }

    #[test]
    fn oversubscribed_slots_chain_wave_origins() {
        // 3 blocks on 1 physical slot, no barriers: each block's begin()
        // origin is the previous tenant's finish time — in both modes.
        let spec = spec_no_bw();
        for mode in [SchedMode::Serial, SchedMode::Parallel] {
            let gm = Arc::new(GlobalMemory::new(1 << 20));
            let sched = Arc::new(Scheduler::with_slots_mode(3, 1, 100, 0, 8, mode));
            let origins: Vec<EventTime> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..3)
                    .map(|i| {
                        let sched = Arc::clone(&sched);
                        let gm = Arc::clone(&gm);
                        let spec = spec.clone();
                        s.spawn(move || {
                            let origin = sched.begin(i);
                            // Each block "works" for 50 cycles on the slot.
                            sched.finish(i, origin + 50, &gm, &spec);
                            origin
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            assert_eq!(origins, vec![100, 150, 200], "{mode:?}");
        }
    }

    #[test]
    fn barrier_yield_requeues_the_slot() {
        // 2 blocks share 1 slot and both cross one barrier: the slot-mate
        // that resumes second is re-queued behind the first one's
        // post-barrier segment, not released concurrently — in both modes.
        let spec = spec_no_bw();
        for mode in [SchedMode::Serial, SchedMode::Parallel] {
            let gm = Arc::new(GlobalMemory::new(1 << 20));
            let sched = Arc::new(Scheduler::with_slots_mode(2, 1, 0, 0, 8, mode));
            let (r0, r1) = std::thread::scope(|s| {
                let a = {
                    let sched = Arc::clone(&sched);
                    let gm = Arc::clone(&gm);
                    let spec = spec.clone();
                    s.spawn(move || {
                        let origin = sched.begin(0);
                        assert_eq!(origin, 0);
                        // Arrive at 60 (slot vacates), resume, then run a
                        // 40-cycle post-barrier segment before finishing.
                        let r = sched.sync(0, 50, 60, &gm, &spec, 0);
                        sched.finish(0, r.2 + 40, &gm, &spec);
                        r
                    })
                };
                let b = {
                    let sched = Arc::clone(&sched);
                    let gm = Arc::clone(&gm);
                    let spec = spec.clone();
                    s.spawn(move || {
                        let origin = sched.begin(1);
                        assert_eq!(origin, 60, "wave-1 begins when the slot frees");
                        let r = sched.sync(1, 200, 210, &gm, &spec, 0);
                        sched.finish(1, r.2, &gm, &spec);
                        r
                    })
                };
                (a.join().unwrap(), b.join().unwrap())
            });
            // Round resolves at the slowest arrival: all_set 200, ready 210.
            assert_eq!((r0.0, r0.1), (200, 210), "{mode:?}");
            assert_eq!((r1.0, r1.1), (200, 210), "{mode:?}");
            // Block 0 has the slot first and resumes at the release; block
            // 1 is re-queued behind block 0's 40-cycle post-barrier segment.
            assert_eq!(r0.2, 210, "{mode:?}");
            assert_eq!(r1.2, 250, "{mode:?}");
        }
    }

    #[test]
    fn dedicated_slots_resume_at_the_release() {
        // With one slot per block (the non-oversubscribed case) the
        // resume time degenerates to the barrier release exactly.
        let spec = spec_no_bw();
        let gm = Arc::new(GlobalMemory::new(1 << 20));
        let (_, results) = one_round(&spec, &gm, &[100, 5000, 250], 7);
        let resolved = 5000 + spec.flag_wait_cycles + 7;
        assert!(results.iter().all(|&r| r.1 == resolved));
        // one_round's harness already asserts via the tuple; re-check
        // the three-way return on a fresh single-block scheduler.
        let sched = Scheduler::new(1);
        sched.begin(0);
        let (_, resolved, resume) = sched.sync(0, 10, 28, &gm, &spec, 5);
        assert_eq!(resume, resolved);
    }

    #[test]
    fn grid_flags_are_fifo_counting_semaphores() {
        let sched = Scheduler::with_slots(2, 1, 0, 0, 4);
        assert_eq!(sched.grid_consume(0, 3).unwrap(), None);
        let t0 = sched.grid_set(0, 3, 100).unwrap();
        let t1 = sched.grid_set(0, 3, 140).unwrap();
        assert_ne!(t0, t1, "every grid set gets a launch-unique token");
        assert_eq!(sched.grid_consume(0, 3).unwrap(), Some((100, t0)));
        assert_eq!(sched.grid_consume(0, 3).unwrap(), Some((140, t1)));
        assert_eq!(sched.grid_consume(0, 3).unwrap(), None);
        // Tokens are unique across ids too (launch-wide pairing).
        let t2 = sched.grid_set(0, 0, 7).unwrap();
        assert!(t2 > t1);
    }

    #[test]
    fn grid_flags_enforce_the_id_space() {
        let sched = Scheduler::with_slots(1, 1, 0, 0, 4);
        let err = sched.grid_set(0, 4, 100).unwrap_err();
        assert!(matches!(
            err,
            SimError::FlagIdOutOfRange { id: 4, limit: 4 }
        ));
        let err = sched.grid_consume(0, 9).unwrap_err();
        assert!(matches!(
            err,
            SimError::FlagIdOutOfRange { id: 9, limit: 4 }
        ));
        sched.grid_set(0, 3, 1).unwrap();
        assert!(sched.grid_consume(0, 3).unwrap().is_some());
    }

    #[test]
    fn parallel_grid_ops_commit_in_block_index_order() {
        // Three blocks on 2 slots, each publishing one grid set from its
        // only segment: whatever order the host threads reach grid_set,
        // the tokens must come out in block-index order — block 2's op
        // additionally waits for the wave-0 blocks to park.
        let spec = spec_no_bw();
        let gm = Arc::new(GlobalMemory::new(1 << 20));
        for _ in 0..16 {
            let sched = Arc::new(Scheduler::with_slots_mode(
                3,
                2,
                0,
                0,
                8,
                SchedMode::Parallel,
            ));
            let tokens: Vec<u64> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..3usize)
                    .map(|i| {
                        let sched = Arc::clone(&sched);
                        let gm = Arc::clone(&gm);
                        let spec = spec.clone();
                        s.spawn(move || {
                            let origin = sched.begin(i);
                            let token = sched.grid_set(i, 0, origin + 10).unwrap();
                            sched.finish(i, origin + 50, &gm, &spec);
                            token
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            assert_eq!(tokens, vec![0, 1, 2]);
        }
    }

    #[test]
    fn serial_and_parallel_schedulers_agree() {
        // The same three-block, one-barrier schedule must produce the
        // same results, records, and wait attribution in both modes.
        let spec = spec_no_bw();
        let set_clocks = [100u64, 5000, 250];
        let w = spec.flag_wait_cycles;
        let run = |mode: SchedMode| {
            let gm = Arc::new(GlobalMemory::new(1 << 20));
            let sched = Arc::new(Scheduler::with_slots_mode(
                set_clocks.len(),
                set_clocks.len(),
                0,
                0,
                8,
                mode,
            ));
            let results: Vec<(EventTime, EventTime, EventTime)> = std::thread::scope(|s| {
                let handles: Vec<_> = set_clocks
                    .iter()
                    .enumerate()
                    .map(|(i, &c)| {
                        let sched = Arc::clone(&sched);
                        let gm = Arc::clone(&gm);
                        let spec = spec.clone();
                        s.spawn(move || {
                            sched.begin(i);
                            let r = sched.sync(i, c, c + w, &gm, &spec, 7);
                            sched.finish(i, r.1, &gm, &spec);
                            r
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            (
                results,
                sched.round_records(),
                sched.final_record(),
                sched.round_waits(),
                sched.flag_waits(),
            )
        };
        assert_eq!(run(SchedMode::Serial), run(SchedMode::Parallel));
    }

    #[test]
    fn flag_file_is_a_counting_semaphore() {
        let flags = FlagFile::new(8);
        assert_eq!(flags.consume(3).unwrap(), None);
        let t0 = flags.set(3, 100).unwrap();
        let t1 = flags.set(3, 140).unwrap();
        assert_ne!(t0, t1, "every set gets a unique token");
        // A producer running ahead queues events; waits drain in FIFO
        // order, pairing each wait with the earliest pending set.
        assert_eq!(flags.consume(3).unwrap(), Some((100, t0)));
        assert_eq!(flags.consume(3).unwrap(), Some((140, t1)));
        assert_eq!(flags.consume(3).unwrap(), None);
        // Independent ids do not interfere.
        let ta = flags.set(0, 7).unwrap();
        flags.set(1, 9).unwrap();
        assert_eq!(flags.consume(0).unwrap(), Some((7, ta)));
    }

    #[test]
    fn flag_file_enforces_the_id_space() {
        let flags = FlagFile::new(8);
        assert_eq!(flags.limit(), 8);
        let err = flags.set(8, 100).unwrap_err();
        assert!(matches!(
            err,
            SimError::FlagIdOutOfRange { id: 8, limit: 8 }
        ));
        let err = flags.consume(200).unwrap_err();
        assert!(matches!(
            err,
            SimError::FlagIdOutOfRange { id: 200, limit: 8 }
        ));
        // In-range ids still work.
        flags.set(7, 1).unwrap();
        assert!(flags.consume(7).unwrap().is_some());
    }
}
