//! Cross-block synchronization and the global bandwidth bound.
//!
//! Blocks execute on OS threads; `SyncAll` is a real barrier. At each
//! barrier (and at kernel end) the simulated clocks of all blocks are
//! aligned to the slowest block, and additionally to the **bandwidth
//! bound** of the segment since the previous barrier: the clock cannot
//! advance faster than the bytes moved to/from global memory divided by
//! the effective memory bandwidth. This is what makes memory-bound
//! kernels (scan, copy, compress) saturate at the modelled HBM roofline
//! while latency-bound kernels stay on their critical path.
//!
//! Determinism: per-block clocks are deterministic functions of the
//! kernel program; byte counters are summed atomically; the barrier takes
//! a max over blocks. No quantity depends on thread scheduling.

use crate::chip::ChipSpec;
use crate::mem::GlobalMemory;
use crate::timeline::EventTime;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};

struct SegmentState {
    /// Corrected global clock at the end of the last barrier.
    seg_start: EventTime,
    /// GM traffic counters (read+written) at the end of the last barrier.
    bytes_mark: u64,
    /// Max of the block clocks gathered during the current round.
    max_clock: EventTime,
    /// Result of the current round, published by the leader.
    resolved: EventTime,
    /// Number of barrier rounds completed (SyncAll count).
    rounds: u64,
    /// Wait cycles per completed round, summed over blocks: how long the
    /// blocks collectively idled at each barrier (the unpriced AIC→AIV
    /// flag-sync gap made visible).
    round_waits: Vec<u64>,
}

/// Shared synchronization state for one kernel launch.
pub struct SharedSync {
    barrier: Barrier,
    state: Mutex<SegmentState>,
    publish: Barrier,
    /// Total cycles spent waiting at barriers, summed over blocks (stat).
    wait_cycles: AtomicU64,
}

impl SharedSync {
    /// Creates sync state for `blocks` participating blocks, with segment
    /// accounting starting at cycle 0 and zero bytes moved.
    pub fn new(blocks: usize) -> Self {
        Self::with_origin(blocks, 0, 0)
    }

    /// Creates sync state whose first segment starts at `seg_start` cycles
    /// with `bytes_mark` bytes of GM traffic already on the counters
    /// (needed when one [`GlobalMemory`] is reused across kernel launches).
    pub fn with_origin(blocks: usize, seg_start: EventTime, bytes_mark: u64) -> Self {
        SharedSync {
            barrier: Barrier::new(blocks),
            publish: Barrier::new(blocks),
            state: Mutex::new(SegmentState {
                seg_start,
                bytes_mark,
                max_clock: 0,
                resolved: 0,
                rounds: 0,
                round_waits: Vec::new(),
            }),
            wait_cycles: AtomicU64::new(0),
        }
    }

    /// Executes one global synchronization: blocks contribute their local
    /// clock, the slowest block and the segment's bandwidth bound decide
    /// the common resumption time, and `barrier_cost` cycles are added.
    ///
    /// Returns the cycle at which all blocks resume.
    pub fn sync(
        &self,
        local_clock: EventTime,
        gm: &GlobalMemory,
        spec: &ChipSpec,
        barrier_cost: u64,
    ) -> EventTime {
        {
            let mut st = self.state.lock().expect("SharedSync lock poisoned");
            st.max_clock = st.max_clock.max(local_clock);
        }
        let leader = self.barrier.wait().is_leader();
        if leader {
            let mut st = self.state.lock().expect("SharedSync lock poisoned");
            let seg_bytes = (gm.bytes_read() + gm.bytes_written()).saturating_sub(st.bytes_mark);
            let bw_bound = st.seg_start + spec.gm_bound_cycles(seg_bytes, gm.high_water());
            let resolved = st.max_clock.max(bw_bound) + barrier_cost;
            st.resolved = resolved;
            st.seg_start = resolved;
            st.bytes_mark = gm.bytes_read() + gm.bytes_written();
            st.max_clock = 0;
            st.rounds += 1;
            st.round_waits.push(0);
        }
        self.publish.wait();
        // Safe to accumulate into the freshly pushed round slot: the next
        // round's leader section cannot run until every block has passed
        // this round's publish barrier and re-entered `sync`.
        let resolved = {
            let mut st = self.state.lock().expect("SharedSync lock poisoned");
            let resolved = st.resolved;
            let wait = resolved.saturating_sub(local_clock);
            if let Some(last) = st.round_waits.last_mut() {
                *last += wait;
            }
            resolved
        };
        self.wait_cycles
            .fetch_add(resolved.saturating_sub(local_clock), Ordering::Relaxed);
        resolved
    }

    /// Number of completed synchronization rounds.
    pub fn rounds(&self) -> u64 {
        self.state.lock().expect("SharedSync lock poisoned").rounds
    }

    /// Total cycles blocks spent waiting at barriers (summed over blocks).
    pub fn total_wait_cycles(&self) -> u64 {
        self.wait_cycles.load(Ordering::SeqCst)
    }

    /// Wait cycles per completed barrier round, summed over blocks. The
    /// last entry is the kernel-end alignment round.
    pub fn round_waits(&self) -> Vec<u64> {
        self.state
            .lock()
            .expect("SharedSync lock poisoned")
            .round_waits
            .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn spec_no_bw() -> ChipSpec {
        // A spec with effectively infinite bandwidth so only the max-clock
        // logic is visible.
        let mut s = ChipSpec::tiny();
        s.hbm_bytes_per_sec = 1e18;
        s.l2_bytes_per_sec = 1e18;
        s
    }

    #[test]
    fn barrier_aligns_to_slowest_block() {
        let spec = spec_no_bw();
        let gm = Arc::new(GlobalMemory::new(1 << 20));
        let sync = Arc::new(SharedSync::new(3));
        let clocks = [100u64, 5000, 250];
        let results: Vec<EventTime> = std::thread::scope(|s| {
            let handles: Vec<_> = clocks
                .iter()
                .map(|&c| {
                    let sync = Arc::clone(&sync);
                    let gm = Arc::clone(&gm);
                    let spec = spec.clone();
                    s.spawn(move || sync.sync(c, &gm, &spec, 7))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(results.iter().all(|&r| r == 5007));
        assert_eq!(sync.rounds(), 1);
    }

    #[test]
    fn bandwidth_bound_stretches_fast_segments() {
        // 1 GB moved at 100 GB/s on a 1 GHz chip = 10 ms = 1e7 cycles;
        // blocks claim to finish in 100 cycles, so the bound dominates.
        let spec = ChipSpec::tiny(); // 100 GB/s HBM, L2 1 MiB @ 200 GB/s
        let gm = Arc::new(GlobalMemory::new(8 << 20));
        let region = gm.alloc(4 << 20).unwrap(); // working set 4 MiB > L2
        let buf = vec![0u8; 1 << 20];
        for i in 0..4 {
            gm.device_write(region, i * (1 << 20), &buf).unwrap();
        }
        assert_eq!(gm.bytes_written(), 4 << 20);

        let sync = SharedSync::new(1);
        let t = sync.sync(100, &gm, &spec, 0);
        // 4 MiB at 100 GB/s on 1 GHz: 4194304/100 = 41944 cycles (ceil).
        let expect = spec.gm_bound_cycles(4 << 20, gm.high_water());
        assert_eq!(t, expect);
        assert!(t > 100);
    }

    #[test]
    fn segments_account_bytes_incrementally() {
        let spec = ChipSpec::tiny();
        let gm = GlobalMemory::new(8 << 20);
        let region = gm.alloc(4 << 20).unwrap();
        let buf = vec![0u8; 2 << 20];
        let sync = SharedSync::new(1);

        gm.device_write(region, 0, &buf).unwrap();
        let t1 = sync.sync(0, &gm, &spec, 0);
        // Second segment moves the same amount; the bound should advance
        // by the same delta, not double-count the first segment.
        gm.device_write(region, 2 << 20, &buf).unwrap();
        let t2 = sync.sync(t1, &gm, &spec, 0);
        assert_eq!(t2 - t1, t1, "equal segments take equal time");
    }

    #[test]
    fn small_working_set_uses_l2_bandwidth() {
        let spec = ChipSpec::tiny(); // L2: 1 MiB at 200 GB/s vs HBM 100 GB/s
        let gm = GlobalMemory::new(8 << 20);
        let region = gm.alloc(512 << 10).unwrap(); // fits in L2
        let buf = vec![0u8; 512 << 10];
        gm.device_write(region, 0, &buf).unwrap();
        let sync = SharedSync::new(1);
        let t = sync.sync(0, &gm, &spec, 0);
        // 512 KiB at 200 GB/s (L2) on 1 GHz.
        assert_eq!(t, ((512u64 << 10) as f64 / 200e9 * 1e9).ceil() as u64);
    }

    #[test]
    fn wait_cycles_accumulate() {
        let spec = spec_no_bw();
        let gm = GlobalMemory::new(1 << 20);
        let sync = SharedSync::new(1);
        sync.sync(100, &gm, &spec, 0);
        assert_eq!(sync.total_wait_cycles(), 0);
        // Next round: block arrives at 100 but the segment already ended
        // at 100, so joining at clock 50 would wait 50.
        let t = sync.sync(100, &gm, &spec, 25);
        assert_eq!(t, 125);
        assert_eq!(sync.total_wait_cycles(), 25);
        assert_eq!(sync.round_waits(), vec![0, 25]);
    }

    #[test]
    fn per_round_waits_sum_over_blocks() {
        let spec = spec_no_bw();
        let gm = Arc::new(GlobalMemory::new(1 << 20));
        let sync = Arc::new(SharedSync::new(3));
        let clocks = [100u64, 5000, 250];
        std::thread::scope(|s| {
            for &c in &clocks {
                let sync = Arc::clone(&sync);
                let gm = Arc::clone(&gm);
                let spec = spec.clone();
                s.spawn(move || sync.sync(c, &gm, &spec, 7));
            }
        });
        // Each block waits (5007 - its clock); the round's entry sums them.
        assert_eq!(sync.round_waits(), vec![4907 + 7 + 4757]);
        assert_eq!(sync.total_wait_cycles(), 4907 + 7 + 4757);
    }
}
