//! The deterministic cooperative block scheduler, cross-block barriers,
//! cross-core flags, and the global bandwidth bound.
//!
//! # Execution model
//!
//! Blocks are resumable tasks driven by a single [`Scheduler`]. Exactly
//! one block makes progress at any instant: a block runs until it either
//! *yields* at a `SyncAll` barrier ([`Scheduler::sync`]) or *completes*
//! ([`Scheduler::finish`]), and the scheduler then hands the baton to the
//! next task in a **total, seed-independent event order** — within each
//! barrier round, blocks run and resume in ascending block index. Host
//! thread scheduling therefore cannot influence anything: every run of
//! the same kernel replays byte-for-byte, and `launch()` can multiplex
//! grids far larger than the chip (or the host) onto the physical cores.
//!
//! # Barrier pricing
//!
//! `SyncAll` is built from priced cross-core flag instructions rather
//! than a free host barrier. Each participating core executes a
//! `CrossCoreSetFlag` (arrival) and a `CrossCoreWaitFlag` (release poll)
//! on its scalar pipe; the scheduler resolves the barrier once every
//! live block has arrived:
//!
//! * the cycles until the **last arrival flag** lands are attributed as
//!   `wait:flag` stall time on the early cores (the AIC↔AIV skew);
//! * the remaining alignment — the segment's **bandwidth bound** plus the
//!   chip's barrier release latency (`sync_all_cycles`) — is attributed
//!   as `wait:barrier` stall time.
//!
//! The bandwidth bound is unchanged from the original model: between two
//! barriers the global clock cannot advance faster than the bytes moved
//! to/from global memory divided by the effective memory bandwidth, which
//! is what makes memory-bound kernels saturate at the modelled roofline.

use crate::chip::ChipSpec;
use crate::error::{SimError, SimResult};
use crate::mem::GlobalMemory;
use crate::timeline::EventTime;
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};

/// Per-block registry of cross-core flag events.
///
/// Flags are modelled as *counting semaphores*, matching the FFTS-style
/// hardware counters behind `CrossCoreSetFlag`/`CrossCoreWaitFlag`: each
/// set on an id enqueues one pending event (FIFO per id) and each wait
/// consumes the earliest pending event. A producer may therefore run
/// several sets ahead of its consumer on the same id without losing
/// hand-offs. The flag-id space is the chip's small physical register
/// file: ids `>= limit` are rejected with [`SimError::FlagIdOutOfRange`].
///
/// Every set is stamped with a file-wide monotonic *token* so that the
/// schedule analyzer (`hb` module) can pair each wait with the exact set
/// it consumed.
#[derive(Debug)]
pub struct FlagFile {
    slots: RefCell<HashMap<u32, VecDeque<(EventTime, u64)>>>,
    next_token: RefCell<u64>,
    limit: u32,
}

impl FlagFile {
    /// An empty flag file with `limit` usable ids (all flags unset).
    pub fn new(limit: u32) -> Self {
        FlagFile {
            slots: RefCell::new(HashMap::new()),
            next_token: RefCell::new(0),
            limit,
        }
    }

    /// The number of usable flag ids (`0..limit`).
    pub fn limit(&self) -> u32 {
        self.limit
    }

    fn check_id(&self, id: u32) -> SimResult<()> {
        if id >= self.limit {
            return Err(SimError::FlagIdOutOfRange {
                id,
                limit: self.limit,
            });
        }
        Ok(())
    }

    /// Publishes one set event on flag `id` completing at cycle `at`;
    /// returns the set's unique token.
    pub fn set(&self, id: u32, at: EventTime) -> SimResult<u64> {
        self.check_id(id)?;
        let token = {
            let mut t = self.next_token.borrow_mut();
            let token = *t;
            *t += 1;
            token
        };
        self.slots
            .borrow_mut()
            .entry(id)
            .or_default()
            .push_back((at, token));
        Ok(token)
    }

    /// Consumes the earliest pending set on flag `id`, returning its
    /// completion time and token — `None` when no set is pending (a wait
    /// now would deadlock real silicon).
    pub fn consume(&self, id: u32) -> SimResult<Option<(EventTime, u64)>> {
        self.check_id(id)?;
        Ok(self
            .slots
            .borrow_mut()
            .get_mut(&id)
            .and_then(VecDeque::pop_front))
    }
}

/// What one block is doing, from the scheduler's point of view.
#[derive(Clone, Copy, Debug)]
enum BlockState {
    /// Not started yet (will be handed the baton in index order).
    Pending,
    /// Running the segment that ends at barrier round `.0`.
    Released(u64),
    /// Arrived at barrier round `.0`; `set_done` is when its last arrival
    /// flag landed, `ready` is when its slowest core finished the wait
    /// instruction that follows.
    AtBarrier {
        round: u64,
        set_done: EventTime,
        ready: EventTime,
    },
    /// Kernel body complete at local cycle `.0`; waiting for the final
    /// kernel-end alignment.
    Finishing(EventTime),
}

struct SchedState {
    /// Corrected global clock at the end of the last resolved round.
    seg_start: EventTime,
    /// GM traffic counters (read+written) at the end of the last round.
    bytes_mark: u64,
    /// Barrier round currently being gathered.
    round: u64,
    /// Per-block execution state.
    status: Vec<BlockState>,
    /// Block currently holding the baton (`None` once all are parked at
    /// the final alignment or the launch is done).
    turn: Option<usize>,
    /// `(all_set, resolved)` per resolved barrier round.
    round_result: Vec<(EventTime, EventTime)>,
    /// Barrier release latency for the round being gathered.
    pending_cost: u64,
    /// Completed rounds (barriers + the final kernel-end alignment).
    rounds: u64,
    /// Barrier-wait cycles per round, summed over blocks.
    round_waits: Vec<u64>,
    /// Flag-wait (arrival skew) cycles per round, summed over blocks.
    flag_waits: Vec<u64>,
    /// Kernel-end alignment time, once every block has finished.
    final_end: Option<EventTime>,
}

/// Deterministic cooperative scheduler for one kernel launch.
///
/// Protocol, per block thread: [`Scheduler::begin`] once, then any
/// number of [`Scheduler::sync`] calls (one per `SyncAll`), then exactly
/// one [`Scheduler::finish`]. A block that errors out early may skip
/// straight to `finish`; barriers resolve over the blocks still live, so
/// mismatched sync counts cannot deadlock the launch.
pub struct Scheduler {
    state: Mutex<SchedState>,
    cv: Condvar,
}

impl Scheduler {
    /// Creates a scheduler for `blocks` blocks, with segment accounting
    /// starting at cycle 0 and zero bytes moved.
    pub fn new(blocks: usize) -> Self {
        Self::with_origin(blocks, 0, 0)
    }

    /// Creates a scheduler whose first segment starts at `seg_start`
    /// cycles with `bytes_mark` bytes of GM traffic already on the
    /// counters (needed when one [`GlobalMemory`] is reused across
    /// kernel launches).
    pub fn with_origin(blocks: usize, seg_start: EventTime, bytes_mark: u64) -> Self {
        Scheduler {
            state: Mutex::new(SchedState {
                seg_start,
                bytes_mark,
                round: 0,
                status: vec![BlockState::Pending; blocks],
                turn: Some(0),
                round_result: Vec::new(),
                pending_cost: 0,
                rounds: 0,
                round_waits: Vec::new(),
                flag_waits: Vec::new(),
                final_end: None,
            }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SchedState> {
        self.state.lock().expect("Scheduler lock poisoned")
    }

    /// Blocks until it is this block's turn to start executing. Must be
    /// the first scheduler call a block thread makes.
    pub fn begin(&self, block: usize) {
        let mut st = self.lock();
        while st.turn != Some(block) {
            st = self.cv.wait(st).expect("Scheduler lock poisoned");
        }
        let round = st.round;
        st.status[block] = BlockState::Released(round);
    }

    /// Yields at a `SyncAll` barrier. `set_done` is the completion time
    /// of the block's last arrival (`CrossCoreSetFlag`) instruction;
    /// `ready` is when its slowest core finished the release-poll
    /// (`CrossCoreWaitFlag`) instruction that follows. Parks the calling
    /// block and hands the baton on; returns `(all_set, resolved)` once
    /// the round resolves — the cycle the last arrival flag landed
    /// grid-wide, and the cycle all blocks resume.
    pub fn sync(
        &self,
        block: usize,
        set_done: EventTime,
        ready: EventTime,
        gm: &GlobalMemory,
        spec: &ChipSpec,
        release_cost: u64,
    ) -> (EventTime, EventTime) {
        let mut st = self.lock();
        let my_round = st.round;
        st.status[block] = BlockState::AtBarrier {
            round: my_round,
            set_done,
            ready,
        };
        st.pending_cost = st.pending_cost.max(release_cost);
        self.advance(&mut st, gm, spec);
        self.cv.notify_all();
        loop {
            let resolved = st.round_result.get(my_round as usize).copied();
            if let Some(result) = resolved {
                if st.turn == Some(block) {
                    return result;
                }
            }
            st = self.cv.wait(st).expect("Scheduler lock poisoned");
        }
    }

    /// Marks the block's kernel body complete at local cycle `local` and
    /// parks until every block has finished; returns the kernel-end
    /// alignment time (slowest block, stretched to the final segment's
    /// bandwidth bound).
    pub fn finish(
        &self,
        block: usize,
        local: EventTime,
        gm: &GlobalMemory,
        spec: &ChipSpec,
    ) -> EventTime {
        let mut st = self.lock();
        st.status[block] = BlockState::Finishing(local);
        self.advance(&mut st, gm, spec);
        self.cv.notify_all();
        loop {
            if let Some(end) = st.final_end {
                return end;
            }
            st = self.cv.wait(st).expect("Scheduler lock poisoned");
        }
    }

    /// Picks the next baton holder; resolves the current barrier round or
    /// the final alignment when no block can run.
    fn advance(&self, st: &mut SchedState, gm: &GlobalMemory, spec: &ChipSpec) {
        loop {
            let round = st.round;
            let runnable = (0..st.status.len()).find(|&i| {
                matches!(st.status[i], BlockState::Pending)
                    || matches!(st.status[i], BlockState::Released(r) if r == round)
            });
            if let Some(next) = runnable {
                st.turn = Some(next);
                return;
            }
            let any_at_barrier = st
                .status
                .iter()
                .any(|s| matches!(s, BlockState::AtBarrier { round: r, .. } if *r == round));
            if any_at_barrier {
                self.resolve_round(st, gm, spec);
                // Loop: the released blocks are now runnable.
            } else {
                self.resolve_final(st, gm, spec);
                st.turn = None;
                return;
            }
        }
    }

    /// Resolves one barrier round over the blocks that arrived at it.
    fn resolve_round(&self, st: &mut SchedState, gm: &GlobalMemory, spec: &ChipSpec) {
        let round = st.round;
        let mut all_set: EventTime = 0;
        let mut ready_max: EventTime = 0;
        for s in &st.status {
            if let BlockState::AtBarrier {
                round: r,
                set_done,
                ready,
            } = *s
            {
                if r == round {
                    all_set = all_set.max(set_done);
                    ready_max = ready_max.max(ready);
                }
            }
        }
        let seg_bytes = (gm.bytes_read() + gm.bytes_written()).saturating_sub(st.bytes_mark);
        let bw_bound = st.seg_start + spec.gm_bound_cycles(seg_bytes, gm.high_water());
        let resolved = ready_max.max(bw_bound) + st.pending_cost;
        // Split each block's idle time at the barrier: waiting for the
        // last peer's arrival flag to land (and for its own release poll
        // of that flag) is flag time; the rest — bandwidth stretch plus
        // release latency — is barrier time.
        let flag_cut = (all_set + spec.flag_wait_cycles).min(resolved);
        let mut flag_wait = 0u64;
        let mut barrier_wait = 0u64;
        for s in &mut st.status {
            if let BlockState::AtBarrier {
                round: r, ready, ..
            } = *s
            {
                if r == round {
                    flag_wait += flag_cut.saturating_sub(ready);
                    barrier_wait += resolved - ready.max(flag_cut);
                    *s = BlockState::Released(round + 1);
                }
            }
        }
        st.round_result.push((all_set, resolved));
        st.seg_start = resolved;
        st.bytes_mark = gm.bytes_read() + gm.bytes_written();
        st.pending_cost = 0;
        st.round += 1;
        st.rounds += 1;
        st.flag_waits.push(flag_wait);
        st.round_waits.push(barrier_wait);
    }

    /// Resolves the kernel-end alignment once every block has finished.
    fn resolve_final(&self, st: &mut SchedState, gm: &GlobalMemory, spec: &ChipSpec) {
        let mut max_local: EventTime = 0;
        for s in &st.status {
            match *s {
                BlockState::Finishing(local) => max_local = max_local.max(local),
                _ => unreachable!("final alignment with unfinished blocks"),
            }
        }
        let seg_bytes = (gm.bytes_read() + gm.bytes_written()).saturating_sub(st.bytes_mark);
        let bw_bound = st.seg_start + spec.gm_bound_cycles(seg_bytes, gm.high_water());
        let end = max_local.max(bw_bound);
        let wait: u64 = st
            .status
            .iter()
            .map(|s| match *s {
                BlockState::Finishing(local) => end - local,
                _ => 0,
            })
            .sum();
        st.seg_start = end;
        st.bytes_mark = gm.bytes_read() + gm.bytes_written();
        st.rounds += 1;
        st.round_waits.push(wait);
        st.flag_waits.push(0);
        st.final_end = Some(end);
    }

    /// Number of completed rounds (barriers plus the final alignment).
    pub fn rounds(&self) -> u64 {
        self.lock().rounds
    }

    /// Total cycles blocks spent idle at barriers and on arrival flags.
    pub fn total_wait_cycles(&self) -> u64 {
        let st = self.lock();
        st.round_waits.iter().sum::<u64>() + st.flag_waits.iter().sum::<u64>()
    }

    /// Barrier-wait cycles per round, summed over blocks. The last entry
    /// is the kernel-end alignment round.
    pub fn round_waits(&self) -> Vec<u64> {
        self.lock().round_waits.clone()
    }

    /// Flag-wait (arrival skew) cycles per round, summed over blocks,
    /// parallel to [`Scheduler::round_waits`]. The kernel-end entry is
    /// always zero: the runtime aligns finished blocks without flags.
    pub fn flag_waits(&self) -> Vec<u64> {
        self.lock().flag_waits.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn spec_no_bw() -> ChipSpec {
        // A spec with effectively infinite bandwidth so only the
        // max-clock logic is visible.
        let mut s = ChipSpec::tiny();
        s.hbm_bytes_per_sec = 1e18;
        s.l2_bytes_per_sec = 1e18;
        s
    }

    /// Runs the full protocol for `set_done` arrival clocks (one barrier
    /// round, then finish at the barrier's resolution time); returns each
    /// block's `(all_set, resolved)`.
    fn one_round(
        spec: &ChipSpec,
        gm: &Arc<GlobalMemory>,
        set_clocks: &[EventTime],
        cost: u64,
    ) -> (Arc<Scheduler>, Vec<(EventTime, EventTime)>) {
        let sched = Arc::new(Scheduler::new(set_clocks.len()));
        let w = spec.flag_wait_cycles;
        let results: Vec<(EventTime, EventTime)> = std::thread::scope(|s| {
            let handles: Vec<_> = set_clocks
                .iter()
                .enumerate()
                .map(|(i, &c)| {
                    let sched = Arc::clone(&sched);
                    let gm = Arc::clone(gm);
                    let spec = spec.clone();
                    s.spawn(move || {
                        sched.begin(i);
                        let r = sched.sync(i, c, c + w, &gm, &spec, cost);
                        sched.finish(i, r.1, &gm, &spec);
                        r
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        (sched, results)
    }

    #[test]
    fn barrier_aligns_to_slowest_block() {
        let spec = spec_no_bw();
        let gm = Arc::new(GlobalMemory::new(1 << 20));
        // Arrival flags land at 100, 5000, 250; every core's release poll
        // takes flag_wait_cycles (18 on tiny) after its own arrival.
        let (sched, results) = one_round(&spec, &gm, &[100, 5000, 250], 7);
        let all_set = 5000;
        let resolved = all_set + spec.flag_wait_cycles + 7;
        assert!(results.iter().all(|&r| r == (all_set, resolved)));
        // One barrier + the final alignment.
        assert_eq!(sched.rounds(), 2);
    }

    #[test]
    fn barrier_idle_splits_into_flag_skew_and_release() {
        let spec = spec_no_bw();
        let gm = Arc::new(GlobalMemory::new(1 << 20));
        let (sched, _) = one_round(&spec, &gm, &[100, 5000, 250], 7);
        // Flag skew: each early block waits (5000 - its arrival) for the
        // laggard's set flag (the laggard itself waits 0); barrier:
        // everyone pays the release cost.
        assert_eq!(sched.flag_waits(), vec![4900 + 4750, 0]);
        assert_eq!(sched.round_waits(), vec![7 * 3, 0]);
        assert_eq!(sched.total_wait_cycles(), 4900 + 4750 + 21);
    }

    #[test]
    fn bandwidth_bound_stretches_fast_segments() {
        // 4 MiB moved at 100 GB/s on a 1 GHz chip; blocks claim to finish
        // almost immediately, so the bound dominates.
        let spec = ChipSpec::tiny(); // 100 GB/s HBM, L2 1 MiB @ 200 GB/s
        let gm = Arc::new(GlobalMemory::new(8 << 20));
        let region = gm.alloc(4 << 20).unwrap(); // working set 4 MiB > L2
        let buf = vec![0u8; 1 << 20];
        for i in 0..4 {
            gm.device_write(region, i * (1 << 20), &buf).unwrap();
        }
        assert_eq!(gm.bytes_written(), 4 << 20);

        let sched = Scheduler::new(1);
        sched.begin(0);
        let (_, t) = sched.sync(0, 100, 100 + spec.flag_wait_cycles, &gm, &spec, 0);
        let expect = spec.gm_bound_cycles(4 << 20, gm.high_water());
        assert_eq!(t, expect);
        assert!(t > 100);
    }

    #[test]
    fn segments_account_bytes_incrementally() {
        let spec = ChipSpec::tiny();
        let gm = GlobalMemory::new(8 << 20);
        let region = gm.alloc(4 << 20).unwrap();
        let buf = vec![0u8; 2 << 20];
        let sched = Scheduler::new(1);
        sched.begin(0);

        gm.device_write(region, 0, &buf).unwrap();
        let (_, t1) = sched.sync(0, 0, 0, &gm, &spec, 0);
        // Second segment moves the same amount; the bound should advance
        // by the same delta, not double-count the first segment.
        gm.device_write(region, 2 << 20, &buf).unwrap();
        let (_, t2) = sched.sync(0, t1, t1, &gm, &spec, 0);
        assert_eq!(t2 - t1, t1, "equal segments take equal time");
    }

    #[test]
    fn small_working_set_uses_l2_bandwidth() {
        let spec = ChipSpec::tiny(); // L2: 1 MiB at 200 GB/s vs HBM 100 GB/s
        let gm = GlobalMemory::new(8 << 20);
        let region = gm.alloc(512 << 10).unwrap(); // fits in L2
        let buf = vec![0u8; 512 << 10];
        gm.device_write(region, 0, &buf).unwrap();
        let sched = Scheduler::new(1);
        sched.begin(0);
        let (_, t) = sched.sync(0, 0, 0, &gm, &spec, 0);
        // 512 KiB at 200 GB/s (L2) on 1 GHz.
        assert_eq!(t, ((512u64 << 10) as f64 / 200e9 * 1e9).ceil() as u64);
    }

    #[test]
    fn wait_cycles_accumulate_across_rounds() {
        let spec = spec_no_bw();
        let gm = GlobalMemory::new(1 << 20);
        let sched = Scheduler::new(1);
        sched.begin(0);
        // ready = set + flag_wait_cycles: the release poll is busy time
        // on the core, so a lone block stalls on neither flags nor the
        // barrier when the release is free.
        let (_, t1) = sched.sync(0, 100, 118, &gm, &spec, 0);
        assert_eq!(t1, 118, "single block still pays its own release poll");
        // Next round: the block pays 25 cycles of release cost.
        let (_, t2) = sched.sync(0, t1, t1 + 18, &gm, &spec, 25);
        assert_eq!(t2, t1 + 18 + 25);
        sched.finish(0, t2, &gm, &spec);
        assert_eq!(sched.flag_waits(), vec![0, 0, 0]);
        assert_eq!(sched.round_waits(), vec![0, 25, 0]);
    }

    #[test]
    fn kernel_end_alignment_charges_the_final_round() {
        let spec = spec_no_bw();
        let gm = Arc::new(GlobalMemory::new(1 << 20));
        let sched = Arc::new(Scheduler::new(2));
        let ends = [400u64, 1000];
        std::thread::scope(|s| {
            for (i, &e) in ends.iter().enumerate() {
                let sched = Arc::clone(&sched);
                let gm = Arc::clone(&gm);
                let spec = spec.clone();
                s.spawn(move || {
                    sched.begin(i);
                    assert_eq!(sched.finish(i, e, &gm, &spec), 1000);
                });
            }
        });
        assert_eq!(sched.rounds(), 1);
        assert_eq!(sched.round_waits(), vec![600]);
        assert_eq!(sched.flag_waits(), vec![0]);
    }

    #[test]
    fn early_finisher_does_not_deadlock_a_barrier() {
        // Block 0 errors out before the SyncAll that block 1 reaches: the
        // barrier must resolve over the still-live blocks only.
        let spec = spec_no_bw();
        let gm = Arc::new(GlobalMemory::new(1 << 20));
        let sched = Arc::new(Scheduler::new(2));
        let (e0, e1) = std::thread::scope(|s| {
            let a = {
                let sched = Arc::clone(&sched);
                let gm = Arc::clone(&gm);
                let spec = spec.clone();
                s.spawn(move || {
                    sched.begin(0);
                    sched.finish(0, 50, &gm, &spec)
                })
            };
            let b = {
                let sched = Arc::clone(&sched);
                let gm = Arc::clone(&gm);
                let spec = spec.clone();
                s.spawn(move || {
                    sched.begin(1);
                    let (_, r) = sched.sync(1, 200, 218, &gm, &spec, 10);
                    assert_eq!(r, 228, "resolved over block 1 alone");
                    sched.finish(1, r, &gm, &spec)
                })
            };
            (a.join().unwrap(), b.join().unwrap())
        });
        assert_eq!(e0, 228);
        assert_eq!(e1, 228);
        assert_eq!(sched.rounds(), 2);
    }

    #[test]
    fn flag_file_is_a_counting_semaphore() {
        let flags = FlagFile::new(8);
        assert_eq!(flags.consume(3).unwrap(), None);
        let t0 = flags.set(3, 100).unwrap();
        let t1 = flags.set(3, 140).unwrap();
        assert_ne!(t0, t1, "every set gets a unique token");
        // A producer running ahead queues events; waits drain in FIFO
        // order, pairing each wait with the earliest pending set.
        assert_eq!(flags.consume(3).unwrap(), Some((100, t0)));
        assert_eq!(flags.consume(3).unwrap(), Some((140, t1)));
        assert_eq!(flags.consume(3).unwrap(), None);
        // Independent ids do not interfere.
        let ta = flags.set(0, 7).unwrap();
        flags.set(1, 9).unwrap();
        assert_eq!(flags.consume(0).unwrap(), Some((7, ta)));
    }

    #[test]
    fn flag_file_enforces_the_id_space() {
        let flags = FlagFile::new(8);
        assert_eq!(flags.limit(), 8);
        let err = flags.set(8, 100).unwrap_err();
        assert!(matches!(
            err,
            SimError::FlagIdOutOfRange { id: 8, limit: 8 }
        ));
        let err = flags.consume(200).unwrap_err();
        assert!(matches!(
            err,
            SimError::FlagIdOutOfRange { id: 200, limit: 8 }
        ));
        // In-range ids still work.
        flags.set(7, 1).unwrap();
        assert!(flags.consume(7).unwrap().is_some());
    }
}
