//! Kernel execution reports.

use crate::chip::ChipSpec;
use crate::critpath::CritSummary;
use crate::engine::EngineKind;
use crate::prof::StallTally;
use crate::trace::json_escape;

/// Result of simulating one kernel launch: the corrected simulated time
/// plus traffic and occupancy statistics.
///
/// Bandwidth figures follow the paper's convention: the *operator*
/// bandwidth divides the operator's useful bytes (its input size plus its
/// output size, `useful_bytes`) by the simulated time, while
/// `traffic_gbps` divides the bytes the kernel actually moved (which can
/// be larger — e.g. MCScan touches ≈5·N bytes to produce 2·N useful ones).
///
/// Traffic is further attributed between DRAM and L2: when the kernel's
/// GM footprint (`working_set`) fits in L2, repeated accesses to the
/// same bytes are L2 re-reads, not DRAM transactions, so the modeled
/// DRAM rate ([`KernelReport::dram_traffic_gbps`]) is bounded by both
/// the footprint and the chip's HBM peak; the remainder is reported as
/// L2-served bandwidth ([`KernelReport::l2_traffic_gbps`]).
#[derive(Clone, Debug)]
pub struct KernelReport {
    /// Kernel name (for harness output).
    pub name: String,
    /// Number of blocks launched.
    pub blocks: u32,
    /// Corrected end-to-end simulated cycles (including launch overhead).
    pub cycles: u64,
    /// Core clock in GHz (copied from the spec for unit conversions).
    pub clock_ghz: f64,
    /// Device bytes read from global memory.
    pub bytes_read: u64,
    /// Device bytes written to global memory.
    pub bytes_written: u64,
    /// The operator's useful bytes (input + output), set by the caller.
    pub useful_bytes: u64,
    /// The operator's element count, set by the caller.
    pub elements: u64,
    /// High-water GM footprint in bytes (distinct device memory touched),
    /// used to attribute traffic between DRAM and L2.
    pub working_set: u64,
    /// Total busy cycles per engine kind, summed over all cores.
    pub engine_busy: [u64; EngineKind::ALL.len()],
    /// Total instructions per engine kind, summed over all cores.
    pub engine_instructions: [u64; EngineKind::ALL.len()],
    /// Number of global barriers executed.
    pub sync_rounds: u64,
    /// Attributed stall cycles per engine kind, summed over all cores:
    /// dependency-wait, barrier-wait and flag-wait partition the idle
    /// time (`busy + dependency + barrier + flag = cores × (cycles −
    /// launch)`), while contention measures queueing delay overlapping
    /// busy time.
    pub stalls: StallTally,
    /// Cycles blocks collectively idled at each barrier round (one entry
    /// per `SyncAll` plus a final entry for the kernel-end alignment, so
    /// `barrier_waits.len() == sync_rounds + 1` for launched kernels).
    pub barrier_waits: Vec<u64>,
    /// Cycles blocks collectively idled per round waiting for the last
    /// peer's `CrossCoreSetFlag` to land (the arrival-skew share of each
    /// `SyncAll`), parallel to `barrier_waits`. The kernel-end entry is
    /// always zero.
    pub flag_waits: Vec<u64>,
    /// Critical-path attribution and what-ifs (see
    /// [`crate::critpath`]), populated on Full-validation launches;
    /// `None` for unaudited launches and [`KernelReport::sequential`]
    /// merges (a critical path does not compose across launches).
    pub critical_path: Option<CritSummary>,
}

impl KernelReport {
    /// Simulated wall-clock seconds.
    pub fn time_s(&self) -> f64 {
        self.cycles as f64 / (self.clock_ghz * 1e9)
    }

    /// Simulated time in microseconds.
    pub fn time_us(&self) -> f64 {
        self.time_s() * 1e6
    }

    /// Simulated time in milliseconds.
    pub fn time_ms(&self) -> f64 {
        self.time_s() * 1e3
    }

    /// Operator bandwidth in GB/s (useful bytes / time) — the paper's
    /// reporting convention.
    ///
    /// Debug-asserts that `useful_bytes` and `cycles` are non-zero:
    /// [`KernelReport::sequential`] leaves `useful_bytes` at zero for the
    /// caller to fill in, and a silent `0.0` here has historically hidden
    /// that omission.
    pub fn gbps(&self) -> f64 {
        debug_assert!(
            self.useful_bytes > 0,
            "gbps() on report '{}' with useful_bytes == 0 (sequential() leaves it for the caller)",
            self.name
        );
        debug_assert!(
            self.cycles > 0,
            "gbps() on report '{}' with zero cycles",
            self.name
        );
        self.useful_bytes as f64 / self.time_s() / 1e9
    }

    /// Achieved raw traffic bandwidth in GB/s (bytes actually moved,
    /// regardless of whether they were served by DRAM or L2).
    pub fn traffic_gbps(&self) -> f64 {
        (self.bytes_read + self.bytes_written) as f64 / self.time_s() / 1e9
    }

    /// Bytes that actually crossed the DRAM (HBM) bus. When the GM
    /// footprint fits in L2, each resident byte crosses DRAM at most
    /// twice (initial fill + final writeback) and everything else is an
    /// L2 re-read; otherwise the whole stream is DRAM traffic.
    pub fn dram_bytes(&self, spec: &ChipSpec) -> u64 {
        let total = self.bytes_read + self.bytes_written;
        if self.working_set > 0 && self.working_set <= spec.l2_capacity as u64 {
            total.min(2 * self.working_set)
        } else {
            total
        }
    }

    /// Modeled DRAM bandwidth in GB/s: [`KernelReport::dram_bytes`] over
    /// the simulated time, clamped to the chip's HBM peak — modeled DRAM
    /// traffic can never exceed what the memory system can deliver.
    pub fn dram_traffic_gbps(&self, spec: &ChipSpec) -> f64 {
        let rate = self.dram_bytes(spec) as f64 / self.time_s() / 1e9;
        rate.min(spec.hbm_bytes_per_sec / 1e9)
    }

    /// Bandwidth served out of L2 in GB/s: the raw traffic rate minus
    /// the DRAM-attributed rate. Nonzero only for L2-resident kernels,
    /// which is how an L2-resident kernel can legitimately sustain more
    /// than the HBM peak end to end.
    pub fn l2_traffic_gbps(&self, spec: &ChipSpec) -> f64 {
        (self.traffic_gbps() - self.dram_traffic_gbps(spec)).max(0.0)
    }

    /// Throughput in giga-elements per second (Fig. 9's unit).
    ///
    /// Debug-asserts that `elements` and `cycles` are non-zero — see
    /// [`KernelReport::gbps`].
    pub fn gelems(&self) -> f64 {
        debug_assert!(
            self.elements > 0,
            "gelems() on report '{}' with elements == 0 (sequential() leaves it for the caller)",
            self.name
        );
        debug_assert!(
            self.cycles > 0,
            "gelems() on report '{}' with zero cycles",
            self.name
        );
        self.elements as f64 / self.time_s() / 1e9
    }

    /// Utilization of an engine kind across `cores` cores: busy cycles
    /// divided by (cores × total cycles).
    pub fn utilization(&self, engine: EngineKind, cores: u32) -> f64 {
        if self.cycles == 0 || cores == 0 {
            return 0.0;
        }
        self.engine_busy[engine.index()] as f64 / (self.cycles as f64 * f64::from(cores))
    }

    /// Fraction of the chip's theoretical peak memory bandwidth achieved
    /// by the operator (the paper's "37.5% of theoretical bandwidth").
    pub fn fraction_of_peak(&self, spec: &ChipSpec) -> f64 {
        self.gbps() * 1e9 / spec.hbm_bytes_per_sec
    }

    /// Combines reports of kernels launched back to back into one
    /// operator-level report: cycles and traffic add up; `useful_bytes`
    /// and `elements` are left for the caller's I/O convention.
    pub fn sequential(name: &str, parts: &[KernelReport]) -> KernelReport {
        assert!(!parts.is_empty(), "sequential needs at least one report");
        let mut engine_busy = [0u64; EngineKind::ALL.len()];
        let mut engine_instructions = [0u64; EngineKind::ALL.len()];
        let mut stalls = StallTally::default();
        let mut barrier_waits = Vec::new();
        let mut flag_waits = Vec::new();
        for p in parts {
            for i in 0..EngineKind::ALL.len() {
                engine_busy[i] += p.engine_busy[i];
                engine_instructions[i] += p.engine_instructions[i];
            }
            stalls.absorb(&p.stalls);
            barrier_waits.extend_from_slice(&p.barrier_waits);
            flag_waits.extend_from_slice(&p.flag_waits);
        }
        KernelReport {
            name: name.to_string(),
            blocks: parts.iter().map(|p| p.blocks).max().unwrap_or(0),
            cycles: parts.iter().map(|p| p.cycles).sum(),
            clock_ghz: parts[0].clock_ghz,
            bytes_read: parts.iter().map(|p| p.bytes_read).sum(),
            bytes_written: parts.iter().map(|p| p.bytes_written).sum(),
            useful_bytes: 0,
            elements: 0,
            working_set: parts.iter().map(|p| p.working_set).max().unwrap_or(0),
            engine_busy,
            engine_instructions,
            sync_rounds: parts.iter().map(|p| p.sync_rounds).sum(),
            stalls,
            barrier_waits,
            flag_waits,
            critical_path: None,
        }
    }

    /// Renders the report as one JSON object with a stable schema
    /// (`bench-scan/v4`): identification (`name`, `blocks`), totals
    /// (`cycles`, `time_us`, traffic and byte counters, `working_set`,
    /// `sync_rounds`, `barrier_wait_cycles`, `flag_wait_cycles`),
    /// derived rates (`gbps`, `traffic_gbps` — DRAM-attributed and
    /// clamped to the HBM peak — `l2_traffic_gbps`, `gelems`,
    /// `fraction_of_peak` — `0.0` when the underlying denominator is
    /// zero), a per-engine map `engines` keyed by engine name with
    /// `busy_cycles`, `instructions`, `utilization`, and the stall
    /// breakdown (`stall_dependency`, `stall_contention`,
    /// `stall_barrier`, `stall_flag`), and — when the launch was
    /// audited — a `critical_path` object ([`CritSummary::to_json`]:
    /// class attribution summing to the makespan, share fractions,
    /// phases, and the what-if table).
    pub fn to_json(&self, spec: &ChipSpec) -> String {
        fn jf(v: f64) -> String {
            if v.is_finite() {
                format!("{v:.6}")
            } else {
                "0.0".to_string()
            }
        }
        let has_time = self.cycles > 0;
        let gbps = if has_time && self.useful_bytes > 0 {
            self.gbps()
        } else {
            0.0
        };
        let traffic_gbps = if has_time {
            self.dram_traffic_gbps(spec)
        } else {
            0.0
        };
        let l2_traffic_gbps = if has_time {
            self.l2_traffic_gbps(spec)
        } else {
            0.0
        };
        let gelems = if has_time && self.elements > 0 {
            self.gelems()
        } else {
            0.0
        };
        let fraction_of_peak = gbps * 1e9 / spec.hbm_bytes_per_sec;
        let barrier_waits = self
            .barrier_waits
            .iter()
            .map(|w| w.to_string())
            .collect::<Vec<_>>()
            .join(",");
        let flag_waits = self
            .flag_waits
            .iter()
            .map(|w| w.to_string())
            .collect::<Vec<_>>()
            .join(",");
        let mut engines = String::new();
        for (i, e) in EngineKind::ALL.iter().enumerate() {
            let cores = spec.cores_with_engine(self.blocks, *e);
            if i > 0 {
                engines.push(',');
            }
            engines.push_str(&format!(
                "\"{}\":{{\"busy_cycles\":{},\"instructions\":{},\"utilization\":{},\
                 \"stall_dependency\":{},\"stall_contention\":{},\"stall_barrier\":{},\
                 \"stall_flag\":{}}}",
                e.name(),
                self.engine_busy[i],
                self.engine_instructions[i],
                jf(self.utilization(*e, cores as u32)),
                self.stalls.dependency[i],
                self.stalls.contention[i],
                self.stalls.barrier[i],
                self.stalls.flag[i],
            ));
        }
        let critical_path = match &self.critical_path {
            Some(cp) => format!(",\"critical_path\":{}", cp.to_json()),
            None => String::new(),
        };
        format!(
            "{{\"name\":\"{}\",\"blocks\":{},\"cycles\":{},\"time_us\":{},\
             \"gbps\":{},\"traffic_gbps\":{},\"l2_traffic_gbps\":{},\"gelems\":{},\
             \"fraction_of_peak\":{},\"bytes_read\":{},\"bytes_written\":{},\
             \"useful_bytes\":{},\"elements\":{},\"working_set\":{},\
             \"sync_rounds\":{},\"barrier_wait_cycles\":[{}],\"flag_wait_cycles\":[{}],\
             \"engines\":{{{}}}{}}}",
            json_escape(&self.name),
            self.blocks,
            self.cycles,
            jf(self.time_us()),
            jf(gbps),
            jf(traffic_gbps),
            jf(l2_traffic_gbps),
            jf(gelems),
            jf(fraction_of_peak),
            self.bytes_read,
            self.bytes_written,
            self.useful_bytes,
            self.elements,
            self.working_set,
            self.sync_rounds,
            barrier_waits,
            flag_waits,
            engines,
            critical_path,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> KernelReport {
        KernelReport {
            name: "test".into(),
            blocks: 20,
            cycles: 1_800_000, // 1 ms at 1.8 GHz
            clock_ghz: 1.8,
            bytes_read: 3_000_000,
            bytes_written: 2_000_000,
            useful_bytes: 2_000_000,
            elements: 1_000_000,
            working_set: 2_500_000,
            engine_busy: [0, 0, 0, 0, 900_000, 0, 0],
            engine_instructions: [0; 7],
            sync_rounds: 1,
            stalls: StallTally::default(),
            barrier_waits: vec![100, 50],
            flag_waits: vec![30, 0],
            critical_path: None,
        }
    }

    #[test]
    fn time_conversions() {
        let r = report();
        assert!((r.time_s() - 1e-3).abs() < 1e-12);
        assert!((r.time_us() - 1000.0).abs() < 1e-6);
        assert!((r.time_ms() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bandwidth_conventions() {
        let r = report();
        // Useful: 2 MB in 1 ms = 2 GB/s.
        assert!((r.gbps() - 2.0).abs() < 1e-9);
        // Traffic: 5 MB in 1 ms = 5 GB/s.
        assert!((r.traffic_gbps() - 5.0).abs() < 1e-9);
        // 1 M elements in 1 ms = 1e9 elems/s = 1 GElem/s.
        assert!((r.gelems() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dram_attribution_separates_l2_rereads() {
        let spec = ChipSpec::ascend_910b4();
        // A 1 MB footprint hammered for 1 GB of traffic in 1 ms: the raw
        // rate is 1000 GB/s, above the 800 GB/s HBM peak, but only the
        // fill + writeback of the footprint can be DRAM transactions.
        let mut r = report();
        r.working_set = 1_000_000;
        r.bytes_read = 900_000_000;
        r.bytes_written = 100_000_000;
        assert!((r.traffic_gbps() - 1000.0).abs() < 1e-9);
        assert_eq!(r.dram_bytes(&spec), 2_000_000);
        assert!((r.dram_traffic_gbps(&spec) - 2.0).abs() < 1e-9);
        assert!((r.l2_traffic_gbps(&spec) - 998.0).abs() < 1e-9);
        // The JSON `traffic_gbps` is the DRAM-attributed figure.
        let json = r.to_json(&spec);
        assert!(json.contains("\"traffic_gbps\":2.0"));
        assert!(json.contains("\"l2_traffic_gbps\":998.0"));
        assert!(json.contains("\"working_set\":1000000"));
    }

    #[test]
    fn dram_traffic_is_clamped_to_hbm_peak() {
        let spec = ChipSpec::ascend_910b4();
        // Footprint larger than L2: all traffic is DRAM, but the modeled
        // rate still cannot exceed what the HBM bus can deliver.
        let mut r = report();
        r.working_set = 300 << 20;
        r.bytes_read = 900_000_000;
        r.bytes_written = 100_000_000;
        assert_eq!(r.dram_bytes(&spec), 1_000_000_000);
        assert!((r.dram_traffic_gbps(&spec) - 800.0).abs() < 1e-9);
        assert!((r.l2_traffic_gbps(&spec) - 200.0).abs() < 1e-9);
    }

    #[test]
    fn zero_working_set_means_no_l2_attribution() {
        // Hand-built reports (and pre-v3 fixtures) leave working_set at
        // zero; traffic then stays fully DRAM-attributed (clamped only).
        let spec = ChipSpec::ascend_910b4();
        let mut r = report();
        r.working_set = 0;
        assert_eq!(r.dram_bytes(&spec), 5_000_000);
        assert!((r.dram_traffic_gbps(&spec) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn utilization_and_peak_fraction() {
        let r = report();
        let u = r.utilization(EngineKind::Cube, 20);
        assert!((u - 900_000.0 / (1_800_000.0 * 20.0)).abs() < 1e-12);
        let spec = ChipSpec::ascend_910b4();
        assert!((r.fraction_of_peak(&spec) - 2.0 / 800.0).abs() < 1e-12);
    }

    #[test]
    fn zero_cycles_utilization_is_zero() {
        let mut r = report();
        r.cycles = 0;
        assert_eq!(r.utilization(EngineKind::Cube, 20), 0.0);
    }

    #[test]
    fn sequential_combines_and_leaves_useful_fields_zero() {
        let parts = [report(), report()];
        let s = KernelReport::sequential("combined", &parts);
        assert_eq!(s.cycles, 3_600_000);
        assert_eq!(s.bytes_read, 6_000_000);
        assert_eq!(s.useful_bytes, 0);
        assert_eq!(s.elements, 0);
        // The footprint does not add up across launches over the same
        // buffers: the combined report keeps the high-water mark.
        assert_eq!(s.working_set, 2_500_000);
        // Barrier- and flag-wait rounds concatenate; stalls add up.
        assert_eq!(s.barrier_waits, vec![100, 50, 100, 50]);
        assert_eq!(s.flag_waits, vec![30, 0, 30, 0]);
    }

    #[test]
    fn json_report_has_schema_keys_and_escapes_names() {
        let mut r = report();
        r.name = "weird \"name\"\\".into();
        r.stalls.dependency[EngineKind::Cube.index()] = 123;
        let spec = ChipSpec::ascend_910b4();
        let json = r.to_json(&spec);
        for key in [
            "\"name\":",
            "\"blocks\":",
            "\"cycles\":",
            "\"time_us\":",
            "\"gbps\":",
            "\"traffic_gbps\":",
            "\"l2_traffic_gbps\":",
            "\"working_set\":",
            "\"gelems\":",
            "\"fraction_of_peak\":",
            "\"sync_rounds\":",
            "\"barrier_wait_cycles\":",
            "\"flag_wait_cycles\":",
            "\"engines\":",
            "\"stall_dependency\":",
            "\"stall_contention\":",
            "\"stall_barrier\":",
            "\"stall_flag\":",
            "\"busy_cycles\":",
            "\"instructions\":",
            "\"utilization\":",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(json.contains("weird \\\"name\\\"\\\\"));
        assert!(json.contains("\"CUBE\":{"));
        assert!(json.contains("\"stall_dependency\":123"));
        assert!(json.contains("\"barrier_wait_cycles\":[100,50]"));
        assert!(json.contains("\"flag_wait_cycles\":[30,0]"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn json_report_guards_zero_denominators() {
        let spec = ChipSpec::tiny();
        let r = KernelReport::sequential("unfilled", &[report()]);
        // useful_bytes and elements are zero: to_json must not trip the
        // gbps()/gelems() debug asserts and reports 0.0 instead.
        let json = r.to_json(&spec);
        assert!(json.contains("\"gbps\":0.0"));
        assert!(json.contains("\"gelems\":0.0"));
        assert!(json.contains("\"fraction_of_peak\":0.0"));
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "useful_bytes == 0")]
    fn gbps_on_unfilled_sequential_report_panics() {
        let s = KernelReport::sequential("unfilled", &[report()]);
        let _ = s.gbps();
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "elements == 0")]
    fn gelems_on_unfilled_sequential_report_panics() {
        let s = KernelReport::sequential("unfilled", &[report()]);
        let _ = s.gelems();
    }
}
