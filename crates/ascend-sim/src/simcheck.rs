//! Runtime sanitizer layer ("simcheck").
//!
//! The simulator already turns hard failures (out-of-bounds accesses,
//! scratchpad overflow) into [`SimError`]s. This module adds the checks
//! that catch *silent* misuse — bugs that on real hardware corrupt data
//! or timing without any diagnostic:
//!
//! * **Scratchpad lifetimes** ([`ScratchTracker`]): every local-buffer
//!   allocation gets a unique id and an address range inside its
//!   scratchpad (UB/L1/L0A/L0B/L0C). Using or freeing a buffer after it
//!   was freed is a use-after-free; using a stale buffer whose range has
//!   since been handed to a live allocation is an overlap.
//! * **Timeline audits** ([`audit_trace_events`]): per-engine event
//!   times must be monotone — an in-order engine queue can never run two
//!   instructions in overlapping intervals.
//! * **Accounting audits** ([`audit_report`]): per-engine busy cycles
//!   are bounded by `cores-with-engine x cycles`, and the report's
//!   traffic must reconcile with the [`GlobalMemory`] transfer counters.
//! * **Schedule audits** ([`audit_schedule`]): the happens-before
//!   analyzer ([`crate::hb`], a.k.a. `simlint`) replays the launch's
//!   synchronization structure; error-severity findings (GM data races,
//!   unmatched flag waits, flag reuse across barrier rounds, deadlock
//!   shapes) abort the launch.
//!
//! All checks are *observational*: they never issue instructions or
//! advance any timeline, so enabling them cannot change a kernel's
//! simulated cycles, traffic, or engine occupancy (the determinism
//! fingerprints tests rely on).
//!
//! [`GlobalMemory`]: crate::mem::GlobalMemory

use crate::chip::ChipSpec;
use crate::critpath::CritReport;
use crate::engine::EngineKind;
use crate::error::{SimError, SimResult};
use crate::hb::{self, Severity};
use crate::report::KernelReport;
use crate::trace::{HbEvent, TraceEvent};
use std::collections::HashMap;

/// How much runtime validation the simulator performs.
///
/// Carried on [`ChipSpec`](crate::ChipSpec::validation) so a single
/// launch-side switch covers every kernel: tests run the presets'
/// default ([`ValidationMode::Full`]); benchmarks downgrade to
/// [`ValidationMode::Cheap`] via
/// [`ChipSpec::with_validation`](crate::ChipSpec::with_validation).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ValidationMode {
    /// No optional checking. Bounds checks that protect the simulator's
    /// own memory safety remain active.
    Off,
    /// O(1) structural checks only (queue protocol, bounds). No
    /// per-allocation lifetime tracking, no post-launch audits.
    Cheap,
    /// Everything: lifetime/overlap tracking, timeline monotonicity and
    /// accounting audits. The default, and what all tests run under.
    #[default]
    Full,
    /// [`ValidationMode::Full`] plus per-element data validation: every
    /// tensor enqueued into a [`TQue`] is checksummed and the checksum is
    /// re-verified at `deque`, catching any corruption of the payload
    /// across the cross-core handoff. Off by default — the checksums are
    /// O(bytes) per handoff.
    ///
    /// [`TQue`]: https://docs.rs/ascendc
    Paranoid,
}

impl ValidationMode {
    /// Whether scratchpad lifetime/overlap tracking is active.
    pub fn lifetime_checks(self) -> bool {
        matches!(self, ValidationMode::Full | ValidationMode::Paranoid)
    }

    /// Whether post-launch timeline and accounting audits run.
    pub fn audits(self) -> bool {
        matches!(self, ValidationMode::Full | ValidationMode::Paranoid)
    }

    /// Whether enque/deque payload checksumming is active.
    pub fn checksums(self) -> bool {
        matches!(self, ValidationMode::Paranoid)
    }

    /// Whether any validation at all is requested.
    pub fn enabled(self) -> bool {
        !matches!(self, ValidationMode::Off)
    }
}

/// A live or freed scratchpad allocation: pad index, byte offset, byte
/// length, and the pad's display name.
#[derive(Clone, Copy, Debug)]
struct AllocInfo {
    pad: usize,
    offset: usize,
    len: usize,
    buffer: &'static str,
}

/// Number of distinct scratchpads tracked per core (UB, L1, L0A/B/C).
pub const TRACKED_PADS: usize = 5;

/// Per-core scratchpad lifetime tracker.
///
/// The owning core assigns each allocation a process-unique id (0 means
/// "untracked"); the tracker places it at a concrete byte range via
/// first-fit and remembers freed allocations so later uses of stale
/// handles can be classified as use-after-free or overlap.
///
/// Ids the tracker never allocated (e.g. a tensor handed over from a
/// different core) are ignored rather than flagged: cross-core traffic
/// is policed by the position checks, not by this tracker.
#[derive(Debug, Default)]
pub struct ScratchTracker {
    active: bool,
    /// Live ranges per pad, kept sorted by offset: `(offset, len, id)`.
    ranges: [Vec<(usize, usize, u64)>; TRACKED_PADS],
    live: HashMap<u64, AllocInfo>,
    freed: HashMap<u64, AllocInfo>,
}

impl ScratchTracker {
    /// Creates a tracker; when `active` is false every operation is a
    /// no-op returning success (the `Off`/`Cheap` modes).
    pub fn new(active: bool) -> Self {
        ScratchTracker {
            active,
            ..Default::default()
        }
    }

    /// Registers an allocation of `len` bytes in pad `pad` under the
    /// caller-supplied unique `id`. Placement is first-fit among the
    /// pad's live ranges; when fragmentation leaves no gap inside
    /// `capacity` the range is placed past the end instead — placement
    /// exists for overlap classification only and must never invent
    /// failures the capacity accounting did not.
    pub fn on_alloc(
        &mut self,
        id: u64,
        pad: usize,
        buffer: &'static str,
        len: usize,
        capacity: usize,
    ) {
        if !self.active || id == 0 {
            return;
        }
        let ranges = &mut self.ranges[pad];
        let mut offset = 0usize;
        let mut slot = ranges.len();
        for (i, &(start, rlen, _)) in ranges.iter().enumerate() {
            if offset + len <= start {
                slot = i;
                break;
            }
            offset = offset.max(start + rlen);
        }
        if slot == ranges.len() && offset + len > capacity {
            // Fragmented: no in-capacity gap. Park the range past the
            // current maximum so it overlaps nothing live.
            offset = ranges.last().map_or(0, |&(s, l, _)| s + l).max(offset);
        }
        ranges.insert(slot.min(ranges.len()), (offset, len, id));
        ranges.sort_unstable_by_key(|&(s, _, _)| s);
        self.live.insert(
            id,
            AllocInfo {
                pad,
                offset,
                len,
                buffer,
            },
        );
    }

    /// Validates and records a free of allocation `id`. Freeing an
    /// already-freed allocation is a use-after-free; unknown ids are
    /// foreign and ignored.
    pub fn on_free(&mut self, id: u64, what: &'static str) -> SimResult<()> {
        if !self.active || id == 0 {
            return Ok(());
        }
        if let Some(info) = self.live.remove(&id) {
            self.ranges[info.pad].retain(|&(_, _, rid)| rid != id);
            self.freed.insert(id, info);
            return Ok(());
        }
        if let Some(info) = self.freed.get(&id) {
            return Err(SimError::ScratchpadUseAfterFree {
                buffer: info.buffer,
                what,
            });
        }
        Ok(())
    }

    /// Validates a use (read or write) of allocation `id`. A freed
    /// allocation whose byte range has since been handed to a live
    /// allocation is an overlap (two tiles believe they own the same
    /// addresses); a freed allocation with no such conflict is a plain
    /// use-after-free. Unknown ids are foreign and ignored.
    pub fn check_use(&self, id: u64, what: &'static str) -> SimResult<()> {
        if !self.active || id == 0 || self.live.contains_key(&id) {
            return Ok(());
        }
        let Some(info) = self.freed.get(&id) else {
            return Ok(());
        };
        let stale_end = info.offset + info.len;
        let overlaps_live = self.ranges[info.pad]
            .iter()
            .any(|&(start, len, _)| start < stale_end && info.offset < start + len);
        if overlaps_live && info.len > 0 {
            Err(SimError::ScratchpadOverlap {
                buffer: info.buffer,
                what,
            })
        } else {
            Err(SimError::ScratchpadUseAfterFree {
                buffer: info.buffer,
                what,
            })
        }
    }

    /// Number of currently live tracked allocations (diagnostics).
    pub fn live_count(&self) -> usize {
        self.live.len()
    }
}

/// Audits recorded engine-occupancy events: within each
/// `(block, core, engine)` stream, every interval must be well-formed
/// (`end >= start`) and start at or after the previous interval's end —
/// the in-order engine queues can never overlap two instructions.
pub fn audit_trace_events(events: &[TraceEvent]) -> SimResult<()> {
    let mut last_end: HashMap<(u32, u32, usize), u64> = HashMap::new();
    for e in events {
        if e.end < e.start {
            return Err(SimError::AccountingViolation {
                what: "trace event interval",
                detail: format!(
                    "block {} core {} engine {}: end {} precedes start {}",
                    e.block,
                    e.core,
                    e.engine.name(),
                    e.end,
                    e.start
                ),
            });
        }
        let key = (e.block, e.core, e.engine.index());
        if let Some(&prev) = last_end.get(&key) {
            if e.start < prev {
                return Err(SimError::AccountingViolation {
                    what: "engine timeline monotonicity",
                    detail: format!(
                        "block {} core {} engine {}: event starts at {} before previous end {}",
                        e.block,
                        e.core,
                        e.engine.name(),
                        e.start,
                        prev
                    ),
                });
            }
        }
        last_end.insert(key, e.end);
    }
    Ok(())
}

/// Runs the happens-before schedule analyzer ([`crate::hb`], the engine
/// behind `simlint`) over a launch's recorded event stream and converts
/// the first error-severity finding into a launch failure.
///
/// Warning-severity findings (flag/alloc/queue leaks, dead transfers)
/// are tolerated in-process — hygiene is enforced offline by the
/// `simlint` CLI, which fails on any finding — so unit-test kernels
/// that deliberately leak a buffer still run.
pub fn audit_schedule(events: &[HbEvent]) -> SimResult<()> {
    for d in hb::analyze(events) {
        if d.severity == Severity::Error {
            return Err(SimError::ScheduleHazard {
                what: d.code,
                detail: d.message,
            });
        }
    }
    Ok(())
}

/// Extracts the launch's critical path and asserts the **makespan
/// identity**: the backward causal walk over the recorded busy/stall
/// intervals, flag edges, and scheduler round records must produce a
/// contiguous segment chain covering exactly `[0, cycles]`. Any
/// unexplained boundary means the timing model and its own records
/// disagree, and the launch fails with
/// [`SimError::AccountingViolation`]. Returns the extracted path so
/// the caller can attach it to the report/profile.
pub fn audit_critical_path(input: &crate::critpath::CritInput<'_>) -> SimResult<CritReport> {
    crate::critpath::analyze(input)
}

/// Audits a finished [`KernelReport`] against the chip spec and the
/// observed global-memory counter deltas:
///
/// * per-engine busy cycles cannot exceed `cores-with-engine x cycles`
///   (an engine cannot be busy longer than the kernel ran);
/// * `bytes_read`/`bytes_written` must equal the deltas measured on the
///   [`GlobalMemory`](crate::mem::GlobalMemory) transfer counters.
pub fn audit_report(
    report: &KernelReport,
    spec: &ChipSpec,
    gm_read_delta: u64,
    gm_written_delta: u64,
) -> SimResult<()> {
    for e in EngineKind::ALL {
        let bound = spec.cores_with_engine(report.blocks, e) * report.cycles;
        let busy = report.engine_busy[e.index()];
        if busy > bound {
            return Err(SimError::AccountingViolation {
                what: "engine busy cycles",
                detail: format!(
                    "engine {}: {busy} busy cycles exceed bound {bound} ({} cores x {} cycles)",
                    e.name(),
                    spec.cores_with_engine(report.blocks, e),
                    report.cycles
                ),
            });
        }
    }
    if report.bytes_read != gm_read_delta {
        return Err(SimError::AccountingViolation {
            what: "bytes_read reconciliation",
            detail: format!(
                "report claims {} B read but global memory counted {gm_read_delta} B",
                report.bytes_read
            ),
        });
    }
    if report.bytes_written != gm_written_delta {
        return Err(SimError::AccountingViolation {
            what: "bytes_written reconciliation",
            detail: format!(
                "report claims {} B written but global memory counted {gm_written_delta} B",
                report.bytes_written
            ),
        });
    }
    Ok(())
}

/// Audits the stall-attribution partition of a launched kernel's report:
/// with every core created at `launch_cycles` and aligned to the kernel
/// end, each engine's time decomposes *exactly* as
///
/// ```text
/// busy + stall_dependency + stall_barrier + stall_flag
///     == cores_with_engine × (cycles − launch_cycles)
/// ```
///
/// (contention overlaps busy time and is deliberately outside the
/// partition). Only valid for reports produced by the launch machinery —
/// synthetic or [`KernelReport::sequential`] reports don't satisfy it,
/// and neither do oversubscribed launches (`blocks > ai_cores`), where
/// blocks time-share physical cores and are not aligned to a common
/// kernel end; the launch path skips the audit for those.
pub fn audit_stall_accounting(report: &KernelReport, spec: &ChipSpec) -> SimResult<()> {
    let span = report.cycles.saturating_sub(spec.launch_cycles);
    for e in EngineKind::ALL {
        let i = e.index();
        let accounted = report.engine_busy[i]
            + report.stalls.dependency[i]
            + report.stalls.barrier[i]
            + report.stalls.flag[i];
        let expected = spec.cores_with_engine(report.blocks, e) * span;
        if accounted != expected {
            return Err(SimError::AccountingViolation {
                what: "stall accounting partition",
                detail: format!(
                    "engine {}: busy {} + dep {} + barrier {} + flag {} = {accounted} \
                     != {expected} ({} cores x {span} cycles)",
                    e.name(),
                    report.engine_busy[i],
                    report.stalls.dependency[i],
                    report.stalls.barrier[i],
                    report.stalls.flag[i],
                    spec.cores_with_engine(report.blocks, e),
                ),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const UB: usize = 0;

    fn tracker() -> ScratchTracker {
        ScratchTracker::new(true)
    }

    #[test]
    fn validation_mode_gating() {
        assert!(ValidationMode::Full.lifetime_checks());
        assert!(ValidationMode::Full.audits());
        assert!(!ValidationMode::Full.checksums());
        assert!(ValidationMode::Paranoid.lifetime_checks());
        assert!(ValidationMode::Paranoid.audits());
        assert!(ValidationMode::Paranoid.checksums());
        assert!(ValidationMode::Paranoid.enabled());
        assert!(!ValidationMode::Cheap.lifetime_checks());
        assert!(!ValidationMode::Cheap.audits());
        assert!(!ValidationMode::Cheap.checksums());
        assert!(ValidationMode::Cheap.enabled());
        assert!(!ValidationMode::Off.enabled());
        assert_eq!(ValidationMode::default(), ValidationMode::Full);
    }

    #[test]
    fn live_allocation_passes_checks() {
        let mut t = tracker();
        t.on_alloc(1, UB, "UB", 256, 1024);
        assert!(t.check_use(1, "copy").is_ok());
        assert_eq!(t.live_count(), 1);
        assert!(t.on_free(1, "free_local").is_ok());
        assert_eq!(t.live_count(), 0);
    }

    #[test]
    fn use_after_free_is_detected() {
        let mut t = tracker();
        t.on_alloc(1, UB, "UB", 256, 1024);
        t.on_free(1, "free_local").unwrap();
        let err = t.check_use(1, "Adds").unwrap_err();
        assert!(matches!(err, SimError::ScratchpadUseAfterFree { .. }));
    }

    #[test]
    fn double_free_is_detected() {
        let mut t = tracker();
        t.on_alloc(1, UB, "UB", 256, 1024);
        t.on_free(1, "free_local").unwrap();
        let err = t.on_free(1, "free_local").unwrap_err();
        assert!(matches!(err, SimError::ScratchpadUseAfterFree { .. }));
    }

    #[test]
    fn stale_use_over_recycled_range_is_overlap() {
        let mut t = tracker();
        t.on_alloc(1, UB, "UB", 256, 1024);
        t.on_free(1, "free_local").unwrap();
        // The freed range is recycled by a new live allocation.
        t.on_alloc(2, UB, "UB", 256, 1024);
        let err = t.check_use(1, "Adds").unwrap_err();
        assert!(matches!(err, SimError::ScratchpadOverlap { .. }));
    }

    #[test]
    fn foreign_and_untracked_ids_are_ignored() {
        let mut t = tracker();
        assert!(t.check_use(0, "x").is_ok());
        assert!(t.check_use(999, "x").is_ok());
        assert!(t.on_free(0, "x").is_ok());
        assert!(t.on_free(999, "x").is_ok());
    }

    #[test]
    fn inactive_tracker_is_a_no_op() {
        let mut t = ScratchTracker::new(false);
        t.on_alloc(1, UB, "UB", 256, 1024);
        t.on_free(1, "f").unwrap();
        t.on_free(1, "f").unwrap();
        assert!(t.check_use(1, "x").is_ok());
    }

    #[test]
    fn first_fit_reuses_gaps() {
        let mut t = tracker();
        t.on_alloc(1, UB, "UB", 100, 1024);
        t.on_alloc(2, UB, "UB", 100, 1024);
        t.on_free(1, "f").unwrap();
        // Id 3 takes id 1's old range [0, 100); stale id 1 now overlaps.
        t.on_alloc(3, UB, "UB", 50, 1024);
        assert!(matches!(
            t.check_use(1, "x"),
            Err(SimError::ScratchpadOverlap { .. })
        ));
        // Id 2's range is untouched and still live.
        assert!(t.check_use(2, "x").is_ok());
    }

    #[test]
    fn trace_audit_accepts_monotone_rejects_overlap() {
        let ev = |start, end| TraceEvent {
            block: 0,
            core: 0,
            engine: EngineKind::Vec,
            start,
            end,
        };
        assert!(audit_trace_events(&[ev(0, 10), ev(10, 20), ev(25, 30)]).is_ok());
        let err = audit_trace_events(&[ev(0, 10), ev(5, 20)]).unwrap_err();
        assert!(matches!(err, SimError::AccountingViolation { .. }));
        let err = audit_trace_events(&[ev(10, 5)]).unwrap_err();
        assert!(matches!(err, SimError::AccountingViolation { .. }));
    }

    #[test]
    fn schedule_audit_fails_on_errors_tolerates_warnings() {
        use crate::trace::{HbAction, HbEvent};
        assert!(audit_schedule(&[]).is_ok());
        // A leaked allocation is warning-severity: launch still passes.
        let leak = [HbEvent {
            block: 0,
            core: 1,
            time: 10,
            what: "AllocLocal",
            action: HbAction::Alloc { id: 1, bytes: 64 },
        }];
        assert!(audit_schedule(&leak).is_ok());
        // A cross-block GM race is error-severity: launch fails.
        let mk_write = |block| HbEvent {
            block,
            core: 1,
            time: 10,
            what: "DataCopy",
            action: HbAction::GmWrite { start: 0, end: 64 },
        };
        let err = audit_schedule(&[mk_write(0), mk_write(1)]).unwrap_err();
        match err {
            SimError::ScheduleHazard { what, .. } => assert_eq!(what, "gm-race"),
            other => panic!("expected ScheduleHazard, got {other:?}"),
        }
    }

    #[test]
    fn report_audit_bounds_busy_and_reconciles_traffic() {
        let spec = ChipSpec::tiny();
        let mut report = KernelReport {
            name: "t".into(),
            blocks: 1,
            cycles: 1000,
            clock_ghz: 1.0,
            bytes_read: 512,
            bytes_written: 256,
            useful_bytes: 768,
            elements: 128,
            working_set: 768,
            engine_busy: [0; EngineKind::ALL.len()],
            engine_instructions: [0; EngineKind::ALL.len()],
            sync_rounds: 0,
            stalls: crate::prof::StallTally::default(),
            barrier_waits: Vec::new(),
            flag_waits: Vec::new(),
            critical_path: None,
        };
        assert!(audit_report(&report, &spec, 512, 256).is_ok());

        // Vec engine exists only on the 2 vector cores: bound is 2000.
        report.engine_busy[EngineKind::Vec.index()] = 2001;
        assert!(matches!(
            audit_report(&report, &spec, 512, 256),
            Err(SimError::AccountingViolation { .. })
        ));
        report.engine_busy[EngineKind::Vec.index()] = 2000;
        assert!(audit_report(&report, &spec, 512, 256).is_ok());

        // Traffic mismatch in either direction is caught.
        assert!(matches!(
            audit_report(&report, &spec, 513, 256),
            Err(SimError::AccountingViolation { .. })
        ));
        assert!(matches!(
            audit_report(&report, &spec, 512, 0),
            Err(SimError::AccountingViolation { .. })
        ));
    }

    #[test]
    fn stall_accounting_partition_must_close() {
        let spec = ChipSpec::tiny();
        let span = 900u64; // cycles - launch_cycles (tiny: launch = 100)
        let mut report = KernelReport {
            name: "t".into(),
            blocks: 1,
            cycles: spec.launch_cycles + span,
            clock_ghz: 1.0,
            bytes_read: 0,
            bytes_written: 0,
            useful_bytes: 0,
            elements: 0,
            working_set: 0,
            engine_busy: [0; EngineKind::ALL.len()],
            engine_instructions: [0; EngineKind::ALL.len()],
            sync_rounds: 0,
            stalls: crate::prof::StallTally::default(),
            barrier_waits: Vec::new(),
            flag_waits: Vec::new(),
            critical_path: None,
        };
        // Fill every engine's partition exactly: busy + dep + barrier +
        // flag must equal cores_with_engine x span.
        for e in EngineKind::ALL {
            let cores = spec.cores_with_engine(1, e);
            report.engine_busy[e.index()] = 100 * cores;
            report.stalls.dependency[e.index()] = 300 * cores;
            report.stalls.flag[e.index()] = 50 * cores;
            report.stalls.barrier[e.index()] = (span - 450) * cores;
        }
        assert!(audit_stall_accounting(&report, &spec).is_ok());

        // A missing cycle anywhere breaks the partition.
        report.stalls.barrier[EngineKind::Vec.index()] -= 1;
        assert!(matches!(
            audit_stall_accounting(&report, &spec),
            Err(SimError::AccountingViolation { .. })
        ));
        report.stalls.barrier[EngineKind::Vec.index()] += 1;
        // So does an excess flag-wait cycle.
        report.stalls.flag[EngineKind::Scalar.index()] += 1;
        assert!(matches!(
            audit_stall_accounting(&report, &spec),
            Err(SimError::AccountingViolation { .. })
        ));
    }
}
