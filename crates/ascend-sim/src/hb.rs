//! Happens-before schedule analysis — the engine behind `simlint`.
//!
//! A launch's recorded [`HbEvent`] stream (see [`crate::trace`]) is a set
//! of per-`(block, core)` program-order threads plus synchronization
//! actions. This module rebuilds the happens-before partial order the
//! schedule actually guarantees and checks the schedule against it:
//!
//! * **program order** — events of one `(block, core)` thread in record
//!   order;
//! * **flag edges** — a `CrossCoreSetFlag` happens-before the
//!   `CrossCoreWaitFlag` that consumed its token;
//! * **grid-flag edges** — a `GridSetFlag` happens-before the
//!   `GridWaitFlag` that consumed its token. Unlike per-block flags,
//!   grid flags pair *launch-wide* (tokens are launch-unique): they are
//!   the mailbox protocol of chained look-back scans, where block `b+1`
//!   waits on block `b`'s aggregate instead of a global barrier;
//! * **queue edges** — the i-th `enque` on a `TQue` happens-before the
//!   i-th `deque`;
//! * **barrier rounds** — everything program-order-before any core's
//!   `SyncAll` arrival happens-before everything after any core's release
//!   in the same round (grid-wide rendezvous).
//!
//! Vector clocks over a topological order of this graph answer
//! `a happens-before b` in O(1), which powers the diagnostics:
//!
//! | code | severity | meaning |
//! |------|----------|---------|
//! | `gm-race` | error | conflicting GM accesses with no HB path |
//! | `hb-cycle` | error | the sync edges contradict program order (deadlock shape) |
//! | `unmatched-wait` | error | a `wait_flag` consuming a token no set published |
//! | `flag-reuse` | error | a flag id reused across barrier rounds while an older round's set is still pending |
//! | `flag-leak` | warning | a set no wait ever consumed |
//! | `queue-unbalanced` | warning | enque/deque counts differ on a queue |
//! | `queue-leak` | warning | a queue created but never destroyed |
//! | `alloc-leak` | warning | a scratchpad allocation never freed |
//! | `dead-transfer` | warning | a GM write overwritten without any possible reader |
//!
//! The analysis is *sound for the recorded schedule*: unlike the runtime
//! `simcheck` layer, which only observes the one interleaving the
//! deterministic scheduler produced, a missing HB path is flagged even
//! when the replayed timing happened to order the accesses safely
//! (AccelSync-style sync-coverage checking).
//!
//! Error-severity findings abort a `ValidationMode::Full`/`Paranoid`
//! launch via [`crate::simcheck::audit_schedule`]; the `simlint` CLI
//! additionally fails on warnings, keeping shipped kernels lint-clean.

use crate::trace::{HbAction, HbEvent};
use std::collections::HashMap;
use std::fmt;

/// How bad a finding is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Definite schedule bug: fails Full-validation launches in-process.
    Error,
    /// Hygiene finding: reported, and fails the `simlint` CLI, but does
    /// not abort a launch.
    Warning,
}

impl Severity {
    /// Display label.
    pub const fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

/// One schedule finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Finding severity.
    pub severity: Severity,
    /// Stable machine-readable code (e.g. `"gm-race"`).
    pub code: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {}",
            self.severity.label(),
            self.code,
            self.message
        )
    }
}

/// Most races reported individually before summarizing the rest.
const RACE_REPORT_CAP: usize = 20;

fn core_name(core: u32) -> String {
    if core == 0 {
        "cube".to_string()
    } else {
        format!("vec{}", core - 1)
    }
}

fn place(e: &HbEvent) -> String {
    format!(
        "block {} {} `{}` @{}",
        e.block,
        core_name(e.core),
        e.what,
        e.time
    )
}

/// One GM access extracted from the event stream.
#[derive(Clone, Copy)]
struct Access {
    start: u64,
    end: u64,
    write: bool,
    node: usize,
}

/// Analyzes a launch's happens-before event stream and returns every
/// finding, errors first, in a deterministic order.
///
/// Events of one `(block, core)` pair must appear in program order
/// (the order [`crate::trace::HbRecorder::take`] and the trace JSON
/// preserve); threads may otherwise interleave arbitrarily.
pub fn analyze(events: &[HbEvent]) -> Vec<Diagnostic> {
    let mut diags: Vec<Diagnostic> = Vec::new();
    let n = events.len();

    // ---- Thread discovery + program order -------------------------------
    let mut thread_ids: HashMap<(u32, u32), usize> = HashMap::new();
    let mut thread_of: Vec<usize> = Vec::with_capacity(n);
    let mut pos_in_thread: Vec<u32> = Vec::with_capacity(n);
    let mut epoch: Vec<u32> = Vec::with_capacity(n);
    let mut last_of_thread: Vec<Option<usize>> = Vec::new();
    let mut epoch_of_thread: Vec<u32> = Vec::new();
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, e) in events.iter().enumerate() {
        let next_tid = thread_ids.len();
        let tid = *thread_ids.entry((e.block, e.core)).or_insert(next_tid);
        if tid == last_of_thread.len() {
            last_of_thread.push(None);
            epoch_of_thread.push(0);
        }
        thread_of.push(tid);
        if let Some(prev) = last_of_thread[tid] {
            pos_in_thread.push(pos_in_thread[prev] + 1);
            preds[i].push(prev);
        } else {
            pos_in_thread.push(0);
        }
        last_of_thread[tid] = Some(i);
        epoch.push(epoch_of_thread[tid]);
        if matches!(e.action, HbAction::Barrier { .. }) {
            epoch_of_thread[tid] += 1;
        }
    }
    let nthreads = thread_ids.len();

    // ---- Sync edges ------------------------------------------------------
    // Flag token pairing: (block, token) -> set / wait node.
    let mut flag_sets: HashMap<(u32, u64), usize> = HashMap::new();
    let mut flag_waits: HashMap<(u32, u64), usize> = HashMap::new();
    // Grid (launch-wide) flag pairing: tokens are launch-unique, so they
    // pair globally rather than per block.
    let mut grid_sets: HashMap<u64, usize> = HashMap::new();
    let mut grid_waits: HashMap<u64, usize> = HashMap::new();
    // Queue pairing and lints: (block, queue) -> per-kind node lists.
    #[derive(Default)]
    struct QueueInfo {
        created: Vec<usize>,
        destroyed: Vec<usize>,
        enques: Vec<usize>,
        deques: Vec<usize>,
    }
    let mut queues: HashMap<(u32, u32), QueueInfo> = HashMap::new();
    // Barrier rounds: round -> participating event nodes (grid-wide).
    let mut barrier_rounds: HashMap<u32, Vec<usize>> = HashMap::new();
    // Scratchpad allocations: (block, alloc id) -> (alloc node, freed?).
    let mut allocs: HashMap<(u32, u64), (usize, bool)> = HashMap::new();

    // Pre-register every set so a wait can match a set recorded later in
    // the stream (the deadlock shape — the edge then closes an HB cycle).
    for (i, e) in events.iter().enumerate() {
        match e.action {
            HbAction::FlagSet { token, .. } => {
                flag_sets.insert((e.block, token), i);
            }
            HbAction::GridFlagSet { token, .. } => {
                grid_sets.insert(token, i);
            }
            _ => {}
        }
    }
    for (i, e) in events.iter().enumerate() {
        match e.action {
            HbAction::FlagSet { .. } => {}
            HbAction::FlagWait { token, .. } => {
                flag_waits.insert((e.block, token), i);
                match flag_sets.get(&(e.block, token)) {
                    Some(&s) => preds[i].push(s),
                    None => diags.push(Diagnostic {
                        severity: Severity::Error,
                        code: "unmatched-wait",
                        message: format!(
                            "{} consumed flag token {token} that no CrossCoreSetFlag published",
                            place(e)
                        ),
                    }),
                }
            }
            HbAction::GridFlagSet { .. } => {}
            HbAction::GridFlagWait { token, .. } => {
                grid_waits.insert(token, i);
                match grid_sets.get(&token) {
                    Some(&s) => preds[i].push(s),
                    None => diags.push(Diagnostic {
                        severity: Severity::Error,
                        code: "unmatched-wait",
                        message: format!(
                            "{} consumed grid flag token {token} that no GridSetFlag published",
                            place(e)
                        ),
                    }),
                }
            }
            HbAction::Barrier { round } => {
                barrier_rounds.entry(round).or_default().push(i);
            }
            HbAction::QueueCreate { queue } => {
                queues.entry((e.block, queue)).or_default().created.push(i);
            }
            HbAction::Enque { queue } => {
                queues.entry((e.block, queue)).or_default().enques.push(i);
            }
            HbAction::Deque { queue } => {
                queues.entry((e.block, queue)).or_default().deques.push(i);
            }
            HbAction::QueueDestroy { queue } => {
                queues
                    .entry((e.block, queue))
                    .or_default()
                    .destroyed
                    .push(i);
            }
            HbAction::Alloc { id, .. } => {
                allocs.insert((e.block, id), (i, false));
            }
            HbAction::Free { id } => {
                if let Some(slot) = allocs.get_mut(&(e.block, id)) {
                    slot.1 = true;
                }
            }
            HbAction::GmRead { .. } | HbAction::GmWrite { .. } => {}
        }
    }
    // The i-th enque feeds the i-th deque.
    for q in queues.values() {
        for (&enq, &deq) in q.enques.iter().zip(&q.deques) {
            preds[deq].push(enq);
        }
    }
    // Barrier rounds: a virtual join node per round. Each participant's
    // program-order predecessor reaches the join; the join reaches every
    // participant — so pre-barrier work on any thread happens-before
    // post-barrier work on every thread.
    let mut rounds: Vec<(&u32, &Vec<usize>)> = barrier_rounds.iter().collect();
    rounds.sort_by_key(|(r, _)| **r);
    let mut vpreds: Vec<Vec<usize>> = Vec::with_capacity(rounds.len());
    for (_, members) in &rounds {
        let vnode = n + vpreds.len();
        let mut vp = Vec::with_capacity(members.len());
        for &m in *members {
            // The event's in-thread predecessor (first pred, when present).
            if let Some(&prev) = preds[m].first() {
                if thread_of[prev] == thread_of[m] {
                    vp.push(prev);
                }
            }
            preds[m].push(vnode);
        }
        vpreds.push(vp);
    }
    let total_nodes = n + vpreds.len();
    let pred_list = |node: usize| -> &[usize] {
        if node < n {
            &preds[node]
        } else {
            &vpreds[node - n]
        }
    };

    // ---- Vector clocks over a topological order --------------------------
    let mut indegree: Vec<u32> = vec![0; total_nodes];
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); total_nodes];
    for (node, deg) in indegree.iter_mut().enumerate() {
        let node_preds = pred_list(node);
        *deg = node_preds.len() as u32;
        for &p in node_preds {
            succs[p].push(node);
        }
    }
    let mut queue: std::collections::VecDeque<usize> =
        (0..total_nodes).filter(|&v| indegree[v] == 0).collect();
    // clocks[node] = vector clock; clocks[node][t] = number of thread t's
    // events known to happen-before-or-equal this node.
    let mut clocks: Vec<Vec<u32>> = vec![Vec::new(); total_nodes];
    let mut processed = 0usize;
    while let Some(node) = queue.pop_front() {
        processed += 1;
        let mut vc = vec![0u32; nthreads];
        for &p in pred_list(node) {
            for (slot, &v) in vc.iter_mut().zip(&clocks[p]) {
                *slot = (*slot).max(v);
            }
        }
        if node < n {
            vc[thread_of[node]] = pos_in_thread[node] + 1;
        }
        clocks[node] = vc;
        for &s in &succs[node] {
            indegree[s] -= 1;
            if indegree[s] == 0 {
                queue.push_back(s);
            }
        }
    }
    if processed < total_nodes {
        let stuck = (0..n)
            .find(|&v| indegree[v] > 0)
            .map(|v| place(&events[v]))
            .unwrap_or_else(|| "a barrier round".to_string());
        diags.push(Diagnostic {
            severity: Severity::Error,
            code: "hb-cycle",
            message: format!(
                "the synchronization edges contradict program order (deadlock shape) — \
                 cycle through {stuck}"
            ),
        });
        finish(&mut diags);
        return diags;
    }
    // `a happens-before b`: b's clock has seen a's position on a's thread.
    let hb = |a: usize, b: usize| -> bool { a != b && clocks[b][thread_of[a]] > pos_in_thread[a] };

    // ---- GM data races + transfer liveness -------------------------------
    let mut accesses: Vec<Access> = Vec::new();
    for (i, e) in events.iter().enumerate() {
        match e.action {
            HbAction::GmRead { start, end } => accesses.push(Access {
                start,
                end,
                write: false,
                node: i,
            }),
            HbAction::GmWrite { start, end } => accesses.push(Access {
                start,
                end,
                write: true,
                node: i,
            }),
            _ => {}
        }
    }
    accesses.sort_by_key(|a| (a.start, a.end, a.node));
    // Per write: was it overwritten by an HB-later write, and could any
    // reader possibly observe it (a read not ordered before it)?
    let mut overwritten: HashMap<usize, bool> = HashMap::new();
    let mut observed: HashMap<usize, bool> = HashMap::new();
    let mut races: Vec<(usize, usize, u64, u64)> = Vec::new();
    let mut active: Vec<Access> = Vec::new();
    for &cur in &accesses {
        active.retain(|a| a.end > cur.start);
        for a in &active {
            // `a` starts at or before `cur` and ends after cur.start: the
            // pair overlaps on [cur.start, min(end)).
            debug_assert!(a.start <= cur.start && a.end > cur.start);
            match (a.write, cur.write) {
                (true, true) => {
                    if hb(a.node, cur.node) {
                        overwritten.insert(a.node, true);
                    } else if hb(cur.node, a.node) {
                        overwritten.insert(cur.node, true);
                    }
                }
                (true, false) => {
                    if !hb(cur.node, a.node) {
                        observed.insert(a.node, true);
                    }
                }
                (false, true) => {
                    if !hb(a.node, cur.node) {
                        observed.insert(cur.node, true);
                    }
                }
                (false, false) => {}
            }
            let conflicting = a.write || cur.write;
            if conflicting
                && thread_of[a.node] != thread_of[cur.node]
                && !hb(a.node, cur.node)
                && !hb(cur.node, a.node)
            {
                races.push((a.node, cur.node, cur.start, a.end.min(cur.end)));
            }
        }
        active.push(cur);
    }
    races.sort();
    races.dedup();
    for (i, &(a, b, lo, hi)) in races.iter().enumerate() {
        if i == RACE_REPORT_CAP {
            diags.push(Diagnostic {
                severity: Severity::Error,
                code: "gm-race",
                // "GM bytes ..." < "GM race ..." lexicographically, so the
                // capped-report summary sorts after every concrete race.
                message: format!(
                    "GM race report capped: {} more racy access pair(s) suppressed",
                    races.len() - i
                ),
            });
            break;
        }
        let (ea, eb) = (&events[a], &events[b]);
        let kind = |e: &HbEvent| {
            if matches!(e.action, HbAction::GmWrite { .. }) {
                "write"
            } else {
                "read"
            }
        };
        diags.push(Diagnostic {
            severity: Severity::Error,
            code: "gm-race",
            message: format!(
                "GM bytes [{lo}, {hi}): {} by {} races with {} by {} — \
                 no happens-before path orders them",
                kind(ea),
                place(ea),
                kind(eb),
                place(eb),
            ),
        });
    }
    // Dead transfer: a write that some later write (HB-ordered) buries,
    // while no read anywhere could have observed it. Final outputs are
    // read by the host after the launch and are never overwritten, so
    // they are exempt by construction.
    for &a in &accesses {
        if a.write
            && overwritten.get(&a.node).copied().unwrap_or(false)
            && !observed.get(&a.node).copied().unwrap_or(false)
        {
            let e = &events[a.node];
            diags.push(Diagnostic {
                severity: Severity::Warning,
                code: "dead-transfer",
                message: format!(
                    "{} wrote GM bytes [{}, {}) that are overwritten before any \
                     engine could read them",
                    place(e),
                    a.start,
                    a.end
                ),
            });
        }
    }

    // ---- Flag coverage ---------------------------------------------------
    // Group sets per (block, flag id) in token order.
    let mut by_flag: HashMap<(u32, u32), Vec<(u64, usize)>> = HashMap::new();
    for (&(block, token), &node) in &flag_sets {
        if let HbAction::FlagSet { id, .. } = events[node].action {
            by_flag.entry((block, id)).or_default().push((token, node));
        }
    }
    let mut flag_keys: Vec<(u32, u32)> = by_flag.keys().copied().collect();
    flag_keys.sort_unstable();
    for key in flag_keys {
        let sets = by_flag.get_mut(&key).expect("key from map");
        sets.sort_unstable();
        for (si, &(token, node)) in sets.iter().enumerate() {
            let wait = flag_waits.get(&(key.0, token)).copied();
            if wait.is_none() {
                diags.push(Diagnostic {
                    severity: Severity::Warning,
                    code: "flag-leak",
                    message: format!(
                        "{} set flag id {} (token {token}) but no CrossCoreWaitFlag \
                         ever consumed it",
                        place(&events[node]),
                        key.1
                    ),
                });
            }
            // Reuse across barrier rounds: an earlier-epoch set still
            // pending when this one is published aliases two rounds'
            // hand-offs on one physical flag register.
            let reused = sets[..si].iter().find(|&&(t0, n0)| {
                epoch[n0] < epoch[node]
                    && !flag_waits.get(&(key.0, t0)).is_some_and(|&w| hb(w, node))
            });
            if let Some(&(t0, n0)) = reused {
                diags.push(Diagnostic {
                    severity: Severity::Error,
                    code: "flag-reuse",
                    message: format!(
                        "{} reuses flag id {} across barrier rounds: the round-{} set \
                         (token {t0}) by {} is still pending",
                        place(&events[node]),
                        key.1,
                        epoch[n0],
                        place(&events[n0]),
                    ),
                });
            }
        }
    }
    // Grid flags: same coverage lints, but grouped per id launch-wide —
    // the id space is shared by every block in the launch.
    let mut by_grid_id: HashMap<u32, Vec<(u64, usize)>> = HashMap::new();
    for (&token, &node) in &grid_sets {
        if let HbAction::GridFlagSet { id, .. } = events[node].action {
            by_grid_id.entry(id).or_default().push((token, node));
        }
    }
    let mut grid_keys: Vec<u32> = by_grid_id.keys().copied().collect();
    grid_keys.sort_unstable();
    for id in grid_keys {
        let sets = by_grid_id.get_mut(&id).expect("key from map");
        sets.sort_unstable();
        for (si, &(token, node)) in sets.iter().enumerate() {
            if !grid_waits.contains_key(&token) {
                diags.push(Diagnostic {
                    severity: Severity::Warning,
                    code: "flag-leak",
                    message: format!(
                        "{} set grid flag id {id} (token {token}) but no GridWaitFlag \
                         ever consumed it",
                        place(&events[node]),
                    ),
                });
            }
            let reused = sets[..si].iter().find(|&&(t0, n0)| {
                epoch[n0] < epoch[node] && !grid_waits.get(&t0).is_some_and(|&w| hb(w, node))
            });
            if let Some(&(t0, n0)) = reused {
                diags.push(Diagnostic {
                    severity: Severity::Error,
                    code: "flag-reuse",
                    message: format!(
                        "{} reuses grid flag id {id} across barrier rounds: the \
                         round-{} set (token {t0}) by {} is still pending",
                        place(&events[node]),
                        epoch[n0],
                        place(&events[n0]),
                    ),
                });
            }
        }
    }

    // ---- Queue and allocation lints --------------------------------------
    let mut queue_keys: Vec<(u32, u32)> = queues.keys().copied().collect();
    queue_keys.sort_unstable();
    for key in queue_keys {
        let q = &queues[&key];
        let who = q
            .created
            .first()
            .or_else(|| q.enques.first())
            .or_else(|| q.deques.first())
            .map(|&i| place(&events[i]))
            .unwrap_or_else(|| format!("block {} queue {}", key.0, key.1));
        if q.enques.len() != q.deques.len() {
            diags.push(Diagnostic {
                severity: Severity::Warning,
                code: "queue-unbalanced",
                message: format!(
                    "{who}: {} enque(s) vs {} deque(s)",
                    q.enques.len(),
                    q.deques.len()
                ),
            });
        }
        if q.destroyed.len() < q.created.len() {
            diags.push(Diagnostic {
                severity: Severity::Warning,
                code: "queue-leak",
                message: format!("{who}: queue created but never destroyed"),
            });
        }
    }
    let mut leaked: Vec<(usize, u64)> = allocs
        .iter()
        .filter(|&(_, &(_, freed))| !freed)
        .map(|(&(_, id), &(node, _))| (node, id))
        .collect();
    leaked.sort_unstable();
    for (node, id) in leaked {
        let bytes = match events[node].action {
            HbAction::Alloc { bytes, .. } => bytes,
            _ => 0,
        };
        diags.push(Diagnostic {
            severity: Severity::Warning,
            code: "alloc-leak",
            message: format!(
                "{} allocated {bytes} B (alloc id {id}) that are never freed",
                place(&events[node])
            ),
        });
    }

    finish(&mut diags);
    diags
}

/// Deterministic final order: errors first, then by code and message.
fn finish(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| (a.severity, a.code, &a.message).cmp(&(b.severity, b.code, &b.message)));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(block: u32, core: u32, time: u64, what: &'static str, action: HbAction) -> HbEvent {
        HbEvent {
            block,
            core,
            time,
            what,
            action,
        }
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn empty_schedule_is_clean() {
        assert!(analyze(&[]).is_empty());
    }

    #[test]
    fn unordered_conflicting_accesses_race() {
        // Two blocks write the same GM range with no sync edge at all.
        let events = [
            ev(
                0,
                1,
                10,
                "DataCopy",
                HbAction::GmWrite { start: 0, end: 64 },
            ),
            ev(
                1,
                1,
                10,
                "DataCopy",
                HbAction::GmWrite { start: 32, end: 96 },
            ),
        ];
        let diags = analyze(&events);
        assert_eq!(codes(&diags), ["gm-race"]);
        assert!(diags[0].message.contains("[32, 64)"));
        assert_eq!(diags[0].severity, Severity::Error);
        // Read vs read never conflicts.
        let reads = [
            ev(0, 1, 10, "DataCopy", HbAction::GmRead { start: 0, end: 64 }),
            ev(1, 1, 10, "DataCopy", HbAction::GmRead { start: 0, end: 64 }),
        ];
        assert!(analyze(&reads).is_empty());
        // Disjoint ranges never conflict.
        let disjoint = [
            ev(
                0,
                1,
                10,
                "DataCopy",
                HbAction::GmWrite { start: 0, end: 64 },
            ),
            ev(
                1,
                1,
                10,
                "DataCopy",
                HbAction::GmWrite {
                    start: 64,
                    end: 128,
                },
            ),
        ];
        assert!(analyze(&disjoint).is_empty());
    }

    #[test]
    fn same_thread_program_order_is_not_a_race() {
        let events = [
            ev(
                0,
                1,
                10,
                "DataCopy",
                HbAction::GmWrite { start: 0, end: 64 },
            ),
            ev(0, 1, 20, "DataCopy", HbAction::GmRead { start: 0, end: 64 }),
        ];
        assert!(analyze(&events).is_empty());
    }

    #[test]
    fn flag_edge_orders_cross_core_handoff() {
        // Producer writes, sets a flag; consumer waits then reads: clean.
        let events = [
            ev(
                0,
                0,
                10,
                "DataCopy",
                HbAction::GmWrite { start: 0, end: 64 },
            ),
            ev(
                0,
                0,
                16,
                "CrossCoreSetFlag",
                HbAction::FlagSet { id: 0, token: 0 },
            ),
            ev(
                0,
                1,
                40,
                "CrossCoreWaitFlag",
                HbAction::FlagWait { id: 0, token: 0 },
            ),
            ev(0, 1, 50, "DataCopy", HbAction::GmRead { start: 0, end: 64 }),
        ];
        assert!(analyze(&events).is_empty());
        // Without the flag pair, the same accesses race.
        let racy = [events[0], events[3]];
        assert_eq!(codes(&analyze(&racy)), ["gm-race"]);
    }

    #[test]
    fn grid_flag_edge_orders_cross_block_lookback() {
        // Block 0 writes its mailbox, publishes a grid flag; block 1
        // waits on the token then reads the mailbox: clean — the
        // chained look-back hand-off needs no barrier.
        let events = [
            ev(0, 1, 10, "DataCopy", HbAction::GmWrite { start: 0, end: 4 }),
            ev(
                0,
                1,
                16,
                "GridSetFlag",
                HbAction::GridFlagSet { id: 0, token: 0 },
            ),
            ev(
                1,
                1,
                40,
                "GridWaitFlag",
                HbAction::GridFlagWait { id: 0, token: 0 },
            ),
            ev(1, 1, 50, "DataCopy", HbAction::GmRead { start: 0, end: 4 }),
        ];
        assert!(analyze(&events).is_empty());
        // Without the grid flag pair the same mailbox accesses race.
        let racy = [events[0], events[3]];
        assert_eq!(codes(&analyze(&racy)), ["gm-race"]);
    }

    #[test]
    fn grid_flag_tokens_pair_launch_wide() {
        // Tokens are launch-unique: block 2 consuming block 0's token is
        // a valid pairing even though the blocks differ (unlike
        // per-block flags, which pair within one block).
        let events = [
            ev(
                0,
                1,
                10,
                "GridSetFlag",
                HbAction::GridFlagSet { id: 3, token: 7 },
            ),
            ev(
                2,
                1,
                40,
                "GridWaitFlag",
                HbAction::GridFlagWait { id: 3, token: 7 },
            ),
        ];
        assert!(analyze(&events).is_empty());
    }

    #[test]
    fn grid_flag_coverage_diagnostics() {
        // A grid set nobody consumes leaks (e.g. a look-back chain whose
        // tail lane publishes although no successor exists).
        let leak = [ev(
            0,
            1,
            10,
            "GridSetFlag",
            HbAction::GridFlagSet { id: 2, token: 0 },
        )];
        let diags = analyze(&leak);
        assert_eq!(codes(&diags), ["flag-leak"]);
        assert!(diags[0].message.contains("grid flag id 2"));
        // A grid wait consuming an unpublished token is an error.
        let orphan = [ev(
            1,
            1,
            10,
            "GridWaitFlag",
            HbAction::GridFlagWait { id: 2, token: 9 },
        )];
        let diags = analyze(&orphan);
        assert_eq!(codes(&diags), ["unmatched-wait"]);
        assert!(diags[0].message.contains("GridSetFlag"));
    }

    #[test]
    fn barrier_round_orders_all_threads() {
        // Block 0 writes before the barrier; block 1 reads after: clean.
        let events = [
            ev(
                0,
                1,
                10,
                "DataCopy",
                HbAction::GmWrite { start: 0, end: 64 },
            ),
            ev(0, 1, 30, "SyncAll", HbAction::Barrier { round: 0 }),
            ev(1, 1, 30, "SyncAll", HbAction::Barrier { round: 0 }),
            ev(1, 1, 40, "DataCopy", HbAction::GmRead { start: 0, end: 64 }),
        ];
        assert!(analyze(&events).is_empty());
        // Reading on the *pre*-barrier side of another thread races.
        let racy = [
            ev(
                0,
                1,
                10,
                "DataCopy",
                HbAction::GmWrite { start: 0, end: 64 },
            ),
            ev(0, 1, 30, "SyncAll", HbAction::Barrier { round: 0 }),
            ev(1, 1, 5, "DataCopy", HbAction::GmRead { start: 0, end: 64 }),
            ev(1, 1, 30, "SyncAll", HbAction::Barrier { round: 0 }),
        ];
        assert_eq!(codes(&analyze(&racy)), ["gm-race"]);
    }

    #[test]
    fn queue_edges_pair_fifo() {
        let events = [
            ev(0, 1, 5, "q", HbAction::QueueCreate { queue: 0 }),
            ev(0, 1, 10, "q", HbAction::Enque { queue: 0 }),
            ev(0, 1, 20, "q", HbAction::Deque { queue: 0 }),
            ev(0, 1, 30, "q", HbAction::QueueDestroy { queue: 0 }),
        ];
        assert!(analyze(&events).is_empty());
    }

    #[test]
    fn queue_lints_fire() {
        let unbalanced = [
            ev(0, 1, 5, "q", HbAction::QueueCreate { queue: 0 }),
            ev(0, 1, 10, "q", HbAction::Enque { queue: 0 }),
            ev(0, 1, 30, "q", HbAction::QueueDestroy { queue: 0 }),
        ];
        assert_eq!(codes(&analyze(&unbalanced)), ["queue-unbalanced"]);
        let leaked = [ev(0, 1, 5, "q", HbAction::QueueCreate { queue: 0 })];
        assert_eq!(codes(&analyze(&leaked)), ["queue-leak"]);
    }

    #[test]
    fn flag_coverage_diagnostics() {
        // A set nobody consumes leaks.
        let leak = [ev(
            0,
            0,
            10,
            "CrossCoreSetFlag",
            HbAction::FlagSet { id: 2, token: 0 },
        )];
        let diags = analyze(&leak);
        assert_eq!(codes(&diags), ["flag-leak"]);
        assert_eq!(diags[0].severity, Severity::Warning);
        // A wait consuming an unpublished token is an error.
        let orphan = [ev(
            0,
            1,
            10,
            "CrossCoreWaitFlag",
            HbAction::FlagWait { id: 2, token: 9 },
        )];
        let diags = analyze(&orphan);
        assert_eq!(codes(&diags), ["unmatched-wait"]);
        assert_eq!(diags[0].severity, Severity::Error);
    }

    #[test]
    fn flag_reuse_across_rounds_is_flagged() {
        // Round 0 publishes id 4; nobody consumes it before round 1
        // publishes id 4 again — two rounds alias one register.
        let events = [
            ev(
                0,
                0,
                10,
                "CrossCoreSetFlag",
                HbAction::FlagSet { id: 4, token: 0 },
            ),
            ev(0, 0, 30, "SyncAll", HbAction::Barrier { round: 0 }),
            ev(0, 1, 30, "SyncAll", HbAction::Barrier { round: 0 }),
            ev(
                0,
                0,
                40,
                "CrossCoreSetFlag",
                HbAction::FlagSet { id: 4, token: 1 },
            ),
            ev(
                0,
                1,
                60,
                "CrossCoreWaitFlag",
                HbAction::FlagWait { id: 4, token: 0 },
            ),
            ev(
                0,
                1,
                70,
                "CrossCoreWaitFlag",
                HbAction::FlagWait { id: 4, token: 1 },
            ),
        ];
        let diags = analyze(&events);
        assert_eq!(codes(&diags), ["flag-reuse"]);
        assert!(diags[0].message.contains("flag id 4"));
        // Same shape but the old set is consumed before the new round's
        // set: clean (pipelined same-epoch reuse stays legal too).
        let clean = [
            ev(
                0,
                0,
                10,
                "CrossCoreSetFlag",
                HbAction::FlagSet { id: 4, token: 0 },
            ),
            ev(
                0,
                1,
                20,
                "CrossCoreWaitFlag",
                HbAction::FlagWait { id: 4, token: 0 },
            ),
            ev(0, 0, 30, "SyncAll", HbAction::Barrier { round: 0 }),
            ev(0, 1, 30, "SyncAll", HbAction::Barrier { round: 0 }),
            ev(
                0,
                0,
                40,
                "CrossCoreSetFlag",
                HbAction::FlagSet { id: 4, token: 1 },
            ),
            ev(
                0,
                1,
                60,
                "CrossCoreWaitFlag",
                HbAction::FlagWait { id: 4, token: 1 },
            ),
        ];
        assert!(analyze(&clean).is_empty());
    }

    #[test]
    fn pipelined_same_epoch_flag_cycling_is_legal() {
        // The producer runs several sets ahead on one id (counting
        // semaphore); the consumer drains in FIFO order. No barrier in
        // between — no reuse error, no leak.
        let mut events = Vec::new();
        for t in 0..6u64 {
            events.push(ev(
                0,
                0,
                10 + t,
                "CrossCoreSetFlag",
                HbAction::FlagSet {
                    id: (t % 2) as u32,
                    token: t,
                },
            ));
        }
        for t in 0..6u64 {
            events.push(ev(
                0,
                1,
                100 + t,
                "CrossCoreWaitFlag",
                HbAction::FlagWait {
                    id: (t % 2) as u32,
                    token: t,
                },
            ));
        }
        assert!(analyze(&events).is_empty());
    }

    #[test]
    fn hb_cycle_is_detected() {
        // One thread waits on a token whose set comes later in its own
        // program order — the canonical self-deadlock shape.
        let events = [
            ev(
                0,
                0,
                10,
                "CrossCoreWaitFlag",
                HbAction::FlagWait { id: 0, token: 0 },
            ),
            ev(
                0,
                0,
                20,
                "CrossCoreSetFlag",
                HbAction::FlagSet { id: 0, token: 0 },
            ),
        ];
        let diags = analyze(&events);
        assert_eq!(codes(&diags), ["hb-cycle"]);
        assert_eq!(diags[0].severity, Severity::Error);
    }

    #[test]
    fn alloc_leak_is_flagged() {
        let leak = [ev(
            0,
            1,
            10,
            "AllocLocal",
            HbAction::Alloc { id: 7, bytes: 256 },
        )];
        let diags = analyze(&leak);
        assert_eq!(codes(&diags), ["alloc-leak"]);
        assert!(diags[0].message.contains("256 B"));
        let paired = [
            ev(
                0,
                1,
                10,
                "AllocLocal",
                HbAction::Alloc { id: 7, bytes: 256 },
            ),
            ev(0, 1, 20, "FreeLocal", HbAction::Free { id: 7 }),
        ];
        assert!(analyze(&paired).is_empty());
    }

    #[test]
    fn dead_transfer_requires_no_possible_reader() {
        // Write buried by an ordered overwrite with no read: dead.
        let dead = [
            ev(
                0,
                1,
                10,
                "DataCopy",
                HbAction::GmWrite { start: 0, end: 64 },
            ),
            ev(
                0,
                1,
                20,
                "DataCopy",
                HbAction::GmWrite { start: 0, end: 64 },
            ),
        ];
        let diags = analyze(&dead);
        assert_eq!(codes(&diags), ["dead-transfer"]);
        assert!(diags[0].message.contains("@10"));
        // An intervening read keeps the first write live.
        let live = [
            ev(
                0,
                1,
                10,
                "DataCopy",
                HbAction::GmWrite { start: 0, end: 64 },
            ),
            ev(0, 1, 15, "DataCopy", HbAction::GmRead { start: 0, end: 64 }),
            ev(
                0,
                1,
                20,
                "DataCopy",
                HbAction::GmWrite { start: 0, end: 64 },
            ),
        ];
        assert!(analyze(&live).is_empty());
        // A final (never overwritten) output is not dead even unread.
        let final_out = [ev(
            0,
            1,
            10,
            "DataCopy",
            HbAction::GmWrite { start: 0, end: 64 },
        )];
        assert!(analyze(&final_out).is_empty());
    }

    #[test]
    fn race_report_is_capped_and_deterministic() {
        // 30 blocks all write the same range: many pairwise races.
        let events: Vec<HbEvent> = (0..30)
            .map(|b| ev(b, 1, 10, "DataCopy", HbAction::GmWrite { start: 0, end: 8 }))
            .collect();
        let d1 = analyze(&events);
        let d2 = analyze(&events);
        assert_eq!(d1, d2, "diagnostics replay identically");
        assert_eq!(d1.len(), RACE_REPORT_CAP + 1);
        assert!(d1.iter().any(|d| d.message.contains("more racy")));
    }

    #[test]
    fn diagnostics_order_errors_first() {
        let events = [
            // A leaked alloc (warning)...
            ev(0, 1, 5, "AllocLocal", HbAction::Alloc { id: 1, bytes: 64 }),
            // ...and a race (error).
            ev(0, 1, 10, "DataCopy", HbAction::GmWrite { start: 0, end: 8 }),
            ev(1, 1, 10, "DataCopy", HbAction::GmWrite { start: 0, end: 8 }),
        ];
        let diags = analyze(&events);
        assert_eq!(codes(&diags), ["gm-race", "alloc-leak"]);
        assert!(diags[0].to_string().starts_with("error[gm-race]"));
        assert!(diags[1].to_string().starts_with("warning[alloc-leak]"));
    }
}
