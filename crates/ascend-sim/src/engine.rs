//! Engine kinds of a DaVinci core.

use std::fmt;

/// The hardware execution engines inside an AIC/AIV core.
///
/// Each engine has its own instruction queue; instructions on different
/// engines execute concurrently and are ordered only by explicit data
/// dependencies (the AscendC queue model). Instructions on the *same*
/// engine serialize in issue order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// Inbound Memory Transfer Engine: GM → local buffers (and GM → L1).
    Mte2,
    /// Cube-core internal transfer engine: L1 → L0A/L0B.
    Mte1,
    /// Outbound Memory Transfer Engine: local buffers → GM.
    Mte3,
    /// Fixed-point/format pipe: L0C → GM result write-out (cube cores).
    Fixp,
    /// The cube (matrix multiply) engine.
    Cube,
    /// The vector (SIMD) engine.
    Vec,
    /// The scalar unit (address arithmetic, loop control, scalar ops).
    /// Cross-core synchronization instructions — `CrossCoreSetFlag` /
    /// `CrossCoreWaitFlag` and the per-core arrival/release legs of
    /// `SyncAll` — issue here: the scalar pipe drains the preceding
    /// engine queues and publishes (or polls) the flag.
    Scalar,
}

impl EngineKind {
    /// The engine cross-core flag instructions issue on.
    pub const FLAG_ENGINE: EngineKind = EngineKind::Scalar;

    /// All engine kinds, in a fixed order (used for utilization reports).
    pub const ALL: [EngineKind; 7] = [
        EngineKind::Mte2,
        EngineKind::Mte1,
        EngineKind::Mte3,
        EngineKind::Fixp,
        EngineKind::Cube,
        EngineKind::Vec,
        EngineKind::Scalar,
    ];

    /// Dense index of this engine kind (for array-backed maps).
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            EngineKind::Mte2 => 0,
            EngineKind::Mte1 => 1,
            EngineKind::Mte3 => 2,
            EngineKind::Fixp => 3,
            EngineKind::Cube => 4,
            EngineKind::Vec => 5,
            EngineKind::Scalar => 6,
        }
    }

    /// The engine's conventional name.
    pub const fn name(self) -> &'static str {
        match self {
            EngineKind::Mte2 => "MTE2",
            EngineKind::Mte1 => "MTE1",
            EngineKind::Mte3 => "MTE3",
            EngineKind::Fixp => "FIXP",
            EngineKind::Cube => "CUBE",
            EngineKind::Vec => "VEC",
            EngineKind::Scalar => "SCALAR",
        }
    }
}

impl fmt::Display for EngineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_unique() {
        let mut seen = [false; 7];
        for e in EngineKind::ALL {
            assert!(!seen[e.index()], "duplicate index for {e}");
            seen[e.index()] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn names() {
        assert_eq!(EngineKind::Cube.to_string(), "CUBE");
        assert_eq!(EngineKind::Mte2.name(), "MTE2");
    }
}
