//! Execution-trace capture and chrome://tracing export.
//!
//! When tracing is enabled on a core's timeline, every instruction's
//! engine occupancy interval is recorded. [`to_chrome_json`] renders the
//! collected events in the Chrome Trace Event format — open the file at
//! `chrome://tracing` (or https://ui.perfetto.dev) to inspect how the
//! cube, vector, MTE and scalar engines of every core overlap, where
//! double buffering hides transfers, and what the critical path is.

use crate::engine::EngineKind;
use crate::error::{SimError, SimResult};

/// One engine-occupancy interval.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Block index the core belongs to.
    pub block: u32,
    /// Core index within the block (0 = cube, 1.. = vector cores).
    pub core: u32,
    /// The engine that executed the instruction.
    pub engine: EngineKind,
    /// Start cycle.
    pub start: u64,
    /// End cycle (exclusive).
    pub end: u64,
}

/// Escapes a string for embedding inside a JSON string literal: quotes,
/// backslashes, and control characters are encoded so that a hostile
/// event/span name can never break the document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Audits that the trace never claims one *physical* core's engine is
/// busy in two overlapping intervals.
///
/// When a launch multiplexes more blocks than the chip has AI cores,
/// block `i` time-shares physical core slot `i % phys_blocks`; a block
/// that migrates onto a slot must only emit busy intervals after the
/// previous tenant's last interval on that engine ended. An overlap
/// means the exported trace double-books silicon — rendering tools
/// display it as impossible parallelism and occupancy sums exceed 100%.
///
/// `phys_blocks` is the number of physical block slots
/// (`min(blocks, ai_cores)`); event order does not matter — intervals
/// are sorted per slot before checking.
pub fn audit_physical_occupancy(events: &[TraceEvent], phys_blocks: u32) -> SimResult<()> {
    /// One (slot, core, engine) stream of (start, end, block) intervals.
    type SlotStreams = std::collections::HashMap<(u32, u32, usize), Vec<(u64, u64, u32)>>;
    let phys = phys_blocks.max(1);
    let mut streams: SlotStreams = std::collections::HashMap::new();
    for e in events {
        streams
            .entry((e.block % phys, e.core, e.engine.index()))
            .or_default()
            .push((e.start, e.end, e.block));
    }
    for ((slot, core, engine), mut iv) in streams {
        iv.sort_unstable();
        for w in iv.windows(2) {
            let (prev_start, prev_end, prev_block) = w[0];
            let (start, end, block) = w[1];
            if start < prev_end && prev_start < end {
                return Err(SimError::AccountingViolation {
                    what: "physical core occupancy",
                    detail: format!(
                        "slot {slot} core {core} engine {}: block {block} busy [{start}, {end}) \
                         overlaps block {prev_block}'s interval [{prev_start}, {prev_end})",
                        EngineKind::ALL[engine].name(),
                    ),
                });
            }
        }
    }
    Ok(())
}

/// Renders events as a Chrome Trace Event JSON document.
///
/// `clock_ghz` converts cycles to the microsecond timestamps the format
/// expects. Tracks: one *process* per block, one *thread* per
/// (core, engine) pair. All names pass through [`json_escape`].
pub fn to_chrome_json(events: &[TraceEvent], clock_ghz: f64) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 64);
    out.push_str("{\"traceEvents\":[");
    let to_us = |cycles: u64| cycles as f64 / (clock_ghz * 1e3);
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let core_name = if e.core == 0 {
            "cube".to_string()
        } else {
            format!("vec{}", e.core - 1)
        };
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":{},\"tid\":\"{}.{}\"}}",
            json_escape(e.engine.name()),
            to_us(e.start),
            to_us(e.end.saturating_sub(e.start)).max(0.001),
            e.block,
            json_escape(&core_name),
            json_escape(e.engine.name()),
        ));
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chrome_json_is_well_formed() {
        let events = vec![
            TraceEvent {
                block: 0,
                core: 0,
                engine: EngineKind::Cube,
                start: 100,
                end: 612,
            },
            TraceEvent {
                block: 0,
                core: 1,
                engine: EngineKind::Vec,
                start: 612,
                end: 661,
            },
            TraceEvent {
                block: 1,
                core: 2,
                engine: EngineKind::Mte2,
                start: 0,
                end: 320,
            },
        ];
        let json = to_chrome_json(&events, 1.0);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 3);
        assert!(json.contains("\"tid\":\"cube.CUBE\""));
        assert!(json.contains("\"tid\":\"vec0.VEC\""));
        assert!(json.contains("\"tid\":\"vec1.MTE2\""));
        // 1 GHz: 512 cycles = 0.512 us.
        assert!(json.contains("\"dur\":0.512"));
    }

    #[test]
    fn physical_occupancy_rejects_double_booked_slots() {
        let ev = |block, start, end| TraceEvent {
            block,
            core: 0,
            engine: EngineKind::Vec,
            start,
            end,
        };
        // Two waves on 2 physical slots: blocks 0 and 2 share slot 0.
        // Block 2 runs strictly after block 0 — fine.
        let ok = [
            ev(0, 100, 200),
            ev(1, 100, 180),
            ev(2, 200, 300),
            ev(3, 180, 250),
        ];
        assert!(audit_physical_occupancy(&ok, 2).is_ok());
        // Regression: a migrated block whose interval overlaps the
        // previous tenant of the same slot double-books the silicon.
        let bad = [ev(0, 100, 200), ev(2, 150, 250)];
        let err = audit_physical_occupancy(&bad, 2).unwrap_err();
        assert!(matches!(err, SimError::AccountingViolation { .. }));
        assert!(err.to_string().contains("slot 0"));
        // The same intervals on distinct slots are concurrent, not
        // double-booked.
        assert!(audit_physical_occupancy(&bad, 4).is_ok());
        // Event order must not matter.
        let bad_rev = [ev(2, 150, 250), ev(0, 100, 200)];
        assert!(audit_physical_occupancy(&bad_rev, 2).is_err());
    }

    #[test]
    fn empty_trace() {
        assert_eq!(to_chrome_json(&[], 1.8), "{\"traceEvents\":[]}");
    }

    #[test]
    fn hostile_names_are_escaped() {
        let hostile = "a\"b\\c\nd\re\tf\u{1}g";
        let escaped = json_escape(hostile);
        assert_eq!(escaped, "a\\\"b\\\\c\\nd\\re\\tf\\u0001g");
        // No raw control characters or unescaped quotes survive.
        assert!(!escaped.chars().any(|c| (c as u32) < 0x20));
        // Round-trip safety: embedding the escaped name keeps a JSON
        // string literal well formed (balanced, single-quoted-span).
        let doc = format!("{{\"name\":\"{escaped}\"}}");
        let bytes = doc.as_bytes();
        let mut in_string = false;
        let mut escaped_next = false;
        let mut depth = 0i32;
        for &b in bytes {
            if escaped_next {
                escaped_next = false;
                continue;
            }
            match b {
                b'\\' if in_string => escaped_next = true,
                b'"' => in_string = !in_string,
                b'{' if !in_string => depth += 1,
                b'}' if !in_string => depth -= 1,
                _ => {}
            }
        }
        assert!(!in_string, "unterminated string in {doc}");
        assert_eq!(depth, 0, "unbalanced braces in {doc}");
    }

    #[test]
    fn plain_names_pass_through_unchanged() {
        assert_eq!(json_escape("MTE2"), "MTE2");
        assert_eq!(json_escape("Phase I (tile scans)"), "Phase I (tile scans)");
    }
}
