//! Execution-trace capture and chrome://tracing export.
//!
//! When tracing is enabled on a core's timeline, every instruction's
//! engine occupancy interval is recorded. [`to_chrome_json`] renders the
//! collected events in the Chrome Trace Event format — open the file at
//! `chrome://tracing` (or https://ui.perfetto.dev) to inspect how the
//! cube, vector, MTE and scalar engines of every core overlap, where
//! double buffering hides transfers, and what the critical path is.

use crate::engine::EngineKind;
use crate::error::{SimError, SimResult};
use std::cell::RefCell;
use std::rc::Rc;

/// One engine-occupancy interval.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Block index the core belongs to.
    pub block: u32,
    /// Core index within the block (0 = cube, 1.. = vector cores).
    pub core: u32,
    /// The engine that executed the instruction.
    pub engine: EngineKind,
    /// Start cycle.
    pub start: u64,
    /// End cycle (exclusive).
    pub end: u64,
}

/// One happens-before-relevant action recorded during a launch — the
/// raw material of the `hb` module's schedule analysis. All byte
/// addresses are absolute GM offsets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HbAction {
    /// An engine read GM bytes `[start, end)`.
    GmRead {
        /// First byte offset of the access.
        start: u64,
        /// One past the last byte of the access.
        end: u64,
    },
    /// An engine wrote GM bytes `[start, end)`.
    GmWrite {
        /// First byte offset of the access.
        start: u64,
        /// One past the last byte of the access.
        end: u64,
    },
    /// `CrossCoreSetFlag`: published the set with the given token.
    FlagSet {
        /// The flag id.
        id: u32,
        /// The set's unique token within the block's flag file.
        token: u64,
    },
    /// `CrossCoreWaitFlag`: consumed the set with the given token.
    FlagWait {
        /// The flag id.
        id: u32,
        /// Token of the consumed set.
        token: u64,
    },
    /// `GridSetFlag`: published a launch-wide mailbox flag set with the
    /// given token (the chained look-back protocol's publish step).
    GridFlagSet {
        /// The grid flag id.
        id: u32,
        /// The set's launch-unique token.
        token: u64,
    },
    /// `GridWaitFlag`: consumed the launch-wide set with the given token.
    GridFlagWait {
        /// The grid flag id.
        id: u32,
        /// Token of the consumed set.
        token: u64,
    },
    /// The core participated in `SyncAll` barrier round `round`.
    Barrier {
        /// Zero-based barrier round within the launch.
        round: u32,
    },
    /// A `TQue` was created.
    QueueCreate {
        /// Launch-unique queue id.
        queue: u32,
    },
    /// A tensor was enqueued on a `TQue`.
    Enque {
        /// The queue's id.
        queue: u32,
    },
    /// A tensor was dequeued from a `TQue`.
    Deque {
        /// The queue's id.
        queue: u32,
    },
    /// A `TQue` was destroyed.
    QueueDestroy {
        /// The queue's id.
        queue: u32,
    },
    /// A local scratchpad buffer was allocated.
    Alloc {
        /// The allocation's unique id.
        id: u64,
        /// Allocation size in bytes.
        bytes: u64,
    },
    /// A local scratchpad buffer was freed.
    Free {
        /// The allocation's unique id.
        id: u64,
    },
}

/// One recorded happens-before event. Events of the same `(block, core)`
/// pair are in program order within the harvested event list.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HbEvent {
    /// Block index the event belongs to.
    pub block: u32,
    /// Core index within the block (0 = cube, 1.. = vector cores).
    pub core: u32,
    /// Completion cycle of the instruction that produced the event.
    pub time: u64,
    /// The instruction or operation name (e.g. "DataCopy", "Mmad").
    pub what: &'static str,
    /// What happened.
    pub action: HbAction,
}

/// Shared recorder for happens-before events on one core. Cloning shares
/// the underlying buffer, so a `TQue` created on a core appends into the
/// same program-order stream. Disabled recorders make every call a no-op
/// — kernels record unconditionally at zero cost.
#[derive(Clone, Debug, Default)]
pub struct HbRecorder(Option<HbLog>);

/// The shared program-order event buffer behind an enabled recorder.
type HbLog = Rc<RefCell<Vec<(u64, &'static str, HbAction)>>>;

impl HbRecorder {
    /// A recorder that drops everything.
    pub fn disabled() -> Self {
        HbRecorder(None)
    }

    /// A recorder that keeps events.
    pub fn enabled() -> Self {
        HbRecorder(Some(Rc::new(RefCell::new(Vec::new()))))
    }

    /// Whether events are being kept.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Appends one event (no-op when disabled).
    pub fn record(&self, time: u64, what: &'static str, action: HbAction) {
        if let Some(buf) = &self.0 {
            buf.borrow_mut().push((time, what, action));
        }
    }

    /// Drains the recorded events, stamping them with their block/core
    /// identity.
    pub fn take(&self, block: u32, core: u32) -> Vec<HbEvent> {
        match &self.0 {
            None => Vec::new(),
            Some(buf) => buf
                .borrow_mut()
                .drain(..)
                .map(|(time, what, action)| HbEvent {
                    block,
                    core,
                    time,
                    what,
                    action,
                })
                .collect(),
        }
    }
}

/// Renders happens-before events as a JSON array (the `"hbEvents"` value
/// of the `ascend-trace/v1` schema). Lossless: [`parse_hb_json`] inverts
/// it.
pub fn hb_events_json(events: &[HbEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 2);
    out.push('[');
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"block\":{},\"core\":{},\"time\":{},\"what\":\"{}\",",
            e.block,
            e.core,
            e.time,
            json_escape(e.what)
        ));
        let action = match e.action {
            HbAction::GmRead { start, end } => {
                format!("\"action\":\"gmRead\",\"start\":{start},\"end\":{end}")
            }
            HbAction::GmWrite { start, end } => {
                format!("\"action\":\"gmWrite\",\"start\":{start},\"end\":{end}")
            }
            HbAction::FlagSet { id, token } => {
                format!("\"action\":\"flagSet\",\"id\":{id},\"token\":{token}")
            }
            HbAction::FlagWait { id, token } => {
                format!("\"action\":\"flagWait\",\"id\":{id},\"token\":{token}")
            }
            HbAction::GridFlagSet { id, token } => {
                format!("\"action\":\"gridFlagSet\",\"id\":{id},\"token\":{token}")
            }
            HbAction::GridFlagWait { id, token } => {
                format!("\"action\":\"gridFlagWait\",\"id\":{id},\"token\":{token}")
            }
            HbAction::Barrier { round } => format!("\"action\":\"barrier\",\"round\":{round}"),
            HbAction::QueueCreate { queue } => {
                format!("\"action\":\"queueCreate\",\"queue\":{queue}")
            }
            HbAction::Enque { queue } => format!("\"action\":\"enque\",\"queue\":{queue}"),
            HbAction::Deque { queue } => format!("\"action\":\"deque\",\"queue\":{queue}"),
            HbAction::QueueDestroy { queue } => {
                format!("\"action\":\"queueDestroy\",\"queue\":{queue}")
            }
            HbAction::Alloc { id, bytes } => {
                format!("\"action\":\"alloc\",\"id\":{id},\"bytes\":{bytes}")
            }
            HbAction::Free { id } => format!("\"action\":\"free\",\"id\":{id}"),
        };
        out.push_str(&action);
        out.push('}');
    }
    out.push(']');
    out
}

/// Reverses [`json_escape`] for one string-literal body.
fn json_unescape(s: &str) -> Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('/') => out.push('/'),
            Some('u') => {
                let hex: String = (0..4).filter_map(|_| chars.next()).collect();
                if hex.len() != 4 {
                    return Err(format!("truncated \\u escape in {s:?}"));
                }
                let code =
                    u32::from_str_radix(&hex, 16).map_err(|e| format!("bad \\u{hex}: {e}"))?;
                out.push(char::from_u32(code).ok_or_else(|| format!("bad code point {code}"))?);
            }
            other => return Err(format!("bad escape \\{other:?} in {s:?}")),
        }
    }
    Ok(out)
}

/// Parses happens-before events back out of a JSON document — either a
/// bare [`hb_events_json`] array or a full `ascend-trace/v1` profile
/// document carrying an `"hbEvents"` key. Hand-rolled (the repo has no
/// JSON dependency); tolerates arbitrary escaped content inside string
/// values.
pub fn parse_hb_json(doc: &str) -> Result<Vec<HbEvent>, String> {
    // Locate the array. `json_escape` never leaves a raw quote inside a
    // string body, so the literal key below cannot occur inside one.
    let body = match doc.find("\"hbEvents\":") {
        Some(pos) => &doc[pos + "\"hbEvents\":".len()..],
        None => doc,
    };
    let start = body
        .find('[')
        .ok_or_else(|| "no hbEvents array found".to_string())?;
    let bytes = body[start + 1..].char_indices();

    // Split the array into top-level `{...}` object slices, honouring
    // string literals.
    let mut objects: Vec<&str> = Vec::new();
    let mut depth = 0usize;
    let mut obj_start = None;
    let mut in_string = false;
    let mut escaped = false;
    let mut closed = false;
    let base = start + 1;
    for (i, c) in bytes {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' => {
                if depth == 0 {
                    obj_start = Some(i);
                }
                depth += 1;
            }
            '}' => {
                depth = depth
                    .checked_sub(1)
                    .ok_or_else(|| "unbalanced braces".to_string())?;
                if depth == 0 {
                    let s = obj_start.take().ok_or_else(|| "stray '}'".to_string())?;
                    objects.push(&body[base + s..base + i + c.len_utf8()]);
                }
            }
            ']' if depth == 0 => {
                closed = true;
                break;
            }
            _ => {}
        }
    }
    if !closed {
        return Err("unterminated hbEvents array".to_string());
    }

    // Intern parsed names so `HbEvent::what` stays `&'static str`
    // (recording side uses static literals; the handful of distinct
    // names per document makes the leak bounded).
    let mut interned: std::collections::HashMap<String, &'static str> =
        std::collections::HashMap::new();
    let mut events = Vec::with_capacity(objects.len());
    for obj in objects {
        events.push(parse_hb_object(obj, &mut interned)?);
    }
    Ok(events)
}

/// Parses one `{...}` object of [`hb_events_json`] output.
fn parse_hb_object(
    obj: &str,
    interned: &mut std::collections::HashMap<String, &'static str>,
) -> Result<HbEvent, String> {
    let mut nums: std::collections::HashMap<String, u64> = std::collections::HashMap::new();
    let mut strs: std::collections::HashMap<String, String> = std::collections::HashMap::new();

    let inner = obj
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| format!("not an object: {obj}"))?;
    let mut rest = inner.trim_start();
    while !rest.is_empty() {
        // Key.
        let r = rest
            .strip_prefix('"')
            .ok_or_else(|| format!("expected key in {rest:?}"))?;
        let key_end = scan_string_body(r)?;
        let key = json_unescape(&r[..key_end])?;
        let r = r[key_end + 1..]
            .trim_start()
            .strip_prefix(':')
            .ok_or_else(|| format!("missing ':' after key {key:?}"))?;
        let r = r.trim_start();
        // Value: a string or an unsigned number.
        if let Some(v) = r.strip_prefix('"') {
            let val_end = scan_string_body(v)?;
            strs.insert(key, json_unescape(&v[..val_end])?);
            rest = v[val_end + 1..].trim_start();
        } else {
            let digits: usize = r.chars().take_while(char::is_ascii_digit).count();
            if digits == 0 {
                return Err(format!("expected value for key {key:?} in {obj}"));
            }
            let n: u64 = r[..digits]
                .parse()
                .map_err(|e| format!("bad number for {key:?}: {e}"))?;
            nums.insert(key, n);
            rest = r[digits..].trim_start();
        }
        rest = rest.strip_prefix(',').unwrap_or(rest).trim_start();
    }

    let num = |key: &str| -> Result<u64, String> {
        nums.get(key)
            .copied()
            .ok_or_else(|| format!("missing numeric field {key:?} in {obj}"))
    };
    let num32 = |key: &str| -> Result<u32, String> {
        u32::try_from(num(key)?).map_err(|e| format!("field {key:?} out of range: {e}"))
    };
    let action_kind = strs
        .get("action")
        .ok_or_else(|| format!("missing action in {obj}"))?
        .clone();
    let action = match action_kind.as_str() {
        "gmRead" => HbAction::GmRead {
            start: num("start")?,
            end: num("end")?,
        },
        "gmWrite" => HbAction::GmWrite {
            start: num("start")?,
            end: num("end")?,
        },
        "flagSet" => HbAction::FlagSet {
            id: num32("id")?,
            token: num("token")?,
        },
        "flagWait" => HbAction::FlagWait {
            id: num32("id")?,
            token: num("token")?,
        },
        "gridFlagSet" => HbAction::GridFlagSet {
            id: num32("id")?,
            token: num("token")?,
        },
        "gridFlagWait" => HbAction::GridFlagWait {
            id: num32("id")?,
            token: num("token")?,
        },
        "barrier" => HbAction::Barrier {
            round: num32("round")?,
        },
        "queueCreate" => HbAction::QueueCreate {
            queue: num32("queue")?,
        },
        "enque" => HbAction::Enque {
            queue: num32("queue")?,
        },
        "deque" => HbAction::Deque {
            queue: num32("queue")?,
        },
        "queueDestroy" => HbAction::QueueDestroy {
            queue: num32("queue")?,
        },
        "alloc" => HbAction::Alloc {
            id: num("id")?,
            bytes: num("bytes")?,
        },
        "free" => HbAction::Free { id: num("id")? },
        other => return Err(format!("unknown action {other:?}")),
    };
    let what_owned = strs
        .get("what")
        .ok_or_else(|| format!("missing what in {obj}"))?
        .clone();
    let what: &'static str = match interned.get(&what_owned) {
        Some(s) => s,
        None => {
            let leaked: &'static str = Box::leak(what_owned.clone().into_boxed_str());
            interned.insert(what_owned, leaked);
            leaked
        }
    };
    Ok(HbEvent {
        block: num32("block")?,
        core: num32("core")?,
        time: num("time")?,
        what,
        action,
    })
}

/// Returns the byte index of the closing quote of a string literal body
/// (input starts just after the opening quote).
fn scan_string_body(s: &str) -> Result<usize, String> {
    let mut escaped = false;
    for (i, c) in s.char_indices() {
        if escaped {
            escaped = false;
        } else if c == '\\' {
            escaped = true;
        } else if c == '"' {
            return Ok(i);
        }
    }
    Err(format!("unterminated string in {s:?}"))
}

/// Escapes a string for embedding inside a JSON string literal: quotes,
/// backslashes, and control characters are encoded so that a hostile
/// event/span name can never break the document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Audits that the trace never claims one *physical* core's engine is
/// busy in two overlapping intervals.
///
/// When a launch multiplexes more blocks than the chip has AI cores,
/// block `i` time-shares physical core slot `i % phys_blocks`; a block
/// that migrates onto a slot must only emit busy intervals after the
/// previous tenant's last interval on that engine ended. An overlap
/// means the exported trace double-books silicon — rendering tools
/// display it as impossible parallelism and occupancy sums exceed 100%.
///
/// `phys_blocks` is the number of physical block slots
/// (`min(blocks, ai_cores)`); event order does not matter — intervals
/// are sorted per slot before checking.
pub fn audit_physical_occupancy(events: &[TraceEvent], phys_blocks: u32) -> SimResult<()> {
    /// One (slot, core, engine) stream of (start, end, block) intervals.
    type SlotStreams = std::collections::HashMap<(u32, u32, usize), Vec<(u64, u64, u32)>>;
    let phys = phys_blocks.max(1);
    let mut streams: SlotStreams = std::collections::HashMap::new();
    for e in events {
        streams
            .entry((e.block % phys, e.core, e.engine.index()))
            .or_default()
            .push((e.start, e.end, e.block));
    }
    for ((slot, core, engine), mut iv) in streams {
        iv.sort_unstable();
        for w in iv.windows(2) {
            let (prev_start, prev_end, prev_block) = w[0];
            let (start, end, block) = w[1];
            if start < prev_end && prev_start < end {
                return Err(SimError::AccountingViolation {
                    what: "physical core occupancy",
                    detail: format!(
                        "slot {slot} core {core} engine {}: block {block} busy [{start}, {end}) \
                         overlaps block {prev_block}'s interval [{prev_start}, {prev_end})",
                        EngineKind::ALL[engine].name(),
                    ),
                });
            }
        }
    }
    Ok(())
}

/// Renders events as a Chrome Trace Event JSON document.
///
/// `clock_ghz` converts cycles to the microsecond timestamps the format
/// expects. Tracks: one *process* per block, one *thread* per
/// (core, engine) pair. All names pass through [`json_escape`].
pub fn to_chrome_json(events: &[TraceEvent], clock_ghz: f64) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 64);
    out.push_str("{\"traceEvents\":[");
    let to_us = |cycles: u64| cycles as f64 / (clock_ghz * 1e3);
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let core_name = if e.core == 0 {
            "cube".to_string()
        } else {
            format!("vec{}", e.core - 1)
        };
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":{},\"tid\":\"{}.{}\"}}",
            json_escape(e.engine.name()),
            to_us(e.start),
            to_us(e.end.saturating_sub(e.start)).max(0.001),
            e.block,
            json_escape(&core_name),
            json_escape(e.engine.name()),
        ));
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chrome_json_is_well_formed() {
        let events = vec![
            TraceEvent {
                block: 0,
                core: 0,
                engine: EngineKind::Cube,
                start: 100,
                end: 612,
            },
            TraceEvent {
                block: 0,
                core: 1,
                engine: EngineKind::Vec,
                start: 612,
                end: 661,
            },
            TraceEvent {
                block: 1,
                core: 2,
                engine: EngineKind::Mte2,
                start: 0,
                end: 320,
            },
        ];
        let json = to_chrome_json(&events, 1.0);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 3);
        assert!(json.contains("\"tid\":\"cube.CUBE\""));
        assert!(json.contains("\"tid\":\"vec0.VEC\""));
        assert!(json.contains("\"tid\":\"vec1.MTE2\""));
        // 1 GHz: 512 cycles = 0.512 us.
        assert!(json.contains("\"dur\":0.512"));
    }

    #[test]
    fn physical_occupancy_rejects_double_booked_slots() {
        let ev = |block, start, end| TraceEvent {
            block,
            core: 0,
            engine: EngineKind::Vec,
            start,
            end,
        };
        // Two waves on 2 physical slots: blocks 0 and 2 share slot 0.
        // Block 2 runs strictly after block 0 — fine.
        let ok = [
            ev(0, 100, 200),
            ev(1, 100, 180),
            ev(2, 200, 300),
            ev(3, 180, 250),
        ];
        assert!(audit_physical_occupancy(&ok, 2).is_ok());
        // Regression: a migrated block whose interval overlaps the
        // previous tenant of the same slot double-books the silicon.
        let bad = [ev(0, 100, 200), ev(2, 150, 250)];
        let err = audit_physical_occupancy(&bad, 2).unwrap_err();
        assert!(matches!(err, SimError::AccountingViolation { .. }));
        assert!(err.to_string().contains("slot 0"));
        // The same intervals on distinct slots are concurrent, not
        // double-booked.
        assert!(audit_physical_occupancy(&bad, 4).is_ok());
        // Event order must not matter.
        let bad_rev = [ev(2, 150, 250), ev(0, 100, 200)];
        assert!(audit_physical_occupancy(&bad_rev, 2).is_err());
    }

    #[test]
    fn empty_trace() {
        assert_eq!(to_chrome_json(&[], 1.8), "{\"traceEvents\":[]}");
    }

    #[test]
    fn hostile_names_are_escaped() {
        let hostile = "a\"b\\c\nd\re\tf\u{1}g";
        let escaped = json_escape(hostile);
        assert_eq!(escaped, "a\\\"b\\\\c\\nd\\re\\tf\\u0001g");
        // No raw control characters or unescaped quotes survive.
        assert!(!escaped.chars().any(|c| (c as u32) < 0x20));
        // Round-trip safety: embedding the escaped name keeps a JSON
        // string literal well formed (balanced, single-quoted-span).
        let doc = format!("{{\"name\":\"{escaped}\"}}");
        let bytes = doc.as_bytes();
        let mut in_string = false;
        let mut escaped_next = false;
        let mut depth = 0i32;
        for &b in bytes {
            if escaped_next {
                escaped_next = false;
                continue;
            }
            match b {
                b'\\' if in_string => escaped_next = true,
                b'"' => in_string = !in_string,
                b'{' if !in_string => depth += 1,
                b'}' if !in_string => depth -= 1,
                _ => {}
            }
        }
        assert!(!in_string, "unterminated string in {doc}");
        assert_eq!(depth, 0, "unbalanced braces in {doc}");
    }

    #[test]
    fn plain_names_pass_through_unchanged() {
        assert_eq!(json_escape("MTE2"), "MTE2");
        assert_eq!(json_escape("Phase I (tile scans)"), "Phase I (tile scans)");
    }

    /// One HbEvent per action kind — the round-trip corpus.
    fn every_action_kind() -> Vec<HbEvent> {
        let mk = |i: u32, what: &'static str, action: HbAction| HbEvent {
            block: i % 3,
            core: i % 2,
            time: u64::from(i) * 97,
            what,
            action,
        };
        vec![
            mk(0, "DataCopy", HbAction::GmRead { start: 0, end: 512 }),
            mk(
                1,
                "DataCopy",
                HbAction::GmWrite {
                    start: 1 << 33,
                    end: (1 << 33) + 64,
                },
            ),
            mk(
                2,
                "CrossCoreSetFlag",
                HbAction::FlagSet { id: 3, token: 41 },
            ),
            mk(
                3,
                "CrossCoreWaitFlag",
                HbAction::FlagWait { id: 3, token: 41 },
            ),
            mk(4, "GridSetFlag", HbAction::GridFlagSet { id: 5, token: 77 }),
            mk(
                5,
                "GridWaitFlag",
                HbAction::GridFlagWait { id: 5, token: 77 },
            ),
            mk(4, "SyncAll", HbAction::Barrier { round: 2 }),
            mk(5, "qa(L0A)", HbAction::QueueCreate { queue: 7 }),
            mk(6, "qa(L0A)", HbAction::Enque { queue: 7 }),
            mk(7, "qa(L0A)", HbAction::Deque { queue: 7 }),
            mk(8, "qa(L0A)", HbAction::QueueDestroy { queue: 7 }),
            mk(
                9,
                "AllocLocal",
                HbAction::Alloc {
                    id: 123456789012345,
                    bytes: 65536,
                },
            ),
            mk(
                10,
                "FreeLocal",
                HbAction::Free {
                    id: 123456789012345,
                },
            ),
        ]
    }

    #[test]
    fn hb_events_round_trip_losslessly() {
        let events = every_action_kind();
        let json = hb_events_json(&events);
        let parsed = parse_hb_json(&json).unwrap();
        assert_eq!(parsed, events);
        // Embedded in a profile-style document under the schema key, the
        // same array still parses.
        let doc =
            format!("{{\"traceEvents\":[],\"schema\":\"ascend-trace/v1\",\"hbEvents\":{json}}}");
        assert_eq!(parse_hb_json(&doc).unwrap(), events);
    }

    #[test]
    fn hb_round_trip_survives_hostile_names() {
        let hostile: &'static str = "q \"a\\b\"\n{evil]},\u{1}";
        let events = vec![
            HbEvent {
                block: 0,
                core: 1,
                time: 10,
                what: hostile,
                action: HbAction::Enque { queue: 0 },
            },
            HbEvent {
                block: 0,
                core: 1,
                time: 11,
                what: hostile,
                action: HbAction::Deque { queue: 0 },
            },
        ];
        let json = hb_events_json(&events);
        // No raw control characters escape into the document.
        assert!(!json.chars().any(|c| (c as u32) < 0x20));
        let parsed = parse_hb_json(&json).unwrap();
        assert_eq!(parsed, events);
        // Interning keeps repeated names pointer-identical.
        assert!(std::ptr::eq(parsed[0].what, parsed[1].what));
    }

    #[test]
    fn hb_parse_rejects_malformed_documents() {
        assert!(parse_hb_json("{\"no\":\"array\"}").is_err());
        assert!(parse_hb_json("[{\"block\":0").is_err());
        assert!(parse_hb_json(
            "[{\"block\":0,\"core\":0,\"time\":1,\"what\":\"x\",\"action\":\"warp\"}]"
        )
        .is_err());
        // Missing action fields.
        assert!(parse_hb_json(
            "[{\"block\":0,\"core\":0,\"time\":1,\"what\":\"x\",\"action\":\"gmRead\",\"start\":4}]"
        )
        .is_err());
        assert_eq!(parse_hb_json("[]").unwrap(), Vec::new());
    }

    #[test]
    fn hb_recorder_gates_and_harvests() {
        let off = HbRecorder::disabled();
        assert!(!off.is_enabled());
        off.record(5, "DataCopy", HbAction::GmRead { start: 0, end: 4 });
        assert!(off.take(0, 0).is_empty());

        let on = HbRecorder::enabled();
        assert!(on.is_enabled());
        let clone = on.clone();
        on.record(5, "DataCopy", HbAction::GmRead { start: 0, end: 4 });
        // A clone (e.g. held by a TQue) appends into the same
        // program-order stream.
        clone.record(9, "q", HbAction::Enque { queue: 1 });
        let got = on.take(3, 1);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].block, 3);
        assert_eq!(got[0].core, 1);
        assert_eq!(got[0].time, 5);
        assert_eq!(got[1].action, HbAction::Enque { queue: 1 });
        // take drains: both views now empty.
        assert!(clone.take(3, 1).is_empty());
    }
}
