//! A deterministic functional + timing simulator of the Huawei Ascend 910B
//! ("DaVinci") AI accelerator, built as the hardware substrate for the
//! parallel-scan reproduction.
//!
//! # What is simulated
//!
//! The 910B presents a grid of *AI cores*; each AI core contains one **AI
//! Cube (AIC) core** and two **AI Vector (AIV) cores**. Every core owns
//!
//! * a compute engine (cube matmul engine or SIMD vector engine),
//! * Memory Transfer Engines (MTE2 inbound, MTE3 outbound, and on the cube
//!   core MTE1 for L1→L0 moves and a FIXP path for L0C→GM),
//! * a scalar unit, and
//! * local scratchpads (UB on vector cores; L1/L0A/L0B/L0C on cube cores).
//!
//! Engines have separate instruction queues and run concurrently; data
//! dependencies between them are explicit (the AscendC queue model). The
//! simulator reproduces exactly this: every instruction is assigned a
//! deterministic cost by the [`chip::ChipSpec`] cost model, issues on its
//! engine's queue, and starts at `max(engine free, dependencies ready)`.
//! A kernel's simulated time is therefore the critical path through its
//! instruction dataflow graph, with two global corrections:
//!
//! * a **bandwidth bound**: between global barriers, the simulated clock
//!   can never run faster than (bytes moved to/from global memory) /
//!   (effective HBM or L2 bandwidth);
//! * a **launch overhead** per kernel.
//!
//! Blocks are driven by a deterministic [`Scheduler`] (see [`sync`]):
//! either a serial cooperative baton (one block at a time in a total,
//! seed-independent event order) or — the default — deterministic
//! parallel rounds that let blocks run concurrently on host threads
//! while committing every observable side effect in block-index order.
//! Both produce byte-identical reports, so launches replay
//! byte-for-byte regardless of host thread scheduling and grids may
//! exceed both the host's cores and the chip's. Cross-block
//! synchronization (`SyncAll`) is built from priced
//! `CrossCoreSetFlag`/`CrossCoreWaitFlag` scalar instructions, so
//! barrier cost is modelled rather than absorbed.
//!
//! Functional behaviour is exact: global memory is a real byte buffer and
//! every transfer/compute instruction also performs its actual data
//! movement/arithmetic, so kernels produce bit-accurate results that the
//! test-suite checks against reference implementations.
//!
//! # What is *not* simulated
//!
//! Instruction fetch, cache-line granularity, DRAM row effects, and the
//! scalar pipelines are abstracted into per-instruction issue overheads.
//! The model aims for faithful *relative* performance (who wins, where
//! crossovers fall), not cycle-exact absolute numbers.

#![forbid(unsafe_code)]

pub mod chip;
pub mod critpath;
pub mod engine;
pub mod error;
pub mod hb;
pub mod mem;
pub mod prof;
pub mod report;
pub mod simcheck;
pub mod sync;
pub mod timeline;
pub mod trace;

pub use chip::{ChipSpec, SchedPolicy};
pub use critpath::{CritInput, CritReport, CritSummary, PathSeg, SegClass, WhatIf};
pub use engine::EngineKind;
pub use error::{SimError, SimResult};
pub use hb::{Diagnostic, Severity};
pub use mem::{GlobalMemory, Region};
pub use prof::{
    CounterEvent, KernelProfile, Profile, ProfileRecorder, SpanArgs, SpanId, SpanRecorder,
    StallCause, StallEvent, StallTally, TraceSpan,
};
pub use report::KernelReport;
pub use simcheck::{ScratchTracker, ValidationMode};
pub use sync::{FlagFile, SchedMode, Scheduler};
pub use timeline::{CoreKind, CoreTimeline, EventTime};
pub use trace::{HbAction, HbEvent, HbRecorder, TraceEvent};
