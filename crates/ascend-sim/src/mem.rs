//! Simulated global memory (HBM).
//!
//! Global memory is a real byte buffer: kernels produce bit-accurate
//! results. Allocation is a bump allocator (kernels and tests create a
//! fresh [`GlobalMemory`] per run). Device-side accesses (`device_read` /
//! `device_write`, issued by the MTE engines) are counted toward the
//! global bandwidth accounting; host-side accesses (uploading inputs,
//! downloading results) are free, mirroring how the paper measures device
//! kernel time only.

use crate::error::{SimError, SimResult};
use crate::prof::ProfileRecorder;
use dtypes::Element;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Alignment of global-memory allocations in bytes (Ascend requires 32 B;
/// we use 512 B which also keeps tiles cache-line aligned).
pub const GM_ALIGN: usize = 512;

/// A byte region inside global memory, produced by [`GlobalMemory::alloc`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Region {
    /// First byte offset.
    pub offset: usize,
    /// Length in bytes.
    pub len: usize,
}

impl Region {
    /// Returns the sub-region `[byte_off, byte_off + len)`, bounds-checked.
    pub fn slice(&self, byte_off: usize, len: usize) -> SimResult<Region> {
        if byte_off + len > self.len {
            return Err(SimError::OutOfBounds {
                what: "Region::slice",
                offset: byte_off,
                len,
                region: self.len,
            });
        }
        Ok(Region {
            offset: self.offset + byte_off,
            len,
        })
    }
}

/// Simulated High Bandwidth Memory: byte buffer + bump allocator + traffic
/// counters.
pub struct GlobalMemory {
    bytes: RwLock<Vec<u8>>,
    capacity: usize,
    next: AtomicUsize,
    device_bytes_read: AtomicU64,
    device_bytes_written: AtomicU64,
    profiler: Mutex<Option<Arc<ProfileRecorder>>>,
}

impl GlobalMemory {
    /// Creates an empty global memory with the given capacity in bytes.
    pub fn new(capacity: usize) -> Self {
        GlobalMemory {
            bytes: RwLock::new(Vec::new()),
            capacity,
            next: AtomicUsize::new(0),
            device_bytes_read: AtomicU64::new(0),
            device_bytes_written: AtomicU64::new(0),
            profiler: Mutex::new(None),
        }
    }

    /// Attaches a fresh [`ProfileRecorder`] to this memory and returns
    /// it: every kernel launched against this memory from now on submits
    /// its finished profile there. The recorder is per-launch-state, not
    /// per-thread, so concurrent launches on *other* memories are
    /// unaffected and sequential launches cannot leak profiles into each
    /// other. Replaces any previously attached recorder.
    pub fn attach_profiler(&self) -> Arc<ProfileRecorder> {
        let recorder = ProfileRecorder::new();
        *self.profiler.lock().expect("GlobalMemory lock poisoned") = Some(Arc::clone(&recorder));
        recorder
    }

    /// Detaches the profile recorder, if any; subsequent launches stop
    /// recording profiles.
    pub fn detach_profiler(&self) {
        *self.profiler.lock().expect("GlobalMemory lock poisoned") = None;
    }

    /// The currently attached profile recorder, if any.
    pub fn profiler(&self) -> Option<Arc<ProfileRecorder>> {
        self.profiler
            .lock()
            .expect("GlobalMemory lock poisoned")
            .clone()
    }

    /// Allocates `len` bytes (zero-initialized), aligned to [`GM_ALIGN`].
    pub fn alloc(&self, len: usize) -> SimResult<Region> {
        let aligned = len.div_ceil(GM_ALIGN) * GM_ALIGN;
        let offset = self
            .next
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |cur| {
                (cur + aligned <= self.capacity).then_some(cur + aligned)
            })
            .map_err(|cur| SimError::GlobalMemoryExhausted {
                requested: len,
                available: self.capacity - cur,
            })?;
        let mut bytes = self.bytes.write().expect("GlobalMemory lock poisoned");
        if bytes.len() < offset + aligned {
            bytes.resize(offset + aligned, 0);
        }
        Ok(Region { offset, len })
    }

    /// Allocates space for `len` elements of type `T`.
    pub fn alloc_elems<T: Element>(&self, len: usize) -> SimResult<Region> {
        self.alloc(len * T::SIZE)
    }

    /// High-water mark of the bump allocator: a proxy for the kernel's
    /// working-set size used by the L2-vs-HBM bandwidth decision.
    pub fn high_water(&self) -> usize {
        self.next.load(Ordering::SeqCst)
    }

    /// Device bytes read so far (MTE inbound traffic).
    pub fn bytes_read(&self) -> u64 {
        self.device_bytes_read.load(Ordering::SeqCst)
    }

    /// Device bytes written so far (MTE outbound traffic).
    pub fn bytes_written(&self) -> u64 {
        self.device_bytes_written.load(Ordering::SeqCst)
    }

    /// Charges extra inbound traffic without moving data — the wasted
    /// part of a line-granularity strided access.
    pub fn account_read_padding(&self, bytes: u64) {
        self.device_bytes_read.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Charges extra outbound traffic (strided write padding).
    pub fn account_write_padding(&self, bytes: u64) {
        self.device_bytes_written
            .fetch_add(bytes, Ordering::Relaxed);
    }

    fn check(
        &self,
        what: &'static str,
        region: Region,
        byte_off: usize,
        len: usize,
    ) -> SimResult<usize> {
        if byte_off + len > region.len {
            return Err(SimError::OutOfBounds {
                what,
                offset: byte_off,
                len,
                region: region.len,
            });
        }
        Ok(region.offset + byte_off)
    }

    /// Device-side read (counted as HBM traffic).
    pub fn device_read(&self, region: Region, byte_off: usize, dst: &mut [u8]) -> SimResult<()> {
        let start = self.check("device_read", region, byte_off, dst.len())?;
        let bytes = self.bytes.read().expect("GlobalMemory lock poisoned");
        dst.copy_from_slice(&bytes[start..start + dst.len()]);
        self.device_bytes_read
            .fetch_add(dst.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    /// Device-side write (counted as HBM traffic).
    pub fn device_write(&self, region: Region, byte_off: usize, src: &[u8]) -> SimResult<()> {
        let start = self.check("device_write", region, byte_off, src.len())?;
        let mut bytes = self.bytes.write().expect("GlobalMemory lock poisoned");
        bytes[start..start + src.len()].copy_from_slice(src);
        self.device_bytes_written
            .fetch_add(src.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    /// Host-side typed upload (not counted as device traffic).
    pub fn host_write_slice<T: Element>(
        &self,
        region: Region,
        elem_off: usize,
        src: &[T],
    ) -> SimResult<()> {
        let byte_off = elem_off * T::SIZE;
        let len = src.len() * T::SIZE;
        let start = self.check("host_write_slice", region, byte_off, len)?;
        let mut bytes = self.bytes.write().expect("GlobalMemory lock poisoned");
        for (i, v) in src.iter().enumerate() {
            v.write_le(&mut bytes[start + i * T::SIZE..start + (i + 1) * T::SIZE]);
        }
        Ok(())
    }

    /// Host-side typed download (not counted as device traffic).
    pub fn host_read_slice<T: Element>(
        &self,
        region: Region,
        elem_off: usize,
        len: usize,
    ) -> SimResult<Vec<T>> {
        let byte_off = elem_off * T::SIZE;
        let nbytes = len * T::SIZE;
        let start = self.check("host_read_slice", region, byte_off, nbytes)?;
        let bytes = self.bytes.read().expect("GlobalMemory lock poisoned");
        Ok((0..len)
            .map(|i| T::read_le(&bytes[start + i * T::SIZE..start + (i + 1) * T::SIZE]))
            .collect())
    }

    /// Host-side upload of a whole vector into a fresh allocation.
    pub fn upload<T: Element>(&self, data: &[T]) -> SimResult<Region> {
        let region = self.alloc_elems::<T>(data.len())?;
        self.host_write_slice(region, 0, data)?;
        Ok(region)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtypes::F16;

    #[test]
    fn alloc_is_aligned_and_bounded() {
        let gm = GlobalMemory::new(4096);
        let a = gm.alloc(100).unwrap();
        let b = gm.alloc(100).unwrap();
        assert_eq!(a.offset % GM_ALIGN, 0);
        assert_eq!(b.offset, GM_ALIGN);
        assert!(gm.alloc(4096).is_err(), "over-capacity alloc must fail");
    }

    #[test]
    fn upload_download_round_trip() {
        let gm = GlobalMemory::new(1 << 20);
        let data: Vec<f32> = (0..1000).map(|i| i as f32 * 0.5).collect();
        let region = gm.upload(&data).unwrap();
        let back: Vec<f32> = gm.host_read_slice(region, 0, 1000).unwrap();
        assert_eq!(back, data);
        // Partial read at an offset.
        let mid: Vec<f32> = gm.host_read_slice(region, 500, 10).unwrap();
        assert_eq!(mid, &data[500..510]);
    }

    #[test]
    fn f16_upload_round_trip() {
        let gm = GlobalMemory::new(1 << 16);
        let data: Vec<F16> = (0..100).map(|i| F16::from_f32(i as f32)).collect();
        let region = gm.upload(&data).unwrap();
        assert_eq!(gm.host_read_slice::<F16>(region, 0, 100).unwrap(), data);
    }

    #[test]
    fn device_traffic_is_counted_host_traffic_is_not() {
        let gm = GlobalMemory::new(1 << 16);
        let region = gm.alloc(1024).unwrap();
        gm.host_write_slice(region, 0, &[1u8; 1024]).unwrap();
        assert_eq!(gm.bytes_read(), 0);
        assert_eq!(gm.bytes_written(), 0);

        let mut buf = [0u8; 512];
        gm.device_read(region, 0, &mut buf).unwrap();
        gm.device_write(region, 512, &buf).unwrap();
        assert_eq!(gm.bytes_read(), 512);
        assert_eq!(gm.bytes_written(), 512);
        assert_eq!(buf, [1u8; 512]);
    }

    #[test]
    fn out_of_bounds_access_errors() {
        let gm = GlobalMemory::new(1 << 16);
        let region = gm.alloc(64).unwrap();
        let mut buf = [0u8; 32];
        assert!(gm.device_read(region, 48, &mut buf).is_err());
        assert!(gm.device_write(region, 64, &buf).is_err());
        assert!(gm.host_read_slice::<f32>(region, 15, 2).is_err());
    }

    #[test]
    fn region_slice() {
        let r = Region {
            offset: 512,
            len: 256,
        };
        let s = r.slice(64, 64).unwrap();
        assert_eq!(
            s,
            Region {
                offset: 576,
                len: 64
            }
        );
        assert!(r.slice(200, 64).is_err());
    }

    #[test]
    fn high_water_tracks_allocations() {
        let gm = GlobalMemory::new(1 << 20);
        assert_eq!(gm.high_water(), 0);
        gm.alloc(1000).unwrap();
        assert_eq!(gm.high_water(), 1024);
        gm.alloc(10).unwrap();
        assert_eq!(gm.high_water(), 1536);
    }
}
