//! Chip specification and instruction cost model.
//!
//! All timing constants live here, in one place, so that the whole
//! reproduction can be re-calibrated by editing a single preset. The
//! calibration targets the published shape of the paper's figures (ratios
//! and crossovers), not cycle-exact Ascend silicon behaviour.

use crate::engine::EngineKind;
use crate::simcheck::ValidationMode;
use crate::sync::SchedMode;

/// How a launch picks its scheduler gating discipline.
///
/// Both disciplines produce byte-identical reports (see
/// [`SchedMode`]); this policy exists so tests and equivalence gates
/// can pin a mode without racing on the process-global `ASCEND_SCHED`
/// environment variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SchedPolicy {
    /// Resolve from `ASCEND_SCHED` at launch time (the default).
    #[default]
    Env,
    /// Force the serial baton scheduler.
    Serial,
    /// Force the parallel-round scheduler.
    Parallel,
}

impl SchedPolicy {
    /// The concrete [`SchedMode`] this launch should run under.
    pub fn resolve(self) -> SchedMode {
        match self {
            SchedPolicy::Env => SchedMode::from_env(),
            SchedPolicy::Serial => SchedMode::Serial,
            SchedPolicy::Parallel => SchedMode::Parallel,
        }
    }
}

/// Static description of an Ascend-like accelerator.
///
/// Use [`ChipSpec::ascend_910b4`] for the paper's evaluation platform or
/// [`ChipSpec::tiny`] for fast, deterministic unit tests.
#[derive(Clone, Debug, PartialEq)]
pub struct ChipSpec {
    /// Human-readable chip name.
    pub name: &'static str,
    /// Number of AI cores (each: 1 cube core + `vec_per_core` vector cores).
    pub ai_cores: u32,
    /// Vector (AIV) cores per AI core — 2 on the 910B series.
    pub vec_per_core: u32,
    /// Core clock in GHz.
    pub clock_ghz: f64,

    // ---- Global memory system ----
    /// Peak HBM bandwidth in bytes/second (800 GB/s on the 910B4).
    pub hbm_bytes_per_sec: f64,
    /// Fraction of peak HBM achievable by streaming kernels (DRAM
    /// efficiency; applied when the working set exceeds L2).
    pub hbm_efficiency: f64,
    /// L2 cache capacity in bytes.
    pub l2_capacity: usize,
    /// L2 bandwidth in bytes/second (applies when the working set fits).
    pub l2_bytes_per_sec: f64,
    /// Simulated global-memory (HBM) capacity in bytes.
    pub hbm_capacity: usize,

    // ---- Per-core transfer engines ----
    /// MTE throughput in bytes per cycle per engine (GM<->local, L1->L0).
    pub mte_bytes_per_cycle: u32,
    /// Fixed startup cost of one DataCopy instruction, in cycles.
    pub mte_startup_cycles: u32,
    /// Global-memory access granularity in bytes: a strided DataCopy
    /// whose rows are shorter than this still moves (and is charged for)
    /// one full line per row — why gather-style access patterns waste
    /// bandwidth and the paper's recomputation strategy avoids them.
    pub gm_line_bytes: u32,

    // ---- Vector engine ----
    /// Vector engine throughput in bytes per cycle (256 B = 128 fp16 lanes).
    pub vec_bytes_per_cycle: u32,
    /// Fixed issue overhead of one vector instruction, in cycles.
    pub vec_issue_cycles: u32,
    /// Extra latency of reduction-style instructions (tree across lanes).
    pub vec_reduce_extra_cycles: u32,
    /// Latency for the scalar unit to observe a value produced by the
    /// vector engine (vector->scalar hazard), in cycles. This is what the
    /// `partial <- last entry` step of the scan algorithms pays per tile.
    pub scalar_extract_cycles: u32,
    /// Cost of one scalar-unit operation, in cycles.
    pub scalar_op_cycles: u32,

    // ---- Cube engine ----
    /// fp16 multiply-accumulates per cycle (16x16x16 = 4096 on DaVinci).
    pub cube_macs_per_cycle_fp16: u32,
    /// Fixed startup cost of one Mmad instruction, in cycles.
    pub cube_startup_cycles: u32,

    // ---- Scratchpad capacities (bytes) ----
    /// Unified Buffer on each vector core.
    pub ub_capacity: usize,
    /// L1 buffer on each cube core.
    pub l1_capacity: usize,
    /// L0A (left matrix) buffer on each cube core.
    pub l0a_capacity: usize,
    /// L0B (right matrix) buffer on each cube core.
    pub l0b_capacity: usize,
    /// L0C (accumulator) buffer on each cube core.
    pub l0c_capacity: usize,

    // ---- Kernel-level overheads ----
    /// Cycles charged once per kernel launch (device-side setup).
    pub launch_cycles: u64,
    /// Release latency of a `SyncAll` global barrier, charged after the
    /// last participant's arrival flag lands (the barrier itself is built
    /// from `CrossCoreSetFlag`/`CrossCoreWaitFlag` pairs, priced below).
    pub sync_all_cycles: u64,
    /// Cycles a `CrossCoreSetFlag` occupies the issuing core's scalar
    /// pipe: the preceding pipes are drained and the flag write must be
    /// made visible to the peer core.
    pub flag_set_cycles: u64,
    /// Fixed issue cost of a `CrossCoreWaitFlag` on the waiting core's
    /// scalar pipe. Cycles spent blocked beyond this until the producer's
    /// set lands are attributed separately as `wait:flag` stall time.
    pub flag_wait_cycles: u64,
    /// Number of cross-core flag ids per block. Real silicon exposes a
    /// small fixed flag register file; `CrossCoreSetFlag`/`WaitFlag` with
    /// `id >= flag_id_limit` is rejected with
    /// [`SimError::FlagIdOutOfRange`](crate::SimError::FlagIdOutOfRange).
    pub flag_id_limit: u32,

    // ---- Validation ----
    /// How much runtime sanitizer checking (`simcheck`) the simulator
    /// performs. Purely observational: never affects simulated timing.
    pub validation: ValidationMode,

    // ---- Host execution ----
    /// Which scheduler gating discipline launches use. Purely a host
    /// execution choice: never affects simulated timing or reports.
    pub scheduler: SchedPolicy,
}

impl ChipSpec {
    /// The Ascend 910B4 used in the paper's evaluation: 20 AI cores with a
    /// 2:1 vector-to-cube core ratio and 800 GB/s of HBM.
    pub fn ascend_910b4() -> Self {
        ChipSpec {
            name: "Ascend 910B4",
            ai_cores: 20,
            vec_per_core: 2,
            clock_ghz: 1.8,

            hbm_bytes_per_sec: 800e9,
            hbm_efficiency: 0.90,
            l2_capacity: 192 << 20,
            l2_bytes_per_sec: 1000e9,
            hbm_capacity: 8 << 30,

            mte_bytes_per_cycle: 128,
            mte_startup_cycles: 64,
            gm_line_bytes: 256,

            vec_bytes_per_cycle: 256,
            vec_issue_cycles: 16,
            vec_reduce_extra_cycles: 24,
            scalar_extract_cycles: 32,
            scalar_op_cycles: 2,

            cube_macs_per_cycle_fp16: 4096,
            cube_startup_cycles: 64,

            ub_capacity: 192 << 10,
            l1_capacity: 512 << 10,
            l0a_capacity: 64 << 10,
            l0b_capacity: 64 << 10,
            l0c_capacity: 128 << 10,

            launch_cycles: 9_000,   // ~5 us device-side launch
            sync_all_cycles: 2_700, // ~1.5 us barrier release latency
            flag_set_cycles: 180,   // ~100 ns pipe drain + flag publish
            flag_wait_cycles: 540,  // ~300 ns cross-core flag observation
            flag_id_limit: 16,      // hardware cross-core flag registers

            validation: ValidationMode::Full,
            scheduler: SchedPolicy::Env,
        }
    }

    /// A small fictional chip for unit tests: 2 AI cores, tiny scratchpads,
    /// trivial overheads. Keeps tests fast and makes capacity-overflow
    /// conditions easy to trigger.
    pub fn tiny() -> Self {
        ChipSpec {
            name: "tiny-test-chip",
            ai_cores: 2,
            vec_per_core: 2,
            clock_ghz: 1.0,

            hbm_bytes_per_sec: 100e9,
            hbm_efficiency: 1.0,
            l2_capacity: 1 << 20,
            l2_bytes_per_sec: 200e9,
            hbm_capacity: 64 << 20,

            mte_bytes_per_cycle: 64,
            mte_startup_cycles: 8,
            gm_line_bytes: 32,

            vec_bytes_per_cycle: 64,
            vec_issue_cycles: 4,
            vec_reduce_extra_cycles: 4,
            scalar_extract_cycles: 8,
            scalar_op_cycles: 1,

            cube_macs_per_cycle_fp16: 512,
            cube_startup_cycles: 8,

            ub_capacity: 16 << 10,
            l1_capacity: 32 << 10,
            l0a_capacity: 4 << 10,
            l0b_capacity: 4 << 10,
            l0c_capacity: 8 << 10,

            launch_cycles: 100,
            sync_all_cycles: 50,
            flag_set_cycles: 6,
            flag_wait_cycles: 18,
            flag_id_limit: 8,

            validation: ValidationMode::Full,
            scheduler: SchedPolicy::Env,
        }
    }

    /// Returns the spec with a different [`ValidationMode`] — how
    /// benchmarks opt out of the sanitizer overhead
    /// (`ChipSpec::ascend_910b4().with_validation(ValidationMode::Cheap)`).
    pub fn with_validation(mut self, validation: ValidationMode) -> Self {
        self.validation = validation;
        self
    }

    /// Returns the spec with a different [`SchedPolicy`] — how tests pin
    /// a launch to one scheduler without racing on the process-global
    /// `ASCEND_SCHED` variable
    /// (`ChipSpec::tiny().with_scheduler(SchedPolicy::Serial)`).
    pub fn with_scheduler(mut self, scheduler: SchedPolicy) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Total number of vector cores on the chip.
    #[inline]
    pub fn total_vec_cores(&self) -> u32 {
        self.ai_cores * self.vec_per_core
    }

    /// Cycles per second.
    #[inline]
    pub fn cycles_per_sec(&self) -> f64 {
        self.clock_ghz * 1e9
    }

    /// Converts simulated cycles to seconds.
    #[inline]
    pub fn cycles_to_secs(&self, cycles: u64) -> f64 {
        cycles as f64 / self.cycles_per_sec()
    }

    /// Converts a duration in seconds to (rounded-up) cycles.
    #[inline]
    pub fn secs_to_cycles(&self, secs: f64) -> u64 {
        (secs * self.cycles_per_sec()).ceil() as u64
    }

    /// Effective global-memory bandwidth in bytes/second for a kernel with
    /// the given working-set size: L2 bandwidth when the set fits in L2,
    /// otherwise DRAM bandwidth derated by the streaming efficiency.
    pub fn effective_gm_bandwidth(&self, working_set: usize) -> f64 {
        if working_set <= self.l2_capacity {
            self.l2_bytes_per_sec
        } else {
            self.hbm_bytes_per_sec * self.hbm_efficiency
        }
    }

    /// Minimum cycles needed to move `bytes` to/from global memory given
    /// the working-set size (the per-segment bandwidth bound).
    pub fn gm_bound_cycles(&self, bytes: u64, working_set: usize) -> u64 {
        let bw = self.effective_gm_bandwidth(working_set);
        self.secs_to_cycles(bytes as f64 / bw)
    }

    // ---- Instruction cost model ----

    /// Cost of a DataCopy moving `bytes` on an MTE engine.
    pub fn cost_datacopy(&self, bytes: usize) -> u64 {
        u64::from(self.mte_startup_cycles)
            + (bytes as u64).div_ceil(u64::from(self.mte_bytes_per_cycle))
    }

    /// Bytes a strided DataCopy actually moves for one row of
    /// `row_bytes`: at least one full GM line.
    pub fn strided_row_bytes(&self, row_bytes: usize) -> usize {
        row_bytes.max(self.gm_line_bytes as usize)
    }

    /// Cost of a strided DataCopy moving `rows` rows of `row_bytes` each
    /// (each row pays line-granularity bandwidth).
    pub fn cost_datacopy_strided(&self, rows: usize, row_bytes: usize) -> u64 {
        u64::from(self.mte_startup_cycles)
            + ((rows * self.strided_row_bytes(row_bytes)) as u64)
                .div_ceil(u64::from(self.mte_bytes_per_cycle))
    }

    /// Cost of an element-wise vector instruction over `bytes` of data.
    pub fn cost_vector_op(&self, bytes: usize) -> u64 {
        u64::from(self.vec_issue_cycles)
            + (bytes as u64).div_ceil(u64::from(self.vec_bytes_per_cycle))
    }

    /// Cost of a reduction-style vector instruction over `bytes` of data
    /// (ReduceSum, ReduceMax, whole-block GatherMask bookkeeping).
    pub fn cost_vector_reduce(&self, bytes: usize) -> u64 {
        self.cost_vector_op(bytes) + u64::from(self.vec_reduce_extra_cycles)
    }

    /// Cost of an `m x k @ k x n` matrix multiplication on the cube engine.
    ///
    /// `rate_x4` is the data type's throughput multiplier relative to
    /// fp16 in quarter-rate units (fp16 = 4, int8 = 8, fp32 = 1 on the
    /// 910B cube).
    pub fn cost_mmad(&self, m: usize, k: usize, n: usize, rate_x4: u32) -> u64 {
        // The cube engine processes 16x16x16 fp16 fractal tiles per cycle.
        let fractals = (m.div_ceil(16) * k.div_ceil(16) * n.div_ceil(16)) as u64;
        let macs = fractals * 4096 * 4;
        let macs_per_cycle = u64::from(self.cube_macs_per_cycle_fp16) * u64::from(rate_x4);
        u64::from(self.cube_startup_cycles) + macs.div_ceil(macs_per_cycle.max(1))
    }

    /// Cost of a scalar-unit operation.
    pub fn cost_scalar_op(&self) -> u64 {
        u64::from(self.scalar_op_cycles)
    }

    /// Cost of moving one value from the vector engine's domain into the
    /// scalar unit (the `partial <- last entry of y_s` hazard).
    pub fn cost_scalar_extract(&self) -> u64 {
        u64::from(self.scalar_extract_cycles)
    }

    /// Scratchpad capacity in bytes for the given engine-visible buffer.
    pub fn scratchpad_capacity(&self, buffer: ScratchpadKind) -> usize {
        match buffer {
            ScratchpadKind::Ub => self.ub_capacity,
            ScratchpadKind::L1 => self.l1_capacity,
            ScratchpadKind::L0A => self.l0a_capacity,
            ScratchpadKind::L0B => self.l0b_capacity,
            ScratchpadKind::L0C => self.l0c_capacity,
        }
    }

    /// Engines present on a cube (AIC) core.
    pub fn cube_core_engines() -> &'static [EngineKind] {
        &[
            EngineKind::Mte2,
            EngineKind::Mte1,
            EngineKind::Mte3,
            EngineKind::Fixp,
            EngineKind::Cube,
            EngineKind::Scalar,
        ]
    }

    /// Engines present on a vector (AIV) core.
    pub fn vec_core_engines() -> &'static [EngineKind] {
        &[
            EngineKind::Mte2,
            EngineKind::Mte3,
            EngineKind::Vec,
            EngineKind::Scalar,
        ]
    }

    /// Number of cores in a `blocks`-block launch that carry `engine`
    /// (cube and vector cores have different engine sets; each block has
    /// one cube core plus `vec_per_core` vector cores).
    pub fn cores_with_engine(&self, blocks: u32, engine: EngineKind) -> u64 {
        let on_cube = u64::from(Self::cube_core_engines().contains(&engine));
        let on_vec = u64::from(Self::vec_core_engines().contains(&engine));
        u64::from(blocks) * (on_cube + on_vec * u64::from(self.vec_per_core))
    }
}

/// The local scratchpad buffers of the DaVinci memory hierarchy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ScratchpadKind {
    /// Unified Buffer (vector cores).
    Ub,
    /// L1 staging buffer (cube cores).
    L1,
    /// L0A: left matrix operand buffer (cube cores).
    L0A,
    /// L0B: right matrix operand buffer (cube cores).
    L0B,
    /// L0C: accumulator/output buffer (cube cores).
    L0C,
}

impl ScratchpadKind {
    /// The buffer's conventional name.
    pub const fn name(self) -> &'static str {
        match self {
            ScratchpadKind::Ub => "UB",
            ScratchpadKind::L1 => "L1",
            ScratchpadKind::L0A => "L0A",
            ScratchpadKind::L0B => "L0B",
            ScratchpadKind::L0C => "L0C",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_consistent() {
        let b4 = ChipSpec::ascend_910b4();
        assert_eq!(b4.ai_cores, 20);
        assert_eq!(b4.total_vec_cores(), 40);
        assert_eq!(b4.cycles_per_sec(), 1.8e9);
        let tiny = ChipSpec::tiny();
        assert_eq!(tiny.total_vec_cores(), 4);
    }

    #[test]
    fn cross_core_sync_is_priced_on_every_preset() {
        // The AIC<->AIV hand-off must have nonzero modelled cost: both
        // flag instructions and the barrier release latency.
        for spec in [ChipSpec::ascend_910b4(), ChipSpec::tiny()] {
            assert!(spec.flag_set_cycles > 0, "{}: free SetFlag", spec.name);
            assert!(spec.flag_wait_cycles > 0, "{}: free WaitFlag", spec.name);
            assert!(spec.sync_all_cycles > 0, "{}: free SyncAll", spec.name);
            assert!(spec.flag_id_limit > 0, "{}: no flag registers", spec.name);
        }
    }

    #[test]
    fn cycle_time_round_trip() {
        let spec = ChipSpec::ascend_910b4();
        let secs = spec.cycles_to_secs(1_800_000);
        assert!((secs - 1e-3).abs() < 1e-12);
        assert_eq!(spec.secs_to_cycles(1e-3), 1_800_000);
    }

    #[test]
    fn datacopy_cost_scales_with_bytes() {
        let spec = ChipSpec::ascend_910b4();
        let small = spec.cost_datacopy(128);
        let large = spec.cost_datacopy(128 * 1024);
        assert_eq!(small, 64 + 1);
        assert_eq!(large, 64 + 1024);
        assert!(large > small);
    }

    #[test]
    fn mmad_cost_128_cube() {
        let spec = ChipSpec::ascend_910b4();
        // 128x128x128 fp16 = 8*8*8 = 512 fractal tiles at 1/cycle.
        assert_eq!(spec.cost_mmad(128, 128, 128, 4), 64 + 512);
        // int8 runs at double rate, fp32 at quarter rate.
        assert_eq!(spec.cost_mmad(128, 128, 128, 8), 64 + 256);
        assert_eq!(spec.cost_mmad(128, 128, 128, 1), 64 + 2048);
        // Sizes round up to 16.
        assert_eq!(spec.cost_mmad(1, 1, 1, 4), 64 + 1);
    }

    #[test]
    fn effective_bandwidth_l2_vs_hbm() {
        let spec = ChipSpec::ascend_910b4();
        let in_l2 = spec.effective_gm_bandwidth(1 << 20);
        let in_hbm = spec.effective_gm_bandwidth(1 << 30);
        assert_eq!(in_l2, 1000e9);
        assert_eq!(in_hbm, 800e9 * 0.90);
    }

    #[test]
    fn gm_bound_cycles_matches_bandwidth() {
        let spec = ChipSpec::ascend_910b4();
        // 720 GB at 720 GB/s = 1 s = 1.8e9 cycles.
        let cycles = spec.gm_bound_cycles(720_000_000_000, usize::MAX);
        assert_eq!(cycles, 1_800_000_000);
    }

    #[test]
    fn scratchpad_capacities() {
        let spec = ChipSpec::ascend_910b4();
        assert_eq!(spec.scratchpad_capacity(ScratchpadKind::Ub), 192 << 10);
        assert_eq!(spec.scratchpad_capacity(ScratchpadKind::L0A), 64 << 10);
        assert_eq!(ScratchpadKind::L0C.name(), "L0C");
    }

    #[test]
    fn core_engine_lists() {
        assert!(ChipSpec::cube_core_engines().contains(&EngineKind::Cube));
        assert!(!ChipSpec::vec_core_engines().contains(&EngineKind::Cube));
        assert!(ChipSpec::vec_core_engines().contains(&EngineKind::Vec));
    }
}
