//! First-class profiling: named spans, stall attribution, and
//! machine-readable kernel profiles.
//!
//! The profiling layer is strictly **observational**: enabling it never
//! changes a simulated cycle. Timing lives in [`crate::timeline`]; this
//! module only classifies and records what the timeline already decided.
//!
//! # Span model
//!
//! Spans are hierarchical named intervals — kernel → phase → tile:
//!
//! * the *kernel* span (depth 0) covers one launch, one per block;
//! * *phase* spans (depth 1) are opened by the kernel through the
//!   `BlockCtx` span API and bracket paper-level phases ("Phase I",
//!   "propagate", `SyncAll`);
//! * *tile* spans (depth ≥ 2) are opened on an individual core and
//!   bracket one tile's pipeline trip, crossing the `TQue` producer →
//!   consumer boundary because they are pure time intervals.
//!
//! Span begin/end times come from the core's completion horizon
//! ([`crate::timeline::CoreTimeline::now`]) or from explicit instruction
//! completion events, so consecutive tile spans tile a phase contiguously
//! along the critical path.
//!
//! # Stall taxonomy
//!
//! Idle cycles on each engine split into:
//!
//! * **dependency-wait** — the engine sat idle because the instruction's
//!   inputs were not ready yet (`start − engine_free` when the
//!   dependencies resolve after the engine frees up);
//! * **flag-wait** — the engine sat idle because the core was blocked on
//!   a `CrossCoreWaitFlag` whose matching `CrossCoreSetFlag` had not yet
//!   completed on the producing core (the AIC↔AIV hand-off cost);
//! * **barrier-wait** — the engine sat idle because the core was aligned
//!   to a global barrier (the `SyncAll` release, the bandwidth bound, or
//!   kernel end);
//! * **engine-contention** — the instruction's inputs were ready but the
//!   engine was still busy with earlier instructions. Contention overlaps
//!   the engine's *own* busy time of those earlier instructions, so it is
//!   a queueing-delay metric, **not** part of the idle-cycle partition:
//!   `busy + dependency + barrier + flag = cores × (cycles − launch)`
//!   exactly (audited by `simcheck`), while contention is reported on the
//!   side.

use crate::critpath::CritReport;
use crate::engine::EngineKind;
use crate::timeline::EventTime;
use crate::trace::{hb_events_json, json_escape, HbEvent, TraceEvent};
use std::sync::{Arc, Mutex};

/// Core index used in [`TraceSpan::core`] for block-scoped (phase) spans
/// that do not belong to a single core.
pub const BLOCK_SCOPE: u32 = u32::MAX;

/// Why an engine sat idle (recorded as an interval when tracing).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StallCause {
    /// Waiting for instruction inputs produced elsewhere.
    Dependency,
    /// Aligned forward by a global barrier / bandwidth bound / kernel end.
    Barrier,
    /// Blocked on a `CrossCoreWaitFlag` until the matching
    /// `CrossCoreSetFlag` completed on the producing core.
    Flag,
}

impl StallCause {
    /// Display label used in trace exports.
    pub const fn label(self) -> &'static str {
        match self {
            StallCause::Dependency => "wait:dep",
            StallCause::Barrier => "wait:barrier",
            StallCause::Flag => "wait:flag",
        }
    }
}

/// Per-engine stall cycle counters (see the module docs for the taxonomy).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StallTally {
    /// Idle cycles spent waiting for dependencies, per engine.
    pub dependency: [u64; EngineKind::ALL.len()],
    /// Queueing delay behind the engine's own earlier instructions, per
    /// engine (overlaps busy time; not part of the idle partition).
    pub contention: [u64; EngineKind::ALL.len()],
    /// Idle cycles spent aligned at barriers, per engine.
    pub barrier: [u64; EngineKind::ALL.len()],
    /// Idle cycles spent blocked on cross-core flags, per engine.
    pub flag: [u64; EngineKind::ALL.len()],
}

impl StallTally {
    /// Adds another tally into this one (merging per-core tallies into a
    /// per-kernel report).
    pub fn absorb(&mut self, other: &StallTally) {
        for i in 0..EngineKind::ALL.len() {
            self.dependency[i] += other.dependency[i];
            self.contention[i] += other.contention[i];
            self.barrier[i] += other.barrier[i];
            self.flag[i] += other.flag[i];
        }
    }

    /// Idle cycles (dependency + barrier + flag) for one engine.
    pub fn idle(&self, engine: EngineKind) -> u64 {
        self.dependency[engine.index()] + self.barrier[engine.index()] + self.flag[engine.index()]
    }

    /// Total idle cycles across all engines.
    pub fn total_idle(&self) -> u64 {
        self.dependency.iter().sum::<u64>()
            + self.barrier.iter().sum::<u64>()
            + self.flag.iter().sum::<u64>()
    }
}

/// Optional structured arguments attached to a span.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanArgs {
    /// Bytes moved by the work the span covers.
    pub bytes: u64,
    /// Dominant instruction kind ("mmad", "datacopy", "vadds", …).
    pub kind: &'static str,
    /// Depth of the pipeline queue feeding the span's work (0 = none).
    pub queue_depth: u32,
}

/// Handle to an open span (no-op sentinel when profiling is off).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanId(usize);

impl SpanId {
    const NONE: SpanId = SpanId(usize::MAX);
}

/// One closed named span, ready for export.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceSpan {
    /// Block the span belongs to.
    pub block: u32,
    /// Core index within the block, or [`BLOCK_SCOPE`] for phase spans.
    pub core: u32,
    /// Span name (static so that disabled profiling allocates nothing).
    pub name: &'static str,
    /// Nesting depth: 0 = kernel, 1 = phase, ≥ 2 = tile.
    pub depth: u16,
    /// Start cycle.
    pub start: EventTime,
    /// End cycle.
    pub end: EventTime,
    /// Structured arguments, if the kernel attached any.
    pub args: Option<SpanArgs>,
}

/// One engine idle interval with its attributed cause.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StallEvent {
    /// Block the core belongs to.
    pub block: u32,
    /// Core index within the block.
    pub core: u32,
    /// The idle engine.
    pub engine: EngineKind,
    /// Why it idled.
    pub cause: StallCause,
    /// Start cycle of the idle interval.
    pub start: EventTime,
    /// End cycle of the idle interval.
    pub end: EventTime,
}

/// One sampled counter value (e.g. `TQue` occupancy).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterEvent {
    /// Block the counter belongs to.
    pub block: u32,
    /// Core index within the block.
    pub core: u32,
    /// Counter name (e.g. the queue's name).
    pub name: &'static str,
    /// Sample time in cycles.
    pub time: EventTime,
    /// Sampled value (e.g. buffers in flight).
    pub value: u32,
}

/// Records nested spans for one scope (a block or a core). Disabled by
/// default; every method is a no-op until [`SpanRecorder::enable`].
#[derive(Debug, Default)]
pub struct SpanRecorder {
    enabled: bool,
    base_depth: u16,
    slots: Vec<Slot>,
    open: Vec<usize>,
}

#[derive(Debug)]
struct Slot {
    name: &'static str,
    start: EventTime,
    end: Option<EventTime>,
    depth: u16,
    args: Option<SpanArgs>,
}

impl SpanRecorder {
    /// A disabled recorder whose spans start at nesting depth
    /// `base_depth` (1 for block phases, 2 for core tile spans).
    pub fn new(base_depth: u16) -> Self {
        SpanRecorder {
            enabled: false,
            base_depth,
            slots: Vec::new(),
            open: Vec::new(),
        }
    }

    /// Turns recording on.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Whether recording is on.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Opens a span starting at `now`. Returns a no-op handle when
    /// recording is off.
    pub fn begin(&mut self, name: &'static str, now: EventTime) -> SpanId {
        if !self.enabled {
            return SpanId::NONE;
        }
        let depth = self.base_depth + self.open.len() as u16;
        let idx = self.slots.len();
        self.slots.push(Slot {
            name,
            start: now,
            end: None,
            depth,
            args: None,
        });
        self.open.push(idx);
        SpanId(idx)
    }

    /// Closes a span at time `at` (clamped to the span's start).
    pub fn end(&mut self, id: SpanId, at: EventTime) {
        if id == SpanId::NONE {
            return;
        }
        if let Some(slot) = self.slots.get_mut(id.0) {
            if slot.end.is_none() {
                slot.end = Some(at.max(slot.start));
                self.open.retain(|&i| i != id.0);
            }
        }
    }

    /// Attaches structured arguments to a span.
    pub fn set_args(&mut self, id: SpanId, args: SpanArgs) {
        if id == SpanId::NONE {
            return;
        }
        if let Some(slot) = self.slots.get_mut(id.0) {
            slot.args = Some(args);
        }
    }

    /// Drains all recorded spans, closing still-open ones at
    /// `final_time`, and stamps them with their block/core identity.
    pub fn take(&mut self, block: u32, core: u32, final_time: EventTime) -> Vec<TraceSpan> {
        self.open.clear();
        self.slots
            .drain(..)
            .map(|s| TraceSpan {
                block,
                core,
                name: s.name,
                depth: s.depth,
                start: s.start,
                end: s.end.unwrap_or(final_time).max(s.start),
                args: s.args,
            })
            .collect()
    }
}

/// Everything profiled during one kernel launch.
#[derive(Clone, Debug, Default)]
pub struct KernelProfile {
    /// Kernel name.
    pub name: String,
    /// Core clock in GHz (for cycle → µs conversion).
    pub clock_ghz: f64,
    /// Number of blocks launched.
    pub blocks: u32,
    /// End-to-end simulated cycles.
    pub cycles: u64,
    /// Per-instruction engine occupancy intervals.
    pub events: Vec<TraceEvent>,
    /// Named spans (kernel phases, tiles).
    pub spans: Vec<TraceSpan>,
    /// Engine idle intervals with attributed causes.
    pub stall_events: Vec<StallEvent>,
    /// Sampled counters (queue occupancy).
    pub counters: Vec<CounterEvent>,
    /// Aggregated stall cycles per engine.
    pub stalls: StallTally,
    /// Happens-before events (GM access ranges, flag/queue edges, barrier
    /// rounds) consumed by the schedule analyzer ([`crate::hb`]).
    pub hb_events: Vec<HbEvent>,
    /// The launch's extracted critical path ([`crate::critpath`]):
    /// segments tiling `[0, cycles]` plus attribution and what-ifs.
    pub critical_path: Option<CritReport>,
}

/// Profiles collected from one or more kernel launches (see
/// [`with_profiling`]).
#[derive(Clone, Debug, Default)]
pub struct Profile {
    /// One entry per launch, in launch order.
    pub kernels: Vec<KernelProfile>,
}

fn core_label(core: u32) -> String {
    match core {
        BLOCK_SCOPE => "block".to_string(),
        0 => "cube".to_string(),
        i => format!("vec{}", i - 1),
    }
}

impl Profile {
    /// Renders the full profile as a Chrome Trace Event JSON document
    /// (open at <https://ui.perfetto.dev>). Tracks: one *process* per
    /// block; per (core, engine) threads carry busy intervals interleaved
    /// with their `wait:dep` / `wait:barrier` idle intervals; `phases`
    /// and `<core>.spans` threads carry the named spans; queue occupancy
    /// is exported as counter tracks. Successive kernels are laid out
    /// sequentially on the time axis.
    ///
    /// The document is additionally stamped `"schema":"ascend-trace/v1"`
    /// and carries the launches' happens-before events under a top-level
    /// `"hbEvents"` key (concatenated across kernels, in launch order),
    /// so the `simlint` CLI can analyze a trace file offline via
    /// [`crate::trace::parse_hb_json`]. Chrome/Perfetto ignore the extra
    /// keys.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\"traceEvents\":[");
        let mut first = true;
        let mut base_us = 0.0f64;
        for k in &self.kernels {
            let ghz = if k.clock_ghz > 0.0 { k.clock_ghz } else { 1.0 };
            let base = base_us;
            let to_us = move |cycles: u64| base + cycles as f64 / (ghz * 1e3);
            let dur_us =
                |start: u64, end: u64| (end.saturating_sub(start) as f64 / (ghz * 1e3)).max(0.001);
            let mut emit = |s: String, first: &mut bool| {
                if !*first {
                    out.push(',');
                }
                *first = false;
                out.push_str(&s);
            };
            // Kernel root span, one per block.
            for b in 0..k.blocks {
                emit(
                    format!(
                        "{{\"name\":\"{}\",\"cat\":\"kernel\",\"ph\":\"X\",\"ts\":{:.3},\
                         \"dur\":{:.3},\"pid\":{},\"tid\":\"phases\"}}",
                        json_escape(&k.name),
                        to_us(0),
                        dur_us(0, k.cycles),
                        b,
                    ),
                    &mut first,
                );
            }
            for e in &k.events {
                emit(
                    format!(
                        "{{\"name\":\"{}\",\"cat\":\"engine\",\"ph\":\"X\",\"ts\":{:.3},\
                         \"dur\":{:.3},\"pid\":{},\"tid\":\"{}.{}\"}}",
                        json_escape(e.engine.name()),
                        to_us(e.start),
                        dur_us(e.start, e.end),
                        e.block,
                        core_label(e.core),
                        e.engine.name(),
                    ),
                    &mut first,
                );
            }
            for s in &k.stall_events {
                emit(
                    format!(
                        "{{\"name\":\"{}\",\"cat\":\"stall\",\"ph\":\"X\",\"ts\":{:.3},\
                         \"dur\":{:.3},\"pid\":{},\"tid\":\"{}.{}\"}}",
                        s.cause.label(),
                        to_us(s.start),
                        dur_us(s.start, s.end),
                        s.block,
                        core_label(s.core),
                        s.engine.name(),
                    ),
                    &mut first,
                );
            }
            for s in &k.spans {
                let tid = if s.core == BLOCK_SCOPE {
                    "phases".to_string()
                } else {
                    format!("{}.spans", core_label(s.core))
                };
                let args = match s.args {
                    Some(a) => format!(
                        ",\"args\":{{\"bytes\":{},\"kind\":\"{}\",\"queue_depth\":{}}}",
                        a.bytes,
                        json_escape(a.kind),
                        a.queue_depth
                    ),
                    None => String::new(),
                };
                emit(
                    format!(
                        "{{\"name\":\"{}\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":{:.3},\
                         \"dur\":{:.3},\"pid\":{},\"tid\":\"{}\"{}}}",
                        json_escape(s.name),
                        to_us(s.start),
                        dur_us(s.start, s.end),
                        s.block,
                        tid,
                        args,
                    ),
                    &mut first,
                );
            }
            for c in &k.counters {
                emit(
                    format!(
                        "{{\"name\":\"{}:{}\",\"ph\":\"C\",\"ts\":{:.3},\"pid\":{},\
                         \"args\":{{\"buffers\":{}}}}}",
                        json_escape(&core_label(c.core)),
                        json_escape(c.name),
                        to_us(c.time),
                        c.block,
                        c.value,
                    ),
                    &mut first,
                );
            }
            // On-critical-path marking: one `critical` thread per block
            // (pid 0 hosts launch-wide segments — launch latency, HBM
            // stretches, barrier releases) so the path reads as a
            // contiguous chain across the trace.
            if let Some(cp) = &k.critical_path {
                for s in &cp.segments {
                    if s.is_empty() {
                        continue;
                    }
                    let name = match (s.class, s.engine) {
                        (crate::critpath::SegClass::Busy, Some(e)) => {
                            format!("crit:{}:{}", s.class.label(), e.name())
                        }
                        _ => format!("crit:{}", s.class.label()),
                    };
                    emit(
                        format!(
                            "{{\"name\":\"{}\",\"cat\":\"critical\",\"ph\":\"X\",\
                             \"ts\":{:.3},\"dur\":{:.3},\"pid\":{},\"tid\":\"critical\",\
                             \"args\":{{\"phase\":\"{}\"}}}}",
                            name,
                            to_us(s.start),
                            dur_us(s.start, s.end),
                            s.block.unwrap_or(0),
                            json_escape(s.phase),
                        ),
                        &mut first,
                    );
                }
            }
            // Lay the next kernel out after this one with a small gap.
            base_us += k.cycles as f64 / (ghz * 1e3) * 1.05 + 1.0;
        }
        out.push_str("],\"schema\":\"ascend-trace/v1\",\"criticalPaths\":[");
        let mut first_cp = true;
        for k in &self.kernels {
            if let Some(cp) = &k.critical_path {
                if !first_cp {
                    out.push(',');
                }
                first_cp = false;
                // Prepend the kernel name to the path object.
                let body = cp.to_json(32);
                out.push_str(&format!(
                    "{{\"kernel\":\"{}\",{}",
                    json_escape(&k.name),
                    &body[1..]
                ));
            }
        }
        out.push_str("],\"hbEvents\":");
        let all_hb: Vec<HbEvent> = self
            .kernels
            .iter()
            .flat_map(|k| k.hb_events.iter().copied())
            .collect();
        out.push_str(&hb_events_json(&all_hb));
        out.push('}');
        out
    }
}

/// An explicit, launch-scoped profile collector.
///
/// The recorder is *per-launch state*: it is attached to the
/// [`GlobalMemory`](crate::mem::GlobalMemory) a launch runs against
/// ([`GlobalMemory::attach_profiler`](crate::mem::GlobalMemory::attach_profiler)),
/// and the launch machinery submits the finished [`KernelProfile`]
/// there. Unlike the thread-local collector it replaces, a recorder is
/// `Send + Sync` — launches on different memories can profile
/// concurrently from a host thread pool — and it cannot leak profiles
/// across sequential launches on the same host thread: a launch records
/// if and only if its own memory has a recorder attached.
#[derive(Debug, Default)]
pub struct ProfileRecorder {
    kernels: Mutex<Vec<KernelProfile>>,
}

impl ProfileRecorder {
    /// A fresh, empty recorder.
    pub fn new() -> Arc<ProfileRecorder> {
        Arc::new(ProfileRecorder::default())
    }

    /// Hands a finished launch's profile to the recorder.
    pub fn submit(&self, profile: KernelProfile) {
        self.kernels
            .lock()
            .expect("ProfileRecorder lock poisoned")
            .push(profile);
    }

    /// Drains everything recorded so far into a [`Profile`], in launch
    /// completion order.
    pub fn take(&self) -> Profile {
        Profile {
            kernels: std::mem::take(
                &mut self.kernels.lock().expect("ProfileRecorder lock poisoned"),
            ),
        }
    }
}

/// Runs `f` with profile collection enabled on `gm`: every kernel
/// launched against `gm` inside records spans, engine events, and stall
/// intervals, and the collected [`Profile`] is returned alongside `f`'s
/// result. Launches against *other* memories are unaffected.
///
/// Profiling is observational — simulated cycle counts are identical
/// with and without it.
pub fn with_profiling<R>(gm: &crate::mem::GlobalMemory, f: impl FnOnce() -> R) -> (R, Profile) {
    let recorder = gm.attach_profiler();
    let result = f();
    gm.detach_profiler();
    (result, recorder.take())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_a_no_op() {
        let mut r = SpanRecorder::new(1);
        let id = r.begin("phase", 100);
        assert_eq!(id, SpanId::NONE);
        r.end(id, 200);
        r.set_args(id, SpanArgs::default());
        assert!(r.take(0, BLOCK_SCOPE, 500).is_empty());
    }

    #[test]
    fn spans_nest_and_close() {
        let mut r = SpanRecorder::new(1);
        r.enable();
        let outer = r.begin("phase", 10);
        let inner = r.begin("tile", 20);
        r.set_args(
            inner,
            SpanArgs {
                bytes: 64,
                kind: "mmad",
                queue_depth: 2,
            },
        );
        r.end(inner, 30);
        let dangling = r.begin("tile", 35);
        assert_ne!(dangling, SpanId::NONE);
        r.end(outer, 40);
        let spans = r.take(3, 0, 100);
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].name, "phase");
        assert_eq!(spans[0].depth, 1);
        assert_eq!((spans[0].start, spans[0].end), (10, 40));
        assert_eq!(spans[1].depth, 2);
        assert_eq!(spans[1].args.unwrap().bytes, 64);
        // The dangling span is closed at the final time.
        assert_eq!(spans[2].end, 100);
        assert!(spans.iter().all(|s| s.block == 3 && s.core == 0));
    }

    #[test]
    fn span_end_clamps_to_start() {
        let mut r = SpanRecorder::new(0);
        r.enable();
        let id = r.begin("x", 50);
        r.end(id, 10);
        let spans = r.take(0, 0, 0);
        assert_eq!((spans[0].start, spans[0].end), (50, 50));
    }

    #[test]
    fn tally_absorbs_and_partitions() {
        let mut a = StallTally::default();
        a.dependency[EngineKind::Vec.index()] = 10;
        a.barrier[EngineKind::Vec.index()] = 5;
        a.flag[EngineKind::Vec.index()] = 4;
        a.contention[EngineKind::Mte2.index()] = 7;
        a.flag[EngineKind::Scalar.index()] = 2;
        let mut b = StallTally::default();
        b.dependency[EngineKind::Vec.index()] = 1;
        b.absorb(&a);
        assert_eq!(b.idle(EngineKind::Vec), 20);
        assert_eq!(b.total_idle(), 22);
        assert_eq!(b.contention[EngineKind::Mte2.index()], 7);
    }

    #[test]
    fn recorder_is_scoped_to_its_memory() {
        let gm1 = crate::mem::GlobalMemory::new(1 << 10);
        let gm2 = crate::mem::GlobalMemory::new(1 << 10);
        let ((), p1) = with_profiling(&gm1, || {
            // A launch submits to the recorder of the memory it runs
            // against; gm2 has none, so its submissions are dropped.
            gm1.profiler().unwrap().submit(KernelProfile {
                name: "a".into(),
                ..Default::default()
            });
            assert!(gm2.profiler().is_none());
        });
        assert_eq!(p1.kernels.len(), 1);
        assert_eq!(p1.kernels[0].name, "a");
        assert!(gm1.profiler().is_none(), "scope detaches on exit");
    }

    #[test]
    fn sequential_scopes_do_not_share_profiles() {
        // Regression: the old thread-local collector could leak profiles
        // across back-to-back launches on the same host thread.
        let gm = crate::mem::GlobalMemory::new(1 << 10);
        let ((), first) = with_profiling(&gm, || {
            gm.profiler().unwrap().submit(KernelProfile {
                name: "first".into(),
                ..Default::default()
            });
        });
        let ((), second) = with_profiling(&gm, || {
            gm.profiler().unwrap().submit(KernelProfile {
                name: "second".into(),
                ..Default::default()
            });
        });
        assert_eq!(first.kernels.len(), 1);
        assert_eq!(first.kernels[0].name, "first");
        assert_eq!(second.kernels.len(), 1);
        assert_eq!(second.kernels[0].name, "second");
    }

    #[test]
    fn recorder_take_drains() {
        let rec = ProfileRecorder::new();
        rec.submit(KernelProfile::default());
        assert_eq!(rec.take().kernels.len(), 1);
        assert!(rec.take().kernels.is_empty());
    }

    #[test]
    fn chrome_export_escapes_hostile_span_names() {
        let profile = Profile {
            kernels: vec![KernelProfile {
                name: "evil\"kernel\\\n".into(),
                clock_ghz: 1.0,
                blocks: 1,
                cycles: 1000,
                spans: vec![TraceSpan {
                    block: 0,
                    core: 0,
                    name: "tile \"0\"\t<end>",
                    depth: 2,
                    start: 10,
                    end: 20,
                    args: Some(SpanArgs {
                        bytes: 512,
                        kind: "mm\"ad",
                        queue_depth: 2,
                    }),
                }],
                ..Default::default()
            }],
        };
        let json = profile.to_chrome_json();
        assert!(json.contains("evil\\\"kernel\\\\\\n"));
        assert!(json.contains("tile \\\"0\\\"\\t<end>"));
        assert!(json.contains("\"kind\":\"mm\\\"ad\""));
        // No raw quote-in-name survives: the document still parses by
        // eye — balanced braces and brackets.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn chrome_export_embeds_hb_events_for_offline_lint() {
        use crate::trace::{parse_hb_json, HbAction};
        let mk = |name: &str, block| KernelProfile {
            name: name.into(),
            clock_ghz: 1.0,
            blocks: 1,
            cycles: 100,
            hb_events: vec![HbEvent {
                block,
                core: 0,
                time: 10,
                what: "DataCopy",
                action: HbAction::GmWrite { start: 0, end: 64 },
            }],
            ..Default::default()
        };
        let p = Profile {
            kernels: vec![mk("k1", 0), mk("k2", 1)],
        };
        let json = p.to_chrome_json();
        assert!(json.contains("\"schema\":\"ascend-trace/v1\""));
        let parsed = parse_hb_json(&json).unwrap();
        assert_eq!(parsed.len(), 2, "kernels concatenate in launch order");
        assert_eq!(parsed[0].block, 0);
        assert_eq!(parsed[1].block, 1);
        // Chrome-trace shape is preserved for Perfetto.
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn chrome_export_lays_kernels_out_sequentially() {
        let mk = |name: &str| KernelProfile {
            name: name.into(),
            clock_ghz: 1.0,
            blocks: 1,
            cycles: 2000,
            events: vec![TraceEvent {
                block: 0,
                core: 0,
                engine: EngineKind::Cube,
                start: 0,
                end: 1000,
            }],
            ..Default::default()
        };
        let p = Profile {
            kernels: vec![mk("k1"), mk("k2")],
        };
        let json = p.to_chrome_json();
        // Both kernels emit a CUBE event; the second must be offset.
        let mut ts: Vec<f64> = Vec::new();
        for part in json.split("\"cat\":\"engine\"").skip(1) {
            if let Some(rest) = part.split("\"ts\":").nth(1) {
                let num: String = rest
                    .chars()
                    .take_while(|c| c.is_ascii_digit() || *c == '.')
                    .collect();
                ts.push(num.parse().unwrap());
            }
        }
        assert_eq!(ts.len(), 2);
        assert!(ts[1] > ts[0] + 2.0, "second kernel laid out after first");
    }
}
