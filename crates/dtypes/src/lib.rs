//! Element types for the Ascend parallel-scan reproduction.
//!
//! The Ascend 910B cube unit natively multiplies `float16` matrices with
//! `float32` accumulation and `int8` matrices with `int32` accumulation.
//! The allowed dependency set contains no half-precision crate, so this
//! crate provides a from-scratch IEEE-754 binary16 implementation ([`F16`])
//! together with the type-level machinery the kernels need:
//!
//! * [`Element`] — anything that can live in simulator memory (sized,
//!   byte-serializable, with a runtime [`DType`] tag);
//! * [`Numeric`] — elements with arithmetic, used by scans and reductions;
//! * [`CubeInput`] — element types accepted by the cube engine, with their
//!   architectural accumulator type (`f16 → f32`, `i8 → i32`);
//! * [`radix`] — order-preserving bit encodings used by the radix-sort
//!   pre-/post-processing phases (Knuth §5.2.5, exercises 8 and 9).

#![forbid(unsafe_code)]

pub mod element;
pub mod f16;
pub mod radix;

pub use element::{CubeInput, DType, Element, Numeric};
pub use f16::F16;
pub use radix::RadixKey;
