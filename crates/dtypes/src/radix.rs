//! Order-preserving radix encodings for LSB radix sort.
//!
//! An unsigned LSB radix sort orders keys by their plain binary value, so
//! signed integers and floats must be transcoded first (the paper's
//! pre-processing phase, following Knuth §5.2.5 exercises 8–9 and the
//! CM-2 sorting paper it cites):
//!
//! * signed integers: flip the sign bit (maps `i16::MIN..=i16::MAX` onto
//!   `0..=u16::MAX` monotonically);
//! * IEEE floats: flip the sign bit of non-negative values and flip *all*
//!   bits of negative values. Positive floats already compare like
//!   unsigned integers bit-wise; the flip makes negatives order correctly
//!   and below positives.
//!
//! The post-processing phase applies the inverse transform. All encodings
//! here are exact involutive pairs: `decode(encode(x)) == x` bit-for-bit
//! (including NaN payloads and signed zeros).

use crate::f16::F16;

/// A sort key type: the unsigned integer domain an LSB radix sort works in.
///
/// `BITS` is the number of radix-sort passes a 1-bit-per-pass (split-based)
/// sort needs — 16 for `f16`, matching the paper's "top-p executes 17
/// scans: 16 for radix sort + 1 for the sampler" accounting.
pub trait RadixKey: Copy + Send + Sync + 'static {
    /// The unsigned encoded representation.
    type Encoded: Copy + Into<u64>;

    /// Number of significant key bits (= radix-sort passes at 1 bit/pass).
    const BITS: u32;

    /// Order-preserving encode into the unsigned domain.
    fn encode(self) -> Self::Encoded;

    /// Inverse of [`RadixKey::encode`].
    fn decode(enc: Self::Encoded) -> Self;

    /// Extracts bit `bit` (0 = LSB) of the encoded key as 0/1.
    fn encoded_bit(self, bit: u32) -> u8 {
        debug_assert!(bit < Self::BITS);
        ((self.encode().into() >> bit) & 1) as u8
    }
}

impl RadixKey for u8 {
    type Encoded = u8;
    const BITS: u32 = 8;

    #[inline]
    fn encode(self) -> u8 {
        self
    }

    #[inline]
    fn decode(enc: u8) -> u8 {
        enc
    }
}

impl RadixKey for i8 {
    type Encoded = u8;
    const BITS: u32 = 8;

    #[inline]
    fn encode(self) -> u8 {
        (self as u8) ^ 0x80
    }

    #[inline]
    fn decode(enc: u8) -> i8 {
        (enc ^ 0x80) as i8
    }
}

impl RadixKey for u16 {
    type Encoded = u16;
    const BITS: u32 = 16;

    #[inline]
    fn encode(self) -> u16 {
        self
    }

    #[inline]
    fn decode(enc: u16) -> u16 {
        enc
    }
}

impl RadixKey for u32 {
    type Encoded = u32;
    const BITS: u32 = 32;

    #[inline]
    fn encode(self) -> u32 {
        self
    }

    #[inline]
    fn decode(enc: u32) -> u32 {
        enc
    }
}

impl RadixKey for i16 {
    type Encoded = u16;
    const BITS: u32 = 16;

    #[inline]
    fn encode(self) -> u16 {
        (self as u16) ^ 0x8000
    }

    #[inline]
    fn decode(enc: u16) -> i16 {
        (enc ^ 0x8000) as i16
    }
}

impl RadixKey for i32 {
    type Encoded = u32;
    const BITS: u32 = 32;

    #[inline]
    fn encode(self) -> u32 {
        (self as u32) ^ 0x8000_0000
    }

    #[inline]
    fn decode(enc: u32) -> i32 {
        (enc ^ 0x8000_0000) as i32
    }
}

impl RadixKey for F16 {
    type Encoded = u16;
    const BITS: u32 = 16;

    /// Flip MSB of non-negatives, all bits of negatives.
    #[inline]
    fn encode(self) -> u16 {
        let bits = self.to_bits();
        if bits & 0x8000 != 0 {
            !bits
        } else {
            bits | 0x8000
        }
    }

    #[inline]
    fn decode(enc: u16) -> F16 {
        let bits = if enc & 0x8000 != 0 {
            enc & !0x8000
        } else {
            !enc
        };
        F16::from_bits(bits)
    }
}

impl RadixKey for f32 {
    type Encoded = u32;
    const BITS: u32 = 32;

    #[inline]
    fn encode(self) -> u32 {
        let bits = self.to_bits();
        if bits & 0x8000_0000 != 0 {
            !bits
        } else {
            bits | 0x8000_0000
        }
    }

    #[inline]
    fn decode(enc: u32) -> f32 {
        let bits = if enc & 0x8000_0000 != 0 {
            enc & !0x8000_0000
        } else {
            !enc
        };
        f32::from_bits(bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn i16_encode_monotone_at_boundaries() {
        assert_eq!(i16::MIN.encode(), 0);
        assert_eq!((-1i16).encode(), 0x7FFF);
        assert_eq!(0i16.encode(), 0x8000);
        assert_eq!(i16::MAX.encode(), 0xFFFF);
    }

    #[test]
    fn f16_encode_orders_specials() {
        let neg_inf = F16::NEG_INFINITY.encode();
        let neg_one = F16::NEG_ONE.encode();
        let neg_zero = F16::NEG_ZERO.encode();
        let zero = F16::ZERO.encode();
        let one = F16::ONE.encode();
        let inf = F16::INFINITY.encode();
        let nan = F16::NAN.encode();
        assert!(neg_inf < neg_one);
        assert!(neg_one < neg_zero);
        assert!(neg_zero < zero);
        assert!(zero < one);
        assert!(one < inf);
        assert!(inf < nan, "quiet +NaN sorts above +inf");
    }

    #[test]
    fn bit_extraction() {
        let v = 0b1010u16;
        assert_eq!(v.encoded_bit(0), 0);
        assert_eq!(v.encoded_bit(1), 1);
        assert_eq!(v.encoded_bit(2), 0);
        assert_eq!(v.encoded_bit(3), 1);
        // f16: 1.0 = 0x3C00, encoded 0xBC00 -> bit 15 set.
        assert_eq!(F16::ONE.encoded_bit(15), 1);
        assert_eq!(F16::NEG_ONE.encoded_bit(15), 0);
    }

    #[test]
    fn i8_encode_monotone_at_boundaries() {
        assert_eq!(i8::MIN.encode(), 0);
        assert_eq!((-1i8).encode(), 0x7F);
        assert_eq!(0i8.encode(), 0x80);
        assert_eq!(i8::MAX.encode(), 0xFF);
        assert_eq!(
            <u8 as RadixKey>::BITS,
            8,
            "8-bit sorts need half the passes of fp16"
        );
    }

    proptest! {
        #[test]
        fn u16_roundtrip(v in any::<u16>()) {
            prop_assert_eq!(u16::decode(v.encode()), v);
        }

        #[test]
        fn i8_roundtrip_and_monotone(a in any::<i8>(), b in any::<i8>()) {
            prop_assert_eq!(i8::decode(a.encode()), a);
            prop_assert_eq!(a < b, a.encode() < b.encode());
        }

        #[test]
        fn i16_roundtrip_and_monotone(a in any::<i16>(), b in any::<i16>()) {
            prop_assert_eq!(i16::decode(a.encode()), a);
            prop_assert_eq!(a < b, a.encode() < b.encode());
        }

        #[test]
        fn i32_roundtrip_and_monotone(a in any::<i32>(), b in any::<i32>()) {
            prop_assert_eq!(i32::decode(a.encode()), a);
            prop_assert_eq!(a < b, a.encode() < b.encode());
        }

        #[test]
        fn f16_roundtrip_bitexact(bits in any::<u16>()) {
            let v = F16::from_bits(bits);
            prop_assert_eq!(F16::decode(v.encode()).to_bits(), bits);
        }

        #[test]
        fn f16_encode_matches_total_order(a in any::<u16>(), b in any::<u16>()) {
            let (x, y) = (F16::from_bits(a), F16::from_bits(b));
            let cmp_enc = x.encode().cmp(&y.encode());
            prop_assert_eq!(cmp_enc, x.total_cmp(&y));
        }

        #[test]
        fn f32_roundtrip_bitexact(bits in any::<u32>()) {
            let v = f32::from_bits(bits);
            prop_assert_eq!(f32::decode(v.encode()).to_bits(), bits);
        }

        #[test]
        fn f32_encode_monotone_on_ordered(a in any::<f32>(), b in any::<f32>()) {
            prop_assume!(!a.is_nan() && !b.is_nan());
            if a < b {
                prop_assert!(a.encode() < b.encode());
            }
        }
    }
}
