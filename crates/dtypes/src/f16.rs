//! Software IEEE-754 binary16 ("half precision", `float16`).
//!
//! Layout: 1 sign bit, 5 exponent bits (bias 15), 10 mantissa bits.
//! Conversions implement round-to-nearest-even, matching hardware float
//! units (and the Ascend cast pipeline). Arithmetic is performed by
//! widening to `f32`, operating, and rounding back — the same numerics an
//! fp16-in/fp32-out vector engine exposes for single operations.

use std::cmp::Ordering;
use std::fmt;

/// IEEE-754 binary16 floating point number.
///
/// Stored as its raw bit pattern. All arithmetic round-trips through `f32`
/// (exact, since every f16 is representable in f32) with round-to-nearest-
/// even on the way back.
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash)]
#[repr(transparent)]
pub struct F16(pub u16);

const SIGN_MASK: u16 = 0x8000;
const EXP_MASK: u16 = 0x7C00;
const MAN_MASK: u16 = 0x03FF;

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0x0000);
    /// Negative zero.
    pub const NEG_ZERO: F16 = F16(0x8000);
    /// One.
    pub const ONE: F16 = F16(0x3C00);
    /// Negative one.
    pub const NEG_ONE: F16 = F16(0xBC00);
    /// Positive infinity.
    pub const INFINITY: F16 = F16(0x7C00);
    /// Negative infinity.
    pub const NEG_INFINITY: F16 = F16(0xFC00);
    /// A canonical quiet NaN.
    pub const NAN: F16 = F16(0x7E00);
    /// Largest finite value, 65504.
    pub const MAX: F16 = F16(0x7BFF);
    /// Most negative finite value, -65504.
    pub const MIN: F16 = F16(0xFBFF);
    /// Smallest positive normal value, 2^-14.
    pub const MIN_POSITIVE: F16 = F16(0x0400);
    /// Machine epsilon (2^-10).
    pub const EPSILON: F16 = F16(0x1400);

    /// Builds an `F16` from its raw bit pattern.
    #[inline]
    pub const fn from_bits(bits: u16) -> Self {
        F16(bits)
    }

    /// Returns the raw bit pattern.
    #[inline]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts an `f32` to `F16` with round-to-nearest-even.
    ///
    /// Values above the f16 range become infinities; subnormal results are
    /// produced exactly as IEEE demands; NaNs stay NaNs (payload is not
    /// preserved beyond a canonical quiet bit).
    pub fn from_f32(value: f32) -> Self {
        let bits = value.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xFF) as i32;
        let man = bits & 0x007F_FFFF;

        if exp == 0xFF {
            // Inf or NaN.
            return if man == 0 {
                F16(sign | EXP_MASK)
            } else {
                F16(sign | 0x7E00 | ((man >> 13) as u16 & MAN_MASK))
            };
        }

        // Unbiased exponent; f32 bias 127, f16 bias 15.
        let unbiased = exp - 127;
        if unbiased > 15 {
            // Overflows to infinity. (The largest f16 is 65504; anything
            // with unbiased exponent 16+ rounds to inf.)
            return F16(sign | EXP_MASK);
        }
        if unbiased >= -14 {
            // Normal range. Keep 10 mantissa bits, round-to-nearest-even
            // on the 13 dropped bits.
            let mut half_exp = (unbiased + 15) as u16;
            let mut half_man = (man >> 13) as u16;
            let round_bits = man & 0x1FFF;
            if round_bits > 0x1000 || (round_bits == 0x1000 && (half_man & 1) == 1) {
                half_man += 1;
                if half_man == 0x400 {
                    // Mantissa overflow carries into the exponent.
                    half_man = 0;
                    half_exp += 1;
                    if half_exp == 0x1F {
                        return F16(sign | EXP_MASK);
                    }
                }
            }
            return F16(sign | (half_exp << 10) | half_man);
        }

        // Subnormal or zero. The implicit leading 1 becomes explicit and
        // the value is shifted right until the exponent reaches -14.
        if unbiased < -25 {
            // Too small even for the largest subnormal rounding: zero.
            return F16(sign);
        }
        let full_man = man | 0x0080_0000; // make the leading 1 explicit
        let shift = (-14 - unbiased) as u32 + 13;
        let half_man = (full_man >> shift) as u16;
        let dropped = full_man & ((1 << shift) - 1);
        let halfway = 1u32 << (shift - 1);
        let rounded = match dropped.cmp(&halfway) {
            Ordering::Greater => half_man + 1,
            Ordering::Equal => half_man + (half_man & 1),
            Ordering::Less => half_man,
        };
        F16(sign | rounded) // a carry out of the subnormal range lands on MIN_POSITIVE, which is correct
    }

    /// Converts to `f32` exactly (every f16 value is representable).
    pub fn to_f32(self) -> f32 {
        let sign = u32::from(self.0 & SIGN_MASK) << 16;
        let exp = (self.0 & EXP_MASK) >> 10;
        let man = u32::from(self.0 & MAN_MASK);

        let bits = match exp {
            0 => {
                if man == 0 {
                    sign // signed zero
                } else {
                    // Subnormal: value = man * 2^-24. Normalize by locating
                    // the MSB (position p in 0..=9), giving 2^(p-24) * 1.frac.
                    let p = 31 - man.leading_zeros();
                    let exp = 103 + p; // (p - 24) + 127
                    let frac = (man << (23 - p)) & 0x007F_FFFF;
                    sign | (exp << 23) | frac
                }
            }
            0x1F => {
                if man == 0 {
                    sign | 0x7F80_0000
                } else {
                    sign | 0x7FC0_0000 | (man << 13)
                }
            }
            _ => {
                let exp = u32::from(exp) + 127 - 15;
                sign | (exp << 23) | (man << 13)
            }
        };
        f32::from_bits(bits)
    }

    /// Converts an `f64` (rounds through `f32`; fine for test helpers).
    pub fn from_f64(value: f64) -> Self {
        Self::from_f32(value as f32)
    }

    /// Converts to `f64` exactly.
    pub fn to_f64(self) -> f64 {
        f64::from(self.to_f32())
    }

    /// True if the value is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        (self.0 & EXP_MASK) == EXP_MASK && (self.0 & MAN_MASK) != 0
    }

    /// True if the value is +/- infinity.
    #[inline]
    pub fn is_infinite(self) -> bool {
        (self.0 & EXP_MASK) == EXP_MASK && (self.0 & MAN_MASK) == 0
    }

    /// True if the value is finite (neither infinite nor NaN).
    #[inline]
    pub fn is_finite(self) -> bool {
        (self.0 & EXP_MASK) != EXP_MASK
    }

    /// True if the sign bit is set (including -0.0 and negative NaNs).
    #[inline]
    pub fn is_sign_negative(self) -> bool {
        (self.0 & SIGN_MASK) != 0
    }

    /// Absolute value (clears the sign bit).
    #[inline]
    pub fn abs(self) -> Self {
        F16(self.0 & !SIGN_MASK)
    }

    /// IEEE total order comparison used by sorting tests: treats -NaN as
    /// the smallest and +NaN as the largest value, and -0 < +0.
    pub fn total_cmp(&self, other: &Self) -> Ordering {
        let key = |f: &F16| -> i32 {
            let bits = f.0 as i32;
            // Flip all bits of negatives, only the sign of positives
            // (identical to the radix-sort encoding).
            if bits & 0x8000 != 0 {
                !bits & 0xFFFF
            } else {
                bits | 0x8000
            }
        };
        key(self).cmp(&key(other))
    }
}

impl fmt::Debug for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}f16", self.to_f32())
    }
}

impl fmt::Display for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f32(), f)
    }
}

impl PartialOrd for F16 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

impl From<f32> for F16 {
    fn from(v: f32) -> Self {
        F16::from_f32(v)
    }
}

impl From<F16> for f32 {
    fn from(v: F16) -> Self {
        v.to_f32()
    }
}

impl From<i16> for F16 {
    fn from(v: i16) -> Self {
        F16::from_f32(f32::from(v))
    }
}

macro_rules! f16_binop {
    ($trait:ident, $method:ident, $op:tt) => {
        impl std::ops::$trait for F16 {
            type Output = F16;
            #[inline]
            fn $method(self, rhs: F16) -> F16 {
                F16::from_f32(self.to_f32() $op rhs.to_f32())
            }
        }
    };
}

f16_binop!(Add, add, +);
f16_binop!(Sub, sub, -);
f16_binop!(Mul, mul, *);
f16_binop!(Div, div, /);

impl std::ops::Neg for F16 {
    type Output = F16;
    #[inline]
    fn neg(self) -> F16 {
        F16(self.0 ^ SIGN_MASK)
    }
}

impl std::ops::AddAssign for F16 {
    #[inline]
    fn add_assign(&mut self, rhs: F16) {
        *self = *self + rhs;
    }
}

impl std::iter::Sum for F16 {
    fn sum<I: Iterator<Item = F16>>(iter: I) -> F16 {
        iter.fold(F16::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constants_round_trip() {
        assert_eq!(F16::ONE.to_f32(), 1.0);
        assert_eq!(F16::NEG_ONE.to_f32(), -1.0);
        assert_eq!(F16::ZERO.to_f32(), 0.0);
        assert_eq!(F16::MAX.to_f32(), 65504.0);
        assert_eq!(F16::MIN.to_f32(), -65504.0);
        assert_eq!(F16::MIN_POSITIVE.to_f32(), 6.103_515_6e-5);
        assert!(F16::NAN.is_nan());
        assert!(F16::INFINITY.is_infinite());
        assert!(!F16::INFINITY.is_sign_negative());
        assert!(F16::NEG_INFINITY.is_sign_negative());
    }

    #[test]
    fn simple_values() {
        for v in [
            0.5f32,
            2.0,
            3.5,
            100.0,
            -0.25,
            1024.0,
            0.1,
            -std::f32::consts::PI,
        ] {
            let h = F16::from_f32(v);
            let back = h.to_f32();
            let rel = ((back - v) / v).abs();
            assert!(rel < 1e-3, "{v} -> {back} rel err {rel}");
        }
    }

    #[test]
    fn exact_small_integers() {
        // All integers up to 2048 are exactly representable in f16.
        for i in 0..=2048i32 {
            let h = F16::from_f32(i as f32);
            assert_eq!(h.to_f32(), i as f32, "integer {i} must be exact");
        }
    }

    #[test]
    fn overflow_to_infinity() {
        assert!(F16::from_f32(65520.0).is_infinite());
        assert!(F16::from_f32(1e9).is_infinite());
        assert!(F16::from_f32(-1e9).is_infinite());
        assert!(F16::from_f32(-1e9).is_sign_negative());
        // 65504 + a bit under half an ulp stays finite.
        assert_eq!(F16::from_f32(65519.0), F16::MAX);
    }

    #[test]
    fn underflow_and_subnormals() {
        // Largest subnormal: (1023/1024) * 2^-14.
        let largest_sub = F16::from_bits(0x03FF);
        let v = largest_sub.to_f32();
        assert!(v > 0.0 && v < F16::MIN_POSITIVE.to_f32());
        assert_eq!(F16::from_f32(v), largest_sub);
        // Smallest subnormal: 2^-24.
        let smallest = F16::from_bits(0x0001);
        assert_eq!(smallest.to_f32(), 2.0f32.powi(-24));
        assert_eq!(F16::from_f32(2.0f32.powi(-24)), smallest);
        // Halfway below the smallest subnormal rounds to zero (ties-to-even).
        assert_eq!(F16::from_f32(2.0f32.powi(-26)), F16::ZERO);
    }

    #[test]
    fn subnormal_boundary_round_trips_exactly() {
        // Regression guard for proptest-regressions/f16.txt ("shrinks to
        // bits = 1"): the smallest subnormal (0x0001), the largest
        // subnormal (0x03FF), and the smallest normal (0x0400) must all
        // survive the f32 round trip bit-exactly, in both signs.
        for bits in [0x0001u16, 0x03FF, 0x0400] {
            for sign in [0x0000u16, 0x8000] {
                let h = F16::from_bits(bits | sign);
                let rt = F16::from_f32(h.to_f32());
                assert_eq!(rt.to_bits(), bits | sign, "bits {:#06x}", bits | sign);
            }
        }
        assert_eq!(F16::from_bits(0x0001).to_f32(), 2.0f32.powi(-24));
        assert_eq!(F16::from_bits(0x03FF).to_f32(), 1023.0 * 2.0f32.powi(-24));
        assert_eq!(F16::from_bits(0x0400).to_f32(), 2.0f32.powi(-14));
    }

    #[test]
    fn roundtrip_is_identity_for_every_bit_pattern() {
        // Exhaustive over all 65536 patterns: stronger than the sampled
        // proptest below, and permanent cover for the subnormal boundary.
        for bits in 0..=u16::MAX {
            let h = F16::from_bits(bits);
            let rt = F16::from_f32(h.to_f32());
            if h.is_nan() {
                assert!(rt.is_nan(), "bits {bits:#06x}");
            } else {
                assert_eq!(rt.to_bits(), bits, "bits {bits:#06x}");
            }
        }
    }

    #[test]
    fn round_to_nearest_even() {
        // 1 + 2^-11 is exactly halfway between 1.0 and 1+2^-10: ties to even -> 1.0.
        assert_eq!(F16::from_f32(1.0 + 2.0f32.powi(-11)), F16::ONE);
        // 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9: ties to even -> 1+2^-9.
        let expected = F16::from_bits(0x3C02);
        assert_eq!(F16::from_f32(1.0 + 3.0 * 2.0f32.powi(-11)), expected);
        // Just above halfway rounds up.
        assert_eq!(
            F16::from_f32(1.0 + 2.0f32.powi(-11) + 1e-7),
            F16::from_bits(0x3C01)
        );
    }

    #[test]
    fn signed_zero() {
        assert_eq!(F16::from_f32(-0.0).to_bits(), 0x8000);
        assert_eq!(F16::from_f32(0.0).to_bits(), 0x0000);
        assert_eq!(F16::NEG_ZERO.to_f32().to_bits(), (-0.0f32).to_bits());
    }

    #[test]
    fn arithmetic() {
        let a = F16::from_f32(1.5);
        let b = F16::from_f32(2.25);
        assert_eq!((a + b).to_f32(), 3.75);
        assert_eq!((b - a).to_f32(), 0.75);
        assert_eq!((a * b).to_f32(), 3.375);
        assert_eq!((b / F16::from_f32(0.5)).to_f32(), 4.5);
        assert_eq!((-a).to_f32(), -1.5);
    }

    #[test]
    fn total_cmp_ordering() {
        let mut vals = vec![
            F16::NAN,
            F16::INFINITY,
            F16::MAX,
            F16::ONE,
            F16::MIN_POSITIVE,
            F16::ZERO,
            F16::NEG_ZERO,
            F16::NEG_ONE,
            F16::MIN,
            F16::NEG_INFINITY,
        ];
        vals.sort_by(F16::total_cmp);
        let expect = [
            F16::NEG_INFINITY,
            F16::MIN,
            F16::NEG_ONE,
            F16::NEG_ZERO,
            F16::ZERO,
            F16::MIN_POSITIVE,
            F16::ONE,
            F16::MAX,
            F16::INFINITY,
            F16::NAN,
        ];
        assert_eq!(vals, expect);
    }

    #[test]
    fn nan_propagates() {
        assert!((F16::NAN + F16::ONE).is_nan());
        assert!(F16::from_f32(f32::NAN).is_nan());
        assert!((F16::INFINITY - F16::INFINITY).is_nan());
    }

    proptest! {
        #[test]
        fn roundtrip_through_f32_is_identity(bits in any::<u16>()) {
            let h = F16::from_bits(bits);
            let rt = F16::from_f32(h.to_f32());
            if h.is_nan() {
                prop_assert!(rt.is_nan());
            } else {
                prop_assert_eq!(h, rt);
            }
        }

        #[test]
        fn from_f32_matches_reference_as_casts(v in -70000.0f32..70000.0) {
            // Rust's `as` f32->f16 isn't available on stable without the
            // `f16` type; instead cross-check monotonicity + error bound.
            let h = F16::from_f32(v);
            if h.is_finite() {
                let err = (h.to_f32() - v).abs();
                // Half an ulp at the value's scale (2^-11 relative), or the
                // subnormal quantum for tiny values.
                let bound = f32::max(v.abs() * 2.0f32.powi(-11), 2.0f32.powi(-25));
                prop_assert!(err <= bound, "v={v} h={} err={err} bound={bound}", h.to_f32());
            }
        }

        #[test]
        fn conversion_is_monotone(a in -70000.0f32..70000.0, b in -70000.0f32..70000.0) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let (hl, hh) = (F16::from_f32(lo), F16::from_f32(hi));
            if hl.is_finite() && hh.is_finite() {
                prop_assert!(hl.to_f32() <= hh.to_f32());
            }
        }

        #[test]
        fn neg_is_involution(bits in any::<u16>()) {
            let h = F16::from_bits(bits);
            prop_assert_eq!((-(-h)).to_bits(), h.to_bits());
        }
    }
}
