//! Element and numeric traits shared by the simulator and the kernels.

use crate::f16::F16;
use std::fmt;

/// Runtime tag for an element type stored in simulator memory.
///
/// Mirrors the data types the Ascend 910B compute engines accept. The cube
/// engine consumes `F16` (accumulating in `F32`) and `I8`/`U8` (accumulating
/// in `I32`); the vector engine additionally handles the 16/32-bit integer
/// types used by index bookkeeping.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DType {
    /// 8-bit unsigned integer (mask / boolean storage).
    U8,
    /// 8-bit signed integer (cube low-precision input).
    I8,
    /// 16-bit unsigned integer.
    U16,
    /// 16-bit signed integer.
    I16,
    /// 32-bit unsigned integer (indices).
    U32,
    /// 32-bit signed integer (cube int8 accumulator output).
    I32,
    /// IEEE binary16 (cube fp16 input).
    F16,
    /// IEEE binary32 (cube fp16 accumulator output).
    F32,
}

impl DType {
    /// Size of one element in bytes.
    #[inline]
    pub const fn size(self) -> usize {
        match self {
            DType::U8 | DType::I8 => 1,
            DType::U16 | DType::I16 | DType::F16 => 2,
            DType::U32 | DType::I32 | DType::F32 => 4,
        }
    }

    /// Short lowercase name, as used in figure labels (`fp16`, `int8`, ...).
    pub const fn name(self) -> &'static str {
        match self {
            DType::U8 => "uint8",
            DType::I8 => "int8",
            DType::U16 => "uint16",
            DType::I16 => "int16",
            DType::U32 => "uint32",
            DType::I32 => "int32",
            DType::F16 => "fp16",
            DType::F32 => "fp32",
        }
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An element that can be stored in simulated global or local memory.
///
/// Elements serialize to little-endian bytes; the simulator's memory is a
/// plain byte buffer, so every tensor access goes through these methods.
pub trait Element: Copy + Send + Sync + PartialEq + fmt::Debug + 'static {
    /// The runtime type tag.
    const DTYPE: DType;

    /// Byte size (same as `Self::DTYPE.size()`, const for array sizing).
    const SIZE: usize;

    /// Serializes into `out` (`out.len() == Self::SIZE`).
    fn write_le(&self, out: &mut [u8]);

    /// Deserializes from `src` (`src.len() == Self::SIZE`).
    fn read_le(src: &[u8]) -> Self;

    /// The additive identity.
    fn zero() -> Self;
}

macro_rules! impl_element_prim {
    ($t:ty, $dtype:expr) => {
        impl Element for $t {
            const DTYPE: DType = $dtype;
            const SIZE: usize = std::mem::size_of::<$t>();

            #[inline]
            fn write_le(&self, out: &mut [u8]) {
                out.copy_from_slice(&self.to_le_bytes());
            }

            #[inline]
            fn read_le(src: &[u8]) -> Self {
                <$t>::from_le_bytes(src.try_into().expect("element size mismatch"))
            }

            #[inline]
            fn zero() -> Self {
                0 as $t
            }
        }
    };
}

impl_element_prim!(u8, DType::U8);
impl_element_prim!(i8, DType::I8);
impl_element_prim!(u16, DType::U16);
impl_element_prim!(i16, DType::I16);
impl_element_prim!(u32, DType::U32);
impl_element_prim!(i32, DType::I32);
impl_element_prim!(f32, DType::F32);

impl Element for F16 {
    const DTYPE: DType = DType::F16;
    const SIZE: usize = 2;

    #[inline]
    fn write_le(&self, out: &mut [u8]) {
        out.copy_from_slice(&self.0.to_le_bytes());
    }

    #[inline]
    fn read_le(src: &[u8]) -> Self {
        F16(u16::from_le_bytes(src.try_into().expect("f16 size")))
    }

    #[inline]
    fn zero() -> Self {
        F16::ZERO
    }
}

/// Numeric elements: what the vector engine's arithmetic instructions and
/// the scan kernels operate on.
///
/// Integer arithmetic wraps (hardware vector units do not trap on
/// overflow); float arithmetic follows IEEE with f16 round-tripping through
/// f32 per operation.
pub trait Numeric: Element + PartialOrd {
    /// The multiplicative identity.
    fn one() -> Self;

    /// Wrapping/IEEE addition.
    fn add(self, rhs: Self) -> Self;

    /// Wrapping/IEEE subtraction.
    fn sub(self, rhs: Self) -> Self;

    /// Wrapping/IEEE multiplication.
    fn mul(self, rhs: Self) -> Self;

    /// Lossy conversion to `f64` (used for bandwidth math and references).
    fn to_f64(self) -> f64;

    /// Lossy conversion from `f64` with the type's native rounding.
    fn from_f64(v: f64) -> Self;
}

macro_rules! impl_numeric_int {
    ($t:ty) => {
        impl Numeric for $t {
            #[inline]
            fn one() -> Self {
                1 as $t
            }
            #[inline]
            fn add(self, rhs: Self) -> Self {
                self.wrapping_add(rhs)
            }
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                self.wrapping_sub(rhs)
            }
            #[inline]
            fn mul(self, rhs: Self) -> Self {
                self.wrapping_mul(rhs)
            }
            #[inline]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline]
            fn from_f64(v: f64) -> Self {
                v as $t
            }
        }
    };
}

impl_numeric_int!(u8);
impl_numeric_int!(i8);
impl_numeric_int!(u16);
impl_numeric_int!(i16);
impl_numeric_int!(u32);
impl_numeric_int!(i32);

impl Numeric for f32 {
    #[inline]
    fn one() -> Self {
        1.0
    }
    #[inline]
    fn add(self, rhs: Self) -> Self {
        self + rhs
    }
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        self - rhs
    }
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        self * rhs
    }
    #[inline]
    fn to_f64(self) -> f64 {
        f64::from(self)
    }
    #[inline]
    fn from_f64(v: f64) -> Self {
        v as f32
    }
}

impl Numeric for F16 {
    #[inline]
    fn one() -> Self {
        F16::ONE
    }
    #[inline]
    fn add(self, rhs: Self) -> Self {
        self + rhs
    }
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        self - rhs
    }
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        self * rhs
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self.to_f64()
    }
    #[inline]
    fn from_f64(v: f64) -> Self {
        F16::from_f64(v)
    }
}

/// Element types the cube engine accepts as matrix inputs, together with
/// their architectural accumulator type.
///
/// On Ascend 910B the cube engine supports `float16` inputs with `float32`
/// accumulation (L0C holds f32) and `int8` inputs with `int32`
/// accumulation. `u8` rides the int8 datapath (masks are 0/1 so signedness
/// is irrelevant) — this is what the paper's int8 scan specialization and
/// the split/compress mask path use.
pub trait CubeInput: Numeric {
    /// The accumulator/output element type (`f32` for `F16`, `i32` for
    /// `i8`/`u8`).
    type Acc: Numeric;

    /// Multiplies two scalars into the accumulator domain.
    fn mac(a: Self, b: Self) -> Self::Acc;

    /// Converts an input element into the accumulator domain.
    fn widen(self) -> Self::Acc;

    /// Relative throughput of the cube engine for this type compared to
    /// fp16, expressed in quarter-rate units: fp16 = 4, int8 = 8 (2x),
    /// fp32 = 1 (1/4x) on the 910B cube.
    const CUBE_RATE_X4: u32;
}

impl CubeInput for F16 {
    type Acc = f32;

    #[inline]
    fn mac(a: Self, b: Self) -> f32 {
        // The cube multiplies fp16 exactly into fp32 (a product of two
        // 11-bit significands fits in 24 bits).
        a.to_f32() * b.to_f32()
    }

    #[inline]
    fn widen(self) -> f32 {
        self.to_f32()
    }

    const CUBE_RATE_X4: u32 = 4;
}

impl CubeInput for i8 {
    type Acc = i32;

    #[inline]
    fn mac(a: Self, b: Self) -> i32 {
        i32::from(a) * i32::from(b)
    }

    #[inline]
    fn widen(self) -> i32 {
        i32::from(self)
    }

    const CUBE_RATE_X4: u32 = 8;
}

impl CubeInput for u8 {
    type Acc = i32;

    #[inline]
    fn mac(a: Self, b: Self) -> i32 {
        i32::from(a) * i32::from(b)
    }

    #[inline]
    fn widen(self) -> i32 {
        i32::from(self)
    }

    const CUBE_RATE_X4: u32 = 8;
}

impl CubeInput for f32 {
    type Acc = f32;

    #[inline]
    fn mac(a: Self, b: Self) -> f32 {
        a * b
    }

    #[inline]
    fn widen(self) -> f32 {
        self
    }

    const CUBE_RATE_X4: u32 = 1;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtype_sizes() {
        assert_eq!(DType::U8.size(), 1);
        assert_eq!(DType::I8.size(), 1);
        assert_eq!(DType::F16.size(), 2);
        assert_eq!(DType::I16.size(), 2);
        assert_eq!(DType::F32.size(), 4);
        assert_eq!(DType::I32.size(), 4);
        assert_eq!(DType::U32.size(), 4);
    }

    #[test]
    fn element_round_trip() {
        fn rt<T: Element>(v: T) {
            let mut buf = vec![0u8; T::SIZE];
            v.write_le(&mut buf);
            assert_eq!(T::read_le(&buf), v);
        }
        rt(0x12u8);
        rt(-5i8);
        rt(0xBEEFu16);
        rt(-1234i16);
        rt(0xDEAD_BEEFu32);
        rt(-123_456_789i32);
        rt(3.5f32);
        rt(F16::from_f32(2.5));
    }

    #[test]
    fn numeric_wrapping() {
        assert_eq!(Numeric::add(255u8, 1u8), 0);
        assert_eq!(Numeric::add(i32::MAX, 1), i32::MIN);
        assert_eq!(Numeric::mul(200u8, 2u8), 144); // 400 mod 256
    }

    #[test]
    fn cube_mac_domains() {
        assert_eq!(
            <F16 as CubeInput>::mac(F16::from_f32(3.0), F16::from_f32(4.0)),
            12.0f32
        );
        assert_eq!(<i8 as CubeInput>::mac(-100, 100), -10000i32);
        assert_eq!(<u8 as CubeInput>::mac(1, 1), 1i32);
        assert_eq!(F16::CUBE_RATE_X4, 4);
        assert_eq!(<i8 as CubeInput>::CUBE_RATE_X4, 8);
        assert_eq!(<f32 as CubeInput>::CUBE_RATE_X4, 1);
    }

    #[test]
    fn dtype_names_match_paper_labels() {
        assert_eq!(DType::F16.name(), "fp16");
        assert_eq!(DType::I8.name(), "int8");
        assert_eq!(DType::F16.to_string(), "fp16");
    }

    #[test]
    fn widen_preserves_value() {
        assert_eq!(CubeInput::widen(F16::from_f32(7.5)), 7.5f32);
        assert_eq!(CubeInput::widen(-7i8), -7i32);
        assert_eq!(CubeInput::widen(200u8), 200i32);
    }
}
