//! # ascend-scan
//!
//! Parallel prefix-sum (scan) algorithms and scan-based operators for
//! (simulated) Ascend AI accelerators — a from-scratch Rust reproduction
//! of *"Parallel Scan on Ascend AI Accelerators"* (Wróblewski, Gottardo,
//! Zouzias; IPPS 2025).
//!
//! The crate is a facade over the workspace:
//!
//! * [`sim`] ([`ascend_sim`]) — a deterministic functional + timing
//!   simulator of the Ascend 910B "DaVinci" architecture (cube/vector
//!   engines, MTEs, scratchpads, HBM/L2 bandwidth model);
//! * [`ascendc`] — the AscendC programming model embedded in Rust
//!   (global/local tensors, queues, intrinsics, kernel launch);
//! * [`scan`] — the paper's scan algorithms: ScanU, ScanUL1, the
//!   multi-core MCScan, batched variants, and the vector-only baseline;
//! * [`ops`] — scan-based operators: split, compress, radix sort, top-k,
//!   top-p (nucleus) sampling, weighted sampling, plus the PyTorch-Ascend
//!   baselines;
//! * [`dtypes`] — software `f16` and the element/radix-key traits.
//!
//! ## Quickstart
//!
//! ```
//! use ascend_scan::Device;
//! use ascend_scan::dtypes::F16;
//!
//! // A simulated Ascend 910B4 (20 cube cores, 40 vector cores).
//! let dev = Device::ascend_910b4();
//!
//! // Scan a million-element fp16 array on all cores.
//! let xs: Vec<F16> = (0..1_000_000).map(|i| F16::from_f32((i % 2) as f32)).collect();
//! let x = dev.tensor(&xs).unwrap();
//! let run = dev.cumsum(&x).unwrap();
//!
//! // The prefix sums are non-decreasing and the report carries the
//! // simulated execution profile.
//! let y = run.y.to_vec();
//! assert!(y.windows(2).take(1000).all(|w| w[0].to_f32() <= w[1].to_f32()));
//! println!("simulated time: {:.1} us at {:.0} GB/s", run.report.time_us(), run.report.gbps());
//! assert!(run.report.gbps() > 100.0);
//! ```

pub use ascend_sim as sim;
pub use ascendc;
pub use dtypes;
pub use ops;
pub use scan;

pub use ascend_sim::{ChipSpec, KernelReport, SimError, SimResult};
pub use ascendc::GlobalTensor;
pub use dtypes::{Element, F16};
pub use scan::mcscan::{McScanConfig, ScanKind};
pub use scan::scanc::ScanCConfig;
pub use scan::ScanRun;

use ascend_sim::mem::GlobalMemory;
use dtypes::{CubeInput, Numeric, RadixKey};
use std::sync::Arc;

/// A simulated accelerator: a chip specification plus its global memory.
///
/// Thin convenience wrapper so applications don't thread `(&ChipSpec,
/// &Arc<GlobalMemory>)` everywhere; all operators remain available as
/// free functions in [`scan`] and [`ops`] for fine-grained control.
pub struct Device {
    spec: ChipSpec,
    gm: Arc<GlobalMemory>,
}

impl Device {
    /// A simulated Ascend 910B4 — the paper's evaluation platform.
    pub fn ascend_910b4() -> Self {
        Self::with_spec(ChipSpec::ascend_910b4())
    }

    /// A device with a custom chip specification.
    pub fn with_spec(spec: ChipSpec) -> Self {
        let gm = Arc::new(GlobalMemory::new(spec.hbm_capacity));
        Device { spec, gm }
    }

    /// The chip specification.
    pub fn spec(&self) -> &ChipSpec {
        &self.spec
    }

    /// The device's global memory.
    pub fn memory(&self) -> &Arc<GlobalMemory> {
        &self.gm
    }

    /// Uploads a host slice into a new global tensor.
    pub fn tensor<T: Element>(&self, data: &[T]) -> SimResult<GlobalTensor<T>> {
        GlobalTensor::from_slice(&self.gm, data)
    }

    /// Allocates a zeroed global tensor.
    pub fn zeros<T: Element>(&self, len: usize) -> SimResult<GlobalTensor<T>> {
        GlobalTensor::new(&self.gm, len)
    }

    /// Inclusive scan with MCScan on all cores (`s = 128`), the paper's
    /// flagship configuration.
    pub fn cumsum<T: CubeInput>(&self, x: &GlobalTensor<T>) -> SimResult<ScanRun<T>> {
        scan::mcscan::mcscan::<T, T, T>(&self.spec, &self.gm, x, McScanConfig::for_chip(&self.spec))
    }

    /// Exclusive int8-mask scan (`u8 → i16 → i32`), the split/compress
    /// building block.
    pub fn mask_exclusive_scan(&self, mask: &GlobalTensor<u8>) -> SimResult<ScanRun<i32>> {
        let mut cfg = McScanConfig::for_chip(&self.spec);
        cfg.kind = ScanKind::Exclusive;
        scan::mcscan::mcscan::<u8, i16, i32>(&self.spec, &self.gm, mask, cfg)
    }

    /// Stable split by mask, with original indices.
    pub fn split<E: Element>(
        &self,
        x: &GlobalTensor<E>,
        mask: &GlobalTensor<u8>,
    ) -> SimResult<ops::SplitRun<E>> {
        ops::split_ind(&self.spec, &self.gm, x, mask, 128, self.spec.ai_cores)
    }

    /// `masked_select`: compacts the mask-selected elements.
    pub fn compress<E: Element>(
        &self,
        x: &GlobalTensor<E>,
        mask: &GlobalTensor<u8>,
    ) -> SimResult<ops::compress::CompressRun<E>> {
        ops::compress(&self.spec, &self.gm, x, mask, 128, self.spec.ai_cores)
    }

    /// Stable radix sort (values + argsort indices).
    pub fn sort<K>(&self, x: &GlobalTensor<K>, order: ops::SortOrder) -> SimResult<ops::SortRun<K>>
    where
        K: RadixKey + Element,
        K::Encoded: Element + ascendc::Bits + Numeric,
    {
        ops::radix_sort(&self.spec, &self.gm, x, 128, self.spec.ai_cores, order)
    }

    /// Top-k selection (unsorted top set + indices).
    pub fn topk<K>(&self, x: &GlobalTensor<K>, k: usize) -> SimResult<ops::topk::TopKRun<K>>
    where
        K: RadixKey + Element,
        K::Encoded: Element + ascendc::Bits + Numeric,
    {
        ops::topk(&self.spec, &self.gm, x, k, 128, self.spec.ai_cores)
    }

    /// Top-p (nucleus) sampling from an fp16 probability vector.
    pub fn top_p(
        &self,
        probs: &GlobalTensor<F16>,
        p: f64,
        theta: f64,
    ) -> SimResult<ops::topp::TopPRun> {
        ops::top_p_sample(
            &self.spec,
            &self.gm,
            probs,
            p,
            theta,
            128,
            self.spec.ai_cores,
        )
    }

    /// Weighted sampling by inverse transform (unbounded support size).
    pub fn weighted_sample<W: CubeInput>(
        &self,
        w: &GlobalTensor<W>,
        theta: f64,
    ) -> SimResult<ops::weighted::WeightedRun> {
        ops::weighted_sample(&self.spec, &self.gm, w, theta, 128, self.spec.ai_cores)
    }

    /// Sum reduction on the cube units (`A @ 1s` row sums).
    pub fn reduce<T: CubeInput>(&self, x: &GlobalTensor<T>) -> SimResult<scan::ReduceRun<T::Acc>> {
        scan::reduce_cube::<T>(&self.spec, &self.gm, x, 128, self.spec.ai_cores)
    }

    /// Builds an alias table for O(1)-per-draw weighted sampling.
    pub fn alias_table(&self, w: &GlobalTensor<f32>) -> SimResult<ops::AliasTable> {
        ops::build_alias_table(&self.spec, &self.gm, w, 128, self.spec.ai_cores)
    }

    /// Draws many samples from an alias table.
    pub fn alias_sample(
        &self,
        table: &ops::AliasTable,
        thetas: &[(f64, f64)],
    ) -> SimResult<(Vec<u32>, KernelReport)> {
        ops::alias_sample_many(&self.spec, &self.gm, table, thetas)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_end_to_end_cumsum() {
        let dev = Device::with_spec(ChipSpec::tiny());
        let xs: Vec<i8> = (0..5000).map(|i| (i % 3) as i8).collect();
        let x = dev.tensor(&xs).unwrap();
        let run = scan::mcscan::mcscan::<i8, i32, i32>(
            dev.spec(),
            dev.memory(),
            &x,
            McScanConfig {
                s: 16,
                blocks: 2,
                kind: ScanKind::Inclusive,
            },
        )
        .unwrap();
        assert_eq!(
            run.y.to_vec(),
            scan::reference::inclusive_widening::<i8, i32>(&xs)
        );
    }

    #[test]
    fn device_wrappers_run_on_tiny_chip() {
        // The Device defaults target the 910B4 (s = 128); exercise the
        // full-size path once with a small input.
        let dev = Device::ascend_910b4();
        let mask: Vec<u8> = (0..40_000).map(|i| (i % 2) as u8).collect();
        let m = dev.tensor(&mask).unwrap();
        let scanrun = dev.mask_exclusive_scan(&m).unwrap();
        let expect = scan::reference::exclusive_widening::<u8, i32>(&mask);
        assert_eq!(scanrun.y.to_vec(), expect);

        let vals: Vec<u16> = (0..40_000).map(|i| (i * 7 % 1000) as u16).collect();
        let v = dev.tensor(&vals).unwrap();
        let split = dev.split(&v, &m).unwrap();
        assert_eq!(split.n_true, 20_000);
    }
}
