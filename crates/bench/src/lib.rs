//! Shared harness code for the figure-reproduction binary and the
//! Criterion benches: size sweeps, table printing, and the composed
//! baseline operators (e.g. the PyTorch top-p pipeline).

#![forbid(unsafe_code)]

use ascend_sim::mem::GlobalMemory;
use ascend_sim::{ChipSpec, EngineKind, KernelReport};
use ascendc::{GlobalTensor, SimResult};
use dtypes::F16;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Geometric size sweep: `count` sizes starting at `start`, each
/// `factor`× the previous.
pub fn sweep(start: usize, factor: usize, count: usize) -> Vec<usize> {
    let mut v = Vec::with_capacity(count);
    let mut n = start;
    for _ in 0..count {
        v.push(n);
        n *= factor;
    }
    v
}

/// Pretty-prints a table: header + rows of fixed-width columns.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header's arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "table arity mismatch");
        self.rows.push(cells);
    }

    /// Renders the table to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let line = |cells: &[String]| {
            let cols: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect();
            println!("  {}", cols.join("  "));
        };
        line(&self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        println!("  {}", "-".repeat(total));
        for row in &self.rows {
            line(row);
        }
    }
}

/// Formats a count like `65536` as `64K` / `16M` for axis labels.
pub fn human(n: usize) -> String {
    if n >= 1 << 20 && n.is_multiple_of(1 << 20) {
        format!("{}M", n >> 20)
    } else if n >= 1 << 10 && n.is_multiple_of(1 << 10) {
        format!("{}K", n >> 10)
    } else {
        n.to_string()
    }
}

/// A fresh device for one measurement (new memory, same spec).
pub fn fresh_gm(spec: &ChipSpec) -> Arc<GlobalMemory> {
    Arc::new(GlobalMemory::new(spec.hbm_capacity))
}

/// One deferred measurement point for [`run_points`]: a boxed closure
/// owning its whole launch state.
pub type Point<'a, T> = Box<dyn FnOnce() -> T + Send + 'a>;

/// Runs independent measurement points on a pool of `jobs` std threads
/// and returns the results **in point order**, regardless of which
/// worker finished first. Each point owns its whole launch state (a
/// fresh [`GlobalMemory`] per point), so the points are embarrassingly
/// parallel and the committed output is byte-identical to running them
/// sequentially with `jobs = 1`.
///
/// Scheduling is a shared atomic cursor over the point list: workers
/// claim the next unstarted point, so long points never leave the pool
/// idle behind a fixed pre-partition. A panicking point propagates out
/// of the scope and fails the run, exactly as it would serially.
pub fn run_points<'a, T: Send + 'a>(points: Vec<Point<'a, T>>, jobs: usize) -> Vec<T> {
    let n = points.len();
    let workers = jobs.max(1).min(n.max(1));
    if workers <= 1 {
        return points.into_iter().map(|f| f()).collect();
    }
    let slots: Vec<Mutex<Option<Point<'a, T>>>> =
        points.into_iter().map(|p| Mutex::new(Some(p))).collect();
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let f = slots[i]
                    .lock()
                    .expect("run_points slot poisoned")
                    .take()
                    .expect("each point runs exactly once");
                *results[i].lock().expect("run_points result poisoned") = Some(f());
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("run_points result poisoned")
                .expect("worker committed this point")
        })
        .collect()
}

/// Deterministic pseudo-random fp16 probabilities for sampling workloads
/// (positive, roughly Zipf-ish so nucleus sampling is non-trivial).
pub fn synth_probs(n: usize, seed: u64) -> Vec<F16> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..n)
        .map(|i| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let r = (state >> 40) as f32 / (1u64 << 24) as f32; // [0,1)
            F16::from_f32(r / (1.0 + i as f32 * 0.01))
        })
        .collect()
}

/// Deterministic pseudo-random fp16 values over the full finite range.
pub fn synth_f16(n: usize, seed: u64) -> Vec<F16> {
    let mut state = seed.wrapping_mul(0xD134_2543_DE82_EF95) | 1;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            F16::from_f32(((state >> 40) as f32 / (1u64 << 23) as f32 - 1.0) * 1000.0)
        })
        .collect()
}

/// Deterministic Bernoulli(1/2) mask.
pub fn synth_mask(n: usize, seed: u64) -> Vec<u8> {
    let mut state = seed.wrapping_mul(0xA076_1D64_78BD_642F) | 1;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 63) as u8
        })
        .collect()
}

/// The batched `torch.cumsum` baseline for Fig. 12: row-wise vector-only
/// scans (Hillis–Steele per `s`-row + partial propagation), with batch
/// rows spread over all vector cores — the stock operator parallelizes
/// across the batch dimension but never touches the cube units.
pub fn batched_cumsum_baseline(
    spec: &ChipSpec,
    gm: &Arc<GlobalMemory>,
    x: &GlobalTensor<F16>,
    batch: usize,
    len: usize,
) -> SimResult<KernelReport> {
    use ascend_sim::chip::ScratchpadKind;
    let s = 128usize;
    let piece = 4096usize;
    let blocks = (spec.ai_cores as usize).min(batch.div_ceil(2).max(1)) as u32;
    let y = GlobalTensor::<F16>::new(gm, batch * len)?;
    let mut report = ascendc::launch(spec, gm, blocks, "torch.cumsum(batched)", |ctx| {
        let lane0 = ctx.block_idx as usize * ctx.vecs.len();
        let stride = ctx.block_dim as usize * ctx.vecs.len();
        for v in 0..ctx.vecs.len() {
            let vc = &mut ctx.vecs[v];
            let mut q = ascendc::TQue::<F16>::new(vc, ScratchpadKind::Ub, 2, piece)?;
            let mut tmp = vc.alloc_local::<F16>(ScratchpadKind::Ub, s)?;
            for row in (lane0 + v..batch).step_by(stride) {
                let base = row * len;
                let mut partial = F16::ZERO;
                let mut partial_ready = 0;
                let mut off = 0;
                while off < len {
                    let valid = piece.min(len - off);
                    let mut buf = q.alloc_tensor()?;
                    vc.copy_in(&mut buf, 0, x, base + off, valid, &[])?;
                    let mut ro = 0;
                    while ro < valid {
                        let rl = s.min(valid - ro);
                        let mut shift = 1;
                        while shift < rl {
                            let span = rl - shift;
                            vc.copy_local(&mut tmp, 0, &buf, ro, span)?;
                            vc.vadd_inplace(&mut buf, ro + shift, &tmp, 0, span)?;
                            shift *= 2;
                        }
                        vc.vadds(&mut buf, ro, rl, partial, partial_ready)?;
                        let (p, pr) = vc.extract(&buf, ro + rl - 1)?;
                        partial = p;
                        partial_ready = pr;
                        vc.scalar_ops(16, &[])?;
                        ro += rl;
                    }
                    let ev = vc.copy_out(&y, base + off, &buf, 0, valid, &[])?;
                    q.free_tensor(buf, ev);
                    off += valid;
                }
            }
            vc.free_local(tmp)?;
            q.destroy(vc)?;
        }
        Ok(())
    })?;
    report.elements = (batch * len) as u64;
    report.useful_bytes = (2 * batch * len * 2) as u64;
    Ok(report)
}

/// Validates that `s` is one well-formed JSON document (std-only
/// recursive-descent check, no external parser). Used by the `figures
/// --json` path and CI to guarantee `BENCH_scan.json` and the trace
/// exports parse before anything downstream consumes them.
pub fn validate_json(s: &str) -> Result<(), String> {
    let mut p = JsonChecker {
        bytes: s.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(())
}

struct JsonChecker<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: u32,
}

impl JsonChecker<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > 256 {
            return Err("nesting too deep".into());
        }
        let r = match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        };
        self.depth -= 1;
        r
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.pos += 1
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            for _ in 0..4 {
                                if !self.peek().is_some_and(|c| c.is_ascii_hexdigit()) {
                                    return Err(format!("bad \\u escape at byte {}", self.pos));
                                }
                                self.pos += 1;
                            }
                        }
                        other => {
                            return Err(format!(
                                "bad escape {:?} at byte {}",
                                other.map(|c| c as char),
                                self.pos
                            ))
                        }
                    }
                }
                Some(c) if c < 0x20 => return Err(format!("raw control byte 0x{c:02x} in string")),
                Some(_) => self.pos += 1,
            }
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(format!("expected '{lit}' at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<(), String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut digits = 0;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
            digits += 1;
        }
        if digits == 0 {
            return Err(format!("bad number at byte {start}"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let mut frac = 0;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
                frac += 1;
            }
            if frac == 0 {
                return Err(format!("bad fraction at byte {}", self.pos));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let mut exp = 0;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
                exp += 1;
            }
            if exp == 0 {
                return Err(format!("bad exponent at byte {}", self.pos));
            }
        }
        Ok(())
    }
}

/// Semantic sanity bounds for a `bench-scan/v4` document on top of the
/// syntactic [`validate_json`] check. Every kernel entry must satisfy:
///
/// * `fraction_of_peak` and every per-engine `utilization` in `[0, 1]`;
/// * `traffic_gbps` (DRAM-attributed) at most the chip's HBM peak;
/// * per engine, the idle-stall sum (`stall_dependency + stall_barrier +
///   stall_flag`) at most `cores × (cycles − launch_cycles)` — no core
///   can idle longer than it exists (`stall_contention` overlaps busy
///   time and is exempt);
/// * when a `critical_path` section is present (every audited launch):
///   its `makespan` equals the kernel's `cycles`, the class attribution
///   (`launch + busy + flag_wire + chain_wire + barrier_release + hbm`)
///   sums to the makespan exactly, every share fraction lies in
///   `[0, 1]`, and at least two what-if predictions are reported, each
///   within `[0, makespan]`;
/// * a flat `host` section is present with `jobs >= 1`, `points >= 1`,
///   a positive `host_seconds` wall-clock, a `serial_seconds_est`, and
///   one positive `kernel_host_seconds` entry per kernel.
///
/// These are exactly the invariants that historically broke silently:
/// runaway contention watermarks and over-peak traffic attribution.
pub fn validate_bench_json(doc: &str, spec: &ChipSpec) -> Result<(), String> {
    validate_json(doc)?;
    if !doc.contains("\"schema\":\"bench-scan/v4\"") {
        return Err("document does not declare schema bench-scan/v4".into());
    }
    let eps = 1e-6;
    let hbm_gbps = spec.hbm_bytes_per_sec / 1e9;
    let kernels = json_kernel_objects(doc)?;
    for &k in &kernels {
        let name = json_str_field(k, "name").unwrap_or("<unnamed>");
        let ctx = |msg: String| format!("kernel {name}: {msg}");
        let frac = json_num_field(k, "fraction_of_peak").map_err(&ctx)?;
        if !(-eps..=1.0 + eps).contains(&frac) {
            return Err(ctx(format!("fraction_of_peak {frac} outside [0, 1]")));
        }
        let traffic = json_num_field(k, "traffic_gbps").map_err(&ctx)?;
        if traffic > hbm_gbps + eps {
            return Err(ctx(format!(
                "traffic_gbps {traffic} exceeds the HBM peak {hbm_gbps}"
            )));
        }
        let cycles = json_num_field(k, "cycles").map_err(&ctx)?;
        let blocks = json_num_field(k, "blocks").map_err(&ctx)? as u32;
        let lifetime = (cycles - spec.launch_cycles as f64).max(0.0);
        for e in EngineKind::ALL {
            let Some(eobj) = json_sub_object(k, e.name()) else {
                continue;
            };
            let util = json_num_field(eobj, "utilization").map_err(&ctx)?;
            if !(-eps..=1.0 + eps).contains(&util) {
                return Err(ctx(format!(
                    "{} utilization {util} outside [0, 1]",
                    e.name()
                )));
            }
            let idle = json_num_field(eobj, "stall_dependency").map_err(&ctx)?
                + json_num_field(eobj, "stall_barrier").map_err(&ctx)?
                + json_num_field(eobj, "stall_flag").map_err(&ctx)?;
            let cores = spec.cores_with_engine(blocks, e) as f64;
            if idle > cores * lifetime + eps {
                return Err(ctx(format!(
                    "{} idle stalls {idle} exceed cores×(cycles−launch) = {}",
                    e.name(),
                    cores * lifetime
                )));
            }
        }
        if let Some(cp) = json_sub_object(k, "critical_path") {
            let makespan = json_num_field(cp, "makespan").map_err(&ctx)?;
            if (makespan - cycles).abs() > eps {
                return Err(ctx(format!(
                    "critical_path makespan {makespan} != cycles {cycles}"
                )));
            }
            let mut sum = 0.0;
            for class in [
                "launch",
                "busy",
                "flag_wire",
                "chain_wire",
                "barrier_release",
                "hbm",
            ] {
                sum += json_num_field(cp, class).map_err(&ctx)?;
            }
            if (sum - makespan).abs() > eps {
                return Err(ctx(format!(
                    "critical_path attribution sums to {sum}, not the makespan {makespan}"
                )));
            }
            for share in [
                "launch_share",
                "busy_share",
                "flag_wire_share",
                "chain_wire_share",
                "barrier_release_share",
                "hbm_share",
                "lookback_chain_share",
            ] {
                let v = json_num_field(cp, share).map_err(&ctx)?;
                if !(-eps..=1.0 + eps).contains(&v) {
                    return Err(ctx(format!("critical_path {share} {v} outside [0, 1]")));
                }
            }
            let wi = cp
                .find("\"what_ifs\":[")
                .map(|i| &cp[i..])
                .ok_or_else(|| ctx("critical_path has no what_ifs table".into()))?;
            let mut what_ifs = 0usize;
            let mut rest = wi;
            while let Some(i) = rest.find("\"predicted_cycles\":") {
                rest = &rest[i..];
                let predicted = json_num_field(rest, "predicted_cycles").map_err(&ctx)?;
                if !(-eps..=makespan + eps).contains(&predicted) {
                    return Err(ctx(format!(
                        "what-if predicted_cycles {predicted} outside [0, makespan]"
                    )));
                }
                what_ifs += 1;
                rest = &rest["\"predicted_cycles\":".len()..];
            }
            if what_ifs < 2 {
                return Err(ctx(format!(
                    "critical_path reports {what_ifs} what-ifs, need at least 2"
                )));
            }
        }
    }
    let host = json_sub_object(doc, "host")
        .ok_or_else(|| "document has no host section (jobs / host_seconds)".to_string())?;
    let jobs = json_num_field(host, "jobs")?;
    if jobs < 1.0 {
        return Err(format!("host jobs {jobs} must be at least 1"));
    }
    let points = json_num_field(host, "points")?;
    if points < 1.0 {
        return Err(format!("host points {points} must be at least 1"));
    }
    let host_seconds = json_num_field(host, "host_seconds")?;
    if host_seconds <= 0.0 {
        return Err(format!("host_seconds {host_seconds} must be positive"));
    }
    json_num_field(host, "serial_seconds_est")?;
    let per_kernel = json_num_array(host, "kernel_host_seconds")?;
    if per_kernel.len() != kernels.len() {
        return Err(format!(
            "kernel_host_seconds has {} entries for {} kernels",
            per_kernel.len(),
            kernels.len()
        ));
    }
    if let Some(bad) = per_kernel.iter().find(|&&v| v <= 0.0) {
        return Err(format!("kernel_host_seconds entry {bad} must be positive"));
    }
    Ok(())
}

/// Splits the `"kernels":[...]` array of a bench document into its
/// top-level objects (brace matching; the document is already known to
/// be well-formed JSON with no strings containing braces we generate).
fn json_kernel_objects(doc: &str) -> Result<Vec<&str>, String> {
    json_array_objects(doc, "kernels")
}

/// Splits the `"key":[...]` array of a document into its top-level
/// objects (brace matching; our generated JSON never embeds braces or
/// brackets inside strings).
pub fn json_array_objects<'a>(doc: &'a str, key: &str) -> Result<Vec<&'a str>, String> {
    let pat = format!("\"{key}\":[");
    let start = doc
        .find(&pat)
        .ok_or_else(|| format!("document has no {key} array"))?
        + pat.len();
    let body = &doc[start..];
    let mut objs = Vec::new();
    let mut depth = 0usize;
    let mut obj_start = 0usize;
    for (i, c) in body.char_indices() {
        match c {
            '{' => {
                if depth == 0 {
                    obj_start = i;
                }
                depth += 1;
            }
            '}' => {
                depth = depth
                    .checked_sub(1)
                    .ok_or_else(|| format!("unbalanced braces in {key} array"))?;
                if depth == 0 {
                    objs.push(&body[obj_start..=i]);
                }
            }
            ']' if depth == 0 => break,
            _ => {}
        }
    }
    Ok(objs)
}

/// Extracts the brace-matched object following `"key":{` inside `obj`.
pub fn json_sub_object<'a>(obj: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":{{");
    let start = obj.find(&pat)? + pat.len() - 1;
    let body = &obj[start..];
    let mut depth = 0usize;
    for (i, c) in body.char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&body[..=i]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Reads the numeric value of `"key":<number>` inside `obj` (first
/// occurrence; bench-document keys are unique at their nesting level).
pub fn json_num_field(obj: &str, key: &str) -> Result<f64, String> {
    let pat = format!("\"{key}\":");
    let start = obj
        .find(&pat)
        .ok_or_else(|| format!("missing field {key}"))?
        + pat.len();
    let rest = &obj[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end]
        .parse::<f64>()
        .map_err(|e| format!("field {key}: {e}"))
}

/// Reads the flat numeric array `"key":[n, n, ...]` inside `obj` (no
/// nested brackets — our generated host sections are flat by design so
/// CI can strip them with a single regular expression).
pub fn json_num_array(obj: &str, key: &str) -> Result<Vec<f64>, String> {
    let pat = format!("\"{key}\":[");
    let start = obj
        .find(&pat)
        .ok_or_else(|| format!("missing array {key}"))?
        + pat.len();
    let end = obj[start..]
        .find(']')
        .ok_or_else(|| format!("unterminated array {key}"))?
        + start;
    let body = obj[start..end].trim();
    if body.is_empty() {
        return Ok(Vec::new());
    }
    body.split(',')
        .map(|s| {
            s.trim()
                .parse::<f64>()
                .map_err(|e| format!("array {key}: {e}"))
        })
        .collect()
}

/// Reads the string value of `"key":"..."` inside `obj`.
pub fn json_str_field<'a>(obj: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":\"");
    let start = obj.find(&pat)? + pat.len();
    let end = obj[start..].find('"')?;
    Some(&obj[start..start + end])
}

/// The PyTorch-baseline top-p pipeline the paper's Fig. 13 measures:
/// `torch.sort` + `torch.cumsum` + threshold + `torch.multinomial`,
/// composed from the modeled baseline operators.
pub fn baseline_top_p(
    spec: &ChipSpec,
    gm: &Arc<GlobalMemory>,
    probs: &GlobalTensor<F16>,
    p: f64,
    theta: f64,
) -> SimResult<(u32, KernelReport)> {
    let n = probs.len();
    let (sorted_vals, sorted_idx, sort_report) =
        ops::baselines::sort::<F16>(spec, gm, probs, true)?;
    let (cdf, cumsum_report) = ops::baselines::cumsum::<F16>(spec, gm, &sorted_vals)?;

    // Nucleus mask + renormalized draw, host-side as the torch code does
    // between the profiled operator calls (the heavy operators dominate).
    let cdf_host = cdf.to_vec();
    let vals_host = sorted_vals.to_vec();
    let total = cdf_host.last().map(|v| v.to_f64()).unwrap_or(0.0);
    let mut kept = 0usize;
    for i in 0..n {
        let exclusive = cdf_host[i].to_f64() - vals_host[i].to_f64();
        if exclusive <= p * total {
            kept = i + 1;
        } else {
            break;
        }
    }
    let kept = kept.max(1);
    let kept_slice = sorted_vals.slice(0, kept)?;
    let (pos, multinomial_report) = ops::baselines::multinomial(spec, gm, &kept_slice, theta)?;
    let token = sorted_idx.read_range(pos, 1)?[0];

    let mut report = KernelReport::sequential(
        "torch top-p",
        &[sort_report, cumsum_report, multinomial_report],
    );
    report.elements = n as u64;
    report.useful_bytes = (n * 2) as u64;
    Ok((token, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_geometric() {
        assert_eq!(sweep(1024, 4, 3), vec![1024, 4096, 16384]);
    }

    #[test]
    fn human_labels() {
        assert_eq!(human(65536), "64K");
        assert_eq!(human(16 << 20), "16M");
        assert_eq!(human(1000), "1000");
    }

    #[test]
    fn synth_data_is_deterministic() {
        assert_eq!(synth_probs(100, 7), synth_probs(100, 7));
        assert_ne!(synth_probs(100, 7), synth_probs(100, 8));
        assert_eq!(synth_mask(1000, 1), synth_mask(1000, 1));
        let ones: usize = synth_mask(10_000, 3).iter().map(|&b| b as usize).sum();
        assert!((4000..6000).contains(&ones), "roughly balanced mask");
        assert!(synth_probs(50, 2).iter().all(|p| p.to_f32() >= 0.0));
    }

    #[test]
    fn baseline_top_p_samples_a_valid_token() {
        let spec = ChipSpec::tiny();
        let gm = fresh_gm(&spec);
        let probs = synth_probs(500, 42);
        let t = GlobalTensor::from_slice(&gm, &probs).unwrap();
        let (token, report) = baseline_top_p(&spec, &gm, &t, 0.9, 0.5).unwrap();
        assert!((token as usize) < 500);
        assert!(report.time_us() > 0.0);
    }

    #[test]
    fn validate_json_accepts_well_formed_documents() {
        for doc in [
            "{}",
            "[]",
            "null",
            "-12.5e-3",
            r#"{"schema":"bench-scan/v1","kernels":[{"name":"MCScan","cycles":123,
                "time_us":4.5,"engines":{"CUBE":{"busy_cycles":7}},"ok":true,
                "barrier_wait_cycles":[1,2,3],"esc":"a\"b\\cé\n"}]}"#,
        ] {
            assert!(validate_json(doc).is_ok(), "{doc}");
        }
    }

    #[test]
    fn validate_json_rejects_malformed_documents() {
        for doc in [
            "",
            "{",
            "{\"a\":1,}",
            "[1 2]",
            "{\"a\" 1}",
            "{\"a\":1} extra",
            "\"unterminated",
            "\"bad\\escape\"",
            "{\"raw\":\"a\nb\"}",
            "01x",
            "1.e5",
            "nulll",
        ] {
            assert!(validate_json(doc).is_err(), "should reject: {doc:?}");
        }
    }

    #[test]
    fn validate_json_accepts_a_real_kernel_report() {
        let spec = ChipSpec::tiny();
        let gm = fresh_gm(&spec);
        let probs = synth_probs(300, 11);
        let t = GlobalTensor::from_slice(&gm, &probs).unwrap();
        let (_, report) = ops::baselines::cumsum::<F16>(&spec, &gm, &t).unwrap();
        validate_json(&report.to_json(&spec)).expect("KernelReport::to_json is valid JSON");
    }

    fn bench_doc(spec: &ChipSpec, kernel_json: &str) -> String {
        format!(
            "{{\"schema\":\"bench-scan/v4\",\"chip\":{{\"name\":\"{}\"}},\
             \"kernels\":[{}],\"traffic\":[],\
             \"host\":{{\"jobs\":1,\"points\":1,\"host_seconds\":0.25,\
             \"serial_seconds_est\":0.25,\"kernel_host_seconds\":[0.25]}}}}",
            spec.name, kernel_json
        )
    }

    #[test]
    fn validate_bench_json_accepts_a_real_launch_report() {
        let spec = ChipSpec::tiny();
        let gm = fresh_gm(&spec);
        let probs = synth_probs(300, 11);
        let t = GlobalTensor::from_slice(&gm, &probs).unwrap();
        let (_, report) = ops::baselines::cumsum::<F16>(&spec, &gm, &t).unwrap();
        let doc = bench_doc(&spec, &report.to_json(&spec));
        validate_bench_json(&doc, &spec).expect("real report passes the sanity bounds");
    }

    #[test]
    fn validate_bench_json_rejects_wrong_schema() {
        let spec = ChipSpec::tiny();
        let doc = "{\"schema\":\"bench-scan/v3\",\"kernels\":[]}";
        assert!(validate_bench_json(doc, &spec)
            .unwrap_err()
            .contains("bench-scan/v4"));
    }

    #[test]
    fn validate_bench_json_rejects_out_of_range_metrics() {
        let spec = ChipSpec::tiny();
        let gm = fresh_gm(&spec);
        let probs = synth_probs(300, 11);
        let t = GlobalTensor::from_slice(&gm, &probs).unwrap();
        let (_, report) = ops::baselines::cumsum::<F16>(&spec, &gm, &t).unwrap();
        let good = report.to_json(&spec);

        // fraction_of_peak above 1.
        let frac = json_num_field(&good, "fraction_of_peak").unwrap();
        let bad = good.replace(
            &format!("\"fraction_of_peak\":{frac:.6}"),
            "\"fraction_of_peak\":1.5",
        );
        assert_ne!(bad, good, "replacement must hit");
        let err = validate_bench_json(&bench_doc(&spec, &bad), &spec).unwrap_err();
        assert!(err.contains("fraction_of_peak"), "{err}");

        // DRAM traffic above the chip peak.
        let traffic = json_num_field(&good, "traffic_gbps").unwrap();
        let over = spec.hbm_bytes_per_sec / 1e9 + 10.0;
        let bad = good.replace(
            &format!("\"traffic_gbps\":{traffic:.6}"),
            &format!("\"traffic_gbps\":{over:.6}"),
        );
        assert_ne!(bad, good, "replacement must hit");
        let err = validate_bench_json(&bench_doc(&spec, &bad), &spec).unwrap_err();
        assert!(err.contains("HBM peak"), "{err}");

        // Idle stalls beyond any core's lifetime.
        let bad = good.replace("\"stall_flag\":0", "\"stall_flag\":99999999999");
        assert_ne!(bad, good, "replacement must hit");
        let err = validate_bench_json(&bench_doc(&spec, &bad), &spec).unwrap_err();
        assert!(err.contains("idle stalls"), "{err}");
    }

    #[test]
    fn validate_bench_json_gates_the_critical_path_section() {
        let spec = ChipSpec::tiny();
        let gm = fresh_gm(&spec);
        let data = vec![F16::ONE; 4096];
        let t = GlobalTensor::from_slice(&gm, &data).unwrap();
        let report = scan::cumsum_vec_only::<F16>(&spec, &gm, &t, 32, 1)
            .unwrap()
            .report;
        let cp = report
            .critical_path
            .as_ref()
            .expect("audited launch carries a critical path");
        let good = report.to_json(&spec);
        validate_bench_json(&bench_doc(&spec, &good), &spec)
            .expect("audited report passes the v4 gates");

        // Makespan no longer matching the kernel's cycles.
        let bad = good.replace(
            &format!("\"makespan\":{}", cp.makespan),
            &format!("\"makespan\":{}", cp.makespan + 1),
        );
        assert_ne!(bad, good, "replacement must hit");
        let err = validate_bench_json(&bench_doc(&spec, &bad), &spec).unwrap_err();
        assert!(err.contains("makespan"), "{err}");

        // Attribution that no longer sums to the makespan.
        let bad = good.replace(
            &format!("\"busy\":{}", cp.busy),
            &format!("\"busy\":{}", cp.busy + 7),
        );
        assert_ne!(bad, good, "replacement must hit");
        let err = validate_bench_json(&bench_doc(&spec, &bad), &spec).unwrap_err();
        assert!(err.contains("sums to"), "{err}");

        // A what-if predicting more cycles than the makespan.
        let w = &cp.what_ifs[0];
        let bad = good.replace(
            &format!("\"predicted_cycles\":{}", w.predicted),
            &format!("\"predicted_cycles\":{}", cp.makespan * 10 + 1),
        );
        assert_ne!(bad, good, "replacement must hit");
        let err = validate_bench_json(&bench_doc(&spec, &bad), &spec).unwrap_err();
        assert!(err.contains("predicted_cycles"), "{err}");

        // Fewer than two what-ifs.
        let start = good.find("\"what_ifs\":[").unwrap();
        let end = good[start..].find(']').unwrap() + start;
        let bad = format!("{}\"what_ifs\":[{}", &good[..start], &good[end..]);
        let err = validate_bench_json(&bench_doc(&spec, &bad), &spec).unwrap_err();
        assert!(err.contains("what-ifs"), "{err}");
    }

    #[test]
    fn run_points_commits_in_point_order_at_any_width() {
        let make = || -> Vec<Box<dyn FnOnce() -> usize + Send>> {
            (0..17)
                .map(|i| {
                    let f: Box<dyn FnOnce() -> usize + Send> = Box::new(move || {
                        // Skew the work so later points often finish first.
                        std::thread::sleep(std::time::Duration::from_micros(
                            ((17 - i) % 5) as u64 * 100,
                        ));
                        i * i
                    });
                    f
                })
                .collect()
        };
        let serial = run_points(make(), 1);
        assert_eq!(serial, (0..17).map(|i| i * i).collect::<Vec<_>>());
        for jobs in [2, 4, 32] {
            assert_eq!(run_points(make(), jobs), serial, "jobs={jobs}");
        }
    }

    #[test]
    fn run_points_borrows_from_the_environment() {
        let base = [10usize, 20, 30];
        let points: Vec<Box<dyn FnOnce() -> usize + Send + '_>> = base
            .iter()
            .map(|v| {
                let f: Box<dyn FnOnce() -> usize + Send + '_> = Box::new(move || v + 1);
                f
            })
            .collect();
        assert_eq!(run_points(points, 2), vec![11, 21, 31]);
    }

    #[test]
    fn validate_bench_json_gates_the_host_section() {
        let spec = ChipSpec::tiny();
        let gm = fresh_gm(&spec);
        let probs = synth_probs(300, 11);
        let t = GlobalTensor::from_slice(&gm, &probs).unwrap();
        let (_, report) = ops::baselines::cumsum::<F16>(&spec, &gm, &t).unwrap();
        let good = bench_doc(&spec, &report.to_json(&spec));
        validate_bench_json(&good, &spec).expect("well-formed host section passes");

        // Missing host section entirely.
        let no_host = good.replace("\"host\":", "\"ghost\":");
        let err = validate_bench_json(&no_host, &spec).unwrap_err();
        assert!(err.contains("host section"), "{err}");

        // Zero jobs.
        let bad = good.replace("\"jobs\":1", "\"jobs\":0");
        let err = validate_bench_json(&bad, &spec).unwrap_err();
        assert!(err.contains("jobs"), "{err}");

        // Non-positive wall clock.
        let bad = good.replace("\"host_seconds\":0.25", "\"host_seconds\":0");
        let err = validate_bench_json(&bad, &spec).unwrap_err();
        assert!(err.contains("host_seconds"), "{err}");

        // Per-kernel timing arity must match the kernel list.
        let bad = good.replace(
            "\"kernel_host_seconds\":[0.25]",
            "\"kernel_host_seconds\":[0.25,0.25]",
        );
        let err = validate_bench_json(&bad, &spec).unwrap_err();
        assert!(err.contains("kernel_host_seconds"), "{err}");
    }

    #[test]
    fn json_num_array_parses_flat_arrays() {
        assert_eq!(
            json_num_array("{\"a\":[1,2.5,-3e2]}", "a").unwrap(),
            vec![1.0, 2.5, -300.0]
        );
        assert_eq!(
            json_num_array("{\"a\":[]}", "a").unwrap(),
            Vec::<f64>::new()
        );
        assert!(json_num_array("{\"a\":[1,]}", "a").is_err());
        assert!(json_num_array("{}", "a").is_err());
    }

    #[test]
    fn table_renders() {
        let mut t = Table::new(&["N", "GB/s"]);
        t.row(vec!["64K".into(), "123.4".into()]);
        t.print();
    }
}
