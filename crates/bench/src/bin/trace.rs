//! Exports a chrome://tracing timeline of a kernel's simulated schedule.
//!
//! ```text
//! trace [scanu|scanul1|mcscan|cumsum] [N] [out.json]
//! ```
//!
//! Open the produced JSON at `chrome://tracing` or https://ui.perfetto.dev
//! to see how the cube, vector, MTE and scalar engines of every core
//! overlap — the double-buffered pipelines of Fig. 2 and the two phases
//! of Fig. 6 are directly visible.

use ascend_sim::trace::to_chrome_json;
use ascend_sim::ChipSpec;
use ascendc::GlobalTensor;
use bench::fresh_gm;
use dtypes::F16;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let kernel = args.first().map(String::as_str).unwrap_or("mcscan");
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1 << 18);
    let default_out = format!("{kernel}_trace.json");
    let out = args.get(2).map(String::as_str).unwrap_or(&default_out);

    let spec = ChipSpec::ascend_910b4();
    let gm = fresh_gm(&spec);
    let data = vec![F16::ONE; n];
    let x = GlobalTensor::from_slice(&gm, &data).unwrap();
    let y = GlobalTensor::<F16>::new(&gm, n).unwrap();

    // Re-drive the kernels through launch_traced. The scan crate's
    // public entry points use the untraced launcher, so the trace binary
    // exercises representative inline kernels instead: a copy pipeline
    // and the MCScan phases give the most instructive timelines.
    let (report, events) = match kernel {
        "copy" | "cumsum" | "scanu" | "scanul1" | "mcscan" => {
            trace_mcscan_like(&spec, &gm, &x, &y, kernel)
        }
        other => {
            eprintln!("unknown kernel '{other}' (try mcscan | copy)");
            std::process::exit(2);
        }
    };

    let json = to_chrome_json(&events, spec.clock_ghz);
    std::fs::write(out, &json).expect("write trace file");
    println!(
        "{kernel} over {n} elements: {:.1} us simulated, {} events -> {out}",
        report.time_us(),
        events.len()
    );
    println!("open chrome://tracing (or https://ui.perfetto.dev) and load the file");
}

/// A representative cube+vector pipeline: tile-local scans on the cube
/// (A @ U_s), per-row partial propagation on the vector cores — MCScan's
/// phase structure with full tracing.
fn trace_mcscan_like(
    spec: &ChipSpec,
    gm: &std::sync::Arc<ascend_sim::mem::GlobalMemory>,
    x: &GlobalTensor<F16>,
    y: &GlobalTensor<F16>,
    kernel: &str,
) -> (ascend_sim::KernelReport, Vec<ascend_sim::TraceEvent>) {
    use ascendc::ScratchpadKind;
    use scan::triangular::upper_ones;

    let s = 128usize;
    let l = s * s;
    let n = x.len();
    let u = GlobalTensor::from_slice(gm, &upper_ones::<F16>(s)).unwrap();
    let blocks = if kernel == "copy" {
        spec.ai_cores
    } else {
        4.min(spec.ai_cores)
    };

    ascendc::launch_traced(spec, gm, blocks, kernel, |ctx| {
        let nblocks = ctx.block_dim as usize;
        let block = ctx.block_idx as usize;
        let tiles: Vec<(usize, usize)> = {
            let mut v = Vec::new();
            let mut off = 0;
            while off < n {
                let valid = l.min(n - off);
                v.push((off, valid));
                off += valid;
            }
            v
        };
        // Cube: tile-local scans for this block's tiles.
        let mut evs = vec![0; tiles.len()];
        {
            let cube = &mut ctx.cube;
            let mut lb = cube.alloc_local::<F16>(ScratchpadKind::L0B, l)?;
            cube.copy_in(&mut lb, 0, &u, 0, l, &[])?;
            let mut qa = ascendc::TQue::<F16>::new(cube, ScratchpadKind::L0A, 2, l)?;
            let mut qc = ascendc::TQue::<f32>::new(cube, ScratchpadKind::L0C, 2, l)?;
            for (t, &(off, valid)) in tiles.iter().enumerate() {
                if t % nblocks != block {
                    continue;
                }
                let rows = valid.div_ceil(s);
                let mut la = qa.alloc_tensor()?;
                if valid < rows * s {
                    cube.fill_local(&mut la, 0, rows * s, F16::ZERO)?;
                }
                cube.copy_in(&mut la, 0, x, off, valid, &[])?;
                let mut lc = qc.alloc_tensor()?;
                let mm = cube.mmad::<F16>(&mut lc, &mut la, &mut lb, rows, s, s, false)?;
                qa.free_tensor(la, mm);
                let ev = cube.copy_out_cast::<f32, F16>(y, off, &lc, 0, valid, &[])?;
                qc.free_tensor(lc, ev);
                evs[t] = ev;
            }
        }
        // Vector: in-place partial propagation of the same tiles.
        for (t, &(off, valid)) in tiles.iter().enumerate() {
            if t % nblocks != block {
                continue;
            }
            let vc = &mut ctx.vecs[t % 2];
            let mut buf = vc.alloc_local::<F16>(ScratchpadKind::Ub, l)?;
            vc.copy_in(&mut buf, 0, y, off, valid, &[evs[t]])?;
            let mut partial = F16::ZERO;
            let mut pr = 0;
            let mut ro = 0;
            while ro < valid {
                let rl = s.min(valid - ro);
                vc.vadds(&mut buf, ro, rl, partial, pr)?;
                let (p, r) = vc.extract(&buf, ro + rl - 1)?;
                partial = p;
                pr = r;
                ro += rl;
            }
            vc.copy_out(y, off, &buf, 0, valid, &[])?;
            vc.free_local(buf)?;
        }
        Ok(())
    })
    .expect("traced launch")
}
