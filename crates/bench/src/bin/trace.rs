//! Exports a chrome://tracing / Perfetto timeline of the *real* scan
//! kernels' simulated schedules.
//!
//! ```text
//! trace [scanu|scanul1|mcscan|scanc|cumsum|batched|all] [N] [out.json] [--jobs N] [--dir DIR]
//! ```
//!
//! The kernels run through their normal public entry points with a
//! per-launch [`ascend_sim::prof::ProfileRecorder`] attached to each
//! kernel's own fresh device, so the trace shows exactly what a
//! measurement run executes: named phase spans ("Phase I", "SyncAll",
//! "VecPropagation"), per-tile spans with bytes/kind/queue-depth args,
//! per-engine busy intervals interleaved with `wait:dep` /
//! `wait:flag` / `wait:barrier` stall intervals, and `TQue` occupancy
//! counters. Open
//! the produced JSON at <https://ui.perfetto.dev> (or chrome://tracing)
//! — the double-buffered pipelines of Fig. 2 and the two phases of
//! Fig. 6 are directly visible.
//!
//! Because every kernel owns its whole launch state, independent
//! kernels trace concurrently on `--jobs N` worker threads (default:
//! all cores) while profiles are committed in kernel order — the merged
//! output is byte-identical to a `--jobs 1` run. `--dir DIR` writes one
//! `DIR/<kernel>.json` per kernel instead of a single merged file, so
//! downstream per-kernel consumers (the `simlint` / `critpath` CLIs)
//! can fan out without re-tracing.

use ascend_sim::prof::{KernelProfile, Profile};
use ascend_sim::{ChipSpec, EngineKind};
use ascendc::GlobalTensor;
use bench::fresh_gm;
use dtypes::F16;
use scan::mcscan::{mcscan, McScanConfig};
use scan::scanc::{scanc, ScanCConfig};
use scan::{batched_scanu, cumsum_vec_only, scanu, scanul1};

const KERNELS: &[&str] = &["scanu", "scanul1", "mcscan", "scanc", "cumsum", "batched"];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional: Vec<&str> = Vec::new();
    let mut jobs: Option<usize> = None;
    let mut dir: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--jobs" {
            jobs = it.next().and_then(|v| v.parse().ok());
            if jobs.is_none() {
                eprintln!("--jobs needs a positive integer");
                std::process::exit(2);
            }
        } else if let Some(v) = a.strip_prefix("--jobs=") {
            match v.parse() {
                Ok(n) => jobs = Some(n),
                Err(_) => {
                    eprintln!("--jobs needs a positive integer, got '{v}'");
                    std::process::exit(2);
                }
            }
        } else if a == "--dir" {
            dir = it.next().cloned();
            if dir.is_none() {
                eprintln!("--dir needs a directory path");
                std::process::exit(2);
            }
        } else if let Some(v) = a.strip_prefix("--dir=") {
            dir = Some(v.to_string());
        } else if a.starts_with("--") {
            eprintln!("unknown flag '{a}'");
            std::process::exit(2);
        } else {
            positional.push(a);
        }
    }
    let jobs = jobs
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .max(1);
    let kernel = positional.first().copied().unwrap_or("mcscan");
    let n: usize = positional
        .get(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1 << 18);
    let default_out = format!("{kernel}_trace.json");
    let out = positional.get(2).copied().unwrap_or(&default_out);

    let chosen: Vec<&str> = match kernel {
        "all" => KERNELS.to_vec(),
        k if KERNELS.contains(&k) => vec![k],
        other => {
            eprintln!(
                "unknown kernel '{other}' (try {} | all)",
                KERNELS.join(" | ")
            );
            std::process::exit(2);
        }
    };

    let spec = ChipSpec::ascend_910b4();
    // One point per kernel, each with its own device and recorder; the
    // pool commits profiles in kernel order.
    let spec_ref = &spec;
    let points: Vec<Box<dyn FnOnce() -> Profile + Send + '_>> = chosen
        .iter()
        .map(|&k| {
            let point: Box<dyn FnOnce() -> Profile + Send + '_> =
                Box::new(move || run_kernel(spec_ref, k, n));
            point
        })
        .collect();
    let profiles = bench::run_points(points, jobs);

    for p in &profiles {
        for k in &p.kernels {
            print_summary(k);
        }
    }

    if let Some(dir) = dir {
        std::fs::create_dir_all(&dir).expect("create trace output directory");
        let mut total = 0usize;
        for (name, profile) in chosen.iter().zip(&profiles) {
            let json = profile.to_chrome_json();
            bench::validate_json(&json).expect("trace export must be well-formed JSON");
            let path = format!("{dir}/{name}.json");
            std::fs::write(&path, &json).expect("write trace file");
            total += json.len();
        }
        println!(
            "{} kernel(s) over {n} elements -> {dir}/<kernel>.json ({total} bytes, {jobs} job(s))",
            chosen.len()
        );
    } else {
        let merged = Profile {
            kernels: profiles.into_iter().flat_map(|p| p.kernels).collect(),
        };
        let json = merged.to_chrome_json();
        bench::validate_json(&json).expect("trace export must be well-formed JSON");
        std::fs::write(out, &json).expect("write trace file");
        println!(
            "{} kernel(s) over {n} elements -> {out} ({} bytes, {jobs} job(s))",
            merged.kernels.len(),
            json.len()
        );
    }
    println!("open https://ui.perfetto.dev (or chrome://tracing) and load the file");
}

/// Runs one scan kernel through its public entry point on a fresh
/// device with its own profile recorder, and returns the profile.
fn run_kernel(spec: &ChipSpec, kernel: &str, n: usize) -> Profile {
    let gm = fresh_gm(spec);
    let recorder = gm.attach_profiler();
    let data = vec![F16::ONE; n];
    let x = GlobalTensor::from_slice(&gm, &data).unwrap();
    match kernel {
        "scanu" => drop(scanu::<F16, F16>(spec, &gm, &x, 128).unwrap()),
        "scanul1" => drop(scanul1::<F16, F16>(spec, &gm, &x, 128).unwrap()),
        "mcscan" => {
            drop(mcscan::<F16, F16, F16>(spec, &gm, &x, McScanConfig::for_chip(spec)).unwrap())
        }
        "scanc" => drop(
            scanc::<F16, F16, F16>(spec, &gm, &x, ScanCConfig::for_chip::<F16, F16>(spec)).unwrap(),
        ),
        "cumsum" => drop(cumsum_vec_only::<F16>(spec, &gm, &x, 128, 1).unwrap()),
        "batched" => {
            // Spread a fixed batch over the cores; pad N up to a multiple.
            let batch = 8usize;
            let len = n.div_ceil(batch).max(1);
            let gm = fresh_gm(spec);
            let recorder = gm.attach_profiler();
            let data = vec![F16::ONE; batch * len];
            let x = GlobalTensor::from_slice(&gm, &data).unwrap();
            drop(batched_scanu::<F16, F16>(spec, &gm, &x, batch, len, 128).unwrap());
            return recorder.take();
        }
        other => unreachable!("unvalidated kernel {other}"),
    }
    recorder.take()
}

/// Prints a per-engine busy/stall breakdown for one profiled launch.
fn print_summary(k: &KernelProfile) {
    let us = k.cycles as f64 / (k.clock_ghz.max(f64::MIN_POSITIVE) * 1e3);
    println!(
        "{}: {} blocks, {} cycles ({:.1} us), {} events, {} spans, {} stall intervals",
        k.name,
        k.blocks,
        k.cycles,
        us,
        k.events.len(),
        k.spans.len(),
        k.stall_events.len(),
    );
    let mut busy = [0u64; EngineKind::ALL.len()];
    for e in &k.events {
        busy[e.engine.index()] += e.end.saturating_sub(e.start);
    }
    println!(
        "  {:<8} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "engine", "busy", "dep-wait", "flag-wait", "barrier-wait", "contention"
    );
    for engine in EngineKind::ALL {
        let i = engine.index();
        let (d, c, f, b) = (
            k.stalls.dependency[i],
            k.stalls.contention[i],
            k.stalls.flag[i],
            k.stalls.barrier[i],
        );
        if busy[i] == 0 && d == 0 && c == 0 && f == 0 && b == 0 {
            continue;
        }
        println!(
            "  {:<8} {:>12} {:>12} {:>12} {:>12} {:>12}",
            engine.name(),
            busy[i],
            d,
            f,
            b,
            c
        );
    }
}
