//! Exports a chrome://tracing / Perfetto timeline of the *real* scan
//! kernels' simulated schedules.
//!
//! ```text
//! trace [scanu|scanul1|mcscan|scanc|cumsum|batched|all] [N] [out.json]
//! ```
//!
//! The kernels run through their normal public entry points under
//! [`ascend_sim::prof::with_profiling`], so the trace shows exactly what
//! a measurement run executes: named phase spans ("Phase I", "SyncAll",
//! "VecPropagation"), per-tile spans with bytes/kind/queue-depth args,
//! per-engine busy intervals interleaved with `wait:dep` /
//! `wait:flag` / `wait:barrier` stall intervals, and `TQue` occupancy
//! counters. Open
//! the produced JSON at <https://ui.perfetto.dev> (or chrome://tracing)
//! — the double-buffered pipelines of Fig. 2 and the two phases of
//! Fig. 6 are directly visible.

use ascend_sim::prof::{self, KernelProfile};
use ascend_sim::{ChipSpec, EngineKind};
use ascendc::GlobalTensor;
use bench::fresh_gm;
use dtypes::F16;
use scan::mcscan::{mcscan, McScanConfig};
use scan::scanc::{scanc, ScanCConfig};
use scan::{batched_scanu, cumsum_vec_only, scanu, scanul1};

const KERNELS: &[&str] = &["scanu", "scanul1", "mcscan", "scanc", "cumsum", "batched"];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let kernel = args.first().map(String::as_str).unwrap_or("mcscan");
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1 << 18);
    let default_out = format!("{kernel}_trace.json");
    let out = args.get(2).map(String::as_str).unwrap_or(&default_out);

    let chosen: Vec<&str> = match kernel {
        "all" => KERNELS.to_vec(),
        k if KERNELS.contains(&k) => vec![k],
        other => {
            eprintln!(
                "unknown kernel '{other}' (try {} | all)",
                KERNELS.join(" | ")
            );
            std::process::exit(2);
        }
    };

    let spec = ChipSpec::ascend_910b4();
    let ((), profile) = prof::with_profiling(|| {
        for k in &chosen {
            run_kernel(&spec, k, n);
        }
    });

    for k in &profile.kernels {
        print_summary(k);
    }

    let json = profile.to_chrome_json();
    bench::validate_json(&json).expect("trace export must be well-formed JSON");
    std::fs::write(out, &json).expect("write trace file");
    println!(
        "{} kernel(s) over {n} elements -> {out} ({} bytes)",
        profile.kernels.len(),
        json.len()
    );
    println!("open https://ui.perfetto.dev (or chrome://tracing) and load the file");
}

/// Runs one scan kernel through its public entry point on a fresh device.
fn run_kernel(spec: &ChipSpec, kernel: &str, n: usize) {
    let gm = fresh_gm(spec);
    let data = vec![F16::ONE; n];
    let x = GlobalTensor::from_slice(&gm, &data).unwrap();
    match kernel {
        "scanu" => drop(scanu::<F16, F16>(spec, &gm, &x, 128).unwrap()),
        "scanul1" => drop(scanul1::<F16, F16>(spec, &gm, &x, 128).unwrap()),
        "mcscan" => {
            drop(mcscan::<F16, F16, F16>(spec, &gm, &x, McScanConfig::for_chip(spec)).unwrap())
        }
        "scanc" => drop(
            scanc::<F16, F16, F16>(spec, &gm, &x, ScanCConfig::for_chip::<F16, F16>(spec)).unwrap(),
        ),
        "cumsum" => drop(cumsum_vec_only::<F16>(spec, &gm, &x, 128, 1).unwrap()),
        "batched" => {
            // Spread a fixed batch over the cores; pad N up to a multiple.
            let batch = 8usize;
            let len = n.div_ceil(batch).max(1);
            let gm = fresh_gm(spec);
            let data = vec![F16::ONE; batch * len];
            let x = GlobalTensor::from_slice(&gm, &data).unwrap();
            drop(batched_scanu::<F16, F16>(spec, &gm, &x, batch, len, 128).unwrap());
        }
        other => unreachable!("unvalidated kernel {other}"),
    }
}

/// Prints a per-engine busy/stall breakdown for one profiled launch.
fn print_summary(k: &KernelProfile) {
    let us = k.cycles as f64 / (k.clock_ghz.max(f64::MIN_POSITIVE) * 1e3);
    println!(
        "{}: {} blocks, {} cycles ({:.1} us), {} events, {} spans, {} stall intervals",
        k.name,
        k.blocks,
        k.cycles,
        us,
        k.events.len(),
        k.spans.len(),
        k.stall_events.len(),
    );
    let mut busy = [0u64; EngineKind::ALL.len()];
    for e in &k.events {
        busy[e.engine.index()] += e.end.saturating_sub(e.start);
    }
    println!(
        "  {:<8} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "engine", "busy", "dep-wait", "flag-wait", "barrier-wait", "contention"
    );
    for engine in EngineKind::ALL {
        let i = engine.index();
        let (d, c, f, b) = (
            k.stalls.dependency[i],
            k.stalls.contention[i],
            k.stalls.flag[i],
            k.stalls.barrier[i],
        );
        if busy[i] == 0 && d == 0 && c == 0 && f == 0 && b == 0 {
            continue;
        }
        println!(
            "  {:<8} {:>12} {:>12} {:>12} {:>12} {:>12}",
            engine.name(),
            busy[i],
            d,
            f,
            b,
            c
        );
    }
}
