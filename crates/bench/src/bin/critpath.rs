//! `critpath` — critical-path inspection over exported kernel traces.
//!
//! ```text
//! critpath [--top K] <trace.json>...
//! ```
//!
//! Each argument is a trace produced by the `trace` binary (an
//! `ascend-trace/v1` document). Every audited launch embeds a
//! `criticalPaths` section: the longest weighted path through the
//! happens-before event graph, cut into contiguous segments that tile
//! `[0, cycles]` (the makespan identity). For every kernel this tool
//! prints the class attribution (busy / HBM / flag wires / look-back
//! chain / barrier release / launch), the phase breakdown, the top-K
//! longest segments, and the COZ-style what-if table (predicted cycles
//! with one cost class removed).
//!
//! The invariants the simulator asserts at record time are re-checked
//! here against the serialized numbers: the attribution must sum to the
//! makespan, every share must lie in `[0, 1]`, and each what-if
//! prediction must not exceed the makespan.
//!
//! Exit status: `0` all files clean, `1` an invariant fails, `2` usage,
//! I/O, malformed document, or a trace with no `criticalPaths` section.

use bench::{json_array_objects, json_num_field, json_str_field, json_sub_object};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut top = 8usize;
    let mut files: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--top" {
            match it.next().and_then(|v| v.parse().ok()) {
                Some(k) => top = k,
                None => usage("--top needs an integer argument"),
            }
        } else if a.starts_with("--") {
            usage(&format!("unknown option {a}"));
        } else {
            files.push(a);
        }
    }
    if files.is_empty() {
        usage("no trace files given");
    }

    let mut violations = 0usize;
    for file in &files {
        let doc = match std::fs::read_to_string(file) {
            Ok(d) => d,
            Err(e) => fail2(&format!("{file}: {e}")),
        };
        let paths = match json_array_objects(&doc, "criticalPaths") {
            Ok(p) => p,
            Err(e) => fail2(&format!(
                "{file}: {e} (traces come from the `trace` binary)"
            )),
        };
        if paths.is_empty() {
            fail2(&format!(
                "{file}: empty criticalPaths section — no audited launch in this trace"
            ));
        }
        for cp in paths {
            match check_one(file, cp, top) {
                Ok(()) => {}
                Err(e) => {
                    eprintln!("critpath: {e}");
                    violations += 1;
                }
            }
        }
    }
    if violations > 0 {
        eprintln!("critpath: {violations} invariant violation(s)");
        std::process::exit(1);
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("critpath: {msg}");
    eprintln!("usage: critpath [--top K] <trace.json>...");
    eprintln!("  traces come from the `trace` binary (ascend-trace/v1 documents)");
    std::process::exit(2);
}

fn fail2(msg: &str) -> ! {
    eprintln!("critpath: {msg}");
    std::process::exit(2);
}

/// Prints one kernel's critical-path report and re-checks the summary
/// invariants; returns `Err` on any violation.
fn check_one(file: &str, cp: &str, top: usize) -> Result<(), String> {
    let kernel = json_str_field(cp, "kernel").unwrap_or("<unnamed>");
    let ctx = |msg: String| format!("{file}: {kernel}: {msg}");
    let summary = json_sub_object(cp, "summary")
        .ok_or_else(|| ctx("critical path entry has no summary object".into()))?;
    let makespan = json_num_field(summary, "makespan").map_err(&ctx)?;

    let classes = [
        ("launch", "launch"),
        ("busy", "busy"),
        ("flag_wire", "flag wire"),
        ("chain_wire", "look-back chain wire"),
        ("barrier_release", "barrier release"),
        ("hbm", "HBM stretch"),
    ];
    println!("{file}: {kernel}: makespan {makespan:.0} cycles");
    let mut sum = 0.0;
    for (key, label) in classes {
        let v = json_num_field(summary, key).map_err(&ctx)?;
        let share = json_num_field(summary, &format!("{key}_share")).map_err(&ctx)?;
        if !(-1e-6..=1.0 + 1e-6).contains(&share) {
            return Err(ctx(format!("{key}_share {share} outside [0, 1]")));
        }
        sum += v;
        if v > 0.0 {
            println!("  {label:<22} {v:>12.0}  {:>5.1}%", share * 100.0);
        }
    }
    if (sum - makespan).abs() > 1e-6 {
        return Err(ctx(format!(
            "attribution sums to {sum}, not the makespan {makespan} — identity violated"
        )));
    }
    let chain = json_num_field(summary, "lookback_chain").map_err(&ctx)?;
    let chain_share = json_num_field(summary, "lookback_chain_share").map_err(&ctx)?;
    if !(-1e-6..=1.0 + 1e-6).contains(&chain_share) {
        return Err(ctx(format!(
            "lookback_chain_share {chain_share} outside [0, 1]"
        )));
    }
    println!(
        "  {:<22} {chain:>12.0}  {:>5.1}%   (wire + tagged instructions)",
        "look-back chain total",
        chain_share * 100.0
    );

    if let Ok(phases) = json_array_objects(summary, "phases") {
        for p in phases {
            let name = json_str_field(p, "name").unwrap_or("?");
            let cycles = json_num_field(p, "cycles").unwrap_or(0.0);
            let share = json_num_field(p, "share").unwrap_or(0.0);
            println!("  phase {name:<26} {cycles:>12.0}  {:>5.1}%", share * 100.0);
        }
    }

    let segs = json_array_objects(cp, "top_segments").map_err(&ctx)?;
    println!(
        "  top {} segments (of {}):",
        top.min(segs.len()),
        segs.len()
    );
    let mut ranked: Vec<(&str, f64, f64, f64)> = segs
        .iter()
        .map(|s| {
            (
                json_str_field(s, "class").unwrap_or("?"),
                json_num_field(s, "start").unwrap_or(0.0),
                json_num_field(s, "cycles").unwrap_or(0.0),
                json_num_field(s, "block").unwrap_or(-1.0),
            )
        })
        .collect();
    ranked.sort_by(|a, b| b.2.total_cmp(&a.2));
    for (class, start, cycles, block) in ranked.into_iter().take(top) {
        let b = if block < 0.0 {
            "     -".to_string()
        } else {
            format!("blk {block:>2.0}")
        };
        println!("    {class:<14} {b}  @{start:>10.0}  {cycles:>10.0} cycles");
    }

    let what_ifs = json_array_objects(summary, "what_ifs").map_err(&ctx)?;
    if what_ifs.len() < 2 {
        return Err(ctx(format!(
            "only {} what-if prediction(s), need at least 2",
            what_ifs.len()
        )));
    }
    println!("  what-ifs:");
    for w in what_ifs {
        let name = json_str_field(w, "name").unwrap_or("?");
        let saved = json_num_field(w, "saved_cycles").map_err(&ctx)?;
        let predicted = json_num_field(w, "predicted_cycles").map_err(&ctx)?;
        let speedup = json_num_field(w, "speedup").unwrap_or(0.0);
        if !(-1e-6..=makespan + 1e-6).contains(&predicted) {
            return Err(ctx(format!(
                "what-if {name} predicts {predicted} cycles outside [0, makespan]"
            )));
        }
        println!("    {name:<16} saves {saved:>10.0} -> {predicted:>10.0} cycles ({speedup:.2}x)");
    }
    Ok(())
}
