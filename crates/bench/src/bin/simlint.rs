//! `simlint` — offline happens-before analysis of kernel schedules.
//!
//! ```text
//! simlint [--json] <trace.json>...
//! ```
//!
//! Each argument is a trace produced by the `trace` binary (or any
//! `ascend-trace/v1` document with an `"hbEvents"` key, or a bare
//! hb-event JSON array). For every file, the instruction record is
//! rebuilt into a happens-before graph and checked for:
//!
//! * **gm-race** — conflicting accesses to overlapping GM byte ranges
//!   with no happens-before path between them;
//! * **unmatched-wait / flag-reuse / hb-cycle** — sync-coverage gaps
//!   and deadlock shapes in the flag and barrier structure;
//! * **flag-leak / queue-leak / queue-unbalanced / alloc-leak /
//!   dead-transfer** — schedule lints (warnings).
//!
//! `--json` replaces the human-readable report with one machine-readable
//! `simlint/v1` document on stdout (per-file diagnostics plus totals);
//! the exit status is unchanged, so scripts can both gate on it and
//! archive the findings.
//!
//! Exit status is nonzero if *any* diagnostic (error or warning) fires
//! in any file — CI runs this over every shipped kernel's trace, so a
//! clean tree means every schedule is provably ordered and leak-free.
//!
//! Lint one kernel per trace file: concatenating unrelated launches
//! into one document would make their blocks look concurrent and can
//! produce spurious cross-kernel races.

use ascend_sim::hb;
use ascend_sim::trace::{json_escape, parse_hb_json};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let files: Vec<&String> = args.iter().filter(|a| *a != "--json").collect();
    if files.is_empty() {
        eprintln!("usage: simlint [--json] <trace.json>...");
        eprintln!("  traces come from the `trace` binary (ascend-trace/v1 documents)");
        std::process::exit(2);
    }

    let mut total = 0usize;
    let mut file_objs: Vec<String> = Vec::new();
    for file in &files {
        let doc = match std::fs::read_to_string(file) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("simlint: {file}: {e}");
                std::process::exit(2);
            }
        };
        let events = match parse_hb_json(&doc) {
            Ok(ev) => ev,
            Err(e) => {
                eprintln!("simlint: {file}: malformed trace: {e}");
                std::process::exit(2);
            }
        };
        let diags = hb::analyze(&events);
        if json {
            let rendered: Vec<String> = diags
                .iter()
                .map(|d| format!("\"{}\"", json_escape(&d.to_string())))
                .collect();
            file_objs.push(format!(
                "{{\"file\":\"{}\",\"hb_events\":{},\"diagnostics\":[{}]}}",
                json_escape(file),
                events.len(),
                rendered.join(",")
            ));
        } else if diags.is_empty() {
            println!("{file}: clean ({} hb events)", events.len());
        } else {
            println!("{file}: {} diagnostic(s)", diags.len());
            for d in &diags {
                println!("  {d}");
            }
        }
        total += diags.len();
    }

    if json {
        println!(
            "{{\"schema\":\"simlint/v1\",\"files\":[{}],\"total_diagnostics\":{}}}",
            file_objs.join(","),
            total
        );
    }
    if total > 0 {
        eprintln!(
            "simlint: {total} diagnostic(s) across {} file(s)",
            files.len()
        );
        std::process::exit(1);
    }
}
