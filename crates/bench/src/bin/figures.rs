//! Regenerates every table and figure of the paper's evaluation section
//! on the simulated Ascend 910B4.
//!
//! ```text
//! figures [fig3|fig5|fig8|fig9|fig10|fig11|fig12|fig13|speedup|topk|all] [--quick] [--jobs N]
//! figures --json [--quick] [--jobs N]
//! ```
//!
//! `--quick` shrinks the sweeps (for smoke tests); the default sweeps
//! match the paper's ranges where feasible.
//!
//! `--jobs N` sizes the host thread pool (default: all cores). Every
//! measurement point owns its whole launch state (a fresh
//! [`bench::fresh_gm`] device per point), so independent points run
//! concurrently on worker threads while the results are committed in
//! point order: the tables and the JSON document are byte-identical to
//! a `--jobs 1` run, only the wall clock changes.
//!
//! `--json` skips the tables and instead writes `BENCH_scan.json`: one
//! machine-readable `bench-scan/v4` document with a full
//! [`KernelReport`] (cycles, bandwidth, per-engine busy/stall
//! breakdown, per-round barrier waits, critical-path attribution with
//! what-if predictions) for every paper scan kernel at a fixed large
//! input length, plus a `traffic` section comparing MCScan and ScanC
//! byte counts across the Fig. 3 size sweep. The document is validated
//! with [`bench::validate_bench_json`] (syntax + sanity bounds,
//! including the makespan identity on every `critical_path` section)
//! before it is written.

use ascend_sim::{ChipSpec, KernelReport};
use ascendc::GlobalTensor;
use bench::{
    baseline_top_p, fresh_gm, human, sweep, synth_f16, synth_mask, synth_probs,
    validate_bench_json, Table,
};
use dtypes::F16;
use ops::{baselines, compress, radix_sort, topk, SortOrder};
use scan::ablation::{mcscan_variant, McScanVariant};
use scan::mcscan::{mcscan, McScanConfig, ScanKind};
use scan::scanc::{scanc, ScanCConfig};
use scan::{batched_scanu, batched_scanul1, cumsum_vec_only, scanu, scanul1};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Host worker-thread count, set once from `--jobs` before any figure
/// runs (default: all cores). Read by [`par`].
static JOBS: AtomicUsize = AtomicUsize::new(1);

fn jobs() -> usize {
    JOBS.load(Ordering::Relaxed)
}

/// Runs one independent measurement point per item on the `--jobs`
/// thread pool and returns the results in item order (see
/// [`bench::run_points`]); printing stays serial and deterministic.
fn par<I: Send, R: Send>(items: Vec<I>, f: impl Fn(I) -> R + Send + Sync) -> Vec<R> {
    let f = &f;
    let points: Vec<Box<dyn FnOnce() -> R + Send + '_>> = items
        .into_iter()
        .map(|item| {
            let point: Box<dyn FnOnce() -> R + Send + '_> = Box::new(move || f(item));
            point
        })
        .collect();
    bench::run_points(points, jobs())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    JOBS.store(parse_jobs(&args), Ordering::Relaxed);
    let mut which: Option<&str> = None;
    let mut skip_value = false;
    for a in &args {
        if skip_value {
            skip_value = false;
            continue;
        }
        if a == "--jobs" {
            skip_value = true;
        } else if !a.starts_with("--") && which.is_none() {
            which = Some(a);
        }
    }
    let which = which.unwrap_or("all");

    let spec = ChipSpec::ascend_910b4();
    if args.iter().any(|a| a == "--json") {
        json_report(&spec, quick);
        return;
    }
    println!(
        "chip: {} ({} cube cores, {} vector cores, {:.0} GB/s HBM)\n",
        spec.name,
        spec.ai_cores,
        spec.total_vec_cores(),
        spec.hbm_bytes_per_sec / 1e9
    );

    match which {
        "fig3" => fig3(&spec, quick),
        "fig5" => fig5(&spec, quick),
        "fig8" => fig8(&spec, quick),
        "fig9" => fig9(&spec, quick),
        "fig10" => fig10(&spec, quick),
        "fig11" => fig11(&spec, quick),
        "fig12" => fig12(&spec, quick),
        "fig13" => fig13(&spec, quick),
        "speedup" => speedup(&spec, quick),
        "scanc" => scanc_experiment(&spec, quick),
        "topk" => topk_experiment(&spec, quick),
        "ablation" => ablation(&spec, quick),
        "lowbit" => lowbit(&spec, quick),
        "scaling" => scaling(&spec, quick),
        "tiles" => tiles(quick),
        "reduce" => reduce_experiment(&spec, quick),
        "all" => {
            fig3(&spec, quick);
            fig5(&spec, quick);
            fig8(&spec, quick);
            fig9(&spec, quick);
            fig10(&spec, quick);
            fig11(&spec, quick);
            fig12(&spec, quick);
            fig13(&spec, quick);
            speedup(&spec, quick);
            scanc_experiment(&spec, quick);
            topk_experiment(&spec, quick);
            ablation(&spec, quick);
            lowbit(&spec, quick);
            scaling(&spec, quick);
            tiles(quick);
            reduce_experiment(&spec, quick);
        }
        other => {
            eprintln!("unknown figure '{other}'");
            std::process::exit(2);
        }
    }
}

fn us(r: &KernelReport) -> String {
    format!("{:.1}", r.time_us())
}

/// Parses `--jobs N` / `--jobs=N`; defaults to all available cores.
fn parse_jobs(args: &[String]) -> usize {
    let mut explicit: Option<&str> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--jobs" {
            explicit = it.next().map(String::as_str);
        } else if let Some(v) = a.strip_prefix("--jobs=") {
            explicit = Some(v);
        }
    }
    match explicit {
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("--jobs needs a positive integer, got '{v}'");
                std::process::exit(2);
            }
        },
        None => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// One `--json` measurement point's payload: a kernel report or a
/// pre-rendered traffic row. Points are heterogeneous but committed in
/// a single ordered pass so the document layout never depends on which
/// worker finished first.
enum Point {
    Kernel(Box<KernelReport>),
    Traffic(String),
}

/// `--json`: runs every paper scan kernel once at a fixed input length
/// and writes the structured `bench-scan/v4` report to `BENCH_scan.json`.
/// All points run on the `--jobs` pool; the document (minus the `host`
/// wall-clock section) is byte-identical at any pool width.
fn json_report(spec: &ChipSpec, quick: bool) {
    let n: usize = if quick { 1 << 18 } else { 1 << 22 };
    let batch = 8usize;
    let s = 128usize;
    println!(
        "collecting kernel reports at N = {} on {} host thread(s) ...",
        human(n),
        jobs()
    );

    let data = vec![F16::ONE; n];
    type KernelPoint<'a> = Box<dyn FnOnce() -> KernelReport + Send + 'a>;
    let kernel_points: Vec<KernelPoint<'_>> = vec![
        Box::new(|| {
            let gm = fresh_gm(spec);
            let x = GlobalTensor::from_slice(&gm, &data).unwrap();
            cumsum_vec_only(spec, &gm, &x, s, 1).unwrap().report
        }),
        Box::new(|| {
            let gm = fresh_gm(spec);
            let x = GlobalTensor::from_slice(&gm, &data).unwrap();
            scanu::<F16, F16>(spec, &gm, &x, s).unwrap().report
        }),
        Box::new(|| {
            let gm = fresh_gm(spec);
            let x = GlobalTensor::from_slice(&gm, &data).unwrap();
            scanul1::<F16, F16>(spec, &gm, &x, s).unwrap().report
        }),
        Box::new(|| {
            let gm = fresh_gm(spec);
            let x = GlobalTensor::from_slice(&gm, &data).unwrap();
            let mut r = mcscan::<F16, F16, F16>(spec, &gm, &x, McScanConfig::for_chip(spec))
                .unwrap()
                .report;
            r.name = "MCScan(fp16)".into();
            r
        }),
        Box::new(|| {
            let gm = fresh_gm(spec);
            let x = GlobalTensor::from_slice(&gm, &vec![1u8; n]).unwrap();
            let mut r = mcscan::<u8, i16, i32>(spec, &gm, &x, McScanConfig::for_chip(spec))
                .unwrap()
                .report;
            r.name = "MCScan(int8)".into();
            r
        }),
        Box::new(|| {
            let gm = fresh_gm(spec);
            let x = GlobalTensor::from_slice(&gm, &data).unwrap();
            let mut r =
                scanc::<F16, F16, F16>(spec, &gm, &x, ScanCConfig::for_chip::<F16, F16>(spec))
                    .unwrap()
                    .report;
            r.name = "ScanC(fp16)".into();
            r
        }),
        Box::new(|| {
            let gm = fresh_gm(spec);
            let x = GlobalTensor::from_slice(&gm, &vec![1u8; n]).unwrap();
            let mut r =
                scanc::<u8, i16, i32>(spec, &gm, &x, ScanCConfig::for_chip::<i16, i32>(spec))
                    .unwrap()
                    .report;
            r.name = "ScanC(int8)".into();
            r
        }),
        Box::new(|| {
            let gm = fresh_gm(spec);
            let x = GlobalTensor::from_slice(&gm, &data).unwrap();
            batched_scanu::<F16, F16>(spec, &gm, &x, batch, n / batch, s)
                .unwrap()
                .report
        }),
        Box::new(|| {
            let gm = fresh_gm(spec);
            let x = GlobalTensor::from_slice(&gm, &data).unwrap();
            batched_scanul1::<F16, F16>(spec, &gm, &x, batch, n / batch, s)
                .unwrap()
                .report
        }),
    ];

    // The tentpole comparison: total GM bytes moved by MCScan vs ScanC
    // across the Fig. 3 size sweep, for both dtype paths. ScanC drops
    // the recomputation read (≈3N element accesses → ≈2N), which shows
    // up here as strictly fewer bytes at every size.
    let traffic_sizes = if quick {
        sweep(1 << 12, 4, 4)
    } else {
        sweep(1 << 12, 4, 6)
    };
    let mut points: Vec<Box<dyn FnOnce() -> (Point, f64) + Send + '_>> = kernel_points
        .into_iter()
        .map(|k| {
            let timed: Box<dyn FnOnce() -> (Point, f64) + Send + '_> = Box::new(move || {
                let t0 = Instant::now();
                let r = k();
                (Point::Kernel(Box::new(r)), t0.elapsed().as_secs_f64())
            });
            timed
        })
        .collect();
    for &tn in &traffic_sizes {
        for dtype in ["fp16", "int8"] {
            points.push(Box::new(move || {
                let t0 = Instant::now();
                let (mc, sc) = traffic_pair(spec, tn, dtype);
                let row = format!(
                    "{{\"n\":{tn},\"dtype\":\"{dtype}\",\
                     \"mcscan_bytes\":{},\"scanc_bytes\":{},\
                     \"mcscan_time_us\":{},\"scanc_time_us\":{}}}",
                    mc.bytes_read + mc.bytes_written,
                    sc.bytes_read + sc.bytes_written,
                    format_args!("{:.3}", mc.time_us()),
                    format_args!("{:.3}", sc.time_us()),
                );
                (Point::Traffic(row), t0.elapsed().as_secs_f64())
            }));
        }
    }

    let total_points = points.len();
    let wall0 = Instant::now();
    let outcomes = bench::run_points(points, jobs());
    let host_seconds = wall0.elapsed().as_secs_f64().max(1e-6);

    let mut reports: Vec<KernelReport> = Vec::new();
    let mut kernel_seconds: Vec<f64> = Vec::new();
    let mut traffic_rows: Vec<String> = Vec::new();
    let mut serial_est = 0.0;
    for (point, secs) in outcomes {
        serial_est += secs;
        match point {
            Point::Kernel(r) => {
                reports.push(*r);
                kernel_seconds.push(secs.max(1e-6));
            }
            Point::Traffic(row) => traffic_rows.push(row),
        }
    }

    let kernels: Vec<String> = reports.iter().map(|r| r.to_json(spec)).collect();
    // The host section is the only part of the document that depends on
    // wall clocks. It is kept flat (no nested braces) so CI can strip it
    // with one regular expression before byte-comparing runs.
    let host = format!(
        "{{\"jobs\":{},\"points\":{},\"host_seconds\":{:.6},\
         \"serial_seconds_est\":{:.6},\"kernel_host_seconds\":[{}]}}",
        jobs(),
        total_points,
        host_seconds,
        serial_est.max(1e-6),
        kernel_seconds
            .iter()
            .map(|t| format!("{t:.6}"))
            .collect::<Vec<_>>()
            .join(",")
    );
    let doc = format!(
        "{{\"schema\":\"bench-scan/v4\",\"chip\":{{\"name\":\"{}\",\"ai_cores\":{},\
         \"clock_ghz\":{},\"hbm_gbps\":{:.1}}},\"n\":{},\"s\":{},\"kernels\":[{}],\
         \"traffic\":[{}],\"host\":{}}}\n",
        spec.name,
        spec.ai_cores,
        spec.clock_ghz,
        spec.hbm_bytes_per_sec / 1e9,
        n,
        s,
        kernels.join(","),
        traffic_rows.join(","),
        host
    );
    validate_bench_json(&doc, spec).expect("BENCH_scan.json must pass the v4 sanity bounds");
    std::fs::write("BENCH_scan.json", &doc).expect("write BENCH_scan.json");
    println!(
        "wrote BENCH_scan.json ({} kernels, {} bytes)",
        reports.len(),
        doc.len()
    );
    println!(
        "host: {} points, {} jobs, {:.2}s wall, {:.2}x vs {:.2}s serial estimate",
        total_points,
        jobs(),
        host_seconds,
        serial_est / host_seconds,
        serial_est
    );
    for r in &reports {
        println!(
            "  {:<18} {:>10.1} us  {:>7.0} GB/s  {:>5.1}% of peak",
            r.name,
            r.time_us(),
            r.gbps(),
            r.fraction_of_peak(spec) * 100.0
        );
    }
    println!("critical paths (share of makespan on the critical path, per class):");
    for r in &reports {
        let Some(cp) = &r.critical_path else { continue };
        let m = cp.makespan.max(1) as f64;
        let best = cp
            .what_ifs
            .iter()
            .max_by_key(|w| w.saved)
            .map(|w| format!("{} -> {:.2}x", w.name, m / (w.predicted.max(1) as f64)))
            .unwrap_or_else(|| "-".into());
        println!(
            "  {:<18} busy {:>4.1}%  hbm {:>4.1}%  flags {:>4.1}%  chain {:>4.1}%  best what-if: {}",
            r.name,
            cp.busy as f64 / m * 100.0,
            cp.hbm as f64 / m * 100.0,
            (cp.flag_wire + cp.flag_instr) as f64 / m * 100.0,
            cp.lookback_share() * 100.0,
            best
        );
    }
}

/// Fig. 3 — single-core execution time: CumSum (vector-only) vs ScanU vs
/// ScanUL1 (fp16, s = 128).
fn fig3(spec: &ChipSpec, quick: bool) {
    println!("== Figure 3: single-core scans, execution time (us), fp16, s = 128 ==");
    let sizes = if quick {
        sweep(1 << 12, 4, 4)
    } else {
        sweep(1 << 12, 4, 6)
    };
    let mut t = Table::new(&[
        "N",
        "vec_only",
        "ScanU",
        "ScanUL1",
        "U-speedup",
        "UL1-speedup",
    ]);
    let mut last = (0.0, 0.0);
    let rows = par(sizes, |n| {
        let gm = fresh_gm(spec);
        let data = vec![F16::ZERO; n];
        let x = GlobalTensor::from_slice(&gm, &data).unwrap();
        let b = cumsum_vec_only(spec, &gm, &x, 128, 1).unwrap().report;
        let u = scanu::<F16, F16>(spec, &gm, &x, 128).unwrap().report;
        let ul1 = scanul1::<F16, F16>(spec, &gm, &x, 128).unwrap().report;
        (n, b, u, ul1)
    });
    for (n, b, u, ul1) in rows {
        last = (b.time_s() / u.time_s(), b.time_s() / ul1.time_s());
        t.row(vec![
            human(n),
            us(&b),
            us(&u),
            us(&ul1),
            format!("{:.2}x", last.0),
            format!("{:.2}x", last.1),
        ]);
    }
    t.print();
    println!(
        "  paper @ large N: ScanU ~5x, ScanUL1 ~9.6x vs vec-only; measured {:.2}x / {:.2}x\n",
        last.0, last.1
    );
}

/// Fig. 5 — batched ScanUL1 / ScanU time ratio heatmap (>1 ⇒ ScanU wins).
fn fig5(spec: &ChipSpec, quick: bool) {
    println!("== Figure 5: batched scan time ratio ScanUL1 / ScanU (>1 means ScanU wins) ==");
    let lens: Vec<usize> = if quick {
        vec![512, 4096, 32768]
    } else {
        vec![512, 2048, 8192, 32768, 65536]
    };
    let batches: Vec<usize> = if quick {
        vec![4, 18, 40]
    } else {
        vec![2, 8, 16, 18, 20, 32, 40]
    };
    let mut header: Vec<String> = vec!["batch \\ len".into()];
    header.extend(lens.iter().map(|&l| human(l)));
    let mut t = Table::new(&header.iter().map(String::as_str).collect::<Vec<_>>());
    let lens_ref = &lens;
    let rows = par(batches.clone(), move |b| {
        let mut row = vec![b.to_string()];
        for &len in lens_ref {
            let gm = fresh_gm(spec);
            let data = vec![F16::ZERO; b * len];
            let x = GlobalTensor::from_slice(&gm, &data).unwrap();
            let u = batched_scanu::<F16, F16>(spec, &gm, &x, b, len, 128)
                .unwrap()
                .report;
            let ul1 = batched_scanul1::<F16, F16>(spec, &gm, &x, b, len, 128)
                .unwrap()
                .report;
            row.push(format!("{:.2}", ul1.time_s() / u.time_s()));
        }
        row
    });
    for row in rows {
        t.row(row);
    }
    t.print();
    println!(
        "  paper: ScanU wins for batch > 18 & len < 4K; ScanUL1 wins for batch < 18 & len > 4K\n"
    );
}

/// Fig. 8 — MCScan bandwidth (GB/s) vs input length for s = 32/64/128,
/// with the torch.clone copy kernel as the roofline reference.
fn fig8(spec: &ChipSpec, quick: bool) {
    println!("== Figure 8: MCScan bandwidth (GB/s), fp16, vs torch.clone (peak 800 GB/s) ==");
    let sizes = if quick {
        sweep(1 << 16, 8, 3)
    } else {
        sweep(1 << 16, 4, 6)
    };
    let mut t = Table::new(&["N", "s=32", "s=64", "s=128", "clone", "s128 %peak"]);
    let rows = par(sizes, |n| {
        let data = vec![F16::ZERO; n];
        let mut cells = vec![human(n)];
        let mut frac = 0.0;
        for s in [32usize, 64, 128] {
            let gm = fresh_gm(spec);
            let x = GlobalTensor::from_slice(&gm, &data).unwrap();
            let r = mcscan::<F16, F16, F16>(
                spec,
                &gm,
                &x,
                McScanConfig {
                    s,
                    blocks: spec.ai_cores,
                    kind: ScanKind::Inclusive,
                },
            )
            .unwrap()
            .report;
            if s == 128 {
                frac = r.fraction_of_peak(spec);
            }
            cells.push(format!("{:.0}", r.gbps()));
        }
        let gm = fresh_gm(spec);
        let x = GlobalTensor::from_slice(&gm, &data).unwrap();
        let (_, c) = baselines::clone(spec, &gm, &x).unwrap();
        cells.push(format!("{:.0}", c.gbps()));
        cells.push(format!("{:.1}%", frac * 100.0));
        cells
    });
    for cells in rows {
        t.row(cells);
    }
    t.print();
    println!("  paper: MCScan reaches up to 37.5% of peak; larger s is faster; copy nears peak under L2\n");
}

/// Fig. 9 — MCScan GElems/s for fp16 vs int8 inputs (s = 128).
fn fig9(spec: &ChipSpec, quick: bool) {
    println!("== Figure 9: MCScan giga-elements/s, fp16 vs int8 (s = 128) ==");
    let sizes = if quick {
        sweep(1 << 18, 8, 3)
    } else {
        sweep(1 << 18, 4, 5)
    };
    let mut t = Table::new(&["N", "fp16", "int8", "int8 gain"]);
    let rows = par(sizes, |n| {
        let cfg = McScanConfig {
            s: 128,
            blocks: spec.ai_cores,
            kind: ScanKind::Inclusive,
        };
        let gm = fresh_gm(spec);
        let xf = GlobalTensor::from_slice(&gm, &vec![F16::ZERO; n]).unwrap();
        let rf = mcscan::<F16, F16, F16>(spec, &gm, &xf, cfg).unwrap().report;
        let gm = fresh_gm(spec);
        let xi = GlobalTensor::from_slice(&gm, &vec![1u8; n]).unwrap();
        let ri = mcscan::<u8, i16, i32>(spec, &gm, &xi, cfg).unwrap().report;
        vec![
            human(n),
            format!("{:.2}", rf.gelems()),
            format!("{:.2}", ri.gelems()),
            format!("{:.2}x", ri.gelems() / rf.gelems()),
        ]
    });
    for cells in rows {
        t.row(cells);
    }
    t.print();
    println!("  paper: ~10% more elements/s for int8 inputs\n");
}

/// Fig. 10 — Compress bandwidth vs torch.masked_select (Bernoulli(1/2)).
fn fig10(spec: &ChipSpec, quick: bool) {
    println!("== Figure 10: compress (masked_select) bandwidth (GB/s), fp16 values ==");
    let sizes = if quick {
        sweep(1 << 16, 8, 3)
    } else {
        sweep(1 << 16, 4, 5)
    };
    let mut t = Table::new(&["N", "s=32", "s=64", "s=128", "torch.masked_select"]);
    let rows = par(sizes, |n| {
        let vals = synth_f16(n, 1);
        let mask = synth_mask(n, 2);
        let mut cells = vec![human(n)];
        for s in [32usize, 64, 128] {
            let gm = fresh_gm(spec);
            let x = GlobalTensor::from_slice(&gm, &vals).unwrap();
            let m = GlobalTensor::from_slice(&gm, &mask).unwrap();
            let r = compress(spec, &gm, &x, &m, s, spec.ai_cores)
                .unwrap()
                .report;
            cells.push(format!("{:.0}", r.gbps()));
        }
        let gm = fresh_gm(spec);
        let x = GlobalTensor::from_slice(&gm, &vals).unwrap();
        let m = GlobalTensor::from_slice(&gm, &mask).unwrap();
        let (_, b) = baselines::masked_select(spec, &gm, &x, &m).unwrap();
        cells.push(format!("{:.1}", b.gbps()));
        cells
    });
    for cells in rows {
        t.row(cells);
    }
    t.print();
    println!("  paper: compress reaches ~160 GB/s (20% of peak); the baseline is scalar-bound and flat\n");
}

/// Fig. 11 — fp16 radix sort (MCScan splits) vs torch.sort.
fn fig11(spec: &ChipSpec, quick: bool) {
    println!("== Figure 11: fp16 sort, execution time (ms): radix sort (s = 128) vs torch.sort ==");
    let sizes: Vec<usize> = if quick {
        vec![1 << 16, 1 << 19, 1 << 21]
    } else {
        vec![1 << 16, 1 << 18, 525_000, 1 << 20, 1 << 22, 1 << 24]
    };
    let mut t = Table::new(&["N", "radix sort", "torch.sort", "speedup"]);
    let rows = par(sizes, |n| {
        let vals = synth_f16(n, 3);
        let gm = fresh_gm(spec);
        let x = GlobalTensor::from_slice(&gm, &vals).unwrap();
        let r = radix_sort::<F16>(spec, &gm, &x, 128, spec.ai_cores, SortOrder::Ascending)
            .unwrap()
            .report;
        let gm = fresh_gm(spec);
        let x = GlobalTensor::from_slice(&gm, &vals).unwrap();
        let (_, _, b) = baselines::sort::<F16>(spec, &gm, &x, false).unwrap();
        vec![
            human(n),
            format!("{:.2}", r.time_ms()),
            format!("{:.2}", b.time_ms()),
            format!("{:.2}x", b.time_s() / r.time_s()),
        ]
    });
    for cells in rows {
        t.row(cells);
    }
    t.print();
    println!("  paper: 1.3x-3.3x speedup for N > 525K; baseline wins below\n");
}

/// Fig. 12 — batched-scan bandwidth vs batch size (len = 65536).
fn fig12(spec: &ChipSpec, quick: bool) {
    println!("== Figure 12: batched scan (ScanU schedule) bandwidth (GB/s), len = 64K ==");
    let len = 65536usize;
    let batches: Vec<usize> = if quick {
        vec![4, 16, 40]
    } else {
        vec![1, 2, 4, 8, 16, 24, 32, 40]
    };
    let mut t = Table::new(&["batch", "s=16", "s=32", "s=64", "s=128", "baseline"]);
    let rows = par(batches.clone(), |b| {
        let data = vec![F16::ZERO; b * len];
        let mut cells = vec![b.to_string()];
        for s in [16usize, 32, 64, 128] {
            let gm = fresh_gm(spec);
            let x = GlobalTensor::from_slice(&gm, &data).unwrap();
            let r = batched_scanu::<F16, F16>(spec, &gm, &x, b, len, s)
                .unwrap()
                .report;
            cells.push(format!("{:.0}", r.gbps()));
        }
        // torch.cumsum baseline over the same batch: row-parallel
        // vector-only scans across all vector cores.
        let gm = fresh_gm(spec);
        let x = GlobalTensor::from_slice(&gm, &data).unwrap();
        let base = bench::batched_cumsum_baseline(spec, &gm, &x, b, len).unwrap();
        cells.push(format!("{:.0}", base.gbps()));
        cells
    });
    for cells in rows {
        t.row(cells);
    }
    t.print();
    println!("  paper: s = 64/128 reach ~400 GB/s; s = 16 performs like the baseline\n");

    // Additional L2-resident shapes: same 4M-element working set carved
    // into more, shorter rows. The whole set (x + w + y at fp16) stays
    // inside the 910B4's L2, so these run at L2 rather than HBM
    // bandwidth and expose the per-row scheduling overhead instead.
    println!("  -- L2-resident shapes (batch x len, fp16, s = 128) --");
    let shapes: Vec<(usize, usize)> = if quick {
        vec![(64, 32768)]
    } else {
        vec![(64, 32768), (128, 16384)]
    };
    let mut t2 = Table::new(&["shape", "GB/s", "us", "baseline GB/s"]);
    let rows = par(shapes.clone(), |(b, len)| {
        let data = vec![F16::ZERO; b * len];
        let gm = fresh_gm(spec);
        let x = GlobalTensor::from_slice(&gm, &data).unwrap();
        let r = batched_scanu::<F16, F16>(spec, &gm, &x, b, len, 128)
            .unwrap()
            .report;
        let gm = fresh_gm(spec);
        let x = GlobalTensor::from_slice(&gm, &data).unwrap();
        let base = bench::batched_cumsum_baseline(spec, &gm, &x, b, len).unwrap();
        vec![
            format!("{b}x{}", human(len)),
            format!("{:.0}", r.gbps()),
            us(&r),
            format!("{:.0}", base.gbps()),
        ]
    });
    for cells in rows {
        t2.row(cells);
    }
    t2.print();
    println!();
}

/// Fig. 13 — top-p sampling time vs vocabulary size (batch 1).
fn fig13(spec: &ChipSpec, quick: bool) {
    println!("== Figure 13: top-p (nucleus) sampling time (ms), one sample ==");
    let sizes = if quick {
        sweep(1 << 10, 16, 3)
    } else {
        sweep(1 << 10, 4, 6)
    };
    let mut t = Table::new(&["vocab", "s=32", "s=64", "s=128", "PyTorch", "s128 speedup"]);
    let rows = par(sizes, |n| {
        let probs = synth_probs(n, 9);
        let mut cells = vec![human(n)];
        let mut ours128 = 0.0;
        for s in [32usize, 64, 128] {
            let gm = fresh_gm(spec);
            let x = GlobalTensor::from_slice(&gm, &probs).unwrap();
            let r = ops::top_p_sample(spec, &gm, &x, 0.9, 0.37, s, spec.ai_cores)
                .unwrap()
                .report;
            if s == 128 {
                ours128 = r.time_s();
            }
            cells.push(format!("{:.2}", r.time_ms()));
        }
        let gm = fresh_gm(spec);
        let x = GlobalTensor::from_slice(&gm, &probs).unwrap();
        let (_, b) = baseline_top_p(spec, &gm, &x, 0.9, 0.37).unwrap();
        cells.push(format!("{:.2}", b.time_ms()));
        cells.push(format!("{:.2}x", b.time_s() / ours128));
        cells
    });
    for cells in rows {
        t.row(cells);
    }
    t.print();
    println!("  paper: the baseline scales poorly (unoptimized cumsum); ours flat-ish until the sort dominates\n");
}

/// §6.1 text — MCScan speedup over single-core ScanU (saturates ~15.2x).
fn speedup(spec: &ChipSpec, quick: bool) {
    println!("== MCScan vs single-cube ScanU speedup (paper: saturates at 15.2x on 20 cores) ==");
    let sizes = if quick {
        sweep(1 << 18, 8, 3)
    } else {
        sweep(1 << 18, 4, 5)
    };
    let mut t = Table::new(&["N", "ScanU (us)", "MCScan (us)", "speedup"]);
    let rows = par(sizes, |n| {
        let data = vec![F16::ZERO; n];
        let gm = fresh_gm(spec);
        let x = GlobalTensor::from_slice(&gm, &data).unwrap();
        let u = scanu::<F16, F16>(spec, &gm, &x, 128).unwrap().report;
        let gm = fresh_gm(spec);
        let x = GlobalTensor::from_slice(&gm, &data).unwrap();
        let mc = mcscan::<F16, F16, F16>(spec, &gm, &x, McScanConfig::for_chip(spec))
            .unwrap()
            .report;
        vec![
            human(n),
            us(&u),
            us(&mc),
            format!("{:.1}x", u.time_s() / mc.time_s()),
        ]
    });
    for cells in rows {
        t.row(cells);
    }
    t.print();
    println!();
}

/// Runs MCScan and ScanC on the same `n`-element input of the given
/// dtype path ("fp16" or "int8") and returns both reports.
fn traffic_pair(spec: &ChipSpec, n: usize, dtype: &str) -> (KernelReport, KernelReport) {
    match dtype {
        "fp16" => {
            let data = vec![F16::ONE; n];
            let gm = fresh_gm(spec);
            let x = GlobalTensor::from_slice(&gm, &data).unwrap();
            let mc = mcscan::<F16, F16, F16>(spec, &gm, &x, McScanConfig::for_chip(spec))
                .unwrap()
                .report;
            let gm = fresh_gm(spec);
            let x = GlobalTensor::from_slice(&gm, &data).unwrap();
            let sc = scanc::<F16, F16, F16>(spec, &gm, &x, ScanCConfig::for_chip::<F16, F16>(spec))
                .unwrap()
                .report;
            (mc, sc)
        }
        _ => {
            let data = vec![1u8; n];
            let gm = fresh_gm(spec);
            let x = GlobalTensor::from_slice(&gm, &data).unwrap();
            let mc = mcscan::<u8, i16, i32>(spec, &gm, &x, McScanConfig::for_chip(spec))
                .unwrap()
                .report;
            let gm = fresh_gm(spec);
            let x = GlobalTensor::from_slice(&gm, &data).unwrap();
            let sc = scanc::<u8, i16, i32>(spec, &gm, &x, ScanCConfig::for_chip::<i16, i32>(spec))
                .unwrap()
                .report;
            (mc, sc)
        }
    }
}

/// ScanC vs MCScan: GM traffic (the chained look-back's win) and time
/// (where the serial flag chain's cost shows) across the Fig. 3 sizes.
fn scanc_experiment(spec: &ChipSpec, quick: bool) {
    println!("== ScanC (chained look-back) vs MCScan: GM traffic and time ==");
    let sizes = if quick {
        sweep(1 << 12, 4, 4)
    } else {
        sweep(1 << 12, 4, 6)
    };
    for dtype in ["fp16", "int8"] {
        println!("  -- {dtype} --");
        let mut t = Table::new(&[
            "N",
            "MCScan B",
            "ScanC B",
            "bytes ratio",
            "MCScan us",
            "ScanC us",
        ]);
        let rows = par(sizes.clone(), |n| {
            let (mc, sc) = traffic_pair(spec, n, dtype);
            let mcb = mc.bytes_read + mc.bytes_written;
            let scb = sc.bytes_read + sc.bytes_written;
            vec![
                human(n),
                mcb.to_string(),
                scb.to_string(),
                format!("{:.2}", scb as f64 / mcb as f64),
                us(&mc),
                us(&sc),
            ]
        });
        for cells in rows {
            t.row(cells);
        }
        t.print();
    }
    println!("  ScanC moves ~2N element accesses against MCScan's ~3N (8 vs 10 B/elem fp16,");
    println!("  9 vs 10 int8); the serial per-lane flag chain prices the look-back honestly,");
    println!("  so the traffic win only converts to a time win once bandwidth binds\n");
}

/// §5 text — the top-k negative result: SplitInd-based top-k does not
/// beat the baseline for k <= 4096.
fn topk_experiment(spec: &ChipSpec, quick: bool) {
    println!("== Top-k: SplitInd-based selection vs baseline torch.topk (paper: negative result for k <= 4096) ==");
    let n = if quick { 1 << 18 } else { 1 << 20 };
    let ks: Vec<usize> = if quick {
        vec![64, 4096]
    } else {
        vec![64, 256, 1024, 4096, 16384, 65536]
    };
    let vals = synth_f16(n, 5);
    let mut t = Table::new(&["k", "ours (ms)", "torch.topk (ms)", "ours/baseline"]);
    let vals_ref = &vals;
    let rows = par(ks.clone(), move |k| {
        let gm = fresh_gm(spec);
        let x = GlobalTensor::from_slice(&gm, vals_ref).unwrap();
        let r = topk::<F16>(spec, &gm, &x, k, 128, spec.ai_cores)
            .unwrap()
            .report;
        let gm = fresh_gm(spec);
        let x = GlobalTensor::from_slice(&gm, vals_ref).unwrap();
        let (_, _, b) = baselines::topk_baseline::<F16>(spec, &gm, &x, k).unwrap();
        vec![
            k.to_string(),
            format!("{:.2}", r.time_ms()),
            format!("{:.2}", b.time_ms()),
            format!("{:.2}x", r.time_s() / b.time_s()),
        ]
    });
    for cells in rows {
        t.row(cells);
    }
    t.print();
    println!("  (values > 1 mean the baseline wins, reproducing the paper's negative finding)\n");
}

/// Ablation of MCScan's recomputation strategy against the classic
/// scan strategies of §2.1 (time in us; int8 -> i32, s = 128).
fn ablation(spec: &ChipSpec, quick: bool) {
    println!("== Ablation: MCScan recomputation vs classic strategies (us, int8, s = 128) ==");
    let sizes = if quick {
        sweep(1 << 16, 16, 2)
    } else {
        sweep(1 << 16, 4, 5)
    };
    let mut header = vec!["N".to_string()];
    header.extend(McScanVariant::ALL.iter().map(|v| v.name().to_string()));
    let mut t = Table::new(&header.iter().map(String::as_str).collect::<Vec<_>>());
    let rows = par(sizes, |n| {
        let data = vec![1i8; n];
        let mut cells = vec![human(n)];
        for v in McScanVariant::ALL {
            let gm = fresh_gm(spec);
            let x = GlobalTensor::from_slice(&gm, &data).unwrap();
            let cfg = McScanConfig {
                s: 128,
                blocks: spec.ai_cores,
                kind: ScanKind::Inclusive,
            };
            let r = mcscan_variant::<i8, i16, i32>(spec, &gm, &x, cfg, v)
                .unwrap()
                .report;
            cells.push(format!("{:.1}", r.time_us()));
        }
        cells
    });
    for cells in rows {
        t.row(cells);
    }
    t.print();
    println!("  recomputation beats SSA everywhere and stays within ~10% of RSS (both move");
    println!("  ~10 B/elem); unlike RSS it also avoids per-tile cube->vector flag traffic,");
    println!("  which the timing model now prices explicitly (CrossCoreSetFlag/WaitFlag");
    println!(
        "  pairs, {} + {} cycles each on this preset)\n",
        ChipSpec::ascend_910b4().flag_set_cycles,
        ChipSpec::ascend_910b4().flag_wait_cycles
    );
}

/// The paper's future-work expectation: low-bit-width sorting gets
/// faster because radix passes equal the key width (8 passes vs 16).
fn lowbit(spec: &ChipSpec, quick: bool) {
    println!("== Low-precision sort: int8 (8 passes) vs fp16 (16 passes) radix sort (ms) ==");
    let sizes = if quick {
        vec![1 << 18]
    } else {
        vec![1 << 18, 1 << 20, 1 << 22]
    };
    let mut t = Table::new(&["N", "fp16 sort", "int8 sort", "gain"]);
    let rows = par(sizes, |n| {
        let vals16 = synth_f16(n, 21);
        let vals8: Vec<i8> = vals16.iter().map(|v| (v.to_f32() / 10.0) as i8).collect();
        let gm = fresh_gm(spec);
        let x = GlobalTensor::from_slice(&gm, &vals16).unwrap();
        let r16 = radix_sort::<F16>(spec, &gm, &x, 128, spec.ai_cores, SortOrder::Ascending)
            .unwrap()
            .report;
        let gm = fresh_gm(spec);
        let x = GlobalTensor::from_slice(&gm, &vals8).unwrap();
        let r8 = radix_sort::<i8>(spec, &gm, &x, 128, spec.ai_cores, SortOrder::Ascending)
            .unwrap()
            .report;
        vec![
            human(n),
            format!("{:.2}", r16.time_ms()),
            format!("{:.2}", r8.time_ms()),
            format!("{:.2}x", r16.time_s() / r8.time_s()),
        ]
    });
    for cells in rows {
        t.row(cells);
    }
    t.print();
    println!("  paper (future work): ~2x expected for 8-bit keys without further development\n");
}

/// Core-count scaling of MCScan at a fixed large input: the structure
/// behind the paper's "saturates at 15.2x with all 20 AI cores".
fn scaling(spec: &ChipSpec, quick: bool) {
    println!("== MCScan scaling with AI-core count (fp16, s = 128) ==");
    let n = if quick { 4 << 20 } else { 16 << 20 };
    let data = vec![F16::ZERO; n];
    let mut t = Table::new(&["blocks", "time (us)", "GB/s", "vs 1 block"]);
    let data_ref = &data;
    let rows = par(vec![1u32, 2, 4, 8, 12, 16, 20], move |blocks| {
        let gm = fresh_gm(spec);
        let x = GlobalTensor::from_slice(&gm, data_ref).unwrap();
        let r = mcscan::<F16, F16, F16>(
            spec,
            &gm,
            &x,
            McScanConfig {
                s: 128,
                blocks,
                kind: ScanKind::Inclusive,
            },
        )
        .unwrap()
        .report;
        (blocks, r)
    });
    let t1 = rows
        .iter()
        .find(|(blocks, _)| *blocks == 1)
        .map(|(_, r)| r.time_s())
        .unwrap_or(0.0);
    for (blocks, r) in rows {
        t.row(vec![
            blocks.to_string(),
            format!("{:.1}", r.time_us()),
            format!("{:.0}", r.gbps()),
            format!("{:.1}x", t1 / r.time_s()),
        ]);
    }
    t.print();
    println!("  near-linear until the 5N-traffic roofline, then flat: more cores cannot");
    println!("  buy bandwidth (N = {})\n", human(n));
}

/// The paper's future-work question: does a larger matmul tile help?
/// Simulated by a hypothetical chip with doubled L0/UB scratchpads so
/// s = 256 fits (on the real 910B4, s = 128 exactly fills L0A/L0B).
fn tiles(quick: bool) {
    println!("== Future work: larger matmul tiles on a hypothetical chip (2x L0/UB) ==");
    let mut fat = ChipSpec::ascend_910b4();
    fat.name = "910B4 + 2x scratchpads";
    fat.l0a_capacity *= 2;
    fat.l0b_capacity *= 2;
    fat.l0c_capacity *= 4;
    fat.ub_capacity *= 4;
    fat.l1_capacity *= 2;
    let n = if quick { 4 << 20 } else { 16 << 20 };
    let data = vec![F16::ZERO; n];
    let mut t = Table::new(&["s", "time (us)", "GB/s"]);
    let fat_ref = &fat;
    let data_ref = &data;
    let rows = par(vec![64usize, 128, 256], move |s| {
        let gm = fresh_gm(fat_ref);
        let x = GlobalTensor::from_slice(&gm, data_ref).unwrap();
        let r = mcscan::<F16, F16, F16>(
            fat_ref,
            &gm,
            &x,
            McScanConfig {
                s,
                blocks: fat_ref.ai_cores,
                kind: ScanKind::Inclusive,
            },
        )
        .unwrap()
        .report;
        vec![
            s.to_string(),
            format!("{:.1}", r.time_us()),
            format!("{:.0}", r.gbps()),
        ]
    });
    for cells in rows {
        t.row(cells);
    }
    t.print();
    println!("  the paper conjectures further gains from bigger tiles; the model agrees but");
    println!("  shows diminishing returns once the 5N-traffic roofline binds\n");
}

/// Reduction — the scan's sibling primitive from the Dakkak et al.
/// lineage: cube row-sum reduction vs the vector-only baseline, both
/// against the 1N-read roofline.
fn reduce_experiment(spec: &ChipSpec, quick: bool) {
    println!("== Reduction: cube (A @ 1s) vs vector-only, bandwidth (GB/s, fp16) ==");
    let sizes = if quick {
        sweep(1 << 18, 16, 2)
    } else {
        sweep(1 << 18, 4, 5)
    };
    let mut t = Table::new(&["N", "cube", "vector", "MCScan (ref)"]);
    let rows = par(sizes, |n| {
        let data = vec![F16::ONE; n];
        let gm = fresh_gm(spec);
        let x = GlobalTensor::from_slice(&gm, &data).unwrap();
        let rc = scan::reduce_cube::<F16>(spec, &gm, &x, 128, spec.ai_cores)
            .unwrap()
            .report;
        let gm = fresh_gm(spec);
        let x = GlobalTensor::from_slice(&gm, &data).unwrap();
        let rv = scan::reduce_vec::<F16>(spec, &gm, &x, spec.ai_cores)
            .unwrap()
            .report;
        let gm = fresh_gm(spec);
        let x = GlobalTensor::from_slice(&gm, &data).unwrap();
        let ms = mcscan::<F16, F16, F16>(spec, &gm, &x, McScanConfig::for_chip(spec))
            .unwrap()
            .report;
        vec![
            human(n),
            format!("{:.0}", rc.gbps()),
            format!("{:.0}", rv.gbps()),
            format!("{:.0}", ms.gbps()),
        ]
    });
    for cells in rows {
        t.row(cells);
    }
    t.print();
    println!("  a reduction reads each element once and rides close to the copy roofline;");
    println!("  both variants are bandwidth-bound, so the cube buys nothing here — matching");
    println!("  Dakkak et al.'s finding that matrix engines help scans more than reductions\n");
}
