//! Criterion benches: host-side throughput of the simulated kernels,
//! one group per paper figure. These measure how fast the *simulator*
//! executes (wall clock), complementing the `figures` binary which
//! reports the *simulated* device times; both matter — the simulator
//! itself must stay fast enough to sweep the paper's parameter ranges.

use ascend_sim::{ChipSpec, ValidationMode};
use ascendc::GlobalTensor;
use bench::{baseline_top_p, fresh_gm, synth_f16, synth_mask, synth_probs};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dtypes::F16;
use ops::{baselines, compress, radix_sort, split_ind, topk, SortOrder};
use scan::mcscan::{mcscan, McScanConfig, ScanKind};
use scan::{batched_scanu, batched_scanul1, cumsum_vec_only, scanu, scanul1};

const N: usize = 1 << 18; // 256 Ki elements per iteration

fn bench_fig3_single_core(c: &mut Criterion) {
    let spec = ChipSpec::ascend_910b4().with_validation(ValidationMode::Cheap);
    let data = vec![F16::ONE; N];
    let mut g = c.benchmark_group("fig3_single_core");
    g.throughput(Throughput::Elements(N as u64));
    g.sample_size(10);
    g.bench_function("vec_only", |b| {
        b.iter(|| {
            let gm = fresh_gm(&spec);
            let x = GlobalTensor::from_slice(&gm, &data).unwrap();
            cumsum_vec_only(&spec, &gm, &x, 128, 1).unwrap()
        })
    });
    g.bench_function("scanu", |b| {
        b.iter(|| {
            let gm = fresh_gm(&spec);
            let x = GlobalTensor::from_slice(&gm, &data).unwrap();
            scanu::<F16, F16>(&spec, &gm, &x, 128).unwrap()
        })
    });
    g.bench_function("scanul1", |b| {
        b.iter(|| {
            let gm = fresh_gm(&spec);
            let x = GlobalTensor::from_slice(&gm, &data).unwrap();
            scanul1::<F16, F16>(&spec, &gm, &x, 128).unwrap()
        })
    });
    g.finish();
}

fn bench_fig5_batched(c: &mut Criterion) {
    let spec = ChipSpec::ascend_910b4().with_validation(ValidationMode::Cheap);
    let (batch, len) = (8usize, 1 << 15);
    let data = vec![F16::ONE; batch * len];
    let mut g = c.benchmark_group("fig5_batched");
    g.throughput(Throughput::Elements((batch * len) as u64));
    g.sample_size(10);
    g.bench_function("batched_scanu", |b| {
        b.iter(|| {
            let gm = fresh_gm(&spec);
            let x = GlobalTensor::from_slice(&gm, &data).unwrap();
            batched_scanu::<F16, F16>(&spec, &gm, &x, batch, len, 128).unwrap()
        })
    });
    g.bench_function("batched_scanul1", |b| {
        b.iter(|| {
            let gm = fresh_gm(&spec);
            let x = GlobalTensor::from_slice(&gm, &data).unwrap();
            batched_scanul1::<F16, F16>(&spec, &gm, &x, batch, len, 128).unwrap()
        })
    });
    g.finish();
}

fn bench_fig8_mcscan(c: &mut Criterion) {
    let spec = ChipSpec::ascend_910b4().with_validation(ValidationMode::Cheap);
    let data = vec![F16::ONE; N];
    let mut g = c.benchmark_group("fig8_mcscan");
    g.throughput(Throughput::Elements(N as u64));
    g.sample_size(10);
    for s in [32usize, 64, 128] {
        g.bench_with_input(BenchmarkId::new("mcscan_fp16", s), &s, |b, &s| {
            b.iter(|| {
                let gm = fresh_gm(&spec);
                let x = GlobalTensor::from_slice(&gm, &data).unwrap();
                mcscan::<F16, F16, F16>(
                    &spec,
                    &gm,
                    &x,
                    McScanConfig {
                        s,
                        blocks: spec.ai_cores,
                        kind: ScanKind::Inclusive,
                    },
                )
                .unwrap()
            })
        });
    }
    g.bench_function("clone", |b| {
        b.iter(|| {
            let gm = fresh_gm(&spec);
            let x = GlobalTensor::from_slice(&gm, &data).unwrap();
            baselines::clone(&spec, &gm, &x).unwrap()
        })
    });
    g.finish();
}

fn bench_fig9_int8(c: &mut Criterion) {
    let spec = ChipSpec::ascend_910b4().with_validation(ValidationMode::Cheap);
    let mask = vec![1u8; N];
    let mut g = c.benchmark_group("fig9_int8");
    g.throughput(Throughput::Elements(N as u64));
    g.sample_size(10);
    g.bench_function("mcscan_int8", |b| {
        b.iter(|| {
            let gm = fresh_gm(&spec);
            let x = GlobalTensor::from_slice(&gm, &mask).unwrap();
            mcscan::<u8, i16, i32>(
                &spec,
                &gm,
                &x,
                McScanConfig {
                    s: 128,
                    blocks: spec.ai_cores,
                    kind: ScanKind::Inclusive,
                },
            )
            .unwrap()
        })
    });
    g.finish();
}

fn bench_fig10_compress(c: &mut Criterion) {
    let spec = ChipSpec::ascend_910b4().with_validation(ValidationMode::Cheap);
    let vals = synth_f16(N, 1);
    let mask = synth_mask(N, 2);
    let mut g = c.benchmark_group("fig10_compress");
    g.throughput(Throughput::Elements(N as u64));
    g.sample_size(10);
    g.bench_function("compress", |b| {
        b.iter(|| {
            let gm = fresh_gm(&spec);
            let x = GlobalTensor::from_slice(&gm, &vals).unwrap();
            let m = GlobalTensor::from_slice(&gm, &mask).unwrap();
            compress(&spec, &gm, &x, &m, 128, spec.ai_cores).unwrap()
        })
    });
    g.bench_function("split_ind", |b| {
        b.iter(|| {
            let gm = fresh_gm(&spec);
            let x = GlobalTensor::from_slice(&gm, &vals).unwrap();
            let m = GlobalTensor::from_slice(&gm, &mask).unwrap();
            split_ind(&spec, &gm, &x, &m, 128, spec.ai_cores).unwrap()
        })
    });
    g.bench_function("masked_select_baseline", |b| {
        b.iter(|| {
            let gm = fresh_gm(&spec);
            let x = GlobalTensor::from_slice(&gm, &vals).unwrap();
            let m = GlobalTensor::from_slice(&gm, &mask).unwrap();
            baselines::masked_select(&spec, &gm, &x, &m).unwrap()
        })
    });
    g.finish();
}

fn bench_fig11_sort(c: &mut Criterion) {
    let spec = ChipSpec::ascend_910b4().with_validation(ValidationMode::Cheap);
    let n = 1 << 16;
    let vals = synth_f16(n, 3);
    let mut g = c.benchmark_group("fig11_sort");
    g.throughput(Throughput::Elements(n as u64));
    g.sample_size(10);
    g.bench_function("radix_sort_f16", |b| {
        b.iter(|| {
            let gm = fresh_gm(&spec);
            let x = GlobalTensor::from_slice(&gm, &vals).unwrap();
            radix_sort::<F16>(&spec, &gm, &x, 128, spec.ai_cores, SortOrder::Ascending).unwrap()
        })
    });
    g.bench_function("sort_baseline", |b| {
        b.iter(|| {
            let gm = fresh_gm(&spec);
            let x = GlobalTensor::from_slice(&gm, &vals).unwrap();
            baselines::sort::<F16>(&spec, &gm, &x, false).unwrap()
        })
    });
    g.finish();
}

fn bench_fig13_topp(c: &mut Criterion) {
    let spec = ChipSpec::ascend_910b4().with_validation(ValidationMode::Cheap);
    let n = 1 << 14;
    let probs = synth_probs(n, 9);
    let mut g = c.benchmark_group("fig13_topp");
    g.throughput(Throughput::Elements(n as u64));
    g.sample_size(10);
    g.bench_function("top_p_ours", |b| {
        b.iter(|| {
            let gm = fresh_gm(&spec);
            let x = GlobalTensor::from_slice(&gm, &probs).unwrap();
            ops::top_p_sample(&spec, &gm, &x, 0.9, 0.37, 128, spec.ai_cores).unwrap()
        })
    });
    g.bench_function("top_p_torch", |b| {
        b.iter(|| {
            let gm = fresh_gm(&spec);
            let x = GlobalTensor::from_slice(&gm, &probs).unwrap();
            baseline_top_p(&spec, &gm, &x, 0.9, 0.37).unwrap()
        })
    });
    g.finish();
}

fn bench_topk(c: &mut Criterion) {
    let spec = ChipSpec::ascend_910b4().with_validation(ValidationMode::Cheap);
    let n = 1 << 16;
    let vals = synth_f16(n, 5);
    let mut g = c.benchmark_group("topk");
    g.throughput(Throughput::Elements(n as u64));
    g.sample_size(10);
    g.bench_function("topk_split_based", |b| {
        b.iter(|| {
            let gm = fresh_gm(&spec);
            let x = GlobalTensor::from_slice(&gm, &vals).unwrap();
            topk::<F16>(&spec, &gm, &x, 256, 128, spec.ai_cores).unwrap()
        })
    });
    g.finish();
}

criterion_group!(
    figures,
    bench_fig3_single_core,
    bench_fig5_batched,
    bench_fig8_mcscan,
    bench_fig9_int8,
    bench_fig10_compress,
    bench_fig11_sort,
    bench_fig13_topp,
    bench_topk,
);
criterion_main!(figures);
