//! Criterion microbenches of the substrate layers: f16 conversion, the
//! structure-aware functional matmul, global-memory transfers, queue
//! plumbing and the launch machinery — the pieces every kernel is built
//! from. Keeping these fast is what makes the paper-scale sweeps in the
//! `figures` binary tractable.

use ascend_sim::mem::GlobalMemory;
use ascend_sim::{ChipSpec, CoreKind, CoreTimeline, EngineKind, ValidationMode};
use ascendc::{launch, GlobalTensor, ScratchpadKind};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dtypes::{RadixKey, F16};
use std::hint::black_box;
use std::sync::Arc;

fn bench_f16_conversion(c: &mut Criterion) {
    let values: Vec<f32> = (0..4096).map(|i| (i as f32 - 2048.0) * 0.37).collect();
    let halves: Vec<F16> = values.iter().map(|&v| F16::from_f32(v)).collect();
    let mut g = c.benchmark_group("f16");
    g.throughput(Throughput::Elements(4096));
    g.bench_function("from_f32", |b| {
        b.iter(|| {
            let mut acc = 0u16;
            for &v in &values {
                acc = acc.wrapping_add(F16::from_f32(black_box(v)).to_bits());
            }
            acc
        })
    });
    g.bench_function("to_f32", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for &h in &halves {
                acc += black_box(h).to_f32();
            }
            acc
        })
    });
    g.bench_function("radix_encode", |b| {
        b.iter(|| {
            let mut acc = 0u16;
            for &h in &halves {
                acc = acc.wrapping_add(black_box(h).encode());
            }
            acc
        })
    });
    g.finish();
}

fn bench_timeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("timeline");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("exec_10k_instructions", |b| {
        b.iter(|| {
            let mut core = CoreTimeline::new(CoreKind::Vector, 0);
            let mut dep = 0;
            for _ in 0..10_000 {
                dep = core.exec(EngineKind::Vec, 17, &[dep]).unwrap();
            }
            dep
        })
    });
    g.finish();
}

fn bench_gm_transfers(c: &mut Criterion) {
    let spec = ChipSpec::ascend_910b4().with_validation(ValidationMode::Cheap);
    let data = vec![F16::ONE; 1 << 16];
    let mut g = c.benchmark_group("global_memory");
    g.throughput(Throughput::Bytes((data.len() * 2) as u64));
    g.bench_function("upload_download_128KB", |b| {
        b.iter(|| {
            let gm = Arc::new(GlobalMemory::new(spec.hbm_capacity));
            let t = GlobalTensor::from_slice(&gm, &data).unwrap();
            t.to_vec()
        })
    });
    g.finish();
}

fn bench_launch_overhead(c: &mut Criterion) {
    let spec = ChipSpec::ascend_910b4().with_validation(ValidationMode::Cheap);
    let mut g = c.benchmark_group("launch");
    g.sample_size(20);
    g.bench_function("empty_kernel_20_blocks", |b| {
        b.iter(|| {
            let gm = Arc::new(GlobalMemory::new(1 << 20));
            launch(&spec, &gm, spec.ai_cores, "noop", |_| Ok(())).unwrap()
        })
    });
    g.bench_function("copy_kernel_1_block", |b| {
        let gm = Arc::new(GlobalMemory::new(1 << 24));
        let data = vec![0u8; 1 << 14];
        let x = GlobalTensor::from_slice(&gm, &data).unwrap();
        let y = GlobalTensor::<u8>::new(&gm, 1 << 14).unwrap();
        b.iter(|| {
            launch(&spec, &gm, 1, "copy", |ctx| {
                let v = &mut ctx.vecs[0];
                let mut buf = v.alloc_local::<u8>(ScratchpadKind::Ub, 1 << 14)?;
                v.copy_in(&mut buf, 0, &x, 0, 1 << 14, &[])?;
                v.copy_out(&y, 0, &buf, 0, 1 << 14, &[])?;
                Ok(())
            })
            .unwrap()
        })
    });
    g.finish();
}

criterion_group!(
    substrate,
    bench_f16_conversion,
    bench_timeline,
    bench_gm_transfers,
    bench_launch_overhead,
);
criterion_main!(substrate);
