//! Offline drop-in subset of the [`rand`](https://crates.io/crates/rand)
//! 0.8 API.
//!
//! The build environment for this repository has no network access to
//! crates.io, so the workspace vendors the small slice of `rand` its
//! tests actually use: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! and the [`Rng`] methods `gen`, `gen_range` and `gen_bool`.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — a different
//! stream than upstream `StdRng` (which is unspecified and has changed
//! across `rand` versions anyway). All tests in this repository derive
//! expectations from the generated data itself, never from a fixed
//! stream, so the substitution is behavior-preserving.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform random bits.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seedable generators (subset: `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Values that can be drawn uniformly from an `RngCore` ([`Rng::gen`]).
pub trait Standard: Sized {
    /// Draws a uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)`, matching `rand`'s `Standard` float convention.
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)`.
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                (self.start as $wide).wrapping_add((rng.next_u64() % span) as $wide) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $wide as $t;
                }
                (lo as $wide).wrapping_add((rng.next_u64() % (span + 1)) as $wide) as $t
            }
        }
    )*};
}

impl_range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_range_float!(f32, f64);

/// High-level convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a uniform value from a range.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0, 1]");
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**
    /// seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let xs: Vec<u64> = (0..16).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(xs[0], c.gen::<u64>());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u16 = rng.gen_range(0..500);
            assert!(v < 500);
            let w: i32 = rng.gen_range(-10..10);
            assert!((-10..10).contains(&w));
            let f: f32 = rng.gen_range(-100.0f32..100.0);
            assert!((-100.0..100.0).contains(&f));
            let x: u64 = rng.gen_range(0..=u64::MAX);
            let _ = x;
        }
    }

    #[test]
    fn gen_bool_probabilities() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((45_000..55_000).contains(&hits), "p=0.5 gave {hits}/100000");
        assert!((0..1000).all(|_| !rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        super::RngCore::fill_bytes(&mut rng, &mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
