//! The AscendC queue (`TQue`) abstraction.
//!
//! Queues manage local-tensor buffers and make cross-engine data
//! dependencies explicit: a producer allocates a tensor from the queue's
//! buffer pool (`alloc_tensor`), writes it, and `enque`s it; the consumer
//! `deque`s it, reads it, and `free_tensor`s it back to the pool. A queue
//! of depth 2 is double buffering: the producer's iteration *i + 2* can
//! only start once the consumer released iteration *i*'s buffer — the
//! released buffer carries its release time, which the next producer
//! instruction inherits as a dependency.

use crate::core::Core;
use crate::tensor::LocalTensor;
use ascend_sim::chip::ScratchpadKind;
use ascend_sim::{EventTime, HbAction, HbRecorder, SimError, SimResult};
use dtypes::Element;
use std::collections::VecDeque;

/// A buffer queue binding a producer engine to a consumer engine.
pub struct TQue<T: Element> {
    pos: ScratchpadKind,
    buf_elems: usize,
    depth: usize,
    free: VecDeque<LocalTensor<T>>,
    queued: VecDeque<LocalTensor<T>>,
    /// Profiling name; when set, buffer occupancy is sampled at every
    /// alloc/free and flushed to the core's counter sink on `destroy`.
    name: Option<&'static str>,
    /// Buffers currently outside the free pool (allocated or queued).
    in_flight: u32,
    /// (time, in-flight count) samples; observational only.
    occupancy: Vec<(EventTime, u32)>,
    /// Simcheck: uid of the core whose scratchpad backs the pool
    /// (0 = untracked). A sibling core's tensor smuggled across the
    /// enque boundary is cross-core scratchpad aliasing.
    owner: u64,
    /// [`ValidationMode::Paranoid`](ascend_sim::ValidationMode):
    /// checksum buffer contents at `enque`, verify at `deque`.
    checksums: bool,
    /// FIFO of FNV-1a content checksums, parallel to `queued`.
    sums: VecDeque<u64>,
    /// Happens-before recorder cloned from the owning core: queue events
    /// land in that core's program-order stream.
    hb: HbRecorder,
    /// Launch-deterministic queue id for the happens-before event
    /// stream (derived from the owning core's block/lane identity).
    qid: u32,
}

/// FNV-1a over the little-endian bytes of `data` — cheap, deterministic
/// content fingerprint for the Paranoid enque/deque integrity check.
fn fnv1a<T: Element>(data: &[T]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut buf = [0u8; 16];
    for v in data {
        v.write_le(&mut buf[..T::SIZE]);
        for &b in &buf[..T::SIZE] {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

impl<T: Element> TQue<T> {
    /// Creates a queue whose pool holds `depth` buffers of `buf_elems`
    /// elements each in scratchpad `pos` (capacity-checked on `core`).
    pub fn new(
        core: &mut Core<'_>,
        pos: ScratchpadKind,
        depth: usize,
        buf_elems: usize,
    ) -> SimResult<Self> {
        if depth == 0 {
            return Err(SimError::InvalidArgument("TQue depth must be >= 1".into()));
        }
        let mut free = VecDeque::with_capacity(depth);
        for _ in 0..depth {
            free.push_back(core.alloc_local::<T>(pos, buf_elems)?);
        }
        let tracked = core.spec().validation.lifetime_checks();
        let hb = core.hb_recorder();
        let qid = core.next_queue_id();
        hb.record(
            core.now(),
            "TQue::new",
            HbAction::QueueCreate { queue: qid },
        );
        Ok(TQue {
            pos,
            buf_elems,
            depth,
            free,
            queued: VecDeque::new(),
            name: None,
            in_flight: 0,
            occupancy: Vec::new(),
            owner: if tracked { core.uid() } else { 0 },
            checksums: core.spec().validation.checksums(),
            sums: VecDeque::new(),
            hb,
            qid,
        })
    }

    /// Names the queue for profiling. A named queue samples its buffer
    /// occupancy (in-flight count over simulated time) and, if the core
    /// is profiling when the queue is destroyed, emits the samples as a
    /// counter track in the kernel profile.
    pub fn named(mut self, name: &'static str) -> Self {
        self.name = Some(name);
        self
    }

    /// The queue's profiling name, if any.
    pub fn name(&self) -> Option<&'static str> {
        self.name
    }

    /// The queue's buffer pool depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Elements per buffer.
    pub fn buf_elems(&self) -> usize {
        self.buf_elems
    }

    /// Takes a free buffer from the pool. The returned tensor's `ready`
    /// time is when its previous consumer released it — so the producer
    /// naturally stalls when the pipeline is full.
    pub fn alloc_tensor(&mut self) -> SimResult<LocalTensor<T>> {
        let t = self
            .free
            .pop_front()
            .ok_or(SimError::QueueUnderflow { op: "alloc_tensor" })?;
        if self.name.is_some() {
            self.in_flight += 1;
            self.occupancy.push((t.ready, self.in_flight));
        }
        Ok(t)
    }

    /// Publishes a produced tensor to the consumer side.
    pub fn enque(&mut self, t: LocalTensor<T>) -> SimResult<()> {
        if t.position() != self.pos {
            return Err(SimError::QueueProtocol(
                "enque: tensor from a different scratchpad",
            ));
        }
        if self.owner != 0 && t.owner != 0 && t.owner != self.owner {
            // The queue's pool lives in one core's scratchpad; a sibling
            // core's buffer crossing the enque boundary would alias
            // memory that is not addressable from the consumer side.
            return Err(SimError::CrossCoreScratchpad {
                what: "enque",
                owner: t.owner,
                user: self.owner,
            });
        }
        if self.queued.len() + self.free.len() >= self.depth {
            return Err(SimError::QueueOverflow { depth: self.depth });
        }
        if self.checksums {
            self.sums.push_back(fnv1a(&t.data));
        }
        self.hb
            .record(t.ready, "TQue::enque", HbAction::Enque { queue: self.qid });
        self.queued.push_back(t);
        Ok(())
    }

    /// Takes the oldest published tensor (FIFO). Dequeuing before any
    /// `enque` — or twice for one `enque` — is a [`SimError::QueueUnderflow`].
    ///
    /// Under [`ValidationMode::Paranoid`](ascend_sim::ValidationMode)
    /// the contents are re-checksummed and compared against the value
    /// captured at `enque`; a mismatch means something mutated a buffer
    /// while it sat in the queue (an aliasing or hand-off bug).
    pub fn deque(&mut self) -> SimResult<LocalTensor<T>> {
        let t = self
            .queued
            .pop_front()
            .ok_or(SimError::QueueUnderflow { op: "deque" })?;
        if self.checksums {
            let expected = self.sums.pop_front().unwrap_or_default();
            let actual = fnv1a(&t.data);
            if actual != expected {
                return Err(SimError::AccountingViolation {
                    what: "paranoid enque/deque checksum",
                    detail: format!(
                        "buffer contents changed in flight (enqued {expected:#018x}, \
                         dequed {actual:#018x}): a queued tensor was mutated before \
                         its consumer read it"
                    ),
                });
            }
        }
        self.hb
            .record(t.ready, "TQue::deque", HbAction::Deque { queue: self.qid });
        Ok(t)
    }

    /// Test-only failure injection: mutates the oldest queued buffer in
    /// place, as an aliasing producer would. Lets tests prove the
    /// Paranoid checksum actually fires.
    #[cfg(test)]
    pub(crate) fn tamper_oldest_queued(&mut self, value: T) {
        if let Some(t) = self.queued.front_mut() {
            t.data[0] = value;
        }
    }

    /// Returns a consumed tensor's buffer to the pool; `release` is the
    /// simulated time at which the consumer finished reading it.
    pub fn free_tensor(&mut self, mut t: LocalTensor<T>, release: EventTime) {
        t.ready = t.ready.max(release);
        if self.name.is_some() {
            self.in_flight = self.in_flight.saturating_sub(1);
            self.occupancy.push((release, self.in_flight));
        }
        self.free.push_back(t);
    }

    /// Releases the queue's scratchpad reservation. All buffers must have
    /// been returned to the pool. A named queue flushes its occupancy
    /// samples to the core's profile counter sink here.
    pub fn destroy(mut self, core: &mut Core<'_>) -> SimResult<()> {
        if self.free.len() != self.depth {
            return Err(SimError::QueueDestroyLive {
                in_flight: self.depth - self.free.len(),
            });
        }
        if let Some(name) = self.name {
            if core.profiling() {
                for (time, value) in self.occupancy.drain(..) {
                    core.push_counter(name, time, value);
                }
            }
        }
        while let Some(t) = self.free.pop_front() {
            core.free_local(t)?;
        }
        self.hb.record(
            core.now(),
            "TQue::destroy",
            HbAction::QueueDestroy { queue: self.qid },
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascend_sim::{ChipSpec, CoreKind, ValidationMode};

    fn with_core<R>(f: impl FnOnce(&mut Core<'_>) -> R) -> R {
        let spec = ChipSpec::tiny();
        let mut core = Core::new(CoreKind::Vector, &spec, 0, 0, 0);
        f(&mut core)
    }

    #[test]
    fn paranoid_checksums_catch_in_flight_mutation() {
        let mut spec = ChipSpec::tiny();
        spec.validation = ValidationMode::Paranoid;
        let mut core = Core::new(CoreKind::Vector, &spec, 0, 0, 0);
        let mut q = TQue::<i32>::new(&mut core, ScratchpadKind::Ub, 2, 8).unwrap();
        // A clean hand-off round-trips fine under Paranoid.
        let t = q.alloc_tensor().unwrap();
        q.enque(t).unwrap();
        let t = q.deque().unwrap();
        q.free_tensor(t, 0);
        // Failure injection: mutate the buffer while it sits in the
        // queue, as an aliasing producer would.
        let t = q.alloc_tensor().unwrap();
        q.enque(t).unwrap();
        q.tamper_oldest_queued(7);
        let err = q.deque().unwrap_err();
        assert!(matches!(err, SimError::AccountingViolation { .. }));
        assert!(err.to_string().contains("checksum"));
    }

    #[test]
    fn full_mode_does_not_pay_for_checksums() {
        with_core(|core| {
            assert!(!core.spec().validation.checksums());
            let mut q = TQue::<i32>::new(core, ScratchpadKind::Ub, 1, 8).unwrap();
            let t = q.alloc_tensor().unwrap();
            q.enque(t).unwrap();
            q.tamper_oldest_queued(7);
            // Full mode skips content checksumming entirely.
            assert!(q.deque().is_ok());
        });
    }

    #[test]
    fn cross_core_enque_is_rejected() {
        let spec = ChipSpec::tiny();
        let mut a = Core::new(CoreKind::Vector, &spec, 0, 0, 0);
        let mut b = Core::new(CoreKind::Vector, &spec, 0, 0, 1);
        let mut q = TQue::<u8>::new(&mut a, ScratchpadKind::Ub, 2, 8).unwrap();
        // Failure injection: core b's buffer smuggled into core a's queue.
        let foreign = b.alloc_local::<u8>(ScratchpadKind::Ub, 8).unwrap();
        let err = q.enque(foreign).unwrap_err();
        assert!(matches!(err, SimError::CrossCoreScratchpad { .. }));
        assert!(err.to_string().contains("cross-core"));
    }

    #[test]
    fn cross_core_use_and_free_are_rejected() {
        let spec = ChipSpec::tiny();
        let mut a = Core::new(CoreKind::Vector, &spec, 0, 0, 0);
        let mut b = Core::new(CoreKind::Vector, &spec, 0, 0, 1);
        let mut t = a.alloc_local::<f32>(ScratchpadKind::Ub, 8).unwrap();
        // Failure injection: core b touches core a's scratchpad buffer.
        let err = b.fill_local(&mut t, 0, 8, 1.0).unwrap_err();
        assert!(matches!(err, SimError::CrossCoreScratchpad { .. }));
        let err = b.free_local(t).unwrap_err();
        assert!(matches!(err, SimError::CrossCoreScratchpad { .. }));
    }

    #[test]
    fn produce_consume_cycle() {
        with_core(|core| {
            let mut q = TQue::<f32>::new(core, ScratchpadKind::Ub, 2, 16).unwrap();
            let t = q.alloc_tensor().unwrap();
            q.enque(t).unwrap();
            let t = q.deque().unwrap();
            q.free_tensor(t, 100);
            // The untouched pool buffer comes first, then the recycled
            // buffer carrying its release time forward.
            let fresh = q.alloc_tensor().unwrap();
            assert_eq!(fresh.ready(), 0, "second pool buffer never used");
            let recycled = q.alloc_tensor().unwrap();
            assert_eq!(recycled.ready(), 100);
        });
    }

    #[test]
    fn double_buffering_carries_release_times() {
        with_core(|core| {
            let mut q = TQue::<f32>::new(core, ScratchpadKind::Ub, 2, 16).unwrap();
            let a = q.alloc_tensor().unwrap();
            let b = q.alloc_tensor().unwrap();
            assert!(q.alloc_tensor().is_err(), "pool exhausted at depth 2");
            q.enque(a).unwrap();
            q.enque(b).unwrap();
            let a = q.deque().unwrap();
            q.free_tensor(a, 500);
            let recycled = q.alloc_tensor().unwrap();
            assert_eq!(recycled.ready(), 500, "producer stalls on consumer");
        });
    }

    #[test]
    fn protocol_violations_error() {
        with_core(|core| {
            let mut q = TQue::<u8>::new(core, ScratchpadKind::Ub, 1, 8).unwrap();
            assert!(
                matches!(q.deque(), Err(SimError::QueueUnderflow { op: "deque" })),
                "deque on empty queue"
            );
            let t = q.alloc_tensor().unwrap();
            q.enque(t).unwrap();
            let foreign = LocalTensor::<u8>::new(ScratchpadKind::L1, 8, 0);
            assert!(
                matches!(q.enque(foreign), Err(SimError::QueueProtocol(_))),
                "wrong scratchpad"
            );
            assert!(TQue::<u8>::new(core, ScratchpadKind::Ub, 0, 8).is_err());
        });
    }

    #[test]
    fn double_deque_underflows() {
        with_core(|core| {
            let mut q = TQue::<u8>::new(core, ScratchpadKind::Ub, 2, 8).unwrap();
            let t = q.alloc_tensor().unwrap();
            q.enque(t).unwrap();
            let t = q.deque().unwrap();
            assert!(matches!(
                q.deque(),
                Err(SimError::QueueUnderflow { op: "deque" })
            ));
            q.free_tensor(t, 0);
        });
    }

    #[test]
    fn pool_exhaustion_underflows() {
        with_core(|core| {
            let mut q = TQue::<u8>::new(core, ScratchpadKind::Ub, 1, 8).unwrap();
            let _t = q.alloc_tensor().unwrap();
            assert!(matches!(
                q.alloc_tensor(),
                Err(SimError::QueueUnderflow { op: "alloc_tensor" })
            ));
        });
    }

    #[test]
    fn depth_overflow_errors() {
        with_core(|core| {
            let mut q = TQue::<u8>::new(core, ScratchpadKind::Ub, 1, 8).unwrap();
            let t = q.alloc_tensor().unwrap();
            q.enque(t).unwrap();
            // The pool buffer is already enqueued; a smuggled-in extra
            // tensor would exceed the configured depth.
            let extra = LocalTensor::<u8>::new(ScratchpadKind::Ub, 8, 0);
            assert!(matches!(
                q.enque(extra),
                Err(SimError::QueueOverflow { depth: 1 })
            ));
        });
    }

    #[test]
    fn queue_allocation_respects_capacity() {
        with_core(|core| {
            // tiny chip UB = 16 KiB; 3 buffers of 4 Ki f32 = 48 KiB > cap.
            let r = TQue::<f32>::new(core, ScratchpadKind::Ub, 3, 4096);
            assert!(matches!(r, Err(SimError::ScratchpadOverflow { .. })));
        });
    }

    #[test]
    fn destroy_returns_capacity() {
        with_core(|core| {
            let before = core.scratch_in_use(ScratchpadKind::Ub);
            let q = TQue::<f32>::new(core, ScratchpadKind::Ub, 2, 128).unwrap();
            assert_eq!(core.scratch_in_use(ScratchpadKind::Ub), before + 1024);
            q.destroy(core).unwrap();
            assert_eq!(core.scratch_in_use(ScratchpadKind::Ub), before);
        });
    }

    #[test]
    fn destroy_with_in_flight_buffer_errors() {
        with_core(|core| {
            let mut q = TQue::<f32>::new(core, ScratchpadKind::Ub, 2, 16).unwrap();
            let t = q.alloc_tensor().unwrap();
            q.enque(t).unwrap();
            assert!(matches!(
                q.destroy(core),
                Err(SimError::QueueDestroyLive { in_flight: 1 })
            ));
        });
    }
}
