//! Global and local tensors.

use ascend_sim::chip::ScratchpadKind;
use ascend_sim::mem::{GlobalMemory, Region};
use ascend_sim::{EventTime, SimError, SimResult};
use dtypes::Element;
use std::marker::PhantomData;
use std::sync::Arc;

/// A typed view of a buffer in simulated global memory (HBM).
///
/// Mirrors AscendC's `GlobalTensor`: kernel inputs and outputs live here.
/// Cloning is cheap (the underlying memory is shared); `slice` produces
/// sub-views without copying. Host-side `to_vec`/`write` accessors move
/// data in and out without counting as device traffic.
#[derive(Clone)]
pub struct GlobalTensor<T: Element> {
    gm: Arc<GlobalMemory>,
    region: Region,
    len: usize,
    _t: PhantomData<T>,
}

impl<T: Element> GlobalTensor<T> {
    /// Allocates a zero-initialized global tensor of `len` elements.
    pub fn new(gm: &Arc<GlobalMemory>, len: usize) -> SimResult<Self> {
        let region = gm.alloc_elems::<T>(len)?;
        Ok(GlobalTensor {
            gm: Arc::clone(gm),
            region,
            len,
            _t: PhantomData,
        })
    }

    /// Allocates a global tensor holding a copy of `data` (host upload).
    pub fn from_slice(gm: &Arc<GlobalMemory>, data: &[T]) -> SimResult<Self> {
        let t = Self::new(gm, data.len())?;
        t.write(data)?;
        Ok(t)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The underlying global memory.
    pub fn memory(&self) -> &Arc<GlobalMemory> {
        &self.gm
    }

    /// The underlying byte region (for diagnostics).
    pub fn region(&self) -> Region {
        self.region
    }

    /// A sub-view of `len` elements starting at element `offset`.
    pub fn slice(&self, offset: usize, len: usize) -> SimResult<Self> {
        let region = self.region.slice(offset * T::SIZE, len * T::SIZE)?;
        Ok(GlobalTensor {
            gm: Arc::clone(&self.gm),
            region,
            len,
            _t: PhantomData,
        })
    }

    /// Host-side: reads the whole tensor.
    pub fn to_vec(&self) -> Vec<T> {
        self.gm
            .host_read_slice(self.region, 0, self.len)
            .expect("tensor region is always in bounds")
    }

    /// Host-side: reads `len` elements starting at `offset`.
    pub fn read_range(&self, offset: usize, len: usize) -> SimResult<Vec<T>> {
        self.gm.host_read_slice(self.region, offset, len)
    }

    /// Host-side: overwrites the tensor's prefix with `data`.
    pub fn write(&self, data: &[T]) -> SimResult<()> {
        if data.len() > self.len {
            return Err(SimError::OutOfBounds {
                what: "GlobalTensor::write",
                offset: 0,
                len: data.len() * T::SIZE,
                region: self.region.len,
            });
        }
        self.gm.host_write_slice(self.region, 0, data)
    }

    /// Device-side read used by MTE transfers (counted as HBM traffic).
    pub(crate) fn device_read(&self, elem_off: usize, out: &mut [T]) -> SimResult<()> {
        let mut bytes = vec![0u8; out.len() * T::SIZE];
        self.gm
            .device_read(self.region, elem_off * T::SIZE, &mut bytes)?;
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = T::read_le(&bytes[i * T::SIZE..(i + 1) * T::SIZE]);
        }
        Ok(())
    }

    /// Charges strided-access padding traffic (line granularity waste).
    pub(crate) fn account_read_padding(&self, bytes: u64) {
        self.gm.account_read_padding(bytes);
    }

    /// Device-side write used by MTE transfers (counted as HBM traffic).
    pub(crate) fn device_write(&self, elem_off: usize, src: &[T]) -> SimResult<()> {
        let mut bytes = vec![0u8; src.len() * T::SIZE];
        for (i, v) in src.iter().enumerate() {
            v.write_le(&mut bytes[i * T::SIZE..(i + 1) * T::SIZE]);
        }
        self.gm
            .device_write(self.region, elem_off * T::SIZE, &bytes)
    }
}

/// A typed buffer in a core's local scratchpad (UB, L1, L0A/B/C).
///
/// Mirrors AscendC's `LocalTensor`. Besides its contents, a local tensor
/// carries the simulated [`EventTime`] at which those contents become
/// valid; intrinsics consume that time as a dependency and update it.
#[derive(Clone, Debug)]
pub struct LocalTensor<T: Element> {
    /// Functional contents.
    pub(crate) data: Vec<T>,
    /// Which scratchpad the tensor lives in.
    pub(crate) pos: ScratchpadKind,
    /// Simulated time when the current contents are valid.
    pub(crate) ready: EventTime,
    /// Simcheck lifetime id assigned by the allocating core's
    /// [`ScratchTracker`](ascend_sim::ScratchTracker); 0 = untracked.
    pub(crate) alloc_id: u64,
    /// Simcheck owner: uid of the core whose scratchpad holds the
    /// buffer; 0 = untracked. Scratchpads are private on real silicon —
    /// a sibling core touching this tensor is a cross-core aliasing bug.
    pub(crate) owner: u64,
}

impl<T: Element> LocalTensor<T> {
    pub(crate) fn new(pos: ScratchpadKind, len: usize, ready: EventTime) -> Self {
        LocalTensor {
            data: vec![T::zero(); len],
            pos,
            ready,
            alloc_id: 0,
            owner: 0,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The scratchpad this tensor lives in.
    pub fn position(&self) -> ScratchpadKind {
        self.pos
    }

    /// The simulated time at which the contents are valid.
    pub fn ready(&self) -> EventTime {
        self.ready
    }

    /// Direct read access to the contents (host-side debugging; kernels
    /// should use intrinsics so timing is modelled).
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Bounds-check helper for intrinsics.
    pub(crate) fn check_range(&self, what: &'static str, off: usize, len: usize) -> SimResult<()> {
        if off + len > self.data.len() {
            return Err(SimError::OutOfBounds {
                what,
                offset: off * T::SIZE,
                len: len * T::SIZE,
                region: self.data.len() * T::SIZE,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascend_sim::ChipSpec;
    use dtypes::F16;

    fn gm() -> Arc<GlobalMemory> {
        Arc::new(GlobalMemory::new(ChipSpec::tiny().hbm_capacity))
    }

    #[test]
    fn global_tensor_round_trip() {
        let gm = gm();
        let data: Vec<i32> = (0..257).collect();
        let t = GlobalTensor::from_slice(&gm, &data).unwrap();
        assert_eq!(t.len(), 257);
        assert_eq!(t.to_vec(), data);
    }

    #[test]
    fn global_tensor_slicing() {
        let gm = gm();
        let data: Vec<u16> = (0..100).collect();
        let t = GlobalTensor::from_slice(&gm, &data).unwrap();
        let s = t.slice(10, 20).unwrap();
        assert_eq!(s.to_vec(), &data[10..30]);
        assert!(t.slice(90, 20).is_err());
        // Writing through a slice is visible through the parent.
        s.write(&[9999u16; 20]).unwrap();
        assert_eq!(t.to_vec()[10..30], [9999u16; 20]);
    }

    #[test]
    fn write_oversized_fails() {
        let gm = gm();
        let t = GlobalTensor::<f32>::new(&gm, 4).unwrap();
        assert!(t.write(&[0.0; 5]).is_err());
        assert!(t.write(&[1.0; 4]).is_ok());
    }

    #[test]
    fn device_accessors_count_traffic() {
        let gm = gm();
        let t = GlobalTensor::from_slice(&gm, &[F16::ONE; 64]).unwrap();
        let mut buf = vec![F16::ZERO; 64];
        t.device_read(0, &mut buf).unwrap();
        assert_eq!(buf, vec![F16::ONE; 64]);
        assert_eq!(gm.bytes_read(), 128);
        t.device_write(0, &buf).unwrap();
        assert_eq!(gm.bytes_written(), 128);
    }

    #[test]
    fn local_tensor_basics() {
        let t = LocalTensor::<f32>::new(ScratchpadKind::Ub, 16, 42);
        assert_eq!(t.len(), 16);
        assert_eq!(t.ready(), 42);
        assert_eq!(t.position(), ScratchpadKind::Ub);
        assert_eq!(t.as_slice(), &[0.0; 16]);
        assert!(t.check_range("x", 0, 16).is_ok());
        assert!(t.check_range("x", 1, 16).is_err());
    }
}
