//! Kernel blocks and the launch machinery.
//!
//! A *block* is the smallest logical execution unit of an AscendC kernel;
//! here one block maps to one AI core — one cube core plus
//! `spec.vec_per_core` vector cores. [`launch`] runs the kernel closure
//! once per block and merges the per-block simulated timelines into a
//! single [`KernelReport`].
//!
//! # Deterministic scheduling
//!
//! Blocks are tasks driven by the deterministic [`Scheduler`] — one host
//! thread per block, gated either by the serial cooperative baton
//! (exactly one block progresses at a time, ascending block index within
//! each barrier round) or, by default, by deterministic parallel rounds
//! (blocks run concurrently between sync edges; every observable side
//! effect commits in block-index order). Both disciplines produce
//! byte-identical reports (`ascend_sim::sync` documents the equivalence
//! argument), so two launches of the same kernel replay byte-for-byte
//! regardless of host load or core count. Grids larger than the
//! chip (`block_dim > spec.ai_cores`) are *oversubscribed*: block `b`
//! time-shares physical core slot `b % spec.ai_cores`, starting where
//! the slot's previous tenant yielded it. A block yields its slot at
//! every barrier arrival and at its finish, so oversubscribed kernels
//! can still call [`BlockCtx::sync_all`]: the arriving block parks and
//! vacates the slot, the slot's later tenants run, and the block resumes
//! at the later of the barrier release and its slot freeing again — the
//! scheduler's yield/re-queue protocol (see [`ascend_sim::sync`]).
//!
//! # Barrier pricing
//!
//! [`BlockCtx::sync_all`] is built from priced cross-core flag
//! instructions: every core executes a `CrossCoreSetFlag` (arrival) and
//! a `CrossCoreWaitFlag` (release poll) on its scalar pipe, then stalls
//! until the last arrival flag lands (`wait:flag`) and until the barrier
//! release — segment bandwidth bound plus `sync_all_cycles` — completes
//! (`wait:barrier`). Kernels can also use raw flag pairs directly via
//! [`Core::set_flag`]/[`Core::wait_flag`] and the block's
//! [`FlagFile`](BlockCtx::flags), or hand off *between* blocks with the
//! launch-wide grid flags ([`Core::set_grid_flag`]/
//! [`Core::wait_grid_flag`] against [`BlockCtx::grid`]) — the mailbox
//! protocol of chained look-back scans.
//!
//! # Failure semantics
//!
//! A kernel that returns an error *between* two `sync_all` calls while
//! other blocks keep synchronizing would deadlock on real hardware; here
//! the failed block simply stops participating — the scheduler resolves
//! later barriers over the still-live blocks and the error is reported
//! after the launch drains.

use crate::core::Core;
use ascend_sim::mem::GlobalMemory;
use ascend_sim::prof::{self, KernelProfile, SpanRecorder};
use ascend_sim::sync::{FlagFile, Scheduler};
use ascend_sim::{
    simcheck, ChipSpec, CoreKind, CounterEvent, EngineKind, EventTime, HbAction, HbEvent,
    KernelReport, SimError, SimResult, SpanArgs, SpanId, StallCause, StallEvent, StallTally,
    TraceEvent, TraceSpan,
};
use std::sync::Arc;

/// Per-block execution context: the block's cores plus the launch-wide
/// shared state.
pub struct BlockCtx<'a> {
    /// This block's index in `0..block_dim`.
    pub block_idx: u32,
    /// Number of blocks in the launch.
    pub block_dim: u32,
    /// The block's cube (AIC) core.
    pub cube: Core<'a>,
    /// The block's vector (AIV) cores (two on the 910B).
    pub vecs: Vec<Core<'a>>,
    /// The block's cross-core flag file: `CrossCoreSetFlag` on one core
    /// publishes here, `CrossCoreWaitFlag` on a sibling core consumes.
    /// See [`Core::set_flag`]/[`Core::wait_flag`].
    pub flags: FlagFile,
    spec: &'a ChipSpec,
    gm: &'a GlobalMemory,
    sync: &'a Scheduler,
    /// Block-level phase spans (depth 1; kernel root is depth 0).
    spans: SpanRecorder,
    /// Number of completed [`BlockCtx::sync_all`] rounds; stamps each
    /// core's `Barrier` happens-before event. All blocks execute the
    /// same barrier sequence, so equal round numbers identify one
    /// grid-wide rendezvous.
    sync_round: u32,
}

impl<'a> BlockCtx<'a> {
    /// The chip specification.
    pub fn spec(&self) -> &ChipSpec {
        self.spec
    }

    /// The block's local completion horizon: the latest time any of its
    /// cores finishes its issued work.
    pub fn local_now(&self) -> EventTime {
        self.vecs
            .iter()
            .map(Core::now)
            .chain(std::iter::once(self.cube.now()))
            .max()
            .unwrap_or(0)
    }

    /// The launch-wide [`Scheduler`], home of the grid-flag mailbox
    /// registry used by chained look-back kernels — pass it to
    /// [`Core::set_grid_flag`]/[`Core::wait_grid_flag`].
    pub fn grid(&self) -> &'a Scheduler {
        self.sync
    }

    /// `SyncAll`: global barrier across all blocks. Every core pays a
    /// `CrossCoreSetFlag` (arrival) and `CrossCoreWaitFlag` (release
    /// poll) on its scalar pipe, stalls on the last arrival flag
    /// (`wait:flag`), then on the release — the segment's
    /// memory-bandwidth bound plus `sync_all_cycles` (`wait:barrier`).
    /// Returns the resumption time.
    ///
    /// On an oversubscribed launch (`block_dim > spec.ai_cores`) the
    /// block additionally waits for its physical core slot: it resumes
    /// at the later of the barrier release and the slot freeing —
    /// slot-mates run their post-barrier segments in ascending block
    /// order, with the extra idle attributed as `wait:barrier`.
    pub fn sync_all(&mut self) -> SimResult<EventTime> {
        let sched = self.sync;
        let span = self.spans.begin("SyncAll", self.local_now());
        let w = self.spec.flag_wait_cycles;
        let mut set_done: EventTime = 0;
        let mut ready: EventTime = 0;
        for core in std::iter::once(&mut self.cube).chain(self.vecs.iter_mut()) {
            // Arrival: the set flag drains the core's engine queues
            // (dependency on the core-wide horizon), then occupies the
            // scalar pipe; the release poll issues right behind it.
            let horizon = core.now();
            let arrive = core.timeline_mut().exec(
                EngineKind::FLAG_ENGINE,
                self.spec.flag_set_cycles,
                &[horizon],
            )?;
            let polled = core.timeline_mut().exec(EngineKind::FLAG_ENGINE, w, &[])?;
            set_done = set_done.max(arrive);
            ready = ready.max(polled);
        }
        let (all_set, _resolved, resume) = sched.sync(
            self.block_idx as usize,
            set_done,
            ready,
            self.gm,
            self.spec,
            self.spec.sync_all_cycles,
        );
        // Until the grid-wide last arrival flag is observable the cores
        // are flag-blocked; from there to the release (plus, when
        // oversubscribed, the slot re-queue) they are barrier-blocked.
        let flag_edge = (all_set + w).min(resume);
        let round = self.sync_round;
        for core in std::iter::once(&mut self.cube).chain(self.vecs.iter_mut()) {
            core.timeline_mut()
                .align_to_cause(flag_edge, StallCause::Flag);
            core.timeline_mut().align_to(resume);
            core.hb_recorder()
                .record(resume, "SyncAll", HbAction::Barrier { round });
        }
        self.sync_round += 1;
        self.spans.end(span, resume);
        Ok(resume)
    }

    // ---------------------------------------------------------------
    // Profiling spans
    // ---------------------------------------------------------------

    /// Whether a profile collector (or trace) is active for this launch.
    pub fn profiling(&self) -> bool {
        self.spans.enabled()
    }

    /// Opens a block-level phase span (e.g. `"Phase I"`) starting at the
    /// block's current completion horizon. A no-op returning
    /// [`SpanId::NONE`] when profiling is off — kernels instrument
    /// unconditionally at zero cost.
    pub fn span_begin(&mut self, name: &'static str) -> SpanId {
        let now = self.local_now();
        self.spans.begin(name, now)
    }

    /// Closes a phase span at the block's current completion horizon.
    pub fn span_end(&mut self, id: SpanId) {
        let now = self.local_now();
        self.spans.end(id, now);
    }

    /// Attaches argument payload to an open phase span.
    pub fn span_args(&mut self, id: SpanId, args: SpanArgs) {
        self.spans.set_args(id, args);
    }
}

struct BlockOutcome {
    end: EventTime,
    busy: [u64; EngineKind::ALL.len()],
    instructions: [u64; EngineKind::ALL.len()],
    stalls: StallTally,
    error: Option<SimError>,
    events: Vec<TraceEvent>,
    spans: Vec<TraceSpan>,
    stall_events: Vec<StallEvent>,
    counters: Vec<CounterEvent>,
    hb_events: Vec<HbEvent>,
}

/// Launches `block_dim` blocks of `kernel` on the chip and returns the
/// merged execution report.
///
/// The kernel closure runs once per block under the deterministic
/// cooperative scheduler and drives the block's engines through
/// [`BlockCtx`]. `block_dim` may exceed `spec.ai_cores` (and the host's
/// core count): excess blocks run in waves on the physical core slots —
/// see the module docs. `useful_bytes` and `elements` of the returned
/// report are left at zero — operator wrappers fill them in with the
/// operator's I/O convention.
pub fn launch<F>(
    spec: &ChipSpec,
    gm: &Arc<GlobalMemory>,
    block_dim: u32,
    name: &str,
    kernel: F,
) -> SimResult<KernelReport>
where
    F: Fn(&mut BlockCtx<'_>) -> SimResult<()> + Sync,
{
    launch_impl(spec, gm, block_dim, name, kernel, false).map(|(r, _)| r)
}

/// Like [`launch`], but records every instruction's engine-occupancy
/// interval and returns the events alongside the report — feed them to
/// [`ascend_sim::trace::to_chrome_json`] to inspect the schedule at
/// `chrome://tracing`.
pub fn launch_traced<F>(
    spec: &ChipSpec,
    gm: &Arc<GlobalMemory>,
    block_dim: u32,
    name: &str,
    kernel: F,
) -> SimResult<(KernelReport, Vec<TraceEvent>)>
where
    F: Fn(&mut BlockCtx<'_>) -> SimResult<()> + Sync,
{
    launch_impl(spec, gm, block_dim, name, kernel, true)
}

fn launch_impl<F>(
    spec: &ChipSpec,
    gm: &Arc<GlobalMemory>,
    block_dim: u32,
    name: &str,
    kernel: F,
    trace: bool,
) -> SimResult<(KernelReport, Vec<TraceEvent>)>
where
    F: Fn(&mut BlockCtx<'_>) -> SimResult<()> + Sync,
{
    if block_dim == 0 {
        return Err(SimError::InvalidArgument(format!(
            "launch {name:?} with block_dim 0: a kernel needs at least one block \
             (the chip has {} AI cores; larger grids wave-multiplex)",
            spec.ai_cores
        )));
    }
    let read_at_start = gm.bytes_read();
    let written_at_start = gm.bytes_written();
    let oversubscribed = block_dim > spec.ai_cores;
    // The profile recorder is per-launch state carried by the launch's
    // GlobalMemory (attach_profiler), so concurrent launches on other
    // memories — and later launches on this one — never share a profile.
    let collector = gm.profiler();
    let recording = trace || collector.is_some() || spec.validation.audits();

    // Runs one block and harvests its timelines. The block first waits
    // for its turn (begin() also yields its start origin — the launch
    // start, or the slot's previous tenant's yield point when
    // oversubscribed) and ends at the common kernel-end alignment.
    let run_block =
        |block_idx: u32, sched: &Scheduler| {
            let origin = sched.begin(block_idx as usize);
            let mut ctx = BlockCtx {
                block_idx,
                block_dim,
                cube: Core::new(CoreKind::Cube, spec, origin, block_idx as usize, 0),
                vecs: (0..spec.vec_per_core)
                    .map(|v| {
                        Core::new(
                            CoreKind::Vector,
                            spec,
                            origin,
                            block_idx as usize,
                            1 + v as usize,
                        )
                    })
                    .collect(),
                flags: FlagFile::new(spec.flag_id_limit),
                spec,
                gm,
                sync: sched,
                spans: SpanRecorder::new(1),
                sync_round: 0,
            };
            if recording {
                ctx.cube.timeline_mut().enable_recording();
                ctx.cube.enable_hb();
                for v in &mut ctx.vecs {
                    v.timeline_mut().enable_recording();
                    v.enable_hb();
                }
            }
            if recording {
                // Spans and stall intervals also feed the critical-path
                // audit, so they are recorded whenever audits are on —
                // not only when a profile collector is attached.
                ctx.spans.enable();
                ctx.cube.enable_profiling();
                for v in &mut ctx.vecs {
                    v.enable_profiling();
                }
            }
            let error = kernel(&mut ctx).err();
            // Join the kernel-end alignment so sibling blocks terminate;
            // see module docs for failure semantics. The tail wait is
            // attributed as barrier time so the per-engine stall
            // partition (busy + dependency + barrier + flag = elapsed)
            // closes exactly on non-oversubscribed launches.
            let end = sched.finish(block_idx as usize, ctx.local_now(), gm, spec);
            ctx.cube.wait(end);
            for v in &mut ctx.vecs {
                v.wait(end);
            }
            let mut busy = [0u64; EngineKind::ALL.len()];
            let mut instructions = [0u64; EngineKind::ALL.len()];
            let mut stalls = StallTally::default();
            let mut events = Vec::new();
            let mut spans = ctx.spans.take(block_idx, prof::BLOCK_SCOPE, end);
            let mut stall_events = Vec::new();
            let mut counters = Vec::new();
            let mut hb_events = Vec::new();
            for (ci, core) in std::iter::once(&mut ctx.cube)
                .chain(ctx.vecs.iter_mut())
                .enumerate()
            {
                for e in EngineKind::ALL {
                    busy[e.index()] += core.timeline().busy_cycles(e);
                    instructions[e.index()] += core.timeline().instructions(e);
                }
                stalls.absorb(core.timeline().stalls());
                if recording {
                    events.extend(core.timeline().recorded().iter().map(
                        |&(engine, start, end)| TraceEvent {
                            block: block_idx,
                            core: ci as u32,
                            engine,
                            start,
                            end,
                        },
                    ));
                    hb_events.extend(core.take_hb(block_idx, ci as u32));
                }
                if recording {
                    stall_events.extend(core.timeline().recorded_stalls().iter().map(
                        |&(engine, cause, start, end)| StallEvent {
                            block: block_idx,
                            core: ci as u32,
                            engine,
                            cause,
                            start,
                            end,
                        },
                    ));
                    spans.extend(core.take_spans(block_idx, ci as u32, end));
                    counters.extend(core.take_counters(block_idx, ci as u32));
                }
            }
            BlockOutcome {
                end,
                busy,
                instructions,
                stalls,
                error,
                events,
                spans,
                stall_events,
                counters,
                hb_events,
            }
        };

    // One scheduler drives every launch shape: dedicated slots when the
    // grid fits the chip, slot time-sharing (yield/re-queue) when it is
    // oversubscribed. The kernel-end alignment inside `finish` already
    // stretches the end to the grid's bandwidth bound. The gating
    // discipline (serial baton vs parallel rounds — byte-identical
    // reports either way) comes from the spec's scheduler policy.
    let sync = Scheduler::with_slots_mode(
        block_dim as usize,
        block_dim.min(spec.ai_cores) as usize,
        spec.launch_cycles,
        read_at_start + written_at_start,
        spec.flag_id_limit,
        spec.scheduler.resolve(),
    );
    let outcomes: Vec<BlockOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..block_dim)
            .map(|block_idx| {
                let sync = &sync;
                let run_block = &run_block;
                scope.spawn(move || run_block(block_idx, sync))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("block thread panicked"))
            .collect()
    });
    let cycles = outcomes.iter().map(|o| o.end).max().unwrap_or(0);
    let (sync_rounds, barrier_waits, flag_waits) = (
        sync.rounds().saturating_sub(1),
        sync.round_waits(),
        sync.flag_waits(),
    );

    if let Some(err) = outcomes.iter().find_map(|o| o.error.clone()) {
        return Err(err);
    }

    let mut busy = [0u64; EngineKind::ALL.len()];
    let mut instructions = [0u64; EngineKind::ALL.len()];
    let mut stalls = StallTally::default();
    for o in &outcomes {
        for i in 0..EngineKind::ALL.len() {
            busy[i] += o.busy[i];
            instructions[i] += o.instructions[i];
        }
        stalls.absorb(&o.stalls);
    }
    let mut events: Vec<TraceEvent> = Vec::new();
    let mut spans: Vec<TraceSpan> = Vec::new();
    let mut stall_events: Vec<StallEvent> = Vec::new();
    let mut counters: Vec<CounterEvent> = Vec::new();
    let mut hb_events: Vec<HbEvent> = Vec::new();
    for o in outcomes {
        events.extend(o.events);
        spans.extend(o.spans);
        stall_events.extend(o.stall_events);
        counters.extend(o.counters);
        hb_events.extend(o.hb_events);
    }
    let mut report = KernelReport {
        name: name.to_string(),
        blocks: block_dim,
        cycles,
        clock_ghz: spec.clock_ghz,
        bytes_read: gm.bytes_read() - read_at_start,
        bytes_written: gm.bytes_written() - written_at_start,
        useful_bytes: 0,
        elements: 0,
        working_set: gm.high_water() as u64,
        engine_busy: busy,
        engine_instructions: instructions,
        sync_rounds,
        stalls,
        barrier_waits,
        flag_waits,
        critical_path: None,
    };
    if spec.validation.audits() {
        simcheck::audit_trace_events(&events)?;
        ascend_sim::trace::audit_physical_occupancy(&events, block_dim.min(spec.ai_cores))?;
        simcheck::audit_report(
            &report,
            spec,
            gm.bytes_read() - read_at_start,
            gm.bytes_written() - written_at_start,
        )?;
        if !oversubscribed {
            // Oversubscribed blocks are not aligned to a common kernel
            // end, so their idle time is not fully attributed.
            simcheck::audit_stall_accounting(&report, spec)?;
        }
        // Happens-before schedule analysis: error-severity findings
        // (GM races, unmatched waits, flag reuse across rounds,
        // deadlock shapes) fail the launch; warnings are left to the
        // offline `simlint` CLI.
        simcheck::audit_schedule(&hb_events)?;
    }
    // Critical-path extraction doubles as the makespan-identity audit:
    // the backward causal walk must explain every cycle of the reported
    // makespan from the recorded events, stalls, flag edges and
    // scheduler round records. Runs whenever the raw records exist
    // (audits or an attached collector/trace).
    let mut critical: Option<ascend_sim::critpath::CritReport> = None;
    if recording {
        let finale = sync
            .final_record()
            .expect("launch resolved without a final alignment record");
        let rounds = sync.round_records();
        let input = ascend_sim::critpath::CritInput {
            cycles,
            origin: spec.launch_cycles,
            flag_wait_cycles: spec.flag_wait_cycles,
            flag_set_cycles: spec.flag_set_cycles,
            events: &events,
            stalls: &stall_events,
            hb: &hb_events,
            spans: &spans,
            rounds: &rounds,
            finale,
        };
        let crit = simcheck::audit_critical_path(&input)?;
        report.critical_path = Some(crit.summary.clone());
        critical = Some(crit);
    }
    if let Some(collector) = collector {
        let profile_events = if trace {
            events.clone()
        } else {
            std::mem::take(&mut events)
        };
        collector.submit(KernelProfile {
            name: name.to_string(),
            clock_ghz: spec.clock_ghz,
            blocks: block_dim,
            cycles,
            events: profile_events,
            spans,
            stall_events,
            counters,
            stalls: report.stalls.clone(),
            hb_events,
            critical_path: critical,
        });
    }
    if !trace {
        events.clear();
    }
    Ok((report, events))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::GlobalTensor;
    use ascend_sim::chip::ScratchpadKind;

    fn setup() -> (ChipSpec, Arc<GlobalMemory>) {
        let spec = ChipSpec::tiny();
        let gm = Arc::new(GlobalMemory::new(spec.hbm_capacity));
        (spec, gm)
    }

    #[test]
    fn single_block_copy_kernel() {
        let (spec, gm) = setup();
        let input: Vec<f32> = (0..256).map(|i| i as f32).collect();
        let x = GlobalTensor::from_slice(&gm, &input).unwrap();
        let y = GlobalTensor::<f32>::new(&gm, 256).unwrap();

        let report = launch(&spec, &gm, 1, "copy", |ctx| {
            let v = &mut ctx.vecs[0];
            let mut buf = v.alloc_local::<f32>(ScratchpadKind::Ub, 256)?;
            v.copy_in(&mut buf, 0, &x, 0, 256, &[])?;
            v.copy_out(&y, 0, &buf, 0, 256, &[])?;
            Ok(())
        })
        .unwrap();

        assert_eq!(y.to_vec(), input);
        assert!(report.cycles > spec.launch_cycles);
        assert_eq!(report.bytes_read, 1024);
        assert_eq!(report.bytes_written, 1024);
        assert_eq!(report.blocks, 1);
    }

    #[test]
    fn blocks_partition_work() {
        let (spec, gm) = setup();
        let n = 512;
        let x = GlobalTensor::from_slice(&gm, &vec![1i32; n]).unwrap();
        let y = GlobalTensor::<i32>::new(&gm, n).unwrap();

        launch(&spec, &gm, 2, "add1", |ctx| {
            let per = n / ctx.block_dim as usize;
            let off = ctx.block_idx as usize * per;
            let v = &mut ctx.vecs[0];
            let mut buf = v.alloc_local::<i32>(ScratchpadKind::Ub, per)?;
            v.copy_in(&mut buf, 0, &x, off, per, &[])?;
            v.vadds(&mut buf, 0, per, 41, 0)?;
            v.copy_out(&y, off, &buf, 0, per, &[])?;
            Ok(())
        })
        .unwrap();

        assert_eq!(y.to_vec(), vec![42i32; n]);
    }

    #[test]
    fn sync_all_aligns_blocks() {
        let (spec, gm) = setup();
        let flags = GlobalTensor::<u32>::new(&gm, 2).unwrap();

        let report = launch(&spec, &gm, 2, "sync", |ctx| {
            let idx = ctx.block_idx as usize;
            // Block 0 does much more pre-barrier work than block 1.
            let reps = if idx == 0 { 50 } else { 1 };
            {
                let v = &mut ctx.vecs[0];
                let mut buf = v.alloc_local::<u32>(ScratchpadKind::Ub, 64)?;
                for _ in 0..reps {
                    v.vadds(&mut buf, 0, 64, 1, 0)?;
                }
                v.copy_out(&flags, idx, &buf, 0, 1, &[])?;
            }
            let resumed = ctx.sync_all()?;
            // After the barrier both blocks resume at the same cycle,
            // which is at least the slow block's pre-barrier time.
            assert!(resumed >= ctx.spec().launch_cycles + 50);
            Ok(())
        })
        .unwrap();

        assert_eq!(report.sync_rounds, 1);
        assert_eq!(flags.to_vec(), vec![50, 1]);
        // One entry per barrier plus the kernel-end alignment, and the
        // barrier itself has modelled (nonzero) release cost.
        assert_eq!(report.barrier_waits.len(), 2);
        assert_eq!(report.flag_waits.len(), 2);
        assert!(report.barrier_waits[0] > 0, "SyncAll release is priced");
        // The fast block idles on the slow block's arrival flag.
        assert!(report.flag_waits[0] > 0, "arrival skew is flag-attributed");
    }

    #[test]
    fn cross_core_flags_order_and_price_work() {
        let (spec, gm) = setup();
        let out = GlobalTensor::<i32>::new(&gm, 64).unwrap();

        let report = launch(&spec, &gm, 1, "flags", |ctx| {
            let BlockCtx {
                cube, vecs, flags, ..
            } = ctx;
            // Cube produces into GM, publishes flag 0; vec 0 waits on it
            // before consuming — an explicit AIC→AIV handoff.
            let mut l1 = cube.alloc_local::<i32>(ScratchpadKind::L1, 64)?;
            let produced = cube.fill_local(&mut l1, 0, 64, 7)?;
            let stored = cube.copy_out(&out, 0, &l1, 0, 64, &[produced])?;
            let set = cube.set_flag(flags, 0, &[stored])?;
            assert!(set >= stored + cube.spec().flag_set_cycles);

            let v = &mut vecs[0];
            let observed = v.wait_flag(flags, 0)?;
            assert!(observed >= set, "consumer resumes after the set lands");
            let mut buf = v.alloc_local::<i32>(ScratchpadKind::Ub, 64)?;
            v.copy_in(&mut buf, 0, &out, 0, 64, &[])?;
            cube.free_local(l1)?;
            v.free_local(buf)?;
            Ok(())
        })
        .unwrap();

        assert_eq!(out.to_vec(), vec![7i32; 64]);
        // The waiting vector core's idle time is attributed to flags.
        assert!(report.stalls.flag.iter().sum::<u64>() > 0);
    }

    #[test]
    fn wait_on_unset_flag_errors() {
        let (spec, gm) = setup();
        let err = launch(&spec, &gm, 1, "deadlock", |ctx| {
            let BlockCtx { vecs, flags, .. } = ctx;
            vecs[0].wait_flag(flags, 5).map(|_| ())
        })
        .unwrap_err();
        assert!(matches!(err, SimError::InvalidArgument(_)));
        assert!(err.to_string().contains("unset flag"));
    }

    #[test]
    fn flag_id_beyond_register_file_is_rejected() {
        // Failure injection: the tiny chip exposes 8 cross-core flag
        // registers; publishing on id 8 must fail the launch.
        let (spec, gm) = setup();
        let limit = spec.flag_id_limit;
        let err = launch(&spec, &gm, 1, "flag-overflow", |ctx| {
            let BlockCtx { cube, flags, .. } = ctx;
            cube.set_flag(flags, limit, &[]).map(|_| ())
        })
        .unwrap_err();
        assert_eq!(err, SimError::FlagIdOutOfRange { id: limit, limit });
        // The last in-range id works.
        let (spec, gm) = setup();
        launch(&spec, &gm, 1, "flag-last", |ctx| {
            let BlockCtx {
                cube, vecs, flags, ..
            } = ctx;
            cube.set_flag(flags, limit - 1, &[])?;
            vecs[0].wait_flag(flags, limit - 1)?;
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn unsynchronized_cross_core_handoff_fails_the_audit() {
        // Failure injection: cube writes GM and the vector core reads
        // the same range with only a raw timing dependency — no flag, no
        // barrier. The replayed interleaving is timing-safe, but the
        // schedule guarantees nothing, and the happens-before audit
        // must reject it.
        let (spec, gm) = setup();
        let shared = GlobalTensor::<i32>::new(&gm, 64).unwrap();
        let err = launch(&spec, &gm, 1, "racy", |ctx| {
            let cube = &mut ctx.cube;
            let mut l1 = cube.alloc_local::<i32>(ScratchpadKind::L1, 64)?;
            let produced = cube.fill_local(&mut l1, 0, 64, 7)?;
            let stored = cube.copy_out(&shared, 0, &l1, 0, 64, &[produced])?;
            let v = &mut ctx.vecs[0];
            let mut buf = v.alloc_local::<i32>(ScratchpadKind::Ub, 64)?;
            v.copy_in(&mut buf, 0, &shared, 0, 64, &[stored])?;
            cube.free_local(l1)?;
            v.free_local(buf)?;
            Ok(())
        })
        .unwrap_err();
        match err {
            SimError::ScheduleHazard { what, detail } => {
                assert_eq!(what, "gm-race");
                assert!(detail.contains("copy_out"), "names the write: {detail}");
            }
            other => panic!("expected a gm-race ScheduleHazard, got {other:?}"),
        }
    }

    #[test]
    fn launch_is_deterministic() {
        let run = || {
            let (spec, gm) = setup();
            let x = GlobalTensor::from_slice(&gm, &vec![2i32; 1024]).unwrap();
            let y = GlobalTensor::<i32>::new(&gm, 1024).unwrap();
            launch(&spec, &gm, 2, "det", |ctx| {
                let per = 512;
                let off = ctx.block_idx as usize * per;
                let which = (ctx.block_idx % 2) as usize;
                let mut buf = {
                    let v = &mut ctx.vecs[which];
                    let mut buf = v.alloc_local::<i32>(ScratchpadKind::Ub, per)?;
                    v.copy_in(&mut buf, 0, &x, off, per, &[])?;
                    buf
                };
                ctx.sync_all()?;
                let v = &mut ctx.vecs[which];
                v.copy_out(&y, off, &buf, 0, per, &[])?;
                let _ = &mut buf;
                Ok(())
            })
            .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.engine_busy, b.engine_busy);
        assert_eq!(a.bytes_read, b.bytes_read);
    }

    /// Acceptance: a grid ≥ 4x the host's cores (and well beyond the
    /// chip's AI cores) launches fine and two invocations produce
    /// byte-identical reports. Invoked by name from `scripts/ci.sh`.
    #[test]
    fn oversubscribed_launch_is_deterministic() {
        let host = std::thread::available_parallelism()
            .map(|n| n.get() as u32)
            .unwrap_or(8);
        let (spec, gm_probe) = setup();
        let blocks = (host * 4).max(spec.ai_cores * 4);
        drop(gm_probe);
        let n = 64usize * blocks as usize;
        let run = || {
            let (spec, gm) = setup();
            let x = GlobalTensor::from_slice(&gm, &vec![3i32; n]).unwrap();
            let y = GlobalTensor::<i32>::new(&gm, n).unwrap();
            let report = launch(&spec, &gm, blocks, "oversub", |ctx| {
                let per = 64;
                let off = ctx.block_idx as usize * per;
                let v = &mut ctx.vecs[0];
                let mut buf = v.alloc_local::<i32>(ScratchpadKind::Ub, per)?;
                v.copy_in(&mut buf, 0, &x, off, per, &[])?;
                v.vadds(&mut buf, 0, per, 1, 0)?;
                v.copy_out(&y, off, &buf, 0, per, &[])?;
                v.free_local(buf)?;
                Ok(())
            })
            .unwrap();
            assert_eq!(y.to_vec(), vec![4i32; n]);
            report.to_json(&spec)
        };
        let a = run();
        let b = run();
        assert!(blocks > ChipSpec::tiny().ai_cores, "grid exceeds the chip");
        assert_eq!(a, b, "oversubscribed launches must replay byte-for-byte");
    }

    #[test]
    fn oversubscribed_blocks_time_share_slots() {
        let (spec, gm) = setup();
        let blocks = spec.ai_cores * 2 + 1;
        let n = 64usize * blocks as usize;
        let x = GlobalTensor::from_slice(&gm, &vec![1i32; n]).unwrap();
        let y = GlobalTensor::<i32>::new(&gm, n).unwrap();
        let report = launch(&spec, &gm, blocks, "waves", |ctx| {
            let per = 64;
            let off = ctx.block_idx as usize * per;
            let v = &mut ctx.vecs[0];
            let mut buf = v.alloc_local::<i32>(ScratchpadKind::Ub, per)?;
            v.copy_in(&mut buf, 0, &x, off, per, &[])?;
            v.copy_out(&y, off, &buf, 0, per, &[])?;
            v.free_local(buf)?;
            Ok(())
        })
        .unwrap();
        assert_eq!(y.to_vec(), vec![1i32; n]);
        assert_eq!(report.blocks, blocks);
        // Three waves take roughly three times as long as one block's
        // work; at minimum the serialization must be visible.
        let single = {
            let (spec, gm) = setup();
            let x = GlobalTensor::from_slice(&gm, &vec![1i32; 64]).unwrap();
            let y = GlobalTensor::<i32>::new(&gm, 64).unwrap();
            launch(&spec, &gm, 1, "one", |ctx| {
                let v = &mut ctx.vecs[0];
                let mut buf = v.alloc_local::<i32>(ScratchpadKind::Ub, 64)?;
                v.copy_in(&mut buf, 0, &x, 0, 64, &[])?;
                v.copy_out(&y, 0, &buf, 0, 64, &[])?;
                v.free_local(buf)?;
                Ok(())
            })
            .unwrap()
        };
        assert!(
            report.cycles > single.cycles,
            "waves serialize: {} vs {}",
            report.cycles,
            single.cycles
        );
        assert_eq!(report.sync_rounds, 0);
    }

    #[test]
    fn sync_all_rendezvous_when_oversubscribed() {
        // Blocks beyond the chip's core count time-share slots via the
        // scheduler's yield/re-queue path — and can still cross a
        // SyncAll. Each block publishes its index before the barrier and
        // reads its successor's value after it, so the barrier carries a
        // real cross-block (and cross-wave) data dependency.
        let (spec, gm) = setup();
        let blocks = spec.ai_cores + 1;
        let stage = GlobalTensor::<i32>::new(&gm, blocks as usize).unwrap();
        let out = GlobalTensor::<i32>::new(&gm, blocks as usize).unwrap();
        let report = launch(&spec, &gm, blocks, "oversync", |ctx| {
            let idx = ctx.block_idx as usize;
            let peer = (idx + 1) % ctx.block_dim as usize;
            {
                let v = &mut ctx.vecs[0];
                let mut buf = v.alloc_local::<i32>(ScratchpadKind::Ub, 8)?;
                v.fill_local(&mut buf, 0, 8, ctx.block_idx as i32)?;
                v.copy_out(&stage, idx, &buf, 0, 1, &[])?;
                v.free_local(buf)?;
            }
            ctx.sync_all()?;
            let v = &mut ctx.vecs[0];
            let mut buf = v.alloc_local::<i32>(ScratchpadKind::Ub, 8)?;
            v.copy_in(&mut buf, 0, &stage, peer, 1, &[])?;
            v.copy_out(&out, idx, &buf, 0, 1, &[])?;
            v.free_local(buf)?;
            Ok(())
        })
        .unwrap();
        let expect: Vec<i32> = (0..blocks as i32)
            .map(|b| (b + 1) % blocks as i32)
            .collect();
        assert_eq!(out.to_vec(), expect);
        assert_eq!(report.sync_rounds, 1);
        assert!(blocks > spec.ai_cores);
    }

    #[test]
    fn grid_flags_chain_blocks_without_a_barrier() {
        // A miniature chained look-back: block b waits on b-1's grid
        // flag, reads b-1's mailbox, adds its own contribution, writes
        // its mailbox, and publishes its flag — a running sum across the
        // grid with no SyncAll, spanning waves (3 blocks on 2 cores).
        let (spec, gm) = setup();
        let blocks = spec.ai_cores + 1;
        let mailbox = GlobalTensor::<i32>::new(&gm, blocks as usize).unwrap();
        launch(&spec, &gm, blocks, "lookback", |ctx| {
            let idx = ctx.block_idx as usize;
            let grid = ctx.grid();
            let limit = ctx.spec().flag_id_limit;
            let v = &mut ctx.vecs[0];
            let mut buf = v.alloc_local::<i32>(ScratchpadKind::Ub, 8)?;
            let prev = if idx > 0 {
                let seen = v.wait_grid_flag(grid, (idx as u32 - 1) % limit)?;
                v.copy_in(&mut buf, 0, &mailbox, idx - 1, 1, &[seen])?;
                let (prev, _at) = v.extract(&buf, 0)?;
                prev
            } else {
                0
            };
            v.fill_local(&mut buf, 0, 8, prev + ctx.block_idx as i32 + 1)?;
            let stored = v.copy_out(&mailbox, idx, &buf, 0, 1, &[])?;
            if idx + 1 < ctx.block_dim as usize {
                v.set_grid_flag(grid, idx as u32 % limit, &[stored])?;
            }
            v.free_local(buf)?;
            Ok(())
        })
        .unwrap();
        // Inclusive prefix sums of 1..=blocks.
        let expect: Vec<i32> = (1..=blocks as i32)
            .scan(0, |s, b| {
                *s += b;
                Some(*s)
            })
            .collect();
        assert_eq!(mailbox.to_vec(), expect);
    }

    #[test]
    fn forward_grid_flag_wait_is_rejected() {
        // Waiting on a grid flag nobody published models a deadlock:
        // under ascending-index waves the set could never arrive.
        let (spec, gm) = setup();
        let err = launch(&spec, &gm, 2, "forward-wait", |ctx| {
            let grid = ctx.grid();
            ctx.vecs[0].wait_grid_flag(grid, 3).map(|_| ())
        })
        .unwrap_err();
        assert!(matches!(err, SimError::InvalidArgument(_)));
        assert!(err.to_string().contains("unset grid flag"));
    }

    #[test]
    fn invalid_block_dim_rejected() {
        let (spec, gm) = setup();
        assert!(launch(&spec, &gm, 0, "x", |_| Ok(())).is_err());
        // Oversubscription is allowed (blocks wave-multiplex).
        assert!(launch(&spec, &gm, spec.ai_cores + 1, "x", |_| Ok(())).is_ok());
    }

    #[test]
    fn kernel_error_propagates() {
        let (spec, gm) = setup();
        let err = launch(&spec, &gm, 1, "fail", |ctx| {
            // UB on the tiny chip is 16 KiB; ask for 1 MiB.
            ctx.vecs[0]
                .alloc_local::<f32>(ScratchpadKind::Ub, 1 << 18)
                .map(|_| ())
        })
        .unwrap_err();
        assert!(matches!(err, SimError::ScratchpadOverflow { .. }));
    }

    #[test]
    fn early_error_does_not_deadlock_siblings() {
        let (spec, gm) = setup();
        // Block 0 fails before the barrier that block 1 reaches; the
        // launch must drain and report the error, not hang.
        let err = launch(&spec, &gm, 2, "mismatched", |ctx| {
            if ctx.block_idx == 0 {
                return Err(SimError::InvalidArgument("block 0 bails".into()));
            }
            ctx.sync_all()?;
            Ok(())
        })
        .unwrap_err();
        assert!(matches!(err, SimError::InvalidArgument(_)));
    }

    #[test]
    fn cube_and_vector_cores_cooperate() {
        let (spec, gm) = setup();
        let s = 4;
        // A: 4x4 of ones; B: upper triangular ones -> row prefix sums.
        let a_host = vec![1i8; s * s];
        let b_host: Vec<i8> = (0..s * s)
            .map(|i| if i / s <= i % s { 1 } else { 0 })
            .collect();
        let a = GlobalTensor::from_slice(&gm, &a_host).unwrap();
        let b = GlobalTensor::from_slice(&gm, &b_host).unwrap();
        let c = GlobalTensor::<i32>::new(&gm, s * s).unwrap();
        let out = GlobalTensor::<i32>::new(&gm, s * s).unwrap();

        launch(&spec, &gm, 1, "mix", |ctx| {
            // Cube: C = A @ B, write to GM, publish the hand-off flag.
            let flags = &ctx.flags;
            let cube = &mut ctx.cube;
            let mut la = cube.alloc_local::<i8>(ScratchpadKind::L0A, s * s)?;
            let mut lb = cube.alloc_local::<i8>(ScratchpadKind::L0B, s * s)?;
            let mut lc = cube.alloc_local::<i32>(ScratchpadKind::L0C, s * s)?;
            cube.copy_in(&mut la, 0, &a, 0, s * s, &[])?;
            cube.copy_in(&mut lb, 0, &b, 0, s * s, &[])?;
            cube.mmad::<i8>(&mut lc, &mut la, &mut lb, s, s, s, false)?;
            let cube_done = cube.copy_out(&c, 0, &lc, 0, s * s, &[])?;
            cube.set_flag(flags, 0, &[cube_done])?;

            // Vector: wait on the flag, read the cube's result, add 100.
            let v = &mut ctx.vecs[0];
            let ready = v.wait_flag(flags, 0)?;
            let mut buf = v.alloc_local::<i32>(ScratchpadKind::Ub, s * s)?;
            v.copy_in(&mut buf, 0, &c, 0, s * s, &[ready])?;
            v.vadds(&mut buf, 0, s * s, 100, 0)?;
            v.copy_out(&out, 0, &buf, 0, s * s, &[])?;
            Ok(())
        })
        .unwrap();

        let result = out.to_vec();
        assert_eq!(&result[..4], &[101, 102, 103, 104]);
        assert_eq!(&result[12..], &[101, 102, 103, 104]);
    }
}
