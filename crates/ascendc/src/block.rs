//! Kernel blocks and the launch machinery.
//!
//! A *block* is the smallest logical execution unit of an AscendC kernel;
//! here one block maps to one AI core — one cube core plus
//! `spec.vec_per_core` vector cores. [`launch`] runs the kernel closure
//! once per block on its own OS thread, then merges the per-block
//! simulated timelines into a single [`KernelReport`].
//!
//! Global synchronization ([`BlockCtx::sync_all`]) is a real thread
//! barrier: all blocks align their simulated clocks to the slowest block
//! and to the segment's memory-bandwidth bound.
//!
//! # Failure semantics
//!
//! A kernel that returns an error *between* two `sync_all` calls while
//! other blocks keep synchronizing would deadlock on real hardware — and
//! here the launcher keeps the error thread participating in the final
//! barrier only, so kernels must validate their resources before the
//! first barrier (all kernels in this repository allocate up front).

use crate::core::Core;
use ascend_sim::mem::GlobalMemory;
use ascend_sim::prof::{self, KernelProfile, SpanRecorder};
use ascend_sim::{
    simcheck, ChipSpec, CoreKind, CounterEvent, EngineKind, EventTime, KernelReport, SharedSync,
    SimError, SimResult, SpanArgs, SpanId, StallEvent, StallTally, TraceEvent, TraceSpan,
};
use std::sync::Arc;

/// Per-block execution context: the block's cores plus the launch-wide
/// shared state.
pub struct BlockCtx<'a> {
    /// This block's index in `0..block_dim`.
    pub block_idx: u32,
    /// Number of blocks in the launch.
    pub block_dim: u32,
    /// The block's cube (AIC) core.
    pub cube: Core<'a>,
    /// The block's vector (AIV) cores (two on the 910B).
    pub vecs: Vec<Core<'a>>,
    spec: &'a ChipSpec,
    gm: &'a GlobalMemory,
    sync: &'a SharedSync,
    /// Block-level phase spans (depth 1; kernel root is depth 0).
    spans: SpanRecorder,
}

impl<'a> BlockCtx<'a> {
    /// The chip specification.
    pub fn spec(&self) -> &ChipSpec {
        self.spec
    }

    /// The block's local completion horizon: the latest time any of its
    /// cores finishes its issued work.
    pub fn local_now(&self) -> EventTime {
        self.vecs
            .iter()
            .map(Core::now)
            .chain(std::iter::once(self.cube.now()))
            .max()
            .unwrap_or(0)
    }

    /// `SyncAll`: global barrier across all blocks. Aligns every core of
    /// every block to the slowest block and to the memory-bandwidth bound
    /// of the segment since the previous barrier. Returns the resumption
    /// time.
    pub fn sync_all(&mut self) -> EventTime {
        let local = self.local_now();
        let span = self.spans.begin("SyncAll", local);
        let resolved = self
            .sync
            .sync(local, self.gm, self.spec, self.spec.sync_all_cycles);
        self.spans.end(span, resolved);
        self.cube.wait(resolved);
        for v in &mut self.vecs {
            v.wait(resolved);
        }
        resolved
    }

    // ---------------------------------------------------------------
    // Profiling spans
    // ---------------------------------------------------------------

    /// Whether a profile collector (or trace) is active for this launch.
    pub fn profiling(&self) -> bool {
        self.spans.enabled()
    }

    /// Opens a block-level phase span (e.g. `"Phase I"`) starting at the
    /// block's current completion horizon. A no-op returning
    /// [`SpanId::NONE`] when profiling is off — kernels instrument
    /// unconditionally at zero cost.
    pub fn span_begin(&mut self, name: &'static str) -> SpanId {
        let now = self.local_now();
        self.spans.begin(name, now)
    }

    /// Closes a phase span at the block's current completion horizon.
    pub fn span_end(&mut self, id: SpanId) {
        let now = self.local_now();
        self.spans.end(id, now);
    }

    /// Attaches argument payload to an open phase span.
    pub fn span_args(&mut self, id: SpanId, args: SpanArgs) {
        self.spans.set_args(id, args);
    }
}

struct BlockOutcome {
    end: EventTime,
    busy: [u64; EngineKind::ALL.len()],
    instructions: [u64; EngineKind::ALL.len()],
    stalls: StallTally,
    error: Option<SimError>,
    events: Vec<TraceEvent>,
    spans: Vec<TraceSpan>,
    stall_events: Vec<StallEvent>,
    counters: Vec<CounterEvent>,
}

/// Launches `block_dim` blocks of `kernel` on the chip and returns the
/// merged execution report.
///
/// The kernel closure runs once per block (on its own OS thread) and
/// drives the block's engines through [`BlockCtx`]. `useful_bytes` and
/// `elements` of the returned report are left at zero — operator wrappers
/// fill them in with the operator's I/O convention.
pub fn launch<F>(
    spec: &ChipSpec,
    gm: &Arc<GlobalMemory>,
    block_dim: u32,
    name: &str,
    kernel: F,
) -> SimResult<KernelReport>
where
    F: Fn(&mut BlockCtx<'_>) -> SimResult<()> + Sync,
{
    launch_impl(spec, gm, block_dim, name, kernel, false).map(|(r, _)| r)
}

/// Like [`launch`], but records every instruction's engine-occupancy
/// interval and returns the events alongside the report — feed them to
/// [`ascend_sim::trace::to_chrome_json`] to inspect the schedule at
/// `chrome://tracing`.
pub fn launch_traced<F>(
    spec: &ChipSpec,
    gm: &Arc<GlobalMemory>,
    block_dim: u32,
    name: &str,
    kernel: F,
) -> SimResult<(KernelReport, Vec<TraceEvent>)>
where
    F: Fn(&mut BlockCtx<'_>) -> SimResult<()> + Sync,
{
    launch_impl(spec, gm, block_dim, name, kernel, true)
}

fn launch_impl<F>(
    spec: &ChipSpec,
    gm: &Arc<GlobalMemory>,
    block_dim: u32,
    name: &str,
    kernel: F,
    trace: bool,
) -> SimResult<(KernelReport, Vec<TraceEvent>)>
where
    F: Fn(&mut BlockCtx<'_>) -> SimResult<()> + Sync,
{
    if block_dim == 0 || block_dim > spec.ai_cores {
        return Err(SimError::InvalidArgument(format!(
            "block_dim {block_dim} out of range 1..={}",
            spec.ai_cores
        )));
    }
    let read_at_start = gm.bytes_read();
    let written_at_start = gm.bytes_written();
    let sync = SharedSync::with_origin(
        block_dim as usize,
        spec.launch_cycles,
        read_at_start + written_at_start,
    );
    // The collector is thread-local state of the *caller*; block threads
    // have their own (empty) TLS, so the decision is made here and the
    // profile is submitted here after the join.
    let collector = prof::collector_active();
    let profiled = trace || collector;
    let recording = profiled || spec.validation.audits();

    let outcomes: Vec<BlockOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..block_dim)
            .map(|block_idx| {
                let sync = &sync;
                let kernel = &kernel;
                let gm_ref: &GlobalMemory = gm;
                scope.spawn(move || {
                    let mut ctx = BlockCtx {
                        block_idx,
                        block_dim,
                        cube: Core::new(CoreKind::Cube, spec, spec.launch_cycles),
                        vecs: (0..spec.vec_per_core)
                            .map(|_| Core::new(CoreKind::Vector, spec, spec.launch_cycles))
                            .collect(),
                        spec,
                        gm: gm_ref,
                        sync,
                        spans: SpanRecorder::new(1),
                    };
                    if recording {
                        ctx.cube.timeline_mut().enable_recording();
                        for v in &mut ctx.vecs {
                            v.timeline_mut().enable_recording();
                        }
                    }
                    if profiled {
                        ctx.spans.enable();
                        ctx.cube.enable_profiling();
                        for v in &mut ctx.vecs {
                            v.enable_profiling();
                        }
                    }
                    let error = kernel(&mut ctx).err();
                    // Always join the final barrier so sibling blocks
                    // terminate; see module docs for failure semantics.
                    let end = sync.sync(ctx.local_now(), gm_ref, spec, 0);
                    // Align every core to the kernel end so the tail wait
                    // is attributed as barrier time and the per-engine
                    // stall partition (busy + dependency + barrier =
                    // elapsed) closes exactly.
                    ctx.cube.wait(end);
                    for v in &mut ctx.vecs {
                        v.wait(end);
                    }
                    let mut busy = [0u64; EngineKind::ALL.len()];
                    let mut instructions = [0u64; EngineKind::ALL.len()];
                    let mut stalls = StallTally::default();
                    let mut events = Vec::new();
                    let mut spans = ctx.spans.take(block_idx, prof::BLOCK_SCOPE, end);
                    let mut stall_events = Vec::new();
                    let mut counters = Vec::new();
                    for (ci, core) in std::iter::once(&mut ctx.cube)
                        .chain(ctx.vecs.iter_mut())
                        .enumerate()
                    {
                        for e in EngineKind::ALL {
                            busy[e.index()] += core.timeline().busy_cycles(e);
                            instructions[e.index()] += core.timeline().instructions(e);
                        }
                        stalls.absorb(core.timeline().stalls());
                        if recording {
                            events.extend(core.timeline().recorded().iter().map(
                                |&(engine, start, end)| TraceEvent {
                                    block: block_idx,
                                    core: ci as u32,
                                    engine,
                                    start,
                                    end,
                                },
                            ));
                        }
                        if profiled {
                            stall_events.extend(core.timeline().recorded_stalls().iter().map(
                                |&(engine, cause, start, end)| StallEvent {
                                    block: block_idx,
                                    core: ci as u32,
                                    engine,
                                    cause,
                                    start,
                                    end,
                                },
                            ));
                            spans.extend(core.take_spans(block_idx, ci as u32, end));
                            counters.extend(core.take_counters(block_idx, ci as u32));
                        }
                    }
                    BlockOutcome {
                        end,
                        busy,
                        instructions,
                        stalls,
                        error,
                        events,
                        spans,
                        stall_events,
                        counters,
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("block thread panicked"))
            .collect()
    });

    if let Some(err) = outcomes.iter().find_map(|o| o.error.clone()) {
        return Err(err);
    }

    let mut busy = [0u64; EngineKind::ALL.len()];
    let mut instructions = [0u64; EngineKind::ALL.len()];
    let mut stalls = StallTally::default();
    for o in &outcomes {
        for i in 0..EngineKind::ALL.len() {
            busy[i] += o.busy[i];
            instructions[i] += o.instructions[i];
        }
        stalls.absorb(&o.stalls);
    }
    let cycles = outcomes.iter().map(|o| o.end).max().unwrap_or(0);
    let mut events: Vec<TraceEvent> = Vec::new();
    let mut spans: Vec<TraceSpan> = Vec::new();
    let mut stall_events: Vec<StallEvent> = Vec::new();
    let mut counters: Vec<CounterEvent> = Vec::new();
    for o in outcomes {
        events.extend(o.events);
        spans.extend(o.spans);
        stall_events.extend(o.stall_events);
        counters.extend(o.counters);
    }
    let report = KernelReport {
        name: name.to_string(),
        blocks: block_dim,
        cycles,
        clock_ghz: spec.clock_ghz,
        bytes_read: gm.bytes_read() - read_at_start,
        bytes_written: gm.bytes_written() - written_at_start,
        useful_bytes: 0,
        elements: 0,
        engine_busy: busy,
        engine_instructions: instructions,
        sync_rounds: sync.rounds().saturating_sub(1),
        stalls,
        barrier_waits: sync.round_waits(),
    };
    if spec.validation.audits() {
        simcheck::audit_trace_events(&events)?;
        simcheck::audit_report(
            &report,
            spec,
            gm.bytes_read() - read_at_start,
            gm.bytes_written() - written_at_start,
        )?;
        simcheck::audit_stall_accounting(&report, spec)?;
    }
    if collector {
        let profile_events = if trace {
            events.clone()
        } else {
            std::mem::take(&mut events)
        };
        prof::submit(KernelProfile {
            name: name.to_string(),
            clock_ghz: spec.clock_ghz,
            blocks: block_dim,
            cycles,
            events: profile_events,
            spans,
            stall_events,
            counters,
            stalls: report.stalls.clone(),
        });
    }
    if !trace {
        events.clear();
    }
    Ok((report, events))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::GlobalTensor;
    use ascend_sim::chip::ScratchpadKind;

    fn setup() -> (ChipSpec, Arc<GlobalMemory>) {
        let spec = ChipSpec::tiny();
        let gm = Arc::new(GlobalMemory::new(spec.hbm_capacity));
        (spec, gm)
    }

    #[test]
    fn single_block_copy_kernel() {
        let (spec, gm) = setup();
        let input: Vec<f32> = (0..256).map(|i| i as f32).collect();
        let x = GlobalTensor::from_slice(&gm, &input).unwrap();
        let y = GlobalTensor::<f32>::new(&gm, 256).unwrap();

        let report = launch(&spec, &gm, 1, "copy", |ctx| {
            let v = &mut ctx.vecs[0];
            let mut buf = v.alloc_local::<f32>(ScratchpadKind::Ub, 256)?;
            v.copy_in(&mut buf, 0, &x, 0, 256, &[])?;
            v.copy_out(&y, 0, &buf, 0, 256, &[])?;
            Ok(())
        })
        .unwrap();

        assert_eq!(y.to_vec(), input);
        assert!(report.cycles > spec.launch_cycles);
        assert_eq!(report.bytes_read, 1024);
        assert_eq!(report.bytes_written, 1024);
        assert_eq!(report.blocks, 1);
    }

    #[test]
    fn blocks_partition_work() {
        let (spec, gm) = setup();
        let n = 512;
        let x = GlobalTensor::from_slice(&gm, &vec![1i32; n]).unwrap();
        let y = GlobalTensor::<i32>::new(&gm, n).unwrap();

        launch(&spec, &gm, 2, "add1", |ctx| {
            let per = n / ctx.block_dim as usize;
            let off = ctx.block_idx as usize * per;
            let v = &mut ctx.vecs[0];
            let mut buf = v.alloc_local::<i32>(ScratchpadKind::Ub, per)?;
            v.copy_in(&mut buf, 0, &x, off, per, &[])?;
            v.vadds(&mut buf, 0, per, 41, 0)?;
            v.copy_out(&y, off, &buf, 0, per, &[])?;
            Ok(())
        })
        .unwrap();

        assert_eq!(y.to_vec(), vec![42i32; n]);
    }

    #[test]
    fn sync_all_aligns_blocks() {
        let (spec, gm) = setup();
        let flags = GlobalTensor::<u32>::new(&gm, 2).unwrap();

        let report = launch(&spec, &gm, 2, "sync", |ctx| {
            let idx = ctx.block_idx as usize;
            // Block 0 does much more pre-barrier work than block 1.
            let reps = if idx == 0 { 50 } else { 1 };
            {
                let v = &mut ctx.vecs[0];
                let mut buf = v.alloc_local::<u32>(ScratchpadKind::Ub, 64)?;
                for _ in 0..reps {
                    v.vadds(&mut buf, 0, 64, 1, 0)?;
                }
                v.copy_out(&flags, idx, &buf, 0, 1, &[])?;
            }
            let resumed = ctx.sync_all();
            // After the barrier both blocks resume at the same cycle,
            // which is at least the slow block's pre-barrier time.
            assert!(resumed >= ctx.spec().launch_cycles + 50);
            Ok(())
        })
        .unwrap();

        assert_eq!(report.sync_rounds, 1);
        assert_eq!(flags.to_vec(), vec![50, 1]);
    }

    #[test]
    fn launch_is_deterministic() {
        let run = || {
            let (spec, gm) = setup();
            let x = GlobalTensor::from_slice(&gm, &vec![2i32; 1024]).unwrap();
            let y = GlobalTensor::<i32>::new(&gm, 1024).unwrap();
            launch(&spec, &gm, 2, "det", |ctx| {
                let per = 512;
                let off = ctx.block_idx as usize * per;
                let v = &mut ctx.vecs[(ctx.block_idx % 2) as usize];
                let mut buf = v.alloc_local::<i32>(ScratchpadKind::Ub, per)?;
                v.copy_in(&mut buf, 0, &x, off, per, &[])?;
                ctx.sync_all();
                let v = &mut ctx.vecs[0];
                v.copy_out(&y, off, &buf, 0, per, &[])?;
                Ok(())
            })
            .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.engine_busy, b.engine_busy);
        assert_eq!(a.bytes_read, b.bytes_read);
    }

    #[test]
    fn invalid_block_dim_rejected() {
        let (spec, gm) = setup();
        assert!(launch(&spec, &gm, 0, "x", |_| Ok(())).is_err());
        assert!(launch(&spec, &gm, spec.ai_cores + 1, "x", |_| Ok(())).is_err());
    }

    #[test]
    fn kernel_error_propagates() {
        let (spec, gm) = setup();
        let err = launch(&spec, &gm, 1, "fail", |ctx| {
            // UB on the tiny chip is 16 KiB; ask for 1 MiB.
            ctx.vecs[0]
                .alloc_local::<f32>(ScratchpadKind::Ub, 1 << 18)
                .map(|_| ())
        })
        .unwrap_err();
        assert!(matches!(err, SimError::ScratchpadOverflow { .. }));
    }

    #[test]
    fn cube_and_vector_cores_cooperate() {
        let (spec, gm) = setup();
        let s = 4;
        // A: 4x4 of ones; B: upper triangular ones -> row prefix sums.
        let a_host = vec![1i8; s * s];
        let b_host: Vec<i8> = (0..s * s)
            .map(|i| if i / s <= i % s { 1 } else { 0 })
            .collect();
        let a = GlobalTensor::from_slice(&gm, &a_host).unwrap();
        let b = GlobalTensor::from_slice(&gm, &b_host).unwrap();
        let c = GlobalTensor::<i32>::new(&gm, s * s).unwrap();
        let out = GlobalTensor::<i32>::new(&gm, s * s).unwrap();

        launch(&spec, &gm, 1, "mix", |ctx| {
            // Cube: C = A @ B, write to GM.
            let cube = &mut ctx.cube;
            let mut la = cube.alloc_local::<i8>(ScratchpadKind::L0A, s * s)?;
            let mut lb = cube.alloc_local::<i8>(ScratchpadKind::L0B, s * s)?;
            let mut lc = cube.alloc_local::<i32>(ScratchpadKind::L0C, s * s)?;
            cube.copy_in(&mut la, 0, &a, 0, s * s, &[])?;
            cube.copy_in(&mut lb, 0, &b, 0, s * s, &[])?;
            cube.mmad::<i8>(&mut lc, &mut la, &mut lb, s, s, s, false)?;
            let cube_done = cube.copy_out(&c, 0, &lc, 0, s * s, &[])?;

            // Vector: read the cube's result (cross-core dep), add 100.
            let v = &mut ctx.vecs[0];
            let mut buf = v.alloc_local::<i32>(ScratchpadKind::Ub, s * s)?;
            v.copy_in(&mut buf, 0, &c, 0, s * s, &[cube_done])?;
            v.vadds(&mut buf, 0, s * s, 100, 0)?;
            v.copy_out(&out, 0, &buf, 0, s * s, &[])?;
            Ok(())
        })
        .unwrap();

        let result = out.to_vec();
        assert_eq!(&result[..4], &[101, 102, 103, 104]);
        assert_eq!(&result[12..], &[101, 102, 103, 104]);
    }
}
