//! Vector-engine intrinsics (the AIV core's SIMD instruction set).
//!
//! All operations here execute on the `VEC` engine of a vector core and
//! require their operands to live in the Unified Buffer. Each op performs
//! its real arithmetic and charges the cost model: a per-instruction
//! issue overhead plus bytes/`vec_bytes_per_cycle` cycles, with extra
//! latency for reductions and for moving single values into the scalar
//! unit (`extract` — the `partial ← last entry` step of the scans).

use crate::core::{CmpMode, Core};
use crate::tensor::LocalTensor;
use ascend_sim::chip::ScratchpadKind;
use ascend_sim::{CoreKind, EngineKind, EventTime, SimError, SimResult};
use dtypes::{Element, Numeric};

/// Integer elements with bit-wise vector operations (`ShiftRight`, `Not`,
/// `And`, `Or`) — what the radix-extraction kernels work on.
pub trait Bits: Element {
    /// Logical shift right.
    fn shr(self, bits: u32) -> Self;
    /// Logical shift left.
    fn shl(self, bits: u32) -> Self;
    /// Bit-wise and.
    fn and(self, rhs: Self) -> Self;
    /// Bit-wise or.
    fn or(self, rhs: Self) -> Self;
    /// Bit-wise not.
    fn not(self) -> Self;
}

macro_rules! impl_bits {
    ($t:ty) => {
        impl Bits for $t {
            #[inline]
            fn shr(self, bits: u32) -> Self {
                self >> bits
            }
            #[inline]
            fn shl(self, bits: u32) -> Self {
                self << bits
            }
            #[inline]
            fn and(self, rhs: Self) -> Self {
                self & rhs
            }
            #[inline]
            fn or(self, rhs: Self) -> Self {
                self | rhs
            }
            #[inline]
            fn not(self) -> Self {
                !self
            }
        }
    };
}

impl_bits!(u8);
impl_bits!(u16);
impl_bits!(u32);

impl Core<'_> {
    fn check_vec<T: Element>(&self, what: &'static str, t: &LocalTensor<T>) -> SimResult<()> {
        if self.kind != CoreKind::Vector {
            return Err(SimError::WrongCore {
                instr: what,
                core: self.kind.name(),
            });
        }
        if t.pos != ScratchpadKind::Ub {
            return Err(SimError::InvalidArgument(format!(
                "{what}: vector operands must live in UB (got {})",
                t.pos.name()
            )));
        }
        self.check_live(what, t)
    }

    fn vec_exec(&mut self, bytes: usize, deps: &[EventTime]) -> SimResult<EventTime> {
        let cost = self.spec.cost_vector_op(bytes);
        self.timeline_mut().exec(EngineKind::Vec, cost, deps)
    }

    /// `Adds`: adds a scalar to `t[off..off+len]` in place.
    ///
    /// `scalar_ready` is when the scalar operand becomes available (e.g.
    /// the completion time of the `extract` that produced it).
    pub fn vadds<T: Numeric>(
        &mut self,
        t: &mut LocalTensor<T>,
        off: usize,
        len: usize,
        scalar: T,
        scalar_ready: EventTime,
    ) -> SimResult<EventTime> {
        self.check_vec("Adds", t)?;
        t.check_range("Adds", off, len)?;
        for v in &mut t.data[off..off + len] {
            *v = v.add(scalar);
        }
        let done = self.vec_exec(len * T::SIZE, &[t.ready, scalar_ready])?;
        t.ready = done;
        Ok(done)
    }

    /// `Muls`: multiplies `t[off..off+len]` by a scalar in place.
    pub fn vmuls<T: Numeric>(
        &mut self,
        t: &mut LocalTensor<T>,
        off: usize,
        len: usize,
        scalar: T,
        scalar_ready: EventTime,
    ) -> SimResult<EventTime> {
        self.check_vec("Muls", t)?;
        t.check_range("Muls", off, len)?;
        for v in &mut t.data[off..off + len] {
            *v = v.mul(scalar);
        }
        let done = self.vec_exec(len * T::SIZE, &[t.ready, scalar_ready])?;
        t.ready = done;
        Ok(done)
    }

    /// `Add`: element-wise `dst[d..] += src[s..]`.
    pub fn vadd_inplace<T: Numeric>(
        &mut self,
        dst: &mut LocalTensor<T>,
        dst_off: usize,
        src: &LocalTensor<T>,
        src_off: usize,
        len: usize,
    ) -> SimResult<EventTime> {
        self.check_vec("Add", dst)?;
        self.check_vec("Add", src)?;
        dst.check_range("Add dst", dst_off, len)?;
        src.check_range("Add src", src_off, len)?;
        for i in 0..len {
            dst.data[dst_off + i] = dst.data[dst_off + i].add(src.data[src_off + i]);
        }
        let done = self.vec_exec(len * T::SIZE, &[dst.ready, src.ready])?;
        dst.ready = done;
        Ok(done)
    }

    /// `Sub`: element-wise `dst[d..] -= src[s..]`.
    pub fn vsub_inplace<T: Numeric>(
        &mut self,
        dst: &mut LocalTensor<T>,
        dst_off: usize,
        src: &LocalTensor<T>,
        src_off: usize,
        len: usize,
    ) -> SimResult<EventTime> {
        self.check_vec("Sub", dst)?;
        self.check_vec("Sub", src)?;
        dst.check_range("Sub dst", dst_off, len)?;
        src.check_range("Sub src", src_off, len)?;
        for i in 0..len {
            dst.data[dst_off + i] = dst.data[dst_off + i].sub(src.data[src_off + i]);
        }
        let done = self.vec_exec(len * T::SIZE, &[dst.ready, src.ready])?;
        dst.ready = done;
        Ok(done)
    }

    /// Shifted in-place add within one tensor:
    /// `t[off+shift .. off+len] += t[off .. off+len-shift]`.
    ///
    /// This is the Hillis–Steele step the vector-only `CumSum` baseline
    /// is built from (one instruction per log-step).
    pub fn vshift_add<T: Numeric>(
        &mut self,
        t: &mut LocalTensor<T>,
        off: usize,
        len: usize,
        shift: usize,
    ) -> SimResult<EventTime> {
        self.check_vec("ShiftAdd", t)?;
        t.check_range("ShiftAdd", off, len)?;
        if shift == 0 || shift >= len {
            return Err(SimError::InvalidArgument(format!(
                "ShiftAdd: shift {shift} out of range for len {len}"
            )));
        }
        for i in (shift..len).rev() {
            t.data[off + i] = t.data[off + i].add(t.data[off + i - shift]);
        }
        let done = self.vec_exec(len * T::SIZE, &[t.ready])?;
        t.ready = done;
        Ok(done)
    }

    /// `Duplicate`: fills `t[off..off+len]` with a scalar.
    pub fn vdup<T: Numeric>(
        &mut self,
        t: &mut LocalTensor<T>,
        off: usize,
        len: usize,
        value: T,
        scalar_ready: EventTime,
    ) -> SimResult<EventTime> {
        self.check_vec("Duplicate", t)?;
        t.check_range("Duplicate", off, len)?;
        for v in &mut t.data[off..off + len] {
            *v = value;
        }
        let done = self.vec_exec(len * T::SIZE, &[t.ready, scalar_ready])?;
        t.ready = done;
        Ok(done)
    }

    /// `ReduceSum` over `t[off..off+len]`: returns the sum and the time
    /// at which the scalar unit can observe it.
    ///
    /// The functional sum uses pairwise (tree) accumulation, matching
    /// the lane-tree the hardware reduction performs — for fp16 this is
    /// dramatically more accurate than a sequential sum (a sequential
    /// fp16 accumulator saturates near 2048 for sub-unit elements).
    pub fn reduce_sum<T: Numeric>(
        &mut self,
        t: &LocalTensor<T>,
        off: usize,
        len: usize,
    ) -> SimResult<(T, EventTime)> {
        self.check_vec("ReduceSum", t)?;
        t.check_range("ReduceSum", off, len)?;
        fn pairwise<T: Numeric>(v: &[T]) -> T {
            match v.len() {
                0 => T::zero(),
                1 => v[0],
                n => {
                    let mid = n / 2;
                    pairwise(&v[..mid]).add(pairwise(&v[mid..]))
                }
            }
        }
        let acc = pairwise(&t.data[off..off + len]);
        let cost = self.spec.cost_vector_reduce(len * T::SIZE) + self.spec.cost_scalar_extract();
        let done = self
            .timeline_mut()
            .exec(EngineKind::Vec, cost, &[t.ready])?;
        Ok((acc, done))
    }

    /// `ReduceMax`: maximum of `t[off..off+len]` (PartialOrd; NaNs are
    /// skipped, like the hardware's max-number semantics).
    pub fn reduce_max<T: Numeric>(
        &mut self,
        t: &LocalTensor<T>,
        off: usize,
        len: usize,
    ) -> SimResult<(T, EventTime)> {
        self.check_vec("ReduceMax", t)?;
        t.check_range("ReduceMax", off, len)?;
        let mut best = t.data[off];
        for v in &t.data[off + 1..off + len] {
            // `partial_cmp` is None when `best` is NaN: replace it, like
            // the hardware's max-number semantics.
            if *v > best || best.partial_cmp(&best).is_none() {
                best = *v;
            }
        }
        let cost = self.spec.cost_vector_reduce(len * T::SIZE) + self.spec.cost_scalar_extract();
        let done = self
            .timeline_mut()
            .exec(EngineKind::Vec, cost, &[t.ready])?;
        Ok((best, done))
    }

    /// Reads one element into the scalar unit (the `partial ← last entry`
    /// vector→scalar hazard). Returns the value and its availability time.
    pub fn extract<T: Element>(
        &mut self,
        t: &LocalTensor<T>,
        idx: usize,
    ) -> SimResult<(T, EventTime)> {
        self.check_vec("Extract", t)?;
        t.check_range("Extract", idx, 1)?;
        let cost = self.spec.cost_scalar_extract();
        let done = self
            .timeline_mut()
            .exec(EngineKind::Scalar, cost, &[t.ready])?;
        Ok((t.data[idx], done))
    }

    /// Writes one scalar into an element slot (scalar→vector move).
    pub fn insert<T: Element>(
        &mut self,
        t: &mut LocalTensor<T>,
        idx: usize,
        value: T,
        scalar_ready: EventTime,
    ) -> SimResult<EventTime> {
        self.check_vec("Insert", t)?;
        t.check_range("Insert", idx, 1)?;
        t.data[idx] = value;
        let cost = self.spec.cost_scalar_extract();
        let done = self
            .timeline_mut()
            .exec(EngineKind::Scalar, cost, &[t.ready, scalar_ready])?;
        t.ready = done;
        Ok(done)
    }

    /// `GatherMask`: gathers elements of `src[off..off+len]` whose mask
    /// byte is non-zero into the front of `dst`, preserving order.
    /// Returns the number gathered and the completion time.
    pub fn gather_mask<T: Element>(
        &mut self,
        dst: &mut LocalTensor<T>,
        src: &LocalTensor<T>,
        mask: &LocalTensor<u8>,
        off: usize,
        len: usize,
    ) -> SimResult<(usize, EventTime)> {
        self.check_vec("GatherMask", dst)?;
        self.check_vec("GatherMask", src)?;
        self.check_vec("GatherMask", mask)?;
        src.check_range("GatherMask src", off, len)?;
        mask.check_range("GatherMask mask", off, len)?;
        let mut count = 0;
        for i in 0..len {
            if mask.data[off + i] != 0 {
                dst.check_range("GatherMask dst", count, 1)?;
                dst.data[count] = src.data[off + i];
                count += 1;
            }
        }
        let cost = self.spec.cost_vector_reduce((len + count) * T::SIZE);
        let done =
            self.timeline_mut()
                .exec(EngineKind::Vec, cost, &[dst.ready, src.ready, mask.ready])?;
        dst.ready = done;
        Ok((count, done))
    }

    /// `Compare`: `dst_mask[i] = (src[i] <op> scalar) as u8`.
    #[allow(clippy::too_many_arguments)]
    pub fn vcompare_scalar<T: Numeric>(
        &mut self,
        dst_mask: &mut LocalTensor<u8>,
        src: &LocalTensor<T>,
        off: usize,
        len: usize,
        mode: CmpMode,
        scalar: T,
        scalar_ready: EventTime,
    ) -> SimResult<EventTime> {
        self.check_vec("Compare", dst_mask)?;
        self.check_vec("Compare", src)?;
        dst_mask.check_range("Compare dst", off, len)?;
        src.check_range("Compare src", off, len)?;
        for i in 0..len {
            let v = src.data[off + i];
            let hit = match mode {
                CmpMode::Lt => v < scalar,
                CmpMode::Le => v <= scalar,
                CmpMode::Gt => v > scalar,
                CmpMode::Ge => v >= scalar,
                CmpMode::Eq => v == scalar,
                CmpMode::Ne => v != scalar,
            };
            dst_mask.data[off + i] = u8::from(hit);
        }
        let done = self.vec_exec(len * T::SIZE, &[dst_mask.ready, src.ready, scalar_ready])?;
        dst_mask.ready = done;
        Ok(done)
    }

    /// `Select`: `dst[i] = if mask[i] != 0 { a[i] } else { b[i] }`.
    pub fn vselect<T: Element>(
        &mut self,
        dst: &mut LocalTensor<T>,
        mask: &LocalTensor<u8>,
        a: &LocalTensor<T>,
        b: &LocalTensor<T>,
        off: usize,
        len: usize,
    ) -> SimResult<EventTime> {
        self.check_vec("Select", dst)?;
        dst.check_range("Select dst", off, len)?;
        mask.check_range("Select mask", off, len)?;
        a.check_range("Select a", off, len)?;
        b.check_range("Select b", off, len)?;
        for i in 0..len {
            dst.data[off + i] = if mask.data[off + i] != 0 {
                a.data[off + i]
            } else {
                b.data[off + i]
            };
        }
        let done = self.vec_exec(len * T::SIZE, &[dst.ready, mask.ready, a.ready, b.ready])?;
        dst.ready = done;
        Ok(done)
    }

    /// `Cast`: converts `src[off..off+len]` into `dst`'s element type.
    pub fn vcast<S: Numeric, D: Numeric>(
        &mut self,
        dst: &mut LocalTensor<D>,
        src: &LocalTensor<S>,
        off: usize,
        len: usize,
    ) -> SimResult<EventTime> {
        self.check_vec("Cast", dst)?;
        self.check_vec("Cast", src)?;
        dst.check_range("Cast dst", off, len)?;
        src.check_range("Cast src", off, len)?;
        for i in 0..len {
            dst.data[off + i] = D::from_f64(src.data[off + i].to_f64());
        }
        let done = self.vec_exec(len * S::SIZE.max(D::SIZE), &[dst.ready, src.ready])?;
        dst.ready = done;
        Ok(done)
    }

    /// Reinterprets the bits of `src` as `dst`'s same-width type (the
    /// radix-sort encode path observes float bits; hardware does this for
    /// free, here it is a vector move).
    pub fn vbitcast<S: Element, D: Element>(
        &mut self,
        dst: &mut LocalTensor<D>,
        src: &LocalTensor<S>,
        off: usize,
        len: usize,
    ) -> SimResult<EventTime> {
        self.check_vec("BitCast", dst)?;
        self.check_vec("BitCast", src)?;
        if S::SIZE != D::SIZE {
            return Err(SimError::InvalidArgument(format!(
                "BitCast requires equal widths ({} vs {})",
                S::SIZE,
                D::SIZE
            )));
        }
        dst.check_range("BitCast dst", off, len)?;
        src.check_range("BitCast src", off, len)?;
        let mut buf = vec![0u8; S::SIZE];
        for i in 0..len {
            src.data[off + i].write_le(&mut buf);
            dst.data[off + i] = D::read_le(&buf);
        }
        let done = self.vec_exec(len * S::SIZE, &[dst.ready, src.ready])?;
        dst.ready = done;
        Ok(done)
    }

    /// `CreateVecIndex`: fills `t[off..off+len]` with the ramp
    /// `start, start+1, …` (used to materialize original indices for
    /// `SplitInd`).
    pub fn viota(
        &mut self,
        t: &mut LocalTensor<u32>,
        off: usize,
        len: usize,
        start: u32,
    ) -> SimResult<EventTime> {
        self.check_vec("CreateVecIndex", t)?;
        t.check_range("CreateVecIndex", off, len)?;
        for (i, v) in t.data[off..off + len].iter_mut().enumerate() {
            *v = start + i as u32;
        }
        let done = self.vec_exec(len * 4, &[t.ready])?;
        t.ready = done;
        Ok(done)
    }

    /// Radix-sort pre-processing: order-preserving encode of `src` into
    /// the unsigned key domain (flip MSB of non-negatives / all bits of
    /// negatives for floats; flip the sign bit for signed integers).
    ///
    /// On hardware this is the short `ShiftRight`/`Not`/`Or` bit-trick
    /// sequence the paper describes; it is charged as three vector
    /// instructions.
    pub fn vradix_encode<K>(
        &mut self,
        dst: &mut LocalTensor<K::Encoded>,
        src: &LocalTensor<K>,
        off: usize,
        len: usize,
    ) -> SimResult<EventTime>
    where
        K: dtypes::RadixKey + Element,
        K::Encoded: Element,
    {
        self.check_vec("RadixEncode", dst)?;
        self.check_vec("RadixEncode", src)?;
        dst.check_range("RadixEncode dst", off, len)?;
        src.check_range("RadixEncode src", off, len)?;
        for i in 0..len {
            dst.data[off + i] = src.data[off + i].encode();
        }
        let bytes = len * K::SIZE;
        let cost = 3 * self.spec.cost_vector_op(bytes);
        let done = self
            .timeline_mut()
            .exec(EngineKind::Vec, cost, &[dst.ready, src.ready])?;
        dst.ready = done;
        Ok(done)
    }

    /// Radix-sort post-processing: inverse of [`Core::vradix_encode`].
    pub fn vradix_decode<K>(
        &mut self,
        dst: &mut LocalTensor<K>,
        src: &LocalTensor<K::Encoded>,
        off: usize,
        len: usize,
    ) -> SimResult<EventTime>
    where
        K: dtypes::RadixKey + Element,
        K::Encoded: Element,
    {
        self.check_vec("RadixDecode", dst)?;
        self.check_vec("RadixDecode", src)?;
        dst.check_range("RadixDecode dst", off, len)?;
        src.check_range("RadixDecode src", off, len)?;
        for i in 0..len {
            dst.data[off + i] = K::decode(src.data[off + i]);
        }
        let bytes = len * K::SIZE;
        let cost = 3 * self.spec.cost_vector_op(bytes);
        let done = self
            .timeline_mut()
            .exec(EngineKind::Vec, cost, &[dst.ready, src.ready])?;
        dst.ready = done;
        Ok(done)
    }

    /// `ShiftRight` by a scalar bit count, in place.
    pub fn vshr<T: Bits>(
        &mut self,
        t: &mut LocalTensor<T>,
        off: usize,
        len: usize,
        bits: u32,
    ) -> SimResult<EventTime> {
        self.check_vec("ShiftRight", t)?;
        t.check_range("ShiftRight", off, len)?;
        for v in &mut t.data[off..off + len] {
            *v = v.shr(bits);
        }
        let done = self.vec_exec(len * T::SIZE, &[t.ready])?;
        t.ready = done;
        Ok(done)
    }

    /// `And` with a scalar, in place.
    pub fn vand_scalar<T: Bits>(
        &mut self,
        t: &mut LocalTensor<T>,
        off: usize,
        len: usize,
        mask: T,
    ) -> SimResult<EventTime> {
        self.check_vec("And", t)?;
        t.check_range("And", off, len)?;
        for v in &mut t.data[off..off + len] {
            *v = v.and(mask);
        }
        let done = self.vec_exec(len * T::SIZE, &[t.ready])?;
        t.ready = done;
        Ok(done)
    }

    /// `Or` with a scalar, in place.
    pub fn vor_scalar<T: Bits>(
        &mut self,
        t: &mut LocalTensor<T>,
        off: usize,
        len: usize,
        mask: T,
    ) -> SimResult<EventTime> {
        self.check_vec("Or", t)?;
        t.check_range("Or", off, len)?;
        for v in &mut t.data[off..off + len] {
            *v = v.or(mask);
        }
        let done = self.vec_exec(len * T::SIZE, &[t.ready])?;
        t.ready = done;
        Ok(done)
    }

    /// `Not`, in place.
    pub fn vnot<T: Bits>(
        &mut self,
        t: &mut LocalTensor<T>,
        off: usize,
        len: usize,
    ) -> SimResult<EventTime> {
        self.check_vec("Not", t)?;
        t.check_range("Not", off, len)?;
        for v in &mut t.data[off..off + len] {
            *v = v.not();
        }
        let done = self.vec_exec(len * T::SIZE, &[t.ready])?;
        t.ready = done;
        Ok(done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascend_sim::ChipSpec;

    fn with_vec_core<R>(f: impl FnOnce(&mut Core<'_>) -> R) -> R {
        let spec = ChipSpec::tiny();
        let mut core = Core::new(CoreKind::Vector, &spec, 0, 0, 0);
        f(&mut core)
    }

    #[test]
    fn adds_and_muls() {
        with_vec_core(|core| {
            let mut t = core.alloc_local::<f32>(ScratchpadKind::Ub, 8).unwrap();
            t.data.copy_from_slice(&[1., 2., 3., 4., 5., 6., 7., 8.]);
            core.vadds(&mut t, 0, 8, 10.0, 0).unwrap();
            assert_eq!(t.as_slice()[0], 11.0);
            assert_eq!(t.as_slice()[7], 18.0);
            core.vmuls(&mut t, 0, 4, 2.0, 0).unwrap();
            assert_eq!(t.as_slice()[0], 22.0);
            assert_eq!(t.as_slice()[4], 15.0, "outside range untouched");
        });
    }

    #[test]
    fn shift_add_is_hillis_steele_step() {
        with_vec_core(|core| {
            let mut t = core.alloc_local::<i32>(ScratchpadKind::Ub, 8).unwrap();
            t.data.copy_from_slice(&[1, 1, 1, 1, 1, 1, 1, 1]);
            core.vshift_add(&mut t, 0, 8, 1).unwrap();
            core.vshift_add(&mut t, 0, 8, 2).unwrap();
            core.vshift_add(&mut t, 0, 8, 4).unwrap();
            assert_eq!(t.as_slice(), &[1, 2, 3, 4, 5, 6, 7, 8]);
            assert!(core.vshift_add(&mut t, 0, 8, 8).is_err());
            assert!(core.vshift_add(&mut t, 0, 8, 0).is_err());
        });
    }

    #[test]
    fn reductions_and_extract() {
        with_vec_core(|core| {
            let mut t = core.alloc_local::<i32>(ScratchpadKind::Ub, 6).unwrap();
            t.data.copy_from_slice(&[3, -1, 7, 0, 5, 2]);
            let (sum, t1) = core.reduce_sum(&t, 0, 6).unwrap();
            assert_eq!(sum, 16);
            let (max, _) = core.reduce_max(&t, 0, 6).unwrap();
            assert_eq!(max, 7);
            let (v, t2) = core.extract(&t, 2).unwrap();
            assert_eq!(v, 7);
            assert!(t1 > 0 && t2 > 0);
        });
    }

    #[test]
    fn gather_mask_compacts_stably() {
        with_vec_core(|core| {
            let mut dst = core.alloc_local::<u16>(ScratchpadKind::Ub, 8).unwrap();
            let mut src = core.alloc_local::<u16>(ScratchpadKind::Ub, 8).unwrap();
            let mut mask = core.alloc_local::<u8>(ScratchpadKind::Ub, 8).unwrap();
            src.data.copy_from_slice(&[10, 11, 12, 13, 14, 15, 16, 17]);
            mask.data.copy_from_slice(&[1, 0, 1, 1, 0, 0, 1, 0]);
            let (count, _) = core.gather_mask(&mut dst, &src, &mask, 0, 8).unwrap();
            assert_eq!(count, 4);
            assert_eq!(&dst.as_slice()[..4], &[10, 12, 13, 16]);
        });
    }

    #[test]
    fn compare_select_cast() {
        with_vec_core(|core| {
            let mut mask = core.alloc_local::<u8>(ScratchpadKind::Ub, 4).unwrap();
            let mut a = core.alloc_local::<f32>(ScratchpadKind::Ub, 4).unwrap();
            let mut b = core.alloc_local::<f32>(ScratchpadKind::Ub, 4).unwrap();
            let mut dst = core.alloc_local::<f32>(ScratchpadKind::Ub, 4).unwrap();
            a.data.copy_from_slice(&[1., 5., 3., 9.]);
            core.vdup(&mut b, 0, 4, -1.0, 0).unwrap();
            core.vcompare_scalar(&mut mask, &a, 0, 4, CmpMode::Gt, 2.5, 0)
                .unwrap();
            assert_eq!(mask.as_slice(), &[0, 1, 1, 1]);
            core.vselect(&mut dst, &mask, &a, &b, 0, 4).unwrap();
            assert_eq!(dst.as_slice(), &[-1., 5., 3., 9.]);

            let mut ints = core.alloc_local::<i32>(ScratchpadKind::Ub, 4).unwrap();
            core.vcast(&mut ints, &dst, 0, 4).unwrap();
            assert_eq!(ints.as_slice(), &[-1, 5, 3, 9]);
        });
    }

    #[test]
    fn bitwise_ops() {
        with_vec_core(|core| {
            let mut t = core.alloc_local::<u16>(ScratchpadKind::Ub, 4).unwrap();
            t.data.copy_from_slice(&[0b1010, 0b1100, 0xFFFF, 0]);
            core.vshr(&mut t, 0, 4, 2).unwrap();
            assert_eq!(t.as_slice(), &[0b10, 0b11, 0x3FFF, 0]);
            core.vand_scalar(&mut t, 0, 4, 1).unwrap();
            assert_eq!(t.as_slice(), &[0, 1, 1, 0]);
            core.vnot(&mut t, 0, 4).unwrap();
            assert_eq!(t.as_slice(), &[0xFFFF, 0xFFFE, 0xFFFE, 0xFFFF]);
            core.vor_scalar(&mut t, 0, 4, 1).unwrap();
            assert_eq!(t.as_slice(), &[0xFFFF, 0xFFFF, 0xFFFF, 0xFFFF]);
        });
    }

    #[test]
    fn bitcast_requires_equal_width() {
        with_vec_core(|core| {
            let mut dst16 = core.alloc_local::<u16>(ScratchpadKind::Ub, 2).unwrap();
            let mut f16s = core
                .alloc_local::<dtypes::F16>(ScratchpadKind::Ub, 2)
                .unwrap();
            f16s.data
                .copy_from_slice(&[dtypes::F16::ONE, dtypes::F16::NEG_ONE]);
            core.vbitcast(&mut dst16, &f16s, 0, 2).unwrap();
            assert_eq!(dst16.as_slice(), &[0x3C00, 0xBC00]);

            let mut dst32 = core.alloc_local::<u32>(ScratchpadKind::Ub, 2).unwrap();
            assert!(core.vbitcast(&mut dst32, &f16s, 0, 2).is_err());
        });
    }

    #[test]
    fn vector_ops_rejected_on_cube_core() {
        let spec = ChipSpec::tiny();
        let mut cube = Core::new(CoreKind::Cube, &spec, 0, 0, 0);
        let mut t = LocalTensor::<f32>::new(ScratchpadKind::Ub, 4, 0);
        assert!(cube.vadds(&mut t, 0, 4, 1.0, 0).is_err());
    }

    #[test]
    fn timing_advances_with_each_op() {
        with_vec_core(|core| {
            let mut t = core.alloc_local::<f32>(ScratchpadKind::Ub, 64).unwrap();
            let t1 = core.vadds(&mut t, 0, 64, 1.0, 0).unwrap();
            let t2 = core.vadds(&mut t, 0, 64, 1.0, 0).unwrap();
            assert!(t2 > t1);
            assert_eq!(t.ready(), t2);
            // A dependent op scheduled after an artificial future dep waits.
            let t3 = core.vadds(&mut t, 0, 64, 1.0, 1_000_000).unwrap();
            assert!(t3 > 1_000_000);
        });
    }
}
