//! A Rust embedding of the **AscendC** programming model on top of the
//! [`ascend_sim`] simulator.
//!
//! AscendC is Huawei's pipeline-based kernel programming model for the
//! Ascend accelerators. Kernels manipulate *tensors* — [`GlobalTensor`]
//! wraps a buffer in global memory, [`LocalTensor`] wraps a buffer in a
//! core's scratchpad — and move data between them with explicit MTE
//! transfers. Data dependencies between hardware engines are expressed
//! with *queues* ([`TQue`]): a producer `enque`s a tensor after writing
//! it, a consumer `deque`s it before reading, and freeing a tensor
//! returns its buffer slot to the pool (a depth-2 queue is double
//! buffering).
//!
//! One kernel *block* maps to one AI core: a cube core plus (on the 910B)
//! two vector cores, exposed through [`BlockCtx`]. Kernel code is an
//! ordinary Rust closure run once per block; every intrinsic both
//! performs its real data movement/arithmetic and advances the simulated
//! timeline of the engine it runs on. [`launch`] drives all blocks as
//! cooperative tasks under the deterministic event-driven scheduler
//! (grids may exceed both the chip's AI cores and the host's — excess
//! blocks wave-multiplex onto physical core slots), prices every
//! [`BlockCtx::sync_all`] barrier from `CrossCoreSetFlag`/
//! `CrossCoreWaitFlag` instructions plus the global bandwidth bound, and
//! returns an [`ascend_sim::KernelReport`].

#![forbid(unsafe_code)]

pub mod block;
pub mod core;
pub mod queue;
pub mod tensor;
pub mod vecops;

pub use crate::core::{CmpMode, Core};
pub use block::{launch, launch_traced, BlockCtx};
pub use queue::TQue;
pub use tensor::{GlobalTensor, LocalTensor};
pub use vecops::Bits;

pub use ascend_sim::chip::ScratchpadKind;
pub use ascend_sim::{
    ChipSpec, EventTime, FlagFile, KernelProfile, KernelReport, Profile, SimError, SimResult,
    SpanArgs, SpanId, StallCause, StallTally,
};
