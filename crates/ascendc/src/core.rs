//! A single simulated core (AIC or AIV) and its non-vector intrinsics:
//! local-memory allocation, MTE transfers, the cube `Mmad`, and scalar-
//! unit work. Vector-engine intrinsics live in [`crate::vecops`].

use crate::tensor::{GlobalTensor, LocalTensor};
use ascend_sim::chip::ScratchpadKind;
use ascend_sim::{
    ChipSpec, CoreKind, CoreTimeline, CounterEvent, EngineKind, EventTime, FlagFile, HbAction,
    HbEvent, HbRecorder, Scheduler, ScratchTracker, SimError, SimResult, SpanArgs, SpanId,
    SpanRecorder, StallCause, TraceSpan,
};
use dtypes::{CubeInput, Element, Numeric};

/// Comparison modes for the vector `Compare` intrinsic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpMode {
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
}

const NUM_SCRATCHPADS: usize = 5;

fn pad_index(pos: ScratchpadKind) -> usize {
    match pos {
        ScratchpadKind::Ub => 0,
        ScratchpadKind::L1 => 1,
        ScratchpadKind::L0A => 2,
        ScratchpadKind::L0B => 3,
        ScratchpadKind::L0C => 4,
    }
}

/// One simulated core: compute engine(s) + MTEs + scalar unit + local
/// scratchpads. Obtained from [`crate::BlockCtx`]; every intrinsic both
/// performs its real data work and advances this core's timeline.
pub struct Core<'a> {
    pub(crate) kind: CoreKind,
    pub(crate) timeline: CoreTimeline,
    pub(crate) spec: &'a ChipSpec,
    /// Simcheck identity for cross-core scratchpad-aliasing checks,
    /// derived deterministically from `(block, lane)` so that every id
    /// a launch emits (allocations, queues, hb events) is a pure
    /// function of the kernel — independent of scheduler mode and of
    /// any other launch running concurrently in the process.
    uid: u64,
    /// Index of the block this core belongs to — the identity grid-flag
    /// operations commit under (the scheduler orders them block-wise).
    block: usize,
    /// Per-core allocation id counter (simcheck lifetime tracking).
    next_alloc: u64,
    /// Per-core queue id counter (happens-before queue edges).
    next_queue: u32,
    scratch_used: [usize; NUM_SCRATCHPADS],
    tracker: ScratchTracker,
    /// Per-core tile/instruction spans (depth >= 2 in the span hierarchy:
    /// kernel = 0, block phases = 1, core work = 2). Disabled by default;
    /// `span_begin` is a no-op returning [`SpanId::NONE`] until the launch
    /// machinery enables profiling.
    recorder: SpanRecorder,
    /// Counter samples (name, time, value) flushed here by queues on
    /// destroy; drained into the kernel profile at harvest.
    counters: Vec<(&'static str, EventTime, u32)>,
    /// Happens-before event stream (GM access ranges, flag tokens,
    /// queue/alloc edges) for the schedule analyzer ([`ascend_sim::hb`]).
    /// Disabled by default; queues clone the recorder so their events
    /// land in this core's program-order stream.
    hb: HbRecorder,
}

impl<'a> Core<'a> {
    pub(crate) fn new(
        kind: CoreKind,
        spec: &'a ChipSpec,
        start: EventTime,
        block: usize,
        lane: usize,
    ) -> Self {
        Core {
            kind,
            timeline: CoreTimeline::new(kind, start),
            spec,
            // `lane + 1` keeps every uid nonzero (owner 0 = untracked).
            uid: ((block as u64) << 8) | (lane as u64 + 1),
            block,
            next_alloc: 1,
            next_queue: 1,
            scratch_used: [0; NUM_SCRATCHPADS],
            tracker: ScratchTracker::new(spec.validation.lifetime_checks()),
            recorder: SpanRecorder::new(2),
            counters: Vec::new(),
            hb: HbRecorder::disabled(),
        }
    }

    /// The core's kind (cube or vector).
    pub fn kind(&self) -> CoreKind {
        self.kind
    }

    /// The chip specification the core runs under.
    pub fn spec(&self) -> &ChipSpec {
        self.spec
    }

    /// The core's current completion horizon in cycles.
    pub fn now(&self) -> EventTime {
        self.timeline.now()
    }

    /// Advances the whole core to at least `t` (waiting on a cross-core
    /// event, e.g. "vector core waits for cube core").
    pub fn wait(&mut self, t: EventTime) {
        self.timeline.align_to(t);
    }

    pub(crate) fn timeline_mut(&mut self) -> &mut CoreTimeline {
        &mut self.timeline
    }

    pub(crate) fn timeline(&self) -> &CoreTimeline {
        &self.timeline
    }

    // ---------------------------------------------------------------
    // Profiling spans
    // ---------------------------------------------------------------

    /// Turns on span/counter recording for this core. Called by the
    /// launch machinery when a profile collector or trace is active;
    /// purely observational — simulated time is unaffected.
    pub(crate) fn enable_profiling(&mut self) {
        self.recorder.enable();
    }

    /// Whether profiling spans are being recorded on this core.
    pub fn profiling(&self) -> bool {
        self.recorder.enabled()
    }

    /// Opens a named span starting at the core's current completion
    /// horizon. Returns [`SpanId::NONE`] (and records nothing) when
    /// profiling is off, so kernels can instrument unconditionally.
    pub fn span_begin(&mut self, name: &'static str) -> SpanId {
        let now = self.timeline.now();
        self.recorder.begin(name, now)
    }

    /// Closes a span at the core's current completion horizon.
    pub fn span_end(&mut self, id: SpanId) {
        let now = self.timeline.now();
        self.recorder.end(id, now);
    }

    /// Closes a span at an explicit completion event — use when the
    /// interval of interest ends at an instruction's retire time rather
    /// than the core-wide horizon (e.g. a tile whose last `copy_out`
    /// completes on MTE3 while the vector engine has moved on).
    pub fn span_end_at(&mut self, id: SpanId, at: EventTime) {
        self.recorder.end(id, at);
    }

    /// Attaches argument payload (bytes moved, instruction kind, queue
    /// depth) to an open span; shown in the trace viewer.
    pub fn span_args(&mut self, id: SpanId, args: SpanArgs) {
        self.recorder.set_args(id, args);
    }

    /// Queue-occupancy counter sink (flushed by [`crate::TQue::destroy`]).
    pub(crate) fn push_counter(&mut self, name: &'static str, time: EventTime, value: u32) {
        self.counters.push((name, time, value));
    }

    /// Harvests this core's spans (closing any left open at `final_time`).
    pub(crate) fn take_spans(
        &mut self,
        block: u32,
        core: u32,
        final_time: EventTime,
    ) -> Vec<TraceSpan> {
        self.recorder.take(block, core, final_time)
    }

    /// Turns on happens-before event recording (launch machinery; on
    /// whenever profiling or post-launch audits are active). Purely
    /// observational — simulated time is unaffected.
    pub(crate) fn enable_hb(&mut self) {
        self.hb = HbRecorder::enabled();
    }

    /// A clone of the core's happens-before recorder sharing the same
    /// stream; handed to [`crate::TQue`] so queue hand-off events land in
    /// this core's program order.
    pub(crate) fn hb_recorder(&self) -> HbRecorder {
        self.hb.clone()
    }

    fn hb_record(&self, time: EventTime, what: &'static str, action: HbAction) {
        self.hb.record(time, what, action);
    }

    /// Harvests this core's happens-before events, stamped with identity.
    pub(crate) fn take_hb(&mut self, block: u32, core: u32) -> Vec<HbEvent> {
        self.hb.take(block, core)
    }

    /// Harvests this core's counter samples.
    pub(crate) fn take_counters(&mut self, block: u32, core: u32) -> Vec<CounterEvent> {
        self.counters
            .drain(..)
            .map(|(name, time, value)| CounterEvent {
                block,
                core,
                name,
                time,
                value,
            })
            .collect()
    }

    fn check_pos_on_core(&self, what: &'static str, pos: ScratchpadKind) -> SimResult<()> {
        let ok = match self.kind {
            CoreKind::Vector => pos == ScratchpadKind::Ub,
            CoreKind::Cube => pos != ScratchpadKind::Ub,
        };
        if ok {
            Ok(())
        } else {
            Err(SimError::WrongCore {
                instr: what,
                core: self.kind.name(),
            })
        }
    }

    // ---------------------------------------------------------------
    // Local memory management
    // ---------------------------------------------------------------

    /// Allocates a local tensor of `len` elements in the scratchpad `pos`,
    /// with capacity checking. Buffers live until [`Core::free_local`]
    /// (AscendC kernels allocate their buffers once up front via `TPipe`;
    /// the same style is used here).
    pub fn alloc_local<T: Element>(
        &mut self,
        pos: ScratchpadKind,
        len: usize,
    ) -> SimResult<LocalTensor<T>> {
        self.check_pos_on_core("alloc_local", pos)?;
        let bytes = len * T::SIZE;
        let idx = pad_index(pos);
        let cap = self.spec.scratchpad_capacity(pos);
        if self.scratch_used[idx] + bytes > cap {
            return Err(SimError::ScratchpadOverflow {
                buffer: pos.name(),
                requested: bytes,
                in_use: self.scratch_used[idx],
                capacity: cap,
            });
        }
        self.scratch_used[idx] += bytes;
        let mut t = LocalTensor::new(pos, len, 0);
        if self.spec.validation.lifetime_checks() {
            // Deterministic per-core id: unique across the launch's
            // cores (uid is unique per block/lane) and across this
            // core's program order, with no global counter involved.
            let id = (self.uid << 32) | self.next_alloc;
            self.next_alloc += 1;
            self.tracker.on_alloc(id, idx, pos.name(), bytes, cap);
            t.alloc_id = id;
            t.owner = self.uid;
            self.hb_record(
                self.timeline.now(),
                "alloc_local",
                HbAction::Alloc {
                    id,
                    bytes: bytes as u64,
                },
            );
        }
        Ok(t)
    }

    /// Releases a local tensor's scratchpad space. Freeing a buffer that
    /// was already freed (a stale clone) is a use-after-free error;
    /// freeing a sibling core's buffer is a cross-core aliasing error.
    pub fn free_local<T: Element>(&mut self, t: LocalTensor<T>) -> SimResult<()> {
        self.check_owner("free_local", t.owner)?;
        self.tracker.on_free(t.alloc_id, "free_local")?;
        if t.alloc_id != 0 {
            self.hb_record(
                self.timeline.now(),
                "free_local",
                HbAction::Free { id: t.alloc_id },
            );
        }
        let idx = pad_index(t.pos);
        self.scratch_used[idx] = self.scratch_used[idx].saturating_sub(t.len() * T::SIZE);
        Ok(())
    }

    /// Simcheck identity for cross-core ownership tracking.
    pub(crate) fn uid(&self) -> u64 {
        self.uid
    }

    /// Next deterministic queue id for the happens-before stream:
    /// unique across the launch's cores and this core's program order.
    pub(crate) fn next_queue_id(&mut self) -> u32 {
        let qid = ((self.uid as u32) << 10) | self.next_queue;
        self.next_queue += 1;
        qid
    }

    /// Simcheck: a local tensor is only addressable by the core whose
    /// scratchpad holds it. Real silicon has no path from one core's UB
    /// or L0/L1 into another's; data crosses cores via global memory.
    fn check_owner(&self, what: &'static str, owner: u64) -> SimResult<()> {
        if self.spec.validation.lifetime_checks() && owner != 0 && owner != self.uid {
            return Err(SimError::CrossCoreScratchpad {
                what,
                owner,
                user: self.uid,
            });
        }
        Ok(())
    }

    /// Simcheck: validates that `t` is still a live allocation of this
    /// core (no use-after-free, no overlap with a recycled range, no
    /// cross-core scratchpad aliasing).
    pub(crate) fn check_live<T: Element>(
        &self,
        what: &'static str,
        t: &LocalTensor<T>,
    ) -> SimResult<()> {
        self.check_owner(what, t.owner)?;
        self.tracker.check_use(t.alloc_id, what)
    }

    /// Bytes currently allocated in the given scratchpad.
    pub fn scratch_in_use(&self, pos: ScratchpadKind) -> usize {
        self.scratch_used[pad_index(pos)]
    }

    // ---------------------------------------------------------------
    // MTE transfers
    // ---------------------------------------------------------------

    /// `DataCopy` GM → local: moves `len` contiguous elements from
    /// `src[src_off..]` into `dst[dst_off..]` on the MTE2 engine.
    ///
    /// `deps` carries extra cross-core dependencies (e.g. the completion
    /// time of the producer that wrote `src` from another core).
    pub fn copy_in<T: Element>(
        &mut self,
        dst: &mut LocalTensor<T>,
        dst_off: usize,
        src: &GlobalTensor<T>,
        src_off: usize,
        len: usize,
        deps: &[EventTime],
    ) -> SimResult<EventTime> {
        self.check_pos_on_core("copy_in", dst.pos)?;
        self.check_live("copy_in dst", dst)?;
        dst.check_range("copy_in dst", dst_off, len)?;
        src.device_read(src_off, &mut dst.data[dst_off..dst_off + len])?;
        let cost = self.spec.cost_datacopy(len * T::SIZE);
        let mut all_deps = vec![dst.ready];
        all_deps.extend_from_slice(deps);
        let done = self.timeline.exec(EngineKind::Mte2, cost, &all_deps)?;
        let start = (src.region().offset + src_off * T::SIZE) as u64;
        self.hb_record(
            done,
            "copy_in",
            HbAction::GmRead {
                start,
                end: start + (len * T::SIZE) as u64,
            },
        );
        dst.ready = done;
        Ok(done)
    }

    /// `DataCopy` GM → local with a row stride on the global side: copies
    /// `rows` rows of `cols` elements each; row `r` starts at
    /// `src_off + r * src_stride` in `src` and lands contiguously in `dst`.
    #[allow(clippy::too_many_arguments)]
    pub fn copy_in_2d<T: Element>(
        &mut self,
        dst: &mut LocalTensor<T>,
        src: &GlobalTensor<T>,
        src_off: usize,
        rows: usize,
        cols: usize,
        src_stride: usize,
        deps: &[EventTime],
    ) -> SimResult<EventTime> {
        self.check_pos_on_core("copy_in_2d", dst.pos)?;
        self.check_live("copy_in_2d dst", dst)?;
        dst.check_range("copy_in_2d dst", 0, rows * cols)?;
        // Validate the full strided extent on the GM side up front, so a
        // bad stride errors before any partial row has been transferred.
        if rows > 0 {
            let last_start = src_off + (rows - 1) * src_stride;
            if last_start + cols > src.len() {
                return Err(SimError::OutOfBounds {
                    what: "copy_in_2d src",
                    offset: last_start * T::SIZE,
                    len: cols * T::SIZE,
                    region: src.len() * T::SIZE,
                });
            }
        }
        for r in 0..rows {
            src.device_read(
                src_off + r * src_stride,
                &mut dst.data[r * cols..(r + 1) * cols],
            )?;
        }
        // Strided rows pay line-granularity bandwidth: charge the wasted
        // part of each line both in time and in the traffic accounting.
        let row_bytes = cols * T::SIZE;
        let padded = self.spec.strided_row_bytes(row_bytes);
        if padded > row_bytes && src_stride != cols {
            src.account_read_padding((rows * (padded - row_bytes)) as u64);
        }
        let cost = if src_stride == cols {
            self.spec.cost_datacopy(rows * row_bytes)
        } else {
            self.spec.cost_datacopy_strided(rows, row_bytes)
        };
        let mut all_deps = vec![dst.ready];
        all_deps.extend_from_slice(deps);
        let done = self.timeline.exec(EngineKind::Mte2, cost, &all_deps)?;
        // Strided rows are recorded per row so the analyzer sees exact GM
        // byte ranges (a whole-span approximation would invent overlaps
        // with writes that land between the rows).
        if self.hb.is_enabled() && rows > 0 {
            let reg = src.region().offset;
            if src_stride == cols {
                let start = (reg + src_off * T::SIZE) as u64;
                self.hb_record(
                    done,
                    "copy_in_2d",
                    HbAction::GmRead {
                        start,
                        end: start + (rows * cols * T::SIZE) as u64,
                    },
                );
            } else {
                for r in 0..rows {
                    let start = (reg + (src_off + r * src_stride) * T::SIZE) as u64;
                    self.hb_record(
                        done,
                        "copy_in_2d",
                        HbAction::GmRead {
                            start,
                            end: start + (cols * T::SIZE) as u64,
                        },
                    );
                }
            }
        }
        dst.ready = done;
        Ok(done)
    }

    /// `DataCopy` local → GM with a row stride on the local side: writes
    /// `rows` rows of `cols` elements, where row `r` is read from
    /// `src[src_off + r * src_stride ..]` and lands contiguously in
    /// `dst[dst_off ..]`. One instruction; rows pay line-granularity
    /// bandwidth when strided (e.g. extracting the row-sum column of an
    /// L0C accumulator).
    #[allow(clippy::too_many_arguments)]
    pub fn copy_out_2d<T: Element>(
        &mut self,
        dst: &GlobalTensor<T>,
        dst_off: usize,
        src: &LocalTensor<T>,
        src_off: usize,
        rows: usize,
        cols: usize,
        src_stride: usize,
        deps: &[EventTime],
    ) -> SimResult<EventTime> {
        self.check_pos_on_core("copy_out_2d", src.pos)?;
        self.check_live("copy_out_2d src", src)?;
        // Validate both full extents before moving anything (see
        // copy_in_2d): no partial GM writes on a bad stride or offset.
        if rows > 0 {
            src.check_range("copy_out_2d src", src_off + (rows - 1) * src_stride, cols)?;
            if dst_off + rows * cols > dst.len() {
                return Err(SimError::OutOfBounds {
                    what: "copy_out_2d dst",
                    offset: dst_off * T::SIZE,
                    len: rows * cols * T::SIZE,
                    region: dst.len() * T::SIZE,
                });
            }
        }
        for r in 0..rows {
            src.check_range("copy_out_2d src", src_off + r * src_stride, cols)?;
            let start = src_off + r * src_stride;
            dst.device_write(dst_off + r * cols, &src.data[start..start + cols])?;
        }
        let engine = if src.pos == ScratchpadKind::L0C {
            EngineKind::Fixp
        } else {
            EngineKind::Mte3
        };
        let row_bytes = cols * T::SIZE;
        let cost = if src_stride == cols {
            self.spec.cost_datacopy(rows * row_bytes)
        } else {
            self.spec.cost_datacopy_strided(rows, row_bytes)
        };
        let mut all_deps = vec![src.ready];
        all_deps.extend_from_slice(deps);
        let done = self.timeline.exec(engine, cost, &all_deps)?;
        let start = (dst.region().offset + dst_off * T::SIZE) as u64;
        self.hb_record(
            done,
            "copy_out_2d",
            HbAction::GmWrite {
                start,
                end: start + (rows * cols * T::SIZE) as u64,
            },
        );
        Ok(done)
    }

    /// `DataCopy` local → GM on MTE3 (UB/L1 sources) or the FIXP pipe
    /// (L0C sources). Returns the completion time — pass it to another
    /// core's `deps` to model cross-core hand-off through global memory.
    pub fn copy_out<T: Element>(
        &mut self,
        dst: &GlobalTensor<T>,
        dst_off: usize,
        src: &LocalTensor<T>,
        src_off: usize,
        len: usize,
        deps: &[EventTime],
    ) -> SimResult<EventTime> {
        self.check_pos_on_core("copy_out", src.pos)?;
        self.check_live("copy_out src", src)?;
        src.check_range("copy_out src", src_off, len)?;
        dst.device_write(dst_off, &src.data[src_off..src_off + len])?;
        let engine = if src.pos == ScratchpadKind::L0C {
            EngineKind::Fixp
        } else {
            EngineKind::Mte3
        };
        let cost = self.spec.cost_datacopy(len * T::SIZE);
        let mut all_deps = vec![src.ready];
        all_deps.extend_from_slice(deps);
        let done = self.timeline.exec(engine, cost, &all_deps)?;
        let start = (dst.region().offset + dst_off * T::SIZE) as u64;
        self.hb_record(
            done,
            "copy_out",
            HbAction::GmWrite {
                start,
                end: start + (len * T::SIZE) as u64,
            },
        );
        Ok(done)
    }

    /// `DataCopy` local → GM with dtype conversion on the way out (the
    /// FIXP pipe's quantization path, e.g. f32 accumulator → f16 result).
    pub fn copy_out_cast<S: Numeric, D: Numeric>(
        &mut self,
        dst: &GlobalTensor<D>,
        dst_off: usize,
        src: &LocalTensor<S>,
        src_off: usize,
        len: usize,
        deps: &[EventTime],
    ) -> SimResult<EventTime> {
        self.check_pos_on_core("copy_out_cast", src.pos)?;
        self.check_live("copy_out_cast src", src)?;
        src.check_range("copy_out_cast src", src_off, len)?;
        let converted: Vec<D> = src.data[src_off..src_off + len]
            .iter()
            .map(|v| D::from_f64(v.to_f64()))
            .collect();
        dst.device_write(dst_off, &converted)?;
        let engine = if src.pos == ScratchpadKind::L0C {
            EngineKind::Fixp
        } else {
            EngineKind::Mte3
        };
        let cost = self.spec.cost_datacopy(len * D::SIZE.max(S::SIZE));
        let mut all_deps = vec![src.ready];
        all_deps.extend_from_slice(deps);
        let done = self.timeline.exec(engine, cost, &all_deps)?;
        let start = (dst.region().offset + dst_off * D::SIZE) as u64;
        self.hb_record(
            done,
            "copy_out_cast",
            HbAction::GmWrite {
                start,
                end: start + (len * D::SIZE) as u64,
            },
        );
        Ok(done)
    }

    /// Local → local copy: L1 → L0A/L0B rides MTE1 (cube cores); UB → UB
    /// rides the vector engine (vector cores).
    pub fn copy_local<T: Element>(
        &mut self,
        dst: &mut LocalTensor<T>,
        dst_off: usize,
        src: &LocalTensor<T>,
        src_off: usize,
        len: usize,
    ) -> SimResult<EventTime> {
        self.check_pos_on_core("copy_local", dst.pos)?;
        self.check_pos_on_core("copy_local", src.pos)?;
        self.check_live("copy_local dst", dst)?;
        self.check_live("copy_local src", src)?;
        dst.check_range("copy_local dst", dst_off, len)?;
        src.check_range("copy_local src", src_off, len)?;
        let (engine, cost) = match self.kind {
            CoreKind::Cube => (EngineKind::Mte1, self.spec.cost_datacopy(len * T::SIZE)),
            CoreKind::Vector => (EngineKind::Vec, self.spec.cost_vector_op(len * T::SIZE)),
        };
        dst.data[dst_off..dst_off + len].copy_from_slice(&src.data[src_off..src_off + len]);
        let done = self.timeline.exec(engine, cost, &[dst.ready, src.ready])?;
        dst.ready = done;
        Ok(done)
    }

    /// Local → local copy with dtype conversion (L0C f32 → L1 f16 staging
    /// used by ScanUL1's `Copy C1 from L0C to L1`).
    pub fn copy_local_cast<S: Numeric, D: Numeric>(
        &mut self,
        dst: &mut LocalTensor<D>,
        dst_off: usize,
        src: &LocalTensor<S>,
        src_off: usize,
        len: usize,
    ) -> SimResult<EventTime> {
        self.check_pos_on_core("copy_local_cast", dst.pos)?;
        self.check_pos_on_core("copy_local_cast", src.pos)?;
        self.check_live("copy_local_cast dst", dst)?;
        self.check_live("copy_local_cast src", src)?;
        dst.check_range("copy_local_cast dst", dst_off, len)?;
        src.check_range("copy_local_cast src", src_off, len)?;
        for i in 0..len {
            dst.data[dst_off + i] = D::from_f64(src.data[src_off + i].to_f64());
        }
        let engine = if src.pos == ScratchpadKind::L0C {
            EngineKind::Fixp
        } else if self.kind == CoreKind::Cube {
            EngineKind::Mte1
        } else {
            EngineKind::Vec
        };
        let cost = self.spec.cost_datacopy(len * S::SIZE.max(D::SIZE));
        let done = self.timeline.exec(engine, cost, &[dst.ready, src.ready])?;
        dst.ready = done;
        Ok(done)
    }

    /// Fills `t[off..off+len]` with a constant (AscendC `InitConstValue`
    /// for L0/L1 buffers, `Duplicate` for UB). Used to zero-pad partial
    /// tiles before a matmul.
    pub fn fill_local<T: Element>(
        &mut self,
        t: &mut LocalTensor<T>,
        off: usize,
        len: usize,
        value: T,
    ) -> SimResult<EventTime> {
        self.check_pos_on_core("fill_local", t.pos)?;
        self.check_live("fill_local", t)?;
        t.check_range("fill_local", off, len)?;
        for v in &mut t.data[off..off + len] {
            *v = value;
        }
        let (engine, cost) = match self.kind {
            CoreKind::Cube => (EngineKind::Mte2, self.spec.cost_datacopy(len * T::SIZE)),
            CoreKind::Vector => (EngineKind::Vec, self.spec.cost_vector_op(len * T::SIZE)),
        };
        let done = self.timeline.exec(engine, cost, &[t.ready])?;
        t.ready = done;
        Ok(done)
    }

    // ---------------------------------------------------------------
    // Cube engine
    // ---------------------------------------------------------------

    /// `Mmad`: `C (+)= A @ B` on the cube engine, where `A` is an
    /// `m x k` row-major tile in L0A, `B` a `k x n` tile in L0B, and `C`
    /// an `m x n` tile in L0C holding the accumulator type.
    ///
    /// With `accumulate = false` the output is overwritten, with `true`
    /// the product is added into the existing accumulator contents (the
    /// cube unit's accumulation-buffer feature exploited by ScanUL1).
    ///
    /// The functional result uses exact widening MACs (fp16 → f32,
    /// int8 → i32) with `k` ascending, matching the hardware datapath.
    #[allow(clippy::too_many_arguments)]
    pub fn mmad<T: CubeInput>(
        &mut self,
        c: &mut LocalTensor<T::Acc>,
        a: &mut LocalTensor<T>,
        b: &mut LocalTensor<T>,
        m: usize,
        k: usize,
        n: usize,
        accumulate: bool,
    ) -> SimResult<EventTime> {
        if self.kind != CoreKind::Cube {
            return Err(SimError::WrongCore {
                instr: "Mmad",
                core: self.kind.name(),
            });
        }
        if a.pos != ScratchpadKind::L0A
            || b.pos != ScratchpadKind::L0B
            || c.pos != ScratchpadKind::L0C
        {
            return Err(SimError::InvalidArgument(format!(
                "Mmad operands must be in L0A/L0B/L0C (got {}/{}/{})",
                a.pos.name(),
                b.pos.name(),
                c.pos.name()
            )));
        }
        self.check_live("Mmad A", a)?;
        self.check_live("Mmad B", b)?;
        self.check_live("Mmad C", c)?;
        a.check_range("Mmad A", 0, m * k)?;
        b.check_range("Mmad B", 0, k * n)?;
        c.check_range("Mmad C", 0, m * n)?;

        mmad_functional::<T>(&mut c.data, &a.data, &b.data, m, k, n, accumulate);

        let cost = self.spec.cost_mmad(m, k, n, T::CUBE_RATE_X4);
        let done = self
            .timeline
            .exec(EngineKind::Cube, cost, &[a.ready, b.ready, c.ready])?;
        c.ready = done;
        // Mark the inputs busy until the multiply retires: a subsequent
        // reload of a single-buffered L0A/L0B operand (ScanUL1's Line 9
        // and Line 11) must serialize behind this use (WAR hazard).
        a.ready = done;
        b.ready = done;
        Ok(done)
    }

    // ---------------------------------------------------------------
    // Scalar unit
    // ---------------------------------------------------------------

    /// Runs `n` scalar-unit operations (loop control, address/partial-sum
    /// arithmetic) after `deps`. Returns the completion time.
    pub fn scalar_ops(&mut self, n: u64, deps: &[EventTime]) -> SimResult<EventTime> {
        self.timeline
            .exec(EngineKind::Scalar, n * self.spec.cost_scalar_op(), deps)
    }

    // ---------------------------------------------------------------
    // Cross-core flags
    // ---------------------------------------------------------------

    /// `CrossCoreSetFlag`: publishes flag `id` in the block's
    /// [`FlagFile`](crate::BlockCtx::flags) once `after` (plus the
    /// core's pending scalar work) retires. Costs
    /// [`flag_set_cycles`](ChipSpec::flag_set_cycles) on the scalar
    /// pipe — the pipe-drain and publish latency. Each id is a counting
    /// semaphore: repeated sets queue up and are consumed in FIFO order
    /// by [`Core::wait_flag`], so a producer may run several hand-offs
    /// ahead of its consumer on one id. Ids at or beyond
    /// [`ChipSpec::flag_id_limit`] are rejected — real silicon has a
    /// small fixed flag register file. Returns the cycle at which the
    /// flag becomes observable to sibling cores.
    pub fn set_flag(
        &mut self,
        flags: &FlagFile,
        id: u32,
        after: &[EventTime],
    ) -> SimResult<EventTime> {
        let done = self
            .timeline
            .exec(EngineKind::FLAG_ENGINE, self.spec.flag_set_cycles, after)?;
        let token = flags.set(id, done)?;
        self.hb_record(done, "CrossCoreSetFlag", HbAction::FlagSet { id, token });
        Ok(done)
    }

    /// `CrossCoreWaitFlag`: blocks this core until the oldest pending
    /// set on flag `id` is observable (FIFO; each wait consumes one
    /// set). The set propagates across the mesh and becomes visible to
    /// sibling cores [`flag_wait_cycles`](ChipSpec::flag_wait_cycles)
    /// after it was published — the same arrival edge `SyncAll` uses.
    /// The wait itself occupies one scalar slot
    /// ([`flag_set_cycles`](ChipSpec::flag_set_cycles), a register
    /// poll); a consumer arriving after the edge resumes immediately,
    /// while one arriving early idles with the gap attributed to the
    /// `wait:flag` stall category. Returns the core's resumption time.
    ///
    /// Waiting on a flag with no pending set is an error: with the
    /// deterministic schedule the set can never arrive later, so the
    /// wait models a hardware deadlock.
    pub fn wait_flag(&mut self, flags: &FlagFile, id: u32) -> SimResult<EventTime> {
        let Some((set_at, token)) = flags.consume(id)? else {
            return Err(SimError::InvalidArgument(format!(
                "CrossCoreWaitFlag on unset flag {id}: no prior CrossCoreSetFlag \
                 is scheduled, so the wait would deadlock on hardware"
            )));
        };
        self.timeline
            .exec(EngineKind::FLAG_ENGINE, self.spec.flag_set_cycles, &[])?;
        self.timeline
            .align_to_cause(set_at + self.spec.flag_wait_cycles, StallCause::Flag);
        let now = self.timeline.now();
        self.hb_record(now, "CrossCoreWaitFlag", HbAction::FlagWait { id, token });
        Ok(now)
    }

    // ---------------------------------------------------------------
    // Grid flags (launch-wide mailboxes)
    // ---------------------------------------------------------------

    /// Publishes launch-wide grid flag `id` on the [`Scheduler`]'s grid
    /// registry once `after` (plus the core's pending scalar work)
    /// retires. Same price as [`Core::set_flag`]
    /// ([`flag_set_cycles`](ChipSpec::flag_set_cycles) on the scalar
    /// pipe) — on silicon both are a pipe drain followed by a GM/mesh
    /// store the sibling can observe. Unlike per-block flags, grid
    /// flags are visible to *every* block in the launch: they guard
    /// the per-block GM mailboxes of chained look-back scans. Each id
    /// is a FIFO counting semaphore within the same
    /// [`flag_id_limit`](ChipSpec::flag_id_limit) id space. Returns
    /// the cycle at which the flag becomes observable.
    pub fn set_grid_flag(
        &mut self,
        sched: &Scheduler,
        id: u32,
        after: &[EventTime],
    ) -> SimResult<EventTime> {
        let done = self
            .timeline
            .exec(EngineKind::FLAG_ENGINE, self.spec.flag_set_cycles, after)?;
        let token = sched.grid_set(self.block, id, done)?;
        self.hb_record(done, "GridSetFlag", HbAction::GridFlagSet { id, token });
        Ok(done)
    }

    /// Blocks this core until the oldest pending set on grid flag `id`
    /// is observable (FIFO; each wait consumes one set). Propagation
    /// and occupancy match [`Core::wait_flag`]: the set becomes
    /// visible [`flag_wait_cycles`](ChipSpec::flag_wait_cycles) after
    /// publication, the wait occupies one scalar slot, and any idle
    /// gap is attributed to `wait:flag`. Returns the core's
    /// resumption time.
    ///
    /// Waiting on a grid flag with no pending set is an error: blocks
    /// run in ascending-index waves, so only *backward* look-back
    /// (waiting on a flag a lower-indexed block already published) is
    /// supported — a forward wait could never be satisfied and models
    /// a hardware deadlock.
    pub fn wait_grid_flag(&mut self, sched: &Scheduler, id: u32) -> SimResult<EventTime> {
        let Some((set_at, token)) = sched.grid_consume(self.block, id)? else {
            return Err(SimError::InvalidArgument(format!(
                "GridWaitFlag on unset grid flag {id}: blocks execute in \
                 ascending-index waves, so only backward look-back (on a flag \
                 a lower-indexed block has already published) can ever be \
                 satisfied — this wait would deadlock on hardware"
            )));
        };
        self.timeline
            .exec(EngineKind::FLAG_ENGINE, self.spec.flag_set_cycles, &[])?;
        self.timeline
            .align_to_cause(set_at + self.spec.flag_wait_cycles, StallCause::Flag);
        let now = self.timeline.now();
        self.hb_record(now, "GridWaitFlag", HbAction::GridFlagWait { id, token });
        Ok(now)
    }
}

/// Functional matmul with structure-aware fast paths.
///
/// The scan kernels only ever multiply data tiles against the constant
/// matrices `U_s` (upper-triangular ones), `1_s` (all ones) and `L_s^-`
/// (strictly-lower-triangular ones). Detecting those patterns turns the
/// O(m·k·n) kernel into an O(m·n) prefix-sum/broadcast — a pure simulator
/// speed-up with bit-identical results, since the fast paths accumulate in
/// the same (`k` ascending) order as the general loop.
fn mmad_functional<T: CubeInput>(
    c: &mut [T::Acc],
    a: &[T],
    b: &[T],
    m: usize,
    k: usize,
    n: usize,
    accumulate: bool,
) {
    if !accumulate {
        for slot in c[..m * n].iter_mut() {
            *slot = T::Acc::zero();
        }
    }
    // Fast path 1: B is upper-triangular ones (incl. diagonal), k == n.
    // C[i][j] += sum_{p <= j} A[i][p]  — row-wise inclusive prefix sums.
    if k == n && is_upper_ones(b, k) {
        for i in 0..m {
            let mut run = T::Acc::zero();
            for j in 0..n {
                run = run.add(a[i * k + j].widen());
                c[i * n + j] = c[i * n + j].add(run);
            }
        }
        return;
    }
    // Fast path 2: B is all ones. C[i][j] += rowsum(A[i]).
    if is_all_ones(b, k * n) {
        for i in 0..m {
            let mut run = T::Acc::zero();
            for p in 0..k {
                run = run.add(a[i * k + p].widen());
            }
            for j in 0..n {
                c[i * n + j] = c[i * n + j].add(run);
            }
        }
        return;
    }
    // Fast path 3: A is strictly-lower-triangular ones, m == k.
    // C[i][j] += sum_{p < i} B[p][j] — column-wise exclusive prefix sums.
    if m == k && is_strict_lower_ones(a, m) {
        let mut run = vec![T::Acc::zero(); n];
        for i in 0..m {
            for j in 0..n {
                c[i * n + j] = c[i * n + j].add(run[j]);
            }
            if i + 1 < m {
                for j in 0..n {
                    run[j] = run[j].add(b[i * n + j].widen());
                }
            }
        }
        return;
    }
    // General path.
    for i in 0..m {
        for p in 0..k {
            let av = a[i * k + p];
            for j in 0..n {
                c[i * n + j] = c[i * n + j].add(T::mac(av, b[p * n + j]));
            }
        }
    }
}

fn is_upper_ones<T: Numeric>(b: &[T], s: usize) -> bool {
    if b.len() < s * s {
        return false;
    }
    for i in 0..s {
        for j in 0..s {
            let expect = if i <= j { T::one() } else { T::zero() };
            if b[i * s + j] != expect {
                return false;
            }
        }
    }
    true
}

fn is_all_ones<T: Numeric>(b: &[T], len: usize) -> bool {
    b.len() >= len && b[..len].iter().all(|&v| v == T::one())
}

fn is_strict_lower_ones<T: Numeric>(a: &[T], s: usize) -> bool {
    if a.len() < s * s {
        return false;
    }
    for i in 0..s {
        for j in 0..s {
            let expect = if i > j { T::one() } else { T::zero() };
            if a[i * s + j] != expect {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtypes::F16;

    /// Reference matmul: plain triple loop, no fast paths.
    fn reference<T: CubeInput>(a: &[T], b: &[T], m: usize, k: usize, n: usize) -> Vec<T::Acc> {
        let mut c = vec![T::Acc::zero(); m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = T::Acc::zero();
                for p in 0..k {
                    acc = acc.add(T::mac(a[i * k + p], b[p * n + j]));
                }
                c[i * n + j] = acc;
            }
        }
        c
    }

    fn upper_ones_i8(s: usize) -> Vec<i8> {
        (0..s * s)
            .map(|idx| if idx / s <= idx % s { 1 } else { 0 })
            .collect()
    }

    fn strict_lower_ones_i8(s: usize) -> Vec<i8> {
        (0..s * s)
            .map(|idx| if idx / s > idx % s { 1 } else { 0 })
            .collect()
    }

    #[test]
    fn fast_path_upper_ones_matches_reference() {
        let s = 8;
        let a: Vec<i8> = (0..s * s).map(|i| (i % 7) as i8 - 3).collect();
        let b = upper_ones_i8(s);
        let mut c = vec![0i32; s * s];
        mmad_functional::<i8>(&mut c, &a, &b, s, s, s, false);
        assert_eq!(c, reference::<i8>(&a, &b, s, s, s));
    }

    #[test]
    fn fast_path_all_ones_matches_reference() {
        let s = 8;
        let a: Vec<i8> = (0..s * s).map(|i| (i % 5) as i8).collect();
        let b = vec![1i8; s * s];
        let mut c = vec![0i32; s * s];
        mmad_functional::<i8>(&mut c, &a, &b, s, s, s, false);
        assert_eq!(c, reference::<i8>(&a, &b, s, s, s));
    }

    #[test]
    fn fast_path_strict_lower_matches_reference() {
        let s = 8;
        let a = strict_lower_ones_i8(s);
        let b: Vec<i8> = (0..s * s).map(|i| (i % 9) as i8 - 4).collect();
        let mut c = vec![0i32; s * s];
        mmad_functional::<i8>(&mut c, &a, &b, s, s, s, false);
        assert_eq!(c, reference::<i8>(&a, &b, s, s, s));
    }

    #[test]
    fn general_path_and_accumulate() {
        let (m, k, n) = (3, 4, 5);
        let a: Vec<i8> = (0..m * k).map(|i| i as i8).collect();
        let b: Vec<i8> = (0..k * n).map(|i| (i as i8) - 6).collect();
        let mut c = vec![0i32; m * n];
        mmad_functional::<i8>(&mut c, &a, &b, m, k, n, false);
        let expect = reference::<i8>(&a, &b, m, k, n);
        assert_eq!(c, expect);
        // Accumulate doubles the result.
        mmad_functional::<i8>(&mut c, &a, &b, m, k, n, true);
        let doubled: Vec<i32> = expect.iter().map(|v| v * 2).collect();
        assert_eq!(c, doubled);
    }

    #[test]
    fn fp16_matmul_widens_to_f32() {
        let s = 4;
        let a: Vec<F16> = (0..s * s).map(|i| F16::from_f32(i as f32 * 0.5)).collect();
        let b: Vec<F16> = (0..s * s)
            .map(|i| if i / s <= i % s { F16::ONE } else { F16::ZERO })
            .collect();
        let mut c = vec![0f32; s * s];
        mmad_functional::<F16>(&mut c, &a, &b, s, s, s, false);
        assert_eq!(c, reference::<F16>(&a, &b, s, s, s));
        // Row 0 of A is [0, .5, 1, 1.5]; prefix sums: [0, .5, 1.5, 3].
        assert_eq!(&c[..4], &[0.0, 0.5, 1.5, 3.0]);
    }

    #[test]
    fn pattern_detectors() {
        assert!(is_upper_ones(&upper_ones_i8(5), 5));
        assert!(!is_upper_ones(&strict_lower_ones_i8(5), 5));
        assert!(is_strict_lower_ones(&strict_lower_ones_i8(5), 5));
        assert!(!is_strict_lower_ones(&upper_ones_i8(5), 5));
        assert!(is_all_ones(&[1i8; 10], 10));
        assert!(!is_all_ones(&upper_ones_i8(3), 9));
    }
}
