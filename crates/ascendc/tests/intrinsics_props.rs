//! Property tests for the AscendC intrinsics: functional semantics
//! against host references, and timing-model invariants that every
//! kernel relies on.

use ascend_sim::{ChipSpec, EngineKind};
use ascendc::{launch, launch_traced, GlobalTensor, ScratchpadKind};
use dtypes::F16;
use proptest::prelude::*;
use std::sync::Arc;

fn setup() -> (ChipSpec, Arc<ascend_sim::mem::GlobalMemory>) {
    let spec = ChipSpec::tiny();
    let gm = Arc::new(ascend_sim::mem::GlobalMemory::new(spec.hbm_capacity));
    (spec, gm)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn roundtrip_through_ub_preserves_data(data in proptest::collection::vec(any::<u16>(), 1..2000)) {
        let (spec, gm) = setup();
        let x = GlobalTensor::from_slice(&gm, &data).unwrap();
        let y = GlobalTensor::<u16>::new(&gm, data.len()).unwrap();
        launch(&spec, &gm, 1, "rt", |ctx| {
            let v = &mut ctx.vecs[0];
            let n = x.len();
            let mut buf = v.alloc_local::<u16>(ScratchpadKind::Ub, n.min(2048))?;
            let mut off = 0;
            while off < n {
                let len = buf.len().min(n - off);
                v.copy_in(&mut buf, 0, &x, off, len, &[])?;
                v.copy_out(&y, off, &buf, 0, len, &[])?;
                off += len;
            }
            Ok(())
        })
        .unwrap();
        prop_assert_eq!(y.to_vec(), data);
    }

    #[test]
    fn gather_mask_is_a_filter(
        data in proptest::collection::vec(any::<u16>(), 1..1000),
        seed in any::<u64>(),
    ) {
        let (spec, gm) = setup();
        let mask: Vec<u8> = data
            .iter()
            .enumerate()
            .map(|(i, _)| ((seed >> (i % 61)) & 1) as u8)
            .collect();
        let x = GlobalTensor::from_slice(&gm, &data).unwrap();
        let m = GlobalTensor::from_slice(&gm, &mask).unwrap();
        let out = GlobalTensor::<u16>::new(&gm, data.len()).unwrap();
        let count = GlobalTensor::<u32>::new(&gm, 1).unwrap();
        launch(&spec, &gm, 1, "gm", |ctx| {
            let v = &mut ctx.vecs[0];
            let n = x.len();
            let mut vb = v.alloc_local::<u16>(ScratchpadKind::Ub, n)?;
            let mut mb = v.alloc_local::<u8>(ScratchpadKind::Ub, n)?;
            let mut ob = v.alloc_local::<u16>(ScratchpadKind::Ub, n)?;
            v.copy_in(&mut vb, 0, &x, 0, n, &[])?;
            v.copy_in(&mut mb, 0, &m, 0, n, &[])?;
            let (c, _) = v.gather_mask(&mut ob, &vb, &mb, 0, n)?;
            if c > 0 {
                v.copy_out(&out, 0, &ob, 0, c, &[])?;
            }
            let mut cb = v.alloc_local::<u32>(ScratchpadKind::Ub, 1)?;
            v.insert(&mut cb, 0, c as u32, 0)?;
            v.copy_out(&count, 0, &cb, 0, 1, &[])?;
            Ok(())
        })
        .unwrap();
        let expect: Vec<u16> = data
            .iter()
            .zip(&mask)
            .filter(|&(_, &mk)| mk != 0)
            .map(|(&v, _)| v)
            .collect();
        let c = count.to_vec()[0] as usize;
        prop_assert_eq!(c, expect.len());
        prop_assert_eq!(&out.to_vec()[..c], &expect[..]);
    }

    #[test]
    fn strided_copy_reads_the_right_rows(
        rows in 1usize..20,
        cols in 1usize..8,
        stride_extra in 0usize..8,
    ) {
        let (spec, gm) = setup();
        let stride = cols + stride_extra;
        let total = rows * stride + cols;
        let data: Vec<u16> = (0..total as u16).collect();
        let x = GlobalTensor::from_slice(&gm, &data).unwrap();
        let y = GlobalTensor::<u16>::new(&gm, rows * cols).unwrap();
        launch(&spec, &gm, 1, "strided", |ctx| {
            let v = &mut ctx.vecs[0];
            let mut buf = v.alloc_local::<u16>(ScratchpadKind::Ub, rows * cols)?;
            v.copy_in_2d(&mut buf, &x, 0, rows, cols, stride, &[])?;
            v.copy_out(&y, 0, &buf, 0, rows * cols, &[])?;
            Ok(())
        })
        .unwrap();
        let got = y.to_vec();
        for r in 0..rows {
            for c in 0..cols {
                prop_assert_eq!(got[r * cols + c], (r * stride + c) as u16);
            }
        }
    }

    #[test]
    fn timing_is_monotone_in_work(n1 in 64usize..512, extra in 1usize..512) {
        let (spec, gm) = setup();
        let time_for = |n: usize| {
            let data = vec![F16::ONE; n];
            let x = GlobalTensor::from_slice(&gm, &data).unwrap();
            let y = GlobalTensor::<F16>::new(&gm, n).unwrap();
            launch(&spec, &gm, 1, "w", |ctx| {
                let v = &mut ctx.vecs[0];
                let mut buf = v.alloc_local::<F16>(ScratchpadKind::Ub, n)?;
                v.copy_in(&mut buf, 0, &x, 0, n, &[])?;
                v.vadds(&mut buf, 0, n, F16::ONE, 0)?;
                v.copy_out(&y, 0, &buf, 0, n, &[])?;
                Ok(())
            })
            .unwrap()
            .cycles
        };
        prop_assert!(time_for(n1 + extra) >= time_for(n1));
    }
}

#[test]
fn traced_launch_matches_untraced_timing() {
    let (spec, gm) = setup();
    let data: Vec<u16> = (0..4096).collect();
    let x = GlobalTensor::from_slice(&gm, &data).unwrap();
    let y = GlobalTensor::<u16>::new(&gm, 4096).unwrap();
    let kernel = |ctx: &mut ascendc::BlockCtx<'_>| {
        // Each block owns one 2048-element half of the output.
        let piece = ctx.block_idx as usize;
        let v = &mut ctx.vecs[0];
        let mut buf = v.alloc_local::<u16>(ScratchpadKind::Ub, 2048)?;
        v.copy_in(&mut buf, 0, &x, piece * 2048, 2048, &[])?;
        v.vshr(&mut buf, 0, 2048, 1)?;
        v.copy_out(&y, piece * 2048, &buf, 0, 2048, &[])?;
        Ok(())
    };
    let plain = launch(&spec, &gm, 2, "t", kernel).unwrap();
    let (traced, events) = launch_traced(&spec, &gm, 2, "t", kernel).unwrap();
    assert_eq!(
        plain.cycles, traced.cycles,
        "tracing must not change timing"
    );
    assert!(!events.is_empty());
    // Every event is well-formed and within the kernel's span.
    for e in &events {
        assert!(e.start <= e.end);
        assert!(e.end <= traced.cycles);
        assert!(e.block < 2);
    }
    // Both blocks and several engines appear.
    assert!(events.iter().any(|e| e.block == 1));
    assert!(events.iter().any(|e| e.engine == EngineKind::Vec));
    assert!(events.iter().any(|e| e.engine == EngineKind::Mte2));
    // The chrome export consumes them.
    let json = ascend_sim::trace::to_chrome_json(&events, spec.clock_ghz);
    assert!(json.contains("traceEvents"));
}

#[test]
fn strided_copy_charges_line_granularity() {
    let (spec, gm) = setup();
    // tiny chip: 32-byte lines. Reading 64 strided u16 elements (2 B
    // rows) must charge 64 lines = 2048 B, not 128 B.
    let data: Vec<u16> = (0..4096).collect();
    let x = GlobalTensor::from_slice(&gm, &data).unwrap();
    let before = gm.bytes_read();
    launch(&spec, &gm, 1, "strided-cost", |ctx| {
        let v = &mut ctx.vecs[0];
        let mut buf = v.alloc_local::<u16>(ScratchpadKind::Ub, 64)?;
        v.copy_in_2d(&mut buf, &x, 0, 64, 1, 64, &[])?;
        Ok(())
    })
    .unwrap();
    let read = gm.bytes_read() - before;
    assert_eq!(read, 64 * 32, "each strided row drags a full line");
}
