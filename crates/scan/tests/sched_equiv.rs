//! Serial/parallel scheduler equivalence gate.
//!
//! The simulator ships two host scheduling disciplines
//! ([`ascend_sim::SchedPolicy`]): the cooperative serial baton and the
//! parallel-round scheduler that steps runnable blocks on worker
//! threads and commits side effects in block-index order. Both must
//! produce **byte-identical** [`ascendc::KernelReport`]s — timing,
//! traffic, stall attribution and the Full-validation critical-path
//! audit are all part of the contract, so the comparison is on the
//! serialized `report.to_json(&spec)` string, not on selected fields.
//!
//! Two layers of coverage:
//!
//! * every shipped scan kernel (ScanU, ScanUL1, MCScan, ScanC, the
//!   vector-only baseline and the batched scan), including a ScanC
//!   shape whose look-back chain spans scheduling waves;
//! * a proptest over random tiny-chip schedules — oversubscribed
//!   grids, a random number of `SyncAll` rounds, per-block work that
//!   varies by seed, and an optional cross-block grid-flag chain.
//!
//! Each launch pins its discipline through
//! [`ChipSpec::with_scheduler`] rather than the `ASCEND_SCHED`
//! environment variable, so the two runs never race on process state.

use ascend_sim::mem::GlobalMemory;
use ascend_sim::SchedPolicy;
use ascendc::{launch, BlockCtx, ChipSpec, GlobalTensor, ScratchpadKind, SimResult};
use dtypes::F16;
use proptest::prelude::*;
use scan::{
    batched_scanu, cumsum_vec_only, mcscan, scanc, scanu, scanul1, McScanConfig, ScanCConfig,
    ScanKind,
};
use std::sync::Arc;

/// Runs `f` once per scheduling discipline on its own fresh device and
/// returns the two serialized reports. The tiny chip's default
/// `ValidationMode::Full` stays on, so the simcheck audits and the
/// critical-path section must also agree byte for byte.
fn both_schedulers(f: impl Fn(&ChipSpec, &Arc<GlobalMemory>) -> String) -> (String, String) {
    let run = |policy: SchedPolicy| {
        let spec = ChipSpec::tiny().with_scheduler(policy);
        let gm = Arc::new(GlobalMemory::new(spec.hbm_capacity));
        f(&spec, &gm)
    };
    (run(SchedPolicy::Serial), run(SchedPolicy::Parallel))
}

fn assert_equiv(name: &str, f: impl Fn(&ChipSpec, &Arc<GlobalMemory>) -> String) {
    let (serial, parallel) = both_schedulers(f);
    assert_eq!(
        serial, parallel,
        "{name}: serial and parallel schedulers must report byte-identically"
    );
    assert!(
        serial.contains("\"critical_path\""),
        "{name}: Full validation should have audited the launch"
    );
}

fn signal(n: usize) -> Vec<i8> {
    (0..n).map(|i| ((i * 7) % 11) as i8 - 5).collect()
}

// ---------------------------------------------------------------------
// The six shipped kernels.
// ---------------------------------------------------------------------

#[test]
fn scanu_reports_identically_under_both_schedulers() {
    assert_equiv("ScanU", |spec, gm| {
        let x = GlobalTensor::from_slice(gm, &signal(3000)).unwrap();
        let run = scanu::<i8, i32>(spec, gm, &x, 16).unwrap();
        run.report.to_json(spec)
    });
}

#[test]
fn scanul1_reports_identically_under_both_schedulers() {
    assert_equiv("ScanUL1", |spec, gm| {
        let x = GlobalTensor::from_slice(gm, &signal(3000)).unwrap();
        let run = scanul1::<i8, i32>(spec, gm, &x, 16).unwrap();
        run.report.to_json(spec)
    });
}

#[test]
fn mcscan_reports_identically_under_both_schedulers() {
    assert_equiv("MCScan", |spec, gm| {
        let x = GlobalTensor::from_slice(gm, &signal(3000)).unwrap();
        let cfg = McScanConfig {
            s: 16,
            blocks: 2,
            kind: ScanKind::Inclusive,
        };
        let run = mcscan::<i8, i32, i32>(spec, gm, &x, cfg).unwrap();
        run.report.to_json(spec)
    });
}

#[test]
fn scanc_chain_spanning_waves_reports_identically() {
    assert_equiv("ScanC", |spec, gm| {
        let x = GlobalTensor::from_slice(gm, &signal(3000)).unwrap();
        // tpl=1 → 12 lanes → 6 blocks on 2 AI cores: the grid
        // oversubscribes and the look-back chain spans waves, the
        // hardest case for the parallel scheduler's grid-op gating.
        let cfg = ScanCConfig {
            s: 16,
            tiles_per_lane: 1,
        };
        let run = scanc::<i8, i16, i32>(spec, gm, &x, cfg).unwrap();
        assert!(run.report.blocks > spec.ai_cores);
        run.report.to_json(spec)
    });
}

#[test]
fn cumsum_vec_only_reports_identically_under_both_schedulers() {
    assert_equiv("CumSum", |spec, gm| {
        let x = GlobalTensor::from_slice(gm, &vec![F16::ONE; 2048]).unwrap();
        let run = cumsum_vec_only::<F16>(spec, gm, &x, 16, 1).unwrap();
        run.report.to_json(spec)
    });
}

#[test]
fn batched_scanu_reports_identically_under_both_schedulers() {
    assert_equiv("BatchedScanU", |spec, gm| {
        let (batch, len) = (8, 300);
        let x = GlobalTensor::from_slice(gm, &signal(batch * len)).unwrap();
        let run = batched_scanu::<i8, i32>(spec, gm, &x, batch, len, 16).unwrap();
        run.report.to_json(spec)
    });
}

// ---------------------------------------------------------------------
// Random tiny-chip schedules.
// ---------------------------------------------------------------------

/// Launches a synthetic kernel whose schedule shape is controlled by
/// the arguments and returns the serialized report. Per block the
/// kernel does seed-dependent vector work, passes `rounds` `SyncAll`
/// barriers with more uneven work between them, and (when `chain` is
/// set) threads a grid-flag look-back chain through every block — the
/// same shape ScanC uses, including across waves once `blocks`
/// exceeds the tiny chip's two physical cores.
fn run_random_schedule(
    policy: SchedPolicy,
    blocks: usize,
    rounds: usize,
    seed: u64,
    chain: bool,
) -> String {
    let spec = ChipSpec::tiny().with_scheduler(policy);
    let gm = Arc::new(GlobalMemory::new(spec.hbm_capacity));
    let lane = 64usize;
    let data: Vec<i32> = (0..blocks * lane)
        .map(|i| (i as i32 * 3) % 17 - 8)
        .collect();
    let x = GlobalTensor::from_slice(&gm, &data).unwrap();
    let y = GlobalTensor::<i32>::new(&gm, blocks * lane).unwrap();
    let report = launch(&spec, &gm, blocks as u32, "rand-sched", |ctx| {
        random_schedule_block(ctx, &x, &y, lane, rounds, seed, chain)
    })
    .expect("synthetic schedule must launch cleanly under Full validation");
    report.to_json(&spec)
}

fn random_schedule_block(
    ctx: &mut BlockCtx<'_>,
    x: &GlobalTensor<i32>,
    y: &GlobalTensor<i32>,
    lane: usize,
    rounds: usize,
    seed: u64,
    chain: bool,
) -> SimResult<()> {
    let b = ctx.block_idx as usize;
    let blocks = ctx.block_dim as usize;
    let flag_ids = ctx.spec().flag_id_limit;
    let grid = ctx.grid();

    // Seed-dependent work before anything synchronizes: blocks reach
    // their first sync edge at different simulated times.
    let v = &mut ctx.vecs[0];
    let mut buf = v.alloc_local::<i32>(ScratchpadKind::Ub, lane)?;
    let loaded = v.copy_in(&mut buf, 0, x, b * lane, lane, &[])?;
    let reps = 1 + ((seed >> (8 * (b % 8))) & 3) as usize;
    let mut done = loaded;
    for r in 0..reps {
        done = v.vadds(&mut buf, 0, lane, 1 + r as i32, done)?;
    }

    // Publish this block's link of the look-back chain before the
    // barriers; successors consume it after theirs, so the set always
    // precedes the (backward) wait in baton order.
    if chain && b + 1 < blocks {
        v.set_grid_flag(grid, (b % flag_ids as usize) as u32, &[done])?;
    }

    // Uneven inter-barrier work: each round re-sorts which block is
    // slowest, so barrier arrival order differs round to round.
    for round in 0..rounds {
        ctx.sync_all()?;
        let v = &mut ctx.vecs[0];
        let extra = 1 + ((seed >> ((b + round) % 32)) & 7) as usize;
        for _ in 0..extra {
            done = v.vadds(&mut buf, 0, lane, 1, done)?;
        }
    }

    // Consume the predecessor's link (backward look-back only, as on
    // hardware), then retire this block's output slice.
    let v = &mut ctx.vecs[0];
    if chain && b > 0 {
        let seen = v.wait_grid_flag(grid, ((b - 1) % flag_ids as usize) as u32)?;
        done = done.max(seen);
    }
    v.copy_out(y, b * lane, &buf, 0, lane, &[done])?;
    v.free_local(buf)?;
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_schedules_report_identically(
        blocks in 1usize..=5,
        rounds in 0usize..=3,
        seed in any::<u64>(),
        chain in any::<bool>(),
    ) {
        let serial = run_random_schedule(SchedPolicy::Serial, blocks, rounds, seed, chain);
        let parallel = run_random_schedule(SchedPolicy::Parallel, blocks, rounds, seed, chain);
        prop_assert_eq!(
            serial,
            parallel,
            "blocks={} rounds={} seed={:#x} chain={}",
            blocks,
            rounds,
            seed,
            chain
        );
    }
}
