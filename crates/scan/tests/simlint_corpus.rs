//! Seeded-bug corpus for the `simlint` happens-before analyzer.
//!
//! Each test plants one schedule bug in a deliberately broken kernel and
//! proves the corresponding diagnostic class fires:
//!
//! * **gm-race** (Error) — a cross-core hand-off with no flag edge, both
//!   offline (Cheap validation + profiling, then [`hb::analyze`]) and
//!   in-process (Full validation fails the launch);
//! * **flag-reuse** (Error) — one flag id aliasing hand-offs across two
//!   `SyncAll` rounds;
//! * **flag-leak / queue-unbalanced / queue-leak / alloc-leak /
//!   dead-transfer** (Warnings) — hygiene lints that do *not* abort a
//!   Full-validation launch but fail the `simlint` CLI.
//!
//! The final test is the clean-suite gate: every shipped scan kernel runs
//! under profiling and must produce zero diagnostics.

use ascend_sim::mem::GlobalMemory;
use ascend_sim::{hb, prof, Severity, ValidationMode};
use ascendc::{launch, ChipSpec, GlobalTensor, ScratchpadKind, SimError, SimResult, TQue};
use scan::{
    batched_scanu, batched_scanul1, cumsum_vec_only, mcscan, mcscan_variant, reduce_cube,
    reduce_vec, scanc, scanu, scanul1, McScanConfig, McScanVariant, ScanCConfig, ScanKind,
};
use std::sync::Arc;

fn setup(validation: ValidationMode) -> (ChipSpec, Arc<GlobalMemory>) {
    let spec = ChipSpec::tiny().with_validation(validation);
    let gm = Arc::new(GlobalMemory::new(spec.hbm_capacity));
    (spec, gm)
}

/// Runs `kernel` under profiling and returns the analyzer's findings for
/// the single launch it performs.
fn lint_one(
    spec: &ChipSpec,
    gm: &Arc<GlobalMemory>,
    name: &'static str,
    kernel: impl Fn(&mut ascendc::BlockCtx<'_>) -> SimResult<()> + Sync,
) -> Vec<hb::Diagnostic> {
    let (result, profile) = prof::with_profiling(gm, || launch(spec, gm, 1, name, &kernel));
    result.expect("seeded kernel should launch cleanly under this validation mode");
    assert_eq!(profile.kernels.len(), 1, "exactly one launch profiled");
    hb::analyze(&profile.kernels[0].hb_events)
}

fn has(diags: &[hb::Diagnostic], code: &str, severity: Severity) -> bool {
    diags
        .iter()
        .any(|d| d.code == code && d.severity == severity)
}

// ---------------------------------------------------------------------
// Seed 1: missing wait — a cube → vector hand-off with only a raw timing
// dependency. The schedule orders nothing; the analyzer must call it a
// GM race.
// ---------------------------------------------------------------------

fn missing_wait_kernel(
    shared: &GlobalTensor<i32>,
) -> impl Fn(&mut ascendc::BlockCtx<'_>) -> SimResult<()> + Sync + '_ {
    |ctx: &mut ascendc::BlockCtx<'_>| {
        let cube = &mut ctx.cube;
        let mut l1 = cube.alloc_local::<i32>(ScratchpadKind::L1, 64)?;
        let produced = cube.fill_local(&mut l1, 0, 64, 7)?;
        // Raw timing dep, no CrossCoreSetFlag: replay is timing-safe,
        // the schedule is not.
        let stored = cube.copy_out(shared, 0, &l1, 0, 64, &[produced])?;
        let v = &mut ctx.vecs[0];
        let mut buf = v.alloc_local::<i32>(ScratchpadKind::Ub, 64)?;
        v.copy_in(&mut buf, 0, shared, 0, 64, &[stored])?;
        cube.free_local(l1)?;
        v.free_local(buf)?;
        Ok(())
    }
}

#[test]
fn seeded_missing_wait_is_a_gm_race_offline() {
    // Cheap validation records the happens-before stream (profiling is
    // on) but runs no audits: the launch succeeds and the race is found
    // after the fact from the trace — the `simlint` CLI path.
    let (spec, gm) = setup(ValidationMode::Cheap);
    let shared = GlobalTensor::<i32>::new(&gm, 64).unwrap();
    let diags = lint_one(
        &spec,
        &gm,
        "seed-missing-wait",
        missing_wait_kernel(&shared),
    );
    assert!(
        has(&diags, "gm-race", Severity::Error),
        "expected a gm-race error, got {diags:?}"
    );
}

#[test]
fn seeded_missing_wait_fails_a_full_validation_launch() {
    let (spec, gm) = setup(ValidationMode::Full);
    let shared = GlobalTensor::<i32>::new(&gm, 64).unwrap();
    let kernel = missing_wait_kernel(&shared);
    let err = launch(&spec, &gm, 1, "seed-missing-wait", kernel).unwrap_err();
    match err {
        SimError::ScheduleHazard { what, detail } => {
            assert_eq!(what, "gm-race");
            assert!(detail.contains("copy_out"), "names the write: {detail}");
        }
        other => panic!("expected a gm-race ScheduleHazard, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Seed 2: flag reuse across barrier rounds — the round-0 hand-off on
// flag 0 is still pending (its wait is concurrent with the round-1 set),
// so one physical register aliases two rounds' hand-offs.
// ---------------------------------------------------------------------

#[test]
fn seeded_flag_reuse_across_rounds_is_an_error() {
    let (spec, gm) = setup(ValidationMode::Cheap);
    let diags = lint_one(&spec, &gm, "seed-flag-reuse", |ctx| {
        {
            let flags = &ctx.flags;
            ctx.cube.set_flag(flags, 0, &[])?;
        }
        ctx.sync_all()?;
        {
            let flags = &ctx.flags;
            ctx.cube.set_flag(flags, 0, &[])?;
        }
        // Both waits land after the barrier on the vector core: the
        // round-0 set's consumption does not happen-before the round-1
        // set, so the id was reused while still pending.
        let flags = &ctx.flags;
        let v = &mut ctx.vecs[0];
        v.wait_flag(flags, 0)?;
        v.wait_flag(flags, 0)?;
        Ok(())
    });
    assert!(
        has(&diags, "flag-reuse", Severity::Error),
        "expected a flag-reuse error, got {diags:?}"
    );
}

// ---------------------------------------------------------------------
// Seed 3: flag leak — a set nobody consumes. A hygiene warning: the
// Full-validation launch still succeeds, but `simlint` reports it.
// ---------------------------------------------------------------------

#[test]
fn seeded_unconsumed_flag_lints_but_passes_full_validation() {
    let (spec, gm) = setup(ValidationMode::Full);
    let diags = lint_one(&spec, &gm, "seed-flag-leak", |ctx| {
        let flags = &ctx.flags;
        ctx.cube.set_flag(flags, 3, &[])?;
        Ok(())
    });
    assert!(
        has(&diags, "flag-leak", Severity::Warning),
        "expected a flag-leak warning, got {diags:?}"
    );
    assert!(
        diags.iter().all(|d| d.severity == Severity::Warning),
        "a leaked flag is hygiene, not a hard error: {diags:?}"
    );
}

// ---------------------------------------------------------------------
// Seed 4: queue protocol rot — an enque with no matching deque, a queue
// never destroyed, and scratchpad allocations never freed.
// ---------------------------------------------------------------------

#[test]
fn seeded_queue_imbalance_and_leaks_lint() {
    let (spec, gm) = setup(ValidationMode::Full);
    let diags = lint_one(&spec, &gm, "seed-queue-rot", |ctx| {
        let cube = &mut ctx.cube;
        let mut q = TQue::<i8>::new(cube, ScratchpadKind::L0A, 2, 64)?;
        let t = q.alloc_tensor()?;
        q.enque(t)?;
        // No deque, no destroy: the queue's pool buffers leak too.
        let _leaked = cube.alloc_local::<i8>(ScratchpadKind::L1, 64)?;
        Ok(())
    });
    for code in ["queue-unbalanced", "queue-leak", "alloc-leak"] {
        assert!(
            has(&diags, code, Severity::Warning),
            "expected a {code} warning, got {diags:?}"
        );
    }
}

// ---------------------------------------------------------------------
// Seed 5: dead transfer — the cube's GM write is buried by the vector
// core's (flag-ordered) overwrite before anything could read it.
// ---------------------------------------------------------------------

#[test]
fn seeded_buried_write_lints_dead_transfer() {
    let (spec, gm) = setup(ValidationMode::Full);
    let y = GlobalTensor::<i32>::new(&gm, 64).unwrap();
    let diags = lint_one(&spec, &gm, "seed-dead-transfer", |ctx| {
        let flags = &ctx.flags;
        let cube = &mut ctx.cube;
        let mut l1 = cube.alloc_local::<i32>(ScratchpadKind::L1, 64)?;
        let produced = cube.fill_local(&mut l1, 0, 64, 7)?;
        let stored = cube.copy_out(&y, 0, &l1, 0, 64, &[produced])?;
        cube.free_local(l1)?;
        cube.set_flag(flags, 0, &[stored])?;
        let v = &mut ctx.vecs[0];
        let ready = v.wait_flag(flags, 0)?;
        let mut buf = v.alloc_local::<i32>(ScratchpadKind::Ub, 64)?;
        let filled = v.fill_local(&mut buf, 0, 64, 9)?;
        // Properly ordered overwrite of the whole range: no race, but
        // the cube's transfer was pure waste.
        v.copy_out(&y, 0, &buf, 0, 64, &[ready, filled])?;
        v.free_local(buf)?;
        Ok(())
    });
    assert!(
        has(&diags, "dead-transfer", Severity::Warning),
        "expected a dead-transfer warning, got {diags:?}"
    );
}

// ---------------------------------------------------------------------
// Clean-suite gate: every shipped scan kernel, profiled and analyzed,
// must come back with zero diagnostics — no races, no coverage gaps, no
// leaks. CI additionally enforces this over the `trace` binary's output
// via the `simlint` CLI.
// ---------------------------------------------------------------------

#[test]
fn shipped_scan_kernels_lint_clean() {
    let (spec, gm) = setup(ValidationMode::Full);
    let data: Vec<i8> = (0..1500).map(|i| ((i * 7) % 9) as i8 - 4).collect();
    let x = GlobalTensor::from_slice(&gm, &data).unwrap();
    let mask: Vec<u8> = (0..500).map(|i| (i % 3 == 0) as u8).collect();
    let xm = GlobalTensor::from_slice(&gm, &mask).unwrap();
    let wide: Vec<i32> = (0..500).map(|i| (i % 11) - 5).collect();
    let xw = GlobalTensor::from_slice(&gm, &wide).unwrap();

    let cfg = McScanConfig {
        s: 16,
        blocks: 2,
        kind: ScanKind::Inclusive,
    };
    let (results, profile) = prof::with_profiling(&gm, || {
        let mut runs: Vec<(&'static str, SimResult<()>)> = Vec::new();
        runs.push(("scanu", scanu::<i8, i32>(&spec, &gm, &x, 16).map(|_| ())));
        runs.push((
            "scanul1",
            scanul1::<i8, i32>(&spec, &gm, &x, 16).map(|_| ()),
        ));
        runs.push((
            "mcscan",
            mcscan::<i8, i32, i32>(&spec, &gm, &x, cfg).map(|_| ()),
        ));
        // ScanC's grid-flag chain, both within the chip's core budget
        // (tpl=2 → 3 blocks) and oversubscribed (tpl=1 → 6 blocks on 2
        // cores): the look-back must be race-free in either schedule.
        for tiles_per_lane in [2usize, 1] {
            runs.push((
                "scanc",
                scanc::<i8, i16, i32>(
                    &spec,
                    &gm,
                    &x,
                    ScanCConfig {
                        s: 16,
                        tiles_per_lane,
                    },
                )
                .map(|_| ()),
            ));
        }
        for variant in McScanVariant::ALL {
            runs.push((
                "mcscan_variant",
                mcscan_variant::<i8, i32, i32>(&spec, &gm, &x, cfg, variant).map(|_| ()),
            ));
        }
        runs.push((
            "cumsum_vec_only",
            cumsum_vec_only::<i32>(&spec, &gm, &xw, 16, 1).map(|_| ()),
        ));
        runs.push((
            "batched_scanu",
            batched_scanu::<i8, i32>(&spec, &gm, &x, 5, 300, 16).map(|_| ()),
        ));
        runs.push((
            "batched_scanul1",
            batched_scanul1::<i8, i32>(&spec, &gm, &x, 5, 300, 16).map(|_| ()),
        ));
        runs.push((
            "reduce_cube",
            reduce_cube::<i8>(&spec, &gm, &x, 16, 2).map(|_| ()),
        ));
        runs.push((
            "reduce_vec",
            reduce_vec::<u8>(&spec, &gm, &xm, 2).map(|_| ()),
        ));
        runs
    });
    for (name, r) in &results {
        assert!(r.is_ok(), "{name} failed to launch: {r:?}");
    }
    assert_eq!(
        profile.kernels.len(),
        results.len(),
        "one profile per launch"
    );
    // Analyze each launch separately: concatenating unrelated launches
    // would make their blocks look concurrent.
    for k in &profile.kernels {
        let diags = hb::analyze(&k.hb_events);
        assert!(
            diags.is_empty(),
            "{} must lint clean ({} hb events), got {diags:?}",
            k.name,
            k.hb_events.len()
        );
    }
}
