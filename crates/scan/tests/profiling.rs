//! The profiling layer must be strictly observational: running any scan
//! kernel inside [`prof::with_profiling`] has to produce a byte-identical
//! [`KernelReport`] — same cycles, same per-engine busy/stall cycles,
//! same barrier waits — as a plain `launch`. These tests pin that
//! guarantee for every public kernel, and check that the collected
//! profile actually carries the span/stall/counter structure the trace
//! and report tooling rely on.

use ascend_sim::mem::GlobalMemory;
use ascend_sim::{prof, ChipSpec, KernelReport};
use ascendc::GlobalTensor;
use dtypes::F16;
use scan::mcscan::{mcscan, McScanConfig, ScanKind};
use scan::{
    batched_scanu, batched_scanul1, cumsum_vec_only, reduce_cube, reduce_vec, scanu, scanul1,
};
use std::sync::Arc;

const N: usize = 2500;
const S: usize = 16;

fn data() -> Vec<F16> {
    (0..N).map(|i| F16::from_f32((i % 3) as f32)).collect()
}

fn device(spec: &ChipSpec) -> Arc<GlobalMemory> {
    Arc::new(GlobalMemory::new(spec.hbm_capacity))
}

type KernelRunner = (
    &'static str,
    Box<dyn Fn(&ChipSpec, &Arc<GlobalMemory>) -> KernelReport>,
);

/// Every public scan-crate kernel, each against a caller-provided device
/// (so tests can attach a per-launch profile recorder to it).
fn kernels() -> Vec<KernelRunner> {
    vec![
        (
            "cumsum_vec_only",
            Box::new(|spec: &ChipSpec, gm: &Arc<GlobalMemory>| {
                let x = GlobalTensor::from_slice(gm, &data()).unwrap();
                cumsum_vec_only(spec, gm, &x, S, 1).unwrap().report
            }),
        ),
        (
            "scanu",
            Box::new(|spec: &ChipSpec, gm: &Arc<GlobalMemory>| {
                let x = GlobalTensor::from_slice(gm, &data()).unwrap();
                scanu::<F16, F16>(spec, gm, &x, S).unwrap().report
            }),
        ),
        (
            "scanul1",
            Box::new(|spec: &ChipSpec, gm: &Arc<GlobalMemory>| {
                let x = GlobalTensor::from_slice(gm, &data()).unwrap();
                scanul1::<F16, F16>(spec, gm, &x, S).unwrap().report
            }),
        ),
        (
            "mcscan_inclusive",
            Box::new(|spec: &ChipSpec, gm: &Arc<GlobalMemory>| {
                let x = GlobalTensor::from_slice(gm, &data()).unwrap();
                let cfg = McScanConfig {
                    s: S,
                    blocks: spec.ai_cores,
                    kind: ScanKind::Inclusive,
                };
                mcscan::<F16, F16, F16>(spec, gm, &x, cfg).unwrap().report
            }),
        ),
        (
            "mcscan_exclusive",
            Box::new(|spec: &ChipSpec, gm: &Arc<GlobalMemory>| {
                let x = GlobalTensor::from_slice(gm, &data()).unwrap();
                let cfg = McScanConfig {
                    s: S,
                    blocks: spec.ai_cores,
                    kind: ScanKind::Exclusive,
                };
                mcscan::<F16, F16, F16>(spec, gm, &x, cfg).unwrap().report
            }),
        ),
        (
            "batched_scanu",
            Box::new(|spec: &ChipSpec, gm: &Arc<GlobalMemory>| {
                let x = GlobalTensor::from_slice(gm, &data()[..2048]).unwrap();
                batched_scanu::<F16, F16>(spec, gm, &x, 4, 512, S)
                    .unwrap()
                    .report
            }),
        ),
        (
            "batched_scanul1",
            Box::new(|spec: &ChipSpec, gm: &Arc<GlobalMemory>| {
                let x = GlobalTensor::from_slice(gm, &data()[..2048]).unwrap();
                batched_scanul1::<F16, F16>(spec, gm, &x, 4, 512, S)
                    .unwrap()
                    .report
            }),
        ),
        (
            "reduce_cube",
            Box::new(|spec: &ChipSpec, gm: &Arc<GlobalMemory>| {
                let x = GlobalTensor::from_slice(gm, &data()).unwrap();
                reduce_cube::<F16>(spec, gm, &x, S, spec.ai_cores)
                    .unwrap()
                    .report
            }),
        ),
        (
            "reduce_vec",
            Box::new(|spec: &ChipSpec, gm: &Arc<GlobalMemory>| {
                let x = GlobalTensor::from_slice(gm, &data()).unwrap();
                reduce_vec::<F16>(spec, gm, &x, spec.ai_cores)
                    .unwrap()
                    .report
            }),
        ),
    ]
}

fn assert_reports_identical(plain: &KernelReport, profiled: &KernelReport, kernel: &str) {
    assert_eq!(plain.cycles, profiled.cycles, "{kernel}: cycles differ");
    assert_eq!(
        plain.engine_busy, profiled.engine_busy,
        "{kernel}: engine busy cycles differ"
    );
    assert_eq!(
        plain.engine_instructions, profiled.engine_instructions,
        "{kernel}: instruction counts differ"
    );
    assert_eq!(
        plain.stalls, profiled.stalls,
        "{kernel}: stall tallies differ"
    );
    assert_eq!(
        plain.barrier_waits, profiled.barrier_waits,
        "{kernel}: barrier waits differ"
    );
    assert_eq!(
        plain.flag_waits, profiled.flag_waits,
        "{kernel}: flag waits differ"
    );
    assert_eq!(
        (plain.bytes_read, plain.bytes_written),
        (profiled.bytes_read, profiled.bytes_written),
        "{kernel}: HBM traffic differs"
    );
    assert_eq!(
        plain.sync_rounds, profiled.sync_rounds,
        "{kernel}: sync rounds differ"
    );
}

#[test]
fn profiling_never_changes_a_simulated_cycle() {
    let spec = ChipSpec::tiny();
    for (name, run) in kernels() {
        let plain = run(&spec, &device(&spec));
        let gm = device(&spec);
        let (profiled, profile) = prof::with_profiling(&gm, || run(&spec, &gm));
        assert_reports_identical(&plain, &profiled, name);
        assert_eq!(profile.kernels.len(), 1, "{name}: one launch, one profile");
        let k = &profile.kernels[0];
        assert_eq!(k.cycles, plain.cycles, "{name}: profile cycles match");
        assert_eq!(k.stalls, plain.stalls, "{name}: profile stalls match");
        assert!(!k.events.is_empty(), "{name}: engine events recorded");
        assert!(!k.spans.is_empty(), "{name}: named spans recorded");
        // A second profiled run is bit-stable too (determinism).
        let gm = device(&spec);
        let (again, _) = prof::with_profiling(&gm, || run(&spec, &gm));
        assert_reports_identical(&profiled, &again, name);
    }
}

#[test]
fn back_to_back_launches_never_share_a_span_tree() {
    // Regression for the thread-local collector this recorder replaced:
    // two sequential profiled launches on the same host thread must each
    // collect exactly their own kernel, and a recorder attached to one
    // memory must never capture launches on another.
    let spec = ChipSpec::tiny();
    let gm1 = device(&spec);
    let gm2 = device(&spec);
    let rec1 = gm1.attach_profiler();

    let x1 = GlobalTensor::from_slice(&gm1, &data()).unwrap();
    scanu::<F16, F16>(&spec, &gm1, &x1, S).unwrap();
    // A launch on a different memory, same thread: must not land in rec1.
    let x2 = GlobalTensor::from_slice(&gm2, &data()).unwrap();
    mcscan::<F16, F16, F16>(
        &spec,
        &gm2,
        &x2,
        McScanConfig {
            s: S,
            blocks: spec.ai_cores,
            kind: ScanKind::Inclusive,
        },
    )
    .unwrap();

    let first = rec1.take();
    assert_eq!(first.kernels.len(), 1, "rec1 sees only its own launch");
    assert_eq!(first.kernels[0].name, "ScanU");

    // Back-to-back scopes on the same thread and memory: disjoint span
    // trees, nothing leaks from the first into the second.
    gm1.detach_profiler();
    let (_, p1) = prof::with_profiling(&gm1, || scanu::<F16, F16>(&spec, &gm1, &x1, S).unwrap());
    let (_, p2) = prof::with_profiling(&gm1, || scanul1::<F16, F16>(&spec, &gm1, &x1, S).unwrap());
    assert_eq!(p1.kernels.len(), 1);
    assert_eq!(p2.kernels.len(), 1);
    assert_eq!(p1.kernels[0].name, "ScanU");
    assert_eq!(p2.kernels[0].name, "ScanUL1");
}

#[test]
fn mcscan_profile_carries_phases_stalls_and_counters() {
    let spec = ChipSpec::tiny();
    let gm = device(&spec);
    let x = GlobalTensor::from_slice(&gm, &data()).unwrap();
    let cfg = McScanConfig {
        s: S,
        blocks: spec.ai_cores,
        kind: ScanKind::Inclusive,
    };
    let (run, profile) = prof::with_profiling(&gm, || {
        mcscan::<F16, F16, F16>(&spec, &gm, &x, cfg).unwrap()
    });
    assert_eq!(profile.kernels.len(), 1);
    let k = &profile.kernels[0];

    // The paper's phase structure is visible as named block-scoped spans.
    let phase_names: Vec<&str> = k
        .spans
        .iter()
        .filter(|s| s.core == prof::BLOCK_SCOPE)
        .map(|s| s.name)
        .collect();
    for expected in ["Phase I", "SyncAll", "Phase II"] {
        assert!(
            phase_names.contains(&expected),
            "missing phase span {expected:?}, got {phase_names:?}"
        );
    }
    // Tile spans carry structured args and sit below the phases.
    let tiles: Vec<_> = k.spans.iter().filter(|s| s.name == "tile").collect();
    assert!(!tiles.is_empty(), "tile spans recorded");
    assert!(tiles.iter().all(|s| s.depth >= 2));
    assert!(tiles.iter().any(|s| {
        s.args
            .is_some_and(|a| a.bytes > 0 && !a.kind.is_empty() && a.queue_depth > 0)
    }));
    // All spans are well-formed intervals within the launch.
    assert!(k
        .spans
        .iter()
        .all(|s| s.start <= s.end && s.end <= k.cycles));

    // Stall intervals are attributed per engine, and the per-round
    // barrier waits cover MCScan's one explicit SyncAll plus the final
    // implicit alignment.
    assert!(!k.stall_events.is_empty(), "stall intervals recorded");
    assert_eq!(run.report.sync_rounds, 1);
    assert_eq!(run.report.barrier_waits.len(), 2);
    assert_eq!(run.report.flag_waits.len(), 2);
    assert!(run.report.stalls.total_idle() > 0);

    // Named TQue occupancy counters made it across the queue boundary.
    assert!(!k.counters.is_empty(), "queue occupancy counters recorded");
    assert!(k.counters.iter().any(|c| c.name.contains("UB")));
    assert!(k.counters.iter().any(|c| c.value > 0));

    // And the Perfetto export carries all of it.
    let json = profile.to_chrome_json();
    for needle in [
        "Phase I",
        "Phase II",
        "SyncAll",
        "wait:dep",
        "wait:barrier",
        "wait:flag",
        "\"ph\":\"C\"",
    ] {
        assert!(json.contains(needle), "chrome trace missing {needle:?}");
    }
    assert_eq!(json.matches('{').count(), json.matches('}').count());
}

#[test]
fn kernel_report_json_has_the_stable_schema() {
    let spec = ChipSpec::tiny();
    let gm = device(&spec);
    let x = GlobalTensor::from_slice(&gm, &data()).unwrap();
    let run = scanu::<F16, F16>(&spec, &gm, &x, S).unwrap();
    let json = run.report.to_json(&spec);
    for key in [
        "\"name\":",
        "\"blocks\":",
        "\"cycles\":",
        "\"time_us\":",
        "\"gbps\":",
        "\"traffic_gbps\":",
        "\"gelems\":",
        "\"fraction_of_peak\":",
        "\"barrier_wait_cycles\":",
        "\"flag_wait_cycles\":",
        "\"engines\":",
        "\"CUBE\":",
        "\"VEC\":",
        "\"busy_cycles\":",
        "\"stall_dependency\":",
        "\"stall_contention\":",
        "\"stall_barrier\":",
        "\"stall_flag\":",
        "\"utilization\":",
    ] {
        assert!(json.contains(key), "report JSON missing {key}");
    }
}
