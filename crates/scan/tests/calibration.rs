//! Calibration probes: the paper's headline performance ratios must hold
//! in shape on the `ascend_910b4` preset. Run with `--nocapture` to see
//! the measured values next to the paper's.

use ascend_sim::mem::GlobalMemory;
use ascendc::{ChipSpec, GlobalTensor};
use dtypes::F16;
use scan::mcscan::{mcscan, McScanConfig};
use scan::{cumsum_vec_only, scanu, scanul1};
use std::sync::Arc;

fn setup() -> (ChipSpec, Arc<GlobalMemory>) {
    let spec = ChipSpec::ascend_910b4();
    let gm = Arc::new(GlobalMemory::new(spec.hbm_capacity));
    (spec, gm)
}

#[test]
fn fig3_single_core_ratios() {
    let (spec, gm) = setup();
    let n = 4 << 20;
    let data: Vec<F16> = vec![F16::ZERO; n];
    let x = GlobalTensor::from_slice(&gm, &data).unwrap();

    let base = cumsum_vec_only(&spec, &gm, &x, 128, 1).unwrap().report;
    let u = scanu::<F16, F16>(&spec, &gm, &x, 128).unwrap().report;
    let ul1 = scanul1::<F16, F16>(&spec, &gm, &x, 128).unwrap().report;

    let r_u = base.time_s() / u.time_s();
    let r_ul1 = base.time_s() / ul1.time_s();
    let r_between = u.time_s() / ul1.time_s();
    println!("Fig 3 @ N = {n}:");
    println!("  vec-only  : {:>10.1} us", base.time_us());
    println!(
        "  ScanU     : {:>10.1} us  ({r_u:.2}x vs vec-only; paper ~5x)",
        u.time_us()
    );
    println!(
        "  ScanUL1   : {:>10.1} us  ({r_ul1:.2}x vs vec-only; paper ~9.6x)",
        ul1.time_us()
    );
    println!("  ScanU/ScanUL1 = {r_between:.2}x (paper ~2x)");

    assert!(
        (3.5..7.0).contains(&r_u),
        "ScanU speedup {r_u:.2} not in paper band ~5x"
    );
    assert!(
        (7.0..14.0).contains(&r_ul1),
        "ScanUL1 speedup {r_ul1:.2} not in paper band ~9.6x"
    );
    assert!(
        (1.5..3.0).contains(&r_between),
        "ScanUL1/ScanU {r_between:.2} not ~2x"
    );
}

#[test]
fn mcscan_saturation_and_speedup() {
    let (spec, gm) = setup();
    let n = 32 << 20; // 32 Mi elements, 64 MiB fp16: well beyond latency effects
    let data: Vec<F16> = vec![F16::ZERO; n];
    let x = GlobalTensor::from_slice(&gm, &data).unwrap();

    let mc = mcscan::<F16, F16, F16>(&spec, &gm, &x, McScanConfig::for_chip(&spec))
        .unwrap()
        .report;
    let u = scanu::<F16, F16>(&spec, &gm, &x, 128).unwrap().report;

    let frac = mc.fraction_of_peak(&spec);
    let speedup = u.time_s() / mc.time_s();
    println!("MCScan @ N = {n}:");
    println!(
        "  bandwidth  : {:.0} GB/s = {:.1}% of peak (paper ~37.5%)",
        mc.gbps(),
        frac * 100.0
    );
    println!("  vs ScanU   : {speedup:.1}x (paper saturates at ~15.2x)");

    assert!(
        (0.30..0.45).contains(&frac),
        "MCScan peak fraction {:.3} outside the paper's ~0.375 band",
        frac
    );
    assert!(
        (10.0..20.0).contains(&speedup),
        "MCScan speedup over ScanU {speedup:.1} outside the paper's ~15.2x band"
    );
}

#[test]
fn int8_beats_fp16_in_elements_per_second() {
    let (spec, gm) = setup();
    let n = 8 << 20;
    let mask: Vec<u8> = vec![1; n];
    let xi = GlobalTensor::from_slice(&gm, &mask).unwrap();
    let dataf: Vec<F16> = vec![F16::ZERO; n];
    let xf = GlobalTensor::from_slice(&gm, &dataf).unwrap();

    let cfg = McScanConfig::for_chip(&spec);
    let gi = mcscan::<u8, i16, i32>(&spec, &gm, &xi, cfg).unwrap().report;
    let gf = mcscan::<F16, F16, F16>(&spec, &gm, &xf, cfg)
        .unwrap()
        .report;
    let gain = gi.gelems() / gf.gelems();
    println!(
        "Fig 9 @ N = {n}: int8 {:.2} GElem/s vs fp16 {:.2} GElem/s  (gain {:.2}x; paper ~1.1x)",
        gi.gelems(),
        gf.gelems(),
        gain
    );
    assert!(gain > 1.0, "int8 path should process more elements/s");
    assert!(
        gain < 2.0,
        "int8 gain should be modest (~10%), got {gain:.2}"
    );
}
