//! Parallel prefix-sum (scan) algorithms for the Ascend architecture —
//! the paper's primary contribution.
//!
//! All algorithms are built on one linear-algebra fact: if `A` is the
//! row-major `s × s` matrix view of a vector tile, then `A @ U_s` (upper-
//! triangular ones) computes the *local* scans of the tile's rows on the
//! cube (matmul) engine. The variants differ in how partial sums are
//! propagated and how work is spread over cores:
//!
//! * [`scanu::scanu`] — **ScanU** (Algorithm 1): one cube core computes
//!   row-local scans, one vector core propagates partials per `s`-row.
//! * [`scanul1::scanul1`] — **ScanUL1** (Algorithm 2): the cube evaluates
//!   `scan(z) = A@U + L⁻@A@1` per `s²` tile using the accumulation
//!   buffer; the vector core adds one partial per tile.
//! * [`mcscan::mcscan`] — **MCScan** (Algorithm 3): a multi-core scan in
//!   the Scan-Scan-Add family with *partial recomputation*: in phase 1
//!   cube cores write tile-local scans while vector cores independently
//!   recompute block reductions from the input; after a global barrier,
//!   phase 2 scans the block reductions in each vector core's UB and
//!   propagates. Supports inclusive/exclusive scans, fp16 and int8.
//! * [`scanc::scanc`] — **ScanC**: a single-pass chained scan with
//!   decoupled look-back. No barrier and no recomputation read: each
//!   lane keeps its tile-local scans resident in UB, publishes its
//!   inclusive prefix to a per-lane global-memory mailbox guarded by a
//!   launch-wide grid flag, and its successor looks back instead of
//!   waiting at a `SyncAll`. Moves ~2·N element accesses less than
//!   MCScan at the cost of a serial per-lane flag chain.
//! * [`batched`] — batched variants of ScanU and ScanUL1 for
//!   multi-dimensional inputs.
//! * [`baseline::cumsum_vec_only`] — the vector-only `CumSum` kernel
//!   standing in for the AscendC CumSum API / `torch.cumsum` baseline.
//!
//! Functional results are bit-exact products of the simulated engines;
//! performance comes from the simulator's timing model ([`KernelReport`]).

#![forbid(unsafe_code)]

pub mod ablation;
pub mod baseline;
pub mod batched;
pub mod mcscan;
pub mod reduce;
pub mod reference;
pub mod scanc;
pub mod scanu;
pub mod scanul1;
pub mod triangular;
pub(crate) mod util;

pub use ablation::{mcscan_variant, McScanVariant};
pub use baseline::cumsum_vec_only;
pub use batched::{batched_scanu, batched_scanul1};
pub use mcscan::{mcscan, McScanConfig, ScanKind};
pub use reduce::{reduce_cube, reduce_vec, ReduceRun};
pub use scanc::{scanc, ScanCConfig};
pub use scanu::scanu;
pub use scanul1::scanul1;

use ascendc::{GlobalTensor, KernelReport};
use dtypes::Element;

/// Result of a scan kernel: the output tensor plus the execution report.
pub struct ScanRun<O: Element> {
    /// The scanned output array.
    pub y: GlobalTensor<O>,
    /// Simulated execution report (time, traffic, utilization).
    pub report: KernelReport,
}

/// Fills in the report fields that follow the paper's reporting
/// convention for a length-`n` scan with input element size `in_size`
/// and output element size `out_size`.
pub(crate) fn finish_report(report: &mut KernelReport, n: usize, in_size: usize, out_size: usize) {
    report.elements = n as u64;
    report.useful_bytes = (n * (in_size + out_size)) as u64;
}
