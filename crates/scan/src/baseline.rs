//! The vector-only scan baseline.
//!
//! Stands in for the AscendC `CumSum` API kernel (with `CumSumInfo`
//! 128×128) that the paper uses as the Fig. 3 baseline, and for the
//! unoptimized `torch.cumsum` Ascend operator that Figs. 8/13 are
//! measured against. It never touches the cube engine: each `ℓ`-tile is
//! staged into UB, every `s`-row is scanned with log₂(s) Hillis–Steele
//! shifted adds, and the running partial is propagated with an `Adds`
//! plus a scalar extraction per row — together with the scalar-unit
//! bookkeeping of the generic API, this is what makes the vector-only
//! kernel 5–10× slower than the cube scans at large input lengths.

use crate::util::tile_spans;
use crate::{finish_report, ScanRun};
use ascend_sim::mem::GlobalMemory;
use ascendc::{
    launch, ChipSpec, GlobalTensor, ScratchpadKind, SimError, SimResult, SpanArgs, TQue,
};
use dtypes::Numeric;
use std::sync::Arc;

/// Scalar-unit operations charged per row by the generic CumSum API
/// (loop control, address arithmetic, tail handling of the unspecialized
/// kernel). Part of the calibrated baseline cost model.
const CUMSUM_SCALAR_OPS_PER_ROW: u64 = 16;

/// Vector-only inclusive scan of `x` on `blocks` AI cores (one vector
/// core each). The Fig. 3 baseline uses `blocks = 1`; `torch.cumsum` on
/// a 1-D tensor is also effectively single-core on the Ascend adapter.
///
/// `s` is the row length of the CumSum tiling (the paper sets 128).
pub fn cumsum_vec_only<T: Numeric>(
    spec: &ChipSpec,
    gm: &Arc<GlobalMemory>,
    x: &GlobalTensor<T>,
    s: usize,
    blocks: u32,
) -> SimResult<ScanRun<T>> {
    if s == 0 || !s.is_power_of_two() {
        return Err(SimError::InvalidArgument(format!(
            "CumSum baseline: s must be a power of two, got {s}"
        )));
    }
    if blocks != 1 {
        // The sequential partial-sum dependency makes the reference
        // CumSum kernel single-core; the paper's baseline never scales.
        return Err(SimError::InvalidArgument(
            "CumSum baseline is a single-core kernel (blocks must be 1)".into(),
        ));
    }
    let n = x.len();
    let l = s * s;
    let y = GlobalTensor::<T>::new(gm, n)?;
    let spans = tile_spans(n, l);

    let mut report = launch(spec, gm, 1, "CumSum(vec-only)", |ctx| {
        let phase = ctx.span_begin("VecOnlyScan");
        let v = &mut ctx.vecs[0];
        let mut q = TQue::<T>::new(v, ScratchpadKind::Ub, 2, l)?.named("q(UB)");
        let mut tmp = v.alloc_local::<T>(ScratchpadKind::Ub, s)?;
        let mut partial = T::zero();
        let mut partial_ready = 0;
        for &(off, valid) in &spans {
            let tile = v.span_begin("tile");
            let mut buf = q.alloc_tensor()?;
            v.copy_in(&mut buf, 0, x, off, valid, &[])?;
            for (row_off, row_len) in tile_spans(valid, s) {
                // Hillis-Steele local scan of the row. SIMD adds cannot
                // overlap source and destination in place, so each
                // log-step is a copy into a staging buffer plus an
                // element-wise add — two vector instructions per step,
                // as the generic CumSum kernel issues them.
                let mut shift = 1;
                while shift < row_len {
                    let span = row_len - shift;
                    v.copy_local(&mut tmp, 0, &buf, row_off, span)?;
                    v.vadd_inplace(&mut buf, row_off + shift, &tmp, 0, span)?;
                    shift *= 2;
                }
                // Propagate the running partial and pick up the new one.
                v.vadds(&mut buf, row_off, row_len, partial, partial_ready)?;
                let (p, pr) = v.extract(&buf, row_off + row_len - 1)?;
                partial = p;
                partial_ready = pr;
                // Generic-API scalar bookkeeping.
                v.scalar_ops(CUMSUM_SCALAR_OPS_PER_ROW, &[])?;
            }
            let ev = v.copy_out(&y, off, &buf, 0, valid, &[])?;
            q.free_tensor(buf, ev);
            v.span_args(
                tile,
                SpanArgs {
                    bytes: (2 * valid * T::SIZE) as u64,
                    kind: "hillis-steele",
                    queue_depth: 2,
                },
            );
            v.span_end_at(tile, ev);
        }
        v.free_local(tmp)?;
        q.destroy(v)?;
        ctx.span_end(phase);
        Ok(())
    })?;

    finish_report(&mut report, n, T::SIZE, T::SIZE);
    Ok(ScanRun { y, report })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use dtypes::F16;

    fn setup() -> (ChipSpec, Arc<GlobalMemory>) {
        let spec = ChipSpec::tiny();
        let gm = Arc::new(GlobalMemory::new(spec.hbm_capacity));
        (spec, gm)
    }

    #[test]
    fn matches_reference_i32() {
        let (spec, gm) = setup();
        let data: Vec<i32> = (0..2000).map(|i| (i % 17) - 8).collect();
        let x = GlobalTensor::from_slice(&gm, &data).unwrap();
        let run = cumsum_vec_only(&spec, &gm, &x, 16, 1).unwrap();
        assert_eq!(run.y.to_vec(), reference::inclusive(&data));
    }

    #[test]
    fn matches_reference_f16_small() {
        let (spec, gm) = setup();
        let data: Vec<F16> = (0..500).map(|i| F16::from_f32((i % 3) as f32)).collect();
        let x = GlobalTensor::from_slice(&gm, &data).unwrap();
        let run = cumsum_vec_only(&spec, &gm, &x, 16, 1).unwrap();
        assert_eq!(run.y.to_vec(), reference::inclusive(&data));
    }

    #[test]
    fn handles_single_element_rows_and_tails() {
        let (spec, gm) = setup();
        for n in [1usize, 15, 16, 17, 255, 256, 257] {
            let data: Vec<i32> = (0..n as i32).collect();
            let x = GlobalTensor::from_slice(&gm, &data).unwrap();
            let run = cumsum_vec_only(&spec, &gm, &x, 16, 1).unwrap();
            assert_eq!(run.y.to_vec(), reference::inclusive(&data), "n = {n}");
        }
    }

    #[test]
    fn rejects_bad_args() {
        let (spec, gm) = setup();
        let x = GlobalTensor::from_slice(&gm, &[1i32; 8]).unwrap();
        assert!(cumsum_vec_only(&spec, &gm, &x, 12, 1).is_err());
        assert!(cumsum_vec_only(&spec, &gm, &x, 16, 2).is_err());
    }

    #[test]
    fn slower_than_cube_scans_at_scale() {
        // The headline Fig. 3 shape: vec-only is several times slower
        // than ScanU, which is slower than ScanUL1.
        let spec = ChipSpec::ascend_910b4();
        let gm = Arc::new(GlobalMemory::new(spec.hbm_capacity));
        let n = 1 << 20;
        let data: Vec<F16> = vec![F16::ZERO; n];
        let x = GlobalTensor::from_slice(&gm, &data).unwrap();
        let base = cumsum_vec_only(&spec, &gm, &x, 128, 1).unwrap();
        let u = crate::scanu::scanu::<F16, F16>(&spec, &gm, &x, 128).unwrap();
        let ratio = base.report.time_s() / u.report.time_s();
        assert!(
            ratio > 3.0,
            "vec-only baseline should trail ScanU clearly, got {ratio:.2}x"
        );
    }
}
