//! **MCScan** (Algorithm 3): the multi-core scan.
//!
//! MCScan belongs to the Scan-Scan-Add family but with a twist the paper
//! highlights as novel: **partial recomputation**. In phase 1 the cube
//! cores compute tile-local scans (`A @ U_s`) and write them to global
//! memory, while *in parallel* the vector cores independently re-read the
//! input and compute per-block reductions into an array `r` — neither
//! engine waits for the other. After a `SyncAll` barrier, phase 2 has
//! every vector core scan `r` in its own UB (a "small" scan over the
//! block count) and propagate the resulting block offset plus the
//! running partial through its block's tile-local scans.
//!
//! The implementation exploits the 910B's 2-to-1 vector-to-cube core
//! ratio: each AI core's cube engine serves the *two* chunks owned by its
//! two vector cores, so `r` has `blocks × 2` entries.
//!
//! Global-memory traffic: phase 1 reads the input twice (cube + vector
//! recomputation) and writes the local scans once; phase 2 reads and
//! writes the output once — ≈ `5·N` element accesses to produce the
//! operator's `2·N` useful bytes, which is what caps MCScan at ≈ 3/8 of
//! peak memory bandwidth (the paper's 37.5%).

use crate::triangular::ScanConstants;
use crate::util::{partition, tile_spans};
use crate::{finish_report, ScanRun};
use ascend_sim::mem::GlobalMemory;
use ascendc::{
    launch, ChipSpec, GlobalTensor, ScratchpadKind, SimError, SimResult, SpanArgs, TQue,
};
use dtypes::{CubeInput, Numeric};
use std::sync::Arc;

/// Inclusive vs. exclusive scan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScanKind {
    /// `y[i] = x[0] + … + x[i]`.
    Inclusive,
    /// `y[0] = 0`, `y[i] = x[0] + … + x[i-1]`. Implemented by writing
    /// the inclusive result shifted one element right, discarding the
    /// last value, and having the first block write a zero to `y[0]`
    /// (exactly the paper's §4.3 description).
    Exclusive,
}

/// MCScan launch parameters.
#[derive(Clone, Copy, Debug)]
pub struct McScanConfig {
    /// Matmul tile dimension (`ℓ = s²` elements per cube tile);
    /// `s = 128` maximizes L0A/L0B utilization on the 910B4.
    pub s: usize,
    /// Number of AI cores (blocks) to use; each contributes one cube
    /// core and two vector cores.
    pub blocks: u32,
    /// Inclusive or exclusive scan.
    pub kind: ScanKind,
}

impl McScanConfig {
    /// The paper's default evaluation configuration for a chip: all AI
    /// cores, `s = 128`, inclusive.
    pub fn for_chip(spec: &ChipSpec) -> Self {
        McScanConfig {
            s: 128,
            blocks: spec.ai_cores,
            kind: ScanKind::Inclusive,
        }
    }
}

/// Runs MCScan over `x`, producing the scan in element type `O`.
///
/// `T` is the cube input type, `M` the *intermediate* type the tile-
/// local scans are written to global memory as, and `O` the final
/// output type:
///
/// * fp16: `mcscan::<F16, F16, F16>` — the paper's default path;
/// * int8 masks (§4.3's specialization): `mcscan::<u8, i16, i32>` —
///   a tile-local scan never exceeds `ℓ = s² ≤ 16384`, so the
///   intermediate fits `i16` and phase 1 writes 2 bytes per element
///   instead of 4, which is where the int8 path's throughput edge over
///   fp16 comes from.
///
/// `M` must be wide enough for `ℓ` times the largest input value.
pub fn mcscan<T, M, O>(
    spec: &ChipSpec,
    gm: &Arc<GlobalMemory>,
    x: &GlobalTensor<T>,
    cfg: McScanConfig,
) -> SimResult<ScanRun<O>>
where
    T: CubeInput,
    M: Numeric,
    O: Numeric,
{
    if cfg.s == 0 || !cfg.s.is_multiple_of(16) {
        return Err(SimError::InvalidArgument(format!(
            "MCScan: s must be a positive multiple of 16, got {}",
            cfg.s
        )));
    }
    if cfg.blocks == 0 {
        return Err(SimError::InvalidArgument(format!(
            "MCScan: blocks must be at least 1 (grids beyond the chip's {} AI \
             cores wave-multiplex onto the physical slots)",
            spec.ai_cores
        )));
    }
    let n = x.len();
    let s = cfg.s;
    let l = s * s;
    let consts = ScanConstants::<T>::upload(gm, s)?;
    let y = GlobalTensor::<O>::new(gm, n)?;
    // Tile-local scans land here in the (possibly narrower) intermediate
    // type; the paper's kernel writes them into the output buffer, which
    // is the same traffic.
    let w = GlobalTensor::<M>::new(gm, n)?;

    // Chunk layout: one chunk per vector core, at tile granularity.
    let chunks_total = (cfg.blocks * spec.vec_per_core) as usize;
    let tiles = tile_spans(n, l);
    let chunk_tiles = partition(tiles.len(), chunks_total);
    // The reduction array r, one entry per chunk (Line 3).
    let r = GlobalTensor::<O>::new(gm, chunks_total)?;

    let mut report = launch(spec, gm, cfg.blocks, "MCScan", |ctx| {
        let block = ctx.block_idx as usize;
        let vec_per_core = ctx.vecs.len();
        // ---------------- Phase I (Lines 4-14) ----------------
        let phase1 = ctx.span_begin("Phase I");
        // Cube core: tile-local scans over this block's chunks.
        {
            let cube = &mut ctx.cube;
            let mut lb = cube.alloc_local::<T>(ScratchpadKind::L0B, l)?;
            cube.copy_in(&mut lb, 0, &consts.upper, 0, l, &[])?;
            // Double-buffer L0A/L0C when the element width allows two
            // tiles (fp16/int8); fall back to single buffering for f32.
            let da = if 2 * l * T::SIZE <= cube.spec().l0a_capacity {
                2
            } else {
                1
            };
            let dc = if 2 * l * <T::Acc as dtypes::Element>::SIZE <= cube.spec().l0c_capacity {
                2
            } else {
                1
            };
            let mut qa = TQue::<T>::new(cube, ScratchpadKind::L0A, da, l)?.named("qa(L0A)");
            let mut qc = TQue::<T::Acc>::new(cube, ScratchpadKind::L0C, dc, l)?.named("qc(L0C)");
            for v in 0..vec_per_core {
                let (t0, tcount) = chunk_tiles[block * vec_per_core + v];
                for &(off, valid) in &tiles[t0..t0 + tcount] {
                    let rows = valid.div_ceil(s);
                    let tile = cube.span_begin("tile");
                    let mut la = qa.alloc_tensor()?;
                    if valid < rows * s {
                        cube.fill_local(&mut la, 0, rows * s, T::zero())?;
                    }
                    cube.copy_in(&mut la, 0, x, off, valid, &[])?;
                    let mut lc = qc.alloc_tensor()?;
                    let mm = cube.mmad::<T>(&mut lc, &mut la, &mut lb, rows, s, s, false)?;
                    qa.free_tensor(la, mm);
                    let ev = cube.copy_out_cast::<T::Acc, M>(&w, off, &lc, 0, valid, &[])?;
                    qc.free_tensor(lc, ev);
                    cube.span_args(
                        tile,
                        SpanArgs {
                            bytes: (valid * (T::SIZE + M::SIZE)) as u64,
                            kind: "mmad",
                            queue_depth: da as u32,
                        },
                    );
                    cube.span_end_at(tile, ev);
                }
            }
            cube.free_local(lb)?;
            qa.destroy(cube)?;
            qc.destroy(cube)?;
        }
        // Vector cores: recompute the block (chunk) reductions from x.
        for v in 0..vec_per_core {
            let chunk = block * vec_per_core + v;
            let (t0, tcount) = chunk_tiles[chunk];
            let vc = &mut ctx.vecs[v];
            let din = if 2 * l * T::SIZE + l * O::SIZE + 64 <= vc.spec().ub_capacity {
                2
            } else {
                1
            };
            let mut qin = TQue::<T>::new(vc, ScratchpadKind::Ub, din, l)?.named("qin(UB)");
            let mut acc_buf = vc.alloc_local::<O>(ScratchpadKind::Ub, l)?;
            let mut total = O::zero();
            let mut total_ready = 0;
            for &(off, valid) in &tiles[t0..t0 + tcount] {
                let tile = vc.span_begin("tile");
                let mut piece = qin.alloc_tensor()?;
                vc.copy_in(&mut piece, 0, x, off, valid, &[])?;
                // Widen to the output domain before reducing (int8 masks
                // would overflow their own type).
                let cast_done = vc.vcast::<T, O>(&mut acc_buf, &piece, 0, valid)?;
                qin.free_tensor(piece, cast_done);
                let (sum, ready) = vc.reduce_sum(&acc_buf, 0, valid)?;
                total = total.add(sum);
                total_ready = vc.scalar_ops(1, &[ready, total_ready])?;
                vc.span_args(
                    tile,
                    SpanArgs {
                        bytes: (valid * T::SIZE) as u64,
                        kind: "reduce",
                        queue_depth: din as u32,
                    },
                );
                vc.span_end_at(tile, total_ready);
            }
            // Write r[chunk] (Line 13).
            let mut one = vc.alloc_local::<O>(ScratchpadKind::Ub, 1)?;
            vc.insert(&mut one, 0, total, total_ready)?;
            vc.copy_out(&r, chunk, &one, 0, 1, &[])?;
            vc.free_local(one)?;
            vc.free_local(acc_buf)?;
            qin.destroy(vc)?;
        }
        ctx.span_end(phase1);

        // ---------------- SyncAll (Line 15) ----------------
        ctx.sync_all()?;

        // ---------------- Phase II (Lines 16-26) ----------------
        let phase2 = ctx.span_begin("Phase II");
        for v in 0..vec_per_core {
            let chunk = block * vec_per_core + v;
            let (t0, tcount) = chunk_tiles[chunk];
            let vc = &mut ctx.vecs[v];
            // Load r into UB and scan its prefix for this chunk.
            let mut r_ub = vc.alloc_local::<O>(ScratchpadKind::Ub, chunks_total)?;
            vc.copy_in(&mut r_ub, 0, &r, 0, chunks_total, &[])?;
            let (mut partial, mut partial_ready) = if chunk == 0 {
                (O::zero(), 0)
            } else {
                vc.reduce_sum(&r_ub, 0, chunk)?
            };
            vc.free_local(r_ub)?;

            // Double-buffer the staging queue when UB has room for two
            // intermediate tiles next to the propagation buffer; fall
            // back to single buffering for wide intermediates (the
            // propagation is bandwidth-bound either way).
            let ub = vc.spec().ub_capacity;
            let depth = if 2 * l * M::SIZE + l * O::SIZE + 64 <= ub {
                2
            } else {
                1
            };
            let mut q = TQue::<M>::new(vc, ScratchpadKind::Ub, depth, l)?.named("q(UB)");
            let mut buf = vc.alloc_local::<O>(ScratchpadKind::Ub, l)?;
            let mut boundary = vc.alloc_local::<O>(ScratchpadKind::Ub, 1)?;
            for &(off, valid) in &tiles[t0..t0 + tcount] {
                let tile = vc.span_begin("tile");
                let mut piece = q.alloc_tensor()?;
                vc.copy_in(&mut piece, 0, &w, off, valid, &[])?;
                let cast_done = vc.vcast::<M, O>(&mut buf, &piece, 0, valid)?;
                q.free_tensor(piece, cast_done);
                if cfg.kind == ScanKind::Exclusive {
                    // The tile's first exclusive output is the running
                    // partial itself; writing it from this core keeps
                    // every store inside the core's own span (§4.3's
                    // shifted write, without a cross-block boundary
                    // hazard). For the very first tile this also writes
                    // the required y[0] = 0.
                    vc.insert(&mut boundary, 0, partial, partial_ready)?;
                    vc.copy_out(&y, off, &boundary, 0, 1, &[])?;
                }
                for (row_off, row_len) in tile_spans(valid, s) {
                    vc.vadds(&mut buf, row_off, row_len, partial, partial_ready)?;
                    let (p, pr) = vc.extract(&buf, row_off + row_len - 1)?;
                    partial = p;
                    partial_ready = pr;
                }
                let out_done = match cfg.kind {
                    ScanKind::Inclusive => vc.copy_out(&y, off, &buf, 0, valid, &[])?,
                    ScanKind::Exclusive => {
                        // Shift right by one within the tile; the tile's
                        // last inclusive value is carried to the next
                        // tile through `partial` instead of the store.
                        if valid > 1 {
                            vc.copy_out(&y, off + 1, &buf, 0, valid - 1, &[])?
                        } else {
                            partial_ready
                        }
                    }
                };
                vc.span_args(
                    tile,
                    SpanArgs {
                        bytes: (valid * (M::SIZE + O::SIZE)) as u64,
                        kind: "propagate",
                        queue_depth: depth as u32,
                    },
                );
                vc.span_end_at(tile, out_done);
            }
            vc.free_local(boundary)?;
            vc.free_local(buf)?;
            q.destroy(vc)?;
        }
        ctx.span_end(phase2);
        Ok(())
    })?;

    finish_report(&mut report, n, T::SIZE, O::SIZE);
    Ok(ScanRun { y, report })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use dtypes::F16;

    fn setup() -> (ChipSpec, Arc<GlobalMemory>) {
        let spec = ChipSpec::tiny();
        let gm = Arc::new(GlobalMemory::new(spec.hbm_capacity));
        (spec, gm)
    }

    fn cfg(s: usize, blocks: u32, kind: ScanKind) -> McScanConfig {
        McScanConfig { s, blocks, kind }
    }

    #[test]
    fn inclusive_matches_reference_multiblock() {
        let (spec, gm) = setup();
        let data: Vec<i8> = (0..3000).map(|i| ((i * 7) % 9) as i8 - 4).collect();
        let x = GlobalTensor::from_slice(&gm, &data).unwrap();
        let run = mcscan::<i8, i32, i32>(&spec, &gm, &x, cfg(16, 2, ScanKind::Inclusive)).unwrap();
        assert_eq!(
            run.y.to_vec(),
            reference::inclusive_widening::<i8, i32>(&data)
        );
        assert_eq!(run.report.sync_rounds, 1);
    }

    #[test]
    fn exclusive_matches_reference() {
        let (spec, gm) = setup();
        let data: Vec<u8> = (0..2777).map(|i| ((i * 13) % 5 == 0) as u8).collect();
        let x = GlobalTensor::from_slice(&gm, &data).unwrap();
        let run = mcscan::<u8, i16, i32>(&spec, &gm, &x, cfg(16, 2, ScanKind::Exclusive)).unwrap();
        assert_eq!(
            run.y.to_vec(),
            reference::exclusive_widening::<u8, i32>(&data)
        );
    }

    #[test]
    fn single_block_still_works() {
        let (spec, gm) = setup();
        let data: Vec<i8> = (0..500).map(|i| (i % 3) as i8).collect();
        let x = GlobalTensor::from_slice(&gm, &data).unwrap();
        let run = mcscan::<i8, i32, i32>(&spec, &gm, &x, cfg(16, 1, ScanKind::Inclusive)).unwrap();
        assert_eq!(
            run.y.to_vec(),
            reference::inclusive_widening::<i8, i32>(&data)
        );
    }

    #[test]
    fn fp16_inclusive_small_values() {
        let (spec, gm) = setup();
        let data: Vec<F16> = (0..1200).map(|i| F16::from_f32((i % 2) as f32)).collect();
        let x = GlobalTensor::from_slice(&gm, &data).unwrap();
        let run = mcscan::<F16, F16, F16>(&spec, &gm, &x, cfg(16, 2, ScanKind::Inclusive)).unwrap();
        assert_eq!(run.y.to_vec(), reference::inclusive(&data));
    }

    #[test]
    fn input_smaller_than_one_tile() {
        let (spec, gm) = setup();
        let data = vec![2i8, 3, -1, 7];
        let x = GlobalTensor::from_slice(&gm, &data).unwrap();
        let run = mcscan::<i8, i32, i32>(&spec, &gm, &x, cfg(16, 2, ScanKind::Inclusive)).unwrap();
        assert_eq!(run.y.to_vec(), vec![2, 5, 4, 11]);
        let run = mcscan::<i8, i32, i32>(&spec, &gm, &x, cfg(16, 2, ScanKind::Exclusive)).unwrap();
        assert_eq!(run.y.to_vec(), vec![0, 2, 5, 4]);
    }

    #[test]
    fn exclusive_single_element() {
        let (spec, gm) = setup();
        let x = GlobalTensor::from_slice(&gm, &[9i8]).unwrap();
        let run = mcscan::<i8, i32, i32>(&spec, &gm, &x, cfg(16, 1, ScanKind::Exclusive)).unwrap();
        assert_eq!(run.y.to_vec(), vec![0]);
    }

    #[test]
    fn rejects_bad_config() {
        let (spec, gm) = setup();
        let x = GlobalTensor::from_slice(&gm, &[1i8; 8]).unwrap();
        assert!(mcscan::<i8, i32, i32>(&spec, &gm, &x, cfg(10, 1, ScanKind::Inclusive)).is_err());
        assert!(mcscan::<i8, i32, i32>(&spec, &gm, &x, cfg(16, 0, ScanKind::Inclusive)).is_err());
    }

    #[test]
    fn oversubscribed_blocks_wave_multiplex() {
        // More blocks than the tiny chip's 2 AI cores: the launch
        // time-shares slots (including across the SyncAll) and the
        // result is still exact.
        let (spec, gm) = setup();
        let data: Vec<i8> = (0..3000).map(|i| ((i * 5) % 11) as i8 - 5).collect();
        let x = GlobalTensor::from_slice(&gm, &data).unwrap();
        let blocks = spec.ai_cores + 3;
        let run =
            mcscan::<i8, i32, i32>(&spec, &gm, &x, cfg(16, blocks, ScanKind::Inclusive)).unwrap();
        assert_eq!(
            run.y.to_vec(),
            reference::inclusive_widening::<i8, i32>(&data)
        );
        assert_eq!(run.report.sync_rounds, 1);
    }

    #[test]
    fn phase1_recomputation_traffic_shape() {
        // The signature of MCScan: input read twice, output written once
        // in phase 1, output read + written once in phase 2 ⇒ ≈ 3 reads
        // + 2 writes of N elements (plus small r traffic).
        let (spec, gm) = setup();
        let n = 4096usize;
        let data = vec![1i8; n];
        let x = GlobalTensor::from_slice(&gm, &data).unwrap();
        let run = mcscan::<i8, i32, i32>(&spec, &gm, &x, cfg(16, 2, ScanKind::Inclusive)).unwrap();
        let r = &run.report;
        let read_elems_lo = (2 * n + 4 * n) as u64; // x twice (1B) + y once (4B)
        let written_lo = (2 * 4 * n) as u64; // y twice (4B)
        assert!(
            r.bytes_read >= read_elems_lo,
            "{} < {}",
            r.bytes_read,
            read_elems_lo
        );
        assert!(r.bytes_read < read_elems_lo + 4096);
        assert!(r.bytes_written >= written_lo);
        assert!(r.bytes_written < written_lo + 4096);
    }

    #[test]
    fn mcscan_beats_single_core_scanu_on_big_chip() {
        let spec = ChipSpec::ascend_910b4();
        let gm = Arc::new(GlobalMemory::new(spec.hbm_capacity));
        let n = 1 << 21;
        let data = vec![1i8; n];
        let x = GlobalTensor::from_slice(&gm, &data).unwrap();
        let mc = mcscan::<i8, i32, i32>(&spec, &gm, &x, McScanConfig::for_chip(&spec)).unwrap();
        let single = crate::scanu::scanu::<i8, i32>(&spec, &gm, &x, 128).unwrap();
        let speedup = single.report.time_s() / mc.report.time_s();
        assert!(
            speedup > 5.0,
            "MCScan should be much faster than single-core ScanU, got {speedup:.1}x"
        );
        assert_eq!(
            mc.y.to_vec(),
            reference::inclusive_widening::<i8, i32>(&data)
        );
    }
}
