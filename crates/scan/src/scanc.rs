//! **ScanC**: the single-pass chained scan with decoupled look-back
//! (Merrill–Garland style, adapted to the cube/vector split).
//!
//! MCScan needs two passes over the data separated by a `SyncAll`: phase
//! 1 re-reads the input on the vector cores just to produce the block
//! reductions `r`, and phase 2 re-reads the tile-local scans to add the
//! block offsets. ScanC removes both the barrier and the recomputation
//! read: each *lane* (one vector core's contiguous run of tiles) keeps
//! its tile-local scans resident in UB, computes its own aggregate as a
//! by-product of the in-lane propagation, and then **looks back** at a
//! per-lane mailbox in global memory:
//!
//! * lane `L` waits on grid flag `L-1` (a launch-wide counting
//!   semaphore, not a block-local flag register),
//! * reads `mailbox[L-1]` — the inclusive prefix of everything before
//!   it — adds it to its resident tiles,
//! * publishes `mailbox[L] = mailbox[L-1] + aggregate(L)` and sets grid
//!   flag `L` for its successor.
//!
//! Because the cooperative scheduler releases blocks in ascending index
//! order (wave-multiplexing grids larger than the chip), the look-back
//! is always *backward* and never deadlocks, even oversubscribed.
//!
//! Global-memory traffic: the input is read once (cube), the
//! intermediate written once and read once, the output written once —
//! `8` bytes/element for fp16 (vs. MCScan's `10`) and `9` for int8
//! masks (vs. `10`). The price is a serial chain of
//! `flag_wait + mailbox round-trip + flag_set` per lane on the critical
//! path, which the simulator charges in full; ScanC trades wall-clock
//! latency at small sizes for strictly less DRAM traffic.

use crate::triangular::ScanConstants;
use crate::util::tile_spans;
use crate::{finish_report, ScanRun};
use ascend_sim::mem::GlobalMemory;
use ascendc::{
    launch, ChipSpec, GlobalTensor, ScratchpadKind, SimError, SimResult, SpanArgs, TQue,
};
use dtypes::{CubeInput, Element, Numeric};
use std::sync::Arc;

/// ScanC launch parameters.
#[derive(Clone, Copy, Debug)]
pub struct ScanCConfig {
    /// Matmul tile dimension (`ℓ = s²` elements per cube tile).
    pub s: usize,
    /// Tiles each lane keeps resident in UB. This bounds the lane's UB
    /// footprint (`tiles_per_lane · ℓ · O::SIZE` next to one `ℓ ·
    /// M::SIZE` staging buffer) and sets the look-back chain length:
    /// fewer, fatter lanes mean fewer serial chain links but less
    /// launch-wide parallelism.
    pub tiles_per_lane: usize,
}

impl ScanCConfig {
    /// Default configuration for a chip: `s = 128` (the 910B4's
    /// L0-filling tile) and as many resident tiles per lane as UB holds
    /// next to the `M`-typed staging buffer.
    pub fn for_chip<M: Element, O: Element>(spec: &ChipSpec) -> Self {
        let s = 128;
        let l = s * s;
        let budget = spec.ub_capacity.saturating_sub(l * M::SIZE + 64);
        ScanCConfig {
            s,
            tiles_per_lane: (budget / (l * O::SIZE)).max(1),
        }
    }
}

/// Runs ScanC over `x`, producing the inclusive scan in element type
/// `O`. Type parameters follow [`crate::mcscan::mcscan`]: `T` is the
/// cube input, `M` the intermediate the tile-local scans travel through
/// global memory as, `O` the output —
///
/// * fp16: `scanc::<F16, F16, F16>`;
/// * int8 masks: `scanc::<u8, i16, i32>`.
///
/// `M` must hold `ℓ` times the largest input value (a tile-local scan
/// never exceeds that).
pub fn scanc<T, M, O>(
    spec: &ChipSpec,
    gm: &Arc<GlobalMemory>,
    x: &GlobalTensor<T>,
    cfg: ScanCConfig,
) -> SimResult<ScanRun<O>>
where
    T: CubeInput,
    M: Numeric,
    O: Numeric,
{
    if cfg.s == 0 || !cfg.s.is_multiple_of(16) {
        return Err(SimError::InvalidArgument(format!(
            "ScanC: s must be a positive multiple of 16, got {}",
            cfg.s
        )));
    }
    if cfg.tiles_per_lane == 0 {
        return Err(SimError::InvalidArgument(
            "ScanC: tiles_per_lane must be at least 1".into(),
        ));
    }
    if spec.flag_id_limit < spec.vec_per_core {
        return Err(SimError::InvalidArgument(format!(
            "ScanC: chip has fewer flag ids ({}) than vector cores per AI \
             core ({}); the per-vector flag-id partitions would collide",
            spec.flag_id_limit, spec.vec_per_core
        )));
    }
    let n = x.len();
    let s = cfg.s;
    let l = s * s;
    let tpl = cfg.tiles_per_lane;
    let consts = ScanConstants::<T>::upload(gm, s)?;
    let y = GlobalTensor::<O>::new(gm, n)?;
    let w = GlobalTensor::<M>::new(gm, n)?;

    let tiles = tile_spans(n, l);
    let vpc = spec.vec_per_core as usize;
    // Lane layout: lane L owns tiles [L·tpl, L·tpl + tpl); every lane
    // below `nlanes` is non-empty, so the look-back chain has no holes.
    let nlanes = tiles.len().div_ceil(tpl).max(1);
    let blocks = nlanes.div_ceil(vpc).max(1) as u32;
    // One mailbox slot per lane: lane L's inclusive prefix of the input
    // through its last element.
    let mailbox = GlobalTensor::<O>::new(gm, nlanes)?;
    // Cross-core flag registers are partitioned per vector core so the
    // per-id FIFOs never pair a cube set for lane A with a wait from
    // lane B; grid flag ids cycle launch-wide (the registry's per-id
    // FIFO pairs lane L's set with lane L+1's wait because lanes both
    // publish and consume in ascending execution order).
    let flag_ids = spec.flag_id_limit;
    let per_vec_ids = (flag_ids / spec.vec_per_core).max(1);

    let mut report = launch(spec, gm, blocks, "ScanC", |ctx| {
        let block = ctx.block_idx as usize;
        let vpc = ctx.vecs.len();

        // ---- Cube core: tile-local scans for this block's lanes. ----
        let phase = ctx.span_begin("CubeLocalScans");
        {
            let flags = &ctx.flags;
            let cube = &mut ctx.cube;
            let mut lb = cube.alloc_local::<T>(ScratchpadKind::L0B, l)?;
            cube.copy_in(&mut lb, 0, &consts.upper, 0, l, &[])?;
            let da = if 2 * l * T::SIZE <= cube.spec().l0a_capacity {
                2
            } else {
                1
            };
            let dc = if 2 * l * <T::Acc as Element>::SIZE <= cube.spec().l0c_capacity {
                2
            } else {
                1
            };
            let mut qa = TQue::<T>::new(cube, ScratchpadKind::L0A, da, l)?.named("qa(L0A)");
            let mut qc = TQue::<T::Acc>::new(cube, ScratchpadKind::L0C, dc, l)?.named("qc(L0C)");
            for v in 0..vpc {
                let lane = block * vpc + v;
                let t0 = lane * tpl;
                if t0 >= tiles.len() {
                    break;
                }
                let tcount = tpl.min(tiles.len() - t0);
                for (i, &(off, valid)) in tiles[t0..t0 + tcount].iter().enumerate() {
                    let rows = valid.div_ceil(s);
                    let tile = cube.span_begin("tile");
                    let mut la = qa.alloc_tensor()?;
                    if valid < rows * s {
                        cube.fill_local(&mut la, 0, rows * s, T::zero())?;
                    }
                    cube.copy_in(&mut la, 0, x, off, valid, &[])?;
                    let mut lc = qc.alloc_tensor()?;
                    let mm = cube.mmad::<T>(&mut lc, &mut la, &mut lb, rows, s, s, false)?;
                    qa.free_tensor(la, mm);
                    let ev = cube.copy_out_cast::<T::Acc, M>(&w, off, &lc, 0, valid, &[])?;
                    qc.free_tensor(lc, ev);
                    cube.span_args(
                        tile,
                        SpanArgs {
                            bytes: (valid * (T::SIZE + M::SIZE)) as u64,
                            kind: "mmad",
                            queue_depth: da as u32,
                        },
                    );
                    cube.span_end_at(tile, ev);
                    cube.set_flag(
                        flags,
                        v as u32 * per_vec_ids + (i as u32 % per_vec_ids),
                        &[ev],
                    )?;
                }
            }
            cube.free_local(lb)?;
            qa.destroy(cube)?;
            qc.destroy(cube)?;
        }
        ctx.span_end(phase);

        // ---- Vector lanes: in-lane propagation, then look-back. ----
        let phase = ctx.span_begin("VecLookback");
        let grid = ctx.grid();
        for v in 0..vpc {
            let lane = block * vpc + v;
            let t0 = lane * tpl;
            if t0 >= tiles.len() {
                continue;
            }
            let tcount = tpl.min(tiles.len() - t0);
            let flags = &ctx.flags;
            let vc = &mut ctx.vecs[v];

            // Load every tile of the lane into a resident UB buffer,
            // propagating the running partial through it on the way in;
            // after the last tile `partial` is the lane aggregate.
            let mut staging = vc.alloc_local::<M>(ScratchpadKind::Ub, l)?;
            let mut bufs = Vec::with_capacity(tcount);
            let mut partial = O::zero();
            let mut partial_ready = 0;
            let mut cast_done = 0;
            for (i, &(off, valid)) in tiles[t0..t0 + tcount].iter().enumerate() {
                let tile = vc.span_begin("tile");
                let ready =
                    vc.wait_flag(flags, v as u32 * per_vec_ids + (i as u32 % per_vec_ids))?;
                vc.copy_in(&mut staging, 0, &w, off, valid, &[ready, cast_done])?;
                let mut buf = vc.alloc_local::<O>(ScratchpadKind::Ub, valid)?;
                cast_done = vc.vcast::<M, O>(&mut buf, &staging, 0, valid)?;
                for (row_off, row_len) in tile_spans(valid, s) {
                    vc.vadds(&mut buf, row_off, row_len, partial, partial_ready)?;
                    let (p, pr) = vc.extract(&buf, row_off + row_len - 1)?;
                    partial = p;
                    partial_ready = pr;
                }
                vc.span_args(
                    tile,
                    SpanArgs {
                        bytes: (valid * (M::SIZE + O::SIZE)) as u64,
                        kind: "propagate",
                        queue_depth: 1,
                    },
                );
                vc.span_end_at(tile, partial_ready);
                bufs.push(buf);
            }

            // Look-back: the predecessor lane's mailbox holds the
            // inclusive prefix of everything before this lane.
            let lookback = vc.span_begin("lookback");
            let mut mb = vc.alloc_local::<O>(ScratchpadKind::Ub, 1)?;
            let (prev, prev_ready) = if lane > 0 {
                let seen = vc.wait_grid_flag(grid, ((lane - 1) % flag_ids as usize) as u32)?;
                vc.copy_in(&mut mb, 0, &mailbox, lane - 1, 1, &[seen])?;
                vc.extract(&mb, 0)?
            } else {
                (O::zero(), 0)
            };

            // Publish as early as possible: add the prefix to the *last*
            // tile first, so the successor unblocks before the bulk of
            // this lane's output work.
            let last = bufs.len() - 1;
            let last_valid = tiles[t0 + last].1;
            vc.vadds(&mut bufs[last], 0, last_valid, prev, prev_ready)?;
            let (incl, incl_ready) = vc.extract(&bufs[last], last_valid - 1)?;
            vc.insert(&mut mb, 0, incl, incl_ready)?;
            let stored = vc.copy_out(&mailbox, lane, &mb, 0, 1, &[])?;
            if lane + 1 < nlanes {
                vc.set_grid_flag(grid, (lane % flag_ids as usize) as u32, &[stored])?;
            }
            vc.span_end_at(lookback, stored);

            // Finish the lane: offset the remaining tiles and store y.
            for (i, buf) in bufs.iter_mut().enumerate() {
                let (off, valid) = tiles[t0 + i];
                if i != last {
                    vc.vadds(buf, 0, valid, prev, prev_ready)?;
                }
                vc.copy_out(&y, off, buf, 0, valid, &[])?;
            }
            for buf in bufs {
                vc.free_local(buf)?;
            }
            vc.free_local(mb)?;
            vc.free_local(staging)?;
        }
        ctx.span_end(phase);
        Ok(())
    })?;

    finish_report(&mut report, n, T::SIZE, O::SIZE);
    Ok(ScanRun { y, report })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mcscan::{mcscan, McScanConfig, ScanKind};
    use crate::reference;
    use dtypes::F16;

    fn setup() -> (ChipSpec, Arc<GlobalMemory>) {
        let spec = ChipSpec::tiny();
        let gm = Arc::new(GlobalMemory::new(spec.hbm_capacity));
        (spec, gm)
    }

    fn cfg(s: usize, tiles_per_lane: usize) -> ScanCConfig {
        ScanCConfig { s, tiles_per_lane }
    }

    #[test]
    fn matches_reference_multi_lane() {
        let (spec, gm) = setup();
        // 3000 elements / 256-elem tiles = 12 tiles; tpl=2 → 6 lanes →
        // 3 blocks on the tiny chip (intra- and inter-block chaining).
        let data: Vec<i8> = (0..3000).map(|i| ((i * 7) % 11) as i8 - 5).collect();
        let x = GlobalTensor::from_slice(&gm, &data).unwrap();
        let run = scanc::<i8, i16, i32>(&spec, &gm, &x, cfg(16, 2)).unwrap();
        assert_eq!(
            run.y.to_vec(),
            reference::inclusive_widening::<i8, i32>(&data)
        );
        assert_eq!(run.report.blocks, 3);
        // No barrier: the whole point of the chained look-back.
        assert_eq!(run.report.sync_rounds, 0);
    }

    #[test]
    fn oversubscribed_lanes_wave_multiplex() {
        // tpl=1 → 12 lanes → 6 blocks on 2 AI cores: the grid
        // oversubscribes and the look-back chain spans waves.
        let (spec, gm) = setup();
        let data: Vec<i8> = (0..3000).map(|i| ((i * 5) % 9) as i8 - 4).collect();
        let x = GlobalTensor::from_slice(&gm, &data).unwrap();
        let run = scanc::<i8, i16, i32>(&spec, &gm, &x, cfg(16, 1)).unwrap();
        assert_eq!(
            run.y.to_vec(),
            reference::inclusive_widening::<i8, i32>(&data)
        );
        assert_eq!(run.report.blocks, 6);
        assert!(run.report.blocks > spec.ai_cores);
    }

    #[test]
    fn fp16_small_values_exact() {
        let (spec, gm) = setup();
        // Sum < 2048 keeps every partial exact in f16, so any
        // association (lane-local scan + one offset add) is exact too.
        let data: Vec<F16> = (0..700).map(|i| F16::from_f32((i % 4) as f32)).collect();
        let x = GlobalTensor::from_slice(&gm, &data).unwrap();
        let run = scanc::<F16, F16, F16>(&spec, &gm, &x, cfg(16, 2)).unwrap();
        assert_eq!(run.y.to_vec(), reference::inclusive(&data));
    }

    #[test]
    fn mask_scan_u8_to_i32() {
        let (spec, gm) = setup();
        let data: Vec<u8> = (0..1000).map(|i| ((i * 13) % 3 == 0) as u8).collect();
        let x = GlobalTensor::from_slice(&gm, &data).unwrap();
        let run = scanc::<u8, i16, i32>(&spec, &gm, &x, cfg(16, 2)).unwrap();
        assert_eq!(
            run.y.to_vec(),
            reference::inclusive_widening::<u8, i32>(&data)
        );
    }

    #[test]
    fn partial_tail_tile() {
        let (spec, gm) = setup();
        let data: Vec<i8> = (0..600).map(|i| ((i * 7) % 11) as i8 - 5).collect();
        let x = GlobalTensor::from_slice(&gm, &data).unwrap();
        let run = scanc::<i8, i16, i32>(&spec, &gm, &x, cfg(16, 2)).unwrap();
        assert_eq!(
            run.y.to_vec(),
            reference::inclusive_widening::<i8, i32>(&data)
        );
    }

    #[test]
    fn single_tile_and_empty() {
        let (spec, gm) = setup();
        let data = vec![2i8, 3, -1, 7];
        let x = GlobalTensor::from_slice(&gm, &data).unwrap();
        let run = scanc::<i8, i16, i32>(&spec, &gm, &x, cfg(16, 2)).unwrap();
        assert_eq!(run.y.to_vec(), vec![2, 5, 4, 11]);

        let empty = GlobalTensor::<i8>::new(&gm, 0).unwrap();
        let run = scanc::<i8, i16, i32>(&spec, &gm, &empty, cfg(16, 2)).unwrap();
        assert_eq!(run.report.elements, 0);
    }

    #[test]
    fn rejects_bad_config() {
        let (spec, gm) = setup();
        let x = GlobalTensor::from_slice(&gm, &[1i8; 8]).unwrap();
        assert!(scanc::<i8, i16, i32>(&spec, &gm, &x, cfg(0, 1)).is_err());
        assert!(scanc::<i8, i16, i32>(&spec, &gm, &x, cfg(20, 1)).is_err());
        assert!(scanc::<i8, i16, i32>(&spec, &gm, &x, cfg(16, 0)).is_err());
    }

    #[test]
    fn report_has_sane_metrics() {
        let (spec, gm) = setup();
        let n = 4096usize;
        let data = vec![1i8; n];
        let x = GlobalTensor::from_slice(&gm, &data).unwrap();
        let run = scanc::<i8, i16, i32>(&spec, &gm, &x, cfg(16, 2)).unwrap();
        let r = &run.report;
        // x once (1B) + w once (2B) read; w write (2B) + y write (4B).
        let read_lo = (n + 2 * n) as u64;
        let written_lo = (2 * n + 4 * n) as u64;
        assert!(r.bytes_read >= read_lo, "{} < {read_lo}", r.bytes_read);
        assert!(r.bytes_read < read_lo + 8192, "{}", r.bytes_read);
        assert!(r.bytes_written >= written_lo);
        assert!(r.bytes_written < written_lo + 4096);
        assert_eq!(r.useful_bytes, (n * (1 + 4)) as u64);
        assert_eq!(r.sync_rounds, 0);
    }

    #[test]
    fn moves_fewer_bytes_than_mcscan() {
        // The tentpole claim: dropping the recomputation read cuts
        // total GM traffic below MCScan's for the same input.
        let (spec, gm) = setup();
        let data: Vec<i8> = (0..6000).map(|i| (i % 7) as i8).collect();
        let x = GlobalTensor::from_slice(&gm, &data).unwrap();
        let sc = scanc::<i8, i16, i32>(&spec, &gm, &x, cfg(16, 2)).unwrap();
        let mc = mcscan::<i8, i16, i32>(
            &spec,
            &gm,
            &x,
            McScanConfig {
                s: 16,
                blocks: 2,
                kind: ScanKind::Inclusive,
            },
        )
        .unwrap();
        assert_eq!(sc.y.to_vec(), mc.y.to_vec());
        let sc_total = sc.report.bytes_read + sc.report.bytes_written;
        let mc_total = mc.report.bytes_read + mc.report.bytes_written;
        assert!(
            sc_total < mc_total,
            "ScanC moved {sc_total} B, MCScan {mc_total} B"
        );
    }
}
