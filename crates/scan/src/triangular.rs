//! Builders for the constant matrices the scan algorithms multiply by:
//! `U_s` (upper-triangular ones, including the diagonal), `L_s` (lower-
//! triangular ones), `L_s^-` (strictly lower-triangular ones) and `1_s`
//! (all ones). Row-major, size `s × s`.
//!
//! On the real device these are pre-allocated once by the PyTorch
//! operator wrapper; kernels here likewise upload them once per launch
//! and stage them in L1.

use ascend_sim::mem::GlobalMemory;
use ascendc::{GlobalTensor, SimResult};
use dtypes::Numeric;
use std::sync::Arc;

/// `U_s`: ones on and above the main diagonal.
pub fn upper_ones<T: Numeric>(s: usize) -> Vec<T> {
    build(s, |i, j| i <= j)
}

/// `L_s`: ones on and below the main diagonal.
pub fn lower_ones<T: Numeric>(s: usize) -> Vec<T> {
    build(s, |i, j| i >= j)
}

/// `L_s^-`: ones strictly below the main diagonal.
pub fn strict_lower_ones<T: Numeric>(s: usize) -> Vec<T> {
    build(s, |i, j| i > j)
}

/// `1_s`: the all-ones matrix.
pub fn all_ones<T: Numeric>(s: usize) -> Vec<T> {
    vec![T::one(); s * s]
}

fn build<T: Numeric>(s: usize, pred: impl Fn(usize, usize) -> bool) -> Vec<T> {
    let mut m = Vec::with_capacity(s * s);
    for i in 0..s {
        for j in 0..s {
            m.push(if pred(i, j) { T::one() } else { T::zero() });
        }
    }
    m
}

/// The constant matrices a scan kernel may need, uploaded to global
/// memory once (mirrors the paper's statically pre-allocated `U_s`).
pub struct ScanConstants<T: Numeric> {
    /// Tile dimension `s`.
    pub s: usize,
    /// `U_s` in global memory.
    pub upper: GlobalTensor<T>,
    /// `L_s^-` in global memory.
    pub strict_lower: GlobalTensor<T>,
    /// `1_s` in global memory.
    pub ones: GlobalTensor<T>,
}

impl<T: Numeric> ScanConstants<T> {
    /// Uploads `U_s`, `L_s^-` and `1_s` for tile size `s`.
    pub fn upload(gm: &Arc<GlobalMemory>, s: usize) -> SimResult<Self> {
        Ok(ScanConstants {
            s,
            upper: GlobalTensor::from_slice(gm, &upper_ones::<T>(s))?,
            strict_lower: GlobalTensor::from_slice(gm, &strict_lower_ones::<T>(s))?,
            ones: GlobalTensor::from_slice(gm, &all_ones::<T>(s))?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtypes::F16;

    #[test]
    fn upper_ones_pattern() {
        let u = upper_ones::<i8>(3);
        assert_eq!(u, vec![1, 1, 1, 0, 1, 1, 0, 0, 1]);
    }

    #[test]
    fn lower_and_strict_lower() {
        let l = lower_ones::<i32>(3);
        assert_eq!(l, vec![1, 0, 0, 1, 1, 0, 1, 1, 1]);
        let lm = strict_lower_ones::<i32>(3);
        assert_eq!(lm, vec![0, 0, 0, 1, 0, 0, 1, 1, 0]);
        // U + L^- = all-ones.
        let u = upper_ones::<i32>(3);
        let sum: Vec<i32> = u.iter().zip(&lm).map(|(a, b)| a + b).collect();
        assert_eq!(sum, all_ones::<i32>(3));
    }

    #[test]
    fn f16_matrices() {
        let u = upper_ones::<F16>(2);
        assert_eq!(u, vec![F16::ONE, F16::ONE, F16::ZERO, F16::ONE]);
        assert_eq!(all_ones::<F16>(2), vec![F16::ONE; 4]);
    }

    #[test]
    fn upload_constants() {
        let gm = Arc::new(GlobalMemory::new(1 << 20));
        let c = ScanConstants::<i8>::upload(&gm, 4).unwrap();
        assert_eq!(c.upper.to_vec(), upper_ones::<i8>(4));
        assert_eq!(c.strict_lower.to_vec(), strict_lower_ones::<i8>(4));
        assert_eq!(c.ones.to_vec(), all_ones::<i8>(4));
        assert_eq!(c.s, 4);
    }
}
