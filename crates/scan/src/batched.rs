//! Batched (multi-array) scans — §4.2.
//!
//! A batched scan computes independent prefix sums over `batch` arrays of
//! equal length. The two schedules mirror the paper's Figure 4:
//!
//! * [`batched_scanu`] extends ScanU and exploits the 910B's 2-to-1
//!   vector-to-cube ratio: each AI core's cube engine computes the
//!   tile-local scans of *two* batch rows interleaved, and the core's two
//!   vector cores each complete the propagation of one of the rows.
//! * [`batched_scanul1`] extends ScanUL1: each AI core runs the full
//!   single-core ScanUL1 pipeline on whole rows assigned round-robin.
//!
//! Fig. 5's finding reproduces from these schedules: ScanU-batched wins
//! for many short rows (its per-row pipeline has lower latency and uses
//! both vector cores), ScanUL1-batched wins for few long rows (its
//! steady-state per-element cost is lower, but only one row per AI core
//! progresses at a time).

use crate::triangular::ScanConstants;
use crate::util::tile_spans;
use crate::{finish_report, ScanRun};
use ascend_sim::mem::GlobalMemory;
use ascendc::{
    launch, ChipSpec, GlobalTensor, ScratchpadKind, SimError, SimResult, SpanArgs, TQue,
};
use dtypes::{CubeInput, Numeric};
use std::sync::Arc;

fn check_batched_args(
    spec: &ChipSpec,
    total: usize,
    batch: usize,
    len: usize,
    s: usize,
    what: &str,
) -> SimResult<()> {
    if s == 0 || !s.is_multiple_of(16) {
        return Err(SimError::InvalidArgument(format!(
            "{what}: s must be a positive multiple of 16, got {s}"
        )));
    }
    if batch == 0 || len == 0 || batch * len != total {
        return Err(SimError::InvalidArgument(format!(
            "{what}: batch {batch} x len {len} does not match tensor of {total} elements"
        )));
    }
    let _ = spec;
    Ok(())
}

/// Batched scan based on ScanU (Algorithm 1): rows are processed in
/// pairs per AI core — the cube interleaves both rows' tiles and each
/// vector core owns one row of the pair.
///
/// `x` holds `batch` rows of `len` elements, row-major.
#[allow(clippy::needless_range_loop)]
pub fn batched_scanu<T, O>(
    spec: &ChipSpec,
    gm: &Arc<GlobalMemory>,
    x: &GlobalTensor<T>,
    batch: usize,
    len: usize,
    s: usize,
) -> SimResult<ScanRun<O>>
where
    T: CubeInput,
    O: Numeric,
{
    check_batched_args(spec, x.len(), batch, len, s, "batched ScanU")?;
    let l = s * s;
    let consts = ScanConstants::<T>::upload(gm, s)?;
    let y = GlobalTensor::<O>::new(gm, batch * len)?;
    let spans = tile_spans(len, l);
    let pairs = batch.div_ceil(2);
    let blocks = (spec.ai_cores as usize).min(pairs) as u32;

    let mut report = launch(spec, gm, blocks, "BatchedScanU", |ctx| {
        let block = ctx.block_idx as usize;
        let nblocks = ctx.block_dim as usize;
        let vec_per_core = ctx.vecs.len();
        // Rows handled by this block: pairs assigned round-robin.
        let my_pairs: Vec<usize> = (block..pairs).step_by(nblocks).collect();

        // ---- Cube core: interleave the pair's rows tile by tile. ----
        // The cube alternates lanes within a tile while each vector core
        // drains one lane sequentially, so the flag-id space is split in
        // half per lane: within a lane, set order equals wait order, and
        // the per-id FIFO keeps the pairs aligned.
        let phase = ctx.span_begin("CubePairedTileScans");
        let half = ctx.flags.limit() / 2;
        let mut fid: Vec<Vec<Vec<u32>>> = vec![vec![Vec::new(); vec_per_core]; my_pairs.len()];
        {
            let flags = &ctx.flags;
            let cube = &mut ctx.cube;
            let mut lb = cube.alloc_local::<T>(ScratchpadKind::L0B, l)?;
            cube.copy_in(&mut lb, 0, &consts.upper, 0, l, &[])?;
            let mut qa = TQue::<T>::new(cube, ScratchpadKind::L0A, 2, l)?.named("qa(L0A)");
            let mut qc = TQue::<T::Acc>::new(cube, ScratchpadKind::L0C, 2, l)?.named("qc(L0C)");
            for (pi, &pair) in my_pairs.iter().enumerate() {
                for &(off, valid) in &spans {
                    for lane in 0..vec_per_core.min(2) {
                        let row = pair * 2 + lane;
                        if row >= batch {
                            continue;
                        }
                        let base = row * len;
                        let rows = valid.div_ceil(s);
                        let tile = cube.span_begin("tile");
                        let mut la = qa.alloc_tensor()?;
                        if valid < rows * s {
                            cube.fill_local(&mut la, 0, rows * s, T::zero())?;
                        }
                        cube.copy_in(&mut la, 0, x, base + off, valid, &[])?;
                        let mut lc = qc.alloc_tensor()?;
                        let mm = cube.mmad::<T>(&mut lc, &mut la, &mut lb, rows, s, s, false)?;
                        qa.free_tensor(la, mm);
                        let ev =
                            cube.copy_out_cast::<T::Acc, O>(&y, base + off, &lc, 0, valid, &[])?;
                        qc.free_tensor(lc, ev);
                        cube.span_args(
                            tile,
                            SpanArgs {
                                bytes: (valid * (T::SIZE + O::SIZE)) as u64,
                                kind: "mmad",
                                queue_depth: 2,
                            },
                        );
                        cube.span_end_at(tile, ev);
                        let k: usize = fid[..=pi].iter().map(|p| p[lane].len()).sum();
                        let id = lane as u32 * half + (k as u32 % half);
                        cube.set_flag(flags, id, &[ev])?;
                        fid[pi][lane].push(id);
                    }
                }
            }
            cube.free_local(lb)?;
            qa.destroy(cube)?;
            qc.destroy(cube)?;
        }
        ctx.span_end(phase);

        // ---- Vector cores: one row of each pair per core. ----
        let phase = ctx.span_begin("VecPropagation");
        for lane in 0..vec_per_core.min(2) {
            let flags = &ctx.flags;
            let vc = &mut ctx.vecs[lane];
            let mut q = TQue::<O>::new(vc, ScratchpadKind::Ub, 2, l)?.named("q(UB)");
            for (pi, &pair) in my_pairs.iter().enumerate() {
                let row = pair * 2 + lane;
                if row >= batch {
                    continue;
                }
                let base = row * len;
                let mut partial = O::zero();
                let mut partial_ready = 0;
                for (t, &(off, valid)) in spans.iter().enumerate() {
                    let tile = vc.span_begin("tile");
                    let ready = vc.wait_flag(flags, fid[pi][lane][t])?;
                    let mut buf = q.alloc_tensor()?;
                    vc.copy_in(&mut buf, 0, &y, base + off, valid, &[ready])?;
                    for (row_off, row_len) in tile_spans(valid, s) {
                        vc.vadds(&mut buf, row_off, row_len, partial, partial_ready)?;
                        let (p, pr) = vc.extract(&buf, row_off + row_len - 1)?;
                        partial = p;
                        partial_ready = pr;
                    }
                    let ev = vc.copy_out(&y, base + off, &buf, 0, valid, &[])?;
                    q.free_tensor(buf, ev);
                    vc.span_args(
                        tile,
                        SpanArgs {
                            bytes: (2 * valid * O::SIZE) as u64,
                            kind: "vadds",
                            queue_depth: 2,
                        },
                    );
                    vc.span_end_at(tile, ev);
                }
            }
            q.destroy(vc)?;
        }
        ctx.span_end(phase);
        Ok(())
    })?;

    finish_report(&mut report, batch * len, T::SIZE, O::SIZE);
    Ok(ScanRun { y, report })
}

/// Batched scan based on ScanUL1 (Algorithm 2): each AI core runs the
/// complete three-matmul pipeline on whole rows, assigned round-robin.
pub fn batched_scanul1<T, O>(
    spec: &ChipSpec,
    gm: &Arc<GlobalMemory>,
    x: &GlobalTensor<T>,
    batch: usize,
    len: usize,
    s: usize,
) -> SimResult<ScanRun<O>>
where
    T: CubeInput,
    O: Numeric,
{
    check_batched_args(spec, x.len(), batch, len, s, "batched ScanUL1")?;
    let l = s * s;
    let consts = ScanConstants::<T>::upload(gm, s)?;
    let y = GlobalTensor::<O>::new(gm, batch * len)?;
    let spans = tile_spans(len, l);
    let blocks = (spec.ai_cores as usize).min(batch) as u32;

    let mut report = launch(spec, gm, blocks, "BatchedScanUL1", |ctx| {
        let block = ctx.block_idx as usize;
        let nblocks = ctx.block_dim as usize;
        let my_rows: Vec<usize> = (block..batch).step_by(nblocks).collect();

        // Tile hand-offs cycle the chip's flag registers in (row, tile)
        // order; the single vector core waits in the same order, so the
        // per-id FIFOs stay aligned.
        let phase = ctx.span_begin("CubeThreeMatmuls");
        let flag_ids = ctx.flags.limit();
        let nspans = spans.len();
        {
            let flags = &ctx.flags;
            let cube = &mut ctx.cube;
            let mut l1_u = cube.alloc_local::<T>(ScratchpadKind::L1, l)?;
            let mut l1_lm = cube.alloc_local::<T>(ScratchpadKind::L1, l)?;
            let mut l1_ones = cube.alloc_local::<T>(ScratchpadKind::L1, l)?;
            cube.copy_in(&mut l1_u, 0, &consts.upper, 0, l, &[])?;
            cube.copy_in(&mut l1_lm, 0, &consts.strict_lower, 0, l, &[])?;
            cube.copy_in(&mut l1_ones, 0, &consts.ones, 0, l, &[])?;
            let mut l1_c1 = cube.alloc_local::<T>(ScratchpadKind::L1, l)?;
            let mut qa = TQue::<T>::new(cube, ScratchpadKind::L0A, 2, l)?.named("qa(L0A)");
            let mut lb = cube.alloc_local::<T>(ScratchpadKind::L0B, l)?;
            let mut c1 = cube.alloc_local::<T::Acc>(ScratchpadKind::L0C, l)?;
            let mut c2 = cube.alloc_local::<T::Acc>(ScratchpadKind::L0C, l)?;

            for (ri, &row) in my_rows.iter().enumerate() {
                let base = row * len;
                for (t, &(off, valid)) in spans.iter().enumerate() {
                    let tile = cube.span_begin("tile");
                    let mut la = qa.alloc_tensor()?;
                    if valid < l {
                        cube.fill_local(&mut la, 0, l, T::zero())?;
                    }
                    cube.copy_in(&mut la, 0, x, base + off, valid, &[])?;

                    cube.copy_local(&mut lb, 0, &l1_ones, 0, l)?;
                    cube.mmad::<T>(&mut c1, &mut la, &mut lb, s, s, s, false)?;
                    cube.copy_local_cast::<T::Acc, T>(&mut l1_c1, 0, &c1, 0, l)?;

                    cube.copy_local(&mut lb, 0, &l1_u, 0, l)?;
                    let mm2 = cube.mmad::<T>(&mut c2, &mut la, &mut lb, s, s, s, false)?;
                    qa.free_tensor(la, mm2);

                    let mut la2 = qa.alloc_tensor()?;
                    cube.copy_local(&mut la2, 0, &l1_lm, 0, l)?;
                    cube.copy_local(&mut lb, 0, &l1_c1, 0, l)?;
                    let mm3 = cube.mmad::<T>(&mut c2, &mut la2, &mut lb, s, s, s, true)?;
                    qa.free_tensor(la2, mm3);

                    let ev = cube.copy_out_cast::<T::Acc, O>(&y, base + off, &c2, 0, valid, &[])?;
                    cube.span_args(
                        tile,
                        SpanArgs {
                            bytes: (valid * (T::SIZE + O::SIZE)) as u64,
                            kind: "mmad3",
                            queue_depth: 2,
                        },
                    );
                    cube.span_end_at(tile, ev);
                    cube.set_flag(flags, (ri * nspans + t) as u32 % flag_ids, &[ev])?;
                }
            }
            cube.free_local(c2)?;
            cube.free_local(c1)?;
            cube.free_local(lb)?;
            cube.free_local(l1_c1)?;
            cube.free_local(l1_ones)?;
            cube.free_local(l1_lm)?;
            cube.free_local(l1_u)?;
            qa.destroy(cube)?;
        }
        ctx.span_end(phase);

        // One vector core per AI core completes the rows (the second
        // vector core is idle — the schedule's known inefficiency that
        // Fig. 5 exposes for large batch counts).
        let phase = ctx.span_begin("VecPropagation");
        {
            let flags = &ctx.flags;
            let vc = &mut ctx.vecs[0];
            let mut q = TQue::<O>::new(vc, ScratchpadKind::Ub, 2, l)?.named("q(UB)");
            for (ri, &row) in my_rows.iter().enumerate() {
                let base = row * len;
                let mut partial = O::zero();
                let mut partial_ready = 0;
                for (t, &(off, valid)) in spans.iter().enumerate() {
                    let tile = vc.span_begin("tile");
                    let ready = vc.wait_flag(flags, (ri * nspans + t) as u32 % flag_ids)?;
                    let mut buf = q.alloc_tensor()?;
                    vc.copy_in(&mut buf, 0, &y, base + off, valid, &[ready])?;
                    vc.vadds(&mut buf, 0, valid, partial, partial_ready)?;
                    let (p, pr) = vc.extract(&buf, valid - 1)?;
                    partial = p;
                    partial_ready = pr;
                    let ev = vc.copy_out(&y, base + off, &buf, 0, valid, &[])?;
                    q.free_tensor(buf, ev);
                    vc.span_args(
                        tile,
                        SpanArgs {
                            bytes: (2 * valid * O::SIZE) as u64,
                            kind: "vadds",
                            queue_depth: 2,
                        },
                    );
                    vc.span_end_at(tile, ev);
                }
            }
            q.destroy(vc)?;
        }
        ctx.span_end(phase);
        Ok(())
    })?;

    finish_report(&mut report, batch * len, T::SIZE, O::SIZE);
    Ok(ScanRun { y, report })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use dtypes::F16;

    fn setup() -> (ChipSpec, Arc<GlobalMemory>) {
        let spec = ChipSpec::tiny();
        let gm = Arc::new(GlobalMemory::new(spec.hbm_capacity));
        (spec, gm)
    }

    fn rows_reference(data: &[i8], batch: usize, len: usize) -> Vec<i32> {
        let mut out = Vec::with_capacity(batch * len);
        for b in 0..batch {
            out.extend(reference::inclusive_widening::<i8, i32>(
                &data[b * len..(b + 1) * len],
            ));
        }
        out
    }

    #[test]
    fn batched_scanu_matches_rowwise_reference() {
        let (spec, gm) = setup();
        let (batch, len) = (5, 300);
        let data: Vec<i8> = (0..batch * len).map(|i| ((i * 7) % 9) as i8 - 4).collect();
        let x = GlobalTensor::from_slice(&gm, &data).unwrap();
        let run = batched_scanu::<i8, i32>(&spec, &gm, &x, batch, len, 16).unwrap();
        assert_eq!(run.y.to_vec(), rows_reference(&data, batch, len));
    }

    #[test]
    fn batched_scanul1_matches_rowwise_reference() {
        let (spec, gm) = setup();
        let (batch, len) = (3, 700);
        let data: Vec<i8> = (0..batch * len).map(|i| ((i * 5) % 7) as i8 - 3).collect();
        let x = GlobalTensor::from_slice(&gm, &data).unwrap();
        let run = batched_scanul1::<i8, i32>(&spec, &gm, &x, batch, len, 16).unwrap();
        assert_eq!(run.y.to_vec(), rows_reference(&data, batch, len));
    }

    #[test]
    fn both_schedules_agree_f16() {
        let (spec, gm) = setup();
        let (batch, len) = (4, 260);
        let data: Vec<F16> = (0..batch * len)
            .map(|i| F16::from_f32((i % 3) as f32))
            .collect();
        let x = GlobalTensor::from_slice(&gm, &data).unwrap();
        let a = batched_scanu::<F16, F16>(&spec, &gm, &x, batch, len, 16).unwrap();
        let b = batched_scanul1::<F16, F16>(&spec, &gm, &x, batch, len, 16).unwrap();
        assert_eq!(a.y.to_vec(), b.y.to_vec());
    }

    #[test]
    fn odd_batch_count() {
        let (spec, gm) = setup();
        let (batch, len) = (7, 64);
        let data: Vec<i8> = (0..batch * len).map(|i| (i % 4) as i8).collect();
        let x = GlobalTensor::from_slice(&gm, &data).unwrap();
        let run = batched_scanu::<i8, i32>(&spec, &gm, &x, batch, len, 16).unwrap();
        assert_eq!(run.y.to_vec(), rows_reference(&data, batch, len));
    }

    #[test]
    fn single_row_batch() {
        let (spec, gm) = setup();
        let data: Vec<i8> = (0..100).map(|i| (i % 5) as i8 - 2).collect();
        let x = GlobalTensor::from_slice(&gm, &data).unwrap();
        let a = batched_scanu::<i8, i32>(&spec, &gm, &x, 1, 100, 16).unwrap();
        let b = batched_scanul1::<i8, i32>(&spec, &gm, &x, 1, 100, 16).unwrap();
        let expect = reference::inclusive_widening::<i8, i32>(&data);
        assert_eq!(a.y.to_vec(), expect);
        assert_eq!(b.y.to_vec(), expect);
    }

    #[test]
    fn int8_batched_rows_agree_with_mcscan_per_row() {
        // Cross-check the int8 specialization across schedules: each row
        // of a batched ScanU/ScanUL1 run must equal a standalone MCScan
        // of that row (and the host reference).
        use crate::mcscan::{mcscan, McScanConfig, ScanKind};
        let (spec, gm) = setup();
        let (batch, len) = (4, 450);
        let data: Vec<i8> = (0..batch * len)
            .map(|i| ((i * 11) % 13) as i8 - 6)
            .collect();
        let x = GlobalTensor::from_slice(&gm, &data).unwrap();
        let expect = rows_reference(&data, batch, len);
        let u = batched_scanu::<i8, i32>(&spec, &gm, &x, batch, len, 16).unwrap();
        let ul1 = batched_scanul1::<i8, i32>(&spec, &gm, &x, batch, len, 16).unwrap();
        assert_eq!(u.y.to_vec(), expect);
        assert_eq!(ul1.y.to_vec(), expect);
        let cfg = McScanConfig {
            s: 16,
            blocks: 2,
            kind: ScanKind::Inclusive,
        };
        for b in 0..batch {
            let row = x.slice(b * len, len).unwrap();
            let mc = mcscan::<i8, i32, i32>(&spec, &gm, &row, cfg).unwrap();
            assert_eq!(
                mc.y.to_vec(),
                expect[b * len..(b + 1) * len],
                "row {b} disagrees between MCScan and the batched schedules"
            );
        }
    }

    #[test]
    fn rejects_shape_mismatch() {
        let (spec, gm) = setup();
        let x = GlobalTensor::from_slice(&gm, &[1i8; 100]).unwrap();
        assert!(batched_scanu::<i8, i32>(&spec, &gm, &x, 3, 30, 16).is_err());
        assert!(batched_scanul1::<i8, i32>(&spec, &gm, &x, 0, 100, 16).is_err());
        assert!(batched_scanu::<i8, i32>(&spec, &gm, &x, 4, 25, 10).is_err());
    }

    #[test]
    fn fig5_crossover_shape() {
        // Large batch + short rows: ScanU-batched should win.
        // Small batch + long rows: ScanUL1-batched should win.
        let spec = ChipSpec::ascend_910b4();
        let gm = Arc::new(GlobalMemory::new(spec.hbm_capacity));

        let (batch, len) = (40, 1024);
        let data = vec![0i8; batch * len];
        let x = GlobalTensor::from_slice(&gm, &data).unwrap();
        let u = batched_scanu::<i8, i32>(&spec, &gm, &x, batch, len, 128).unwrap();
        let ul1 = batched_scanul1::<i8, i32>(&spec, &gm, &x, batch, len, 128).unwrap();
        assert!(
            u.report.time_s() < ul1.report.time_s(),
            "many short rows: ScanU {} us should beat ScanUL1 {} us",
            u.report.time_us(),
            ul1.report.time_us()
        );

        let (batch, len) = (4, 1 << 17);
        let data = vec![0i8; batch * len];
        let x = GlobalTensor::from_slice(&gm, &data).unwrap();
        let u = batched_scanu::<i8, i32>(&spec, &gm, &x, batch, len, 128).unwrap();
        let ul1 = batched_scanul1::<i8, i32>(&spec, &gm, &x, batch, len, 128).unwrap();
        assert!(
            ul1.report.time_s() < u.report.time_s(),
            "few long rows: ScanUL1 {} us should beat ScanU {} us",
            ul1.report.time_us(),
            u.report.time_us()
        );
    }
}
